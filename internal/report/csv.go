package report

import (
	"encoding/csv"
	"fmt"
	"io"

	"paradl/internal/core"
)

// WriteFig3CSV emits the Fig. 3 grid in machine-readable form (one row
// per cell) for downstream plotting.
func (e *Env) WriteFig3CSV(w io.Writer) error {
	cells, err := e.Fig3()
	if err != nil {
		return err
	}
	return writeCellsCSV(w, cells)
}

// WriteFig4CSV emits the CosmoFlow accuracy series.
func (e *Env) WriteFig4CSV(w io.Writer) error {
	cells, err := e.Fig4()
	if err != nil {
		return err
	}
	return writeCellsCSV(w, cells)
}

func writeCellsCSV(w io.Writer, cells []Cell) error {
	cw := csv.NewWriter(w)
	header := []string{
		"model", "strategy", "gpus", "batch",
		"oracle_fw_s", "oracle_bw_s", "oracle_wu_s", "oracle_ge_s",
		"oracle_fbcomm_s", "oracle_halo_s", "oracle_pipe_s", "oracle_scatter_s",
		"measured_fw_s", "measured_bw_s", "measured_wu_s", "measured_ge_s",
		"measured_fbcomm_s", "measured_halo_s", "measured_pipe_s", "measured_scatter_s",
		"accuracy",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(x float64) string { return fmt.Sprintf("%.9g", x) }
	for _, c := range cells {
		o, m := c.Oracle, c.Measured
		row := []string{
			c.Model, c.Strategy.String(), fmt.Sprint(c.P), fmt.Sprint(c.B),
			f(o.FW), f(o.BW), f(o.WU), f(o.GE), f(o.FBComm), f(o.Halo), f(o.PipeP2P), f(o.Scatter),
			f(m.FW), f(m.BW), f(m.WU), f(m.GE), f(m.FBComm), f(m.Halo), f(m.PipeP2P), f(m.Scatter),
			f(c.Accuracy),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig6CSV emits the congestion scatter.
func (e *Env) WriteFig6CSV(w io.Writer, trials int, congestedFrac float64, seed int64) error {
	series := e.Fig6(trials, congestedFrac, seed)
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "bytes", "theory_s", "measured_s", "inflation", "congested"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Samples {
			row := []string{
				s.Name,
				fmt.Sprintf("%.0f", p.Bytes),
				fmt.Sprintf("%.9g", p.Theory),
				fmt.Sprintf("%.9g", p.Measured),
				fmt.Sprintf("%.4f", p.Inflation),
				fmt.Sprint(p.Congested),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteAccuracyCSV emits the per-strategy accuracy summary.
func (e *Env) WriteAccuracyCSV(w io.Writer) error {
	sum, err := e.Accuracy()
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"strategy", "mean_accuracy"}); err != nil {
		return err
	}
	for _, s := range core.Strategies() {
		if v, ok := sum.PerStrategy[s]; ok {
			if err := cw.Write([]string{s.String(), fmt.Sprintf("%.6f", v)}); err != nil {
				return err
			}
		}
	}
	if err := cw.Write([]string{"overall", fmt.Sprintf("%.6f", sum.Overall)}); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
