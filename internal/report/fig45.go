package report

import (
	"fmt"
	"io"

	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/measure"
	"paradl/internal/model"
	"paradl/internal/profile"
)

// cosmoConfig builds a CosmoFlow ds configuration: one sample per node
// (0.25 samples/GPU, §5.1), spatial within the node, data across
// nodes. Uses the 128³ geometry for tractable in-process evaluation;
// §5.1's ×8 extrapolation note covers the 256³ full size.
func (e *Env) cosmoConfig(p int) core.Config {
	m := model.CosmoFlowAt(128)
	key := "cosmoflow128"
	if _, ok := e.models[key]; !ok {
		e.models[key] = m
	}
	p2 := e.Sys.GPUsPerNode
	if p < p2 {
		p2 = p
	}
	p1 := p / p2
	lt, ok := e.profiles[key]
	if !ok {
		lt = profile.ProfileModel(e.Dev, e.models[key], 1)
		e.profiles[key] = lt
	}
	return core.Config{
		Model: e.models[key],
		Sys:   e.Sys,
		Times: lt,
		D:     data.CosmoFlow().Samples,
		B:     p1, // one sample per spatial group
		P:     p,
		P1:    p1,
		P2:    p2,
	}
}

// Fig4 evaluates CosmoFlow under Data+Spatial across scales — the
// prediction-accuracy study of Fig. 4. (CosmoFlow runs ONLY with ds:
// the sample is too large for any other strategy, Fig. 4 caption.)
func (e *Env) Fig4() ([]Cell, error) {
	var cells []Cell
	for _, p := range []int{4, 16, 64, 256, 512} {
		cfg := e.cosmoConfig(p)
		cell, err := e.evalCell(cfg.Model.Name, core.DataSpatial, cfg)
		if err != nil {
			return nil, err
		}
		cells = append(cells, cell)
	}
	return cells, nil
}

// WriteFig4 renders the CosmoFlow accuracy series.
func (e *Env) WriteFig4(w io.Writer) error {
	cells, err := e.Fig4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4 — ParaDL prediction accuracy, CosmoFlow Data+Spatial")
	tw := newTable(w)
	fmt.Fprintln(tw, "GPUs\tB\toracle total\tmeasured total\taccuracy")
	for _, c := range cells {
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\n",
			c.P, c.B, ms(c.Oracle.Total()), ms(c.Measured.Total()), pct(c.Accuracy))
	}
	return tw.Flush()
}

// Fig5Point is one x position of the ds-vs-spatial scaling study.
// Times are per EPOCH, as in the paper's log-scale plot: pure spatial
// processes one sample per iteration on its single node, so its epoch
// time is flat, while ds widens the data pool as nodes are added.
type Fig5Point struct {
	P int
	// DSEpoch is the Data+Spatial epoch time at p GPUs.
	DSEpoch float64
	// Speedup is SpatialBaselineEpoch / DSEpoch — Fig. 5's labels
	// ("speedup ratio of spatial+data over the pure spatial strategy").
	Speedup float64
}

// Fig5 reproduces the spatial+data scaling study.
func (e *Env) Fig5() (baselineEpoch float64, pts []Fig5Point, err error) {
	// Baseline: pure spatial on one node (1 sample over 4 GPUs — the
	// paper's 0.25 samples/GPU configuration).
	base := e.cosmoConfig(e.Sys.GPUsPerNode)
	baseIter, err := measure.IterTotal(e.Engine, base, core.DataSpatial)
	if err != nil {
		return 0, nil, err
	}
	d := float64(base.D)
	baselineEpoch = d * baseIter // one sample per iteration

	for _, p := range []int{4, 16, 64, 256, 512} {
		cfg := e.cosmoConfig(p)
		iter, err := measure.IterTotal(e.Engine, cfg, core.DataSpatial)
		if err != nil {
			return 0, nil, err
		}
		epoch := d / float64(cfg.B) * iter
		pts = append(pts, Fig5Point{P: p, DSEpoch: epoch, Speedup: baselineEpoch / epoch})
	}
	return baselineEpoch, pts, nil
}

// WriteFig5 renders the scaling comparison.
func (e *Env) WriteFig5(w io.Writer) error {
	base, pts, err := e.Fig5()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 5 — CosmoFlow: spatial+data scaling (epoch seconds; baseline pure spatial = %.1f s)\n", base)
	tw := newTable(w)
	fmt.Fprintln(tw, "GPUs\tds epoch(s)\tspeedup over pure spatial")
	for _, pt := range pts {
		fmt.Fprintf(tw, "%d\t%.1f\t%.2fx\n", pt.P, pt.DSEpoch, pt.Speedup)
	}
	return tw.Flush()
}
