package report

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"paradl/internal/core"
)

// sharedEnv caches one experiment environment across tests: the Fig. 3
// grid is deterministic and expensive, so tests share it.
var (
	sharedOnce sync.Once
	shared     *Env
)

func sharedEnv() *Env {
	sharedOnce.Do(func() { shared = NewEnv() })
	return shared
}

func TestTable5ShapesMatchPaper(t *testing.T) {
	e := sharedEnv()
	rows := e.Table5()
	if len(rows) != 4 {
		t.Fatalf("Table 5 rows %d, want 4", len(rows))
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	if byName["resnet50"].Samples != 1_281_167 {
		t.Fatal("ImageNet sample count wrong")
	}
	if byName["cosmoflow"].Samples != 1584 {
		t.Fatal("CosmoFlow sample count wrong")
	}
	// Parameter ordering of Table 5.
	if !(byName["cosmoflow"].Params < byName["resnet50"].Params &&
		byName["resnet50"].Params < byName["resnet152"].Params &&
		byName["resnet152"].Params < byName["vgg16"].Params) {
		t.Fatal("parameter ordering violates Table 5")
	}
}

func TestTable3Evaluates(t *testing.T) {
	e := sharedEnv()
	rows, err := e.Table3("resnet50", 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // serial + 7 Table 3 strategies + the dp composition
		t.Fatalf("Table 3 rows %d", len(rows))
	}
	for _, r := range rows {
		if r.CompSec <= 0 {
			t.Fatalf("%v: non-positive compute", r.Strategy)
		}
		if r.Strategy == core.Serial && r.CommSec != 0 {
			t.Fatal("serial must have zero comm")
		}
		if r.Strategy != core.Serial && r.CommSec <= 0 {
			t.Fatalf("%v: expected communication time", r.Strategy)
		}
	}
}

func TestFig7WeightUpdateShares(t *testing.T) {
	e := sharedEnv()
	rows := e.Fig7()
	share := map[string]float64{}
	for _, r := range rows {
		share[r.Model] = r.WUShare
	}
	// Fig. 7's headline: VGG16's WU share is the largest of the
	// ImageNet models and reaches ≈15%.
	if share["vgg16"] < share["resnet50"] || share["vgg16"] < share["resnet152"] {
		t.Fatalf("VGG16 WU share %.3f must dominate ResNets (%.3f, %.3f)",
			share["vgg16"], share["resnet50"], share["resnet152"])
	}
	if share["vgg16"] < 0.08 || share["vgg16"] > 0.25 {
		t.Fatalf("VGG16 WU share %.3f outside ≈0.15 regime", share["vgg16"])
	}
	// CosmoFlow is compute-dominated (tiny model): negligible WU.
	if share["cosmoflow"] > 0.05 {
		t.Fatalf("CosmoFlow WU share %.3f should be negligible", share["cosmoflow"])
	}
}

func TestFig8ConvScalingGap(t *testing.T) {
	e := sharedEnv()
	rows, err := e.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("Fig 8 rows %d", len(rows))
	}
	// Efficiency must fall with p (Fig. 8's message) and stay below 1.
	for i, r := range rows {
		if r.Efficiency >= 1 {
			t.Fatalf("p=%d: measured cannot beat ideal (eff %.2f)", r.P, r.Efficiency)
		}
		if i > 0 && r.Efficiency >= rows[i-1].Efficiency {
			t.Fatalf("efficiency must degrade with p: p=%d %.3f vs p=%d %.3f",
				r.P, r.Efficiency, rows[i-1].P, rows[i-1].Efficiency)
		}
	}
	if last := rows[len(rows)-1]; last.Overhead <= 0 {
		t.Fatal("split/concat overhead must be visible at p=64")
	}
}

func TestFig4CosmoFlowAccuracy(t *testing.T) {
	e := sharedEnv()
	cells, err := e.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("Fig 4 cells %d", len(cells))
	}
	mean := 0.0
	for _, c := range cells {
		// CosmoFlow is the paper's LOWEST-accuracy model (74.14%): at
		// sub-one-sample-per-GPU granularity the shrunken 3-D kernels
		// sit far below the efficiency knee, which the ideal model
		// cannot see. The same effect dominates here.
		if c.Accuracy < 0.5 {
			t.Fatalf("CosmoFlow ds accuracy %.3f at p=%d too low", c.Accuracy, c.P)
		}
		mean += c.Accuracy
	}
	mean /= float64(len(cells))
	if mean < 0.55 || mean > 0.95 {
		t.Fatalf("CosmoFlow mean accuracy %.3f outside the paper's regime (0.7414)", mean)
	}
}

func TestFig5DsScalesNearPerfectly(t *testing.T) {
	e := sharedEnv()
	base, pts, err := e.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 {
		t.Fatal("baseline epoch time must be positive")
	}
	// Fig. 5: "the curve shows a perfect scaling" — epoch time falls
	// nearly linearly as the data pool widens, so the speedup at p
	// should be within a factor ~2 of the ideal p/4 (the baseline uses
	// 4 GPUs).
	for _, pt := range pts {
		ideal := float64(pt.P) / 4
		if pt.Speedup < ideal*0.5 || pt.Speedup > ideal*1.5 {
			t.Fatalf("p=%d: speedup %.2f vs ideal %.1f — scaling shape broken", pt.P, pt.Speedup, ideal)
		}
	}
	// Monotone increase in speedup with p.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup <= pts[i-1].Speedup {
			t.Fatalf("speedup must grow with p: %v", pts)
		}
	}
}

func TestFig6CongestionOutliers(t *testing.T) {
	e := sharedEnv()
	series := e.Fig6(12, 0.35, 99)
	if len(series) != 2 {
		t.Fatalf("Fig 6 series %d", len(series))
	}
	for _, s := range series {
		var cleanMax, congestedMax float64
		for _, p := range s.Samples {
			if p.Congested {
				if p.Inflation > congestedMax {
					congestedMax = p.Inflation
				}
			} else if p.Inflation > cleanMax {
				cleanMax = p.Inflation
			}
		}
		// Clean points track the α–β line (within ~50%); congestion
		// produces clear outliers (the paper saw up to 4×).
		if cleanMax > 1.6 {
			t.Fatalf("%s: clean inflation %.2f too high", s.Name, cleanMax)
		}
		if congestedMax < 1.5 {
			t.Fatalf("%s: congested inflation %.2f too small for outliers", s.Name, congestedMax)
		}
		if congestedMax > 8 {
			t.Fatalf("%s: congested inflation %.2f beyond plausible regime", s.Name, congestedMax)
		}
	}
}

func TestWriteRenderings(t *testing.T) {
	e := sharedEnv()
	var buf bytes.Buffer
	if err := e.WriteTable5(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteTable3(&buf, "resnet50", 64, 8); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteFig7(&buf); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteTable6(&buf, "vgg16", 64, 32); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 5", "Table 3", "Figure 7", "Table 6", "vgg16", "resnet50"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q", want)
		}
	}
}

func TestTable6DetectsKnownFindings(t *testing.T) {
	e := sharedEnv()
	rows, err := e.Table6("vgg16", 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	var dataHasGE, fcHasLayerwise bool
	for _, r := range rows {
		for _, f := range r.Findings {
			if r.Strategy == core.Data && f.Remark == "Gradient-exchange" {
				dataHasGE = true
			}
			if (r.Strategy == core.Filter || r.Strategy == core.Channel) && f.Remark == "Layer-wise comm." {
				fcHasLayerwise = true
			}
		}
	}
	if !dataHasGE {
		t.Fatal("Table 6: data parallelism must flag gradient exchange for VGG16@64")
	}
	if !fcHasLayerwise {
		t.Fatal("Table 6: filter/channel must flag layer-wise communication")
	}
}
