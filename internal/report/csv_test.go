package report

import (
	"bytes"
	"encoding/csv"
	"strconv"
	"testing"
)

func TestFig3CSVRoundTrip(t *testing.T) {
	e := sharedEnv()
	var buf bytes.Buffer
	if err := e.WriteFig3CSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	cells, err := e.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cells)+1 {
		t.Fatalf("csv rows %d, want %d cells + header", len(rows), len(cells))
	}
	if rows[0][0] != "model" || rows[0][len(rows[0])-1] != "accuracy" {
		t.Fatalf("bad header %v", rows[0])
	}
	// Spot check: accuracy column parses and matches.
	acc, err := strconv.ParseFloat(rows[1][len(rows[1])-1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if diff := acc - cells[0].Accuracy; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("csv accuracy %g vs cell %g", acc, cells[0].Accuracy)
	}
}

func TestFig6CSVStructure(t *testing.T) {
	e := sharedEnv()
	var buf bytes.Buffer
	if err := e.WriteFig6CSV(&buf, 4, 0.5, 1); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 2 series × 4 trials + header
	if len(rows) != 9 {
		t.Fatalf("csv rows %d, want 9", len(rows))
	}
	for _, row := range rows[1:] {
		if _, err := strconv.ParseFloat(row[4], 64); err != nil {
			t.Fatalf("inflation column unparsable: %v", row)
		}
	}
}

func TestAccuracyCSV(t *testing.T) {
	e := sharedEnv()
	var buf bytes.Buffer
	if err := e.WriteAccuracyCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if rows[len(rows)-1][0] != "overall" {
		t.Fatalf("last row should be overall: %v", rows[len(rows)-1])
	}
	v, err := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if err != nil || v <= 0.5 || v > 1 {
		t.Fatalf("overall accuracy %v (%v)", v, err)
	}
}
