package report

import (
	"fmt"
	"io"
	"strings"
	"time"

	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/profile"
)

// This file closes the ROADMAP "scenario diversity" loop: the dist
// package executes every strategy for real at toy scale, so its
// per-strategy runtime cost can sit NEXT TO the oracle's projection of
// the same strategy. Absolute times are incomparable (float64 scalar
// kernels on one host vs a modeled V100 cluster), but the OVERHEAD
// RATIO — strategy iteration time over sequential iteration time — is
// scale-free on both sides, which is exactly the quantity the paper's
// measured-vs-projected methodology compares (§5.2).

// RuntimeRow is one strategy's measured-vs-projected overhead at width
// p. P1/P2 are zero except for the hybrids.
type RuntimeRow struct {
	Strategy core.Strategy
	P        int
	P1, P2   int
	// MeasuredSec is the real wall time of one training iteration under
	// internal/dist on the toy model with nonblocking backward/comm
	// overlap at the toy A/B bucket size (dist.BenchOverlapBucketBytes).
	MeasuredSec float64
	// MeasuredOverhead = MeasuredSec / sequential MeasuredSec.
	MeasuredOverhead float64
	// BlockingSec / BlockingOverhead re-measure the same plan with the
	// identical buckets exchanged synchronously (dist.WithOverlap(false))
	// — the A/B baseline, loss-identical to the overlapped run.
	BlockingSec      float64
	BlockingOverhead float64
	// ProjectedOverhead = projected iteration total at width P over the
	// projected serial iteration total, from the analytic oracle.
	ProjectedOverhead float64
}

// runtimeWorkload pins the toy measurement: tinycnn-nobn (every
// strategy admits it), global batch 8, 2 iterations per run, 3 timed
// runs after one warm-up.
const (
	runtimeBatch   = 8
	runtimeIters   = 2
	runtimeRepeats = 3
	runtimeSeed    = 42
	runtimeLR      = 0.05
)

// isWidthLimit reports whether err is a Table 3 scaling-limit
// rejection from the dist runners (every such error cites the table).
func isWidthLimit(err error) bool {
	return strings.Contains(err.Error(), "(Table 3)")
}

// timeRun measures seconds per training iteration of one runner.
func timeRun(run func() error) (float64, error) {
	if err := run(); err != nil { // warm-up; also surfaces infeasibility
		return 0, err
	}
	start := time.Now()
	for i := 0; i < runtimeRepeats; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(runtimeRepeats*runtimeIters), nil
}

// RuntimeOverhead measures every strategy the toy model admits at width
// p against the sequential baseline and pairs each ratio with the
// oracle's projection for the same strategy and width. Strategies whose
// Table 3 limits exclude width p (e.g. channel beyond min C_l) are
// skipped. p must stay toy-scale (≤ 8): the point is the ratio, not
// cluster realism.
func (e *Env) RuntimeOverhead(p int) ([]RuntimeRow, error) {
	if p < 2 || p > 8 {
		return nil, fmt.Errorf("report: runtime overhead is toy-scale, need 2 <= p <= 8, got %d", p)
	}
	m := model.TinyCNNNoBN()
	batches := data.Toy(m, int64(runtimeIters*runtimeBatch)).Batches(runtimeIters, runtimeBatch)

	// Both overlap columns pin the toy A/B bucket size: at the 256 KiB
	// default no toy-scale bucket ever fills mid-backward, so the on/off
	// pair would time identical executions (see BenchOverlapBucketBytes).
	runPlan := func(pl dist.Plan, overlap bool) func() error {
		return func() error {
			_, err := dist.Run(m, batches, pl, dist.WithSeed(runtimeSeed), dist.WithLR(runtimeLR),
				dist.WithOverlap(overlap), dist.WithBucketBytes(dist.BenchOverlapBucketBytes))
			return err
		}
	}
	seqSec, err := timeRun(runPlan(dist.Plan{Strategy: core.Serial}, true))
	if err != nil {
		return nil, err
	}
	projCfg := func(width, p1, p2 int) core.Config {
		perPE := runtimeBatch / width
		if perPE < 1 {
			perPE = 1
		}
		return core.Config{
			Model:    m,
			Sys:      e.Sys,
			Times:    profile.ProfileModel(e.Dev, m, perPE),
			D:        runtimeBatch,
			B:        runtimeBatch,
			P:        width,
			P1:       p1,
			P2:       p2,
			Segments: 4,
		}
	}
	serialProj, err := core.Project(projCfg(1, 0, 0), core.Serial)
	if err != nil {
		return nil, err
	}
	serialIter := serialProj.Iter().Total()

	// The candidate plans: every pure strategy at width p, plus the 2-D
	// hybrids on a (p/2)×2 grid when p admits one. The measured side
	// dispatches through the same Plan registry every other runtime
	// client uses, so this table exercises the real entry path.
	cands := []dist.Plan{
		{Strategy: core.Data, P1: p},
		{Strategy: core.Spatial, P2: p},
		{Strategy: core.Filter, P2: p},
		{Strategy: core.Channel, P2: p},
		{Strategy: core.Pipeline, P2: p},
	}
	if p%2 == 0 && p >= 4 {
		cands = append(cands,
			dist.Plan{Strategy: core.DataFilter, P1: p / 2, P2: 2},
			dist.Plan{Strategy: core.DataSpatial, P1: p / 2, P2: 2},
			dist.Plan{Strategy: core.DataPipeline, P1: p / 2, P2: 2},
		)
	}

	rows := []RuntimeRow{{
		Strategy: core.Serial, P: 1,
		MeasuredSec: seqSec, MeasuredOverhead: 1,
		BlockingSec: seqSec, BlockingOverhead: 1,
		ProjectedOverhead: 1,
	}}
	for _, c := range cands {
		sec, err := timeRun(runPlan(c, true))
		if err != nil {
			// Only a Table 3 scaling limit legitimately drops a row; any
			// other failure (a runtime bug, a wedged collective) must
			// surface — this table exists to expose such discrepancies.
			if isWidthLimit(err) {
				continue
			}
			return nil, fmt.Errorf("report: measuring %v at p=%d: %w", c.Strategy, p, err)
		}
		blockSec, err := timeRun(runPlan(c, false))
		if err != nil {
			return nil, fmt.Errorf("report: measuring %v at p=%d with overlap off: %w", c.Strategy, p, err)
		}
		p1, p2 := 0, 0
		if c.Strategy == core.DataFilter || c.Strategy == core.DataSpatial || c.Strategy == core.DataPipeline {
			p1, p2 = c.P1, c.P2
		}
		proj, err := core.Project(projCfg(p, p1, p2), c.Strategy)
		if err != nil {
			return nil, fmt.Errorf("report: projecting %v at p=%d (the runtime executed it): %w", c.Strategy, p, err)
		}
		rows = append(rows, RuntimeRow{
			Strategy:          c.Strategy,
			P:                 p,
			P1:                p1,
			P2:                p2,
			MeasuredSec:       sec,
			MeasuredOverhead:  sec / seqSec,
			BlockingSec:       blockSec,
			BlockingOverhead:  blockSec / seqSec,
			ProjectedOverhead: proj.Iter().Total() / serialIter,
		})
	}
	return rows, nil
}

// WriteRuntimeOverhead renders the measured-vs-projected overhead table.
func (e *Env) WriteRuntimeOverhead(w io.Writer, p int) error {
	rows, err := e.RuntimeOverhead(p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Measured vs projected strategy overhead — %s, global batch %d, p=%d\n", "tinycnn-nobn", runtimeBatch, p)
	fmt.Fprintf(w, "(overhead = iteration time / sequential iteration time; measured side is the\n real internal/dist runtime at toy scale — overlap: nonblocking bucketed gradient\n exchange, blocking: the same exchange synchronous — projected side is the oracle)\n")
	tw := newTable(w)
	fmt.Fprintln(tw, "strategy\tgrid\toverlap ms/iter\tblocking ms/iter\tmeasured overhead\tblocking overhead\tprojected overhead")
	for _, r := range rows {
		grid := fmt.Sprintf("p=%d", r.P)
		if r.P1 > 0 {
			grid = fmt.Sprintf("%d×%d", r.P1, r.P2)
		}
		fmt.Fprintf(tw, "%v\t%s\t%.2f\t%.2f\t%.2f×\t%.2f×\t%.2f×\n",
			r.Strategy, grid, r.MeasuredSec*1e3, r.BlockingSec*1e3,
			r.MeasuredOverhead, r.BlockingOverhead, r.ProjectedOverhead)
	}
	return tw.Flush()
}
