// Package report regenerates every table and figure of the paper's
// evaluation (§5): the oracle-vs-measured breakdowns of Fig. 3/4, the
// ds scaling study of Fig. 5, the congestion scatter of Fig. 6, the
// compute breakdowns of Fig. 7/8, and Tables 3, 5 and 6 — each as a
// structured result set plus a text rendering, indexed in DESIGN.md.
package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/measure"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// Env bundles what every experiment needs: the machine, the device
// model, and the measurement engine.
type Env struct {
	Sys    *cluster.System
	Dev    *profile.Device
	Engine *measure.Engine

	models    map[string]*nn.Model
	profiles  map[string]*profile.LayerTimes
	fig3Cache []Cell
}

// NewEnv builds the default experiment environment (the paper's
// machine).
func NewEnv() *Env {
	sys := cluster.Default()
	return &Env{
		Sys:      sys,
		Dev:      profile.NewDevice(sys.GPU),
		Engine:   measure.NewEngine(sys),
		models:   map[string]*nn.Model{},
		profiles: map[string]*profile.LayerTimes{},
	}
}

// Model returns (and caches) a zoo model.
func (e *Env) Model(name string) *nn.Model {
	if m, ok := e.models[name]; ok {
		return m
	}
	m, err := model.ByName(name)
	if err != nil {
		panic(err)
	}
	e.models[name] = m
	return m
}

// Profile returns (and caches) the per-layer time profile of a model at
// per-GPU batch b.
func (e *Env) Profile(name string, b int) *profile.LayerTimes {
	key := fmt.Sprintf("%s@%d", name, b)
	if lt, ok := e.profiles[key]; ok {
		return lt
	}
	lt := profile.ProfileModel(e.Dev, e.Model(name), b)
	e.profiles[key] = lt
	return lt
}

// Config assembles a core.Config for a model. b is the GLOBAL batch;
// perPE sets the profiling batch granularity.
func (e *Env) Config(name string, p, b, perPE int) core.Config {
	ds, err := data.ForModel(name)
	if err != nil {
		panic(err)
	}
	return core.Config{
		Model: e.Model(name),
		Sys:   e.Sys,
		Times: e.Profile(name, perPE),
		D:     ds.Samples,
		B:     b,
		P:     p,
	}
}

// Cell is one oracle-vs-measured grid point (one bar pair of Fig. 3).
type Cell struct {
	Model    string
	Strategy core.Strategy
	P        int
	B        int // global mini-batch
	Oracle   core.Breakdown
	Measured core.Breakdown
	Accuracy float64
}

// evalCell runs both sides for one configuration.
func (e *Env) evalCell(name string, s core.Strategy, cfg core.Config) (Cell, error) {
	pr, err := core.Project(cfg, s)
	if err != nil {
		return Cell{}, fmt.Errorf("report: projecting %s/%v: %w", name, s, err)
	}
	res, err := measure.Measure(e.Engine, cfg, s)
	if err != nil {
		return Cell{}, fmt.Errorf("report: measuring %s/%v: %w", name, s, err)
	}
	return Cell{
		Model:    name,
		Strategy: s,
		P:        cfg.P,
		B:        cfg.B,
		Oracle:   pr.Iter(),
		Measured: res.Iter,
		Accuracy: res.Accuracy(pr),
	}, nil
}

// newTable starts an aligned text table on w.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// ms renders seconds as milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.1f", sec*1e3) }

// pct renders a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
