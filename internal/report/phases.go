package report

import (
	"fmt"
	"io"

	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
	"paradl/internal/trace"
)

// This file is the per-phase refinement of the runtime overhead table:
// instead of comparing one scalar (iteration time) per plan, the trace
// recorder decomposes each REAL toy run's wall clock into the closed
// phase vocabulary, and the oracle's projection of the same plan
// decomposes into its analytic terms. Absolute times remain
// incomparable (host float64 kernels vs a modeled cluster), so the join
// is on SHARES: compute fraction, exposed-communication fraction, and —
// measured side only — the overlap-hidden communication the analytic
// model folds into its overlap factor.

// PhaseRow is one (model, plan) cell of the measured-vs-projected
// per-phase table.
type PhaseRow struct {
	Model string `json:"model"`
	Plan  string `json:"plan"`
	P     int    `json:"p"`

	// WallMS is the traced run's observed wall clock; Iters the
	// iteration count the trace attributed spans to; Coverage the
	// minimum per-PE tiling ratio (1.0 = the spans account for every
	// nanosecond of that PE's timeline).
	WallMS   float64 `json:"wall_ms"`
	Iters    int     `json:"iters"`
	Coverage float64 `json:"coverage"`

	// PhaseMS sums measured span time per phase across all PEs.
	PhaseMS map[string]float64 `json:"phase_ms"`
	// HiddenCommMS sums the async in-flight windows of nonblocking
	// collectives — communication hidden behind backward compute.
	HiddenCommMS float64 `json:"hidden_comm_ms"`

	// Measured shares are over compute+exposed-comm time (idle and
	// checkpoint phases excluded — the oracle has no term for them).
	MeasuredComputeShare float64 `json:"measured_compute_share"`
	MeasuredCommShare    float64 `json:"measured_comm_share"`
	// MeasuredHiddenShare is hidden comm over the same denominator; it
	// can exceed MeasuredCommShare — that is overlap working.
	MeasuredHiddenShare float64 `json:"measured_hidden_share"`

	// Projected shares come from the oracle's iteration breakdown for
	// the same (model, plan, width): Comp()/Total() and Comm()/Total().
	ProjectedComputeShare float64 `json:"projected_compute_share"`
	ProjectedCommShare    float64 `json:"projected_comm_share"`
}

// The traced toy workload: same hyperparameters as the runtime
// overhead table, more iterations so span sums dominate per-run setup.
// PhaseBatch/PhaseIters are exported so the PHASES.json emitter can
// record the workload it measured.
const (
	PhaseBatch = 8
	PhaseIters = 4
	phaseSeed  = 42
	phaseLR    = 0.05
)

// phasePlans is the committed plan matrix: every strategy the model
// admits, at the widest toy width it admits (tinycnn-nobn takes all
// eight at p=4; tinyresnet narrows the tensor-parallel widths to 2).
func phasePlans(m *nn.Model) []dist.Plan {
	if m.Name == "tinyresnet" {
		return []dist.Plan{
			{Strategy: core.Data, P1: 4},
			{Strategy: core.Spatial, P2: 2},
			{Strategy: core.Filter, P2: 2},
			{Strategy: core.Channel, P2: 2},
			{Strategy: core.Pipeline, P2: 2},
			{Strategy: core.DataFilter, P1: 2, P2: 2},
			{Strategy: core.DataSpatial, P1: 2, P2: 2},
			{Strategy: core.DataPipeline, P1: 2, P2: 2},
		}
	}
	return []dist.Plan{
		{Strategy: core.Data, P1: 4},
		{Strategy: core.Spatial, P2: 4},
		{Strategy: core.Filter, P2: 4},
		{Strategy: core.Channel, P2: 4},
		{Strategy: core.Pipeline, P2: 4},
		{Strategy: core.DataFilter, P1: 2, P2: 2},
		{Strategy: core.DataSpatial, P1: 2, P2: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 2},
	}
}

// PhaseBreakdown traces every plan of the committed matrix on the real
// runtime and joins each run's per-phase decomposition with the
// oracle's analytic breakdown of the same plan. Every plan in the
// matrix must run AND project — a width the runtime rejects is a matrix
// bug, not a row to skip.
func (e *Env) PhaseBreakdown() ([]PhaseRow, error) {
	var rows []PhaseRow
	for _, m := range []*nn.Model{model.TinyCNNNoBN(), model.TinyResNet()} {
		batches := data.Toy(m, int64(PhaseIters*PhaseBatch)).Batches(PhaseIters, PhaseBatch)
		for _, pl := range phasePlans(m) {
			rec := trace.NewRecorder()
			_, err := dist.Run(m, batches, pl,
				dist.WithSeed(phaseSeed), dist.WithLR(phaseLR),
				dist.WithOverlap(true), dist.WithBucketBytes(dist.BenchOverlapBucketBytes),
				dist.WithTrace(rec))
			if err != nil {
				return nil, fmt.Errorf("report: tracing %s on %s: %w", pl, m.Name, err)
			}
			sum := rec.Summarize()

			p1, p2 := 0, 0
			if pl.Strategy == core.DataFilter || pl.Strategy == core.DataSpatial || pl.Strategy == core.DataPipeline {
				p1, p2 = pl.P1, pl.P2
			}
			perPE := PhaseBatch / pl.P()
			if perPE < 1 {
				perPE = 1
			}
			proj, err := core.Project(core.Config{
				Model: m, Sys: e.Sys,
				Times:    profile.ProfileModel(e.Dev, m, perPE),
				D:        PhaseBatch,
				B:        PhaseBatch,
				P:        pl.P(),
				P1:       p1,
				P2:       p2,
				Segments: 4,
			}, pl.Strategy)
			if err != nil {
				return nil, fmt.Errorf("report: projecting %s on %s (the runtime executed it): %w", pl, m.Name, err)
			}

			row := PhaseRow{
				Model:        m.Name,
				Plan:         pl.String(),
				P:            pl.P(),
				WallMS:       float64(sum.WallNS) / 1e6,
				Iters:        sum.Iters,
				Coverage:     sum.Coverage,
				PhaseMS:      map[string]float64{},
				HiddenCommMS: float64(sum.AsyncNS) / 1e6,
			}
			for ph, ns := range sum.PhaseNS {
				row.PhaseMS[ph] = float64(ns) / 1e6
			}
			if work := sum.ComputeNS() + sum.CommNS(); work > 0 {
				row.MeasuredComputeShare = float64(sum.ComputeNS()) / float64(work)
				row.MeasuredCommShare = float64(sum.CommNS()) / float64(work)
				row.MeasuredHiddenShare = float64(sum.AsyncNS) / float64(work)
			}
			it := proj.Iter()
			if t := it.Total(); t > 0 {
				row.ProjectedComputeShare = it.Comp() / t
				row.ProjectedCommShare = it.Comm() / t
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// WritePhaseBreakdown renders the measured-vs-projected per-phase
// share table (the human view of PHASES.json).
func (e *Env) WritePhaseBreakdown(w io.Writer) error {
	rows, err := e.PhaseBreakdown()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Measured vs projected per-phase shares — global batch %d, %d iterations\n", PhaseBatch, PhaseIters)
	fmt.Fprintf(w, "(measured: REAL runtime wall clock decomposed by the trace recorder into the\n closed phase vocabulary; hidden = nonblocking-collective in-flight time behind\n backward compute; projected: the oracle's analytic breakdown of the same plan;\n shares are scale-free so host kernels and the modeled cluster can sit side by side)\n")
	tw := newTable(w)
	fmt.Fprintln(tw, "model\tplan\twall ms\tcoverage\tmeas comp\tmeas comm\tmeas hidden\tproj comp\tproj comm")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\n",
			r.Model, r.Plan, r.WallMS, r.Coverage,
			r.MeasuredComputeShare*100, r.MeasuredCommShare*100, r.MeasuredHiddenShare*100,
			r.ProjectedComputeShare*100, r.ProjectedCommShare*100)
	}
	return tw.Flush()
}
