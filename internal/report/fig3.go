package report

import (
	"fmt"
	"io"

	"paradl/internal/core"
)

// fig3Point is one x-axis position of one Fig. 3 panel.
type fig3Point struct {
	strategy core.Strategy
	p        int
	// b is samples/GPU for weak-scaling strategies; for filter/channel
	// (strong scaling, Fig. 3 caption) and pipeline it is the GLOBAL
	// batch.
	b      int
	global bool
	p1, p2 int // hybrid split (0 = default node mapping)
}

// fig3Grid mirrors the paper's panels: data and hybrids weak-scale from
// 16 to 1024 GPUs, filter/channel strong-scale from 4 to 64, pipeline
// runs up to 4 stages (§5.1 "Configurations of Experiments"), and
// spatial runs at small PE counts with the batch shared by all PEs.
func fig3Grid() []fig3Point {
	var pts []fig3Point
	for _, p := range []int{16, 64, 256, 1024} {
		pts = append(pts, fig3Point{strategy: core.Data, p: p, b: 32})
	}
	for _, p := range []int{4, 16, 64} {
		pts = append(pts, fig3Point{strategy: core.Spatial, p: p, b: 8, global: true})
	}
	for _, p := range []int{4, 16, 64} {
		pts = append(pts, fig3Point{strategy: core.Filter, p: p, b: 32, global: true})
		pts = append(pts, fig3Point{strategy: core.Channel, p: p, b: 32, global: true})
	}
	for _, p := range []int{16, 64, 256, 1024} {
		pts = append(pts, fig3Point{strategy: core.DataFilter, p: p, b: 8})
		pts = append(pts, fig3Point{strategy: core.DataSpatial, p: p, b: 8})
	}
	for _, p := range []int{2, 4} {
		pts = append(pts, fig3Point{strategy: core.Pipeline, p: p, b: 32, global: true})
	}
	// dp (no Table 3 entry; §3.6 composition): weak-scaling grids with
	// a shallow in-group pipeline, the shape the runtime executes.
	for _, p := range []int{16, 64} {
		pts = append(pts, fig3Point{strategy: core.DataPipeline, p: p, b: 8, p1: p / 4, p2: 4})
	}
	return pts
}

// Fig3Models lists the panels' rows.
func Fig3Models() []string { return []string{"resnet50", "resnet152", "vgg16"} }

// Fig3 evaluates the full oracle-vs-measured grid of Fig. 3 (time
// breakdown per model × strategy × scale with accuracy labels). The
// grid is deterministic, so it is computed once per Env and cached.
func (e *Env) Fig3() ([]Cell, error) {
	if e.fig3Cache != nil {
		return e.fig3Cache, nil
	}
	var cells []Cell
	for _, name := range Fig3Models() {
		m := e.Model(name)
		for _, pt := range fig3Grid() {
			// Skip points beyond the model's shape limits (the paper
			// plots each strategy only up to its scaling limit).
			switch pt.strategy {
			case core.Filter:
				if pt.p > m.MinFilters() {
					continue
				}
			case core.Channel:
				if pt.p > m.MinChannels() {
					continue
				}
			case core.Spatial:
				if pt.p > m.MinSpatial() {
					continue
				}
			}
			b := pt.b
			perPE := pt.b
			if !pt.global {
				b = pt.b * pt.p
			} else if pt.strategy == core.Spatial || pt.strategy == core.Pipeline {
				perPE = maxI(1, pt.b/pt.p)
			}
			cfg := e.Config(name, pt.p, b, perPE)
			cfg.P1, cfg.P2 = pt.p1, pt.p2
			cell, err := e.evalCell(name, pt.strategy, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	e.fig3Cache = cells
	return cells, nil
}

// WriteFig3 renders the grid in the paper's panel layout.
func (e *Env) WriteFig3(w io.Writer) error {
	cells, err := e.Fig3()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3 — per-iteration time breakdown: ParaDL projection vs measured (ms)")
	fmt.Fprintln(w, "(data/df/ds weak-scale b·p; filter/channel strong-scale at fixed B; pipeline S=4)")
	tw := newTable(w)
	fmt.Fprintln(tw, "model\tstrategy\tGPUs\tB\toracle comp\toracle comm\tmeasured comp\tmeasured comm\taccuracy")
	for _, c := range cells {
		fmt.Fprintf(tw, "%s\t%v\t%d\t%d\t%s\t%s\t%s\t%s\t%s\n",
			c.Model, c.Strategy, c.P, c.B,
			ms(c.Oracle.Comp()), ms(c.Oracle.Comm()),
			ms(c.Measured.Comp()), ms(c.Measured.Comm()),
			pct(c.Accuracy))
	}
	return tw.Flush()
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
