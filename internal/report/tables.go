package report

import (
	"fmt"
	"io"

	"paradl/internal/core"
	"paradl/internal/data"
)

// Table3Row is the analytical model of Table 3 evaluated for one
// strategy at a reference configuration.
type Table3Row struct {
	Strategy core.Strategy
	CompSec  float64 // per epoch
	CommSec  float64
	MemGB    float64
	MaxPE    int
	Feasible bool
}

// Table3 evaluates the computation/communication/memory columns of
// Table 3 for a reference configuration (default: ResNet-50, 64 GPUs,
// b=32).
func (e *Env) Table3(name string, p, perPE int) ([]Table3Row, error) {
	var rows []Table3Row
	for _, s := range append([]core.Strategy{core.Serial}, core.Strategies()...) {
		cfg := e.Config(name, p, perPE*p, perPE)
		switch s {
		case core.Serial:
			cfg.P = 1
			cfg.B = perPE
		case core.Filter, core.Channel, core.Pipeline:
			// strong scaling / stage limits
			cfg.B = 32
			m := e.Model(name)
			switch s {
			case core.Filter:
				if cfg.P > m.MinFilters() {
					cfg.P = m.MinFilters()
				}
			case core.Channel:
				if cfg.P > m.MinChannels() {
					cfg.P = m.MinChannels()
				}
			case core.Pipeline:
				if cfg.P > 4 {
					cfg.P = 4
				}
			}
		}
		pr, err := core.Project(cfg, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Strategy: s,
			CompSec:  pr.Epoch.Comp(),
			CommSec:  pr.Epoch.Comm(),
			MemGB:    pr.MemoryPerPE / 1e9,
			MaxPE:    pr.MaxPE,
			Feasible: pr.Feasible,
		})
	}
	return rows, nil
}

// WriteTable3 renders the evaluated analytic model.
func (e *Env) WriteTable3(w io.Writer, name string, p, perPE int) error {
	rows, err := e.Table3(name, p, perPE)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 3 — analytical model evaluated: %s (reference p=%d, b=%d/GPU)\n", name, p, perPE)
	tw := newTable(w)
	fmt.Fprintln(tw, "strategy\tT_comp/epoch(s)\tT_comm/epoch(s)\tmem/PE(GB)\tmax PEs\tfeasible")
	for _, r := range rows {
		fmt.Fprintf(tw, "%v\t%.1f\t%.1f\t%.2f\t%d\t%v\n",
			r.Strategy, r.CompSec, r.CommSec, r.MemGB, r.MaxPE, r.Feasible)
	}
	return tw.Flush()
}

// Table5Row summarizes one model/dataset pair (Table 5).
type Table5Row struct {
	Model     string
	Dataset   string
	Samples   int64
	SampleDim string
	Params    int64
	Layers    int
}

// Table5 reproduces the models-and-datasets summary.
func (e *Env) Table5() []Table5Row {
	var rows []Table5Row
	for _, name := range []string{"resnet50", "resnet152", "vgg16", "cosmoflow"} {
		m := e.Model(name)
		ds, err := data.ForModel(name)
		if err != nil {
			panic(err)
		}
		dim := fmt.Sprintf("%d×%v", m.InputChannels, m.InputDims)
		rows = append(rows, Table5Row{
			Model: name, Dataset: ds.Name, Samples: ds.Samples,
			SampleDim: dim, Params: m.Params(), Layers: m.G(),
		})
	}
	return rows
}

// WriteTable5 renders the summary.
func (e *Env) WriteTable5(w io.Writer) error {
	fmt.Fprintln(w, "Table 5 — models and datasets")
	tw := newTable(w)
	fmt.Fprintln(tw, "model\tdataset\t#samples\tsample\t#params\t#layers")
	for _, r := range e.Table5() {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%.1fM\t%d\n",
			r.Model, r.Dataset, r.Samples, r.SampleDim, float64(r.Params)/1e6, r.Layers)
	}
	return tw.Flush()
}

// Table6Row aggregates detected findings across strategies.
type Table6Row struct {
	Strategy core.Strategy
	Findings []core.Finding
}

// Table6 runs the limitation/bottleneck detector over every strategy
// for a model at scale, reproducing the summary of Table 6.
func (e *Env) Table6(name string, p, perPE int) ([]Table6Row, error) {
	var rows []Table6Row
	m := e.Model(name)
	for _, s := range core.Strategies() {
		cfg := e.Config(name, p, perPE*p, perPE)
		switch s {
		case core.Filter:
			cfg.P, cfg.B = m.MinFilters(), 32
		case core.Channel:
			cfg.P, cfg.B = m.MinChannels(), 32
		case core.Pipeline:
			cfg.P, cfg.B = 4, 32
		case core.Spatial:
			if cfg.P > m.MinSpatial() {
				cfg.P = m.MinSpatial()
			}
			cfg.B = 32
		}
		pr, err := core.Project(cfg, s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table6Row{Strategy: s, Findings: core.DetectFindings(pr)})
	}
	return rows, nil
}

// WriteTable6 renders the detector output.
func (e *Env) WriteTable6(w io.Writer, name string, p, perPE int) error {
	rows, err := e.Table6(name, p, perPE)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Table 6 — detected limitations (L) and bottlenecks (B): %s at p=%d\n", name, p)
	tw := newTable(w)
	fmt.Fprintln(tw, "strategy\tL/B\tcategory\tremark\tdetail")
	for _, r := range rows {
		if len(r.Findings) == 0 {
			fmt.Fprintf(tw, "%v\t-\t-\tnone at this scale\t\n", r.Strategy)
			continue
		}
		for _, f := range r.Findings {
			fmt.Fprintf(tw, "%v\t%s\t%s\t%s\t%s\n", r.Strategy, f.Kind, f.Category, f.Remark, f.Detail)
		}
	}
	return tw.Flush()
}

// AccuracySummary aggregates the Fig. 3 and Fig. 4 grids into the
// paper's §5.2 per-strategy and overall accuracy numbers.
type AccuracySummary struct {
	PerStrategy map[core.Strategy]float64
	PerModel    map[string]float64
	Overall     float64
	Cells       int
}

// Accuracy computes the summary.
func (e *Env) Accuracy() (*AccuracySummary, error) {
	cells, err := e.Fig3()
	if err != nil {
		return nil, err
	}
	cf, err := e.Fig4()
	if err != nil {
		return nil, err
	}
	cells = append(cells, cf...)

	sum := &AccuracySummary{
		PerStrategy: map[core.Strategy]float64{},
		PerModel:    map[string]float64{},
	}
	sCount := map[core.Strategy]int{}
	mCount := map[string]int{}
	total := 0.0
	for _, c := range cells {
		sum.PerStrategy[c.Strategy] += c.Accuracy
		sCount[c.Strategy]++
		sum.PerModel[c.Model] += c.Accuracy
		mCount[c.Model]++
		total += c.Accuracy
	}
	for s, v := range sum.PerStrategy {
		sum.PerStrategy[s] = v / float64(sCount[s])
	}
	for m, v := range sum.PerModel {
		sum.PerModel[m] = v / float64(mCount[m])
	}
	sum.Overall = total / float64(len(cells))
	sum.Cells = len(cells)
	return sum, nil
}

// WriteAccuracy renders the summary.
func (e *Env) WriteAccuracy(w io.Writer) error {
	sum, err := e.Accuracy()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "§5.2 accuracy summary over %d grid cells (paper: 86.74%% overall, 96.10%% data)\n", sum.Cells)
	tw := newTable(w)
	fmt.Fprintln(tw, "strategy\tmean accuracy")
	for _, s := range core.Strategies() {
		if v, ok := sum.PerStrategy[s]; ok {
			fmt.Fprintf(tw, "%v\t%s\n", s, pct(v))
		}
	}
	fmt.Fprintf(tw, "OVERALL\t%s\n", pct(sum.Overall))
	return tw.Flush()
}
