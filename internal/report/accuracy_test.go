package report

import (
	"testing"

	"paradl/internal/core"
)

func TestFig3GridShapes(t *testing.T) {
	e := sharedEnv()
	cells, err := e.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("empty Fig 3 grid")
	}
	seen := map[core.Strategy]bool{}
	for _, c := range cells {
		seen[c.Strategy] = true
		if c.Oracle.Total() <= 0 || c.Measured.Total() <= 0 {
			t.Fatalf("%s/%v p=%d: non-positive times", c.Model, c.Strategy, c.P)
		}
		if c.Accuracy <= 0.3 || c.Accuracy > 1.0 {
			t.Fatalf("%s/%v p=%d: accuracy %.3f out of band", c.Model, c.Strategy, c.P, c.Accuracy)
		}
	}
	for _, s := range core.Strategies() {
		if !seen[s] {
			t.Fatalf("strategy %v missing from the Fig 3 grid", s)
		}
	}
}

func TestAccuracySummaryMatchesPaperShape(t *testing.T) {
	e := sharedEnv()
	sum, err := e.Accuracy()
	if err != nil {
		t.Fatal(err)
	}
	// §5.2's headline shape: data parallelism is the most accurately
	// projected strategy, and the overall average sits in the 80–100%
	// band (the paper reports 86.74%).
	dataAcc := sum.PerStrategy[core.Data]
	if dataAcc < 0.9 {
		t.Fatalf("data accuracy %.3f should be ≥0.9 (paper: 0.961)", dataAcc)
	}
	for s, acc := range sum.PerStrategy {
		if s == core.Data {
			continue
		}
		if acc > dataAcc {
			t.Fatalf("%v accuracy %.3f exceeds data parallelism's %.3f — ordering broken", s, acc, dataAcc)
		}
	}
	if sum.Overall < 0.75 || sum.Overall > 1.0 {
		t.Fatalf("overall accuracy %.3f outside the paper's regime (0.8674)", sum.Overall)
	}
	// CosmoFlow must be the least accurately projected model (74.14% in
	// the paper).
	worst := ""
	worstAcc := 2.0
	for m, acc := range sum.PerModel {
		if acc < worstAcc {
			worst, worstAcc = m, acc
		}
	}
	if worst != "cosmoflow128" {
		t.Fatalf("worst-projected model is %s (%.3f), paper says CosmoFlow", worst, worstAcc)
	}
}

func TestFilterCommCrossoverShape(t *testing.T) {
	// §5.3.1: on ImageNet models with B≥32, filter/channel comm exceeds
	// data parallelism's — across the whole Fig. 3 grid, every filter/
	// channel cell must have more comm than the matching data cell's GE.
	e := sharedEnv()
	cells, err := e.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	dataComm := map[string]float64{}
	for _, c := range cells {
		if c.Strategy == core.Data && c.P == 16 {
			dataComm[c.Model] = c.Measured.Comm()
		}
	}
	for _, c := range cells {
		if c.Strategy != core.Filter && c.Strategy != core.Channel {
			continue
		}
		if base, ok := dataComm[c.Model]; ok && c.Measured.Comm() <= base {
			t.Fatalf("%s/%v p=%d: comm %.4f does not exceed data comm %.4f",
				c.Model, c.Strategy, c.P, c.Measured.Comm(), base)
		}
	}
}
