package report

import (
	"fmt"
	"io"
	"math/rand"

	"paradl/internal/collective"
	"paradl/internal/simnet"
	"paradl/internal/strategy"
)

// Fig6Sample is one scatter point of the congestion study: a measured
// collective time at a given message size, with the α–β expectation.
type Fig6Sample struct {
	Bytes     float64
	Measured  float64
	Theory    float64
	Congested bool
	Inflation float64 // Measured / Theory
}

// Fig6Series is one panel: Allreduce for data-parallel ResNet-50@512 or
// Allgather for filter-parallel VGG16@64.
type Fig6Series struct {
	Name    string
	Samples []Fig6Sample
}

// Fig6 reproduces the network-congestion scatter: repeated collective
// measurements where a random subset of trials shares the fabric with
// background jobs. Most points track the theoretical bandwidth line;
// congested trials push up to ≈4× above it (§5.3.1 "Network
// Congestion").
func (e *Env) Fig6(trials int, congestedFrac float64, seed int64) []Fig6Series {
	rng := rand.New(rand.NewSource(seed))
	var out []Fig6Series

	runSeries := func(name string, pes []int, sizes []float64, allgather bool) {
		s := Fig6Series{Name: name}
		level := e.Sys.GroupLevel(0, len(pes))
		ab := collective.AB{Alpha: e.Sys.NCCL[level].Alpha, Beta: e.Sys.NCCL[level].Beta}
		for i := 0; i < trials; i++ {
			m := sizes[i%len(sizes)]
			congested := rng.Float64() < congestedFrac
			topo := simnet.NewTopology(e.Sys)
			sim := simnet.NewSim(topo.Net)
			if congested {
				// External jobs land several heavy flows on a few victim
				// node uplinks (and one rack spine): the ring's step time
				// is gated by its slowest link, pushing measured times to
				// multiples of the α–β line (the paper saw up to ≈4×).
				nVictims := 1 + rng.Intn(3)
				for v := 0; v < nVictims; v++ {
					pe := pes[rng.Intn(len(pes))]
					up := topo.UplinkOf(pe)
					for k := 0; k < 3; k++ {
						sim.Start([]simnet.LinkID{up}, 1e15)
					}
				}
				sim.Start([]simnet.LinkID{topo.RackUplinkOf(pes[0])}, 1e15)
			}
			var op *collective.Op
			var steps int
			var theory float64
			if allgather {
				chunk := m / float64(len(pes))
				op, steps = collective.RingRound("allgather", pes, chunk, false)
				theory = collective.RingAllgather(ab, len(pes), chunk)
			} else {
				op, steps = collective.RingRound("allreduce", pes, m/float64(len(pes)), false)
				theory = collective.RingAllreduce(ab, len(pes), m)
			}
			els := collective.RunConcurrent(sim, topo, []*collective.Op{op})
			measured := els[0] * float64(steps)
			s.Samples = append(s.Samples, Fig6Sample{
				Bytes: m, Measured: measured, Theory: theory,
				Congested: congested, Inflation: measured / theory,
			})
		}
		out = append(out, s)
	}

	// Panel 1: data-parallel ResNet-50 @ 512 GPUs — gradient Allreduce
	// of Σ|w| bytes (plus nearby sizes for the scatter).
	r50 := e.Model("resnet50")
	wBytes := float64(r50.TotalWeights()) * e.Sys.BytesPerItem
	runSeries("allreduce resnet50@512 (data)", strategy.AllPEs(512),
		[]float64{wBytes, wBytes * 2, wBytes * 4}, false)

	// Panel 2: filter-parallel VGG16 @ 64 GPUs — per-layer Allgather of
	// activation-sized messages.
	vgg := e.Model("vgg16")
	act := float64(vgg.Layers[0].OutSize()) * e.Sys.BytesPerItem * 32 // B=32
	runSeries("allgather vgg16@64 (filter)", strategy.AllPEs(64),
		[]float64{act / 4, act / 2, act}, true)
	return out
}

// WriteFig6 renders the scatter as text.
func (e *Env) WriteFig6(w io.Writer, trials int, congestedFrac float64, seed int64) error {
	series := e.Fig6(trials, congestedFrac, seed)
	fmt.Fprintln(w, "Figure 6 — network congestion: collective time vs α–β expectation")
	for _, s := range series {
		fmt.Fprintf(w, "\n%s\n", s.Name)
		tw := newTable(w)
		fmt.Fprintln(tw, "bytes\ttheory(ms)\tmeasured(ms)\tinflation\tcongested")
		for _, p := range s.Samples {
			fmt.Fprintf(tw, "%.0f\t%s\t%s\t%.2fx\t%v\n",
				p.Bytes, ms(p.Theory), ms(p.Measured), p.Inflation, p.Congested)
		}
		if err := tw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
