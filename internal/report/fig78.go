package report

import (
	"fmt"
	"io"

	"paradl/internal/core"
	"paradl/internal/measure"
)

// Fig7Row is one model's per-epoch compute split (Fig. 7: "Weight
// update is not trivial in large models").
type Fig7Row struct {
	Model   string
	B       int
	FW, BW  float64 // seconds per iteration
	WU      float64
	WUShare float64 // WU / (FW+BW+WU)
}

// Fig7 computes the FW/BW/WU split per iteration for every paper model
// at b=32 samples per GPU (CosmoFlow at its one-sample granularity).
func (e *Env) Fig7() []Fig7Row {
	var rows []Fig7Row
	for _, name := range []string{"resnet50", "resnet152", "vgg16", "cosmoflow"} {
		b := 32
		if name == "cosmoflow" {
			b = 1
		}
		lt := e.Profile(name, b)
		fw := float64(b) * lt.SumFW()
		bw := float64(b) * lt.SumBW()
		wu := lt.SumWU()
		rows = append(rows, Fig7Row{
			Model: name, B: b,
			FW: fw, BW: bw, WU: wu,
			WUShare: wu / (fw + bw + wu),
		})
	}
	return rows
}

// WriteFig7 renders the split.
func (e *Env) WriteFig7(w io.Writer) error {
	fmt.Fprintln(w, "Figure 7 — computation split per iteration (ms); weight update share")
	tw := newTable(w)
	fmt.Fprintln(tw, "model\tb\tFW\tBW\tWU\tWU share")
	for _, r := range e.Fig7() {
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\t%s\n",
			r.Model, r.B, ms(r.FW), ms(r.BW), ms(r.WU), pct(r.WUShare))
	}
	return tw.Flush()
}

// Fig8Row is one GPU count of the filter-parallel compute breakdown
// (Fig. 8: "Implementation of convolution layers does not scale well").
type Fig8Row struct {
	P int
	// Ideal is compute/p — what the oracle assumes.
	Ideal float64
	// Conv is the measured kernel time of the shrunken convolutions.
	Conv float64
	// Overhead is the split/concat rearrangement cost.
	Overhead float64
	// Efficiency = Ideal / (Conv + Overhead).
	Efficiency float64
}

// Fig8 reproduces the filter-parallelism compute breakdown for
// ResNet-50 at fixed global batch 32 from 4 to 64 GPUs.
func (e *Env) Fig8() ([]Fig8Row, error) {
	name := "resnet50"
	m := e.Model(name)
	b := 32

	// Single-GPU reference compute.
	var ref float64
	for i := range m.Layers {
		l := &m.Layers[i]
		ref += e.Dev.LayerFW(l, b, 1) + e.Dev.LayerBW(l, b, 1)
	}

	var rows []Fig8Row
	for _, p := range []int{4, 16, 64} {
		cfg := e.Config(name, p, b, b)
		res, err := measure.Measure(e.Engine, cfg, core.Filter)
		if err != nil {
			return nil, err
		}
		// Recompute the pure kernel part (without split/concat) to
		// separate the two Fig. 8 factors.
		var conv float64
		frac := 1.0 / float64(p)
		for i := range m.Layers {
			l := &m.Layers[i]
			conv += e.Dev.LayerFW(l, b, frac) + e.Dev.LayerBW(l, b, frac)
		}
		conv /= frameworkEff(core.Filter)
		total := res.Iter.FW + res.Iter.BW
		overhead := total - conv
		if overhead < 0 {
			overhead = 0
		}
		rows = append(rows, Fig8Row{
			P:          p,
			Ideal:      ref / float64(p),
			Conv:       conv,
			Overhead:   overhead,
			Efficiency: ref / float64(p) / total,
		})
	}
	return rows, nil
}

// frameworkEff mirrors measure's calibrated implementation-efficiency
// factor for breakdown decomposition.
func frameworkEff(s core.Strategy) float64 {
	switch s {
	case core.Filter:
		return 0.88
	case core.Channel:
		return 0.82
	default:
		return 1
	}
}

// WriteFig8 renders the breakdown.
func (e *Env) WriteFig8(w io.Writer) error {
	rows, err := e.Fig8()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8 — filter-parallel compute breakdown, ResNet-50, B=32 (ms per iteration)")
	tw := newTable(w)
	fmt.Fprintln(tw, "GPUs\tideal (ref/p)\tconv kernels\tsplit/concat\tefficiency")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			r.P, ms(r.Ideal), ms(r.Conv), ms(r.Overhead), pct(r.Efficiency))
	}
	return tw.Flush()
}
