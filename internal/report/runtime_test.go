package report

import (
	"bytes"
	"strings"
	"testing"

	"paradl/internal/core"
)

// TestRuntimeOverheadRows: the measured-vs-projected table carries the
// serial baseline plus every strategy feasible at p=2, with positive
// measurements and sane ratios on both sides.
func TestRuntimeOverheadRows(t *testing.T) {
	e := NewEnv()
	rows, err := e.RuntimeOverhead(2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Strategy != core.Serial || rows[0].MeasuredOverhead != 1 || rows[0].ProjectedOverhead != 1 {
		t.Fatalf("first row must be the serial baseline at overhead 1, got %+v", rows[0])
	}
	seen := map[core.Strategy]bool{}
	for _, r := range rows {
		seen[r.Strategy] = true
		if r.MeasuredSec <= 0 || r.MeasuredOverhead <= 0 || r.ProjectedOverhead <= 0 {
			t.Fatalf("%v: non-positive measurement %+v", r.Strategy, r)
		}
		if r.BlockingSec <= 0 || r.BlockingOverhead <= 0 {
			t.Fatalf("%v: missing blocking (overlap=off) measurement %+v", r.Strategy, r)
		}
	}
	// Every pure strategy admits p=2 on the toy model.
	for _, s := range []core.Strategy{core.Data, core.Spatial, core.Filter, core.Channel, core.Pipeline} {
		if !seen[s] {
			t.Fatalf("strategy %v missing from the p=2 table", s)
		}
	}
}

// TestRuntimeOverheadBounds: widths outside toy scale are rejected.
func TestRuntimeOverheadBounds(t *testing.T) {
	e := NewEnv()
	for _, p := range []int{0, 1, 9, 64} {
		if _, err := e.RuntimeOverhead(p); err == nil {
			t.Fatalf("p=%d must be rejected", p)
		}
	}
}

// TestWriteRuntimeOverhead: the rendering includes the header and one
// line per strategy.
func TestWriteRuntimeOverhead(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEnv().WriteRuntimeOverhead(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"measured overhead", "projected overhead", "serial", "data", "pipeline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}
