package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Int() != 8000 {
		t.Fatalf("counter = %v, want 8000", c.Int())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	for _, v := range []float64{0.5, 1, 2, 7, 100} {
		h.Observe(v)
	}
	// (≤1]: 0.5, 1 → 2; (1,5]: 2 → 1; (5,10]: 7 → 1; +Inf: 100 → 1.
	want := []int64{2, 1, 1, 1}
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-110.5) > 1e-9 {
		t.Errorf("sum = %v, want 110.5", h.Sum())
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	h1 := r.HistogramVec("d_seconds", "h", "phase", []float64{1}, "fw")
	h2 := r.HistogramVec("d_seconds", "h", "phase", []float64{1}, "fw")
	h3 := r.HistogramVec("d_seconds", "h", "phase", []float64{1}, "bw")
	if h1 != h2 || h1 == h3 {
		t.Fatal("HistogramVec label identity broken")
	}
}

// TestWritePrometheus pins the text exposition format: HELP/TYPE
// headers, label quoting, cumulative le buckets, _sum/_count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("paradl_requests_total", "Total requests.").Add(3)
	r.CounterVec("paradl_endpoint_requests_total", "Per endpoint.", "endpoint").With("project").Add(2)
	h := r.Histogram("paradl_latency_seconds", "Latency.", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(1)
	hv := r.HistogramVec("paradl_phase_seconds", "Phase time.", "phase", []float64{0.01}, "compute-forward")
	hv.Observe(0.002)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP paradl_requests_total Total requests.",
		"# TYPE paradl_requests_total counter",
		"paradl_requests_total 3",
		`paradl_endpoint_requests_total{endpoint="project"} 2`,
		"# TYPE paradl_latency_seconds histogram",
		`paradl_latency_seconds_bucket{le="0.001"} 1`,
		`paradl_latency_seconds_bucket{le="0.01"} 2`, // cumulative
		`paradl_latency_seconds_bucket{le="+Inf"} 3`,
		"paradl_latency_seconds_sum 1.0055",
		"paradl_latency_seconds_count 3",
		`paradl_phase_seconds_bucket{phase="compute-forward",le="0.01"} 1`,
		`paradl_phase_seconds_bucket{phase="compute-forward",le="+Inf"} 1`,
		`paradl_phase_seconds_sum{phase="compute-forward"} 0.002`,
		`paradl_phase_seconds_count{phase="compute-forward"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	// Every non-comment line must be "name{labels} value" — no NaNs.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "NaN") {
			t.Errorf("NaN in exposition line %q", line)
		}
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestObserveConcurrent(t *testing.T) {
	h := newHistogram([]float64{0.5})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(0.1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 || h.Buckets()[0] != 4000 {
		t.Fatalf("count=%d buckets=%v", h.Count(), h.Buckets())
	}
}
