// Package metrics is the shared operational-telemetry registry: a
// dependency-free set of counters and fixed-bucket histograms that
// render in Prometheus text exposition format (and snapshot as plain
// values for JSON views and tests). internal/serve keeps its request/
// cache/shed counters and latency histogram here, and internal/trace
// publishes per-phase duration histograms into the same registry type,
// so one scrape endpoint can expose both the service's and the
// runtime's telemetry without a client library dependency.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64 counter (float so
// second-valued totals fit; integral counts render without decimals).
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		newV := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, newV) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Int returns the current count truncated to int64 — for counters that
// only ever Inc.
func (c *Counter) Int() int64 { return int64(c.Value()) }

// CounterVec is a counter family keyed by one label's values.
type CounterVec struct {
	label string
	mu    sync.Mutex
	vals  map[string]*Counter
}

// With returns (creating on first use) the counter for label value v.
func (c *CounterVec) With(v string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.vals == nil {
		c.vals = map[string]*Counter{}
	}
	ctr := c.vals[v]
	if ctr == nil {
		ctr = &Counter{}
		c.vals[v] = ctr
	}
	return ctr
}

// Snapshot returns the family's values keyed by label value.
func (c *CounterVec) Snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v.Value()
	}
	return out
}

// Histogram is a fixed-bucket distribution. Bounds are upper bounds in
// the metric's unit (seconds for durations); counts[i] is the number of
// observations in (bounds[i-1], bounds[i]] — raw per-bucket counts, as
// the expvar-style JSON view wants — and the Prometheus renderer
// accumulates them into the cumulative le series the format requires.
// The implicit final bucket is +Inf.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1: the last is the +Inf bucket
	sum    Counter
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the raw (non-cumulative) per-bucket counts; the
// final entry is the +Inf bucket.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// metric is one registered family.
type metric struct {
	name, help, typ string
	counter         *Counter
	vec             *CounterVec
	hist            *Histogram
	histVec         map[string]*Histogram // labelValue → histogram (one label)
	histVecKeys     []string              // registration order
}

// Registry holds registered metrics and renders them. The zero value
// is not usable; construct with NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byName: map[string]*metric{}} }

func (r *Registry) register(name string, m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byName[name]; ok {
		return prev
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, &metric{name: name, help: help, typ: "counter", counter: &Counter{}})
	return m.counter
}

// CounterVec registers (or returns) a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, &metric{name: name, help: help, typ: "counter", vec: &CounterVec{label: label}})
	return m.vec
}

// Histogram registers (or returns) a histogram with the given upper
// bounds (ascending, excluding +Inf).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, &metric{name: name, help: help, typ: "histogram",
		hist: newHistogram(bounds)})
	return m.hist
}

// HistogramVec returns (registering on first use) the histogram of one
// label value within a one-label histogram family — e.g. the
// per-phase duration histograms paradl_phase_duration_seconds{phase=x}.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64, labelValue string) *Histogram {
	m := r.register(name, &metric{name: name, help: help, typ: "histogram",
		vec: &CounterVec{label: label}, histVec: map[string]*Histogram{}})
	r.mu.Lock()
	defer r.mu.Unlock()
	h := m.histVec[labelValue]
	if h == nil {
		h = newHistogram(bounds)
		m.histVec[labelValue] = h
		m.histVecKeys = append(m.histVecKeys, labelValue)
	}
	return h
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// fmtFloat renders a sample value: integers without decimals, the rest
// in shortest round-trip form — matching the text exposition format's
// conventions.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fmtLe renders a histogram bucket bound for the le label.
func fmtLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, counter
// samples, and cumulative-le histogram series with _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		switch {
		case m.counter != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.counter.Value()))
		case m.histVec != nil:
			r.mu.Lock()
			keys := append([]string(nil), m.histVecKeys...)
			hs := make([]*Histogram, len(keys))
			for i, k := range keys {
				hs[i] = m.histVec[k]
			}
			label := m.vec.label
			r.mu.Unlock()
			sort.Sort(&byKey{keys, hs})
			for i, k := range keys {
				writeHistogram(w, m.name, fmt.Sprintf("%s=%q,", label, k), hs[i])
			}
		case m.vec != nil:
			snap := m.vec.Snapshot()
			keys := make([]string, 0, len(snap))
			for k := range snap {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", m.name, m.vec.label, k, fmtFloat(snap[k]))
			}
		case m.hist != nil:
			writeHistogram(w, m.name, "", m.hist)
		}
	}
}

// byKey co-sorts label keys with their histograms.
type byKey struct {
	keys []string
	hs   []*Histogram
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.hs[i], s.hs[j] = s.hs[j], s.hs[i]
}

// writeHistogram renders one histogram's cumulative le series.
// labelPrefix is "" or `key="value",` for a one-label family member.
func writeHistogram(w io.Writer, name, labelPrefix string, h *Histogram) {
	counts := h.Buckets()
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labelPrefix, fmtLe(b), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labelPrefix, cum)
	if labelPrefix == "" {
		fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, fmtFloat(h.Sum()), name, h.Count())
		return
	}
	lp := labelPrefix[:len(labelPrefix)-1] // drop the trailing comma
	fmt.Fprintf(w, "%s_sum{%s} %s\n%s_count{%s} %d\n", name, lp, fmtFloat(h.Sum()), name, lp, h.Count())
}
