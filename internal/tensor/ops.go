package tensor

import (
	"fmt"
	"math"
)

// ReLUForward returns max(0, x) element-wise.
func ReLUForward(x *Tensor) *Tensor {
	y := New(x.shape...)
	for i, v := range x.data {
		if v > 0 {
			y.data[i] = v
		}
	}
	return y
}

// ReLUBackward returns dy masked by the sign of the forward input x.
func ReLUBackward(dy, x *Tensor) *Tensor {
	dy.mustSameShape(x)
	dx := New(x.shape...)
	for i, v := range x.data {
		if v > 0 {
			dx.data[i] = dy.data[i]
		}
	}
	return dx
}

// FCForward computes a fully-connected layer y = x·Wᵀ + b where x is
// [N, In] (or any shape flattened to it), w is [Out, In] and b is [Out]
// or nil. The result is [N, Out].
//
// A fully-connected layer is the degenerate convolution of the paper's
// notation (filter size equal to the input size), but a dedicated matmul
// keeps the real execution path fast.
func FCForward(x, w, b *Tensor) *Tensor {
	n := x.shape[0]
	in := x.Len() / n
	out, win := w.shape[0], w.Len()/w.shape[0]
	if win != in {
		panic(fmt.Sprintf("tensor: fc input %d does not match weight inner %d", in, win))
	}
	if b != nil && b.Len() != out {
		panic(fmt.Sprintf("tensor: fc bias length %d does not match out %d", b.Len(), out))
	}
	y := New(n, out)
	for ni := 0; ni < n; ni++ {
		xRow := x.data[ni*in : (ni+1)*in]
		for oi := 0; oi < out; oi++ {
			wRow := w.data[oi*in : (oi+1)*in]
			acc := 0.0
			for k, xv := range xRow {
				acc += xv * wRow[k]
			}
			if b != nil {
				acc += b.data[oi]
			}
			y.data[ni*out+oi] = acc
		}
	}
	return y
}

// FCBackward computes the input, weight and bias gradients of FCForward.
// dy is [N, Out]; xShape restores the original input shape.
func FCBackward(dy, x, w *Tensor, xShape []int) (dx, dw, db *Tensor) {
	n := x.shape[0]
	in := x.Len() / n
	out := w.shape[0]
	if dy.shape[0] != n || dy.Len()/n != out {
		panic(fmt.Sprintf("tensor: fc bwd dy shape %v inconsistent with N=%d Out=%d", dy.Shape(), n, out))
	}
	dx = New(xShape...)
	dw = New(w.shape...)
	db = New(out)
	for ni := 0; ni < n; ni++ {
		xRow := x.data[ni*in : (ni+1)*in]
		dxRow := dx.data[ni*in : (ni+1)*in]
		for oi := 0; oi < out; oi++ {
			g := dy.data[ni*out+oi]
			if g == 0 {
				continue
			}
			db.data[oi] += g
			wRow := w.data[oi*in : (oi+1)*in]
			dwRow := dw.data[oi*in : (oi+1)*in]
			for k := range wRow {
				dxRow[k] += g * wRow[k]
				dwRow[k] += g * xRow[k]
			}
		}
	}
	return dx, dw, db
}

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss of
// logits [N, K] against integer labels, plus the gradient with respect
// to the logits (already divided by N, as in the paper's SGD update).
func SoftmaxCrossEntropy(logits *Tensor, labels []int) (loss float64, dlogits *Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("tensor: softmax expects rank-2 logits, got %v", logits.Shape()))
	}
	n, k := logits.shape[0], logits.shape[1]
	if len(labels) != n {
		panic(fmt.Sprintf("tensor: %d labels for batch of %d", len(labels), n))
	}
	dlogits = New(n, k)
	for ni := 0; ni < n; ni++ {
		row := logits.data[ni*k : (ni+1)*k]
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxv)
		}
		logSum := math.Log(sum) + maxv
		lbl := labels[ni]
		if lbl < 0 || lbl >= k {
			panic(fmt.Sprintf("tensor: label %d out of range [0,%d)", lbl, k))
		}
		loss += logSum - row[lbl]
		for ki := 0; ki < k; ki++ {
			p := math.Exp(row[ki] - logSum)
			g := p
			if ki == lbl {
				g -= 1
			}
			dlogits.data[ni*k+ki] = g / float64(n)
		}
	}
	return loss / float64(n), dlogits
}

// AddBias adds a per-channel bias b[C] to an activation [N, C,
// spatial...] in place. Channel parallelism applies the bias AFTER the
// cross-PE Allreduce of partial sums so it is added exactly once.
func AddBias(y, b *Tensor) {
	n, c, spatial := splitActShape(y)
	if b.Len() != c {
		panic(fmt.Sprintf("tensor: bias length %d does not match C=%d", b.Len(), c))
	}
	vol := Volume(spatial)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			bv := b.data[ci]
			for i := 0; i < vol; i++ {
				y.data[base+i] += bv
			}
		}
	}
}

// SGDStep applies w -= lr*dw in place.
func SGDStep(w, dw *Tensor, lr float64) {
	w.mustSameShape(dw)
	for i, g := range dw.data {
		w.data[i] -= lr * g
	}
}
