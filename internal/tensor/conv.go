package tensor

import "fmt"

// ConvSpec describes an N-spatial-dimensional convolution. Stride and
// Pad have one entry per spatial dimension.
type ConvSpec struct {
	Stride []int
	Pad    []int
}

// UniformConv returns a ConvSpec with the same stride and pad in every
// one of dims spatial dimensions.
func UniformConv(dims, stride, pad int) ConvSpec {
	s := make([]int, dims)
	p := make([]int, dims)
	for i := range s {
		s[i] = stride
		p[i] = pad
	}
	return ConvSpec{Stride: s, Pad: p}
}

// ConvForward computes a direct convolution.
//
//	x: [N, C, in...]   w: [F, C, k...]   b: [F] or nil
//
// and returns y: [N, F, out...] with out[i] = ConvOutSize(in[i], k[i],
// stride[i], pad[i]). The spatial rank is inferred from x.
func ConvForward(x, w, b *Tensor, spec ConvSpec) *Tensor {
	n, c, inDims := splitActShape(x)
	f, wc, kDims := splitWeightShape(w)
	if wc != c {
		panic(fmt.Sprintf("tensor: conv channel mismatch x has C=%d, w has C=%d", c, wc))
	}
	if len(kDims) != len(inDims) {
		panic(fmt.Sprintf("tensor: conv spatial rank mismatch input %d vs kernel %d", len(inDims), len(kDims)))
	}
	checkSpec(spec, len(inDims))
	if b != nil && (b.Rank() != 1 || b.Dim(0) != f) {
		panic(fmt.Sprintf("tensor: conv bias shape %v does not match F=%d", b.Shape(), f))
	}

	outDims := make([]int, len(inDims))
	for i := range inDims {
		outDims[i] = ConvOutSize(inDims[i], kDims[i], spec.Stride[i], spec.Pad[i])
	}
	y := New(append([]int{n, f}, outDims...)...)

	inVol := Volume(inDims)
	outVol := Volume(outDims)
	kVol := Volume(kDims)
	inStr := computeStrides(inDims)
	kCoords := enumerate(kDims)
	outCoords := enumerate(outDims)

	xd, wd, yd := x.data, w.data, y.data
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			bias := 0.0
			if b != nil {
				bias = b.data[fi]
			}
			yBase := (ni*f + fi) * outVol
			for oi, oc := range outCoords {
				acc := bias
				for ki := 0; ki < kVol; ki++ {
					kc := kCoords[ki]
					// input spatial offset for this (output, kernel) pair
					inOff := 0
					ok := true
					for d := range oc {
						pos := oc[d]*spec.Stride[d] - spec.Pad[d] + kc[d]
						if pos < 0 || pos >= inDims[d] {
							ok = false
							break
						}
						inOff += pos * inStr[d]
					}
					if !ok {
						continue
					}
					for ci := 0; ci < c; ci++ {
						acc += xd[(ni*c+ci)*inVol+inOff] * wd[((fi*c+ci)*kVol)+ki]
					}
				}
				yd[yBase+oi] = acc
			}
		}
	}
	return y
}

// ConvBackwardData computes the gradient of the loss with respect to the
// convolution input: dx = BW_data(dy, w). dy is [N, F, out...] and the
// result matches the forward input shape inShape ([N, C, in...]).
func ConvBackwardData(dy, w *Tensor, inShape []int, spec ConvSpec) *Tensor {
	n, f, outDims := splitActShape(dy)
	wf, c, kDims := splitWeightShape(w)
	if wf != f {
		panic(fmt.Sprintf("tensor: conv bwd filter mismatch dy has F=%d, w has F=%d", f, wf))
	}
	if len(inShape) != 2+len(kDims) || inShape[0] != n || inShape[1] != c {
		panic(fmt.Sprintf("tensor: conv bwd input shape %v inconsistent with dy %v and w %v", inShape, dy.Shape(), w.Shape()))
	}
	checkSpec(spec, len(kDims))
	inDims := inShape[2:]

	dx := New(inShape...)
	inVol := Volume(inDims)
	outVol := Volume(outDims)
	kVol := Volume(kDims)
	inStr := computeStrides(inDims)
	kCoords := enumerate(kDims)
	outCoords := enumerate(outDims)

	dyd, wd, dxd := dy.data, w.data, dx.data
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			dyBase := (ni*f + fi) * outVol
			for oi, oc := range outCoords {
				g := dyd[dyBase+oi]
				if g == 0 {
					continue
				}
				for ki := 0; ki < kVol; ki++ {
					kc := kCoords[ki]
					inOff := 0
					ok := true
					for d := range oc {
						pos := oc[d]*spec.Stride[d] - spec.Pad[d] + kc[d]
						if pos < 0 || pos >= inDims[d] {
							ok = false
							break
						}
						inOff += pos * inStr[d]
					}
					if !ok {
						continue
					}
					for ci := 0; ci < c; ci++ {
						dxd[(ni*c+ci)*inVol+inOff] += g * wd[(fi*c+ci)*kVol+ki]
					}
				}
			}
		}
	}
	return dx
}

// ConvBackwardWeight computes the gradients of the loss with respect to
// the weights and bias: dw = BW_weight(dy, x), db = Σ dy. The returned
// dw matches wShape ([F, C, k...]); db is [F].
func ConvBackwardWeight(dy, x *Tensor, wShape []int, spec ConvSpec) (dw, db *Tensor) {
	n, f, outDims := splitActShape(dy)
	xn, c, inDims := splitActShape(x)
	if xn != n {
		panic(fmt.Sprintf("tensor: conv bwd batch mismatch dy N=%d, x N=%d", n, xn))
	}
	if len(wShape) != 2+len(inDims) || wShape[0] != f || wShape[1] != c {
		panic(fmt.Sprintf("tensor: conv bwd weight shape %v inconsistent with dy %v and x %v", wShape, dy.Shape(), x.Shape()))
	}
	checkSpec(spec, len(inDims))
	kDims := wShape[2:]

	dw = New(wShape...)
	db = New(f)
	inVol := Volume(inDims)
	outVol := Volume(outDims)
	kVol := Volume(kDims)
	inStr := computeStrides(inDims)
	kCoords := enumerate(kDims)
	outCoords := enumerate(outDims)

	dyd, xd, dwd := dy.data, x.data, dw.data
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			dyBase := (ni*f + fi) * outVol
			for oi, oc := range outCoords {
				g := dyd[dyBase+oi]
				if g == 0 {
					continue
				}
				db.data[fi] += g
				for ki := 0; ki < kVol; ki++ {
					kc := kCoords[ki]
					inOff := 0
					ok := true
					for d := range oc {
						pos := oc[d]*spec.Stride[d] - spec.Pad[d] + kc[d]
						if pos < 0 || pos >= inDims[d] {
							ok = false
							break
						}
						inOff += pos * inStr[d]
					}
					if !ok {
						continue
					}
					for ci := 0; ci < c; ci++ {
						dwd[(fi*c+ci)*kVol+ki] += g * xd[(ni*c+ci)*inVol+inOff]
					}
				}
			}
		}
	}
	return dw, db
}

// splitActShape decomposes an activation shape [N, C, spatial...].
func splitActShape(t *Tensor) (n, c int, spatial []int) {
	if t.Rank() < 2 {
		panic(fmt.Sprintf("tensor: activation rank %d < 2", t.Rank()))
	}
	return t.shape[0], t.shape[1], t.shape[2:]
}

// splitWeightShape decomposes a weight shape [F, C, kernel...].
func splitWeightShape(t *Tensor) (f, c int, kernel []int) {
	if t.Rank() < 2 {
		panic(fmt.Sprintf("tensor: weight rank %d < 2", t.Rank()))
	}
	return t.shape[0], t.shape[1], t.shape[2:]
}

func checkSpec(spec ConvSpec, dims int) {
	if len(spec.Stride) != dims || len(spec.Pad) != dims {
		panic(fmt.Sprintf("tensor: conv spec rank (stride %d, pad %d) does not match spatial rank %d", len(spec.Stride), len(spec.Pad), dims))
	}
}

// enumerate lists all multi-indices of shape in row-major order.
func enumerate(shape []int) [][]int {
	out := make([][]int, 0, Volume(shape))
	for it := NewIndex(shape); it.Valid(); it.Next() {
		out = append(out, append([]int(nil), it.Current()...))
	}
	return out
}
