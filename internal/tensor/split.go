package tensor

import "fmt"

// SplitSizes divides total into parts chunks whose sizes differ by at
// most one, with the remainder spread over the leading chunks. It is the
// canonical decomposition used by every parallel strategy.
func SplitSizes(total, parts int) []int {
	if parts <= 0 {
		panic(fmt.Sprintf("tensor: cannot split into %d parts", parts))
	}
	q, r := total/parts, total%parts
	sizes := make([]int, parts)
	for i := range sizes {
		sizes[i] = q
		if i < r {
			sizes[i]++
		}
	}
	return sizes
}

// SplitOffsets returns the starting offset of each chunk produced by
// SplitSizes(total, parts).
func SplitOffsets(total, parts int) []int {
	sizes := SplitSizes(total, parts)
	offs := make([]int, parts)
	o := 0
	for i, s := range sizes {
		offs[i] = o
		o += s
	}
	return offs
}

// Split partitions t along axis into parts tensors with near-equal
// extents (leading chunks take the remainder). The returned tensors are
// copies, mirroring the scatter/split performed by the parallel
// strategies.
func (t *Tensor) Split(axis, parts int) []*Tensor {
	if axis < 0 || axis >= len(t.shape) {
		panic(fmt.Sprintf("tensor: split axis %d out of range for shape %v", axis, t.shape))
	}
	sizes := SplitSizes(t.shape[axis], parts)
	out := make([]*Tensor, parts)
	start := 0
	for i, sz := range sizes {
		out[i] = t.Narrow(axis, start, sz)
		start += sz
	}
	return out
}

// Narrow returns a copy of the sub-tensor covering [start, start+length)
// along axis and the full extent of every other axis.
func (t *Tensor) Narrow(axis, start, length int) *Tensor {
	if axis < 0 || axis >= len(t.shape) {
		panic(fmt.Sprintf("tensor: narrow axis %d out of range for shape %v", axis, t.shape))
	}
	if start < 0 || length < 0 || start+length > t.shape[axis] {
		panic(fmt.Sprintf("tensor: narrow [%d,%d) out of range for dim %d", start, start+length, t.shape[axis]))
	}
	outShape := t.Shape()
	outShape[axis] = length
	out := New(outShape...)
	copyRegion(out, t, axis, 0, start, length)
	return out
}

// CopyInto writes src into t at offset start along axis. Every other
// dimension must match exactly. It is the inverse of Narrow and the
// building block of Concat and halo assembly.
func (t *Tensor) CopyInto(src *Tensor, axis, start int) {
	if axis < 0 || axis >= len(t.shape) {
		panic(fmt.Sprintf("tensor: copyInto axis %d out of range for shape %v", axis, t.shape))
	}
	if src.Rank() != t.Rank() {
		panic("tensor: copyInto rank mismatch")
	}
	for i := range t.shape {
		if i == axis {
			continue
		}
		if t.shape[i] != src.shape[i] {
			panic(fmt.Sprintf("tensor: copyInto shape mismatch %v into %v on axis %d", src.shape, t.shape, axis))
		}
	}
	if start < 0 || start+src.shape[axis] > t.shape[axis] {
		panic(fmt.Sprintf("tensor: copyInto [%d,%d) out of range for dim %d", start, start+src.shape[axis], t.shape[axis]))
	}
	copyRegion(t, src, axis, start, 0, src.shape[axis])
}

// copyRegion copies length planes along axis from src (starting at
// srcStart) into dst (starting at dstStart). Outer dims are iterated,
// inner contiguous runs are block-copied.
func copyRegion(dst, src *Tensor, axis, dstStart, srcStart, length int) {
	// inner = product of dims after axis (contiguous run length per plane)
	inner := 1
	for i := axis + 1; i < len(src.shape); i++ {
		inner *= src.shape[i]
	}
	// outer = product of dims before axis
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= src.shape[i]
	}
	srcAxis := src.shape[axis]
	dstAxis := dst.shape[axis]
	for o := 0; o < outer; o++ {
		srcBase := (o*srcAxis + srcStart) * inner
		dstBase := (o*dstAxis + dstStart) * inner
		copy(dst.data[dstBase:dstBase+length*inner], src.data[srcBase:srcBase+length*inner])
	}
}

// Concat joins tensors along axis. All inputs must agree on every other
// dimension.
func Concat(axis int, parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		panic("tensor: concat of zero tensors")
	}
	outShape := parts[0].Shape()
	total := 0
	for _, p := range parts {
		if p.Rank() != len(outShape) {
			panic("tensor: concat rank mismatch")
		}
		for i := range outShape {
			if i == axis {
				continue
			}
			if p.shape[i] != outShape[i] {
				panic(fmt.Sprintf("tensor: concat shape mismatch %v vs %v on axis %d", p.shape, outShape, axis))
			}
		}
		total += p.shape[axis]
	}
	outShape[axis] = total
	out := New(outShape...)
	start := 0
	for _, p := range parts {
		out.CopyInto(p, axis, start)
		start += p.shape[axis]
	}
	return out
}

// PadEdges returns a copy of t zero-padded by lo[i] before and hi[i]
// after along each axis. lo and hi must have length Rank().
func (t *Tensor) PadEdges(lo, hi []int) *Tensor {
	if len(lo) != t.Rank() || len(hi) != t.Rank() {
		panic("tensor: pad rank mismatch")
	}
	outShape := make([]int, t.Rank())
	for i := range outShape {
		if lo[i] < 0 || hi[i] < 0 {
			panic("tensor: negative padding")
		}
		outShape[i] = lo[i] + t.shape[i] + hi[i]
	}
	out := New(outShape...)
	if t.Len() == 0 {
		return out
	}
	for it := NewIndex(t.shape); it.Valid(); it.Next() {
		src := it.Current()
		dst := make([]int, len(src))
		for i, x := range src {
			dst[i] = x + lo[i]
		}
		out.Set(t.At(src...), dst...)
	}
	return out
}

// SliceRegion returns a copy of the hyper-rectangle [start[i],
// start[i]+size[i]) of t.
func (t *Tensor) SliceRegion(start, size []int) *Tensor {
	if len(start) != t.Rank() || len(size) != t.Rank() {
		panic("tensor: slice rank mismatch")
	}
	for i := range start {
		if start[i] < 0 || size[i] < 0 || start[i]+size[i] > t.shape[i] {
			panic(fmt.Sprintf("tensor: slice [%d,%d) out of range for dim %d (extent %d)", start[i], start[i]+size[i], i, t.shape[i]))
		}
	}
	out := New(size...)
	if out.Len() == 0 {
		return out
	}
	for it := NewIndex(size); it.Valid(); it.Next() {
		dst := it.Current()
		src := make([]int, len(dst))
		for i, x := range dst {
			src[i] = x + start[i]
		}
		out.Set(t.At(src...), dst...)
	}
	return out
}
