package tensor

import "fmt"

// Index iterates multi-indices in row-major order. It is the shared
// traversal helper for the generic N-d kernels in this package.
type Index struct {
	shape []int
	idx   []int
	done  bool
}

// NewIndex returns an iterator over all multi-indices of shape, starting
// at the all-zeros index. An empty shape yields exactly one (scalar)
// index; a shape containing a zero dimension yields none.
func NewIndex(shape []int) *Index {
	it := &Index{
		shape: shape,
		idx:   make([]int, len(shape)),
	}
	for _, d := range shape {
		if d == 0 {
			it.done = true
		}
	}
	return it
}

// Current returns the current multi-index. The returned slice is reused
// between calls; copy it if it must survive Next.
func (it *Index) Current() []int { return it.idx }

// Valid reports whether the iterator points at a valid index.
func (it *Index) Valid() bool { return !it.done }

// Next advances to the next index in row-major order.
func (it *Index) Next() {
	for i := len(it.idx) - 1; i >= 0; i-- {
		it.idx[i]++
		if it.idx[i] < it.shape[i] {
			return
		}
		it.idx[i] = 0
	}
	it.done = true
}

// ConvOutSize returns the output extent of a convolution along one
// dimension: floor((in + 2*pad - kernel)/stride) + 1. It panics when the
// geometry is invalid.
func ConvOutSize(in, kernel, stride, pad int) int {
	if stride <= 0 {
		panic(fmt.Sprintf("tensor: stride must be positive, got %d", stride))
	}
	n := in + 2*pad - kernel
	if n < 0 {
		panic(fmt.Sprintf("tensor: kernel %d larger than padded input %d", kernel, in+2*pad))
	}
	return n/stride + 1
}

// PoolOutSize returns the output extent of a pooling window, identical
// to ConvOutSize.
func PoolOutSize(in, window, stride, pad int) int { return ConvOutSize(in, window, stride, pad) }

// EqualShapes reports whether two shape slices are identical.
func EqualShapes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, d := range a {
		if b[i] != d {
			return false
		}
	}
	return true
}
