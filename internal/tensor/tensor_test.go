package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestNewScalar(t *testing.T) {
	s := New()
	if s.Len() != 1 || s.Rank() != 0 {
		t.Fatalf("scalar: Len=%d Rank=%d", s.Len(), s.Rank())
	}
	s.Set(3.5)
	if s.At() != 3.5 {
		t.Fatalf("scalar At = %v", s.At())
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer expectPanic(t, "negative dim")
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4, 5)
	rng := rand.New(rand.NewSource(1))
	want := map[[3]int]float64{}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				v := rng.Float64()
				x.Set(v, i, j, k)
				want[[3]int{i, j, k}] = v
			}
		}
	}
	for idx, v := range want {
		if got := x.At(idx[0], idx[1], idx[2]); got != v {
			t.Fatalf("At(%v) = %v, want %v", idx, got, v)
		}
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer expectPanic(t, "out of bounds")
	New(2, 2).At(0, 2)
}

func TestAtRankMismatchPanics(t *testing.T) {
	defer expectPanic(t, "rank mismatch")
	New(2, 2).At(0)
}

func TestFromSliceSharesData(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[3] = 99
	if x.At(1, 1) != 99 {
		t.Fatal("FromSlice must adopt the slice without copying")
	}
}

func TestFromSliceWrongLenPanics(t *testing.T) {
	defer expectPanic(t, "length mismatch")
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	c := x.Clone()
	c.Set(5, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape At(2,1) = %v, want 6", y.At(2, 1))
	}
	y.Set(0, 0, 0)
	if x.At(0, 0) != 0 {
		t.Fatal("Reshape must be a view")
	}
}

func TestReshapeVolumeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "volume mismatch")
	New(2, 3).Reshape(4, 2)
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	a.Add(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("Add: got %v", a.At(1, 1))
	}
	a.Sub(b)
	if a.At(1, 1) != 4 {
		t.Fatalf("Sub: got %v", a.At(1, 1))
	}
	a.Scale(2)
	if a.At(0, 0) != 2 {
		t.Fatalf("Scale: got %v", a.At(0, 0))
	}
	a.AXPY(0.5, b)
	if a.At(0, 1) != 4+10 {
		t.Fatalf("AXPY: got %v", a.At(0, 1))
	}
}

func TestSumMaxAbs(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
}

func TestAllCloseAndMaxDiff(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{1.0001, 2}, 2)
	if !a.AllClose(b, 1e-3) {
		t.Fatal("AllClose(1e-3) should hold")
	}
	if a.AllClose(b, 1e-6) {
		t.Fatal("AllClose(1e-6) should fail")
	}
	if d := a.MaxDiff(b); math.Abs(d-0.0001) > 1e-12 {
		t.Fatalf("MaxDiff = %v", d)
	}
}

func TestAllCloseShapeMismatch(t *testing.T) {
	if New(2).AllClose(New(3), 1) {
		t.Fatal("AllClose across shapes must be false")
	}
}

func TestStringTruncates(t *testing.T) {
	s := New(100).String()
	if len(s) == 0 {
		t.Fatal("empty String()")
	}
}

// Property: Add is commutative on the element level: a+b == b+a.
func TestAddCommutativeProperty(t *testing.T) {
	f := func(vals [16]float64, vals2 [16]float64) bool {
		a1 := FromSlice(append([]float64(nil), vals[:]...), 4, 4)
		b1 := FromSlice(append([]float64(nil), vals2[:]...), 4, 4)
		a2 := FromSlice(append([]float64(nil), vals2[:]...), 4, 4)
		b2 := FromSlice(append([]float64(nil), vals[:]...), 4, 4)
		a1.Add(b1)
		a2.Add(b2)
		return a1.AllClose(a2, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale(s) then Scale(1/s) restores the tensor (for sane s).
func TestScaleInverseProperty(t *testing.T) {
	f := func(vals [8]float64, s float64) bool {
		if s == 0 || math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) < 1e-6 || math.Abs(s) > 1e6 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				return true
			}
		}
		x := FromSlice(append([]float64(nil), vals[:]...), 8)
		orig := x.Clone()
		x.Scale(s)
		x.Scale(1 / s)
		return x.AllClose(orig, 1e-6*orig.MaxAbs()+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexIterationOrder(t *testing.T) {
	var got [][]int
	for it := NewIndex([]int{2, 3}); it.Valid(); it.Next() {
		got = append(got, append([]int(nil), it.Current()...))
	}
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("iterated %d indices, want %d", len(got), len(want))
	}
	for i := range want {
		if !EqualShapes(got[i], want[i]) {
			t.Fatalf("index %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIndexEmptyShapeIsScalar(t *testing.T) {
	n := 0
	for it := NewIndex(nil); it.Valid(); it.Next() {
		n++
	}
	if n != 1 {
		t.Fatalf("scalar iteration count = %d, want 1", n)
	}
}

func TestIndexZeroDimYieldsNothing(t *testing.T) {
	n := 0
	for it := NewIndex([]int{3, 0}); it.Valid(); it.Next() {
		n++
	}
	if n != 0 {
		t.Fatalf("zero-dim iteration count = %d, want 0", n)
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{224, 3, 1, 1, 224},
		{224, 7, 2, 3, 112},
		{28, 2, 2, 0, 14},
		{5, 5, 1, 0, 1},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConvOutSizeInvalidPanics(t *testing.T) {
	defer expectPanic(t, "kernel larger than input")
	ConvOutSize(2, 5, 1, 0)
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Fatalf("expected panic: %s", what)
	}
}
