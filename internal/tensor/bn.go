package tensor

import (
	"fmt"
	"math"
)

// BNState carries the intermediates of a batch-normalization forward
// pass needed by the backward pass.
type BNState struct {
	Mean, Var *Tensor // per-channel statistics [C]
	XHat      *Tensor // normalized input, same shape as x
	Eps       float64
	Count     int // number of elements reduced per channel (N × spatial)
}

// BNForward applies channel-wise batch normalization to x [N, C,
// spatial...] with scale gamma [C] and shift beta [C]:
//
//	y = gamma * (x - mean_c) / sqrt(var_c + eps) + beta
//
// Statistics are computed over the batch and spatial dimensions, i.e.
// the unsynchronized local-batch BN of common frameworks (§4.5.2). The
// dist runtime layers synchronized variants on top of this kernel.
func BNForward(x, gamma, beta *Tensor, eps float64) (*Tensor, *BNState) {
	n, c, spatial := splitActShape(x)
	if gamma.Len() != c || beta.Len() != c {
		panic(fmt.Sprintf("tensor: bn gamma/beta length must be C=%d", c))
	}
	vol := Volume(spatial)
	cnt := n * vol
	mean := New(c)
	variance := New(c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			for i := 0; i < vol; i++ {
				mean.data[ci] += x.data[base+i]
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		mean.data[ci] /= float64(cnt)
	}
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			m := mean.data[ci]
			for i := 0; i < vol; i++ {
				d := x.data[base+i] - m
				variance.data[ci] += d * d
			}
		}
	}
	for ci := 0; ci < c; ci++ {
		variance.data[ci] /= float64(cnt)
	}

	y := New(x.shape...)
	xhat := New(x.shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			m := mean.data[ci]
			inv := 1.0 / sqrt(variance.data[ci]+eps)
			g := gamma.data[ci]
			b := beta.data[ci]
			for i := 0; i < vol; i++ {
				xh := (x.data[base+i] - m) * inv
				xhat.data[base+i] = xh
				y.data[base+i] = g*xh + b
			}
		}
	}
	return y, &BNState{Mean: mean, Var: variance, XHat: xhat, Eps: eps, Count: cnt}
}

// BNBackward computes gradients of batch normalization with respect to
// the input, gamma, and beta.
func BNBackward(dy, gamma *Tensor, st *BNState) (dx, dgamma, dbeta *Tensor) {
	dgamma, dbeta = BNBackwardReduce(dy, st)
	dx = BNBackwardApply(dy, gamma, st, dgamma, dbeta)
	return dx, dgamma, dbeta
}

// BNBackwardReduce computes the per-channel reductions Σ dy·x̂ (which
// equals dgamma) and Σ dy (dbeta). Under synchronized BN these partial
// sums are Allreduced across PEs before BNBackwardApply (§4.5.2).
func BNBackwardReduce(dy *Tensor, st *BNState) (sumDyXhat, sumDy *Tensor) {
	n, c, spatial := splitActShape(dy)
	vol := Volume(spatial)
	sumDyXhat = New(c)
	sumDy = New(c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			for i := 0; i < vol; i++ {
				sumDyXhat.data[ci] += dy.data[base+i] * st.XHat.data[base+i]
				sumDy.data[ci] += dy.data[base+i]
			}
		}
	}
	return sumDyXhat, sumDy
}

// BNBackwardApply finishes the input gradient given the (possibly
// globally reduced) channel sums. st.Count must be the GLOBAL element
// count the statistics were computed over.
func BNBackwardApply(dy, gamma *Tensor, st *BNState, sumDyXhat, sumDy *Tensor) *Tensor {
	n, c, spatial := splitActShape(dy)
	vol := Volume(spatial)
	m := float64(st.Count)
	dx := New(dy.shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			inv := 1.0 / sqrt(st.Var.data[ci]+st.Eps)
			g := gamma.data[ci]
			sd := sumDy.data[ci]
			sdx := sumDyXhat.data[ci]
			for i := 0; i < vol; i++ {
				xh := st.XHat.data[base+i]
				dx.data[base+i] = g * inv / m * (m*dy.data[base+i] - sd - xh*sdx)
			}
		}
	}
	return dx
}

// BNLocalStats returns per-channel Σx and Σx² plus the local element
// count — the quantities synchronized BN Allreduces before normalizing
// with the GLOBAL mini-batch statistics.
func BNLocalStats(x *Tensor) (sum, sqSum *Tensor, count int) {
	n, c, spatial := splitActShape(x)
	vol := Volume(spatial)
	sum = New(c)
	sqSum = New(c)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			for i := 0; i < vol; i++ {
				v := x.data[base+i]
				sum.data[ci] += v
				sqSum.data[ci] += v * v
			}
		}
	}
	return sum, sqSum, n * vol
}

// BNForwardWithStats normalizes x with externally supplied per-channel
// mean/variance (the global statistics of synchronized BN). count is
// the global element count behind the statistics, carried into the
// state for the backward pass.
func BNForwardWithStats(x, gamma, beta, mean, variance *Tensor, eps float64, count int) (*Tensor, *BNState) {
	n, c, spatial := splitActShape(x)
	if gamma.Len() != c || beta.Len() != c || mean.Len() != c || variance.Len() != c {
		panic(fmt.Sprintf("tensor: bn stats length must be C=%d", c))
	}
	vol := Volume(spatial)
	y := New(x.shape...)
	xhat := New(x.shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * vol
			m := mean.data[ci]
			inv := 1.0 / sqrt(variance.data[ci]+eps)
			g := gamma.data[ci]
			b := beta.data[ci]
			for i := 0; i < vol; i++ {
				xh := (x.data[base+i] - m) * inv
				xhat.data[base+i] = xh
				y.data[base+i] = g*xh + b
			}
		}
	}
	return y, &BNState{Mean: mean, Var: variance, XHat: xhat, Eps: eps, Count: count}
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
