package tensor

import (
	"math/rand"
	"testing"
)

// naiveConv2D is an independent, index-by-index 2-D reference used to
// cross-check the generic N-d kernel.
func naiveConv2D(x, w, b *Tensor, stride, pad int) *Tensor {
	n, c := x.Dim(0), x.Dim(1)
	h, wd := x.Dim(2), x.Dim(3)
	f, k := w.Dim(0), w.Dim(2)
	oh := ConvOutSize(h, k, stride, pad)
	ow := ConvOutSize(wd, k, stride, pad)
	y := New(n, f, oh, ow)
	for ni := 0; ni < n; ni++ {
		for fi := 0; fi < f; fi++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					acc := 0.0
					if b != nil {
						acc = b.At(fi)
					}
					for ci := 0; ci < c; ci++ {
						for ky := 0; ky < k; ky++ {
							for kx := 0; kx < k; kx++ {
								iy := oy*stride - pad + ky
								ix := ox*stride - pad + kx
								if iy < 0 || iy >= h || ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(ni, ci, iy, ix) * w.At(fi, ci, ky, kx)
							}
						}
					}
					y.Set(acc, ni, fi, oy, ox)
				}
			}
		}
	}
	return y
}

func TestConvForwardMatchesNaive2D(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct{ n, c, h, w, f, k, stride, pad int }{
		{1, 1, 5, 5, 1, 3, 1, 0},
		{2, 3, 8, 8, 4, 3, 1, 1},
		{2, 2, 9, 7, 3, 3, 2, 1},
		{1, 4, 6, 6, 2, 1, 1, 0},
		{3, 2, 10, 10, 5, 5, 2, 2},
	}
	for _, cse := range cases {
		x := New(cse.n, cse.c, cse.h, cse.w).RandN(rng, 1)
		w := New(cse.f, cse.c, cse.k, cse.k).RandN(rng, 1)
		b := New(cse.f).RandN(rng, 1)
		got := ConvForward(x, w, b, UniformConv(2, cse.stride, cse.pad))
		want := naiveConv2D(x, w, b, cse.stride, cse.pad)
		if !got.AllClose(want, 1e-9) {
			t.Fatalf("conv fwd mismatch for %+v: max diff %g", cse, got.MaxDiff(want))
		}
	}
}

func TestConvForward1DIdentityKernel(t *testing.T) {
	// 1x1 conv with identity weight acts as a channel mixer; with C=F=1
	// and w=1 it is the identity.
	x := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 4)
	w := FromSlice([]float64{1}, 1, 1, 1)
	y := ConvForward(x, w, nil, UniformConv(1, 1, 0))
	if !y.AllClose(x, 0) {
		t.Fatalf("identity conv changed input: %v", y)
	}
}

func TestConvForward3DVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := New(1, 2, 4, 4, 4).RandN(rng, 1)
	w := New(3, 2, 2, 2, 2).RandN(rng, 1)
	y := ConvForward(x, w, nil, UniformConv(3, 2, 0))
	if !EqualShapes(y.Shape(), []int{1, 3, 2, 2, 2}) {
		t.Fatalf("3D conv out shape %v", y.Shape())
	}
	// spot-check one output element against a hand computation
	acc := 0.0
	for ci := 0; ci < 2; ci++ {
		for kz := 0; kz < 2; kz++ {
			for ky := 0; ky < 2; ky++ {
				for kx := 0; kx < 2; kx++ {
					acc += x.At(0, ci, kz, ky, kx) * w.At(1, ci, kz, ky, kx)
				}
			}
		}
	}
	if d := y.At(0, 1, 0, 0, 0) - acc; d > 1e-12 || d < -1e-12 {
		t.Fatalf("3D conv spot check: %v vs %v", y.At(0, 1, 0, 0, 0), acc)
	}
}

// Finite-difference check of the backward-data pass: the analytic
// gradient of 0.5*||y||² w.r.t. x must match numeric differentiation.
func TestConvBackwardDataFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := New(1, 2, 5, 5).RandN(rng, 0.5)
	w := New(3, 2, 3, 3).RandN(rng, 0.5)
	spec := UniformConv(2, 1, 1)

	y := ConvForward(x, w, nil, spec)
	dy := y.Clone() // dL/dy for L = 0.5 Σ y²
	dx := ConvBackwardData(dy, w, x.Shape(), spec)

	const eps = 1e-5
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(x.Len())
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		lp := halfSq(ConvForward(x, w, nil, spec))
		x.Data()[i] = orig - eps
		lm := halfSq(ConvForward(x, w, nil, spec))
		x.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if d := num - dx.Data()[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("dx[%d]: analytic %g vs numeric %g", i, dx.Data()[i], num)
		}
	}
}

func TestConvBackwardWeightFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := New(2, 2, 5, 5).RandN(rng, 0.5)
	w := New(2, 2, 3, 3).RandN(rng, 0.5)
	b := New(2).RandN(rng, 0.5)
	spec := UniformConv(2, 2, 1)

	y := ConvForward(x, w, b, spec)
	dy := y.Clone()
	dw, db := ConvBackwardWeight(dy, x, w.Shape(), spec)

	const eps = 1e-5
	for trial := 0; trial < 20; trial++ {
		i := rng.Intn(w.Len())
		orig := w.Data()[i]
		w.Data()[i] = orig + eps
		lp := halfSq(ConvForward(x, w, b, spec))
		w.Data()[i] = orig - eps
		lm := halfSq(ConvForward(x, w, b, spec))
		w.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if d := num - dw.Data()[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("dw[%d]: analytic %g vs numeric %g", i, dw.Data()[i], num)
		}
	}
	for i := 0; i < b.Len(); i++ {
		orig := b.Data()[i]
		b.Data()[i] = orig + eps
		lp := halfSq(ConvForward(x, w, b, spec))
		b.Data()[i] = orig - eps
		lm := halfSq(ConvForward(x, w, b, spec))
		b.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if d := num - db.Data()[i]; d > 1e-4 || d < -1e-4 {
			t.Fatalf("db[%d]: analytic %g vs numeric %g", i, db.Data()[i], num)
		}
	}
}

func halfSq(y *Tensor) float64 {
	s := 0.0
	for _, v := range y.Data() {
		s += 0.5 * v * v
	}
	return s
}

// The defining linearity property of convolution: conv(a·x1 + x2) =
// a·conv(x1) + conv(x2) with bias disabled.
func TestConvLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := New(2, 3, 3, 3).RandN(rng, 1)
	spec := UniformConv(2, 1, 1)
	for trial := 0; trial < 10; trial++ {
		x1 := New(1, 3, 6, 6).RandN(rng, 1)
		x2 := New(1, 3, 6, 6).RandN(rng, 1)
		a := rng.Float64()*4 - 2
		mix := x1.Clone()
		mix.Scale(a)
		mix.Add(x2)
		lhs := ConvForward(mix, w, nil, spec)
		rhs := ConvForward(x1, w, nil, spec)
		rhs.Scale(a)
		rhs.Add(ConvForward(x2, w, nil, spec))
		if !lhs.AllClose(rhs, 1e-9) {
			t.Fatalf("linearity violated (a=%v): max diff %g", a, lhs.MaxDiff(rhs))
		}
	}
}

// Adjoint property: <conv(x), y> == <x, conv^T(y)> relates forward and
// backward-data as transpose operators.
func TestConvAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := New(4, 2, 3, 3).RandN(rng, 1)
	spec := UniformConv(2, 2, 1)
	for trial := 0; trial < 10; trial++ {
		x := New(2, 2, 7, 7).RandN(rng, 1)
		y := ConvForward(x, w, nil, spec)
		u := New(y.Shape()...).RandN(rng, 1)
		lhs := dot(y, u)
		xT := ConvBackwardData(u, w, x.Shape(), spec)
		rhs := dot(x, xT)
		if d := lhs - rhs; d > 1e-8 || d < -1e-8 {
			t.Fatalf("adjoint violated: %g vs %g", lhs, rhs)
		}
	}
}

func dot(a, b *Tensor) float64 {
	s := 0.0
	for i, v := range a.Data() {
		s += v * b.Data()[i]
	}
	return s
}

func TestConvChannelMismatchPanics(t *testing.T) {
	defer expectPanic(t, "channel mismatch")
	ConvForward(New(1, 3, 4, 4), New(2, 2, 3, 3), nil, UniformConv(2, 1, 1))
}

func TestConvSpecRankMismatchPanics(t *testing.T) {
	defer expectPanic(t, "spec rank mismatch")
	ConvForward(New(1, 1, 4, 4), New(1, 1, 3, 3), nil, UniformConv(3, 1, 1))
}
