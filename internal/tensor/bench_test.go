package tensor

import (
	"math/rand"
	"testing"
)

func benchTensors(b *testing.B) (x, w, bias *Tensor) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	x = New(8, 16, 32, 32).RandN(rng, 1)
	w = New(32, 16, 3, 3).RandN(rng, 1)
	bias = New(32).RandN(rng, 1)
	return x, w, bias
}

func BenchmarkConvForward(b *testing.B) {
	x, w, bias := benchTensors(b)
	spec := UniformConv(2, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvForward(x, w, bias, spec)
	}
}

func BenchmarkConvBackwardData(b *testing.B) {
	x, w, bias := benchTensors(b)
	spec := UniformConv(2, 1, 1)
	dy := ConvForward(x, w, bias, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvBackwardData(dy, w, x.Shape(), spec)
	}
}

func BenchmarkConvBackwardWeight(b *testing.B) {
	x, w, bias := benchTensors(b)
	spec := UniformConv(2, 1, 1)
	dy := ConvForward(x, w, bias, spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvBackwardWeight(dy, x, w.Shape(), spec)
	}
}

func BenchmarkConv3DForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := New(2, 4, 12, 12, 12).RandN(rng, 1)
	w := New(8, 4, 3, 3, 3).RandN(rng, 1)
	spec := UniformConv(3, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ConvForward(x, w, nil, spec)
	}
}

func BenchmarkPoolForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := New(8, 32, 32, 32).RandN(rng, 1)
	spec := UniformPool(MaxPool, 2, 2, 2, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PoolForward(x, spec)
	}
}

func BenchmarkBNForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := New(16, 32, 16, 16).RandN(rng, 1)
	gamma := New(32)
	gamma.Fill(1)
	beta := New(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, st := BNForward(x, gamma, beta, 1e-5)
		BNBackward(y, gamma, st)
	}
}

func BenchmarkFCForward(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := New(32, 2048).RandN(rng, 1)
	w := New(1000, 2048).RandN(rng, 1)
	bias := New(1000).RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FCForward(x, w, bias)
	}
}

func BenchmarkSplitConcat(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := New(16, 64, 32, 32).RandN(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := x.Split(1, 4)
		Concat(1, parts...)
	}
}

func BenchmarkSoftmaxCrossEntropy(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	logits := New(64, 1000).RandN(rng, 1)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = rng.Intn(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SoftmaxCrossEntropy(logits, labels)
	}
}
