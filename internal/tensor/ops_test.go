package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestReLUForwardBackward(t *testing.T) {
	x := FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := ReLUForward(x)
	want := []float64{0, 0, 2, 0}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("relu fwd[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
	dy := FromSlice([]float64{5, 5, 5, 5}, 4)
	dx := ReLUBackward(dy, x)
	wantDx := []float64{0, 0, 5, 0}
	for i, v := range wantDx {
		if dx.Data()[i] != v {
			t.Fatalf("relu bwd[%d] = %v, want %v", i, dx.Data()[i], v)
		}
	}
}

func TestFCForwardKnownValues(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 1, 2)
	w := FromSlice([]float64{1, 0, 0, 1, 1, 1}, 3, 2)
	b := FromSlice([]float64{10, 20, 30}, 3)
	y := FCForward(x, w, b)
	want := []float64{11, 22, 33}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("fc fwd[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
}

func TestFCBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := New(3, 5).RandN(rng, 1)
	w := New(4, 5).RandN(rng, 1)
	y := FCForward(x, w, nil)
	dy := y.Clone()
	dx, dw, db := FCBackward(dy, x, w, x.Shape())

	const eps = 1e-5
	check := func(name string, param, grad *Tensor) {
		t.Helper()
		for trial := 0; trial < 15; trial++ {
			i := rng.Intn(param.Len())
			orig := param.Data()[i]
			param.Data()[i] = orig + eps
			lp := halfSq(FCForward(x, w, nil))
			param.Data()[i] = orig - eps
			lm := halfSq(FCForward(x, w, nil))
			param.Data()[i] = orig
			num := (lp - lm) / (2 * eps)
			if d := math.Abs(num - grad.Data()[i]); d > 1e-4 {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", name, i, grad.Data()[i], num)
			}
		}
	}
	check("dx", x, dx)
	check("dw", w, dw)
	// db should be all zeros' gradient — with nil bias the loss does not
	// depend on b, but FCBackward still reduces dy per output:
	sum := 0.0
	for _, v := range db.Data() {
		sum += v
	}
	dySum := dy.Sum()
	if math.Abs(sum-dySum) > 1e-9 {
		t.Fatalf("db total %g != dy total %g", sum, dySum)
	}
}

func TestFCAsConvEquivalence(t *testing.T) {
	// A fully-connected layer equals a convolution whose kernel covers
	// the whole input (paper §2.2). Verify on real numbers.
	rng := rand.New(rand.NewSource(30))
	n, c, h, wd, out := 2, 3, 4, 4, 5
	x := New(n, c, h, wd).RandN(rng, 1)
	w := New(out, c, h, wd).RandN(rng, 1)
	b := New(out).RandN(rng, 1)

	conv := ConvForward(x, w, b, UniformConv(2, 1, 0)) // out spatial = 1×1
	fc := FCForward(x.Reshape(n, c*h*wd), w.Reshape(out, c*h*wd), b)
	if !conv.Reshape(n, out).AllClose(fc, 1e-9) {
		t.Fatalf("FC != whole-input conv: max diff %g", conv.Reshape(n, out).MaxDiff(fc))
	}
}

func TestSoftmaxCrossEntropyUniform(t *testing.T) {
	// Equal logits => loss = ln(K), gradient rows sum to 0.
	k := 4
	logits := New(2, k)
	loss, d := SoftmaxCrossEntropy(logits, []int{0, 3})
	if math.Abs(loss-math.Log(float64(k))) > 1e-9 {
		t.Fatalf("uniform loss = %v, want ln(%d)=%v", loss, k, math.Log(float64(k)))
	}
	for ni := 0; ni < 2; ni++ {
		row := 0.0
		for ki := 0; ki < k; ki++ {
			row += d.At(ni, ki)
		}
		if math.Abs(row) > 1e-9 {
			t.Fatalf("gradient row %d sums to %v", ni, row)
		}
	}
}

func TestSoftmaxCrossEntropyFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	logits := New(3, 5).RandN(rng, 1)
	labels := []int{1, 4, 0}
	_, d := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-6
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(logits.Len())
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig
		num := (lp - lm) / (2 * eps)
		if diff := math.Abs(num - d.Data()[i]); diff > 1e-5 {
			t.Fatalf("dlogits[%d]: analytic %g vs numeric %g", i, d.Data()[i], num)
		}
	}
}

func TestSGDStep(t *testing.T) {
	w := FromSlice([]float64{1, 2}, 2)
	g := FromSlice([]float64{10, -10}, 2)
	SGDStep(w, g, 0.1)
	if w.At(0) != 0 || w.At(1) != 3 {
		t.Fatalf("sgd result %v", w)
	}
}

func TestPoolMaxKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y, arg := PoolForward(x, UniformPool(MaxPool, 2, 2, 2, 0))
	want := []float64{6, 8, 14, 16}
	for i, v := range want {
		if y.Data()[i] != v {
			t.Fatalf("maxpool[%d] = %v, want %v", i, y.Data()[i], v)
		}
	}
	dy := FromSlice([]float64{1, 1, 1, 1}, 1, 1, 2, 2)
	dx := PoolBackward(dy, x.Shape(), UniformPool(MaxPool, 2, 2, 2, 0), arg)
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 0, 0) != 0 {
		t.Fatalf("maxpool bwd wrong: %v", dx)
	}
}

func TestPoolAvgKnown(t *testing.T) {
	x := FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	y, _ := PoolForward(x, UniformPool(AvgPool, 2, 2, 2, 0))
	if y.At(0, 0, 0, 0) != 2.5 {
		t.Fatalf("avgpool = %v, want 2.5", y.At(0, 0, 0, 0))
	}
	dy := FromSlice([]float64{4}, 1, 1, 1, 1)
	dx := PoolBackward(dy, x.Shape(), UniformPool(AvgPool, 2, 2, 2, 0), nil)
	for _, v := range dx.Data() {
		if v != 1 {
			t.Fatalf("avgpool bwd should spread evenly, got %v", dx)
		}
	}
}

func TestPoolGradientSumConservation(t *testing.T) {
	// For stride == window (non-overlapping, no padding), both pool
	// kinds conserve the total gradient mass.
	rng := rand.New(rand.NewSource(32))
	x := New(2, 3, 6, 6).RandN(rng, 1)
	for _, kind := range []PoolKind{MaxPool, AvgPool} {
		spec := UniformPool(kind, 2, 2, 2, 0)
		_, arg := PoolForward(x, spec)
		dy := New(2, 3, 3, 3).RandN(rng, 1)
		dx := PoolBackward(dy, x.Shape(), spec, arg)
		if d := math.Abs(dx.Sum() - dy.Sum()); d > 1e-9 {
			t.Fatalf("kind %v: gradient mass not conserved (diff %g)", kind, d)
		}
	}
}

func TestPool3D(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := New(1, 2, 4, 4, 4).RandN(rng, 1)
	y, _ := PoolForward(x, UniformPool(MaxPool, 3, 2, 2, 0))
	if !EqualShapes(y.Shape(), []int{1, 2, 2, 2, 2}) {
		t.Fatalf("3D pool shape %v", y.Shape())
	}
}

func TestBNForwardNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := New(4, 3, 5, 5).RandN(rng, 3)
	gamma := New(3)
	gamma.Fill(1)
	beta := New(3)
	y, _ := BNForward(x, gamma, beta, 1e-5)
	// each channel of y must have ~zero mean and ~unit variance
	n, c, vol := 4, 3, 25
	for ci := 0; ci < c; ci++ {
		mean, ssq := 0.0, 0.0
		for ni := 0; ni < n; ni++ {
			for i := 0; i < vol; i++ {
				v := y.Data()[(ni*c+ci)*vol+i]
				mean += v
				ssq += v * v
			}
		}
		cnt := float64(n * vol)
		mean /= cnt
		variance := ssq/cnt - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("bn channel %d mean %g", ci, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("bn channel %d variance %g", ci, variance)
		}
	}
}

func TestBNBackwardFiniteDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	x := New(2, 2, 3, 3).RandN(rng, 1)
	gamma := New(2).RandU(rng, 0.5, 1.5)
	beta := New(2).RandN(rng, 0.5)
	eps := 1e-5

	loss := func() float64 {
		y, _ := BNForward(x, gamma, beta, eps)
		return halfSq(y)
	}
	y, st := BNForward(x, gamma, beta, eps)
	dx, dgamma, dbeta := BNBackward(y.Clone(), gamma, st)

	const h = 1e-5
	checkOne := func(name string, param, grad *Tensor, i int, tol float64) {
		t.Helper()
		orig := param.Data()[i]
		param.Data()[i] = orig + h
		lp := loss()
		param.Data()[i] = orig - h
		lm := loss()
		param.Data()[i] = orig
		num := (lp - lm) / (2 * h)
		if d := math.Abs(num - grad.Data()[i]); d > tol {
			t.Fatalf("%s[%d]: analytic %g vs numeric %g", name, i, grad.Data()[i], num)
		}
	}
	for trial := 0; trial < 10; trial++ {
		checkOne("dx", x, dx, rng.Intn(x.Len()), 1e-3)
	}
	for i := 0; i < 2; i++ {
		checkOne("dgamma", gamma, dgamma, i, 1e-4)
		checkOne("dbeta", beta, dbeta, i, 1e-4)
	}
}
