package tensor

import (
	"fmt"
	"math"
)

// PoolKind selects the pooling reduction.
type PoolKind int

const (
	// MaxPool keeps the maximum of each window.
	MaxPool PoolKind = iota
	// AvgPool averages each window (zero padding contributes to the
	// divisor, matching the layer-size accounting of the cost model).
	AvgPool
)

// PoolSpec describes an N-spatial-dimensional pooling layer.
type PoolSpec struct {
	Kind   PoolKind
	Window []int
	Stride []int
	Pad    []int
}

// UniformPool returns a PoolSpec with identical window/stride/pad in
// every one of dims spatial dimensions.
func UniformPool(kind PoolKind, dims, window, stride, pad int) PoolSpec {
	w := make([]int, dims)
	s := make([]int, dims)
	p := make([]int, dims)
	for i := range w {
		w[i] = window
		s[i] = stride
		p[i] = pad
	}
	return PoolSpec{Kind: kind, Window: w, Stride: s, Pad: p}
}

// PoolForward applies pooling to x: [N, C, in...] and returns
// y: [N, C, out...] plus an argmax index tensor (for MaxPool backward;
// nil for AvgPool). The argmax stores the flat input-spatial offset of
// the winning element, or -1 when the window saw only padding.
func PoolForward(x *Tensor, spec PoolSpec) (y *Tensor, argmax []int) {
	n, c, inDims := splitActShape(x)
	dims := len(inDims)
	if len(spec.Window) != dims || len(spec.Stride) != dims || len(spec.Pad) != dims {
		panic(fmt.Sprintf("tensor: pool spec rank mismatch with spatial rank %d", dims))
	}
	outDims := make([]int, dims)
	for i := range inDims {
		outDims[i] = PoolOutSize(inDims[i], spec.Window[i], spec.Stride[i], spec.Pad[i])
	}
	y = New(append([]int{n, c}, outDims...)...)

	inVol := Volume(inDims)
	outVol := Volume(outDims)
	inStr := computeStrides(inDims)
	winCoords := enumerate(spec.Window)
	outCoords := enumerate(outDims)
	winVol := Volume(spec.Window)

	if spec.Kind == MaxPool {
		argmax = make([]int, n*c*outVol)
	}

	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * inVol
			yBase := (ni*c + ci) * outVol
			for oi, oc := range outCoords {
				switch spec.Kind {
				case MaxPool:
					best := math.Inf(-1)
					bestOff := -1
					for _, wc := range winCoords {
						inOff := 0
						ok := true
						for d := range oc {
							pos := oc[d]*spec.Stride[d] - spec.Pad[d] + wc[d]
							if pos < 0 || pos >= inDims[d] {
								ok = false
								break
							}
							inOff += pos * inStr[d]
						}
						if !ok {
							continue
						}
						if v := x.data[base+inOff]; v > best {
							best = v
							bestOff = inOff
						}
					}
					if bestOff < 0 {
						best = 0 // window entirely in padding
					}
					y.data[yBase+oi] = best
					argmax[yBase+oi] = bestOff
				case AvgPool:
					sum := 0.0
					for _, wc := range winCoords {
						inOff := 0
						ok := true
						for d := range oc {
							pos := oc[d]*spec.Stride[d] - spec.Pad[d] + wc[d]
							if pos < 0 || pos >= inDims[d] {
								ok = false
								break
							}
							inOff += pos * inStr[d]
						}
						if ok {
							sum += x.data[base+inOff]
						}
					}
					y.data[yBase+oi] = sum / float64(winVol)
				default:
					panic("tensor: unknown pool kind")
				}
			}
		}
	}
	return y, argmax
}

// PoolBackward propagates dy through the pooling layer. For MaxPool the
// argmax returned by PoolForward must be supplied.
func PoolBackward(dy *Tensor, inShape []int, spec PoolSpec, argmax []int) *Tensor {
	n, c, outDims := splitActShape(dy)
	if len(inShape) != 2+len(outDims) || inShape[0] != n || inShape[1] != c {
		panic(fmt.Sprintf("tensor: pool bwd input shape %v inconsistent with dy %v", inShape, dy.Shape()))
	}
	inDims := inShape[2:]
	dx := New(inShape...)

	inVol := Volume(inDims)
	outVol := Volume(outDims)
	inStr := computeStrides(inDims)
	winCoords := enumerate(spec.Window)
	outCoords := enumerate(outDims)
	winVol := Volume(spec.Window)

	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * inVol
			yBase := (ni*c + ci) * outVol
			for oi, oc := range outCoords {
				g := dy.data[yBase+oi]
				if g == 0 {
					continue
				}
				switch spec.Kind {
				case MaxPool:
					off := argmax[yBase+oi]
					if off >= 0 {
						dx.data[base+off] += g
					}
				case AvgPool:
					share := g / float64(winVol)
					for _, wc := range winCoords {
						inOff := 0
						ok := true
						for d := range oc {
							pos := oc[d]*spec.Stride[d] - spec.Pad[d] + wc[d]
							if pos < 0 || pos >= inDims[d] {
								ok = false
								break
							}
							inOff += pos * inStr[d]
						}
						if ok {
							dx.data[base+inOff] += share
						}
					}
				default:
					panic("tensor: unknown pool kind")
				}
			}
		}
	}
	return dx
}
