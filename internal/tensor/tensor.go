// Package tensor provides dense N-dimensional tensors and the numeric
// kernels (convolution, pooling, fully-connected, batch-normalization,
// ReLU) needed to train small CNNs for real.
//
// The package exists so that the distributed-training runtime
// (internal/dist) can execute every parallel strategy on actual data and
// verify, value by value, that partitioned execution matches the
// sequential baseline — the correctness methodology of §4.5.2 of the
// ParaDL paper. Kernels therefore favour clarity and exactness over raw
// speed; they are direct (no im2col, no SIMD) and operate on float64.
//
// Layout convention: activations are [N, C, spatial...], convolution
// weights are [F, C, spatial...]. All tensors are row-major.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major N-dimensional array of float64.
type Tensor struct {
	shape   []int
	strides []int
	data    []float64
}

// New creates a zero-filled tensor with the given shape. A scalar is
// represented by an empty shape. New panics if any dimension is negative.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	t.strides = computeStrides(t.shape)
	return t
}

// FromSlice creates a tensor with the given shape, adopting data as its
// backing storage (no copy). len(data) must equal the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := Volume(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	t := &Tensor{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	t.strides = computeStrides(t.shape)
	return t
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	s := 1
	for i := len(shape) - 1; i >= 0; i-- {
		strides[i] = s
		s *= shape[i]
	}
	return strides
}

// Volume returns the number of elements implied by shape.
func Volume(shape []int) int {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice (shared, not copied).
func (t *Tensor) Data() []float64 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 {
	return t.data[t.offset(idx)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.data[t.offset(idx)] = v
}

// AddAt adds v to the element at the given multi-index.
func (t *Tensor) AddAt(v float64, idx ...int) {
	t.data[t.offset(idx)] += v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * t.strides[i]
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a view of the same data with a new shape of equal
// volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Volume(shape) != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.data), shape))
	}
	return FromSlice(t.data, shape...)
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Scale multiplies every element by s in place.
func (t *Tensor) Scale(s float64) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// Add accumulates o into t element-wise. Shapes must match exactly.
func (t *Tensor) Add(o *Tensor) {
	t.mustSameShape(o)
	for i, v := range o.data {
		t.data[i] += v
	}
}

// Sub subtracts o from t element-wise.
func (t *Tensor) Sub(o *Tensor) {
	t.mustSameShape(o)
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// AXPY computes t += a*x element-wise.
func (t *Tensor) AXPY(a float64, x *Tensor) {
	t.mustSameShape(x)
	for i, v := range x.data {
		t.data[i] += a * v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i, d := range t.shape {
		if o.shape[i] != d {
			return false
		}
	}
	return true
}

func (t *Tensor) mustSameShape(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", t.shape, o.shape))
	}
}

// AllClose reports whether every element of t is within tol of the
// corresponding element of o. Shapes must match.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if !t.SameShape(o) {
		return false
	}
	for i, v := range t.data {
		if math.Abs(v-o.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxDiff returns the largest absolute element-wise difference between t
// and o. Shapes must match.
func (t *Tensor) MaxDiff(o *Tensor) float64 {
	t.mustSameShape(o)
	m := 0.0
	for i, v := range t.data {
		if d := math.Abs(v - o.data[i]); d > m {
			m = d
		}
	}
	return m
}

// String renders a compact description (shape plus leading values) for
// debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}
