package tensor

import "math/rand"

// RandN fills t with pseudo-normal values (mean 0, stddev sigma) drawn
// from rng, and returns t for chaining. Deterministic given the rng seed
// so correctness tests are reproducible.
func (t *Tensor) RandN(rng *rand.Rand, sigma float64) *Tensor {
	for i := range t.data {
		t.data[i] = rng.NormFloat64() * sigma
	}
	return t
}

// RandU fills t with uniform values in [lo, hi).
func (t *Tensor) RandU(rng *rand.Rand, lo, hi float64) *Tensor {
	for i := range t.data {
		t.data[i] = lo + rng.Float64()*(hi-lo)
	}
	return t
}
