package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitSizesEven(t *testing.T) {
	got := SplitSizes(8, 4)
	for _, s := range got {
		if s != 2 {
			t.Fatalf("SplitSizes(8,4) = %v", got)
		}
	}
}

func TestSplitSizesRemainderLeading(t *testing.T) {
	got := SplitSizes(10, 4)
	want := []int{3, 3, 2, 2}
	if !EqualShapes(got, want) {
		t.Fatalf("SplitSizes(10,4) = %v, want %v", got, want)
	}
}

func TestSplitSizesSumProperty(t *testing.T) {
	f := func(total uint8, parts uint8) bool {
		p := int(parts%16) + 1
		tot := int(total)
		sizes := SplitSizes(tot, p)
		sum := 0
		maxS, minS := 0, tot+1
		for _, s := range sizes {
			sum += s
			if s > maxS {
				maxS = s
			}
			if s < minS {
				minS = s
			}
		}
		return sum == tot && maxS-minS <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitOffsets(t *testing.T) {
	offs := SplitOffsets(10, 4)
	want := []int{0, 3, 6, 8}
	if !EqualShapes(offs, want) {
		t.Fatalf("SplitOffsets(10,4) = %v, want %v", offs, want)
	}
}

func TestSplitConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(4, 6, 5).RandN(rng, 1)
	for axis := 0; axis < 3; axis++ {
		for parts := 1; parts <= x.Dim(axis); parts++ {
			chunks := x.Split(axis, parts)
			back := Concat(axis, chunks...)
			if !back.AllClose(x, 0) {
				t.Fatalf("split/concat round trip failed axis=%d parts=%d", axis, parts)
			}
		}
	}
}

func TestNarrowValues(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Narrow(1, 1, 2)
	if !EqualShapes(y.Shape(), []int{2, 2}) {
		t.Fatalf("narrow shape %v", y.Shape())
	}
	if y.At(0, 0) != 2 || y.At(1, 1) != 6 {
		t.Fatalf("narrow values wrong: %v", y)
	}
}

func TestNarrowIsCopy(t *testing.T) {
	x := New(2, 3)
	y := x.Narrow(1, 0, 2)
	y.Set(9, 0, 0)
	if x.At(0, 0) != 0 {
		t.Fatal("Narrow must copy")
	}
}

func TestNarrowOutOfRangePanics(t *testing.T) {
	defer expectPanic(t, "narrow range")
	New(2, 3).Narrow(1, 2, 2)
}

func TestCopyIntoInverseOfNarrow(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(3, 8, 2).RandN(rng, 1)
	mid := x.Narrow(1, 2, 4)
	y := x.Clone()
	y.CopyInto(mid, 1, 2)
	if !y.AllClose(x, 0) {
		t.Fatal("CopyInto(Narrow(...)) must be identity")
	}
}

func TestCopyIntoShapeMismatchPanics(t *testing.T) {
	defer expectPanic(t, "shape mismatch")
	New(2, 4).CopyInto(New(3, 2), 1, 0)
}

func TestConcatAxis0(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 1, 2)
	b := FromSlice([]float64{3, 4, 5, 6}, 2, 2)
	c := Concat(0, a, b)
	if !EqualShapes(c.Shape(), []int{3, 2}) {
		t.Fatalf("concat shape %v", c.Shape())
	}
	if c.At(2, 1) != 6 {
		t.Fatalf("concat value %v", c.At(2, 1))
	}
}

func TestConcatMismatchPanics(t *testing.T) {
	defer expectPanic(t, "concat mismatch")
	Concat(0, New(1, 2), New(1, 3))
}

func TestPadEdges(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	p := x.PadEdges([]int{1, 0}, []int{0, 1})
	if !EqualShapes(p.Shape(), []int{3, 3}) {
		t.Fatalf("pad shape %v", p.Shape())
	}
	if p.At(0, 0) != 0 || p.At(1, 0) != 1 || p.At(2, 1) != 4 || p.At(2, 2) != 0 {
		t.Fatalf("pad values wrong: %v", p)
	}
}

func TestSliceRegion(t *testing.T) {
	x := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 3, 3)
	s := x.SliceRegion([]int{1, 1}, []int{2, 2})
	if s.At(0, 0) != 5 || s.At(1, 1) != 9 {
		t.Fatalf("slice values wrong: %v", s)
	}
}

func TestSliceRegionPadInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := New(2, 3, 4).RandN(rng, 1)
	p := x.PadEdges([]int{1, 2, 0}, []int{3, 0, 1})
	back := p.SliceRegion([]int{1, 2, 0}, []int{2, 3, 4})
	if !back.AllClose(x, 0) {
		t.Fatal("SliceRegion must invert PadEdges")
	}
}

// Property: for random splits, each chunk equals the corresponding
// Narrow of the original.
func TestSplitMatchesNarrowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := New(5, 7).RandN(rng, 1)
	f := func(partsRaw uint8) bool {
		parts := int(partsRaw%7) + 1
		chunks := x.Split(1, parts)
		offs := SplitOffsets(7, parts)
		sizes := SplitSizes(7, parts)
		for i, ch := range chunks {
			if !ch.AllClose(x.Narrow(1, offs[i], sizes[i]), 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
