package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// LoadSpec drives one load-generation run against a planner endpoint.
type LoadSpec struct {
	// URL is the full endpoint URL (e.g. http://127.0.0.1:8080/advise).
	URL string
	// Bodies are the request bodies, assigned round-robin across the
	// run. One body exercises the fully-cached path; distinct bodies
	// (distinct cache keys) exercise the cold path.
	Bodies [][]byte
	// Concurrency is the number of in-flight workers.
	Concurrency int
	// Requests is the total request count.
	Requests int
}

// LoadResult summarizes a load run.
type LoadResult struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	Seconds  float64 `json:"seconds"`
	QPS      float64 `json:"qps"`
	QPM      float64 `json:"qpm"`
}

// RunLoad fires spec.Requests POSTs at spec.URL over keep-alive
// connections and reports achieved throughput. Any non-200 status or
// transport error counts as an error; the run itself only fails when
// every request errored (the endpoint is down, not slow).
func RunLoad(spec LoadSpec) (LoadResult, error) {
	if spec.Concurrency < 1 {
		spec.Concurrency = 1
	}
	if spec.Requests < 1 || len(spec.Bodies) == 0 {
		return LoadResult{}, fmt.Errorf("serve: load spec needs requests and bodies")
	}
	transport := &http.Transport{
		MaxIdleConns:        spec.Concurrency * 2,
		MaxIdleConnsPerHost: spec.Concurrency * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	defer transport.CloseIdleConnections()

	var next, errs atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < spec.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(spec.Requests) {
					return
				}
				body := spec.Bodies[int(i)%len(spec.Bodies)]
				resp, err := client.Post(spec.URL, "application/json", bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := LoadResult{
		Requests: spec.Requests,
		Errors:   int(errs.Load()),
		Seconds:  elapsed,
		QPS:      float64(spec.Requests) / elapsed,
	}
	res.QPM = res.QPS * 60
	if res.Errors == res.Requests {
		return res, fmt.Errorf("serve: all %d load requests failed", res.Requests)
	}
	return res, nil
}
