package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func benchPost(b *testing.B, h http.Handler, path string, body []byte) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkAdviseCached measures the hot path the load target cares
// about: identical advise requests answered from the projection cache.
func BenchmarkAdviseCached(b *testing.B) {
	s := New()
	h := s.Handler()
	body := []byte(`{"model":"resnet152","gpus":512,"batch":32}`)
	benchPost(b, h, "/advise", body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, h, "/advise", body)
		}
	})
	b.StopTimer()
	if st := s.Stats(); st.Computations != 1 {
		b.Fatalf("computations = %d, want 1 (bench must stay cached)", st.Computations)
	}
}

// BenchmarkAdviseCold measures uncached advise: every request is a new
// content address, so each pays model resolution + profiling + eight
// strategy projections.
func BenchmarkAdviseCold(b *testing.B) {
	s := New()
	h := s.Handler()
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := 1_281_167 + n.Add(1) // distinct dataset size ⇒ distinct key
		body := []byte(fmt.Sprintf(`{"model":"resnet152","gpus":512,"batch":32,"d":%d}`, d))
		benchPost(b, h, "/advise", body)
	}
	b.StopTimer()
	if st := s.Stats(); st.CacheHits != 0 {
		b.Fatalf("cache hits = %d, want 0 (bench must stay cold)", st.CacheHits)
	}
}

// BenchmarkSweepCached measures the cached full-grid path.
func BenchmarkSweepCached(b *testing.B) {
	s := New()
	h := s.Handler()
	body := []byte(`{"model":"resnet50","batch":32}`)
	benchPost(b, h, "/sweep", body)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, h, "/sweep", body)
		}
	})
}

// BenchmarkSweepCold measures one full uncached strategy × p grid.
func BenchmarkSweepCold(b *testing.B) {
	s := New()
	h := s.Handler()
	var n atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body := []byte(fmt.Sprintf(`{"model":"resnet50","batch":32,"d":%d}`, 1_281_167+n.Add(1)))
		benchPost(b, h, "/sweep", body)
	}
}
