package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
)

// Request is the planner's wire request, shared by /project, /advise,
// and /sweep. Fields irrelevant to an endpoint are ignored and zeroed
// during canonicalization so they cannot fragment the cache key space.
//
// Batch semantics follow the paradl CLI: Batch is samples per GPU (the
// paper's weak-scaling convention, global B = Batch·P), BatchGlobal
// overrides it with a fixed global mini-batch (strong scaling). Under
// weak scaling a sweep re-derives B at every grid width.
type Request struct {
	// Model is a zoo model name (resnet50|resnet152|vgg16|cosmoflow|
	// tinyresnet|tinycnn|tinycnn-nobn|tiny3d).
	Model string `json:"model"`
	// Cluster names the machine; empty or "default" resolves to the
	// paper's evaluation system ("abci-like").
	Cluster string `json:"cluster,omitempty"`
	// GPUs is the total PE count P (/project and /advise).
	GPUs int `json:"gpus,omitempty"`
	// Batch is samples per GPU; defaults to 32 when BatchGlobal is unset.
	Batch int `json:"batch,omitempty"`
	// BatchGlobal fixes the global mini-batch, overriding Batch.
	BatchGlobal int `json:"batch_global,omitempty"`
	// D is the dataset size in samples; defaults to the model's paper
	// dataset (ImageNet/CosmoFlow). Models without a default dataset
	// (the toy zoo) must pass it explicitly.
	D int64 `json:"d,omitempty"`
	// P1/P2 split hybrid strategies (see core.Config).
	P1 int `json:"p1,omitempty"`
	P2 int `json:"p2,omitempty"`
	// Segments is the pipeline segment count S (0 = the oracle's
	// default of 4).
	Segments int `json:"segments,omitempty"`
	// Phi is the self-contention coefficient φ (0 = automatic).
	Phi float64 `json:"phi,omitempty"`
	// OptimizerExtraState is the per-parameter optimizer state beyond
	// weight+gradient (see core.Config).
	OptimizerExtraState int `json:"optimizer_extra_state,omitempty"`
	// Strategy selects the projection of /project (any spelling
	// core.ParseStrategy accepts; canonicalized before keying).
	Strategy string `json:"strategy,omitempty"`
	// PS is the /sweep grid of total PE counts; empty selects the
	// default power-of-two grid 2…1024.
	PS []int `json:"ps,omitempty"`
}

// defaultSweepPS is the default /sweep width grid.
func defaultSweepPS() []int {
	return []int{2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

// normalize canonicalizes a request for one endpoint: defaults applied,
// names resolved to canonical spellings, endpoint-irrelevant fields
// zeroed. Two requests that mean the same thing normalize equal — and
// therefore share one cache key — regardless of JSON field order, float
// spelling, or strategy aliases ("df" vs "data+filter").
func (r Request) normalize(endpoint string) (Request, error) {
	if r.Model == "" {
		return r, fmt.Errorf("serve: request needs a model")
	}
	sys, err := cluster.ByName(r.Cluster)
	if err != nil {
		return r, err
	}
	r.Cluster = sys.Name
	if r.BatchGlobal < 0 || r.Batch < 0 || r.GPUs < 0 || r.D < 0 {
		return r, fmt.Errorf("serve: negative batch/gpus/d")
	}
	if r.BatchGlobal > 0 {
		r.Batch = 0
	} else if r.Batch == 0 {
		r.Batch = 32
	}
	if r.D == 0 {
		ds, err := data.ForModel(r.Model)
		if err != nil {
			return r, fmt.Errorf("serve: model %q has no default dataset; pass d explicitly", r.Model)
		}
		r.D = ds.Samples
	}

	switch endpoint {
	case "project":
		if r.GPUs < 1 {
			return r, fmt.Errorf("serve: /project needs gpus ≥ 1")
		}
		if r.Strategy == "" {
			return r, fmt.Errorf("serve: /project needs a strategy")
		}
		s, err := core.ParseStrategy(r.Strategy)
		if err != nil {
			return r, err
		}
		r.Strategy = s.String()
		r.PS = nil
	case "advise":
		if r.GPUs < 1 {
			return r, fmt.Errorf("serve: /advise needs gpus ≥ 1")
		}
		r.Strategy = ""
		r.PS = nil
	case "sweep":
		r.Strategy = ""
		r.GPUs, r.P1, r.P2 = 0, 0, 0
		ps := r.PS
		if len(ps) == 0 {
			ps = defaultSweepPS()
		}
		uniq := map[int]bool{}
		var clean []int
		for _, p := range ps {
			if p >= 1 && !uniq[p] {
				uniq[p] = true
				clean = append(clean, p)
			}
		}
		if len(clean) == 0 {
			return r, fmt.Errorf("serve: /sweep ps has no positive widths")
		}
		sort.Ints(clean)
		r.PS = clean
	default:
		return r, fmt.Errorf("serve: unknown endpoint %q", endpoint)
	}
	return r, nil
}

// canonical renders the normalized request in its content-addressed
// form: version tag, endpoint, and every field in fixed order with
// shortest-round-trip float formatting.
func (r Request) canonical(endpoint string) string {
	ps := make([]string, len(r.PS))
	for i, p := range r.PS {
		ps[i] = strconv.Itoa(p)
	}
	return fmt.Sprintf("paraserve/v1|%s|model=%s|cluster=%s|gpus=%d|batch=%d|batch_global=%d|d=%d|p1=%d|p2=%d|segments=%d|phi=%s|optextra=%d|strategy=%s|ps=%s",
		endpoint, r.Model, r.Cluster, r.GPUs, r.Batch, r.BatchGlobal, r.D, r.P1, r.P2,
		r.Segments, strconv.FormatFloat(r.Phi, 'g', -1, 64), r.OptimizerExtraState,
		r.Strategy, strings.Join(ps, ","))
}

// key returns the content address of the normalized request: the
// SHA-256 of its canonical rendering.
func (r Request) key(endpoint string) string {
	sum := sha256.Sum256([]byte(r.canonical(endpoint)))
	return hex.EncodeToString(sum[:])
}

// configRef builds the oracle config reference for a single-point
// endpoint (/project, /advise) at the request's own GPU count.
func (r Request) configRef() core.ConfigRef {
	b := r.BatchGlobal
	if b == 0 {
		b = r.Batch * r.GPUs
	}
	return core.ConfigRef{
		Model: r.Model, Cluster: r.Cluster, D: r.D, B: b, P: r.GPUs,
		P1: r.P1, P2: r.P2, Segments: r.Segments, Phi: r.Phi,
		OptimizerExtraState: r.OptimizerExtraState,
	}
}

// Config normalizes the request with /advise semantics and resolves it
// into the full oracle config — the exact Config the server projects
// for the same request, exported so in-process clients (paradl
// -advise-and-train) and the HTTP path agree bit for bit.
func (r Request) Config() (core.Config, error) {
	n, err := r.normalize("advise")
	if err != nil {
		return core.Config{}, err
	}
	return n.configRef().Resolve()
}
