package serve

import "sync"

// flightGroup deduplicates concurrent identical computations: while a
// key's compute is in flight, later callers block on it and share its
// result instead of recomputing — a thundering herd of identical sweep
// requests performs each grid exactly once. (Hand-rolled because the
// repo takes no external dependencies; semantics follow
// golang.org/x/sync/singleflight.)
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do runs fn for key, coalescing concurrent duplicates onto one
// execution. shared is true for callers that joined an in-flight
// computation rather than leading one.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (val []byte, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, c.err, false
}
