package serve

import (
	"context"
	"strconv"
	"sync/atomic"
	"time"
)

// Admission defaults: generous enough that well-behaved clients (the
// load harness, CI e2e) never see a 503, tight enough that a storm
// sheds load instead of taking the planner down.
const (
	DefaultMaxConcurrent  = 256
	DefaultMaxQueue       = 1024
	DefaultRequestTimeout = 5 * time.Second
	// defaultRetryAfter is the Retry-After hint on shed requests.
	defaultRetryAfter = time.Second
)

// admission is the overload gate in front of the planning endpoints: a
// fixed number of concurrency slots plus a bounded wait queue. A
// request that finds a free slot proceeds at once; otherwise it queues
// until a slot frees, its deadline expires, or the queue itself is
// full — the latter two shed the request with 503 + Retry-After, which
// is the overload contract: the planner answers "later", it never
// wedges. Draining (graceful shutdown) sheds everything immediately.
type admission struct {
	slots      chan struct{}
	maxQueue   int64
	queued     atomic.Int64
	timeout    time.Duration
	retryAfter time.Duration
	draining   atomic.Bool
}

func newAdmission(maxConcurrent, maxQueue int, timeout time.Duration) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if timeout <= 0 {
		timeout = DefaultRequestTimeout
	}
	return &admission{
		slots:      make(chan struct{}, maxConcurrent),
		maxQueue:   int64(maxQueue),
		timeout:    timeout,
		retryAfter: defaultRetryAfter,
	}
}

// admitErr classifies a shed request.
type admitErr string

const (
	admitDraining  admitErr = "serve: draining, not accepting new work"
	admitQueueFull admitErr = "serve: admission queue full, retry later"
	admitTimeout   admitErr = "serve: request deadline expired waiting for a slot"
)

func (e admitErr) Error() string { return string(e) }

// acquire claims a concurrency slot within ctx's deadline. On success
// the returned release func MUST be called exactly once. On failure it
// returns the shed classification.
func (a *admission) acquire(ctx context.Context) (func(), error) {
	if a.draining.Load() {
		return nil, admitDraining
	}
	select {
	case a.slots <- struct{}{}: // fast path: free slot, no queueing
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, admitQueueFull
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		if a.draining.Load() { // drain began while we waited
			a.release()
			return nil, admitDraining
		}
		return a.release, nil
	case <-ctx.Done():
		return nil, admitTimeout
	}
}

func (a *admission) release() { <-a.slots }

// saturated reports a full wait queue — the not-ready condition.
func (a *admission) saturated() bool { return a.queued.Load() >= a.maxQueue }

// retryAfterHeader renders the Retry-After hint in whole seconds
// (minimum 1 — zero would invite an immediate retry storm).
func (a *admission) retryAfterHeader() string {
	secs := int(a.retryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
