package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client is a retrying planner client: it POSTs JSON and, on overload
// (503/429), transient gateway errors (502/504), or transport
// failures, retries with jittered exponential backoff, honoring the
// server's Retry-After hint when one is present. This is the client
// half of the overload contract: the server sheds, the client backs
// off, and the pair converges instead of melting down in a retry
// storm.
type Client struct {
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// MaxAttempts bounds total tries, first included (default 4).
	MaxAttempts int
	// BaseBackoff seeds the exponential schedule (default 100ms); the
	// sleep before attempt k is jittered in [½,1]·Base·2^(k-1), capped
	// at MaxBackoff (default 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a Client with the default retry schedule.
func NewClient() *Client { return &Client{} }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) limits() (attempts int, base, cap time.Duration) {
	attempts, base, cap = c.MaxAttempts, c.BaseBackoff, c.MaxBackoff
	if attempts < 1 {
		attempts = 4
	}
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 2 * time.Second
	}
	return attempts, base, cap
}

// retryable reports whether a status code is worth another attempt.
func retryable(code int) bool {
	switch code {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// PostJSON POSTs body to url and returns the response body and status,
// retrying per the client's schedule. A non-retryable status is
// returned as-is (the caller decodes the error payload); exhausting
// the schedule returns the last failure.
func (c *Client) PostJSON(ctx context.Context, url string, body []byte) ([]byte, int, error) {
	attempts, base, maxB := c.limits()
	var lastErr error
	for attempt := 1; ; attempt++ {
		raw, code, hint, err := c.post(ctx, url, body)
		switch {
		case err != nil:
			lastErr = err
		case !retryable(code):
			return raw, code, nil
		default:
			lastErr = fmt.Errorf("serve: %s answered %d: %s", url, code, bytes.TrimSpace(raw))
		}
		if attempt >= attempts {
			return nil, 0, fmt.Errorf("serve: giving up after %d attempts: %w", attempts, lastErr)
		}
		d := c.backoff(attempt, base, maxB)
		if hint > d {
			d = hint // the server knows its own drain horizon better
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, 0, ctx.Err()
		}
	}
}

func (c *Client) post(ctx context.Context, url string, body []byte) (raw []byte, code int, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, err
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return raw, resp.StatusCode, retryAfter, nil
}

// backoff draws the jittered sleep before the next attempt: uniformly
// in [½,1] of the exponential step, so synchronized clients desync.
func (c *Client) backoff(attempt int, base, maxB time.Duration) time.Duration {
	d := base << (attempt - 1)
	if d > maxB || d <= 0 {
		d = maxB
	}
	c.mu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	j := c.rng.Int63n(int64(d)/2 + 1)
	c.mu.Unlock()
	return d/2 + time.Duration(j)
}
