package serve

import (
	"container/list"
	"sync"
)

// lruCache is the bounded content-addressed projection cache: canonical
// request key → serialized response bytes. Entries are immutable once
// stored (responses are deterministic functions of the key), so hits
// can hand out the stored slice without copying.
type lruCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lruCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *lruCache) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
