// Package serve turns the analytic oracle into a planning service —
// "oracle as a service". Projections are pure functions of (model,
// cluster, plan), which makes them ideal to serve at scale: requests
// are canonicalized into content-addressed keys, answered from a
// bounded LRU projection cache, and concurrent identical computations
// are deduplicated with singleflight so a thundering herd computes each
// grid exactly once.
//
// Endpoints (POST JSON unless noted):
//
//	/project  one (strategy, config) projection
//	/advise   every strategy projected and ranked for one config
//	/sweep    the full strategy × p grid, including hybrid p1×p2 shapes
//	/healthz  GET liveness probe with uptime and build info
//	/readyz   GET readiness probe: 503 while draining or queue-saturated
//	/metrics  GET request/cache/singleflight/latency counters (expvar)
//
// The planning endpoints sit behind an admission gate: a fixed number
// of concurrency slots with a bounded wait queue and per-request
// deadlines. Overload answers 503 + Retry-After instead of queueing
// unboundedly — pair with Client, which backs off with jitter.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/metrics"
	"paradl/internal/model"
	"paradl/internal/profile"
)

// DefaultCacheEntries bounds the LRU projection cache.
const DefaultCacheEntries = 4096

// maxRequestBytes bounds request bodies; planner requests are tiny.
const maxRequestBytes = 1 << 20

// Server is the concurrent HTTP planner.
type Server struct {
	mux   *http.ServeMux
	cache *lruCache
	group flightGroup
	met   *serverMetrics
	adm   *admission
	start time.Time
}

// Option configures a Server.
type Option func(*Server)

// WithCacheEntries bounds the projection cache to n entries.
func WithCacheEntries(n int) Option {
	return func(s *Server) { s.cache = newLRU(n) }
}

// WithAdmission bounds the planning endpoints to maxConcurrent
// in-flight requests with a wait queue of at most maxQueue; beyond
// that the server sheds with 503 + Retry-After.
func WithAdmission(maxConcurrent, maxQueue int) Option {
	return func(s *Server) {
		s.adm = newAdmission(maxConcurrent, maxQueue, s.adm.timeout)
	}
}

// WithRequestTimeout bounds each planning request's total time in the
// admission gate (queue wait included); an expired deadline sheds the
// request with 503.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.adm.timeout = d }
}

// New builds a planner server.
func New(opts ...Option) *Server {
	s := &Server{
		mux:   http.NewServeMux(),
		cache: newLRU(DefaultCacheEntries),
		met:   newMetrics(),
		adm:   newAdmission(DefaultMaxConcurrent, DefaultMaxQueue, DefaultRequestTimeout),
		start: time.Now(),
	}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("/project", s.endpoint("project"))
	s.mux.HandleFunc("/advise", s.endpoint("advise"))
	s.mux.HandleFunc("/sweep", s.endpoint("sweep"))
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/readyz", s.readyz)
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		s.met.writeJSON(w)
	})
	s.mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
	return s
}

// Metrics exposes the server's metrics registry so other subsystems
// (e.g. a trace recorder via Recorder.PublishMetrics) can publish into
// the same /metrics/prom scrape.
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// BeginDrain flips the server to not-ready and sheds all new planning
// work: readiness probes fail (so load balancers stop routing here)
// while /healthz keeps answering — the process is alive, just leaving.
// In-flight requests are unaffected; pair with http.Server.Shutdown.
func (s *Server) BeginDrain() { s.adm.draining.Store(true) }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Health is the /healthz payload: liveness plus enough identity to
// tell which build of the planner answered and for how long it has
// been up.
type Health struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Module        string  `json:"module,omitempty"`
	Revision      string  `json:"revision,omitempty"`
}

// healthz answers the liveness probe with uptime and build info.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	h := Health{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.Module = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				h.Revision = kv.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h)
}

// readyz answers the readiness probe: 200 while the server is taking
// work, 503 with a reason while it is draining or its admission queue
// is saturated. Distinct from /healthz on purpose — an overloaded
// planner is alive (don't restart it) but should get no new traffic.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	status, code := "ready", http.StatusOK
	switch {
	case s.adm.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case s.adm.saturated():
		status, code = "saturated", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	if code != http.StatusOK {
		w.Header().Set("Retry-After", s.adm.retryAfterHeader())
	}
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"status": status})
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats { return s.met.stats() }

// CacheLen reports the live entry count of the projection cache.
func (s *Server) CacheLen() int { return s.cache.len() }

// endpoint wraps one planning endpoint with the shared request
// pipeline: decode → canonicalize → content-addressed cache →
// singleflight compute → respond.
func (s *Server) endpoint(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.requests.With(name).Inc()
		defer func() { s.met.observe(time.Since(start)) }()

		if r.Method != http.MethodPost {
			s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: POST a JSON request to /%s", name))
			return
		}
		// Per-request deadline covers the whole stay in the gate; shed
		// with 503 + Retry-After rather than queue without bound.
		ctx, cancel := context.WithTimeout(r.Context(), s.adm.timeout)
		defer cancel()
		release, aerr := s.adm.acquire(ctx)
		if aerr != nil {
			s.met.shed.Add(1)
			w.Header().Set("Retry-After", s.adm.retryAfterHeader())
			s.fail(w, http.StatusServiceUnavailable, aerr)
			return
		}
		defer release()
		var req Request
		if err := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes)).Decode(&req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
			return
		}
		req, err := req.normalize(name)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		key := req.key(name)
		if body, ok := s.cache.get(key); ok {
			s.met.hits.Add(1)
			s.respond(w, body)
			return
		}
		s.met.misses.Add(1)
		body, err, shared := s.group.Do(key, func() ([]byte, error) {
			s.met.computations.Add(1)
			out, err := s.compute(name, req)
			if err != nil {
				return nil, err
			}
			s.cache.put(key, out)
			return out, nil
		})
		if shared {
			s.met.coalesced.Add(1)
		}
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		s.respond(w, body)
	}
}

func (s *Server) respond(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.met.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// compute evaluates one normalized request. Responses are deterministic
// functions of the canonical request — core.Project is pure and the
// wire encoding is stable — which is what makes them cacheable bytes.
func (s *Server) compute(endpoint string, req Request) ([]byte, error) {
	switch endpoint {
	case "project":
		cfg, err := req.configRef().Resolve()
		if err != nil {
			return nil, err
		}
		strat, err := core.ParseStrategy(req.Strategy)
		if err != nil {
			return nil, err
		}
		pr, err := core.Project(cfg, strat)
		if err != nil {
			return nil, err
		}
		s.met.projections.Add(1)
		return json.Marshal(pr)
	case "advise":
		cfg, err := req.configRef().Resolve()
		if err != nil {
			return nil, err
		}
		advs, err := core.Advise(cfg)
		if err != nil {
			return nil, err
		}
		s.met.projections.Add(float64(len(advs)))
		return json.Marshal(advs)
	case "sweep":
		resp, n, err := sweepGrid(req)
		if err != nil {
			return nil, err
		}
		s.met.projections.Add(float64(n))
		return json.Marshal(resp)
	}
	return nil, fmt.Errorf("serve: unknown endpoint %q", endpoint)
}

// SweepPoint is one (plan, p) grid point of a /sweep response.
type SweepPoint struct {
	// Plan is the canonical plan string ("data:8", "df:4x2").
	Plan string `json:"plan"`
	// P is the total PE count of the point.
	P int `json:"p"`
	// Projection is the oracle output; omitted when the point errored.
	Projection *core.Projection `json:"projection,omitempty"`
	// Error reports a point that could not be projected.
	Error string `json:"error,omitempty"`
}

// SweepResponse is the /sweep payload: the full strategy × p grid.
type SweepResponse struct {
	Model   string       `json:"model"`
	Cluster string       `json:"cluster"`
	Points  []SweepPoint `json:"points"`
}

// sweepGrid projects the full grid for a normalized sweep request,
// resolving the model once and reusing per-layer profiles across
// points with equal per-PE batch. Every point's Config is identical to
// what its ConfigRef would Resolve to, so point projections are
// bit-identical to single /project answers for the same config.
func sweepGrid(req Request) (*SweepResponse, int, error) {
	m, err := model.ByName(req.Model)
	if err != nil {
		return nil, 0, err
	}
	sys, err := cluster.ByName(req.Cluster)
	if err != nil {
		return nil, 0, err
	}
	dev := profile.NewDevice(sys.GPU)
	times := map[int]*profile.LayerTimes{}
	profileAt := func(perPE int) *profile.LayerTimes {
		if lt, ok := times[perPE]; ok {
			return lt
		}
		lt := profile.ProfileModel(dev, m, perPE)
		times[perPE] = lt
		return lt
	}

	resp := &SweepResponse{Model: m.Name, Cluster: sys.Name}
	projections := 0
	for _, p := range req.PS {
		b := req.BatchGlobal
		if b == 0 {
			b = req.Batch * p
		}
		perPE := b / p
		if perPE < 1 {
			perPE = 1
		}
		for _, pl := range dist.SweepPlans(p) {
			cfg := core.Config{
				Model: m, Sys: sys, Times: profileAt(perPE),
				D: req.D, B: b, P: p,
				Segments: req.Segments, Phi: req.Phi,
				OptimizerExtraState: req.OptimizerExtraState,
			}
			if isHybrid(pl.Strategy) {
				cfg.P1, cfg.P2 = pl.P1, pl.P2
			}
			point := SweepPoint{Plan: pl.String(), P: p}
			pr, err := core.Project(cfg, pl.Strategy)
			if err != nil {
				point.Error = err.Error()
			} else {
				point.Projection = pr
				projections++
			}
			resp.Points = append(resp.Points, point)
		}
	}
	return resp, projections, nil
}

func isHybrid(s core.Strategy) bool {
	return s == core.DataFilter || s == core.DataSpatial || s == core.DataPipeline
}
