package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func adviseBody(t *testing.T) []byte {
	t.Helper()
	b, err := json.Marshal(Request{Model: "resnet50", GPUs: 8, Batch: 32})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAdmissionShedsWhenSaturated: with one slot and no queue, a
// request arriving while the slot is busy gets 503 + Retry-After
// instead of waiting — and the shed counter records it.
func TestAdmissionShedsWhenSaturated(t *testing.T) {
	s := New(WithAdmission(1, 0))
	// Occupy the only slot directly so the test controls when it frees.
	release, err := s.adm.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/advise", bytes.NewReader(adviseBody(t)))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503: %s", rec.Code, rec.Body)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("503 without a Retry-After hint")
	}
	if got := s.Stats().Shed; got != 1 {
		t.Fatalf("shed counter %d, want 1", got)
	}
	release()
	// With the slot free the same request succeeds.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/advise", bytes.NewReader(adviseBody(t)))
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("after release: %d, want 200: %s", rec.Code, rec.Body)
	}
}

// TestAdmissionQueueAdmitsWhenSlotFrees: a queued request proceeds
// once the in-flight one releases — bounded waiting, not rejection.
func TestAdmissionQueueAdmitsWhenSlotFrees(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		r2, err := a.acquire(context.Background())
		if err == nil {
			r2()
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the second acquire queue
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued request was shed: %v", err)
	}
}

// TestAdmissionDeadlineShedsQueuedRequest: a request whose deadline
// expires while queued is shed promptly.
func TestAdmissionDeadlineShedsQueuedRequest(t *testing.T) {
	a := newAdmission(1, 4, time.Second)
	release, err := a.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.acquire(ctx); err != admitTimeout {
		t.Fatalf("got %v, want %v", err, admitTimeout)
	}
}

// TestReadyzReflectsDrain: readiness flips to 503 on BeginDrain while
// liveness stays 200, and planning requests are shed immediately.
func TestReadyzReflectsDrain(t *testing.T) {
	s := New()
	probe := func(path string) int {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if code := probe("/readyz"); code != http.StatusOK {
		t.Fatalf("fresh server not ready: %d", code)
	}
	s.BeginDrain()
	if code := probe("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server still ready: %d", code)
	}
	if code := probe("/healthz"); code != http.StatusOK {
		t.Fatalf("draining server reported dead: %d", code)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/advise", bytes.NewReader(adviseBody(t))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining server accepted planning work: %d", rec.Code)
	}
}

// TestClientRetriesOverloadUntilSuccess: the retry client absorbs a
// burst of 503s (with and without Retry-After) and lands the request.
func TestClientRetriesOverloadUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"saturated"}`)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer srv.Close()
	c := &Client{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	raw, code, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK || !bytes.Contains(raw, []byte("ok")) {
		t.Fatalf("status %d body %s", code, raw)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
}

// TestClientGivesUpAfterMaxAttempts: permanent overload surfaces as an
// error after the configured attempts, not an infinite retry loop.
func TestClientGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := &Client{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	if _, _, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`)); err == nil {
		t.Fatal("client reported success against a permanently saturated server")
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", n)
	}
}

// TestClientDoesNotRetryHardErrors: a 400 is the caller's problem; the
// client must return it untouched on the first attempt.
func TestClientDoesNotRetryHardErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad"}`)
	}))
	defer srv.Close()
	c := &Client{MaxAttempts: 4, BaseBackoff: time.Millisecond}
	raw, code, err := c.PostJSON(context.Background(), srv.URL, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusBadRequest || !bytes.Contains(raw, []byte("bad")) {
		t.Fatalf("status %d body %s", code, raw)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("client retried a 400: %d calls", n)
	}
}

// TestAdmissionOverloadStorm: many more concurrent requests than slots
// + queue; every request must get SOME definitive answer (200 or 503)
// — the overload contract — and at least one succeeds.
func TestAdmissionOverloadStorm(t *testing.T) {
	s := New(WithAdmission(2, 2), WithRequestTimeout(2*time.Second))
	body := adviseBody(t)
	const n = 64
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/advise", bytes.NewReader(body)))
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", rec.Code, rec.Body)
			}
		}()
	}
	wg.Wait()
	if ok.Load()+shed.Load() != n {
		t.Fatalf("answers %d ok + %d shed != %d requests", ok.Load(), shed.Load(), n)
	}
	if ok.Load() == 0 {
		t.Fatal("storm starved every request — admission should still serve at capacity")
	}
}
