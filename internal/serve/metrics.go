package serve

import (
	"encoding/json"
	"io"
	"time"

	"paradl/internal/metrics"
)

// serverMetrics holds the server's counters in a metrics.Registry —
// each Server owns its own registry (a process-global one would
// collide across servers in tests), which gives two views of the same
// counters: the stable expvar-style JSON document on /metrics, and
// Prometheus text exposition on /metrics/prom. The registry is shared:
// trace recorders can publish per-phase histograms into it (see
// trace.Recorder.PublishMetrics) and they ride the same scrape.
type serverMetrics struct {
	reg          *metrics.Registry
	requests     *metrics.CounterVec // per-endpoint request counts
	hits         *metrics.Counter    // cache hits
	misses       *metrics.Counter    // cache misses (includes coalesced joiners)
	coalesced    *metrics.Counter    // requests that joined an in-flight compute
	computations *metrics.Counter    // response computations actually performed
	projections  *metrics.Counter    // individual core.Project evaluations
	errors       *metrics.Counter    // requests answered with an error status
	shed         *metrics.Counter    // requests shed by admission (503 + Retry-After)
	latency      *metrics.Histogram  // request latency histogram
}

// latencyBuckets are the histogram upper bounds (seconds) paired with
// the JSON view's bucket keys — keys are chosen to sort by bound, which
// keeps the rendered document's bucket order stable. The final +Inf
// bucket renders as le_inf.
var latencyBuckets = []struct {
	le  float64
	key string
}{
	{100e-6, "le_0000100us"},
	{500e-6, "le_0000500us"},
	{1e-3, "le_0001000us"},
	{5e-3, "le_0005000us"},
	{25e-3, "le_0025000us"},
	{100e-3, "le_0100000us"},
	{1, "le_1000000us"},
}

func newMetrics() *serverMetrics {
	reg := metrics.NewRegistry()
	bounds := make([]float64, len(latencyBuckets))
	for i, b := range latencyBuckets {
		bounds[i] = b.le
	}
	return &serverMetrics{
		reg:          reg,
		requests:     reg.CounterVec("paradl_serve_requests_total", "Planning requests by endpoint.", "endpoint"),
		hits:         reg.Counter("paradl_serve_cache_hits_total", "Responses served from the projection cache."),
		misses:       reg.Counter("paradl_serve_cache_misses_total", "Requests that missed the projection cache."),
		coalesced:    reg.Counter("paradl_serve_singleflight_coalesced_total", "Requests that joined an in-flight computation."),
		computations: reg.Counter("paradl_serve_computations_total", "Response computations actually performed."),
		projections:  reg.Counter("paradl_serve_projections_total", "Individual core.Project evaluations."),
		errors:       reg.Counter("paradl_serve_errors_total", "Requests answered with an error status."),
		shed:         reg.Counter("paradl_serve_shed_total", "Requests shed by admission control."),
		latency:      reg.Histogram("paradl_serve_request_duration_seconds", "Request latency.", bounds),
	}
}

// observe records one request latency in the histogram.
func (m *serverMetrics) observe(d time.Duration) {
	m.latency.Observe(d.Seconds())
}

// writeJSON renders the full metrics document. The key set and bucket
// keys are a stable contract (the CI e2e step jq-gates on them), so the
// document is built field-by-field rather than from the registry.
func (m *serverMetrics) writeJSON(w io.Writer) {
	req := map[string]int64{}
	for k, v := range m.requests.Snapshot() {
		req[k] = int64(v)
	}
	lat := map[string]int64{}
	counts := m.latency.Buckets()
	for i, b := range latencyBuckets {
		lat[b.key] = counts[i]
	}
	lat["le_inf"] = counts[len(counts)-1]
	doc := struct {
		Requests     map[string]int64 `json:"requests"`
		CacheHits    int64            `json:"cache_hits"`
		CacheMisses  int64            `json:"cache_misses"`
		Coalesced    int64            `json:"singleflight_coalesced"`
		Computations int64            `json:"computations"`
		Projections  int64            `json:"projections"`
		Errors       int64            `json:"errors"`
		Shed         int64            `json:"shed"`
		Latency      map[string]int64 `json:"latency"`
	}{
		Requests:     req,
		CacheHits:    m.hits.Int(),
		CacheMisses:  m.misses.Int(),
		Coalesced:    m.coalesced.Int(),
		Computations: m.computations.Int(),
		Projections:  m.projections.Int(),
		Errors:       m.errors.Int(),
		Shed:         m.shed.Int(),
		Latency:      lat,
	}
	json.NewEncoder(w).Encode(doc)
}

// Stats is a point-in-time snapshot of the server's counters, for
// tests and the load harness.
type Stats struct {
	Requests     map[string]int64
	CacheHits    int64
	CacheMisses  int64
	Coalesced    int64
	Computations int64
	Projections  int64
	Errors       int64
	Shed         int64
}

func (m *serverMetrics) stats() Stats {
	s := Stats{Requests: map[string]int64{}}
	for k, v := range m.requests.Snapshot() {
		s.Requests[k] = int64(v)
	}
	s.CacheHits = m.hits.Int()
	s.CacheMisses = m.misses.Int()
	s.Coalesced = m.coalesced.Int()
	s.Computations = m.computations.Int()
	s.Projections = m.projections.Int()
	s.Errors = m.errors.Int()
	s.Shed = m.shed.Int()
	return s
}
