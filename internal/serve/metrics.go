package serve

import (
	"expvar"
	"fmt"
	"io"
	"time"
)

// metrics holds the server's counters as unpublished expvar values —
// each Server owns its own instances (expvar.Publish is global and
// would collide across servers in tests), and /metrics renders their
// canonical expvar JSON.
type metrics struct {
	requests     *expvar.Map // per-endpoint request counts
	hits         *expvar.Int // cache hits
	misses       *expvar.Int // cache misses (includes coalesced joiners)
	coalesced    *expvar.Int // requests that joined an in-flight compute
	computations *expvar.Int // response computations actually performed
	projections  *expvar.Int // individual core.Project evaluations
	errors       *expvar.Int // requests answered with an error status
	shed         *expvar.Int // requests shed by admission (503 + Retry-After)
	latency      *expvar.Map // request latency histogram
}

// latencyBuckets are the histogram upper bounds; the key order is the
// bucket order (expvar.Map renders keys sorted, so keys are chosen to
// sort by bound).
var latencyBuckets = []struct {
	le  time.Duration
	key string
}{
	{100 * time.Microsecond, "le_0000100us"},
	{500 * time.Microsecond, "le_0000500us"},
	{time.Millisecond, "le_0001000us"},
	{5 * time.Millisecond, "le_0005000us"},
	{25 * time.Millisecond, "le_0025000us"},
	{100 * time.Millisecond, "le_0100000us"},
	{time.Second, "le_1000000us"},
	{1<<63 - 1, "le_inf"},
}

func newMetrics() *metrics {
	m := &metrics{
		requests:     new(expvar.Map).Init(),
		hits:         new(expvar.Int),
		misses:       new(expvar.Int),
		coalesced:    new(expvar.Int),
		computations: new(expvar.Int),
		projections:  new(expvar.Int),
		errors:       new(expvar.Int),
		shed:         new(expvar.Int),
		latency:      new(expvar.Map).Init(),
	}
	for _, b := range latencyBuckets {
		m.latency.Add(b.key, 0) // pre-create so the histogram shape is stable
	}
	return m
}

// observe records one request latency in the histogram.
func (m *metrics) observe(d time.Duration) {
	for _, b := range latencyBuckets {
		if d <= b.le {
			m.latency.Add(b.key, 1)
			return
		}
	}
}

// writeJSON renders the full metrics document; every value is an
// expvar, so each String() is already valid JSON.
func (m *metrics) writeJSON(w io.Writer) {
	fmt.Fprintf(w,
		`{"requests":%s,"cache_hits":%s,"cache_misses":%s,"singleflight_coalesced":%s,"computations":%s,"projections":%s,"errors":%s,"shed":%s,"latency":%s}`,
		m.requests.String(), m.hits.String(), m.misses.String(), m.coalesced.String(),
		m.computations.String(), m.projections.String(), m.errors.String(), m.shed.String(), m.latency.String())
	io.WriteString(w, "\n")
}

// Stats is a point-in-time snapshot of the server's counters, for
// tests and the load harness.
type Stats struct {
	Requests     map[string]int64
	CacheHits    int64
	CacheMisses  int64
	Coalesced    int64
	Computations int64
	Projections  int64
	Errors       int64
	Shed         int64
}

func (m *metrics) stats() Stats {
	s := Stats{Requests: map[string]int64{}}
	m.requests.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			s.Requests[kv.Key] = v.Value()
		}
	})
	s.CacheHits = m.hits.Value()
	s.CacheMisses = m.misses.Value()
	s.Coalesced = m.coalesced.Value()
	s.Computations = m.computations.Value()
	s.Projections = m.projections.Value()
	s.Errors = m.errors.Value()
	s.Shed = m.shed.Value()
	return s
}
