package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"paradl/internal/core"
)

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	for _, k := range []string{"requests", "cache_hits", "cache_misses", "singleflight_coalesced", "computations", "projections", "errors", "latency"} {
		if _, ok := doc[k]; !ok {
			t.Fatalf("metrics missing %q: %v", k, doc)
		}
	}
	resp3, err := http.Get(ts.URL + "/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if ct := resp3.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prom content type %q", ct)
	}
	prom, err := io.ReadAll(resp3.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE paradl_serve_requests_total counter",
		"# TYPE paradl_serve_request_duration_seconds histogram",
		"paradl_serve_request_duration_seconds_bucket{le=\"+Inf\"}",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prom exposition missing %q:\n%s", want, prom)
		}
	}
}

// The /project response must be bit-identical to the in-process
// core.Project result for the same config.
func TestProjectBitIdenticalToInProcess(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"model":"resnet50","gpus":64,"batch":32,"strategy":"data"}`
	code, got := post(t, ts.URL+"/project", body)
	if code != 200 {
		t.Fatalf("status %d: %s", code, got)
	}

	ref := core.ConfigRef{Model: "resnet50", Cluster: "abci-like", D: 1_281_167, B: 32 * 64, P: 64}
	cfg, err := ref.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pr, err := core.Project(cfg, core.Data)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server response differs from in-process projection:\nserver: %s\nlocal:  %s", got, want)
	}
}

// The /advise response must be bit-identical to in-process core.Advise.
func TestAdviseBitIdenticalToInProcess(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"model":"vgg16","gpus":256,"batch":8}`
	code, got := post(t, ts.URL+"/advise", body)
	if code != 200 {
		t.Fatalf("status %d: %s", code, got)
	}

	cfg, err := Request{Model: "vgg16", GPUs: 256, Batch: 8}.Config()
	if err != nil {
		t.Fatal(err)
	}
	advs, err := core.Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(advs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("server response differs from in-process advice:\nserver: %s\nlocal:  %s", got, want)
	}
	var back []core.Advice
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("response does not decode as []Advice: %v", err)
	}
	if back[0].Rank != 1 {
		t.Fatalf("first advice rank %d, want 1", back[0].Rank)
	}
}

// A repeated identical request is a cache hit: one computation total,
// byte-identical responses.
func TestAdviseCached(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"model":"resnet50","gpus":64,"batch":32}`
	_, first := post(t, ts.URL+"/advise", body)
	_, second := post(t, ts.URL+"/advise", body)
	if !bytes.Equal(first, second) {
		t.Fatal("cached response differs from computed response")
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d, want 1", st.Computations)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// Cache keys are content addresses of the request VALUE: JSON field
// order, float spelling, and strategy aliases cannot cause a second
// computation.
func TestCacheKeyCanonicalization(t *testing.T) {
	s, ts := newTestServer(t)
	spellings := []string{
		`{"model":"resnet50","gpus":64,"batch":32,"strategy":"data+filter","phi":0.5}`,
		`{"phi":5e-1,"strategy":"df","batch":32,"gpus":64,"model":"resnet50"}`,
		`{"strategy":"df","model":"resnet50","phi":0.500,"gpus":64,"batch":32}`,
	}
	var bodies [][]byte
	for _, sp := range spellings {
		code, b := post(t, ts.URL+"/project", sp)
		if code != 200 {
			t.Fatalf("status %d: %s", code, b)
		}
		bodies = append(bodies, b)
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("spelling %d produced a different response", i)
		}
	}
	if st := s.Stats(); st.Computations != 1 {
		t.Fatalf("computations = %d, want 1 (spellings must share one key)", st.Computations)
	}

	// Distinct values must NOT share a key.
	post(t, ts.URL+"/project", `{"model":"resnet50","gpus":64,"batch":32,"strategy":"df","phi":0.25}`)
	if st := s.Stats(); st.Computations != 2 {
		t.Fatalf("computations = %d, want 2 (phi change must miss)", st.Computations)
	}
}

// The acceptance pin: N concurrent identical /sweep requests perform
// exactly ONE grid computation — every other request either joins the
// in-flight computation (singleflight) or hits the cache it filled —
// and all N responses are bit-identical.
func TestSweepSingleflight(t *testing.T) {
	const n = 16
	s, ts := newTestServer(t)
	body := `{"model":"resnet50","batch":32,"ps":[8,16,32,64]}`

	var start sync.WaitGroup
	start.Add(1)
	results := make([][]byte, n)
	errs := make([]error, n)
	var done sync.WaitGroup
	for i := 0; i < n; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(ts.URL+"/sweep", "application/json", strings.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			results[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("computations = %d, want exactly 1 for %d concurrent identical sweeps", st.Computations, n)
	}
	if st.Coalesced+st.CacheHits != n-1 {
		t.Fatalf("coalesced(%d) + hits(%d) = %d, want %d", st.Coalesced, st.CacheHits, st.Coalesced+st.CacheHits, n-1)
	}
}

// Every sweep point is bit-identical to the /project answer for the
// same config — the grid is a batch of single projections, not a
// different model.
func TestSweepPointsMatchProject(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/sweep", `{"model":"resnet50","batch":32,"ps":[1,8]}`)
	if code != 200 {
		t.Fatalf("status %d: %s", code, body)
	}
	var sweep SweepResponse
	if err := json.Unmarshal(body, &sweep); err != nil {
		t.Fatal(err)
	}
	if sweep.Model != "resnet50" || len(sweep.Points) == 0 {
		t.Fatalf("unexpected sweep response: %+v", sweep)
	}
	// p=1 contributes serial; p=8 contributes 5 pure + 3 hybrids × {2x4, 4x2}.
	if want := 1 + 5 + 6; len(sweep.Points) != want {
		t.Fatalf("got %d points, want %d", len(sweep.Points), want)
	}
	for _, pt := range sweep.Points {
		if pt.Error != "" {
			t.Fatalf("point %s errored: %s", pt.Plan, pt.Error)
		}
		pr := pt.Projection
		ref := pr.Config.Ref()
		cfg, err := ref.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		local, err := core.Project(cfg, pr.Strategy)
		if err != nil {
			t.Fatal(err)
		}
		localEnc, _ := json.Marshal(local)
		pointEnc, _ := json.Marshal(pr)
		if !bytes.Equal(localEnc, pointEnc) {
			t.Fatalf("point %s differs from in-process projection:\npoint: %s\nlocal: %s", pt.Plan, pointEnc, localEnc)
		}
	}
}

// The projection cache is bounded: distinct keys beyond the cap evict
// the oldest entries instead of growing without bound.
func TestCacheBounded(t *testing.T) {
	s, ts := newTestServer(t, WithCacheEntries(4))
	for d := 1024; d < 1034; d++ {
		body := fmt.Sprintf(`{"model":"tinycnn","gpus":4,"batch":8,"d":%d}`, d)
		if code, b := post(t, ts.URL+"/advise", body); code != 200 {
			t.Fatalf("status %d: %s", code, b)
		}
	}
	if n := s.CacheLen(); n > 4 {
		t.Fatalf("cache holds %d entries, want ≤ 4", n)
	}
	// The most recent entry is still resident.
	before := s.Stats().CacheHits
	post(t, ts.URL+"/advise", `{"model":"tinycnn","gpus":4,"batch":8,"d":1033}`)
	if after := s.Stats().CacheHits; after != before+1 {
		t.Fatal("most recent entry was evicted")
	}
}

func TestRequestErrors(t *testing.T) {
	s, ts := newTestServer(t)
	cases := []struct {
		endpoint, body string
	}{
		{"/advise", `{"gpus":4}`},                                    // no model
		{"/advise", `{"model":"nope","gpus":4}`},                     // unknown model
		{"/advise", `{"model":"tinycnn","gpus":4}`},                  // toy model without d
		{"/advise", `{"model":"resnet50"}`},                          // no gpus
		{"/advise", `not json`},                                      // bad body
		{"/project", `{"model":"resnet50","gpus":4}`},                // no strategy
		{"/project", `{"model":"resnet50","gpus":4,"strategy":"x"}`}, // bad strategy
		{"/sweep", `{"model":"resnet50","ps":[0,-3]}`},               // no positive widths
		{"/advise", `{"model":"resnet50","gpus":4,"cluster":"x"}`},   // unknown cluster
	}
	for _, c := range cases {
		code, b := post(t, ts.URL+c.endpoint, c.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d (%s), want 400", c.endpoint, c.body, code, b)
		}
		var e map[string]string
		if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
			t.Fatalf("%s %s: error body %q not structured", c.endpoint, c.body, b)
		}
	}
	resp, err := http.Get(ts.URL + "/advise")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /advise status %d, want 405", resp.StatusCode)
	}
	if st := s.Stats(); st.Errors != int64(len(cases))+1 {
		t.Fatalf("error counter %d, want %d", st.Errors, len(cases)+1)
	}
	if st := s.Stats(); st.Computations != 0 {
		t.Fatal("failed requests must not count as computations")
	}
}

func TestLRUUnit(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	if v, ok := c.get("a"); !ok || string(v) != "1" {
		t.Fatal("a lost")
	}
	c.put("c", []byte("3")) // evicts b (a was refreshed)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should survive (recently used)")
	}
	c.put("a", []byte("1b")) // update in place
	if v, _ := c.get("a"); string(v) != "1b" {
		t.Fatal("update lost")
	}
	if c.len() != 2 {
		t.Fatalf("len %d, want 2", c.len())
	}
}

func TestFlightGroupUnit(t *testing.T) {
	var g flightGroup
	const n = 8
	var computes int
	gate := make(chan struct{})
	entered := make(chan struct{}, n)
	var wg sync.WaitGroup
	sharedCount := 0
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered <- struct{}{}
			val, err, shared := g.Do("k", func() ([]byte, error) {
				<-gate
				mu.Lock()
				computes++
				mu.Unlock()
				return []byte("v"), nil
			})
			if err != nil || string(val) != "v" {
				t.Errorf("got %q %v", val, err)
			}
			mu.Lock()
			if shared {
				sharedCount++
			}
			mu.Unlock()
		}()
	}
	// Wait until all callers have at least entered before releasing the
	// leader; all non-leaders must then coalesce.
	for i := 0; i < n; i++ {
		<-entered
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	if sharedCount != n-1 {
		t.Fatalf("shared = %d, want %d", sharedCount, n-1)
	}
}

// normalize zeroes endpoint-irrelevant fields so they cannot fragment
// the key space.
func TestNormalizeDropsIrrelevant(t *testing.T) {
	a, err := Request{Model: "resnet50", GPUs: 8, Strategy: "data", PS: []int{4}}.normalize("project")
	if err != nil {
		t.Fatal(err)
	}
	if a.PS != nil {
		t.Fatal("project must drop ps")
	}
	b, err := Request{Model: "resnet50", GPUs: 8, Strategy: "data"}.normalize("advise")
	if err != nil {
		t.Fatal(err)
	}
	if b.Strategy != "" {
		t.Fatal("advise must drop strategy")
	}
	c, err := Request{Model: "resnet50", GPUs: 8, P1: 2, P2: 4, Strategy: "data", PS: []int{4, 2, 4}}.normalize("sweep")
	if err != nil {
		t.Fatal(err)
	}
	if c.GPUs != 0 || c.P1 != 0 || c.P2 != 0 || c.Strategy != "" {
		t.Fatalf("sweep kept irrelevant fields: %+v", c)
	}
	if len(c.PS) != 2 || c.PS[0] != 2 || c.PS[1] != 4 {
		t.Fatalf("ps not sorted/deduped: %v", c.PS)
	}
	// Same meaning, different irrelevant noise ⇒ same key.
	if a2, _ := (Request{Model: "resnet50", GPUs: 8, Strategy: "data", PS: []int{99}}.normalize("project")); a2.key("project") != a.key("project") {
		t.Fatal("irrelevant ps changed the project key")
	}
}
