package simnet

import (
	"testing"

	"paradl/internal/cluster"
)

func BenchmarkSingleFlow(b *testing.B) {
	n, a, l2 := twoLinkNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim(n)
		f := s.Start([]LinkID{a, l2}, 1e9)
		s.RunUntilDone(f)
	}
}

func BenchmarkContending64Flows(b *testing.B) {
	n := NewNetwork()
	l := n.AddLink("shared", 10e9, 1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim(n)
		ids := make([]FlowID, 64)
		for j := range ids {
			ids[j] = s.Start([]LinkID{l}, 1e6*float64(j+1))
		}
		s.RunUntilDone(ids...)
	}
}

func BenchmarkFatTreeBuild(b *testing.B) {
	sys := cluster.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTopology(sys)
	}
}

func BenchmarkRingRound1024(b *testing.B) {
	sys := cluster.Default()
	topo := NewTopology(sys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSim(topo.Net)
		ids := make([]FlowID, 0, 1024)
		for pe := 0; pe < 1024; pe++ {
			ids = append(ids, s.Start(topo.Route(pe, (pe+1)%1024), 100e3))
		}
		s.RunUntilDone(ids...)
	}
}
