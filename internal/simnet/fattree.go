package simnet

import (
	"fmt"

	"paradl/internal/cluster"
)

// Topology instantiates a cluster.System as simnet links and provides
// routing between PEs. Two data paths exist per GPU, mirroring the
// paper's software stack: the GPU-direct path (NCCL collectives over
// NVLink/IB) and the through-host path (MPI halo exchange over PCIe,
// §5.1).
type Topology struct {
	Sys *cluster.System
	Net *Network

	gpuUp, gpuDown   []LinkID   // GPU ↔ node fabric (NVLink)
	pcieUp, pcieDown []LinkID   // GPU ↔ host (PCIe, MPI path)
	nodeUp, nodeDown [][]LinkID // node ↔ leaf switch, one entry per IB rail
	rackUp, rackDown []LinkID   // leaf ↔ spine (oversubscribed)
}

// Paper-calibrated physical constants of the fabric model.
const (
	nvlinkBW    = 20e9   // NVLink GPU↔fabric, bytes/s
	pcieBW      = 8e9    // effective staged D2H+H2D bandwidth (no GPUDirect)
	railBW      = 12.5e9 // one EDR InfiniBand rail
	hopLatency  = 3.5e-6 // per-switch-hop propagation + software stack
	gpuLatency  = 4e-6   // GPU engine injection + NCCL launch latency
	hostPenalty = 15e-6  // extra latency for host-staged (MPI) transfers
)

// NewTopology builds the fat-tree network for sys.
func NewTopology(sys *cluster.System) *Topology {
	t := &Topology{Sys: sys, Net: NewNetwork()}
	gpus := sys.TotalGPUs()
	nodes := sys.NodesPerRack * sys.Racks

	for g := 0; g < gpus; g++ {
		t.gpuUp = append(t.gpuUp, t.Net.AddLink(fmt.Sprintf("gpu%d.up", g), nvlinkBW, gpuLatency))
		t.gpuDown = append(t.gpuDown, t.Net.AddLink(fmt.Sprintf("gpu%d.down", g), nvlinkBW, gpuLatency))
		t.pcieUp = append(t.pcieUp, t.Net.AddLink(fmt.Sprintf("gpu%d.pcie.up", g), pcieBW, gpuLatency+hostPenalty))
		t.pcieDown = append(t.pcieDown, t.Net.AddLink(fmt.Sprintf("gpu%d.pcie.down", g), pcieBW, gpuLatency))
	}
	for nd := 0; nd < nodes; nd++ {
		ups := make([]LinkID, sys.UplinksPerNode)
		downs := make([]LinkID, sys.UplinksPerNode)
		for r := 0; r < sys.UplinksPerNode; r++ {
			ups[r] = t.Net.AddLink(fmt.Sprintf("node%d.rail%d.up", nd, r), railBW, hopLatency)
			downs[r] = t.Net.AddLink(fmt.Sprintf("node%d.rail%d.down", nd, r), railBW, hopLatency)
		}
		t.nodeUp = append(t.nodeUp, ups)
		t.nodeDown = append(t.nodeDown, downs)
	}
	rackBW := float64(sys.NodesPerRack*sys.UplinksPerNode) * railBW / sys.Oversubscription
	for r := 0; r < sys.Racks; r++ {
		t.rackUp = append(t.rackUp, t.Net.AddLink(fmt.Sprintf("rack%d.up", r), rackBW, hopLatency))
		t.rackDown = append(t.rackDown, t.Net.AddLink(fmt.Sprintf("rack%d.down", r), rackBW, hopLatency))
	}
	return t
}

// Route returns the GPU-direct path from PE a to PE b.
func (t *Topology) Route(a, b int) []LinkID {
	return t.route(a, b, t.gpuUp, t.gpuDown)
}

// RouteMPI returns the host-staged path from PE a to PE b (PCIe in and
// out of host memory instead of NVLink).
func (t *Topology) RouteMPI(a, b int) []LinkID {
	return t.route(a, b, t.pcieUp, t.pcieDown)
}

func (t *Topology) route(a, b int, up, down []LinkID) []LinkID {
	if a == b {
		panic("simnet: route to self")
	}
	sys := t.Sys
	na, nb := sys.Node(a), sys.Node(b)
	ra, rb := sys.Rack(a), sys.Rack(b)
	path := []LinkID{up[a]}
	if na != nb {
		// Rail selection hashes on the sender's intra-node position so
		// the four segmented Allreduces of Data+Filter spread across the
		// two rails two-and-two — producing the φ=2 self-contention the
		// paper models (§5.2).
		rail := (a % sys.GPUsPerNode) % sys.UplinksPerNode
		path = append(path, t.nodeUp[na][rail])
		if ra != rb {
			path = append(path, t.rackUp[ra], t.rackDown[rb])
		}
		path = append(path, t.nodeDown[nb][rail])
	}
	return append(path, down[b])
}

// UplinkOf returns the node uplink rail carrying PE's inter-node
// traffic (used to attach background congestion flows).
func (t *Topology) UplinkOf(pe int) LinkID {
	rail := (pe % t.Sys.GPUsPerNode) % t.Sys.UplinksPerNode
	return t.nodeUp[t.Sys.Node(pe)][rail]
}

// RackUplinkOf returns the spine uplink of PE's rack.
func (t *Topology) RackUplinkOf(pe int) LinkID { return t.rackUp[t.Sys.Rack(pe)] }
