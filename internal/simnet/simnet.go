// Package simnet is a discrete-event, flow-level network simulator.
//
// It stands in for the paper's physical InfiniBand/NVLink fabric: links
// have capacities and latencies, concurrent flows share links under
// max–min fairness (progressive filling), and completions are exact
// under piecewise-constant rates. Ring-collective steps, halo
// exchanges, pipeline transfers, and the background traffic that
// produces Fig. 6's congestion outliers are all expressed as flows.
package simnet

import (
	"fmt"
	"math"
	"sort"
)

// LinkID identifies one unidirectional link.
type LinkID int

// Link is a unidirectional channel with a fixed capacity and
// propagation latency.
type Link struct {
	Name     string
	Capacity float64 // bytes per second
	Latency  float64 // seconds
}

// Network is a static set of links. Routing is supplied by the caller
// (see Topology), keeping the simulator topology-agnostic.
type Network struct {
	links []Link
}

// NewNetwork returns an empty network.
func NewNetwork() *Network { return &Network{} }

// AddLink registers a link and returns its id.
func (n *Network) AddLink(name string, capacity, latency float64) LinkID {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: link %q capacity must be positive", name))
	}
	if latency < 0 {
		panic(fmt.Sprintf("simnet: link %q latency must be non-negative", name))
	}
	n.links = append(n.links, Link{Name: name, Capacity: capacity, Latency: latency})
	return LinkID(len(n.links) - 1)
}

// Link returns the link record for id.
func (n *Network) Link(id LinkID) Link { return n.links[id] }

// NumLinks returns the number of registered links.
func (n *Network) NumLinks() int { return len(n.links) }

// PathLatency sums the propagation latency along a path.
func (n *Network) PathLatency(path []LinkID) float64 {
	lat := 0.0
	for _, id := range path {
		lat += n.links[id].Latency
	}
	return lat
}

// FlowID identifies a flow within one Sim.
type FlowID int

type flow struct {
	id        FlowID
	path      []LinkID
	remaining float64 // bytes still to transfer
	release   float64 // time data starts flowing (start + path latency)
	rate      float64 // current max–min rate
	done      bool
	finish    float64
}

// Sim advances a set of flows over a Network through time.
type Sim struct {
	net    *Network
	now    float64
	flows  map[FlowID]*flow
	nextID FlowID
}

// NewSim creates a simulator over net starting at time 0.
func NewSim(net *Network) *Sim {
	return &Sim{net: net, flows: map[FlowID]*flow{}}
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Start injects a flow of the given size on path at the current time.
// The flow's bytes begin moving after the path's propagation latency.
func (s *Sim) Start(path []LinkID, bytes float64) FlowID {
	if len(path) == 0 {
		panic("simnet: flow needs a non-empty path")
	}
	if bytes <= 0 {
		panic("simnet: flow size must be positive")
	}
	id := s.nextID
	s.nextID++
	s.flows[id] = &flow{
		id:        id,
		path:      append([]LinkID(nil), path...),
		remaining: bytes,
		release:   s.now + s.net.PathLatency(path),
	}
	return id
}

// Done reports whether the flow has completed.
func (s *Sim) Done(id FlowID) bool {
	f, ok := s.flows[id]
	return ok && f.done
}

// FinishTime returns the completion time of a finished flow.
func (s *Sim) FinishTime(id FlowID) float64 {
	f, ok := s.flows[id]
	if !ok || !f.done {
		panic(fmt.Sprintf("simnet: flow %d not finished", id))
	}
	return f.finish
}

// Cancel removes an unfinished flow (used to tear down background
// traffic).
func (s *Sim) Cancel(id FlowID) {
	delete(s.flows, id)
}

// RunUntilDone advances time until every flow in ids has completed and
// returns the elapsed simulated seconds. Other (e.g. background) flows
// progress concurrently and may remain active afterwards.
func (s *Sim) RunUntilDone(ids ...FlowID) float64 {
	start := s.now
	for {
		if s.allDone(ids) {
			return s.now - start
		}
		if !s.Advance() {
			panic("simnet: deadlock — tracked flows cannot finish")
		}
	}
}

// Advance processes exactly one event (a flow release or completion),
// moving simulated time forward. It returns false when no event can
// occur (no unfinished flows). Exposed so multi-collective engines can
// interleave progress checks between events.
func (s *Sim) Advance() bool { return s.step() }

func (s *Sim) allDone(ids []FlowID) bool {
	for _, id := range ids {
		f, ok := s.flows[id]
		if !ok {
			panic(fmt.Sprintf("simnet: unknown flow %d", id))
		}
		if !f.done {
			return false
		}
	}
	return true
}

// step advances to the next event (a flow release or the earliest
// completion at current rates). Returns false if no event can occur.
func (s *Sim) step() bool {
	s.assignRates()

	// Next release among flows not yet flowing.
	nextEvent := math.Inf(1)
	for _, f := range s.flows {
		if f.done {
			continue
		}
		if f.release > s.now && f.release < nextEvent {
			nextEvent = f.release
		}
	}
	// Earliest completion among flowing flows.
	for _, f := range s.flows {
		if f.done || f.release > s.now || f.rate <= 0 {
			continue
		}
		t := s.now + f.remaining/f.rate
		if t < nextEvent {
			nextEvent = t
		}
	}
	if math.IsInf(nextEvent, 1) {
		return false
	}

	dt := nextEvent - s.now
	for _, f := range s.flows {
		if f.done || f.release > s.now {
			continue
		}
		f.remaining -= f.rate * dt
	}
	s.now = nextEvent
	const eps = 1e-12
	for _, f := range s.flows {
		if f.done || f.release > s.now {
			continue
		}
		if f.remaining <= eps*math.Max(1, f.rate) {
			f.remaining = 0
			f.done = true
			f.finish = s.now
		}
	}
	return true
}

// assignRates computes max–min fair rates for all flowing flows via
// progressive filling: repeatedly saturate the most constrained link,
// freeze its flows at the fair share, and continue with residual
// capacities.
func (s *Sim) assignRates() {
	active := make([]*flow, 0, len(s.flows))
	for _, f := range s.flows {
		if !f.done && f.release <= s.now {
			f.rate = 0
			active = append(active, f)
		}
	}
	if len(active) == 0 {
		return
	}
	// Deterministic ordering for reproducibility.
	sort.Slice(active, func(i, j int) bool { return active[i].id < active[j].id })

	residual := make([]float64, s.net.NumLinks())
	count := make([]int, s.net.NumLinks())
	for i := range residual {
		residual[i] = s.net.links[i].Capacity
	}
	frozen := make(map[FlowID]bool, len(active))
	for _, f := range active {
		for _, l := range f.path {
			count[l]++
		}
	}

	for len(frozen) < len(active) {
		// Find the bottleneck link: smallest residual/count over links
		// carrying unfrozen flows.
		best := -1
		bestShare := math.Inf(1)
		for l := range residual {
			if count[l] == 0 {
				continue
			}
			share := residual[l] / float64(count[l])
			if share < bestShare {
				bestShare = share
				best = l
			}
		}
		if best < 0 {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck.
		for _, f := range active {
			if frozen[f.id] {
				continue
			}
			crosses := false
			for _, l := range f.path {
				if int(l) == best {
					crosses = true
					break
				}
			}
			if !crosses {
				continue
			}
			f.rate = bestShare
			frozen[f.id] = true
			for _, l := range f.path {
				residual[l] -= bestShare
				if residual[l] < 0 {
					residual[l] = 0
				}
				count[l]--
			}
		}
	}
}
