package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"paradl/internal/cluster"
)

func twoLinkNet() (*Network, LinkID, LinkID) {
	n := NewNetwork()
	a := n.AddLink("a", 10e9, 1e-6)
	b := n.AddLink("b", 10e9, 1e-6)
	return n, a, b
}

func TestSingleFlowExactTime(t *testing.T) {
	n, a, b := twoLinkNet()
	s := NewSim(n)
	id := s.Start([]LinkID{a, b}, 1e9)
	el := s.RunUntilDone(id)
	want := 2e-6 + 1e9/10e9
	if math.Abs(el-want) > 1e-9 {
		t.Fatalf("elapsed %.9f, want %.9f", el, want)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	n, a, b := twoLinkNet()
	s := NewSim(n)
	f1 := s.Start([]LinkID{a}, 1e9)
	f2 := s.Start([]LinkID{a}, 1e9)
	el := s.RunUntilDone(f1, f2)
	_ = b
	// Both share 10 GB/s → 5 GB/s each → 0.2 s plus latency.
	want := 1e-6 + 1e9/5e9
	if math.Abs(el-want) > 1e-6 {
		t.Fatalf("elapsed %.6f, want %.6f", el, want)
	}
}

func TestShortFlowFinishesThenLongSpeedsUp(t *testing.T) {
	n, a, _ := twoLinkNet()
	s := NewSim(n)
	short := s.Start([]LinkID{a}, 0.5e9)
	long := s.Start([]LinkID{a}, 1.5e9)
	s.RunUntilDone(short, long)
	// short: shares 5 GB/s until done at 0.1 s; long: 0.5e9 done by
	// then, remaining 1e9 at full 10 GB/s → finishes at 0.2 s.
	if d := math.Abs(s.FinishTime(short) - (1e-6 + 0.1)); d > 1e-6 {
		t.Fatalf("short finish %.6f", s.FinishTime(short))
	}
	if d := math.Abs(s.FinishTime(long) - (1e-6 + 0.2)); d > 1e-6 {
		t.Fatalf("long finish %.6f", s.FinishTime(long))
	}
}

func TestMaxMinAsymmetric(t *testing.T) {
	// Flow X crosses narrow (1 GB/s) and wide (10 GB/s); flow Y only
	// wide. Max–min: X gets 1, Y gets 9.
	n := NewNetwork()
	narrow := n.AddLink("narrow", 1e9, 0)
	wide := n.AddLink("wide", 10e9, 0)
	s := NewSim(n)
	x := s.Start([]LinkID{narrow, wide}, 1e9)
	y := s.Start([]LinkID{wide}, 9e9)
	s.RunUntilDone(x, y)
	if d := math.Abs(s.FinishTime(x) - 1.0); d > 1e-6 {
		t.Fatalf("x finish %.6f, want 1.0", s.FinishTime(x))
	}
	if d := math.Abs(s.FinishTime(y) - 1.0); d > 1e-6 {
		t.Fatalf("y finish %.6f, want 1.0", s.FinishTime(y))
	}
}

func TestBackgroundFlowSlowsTracked(t *testing.T) {
	n, a, _ := twoLinkNet()
	// without background
	s1 := NewSim(n)
	f := s1.Start([]LinkID{a}, 1e9)
	base := s1.RunUntilDone(f)
	// with a large background flow on the same link
	s2 := NewSim(n)
	bg := s2.Start([]LinkID{a}, 1e12)
	f2 := s2.Start([]LinkID{a}, 1e9)
	cong := s2.RunUntilDone(f2)
	s2.Cancel(bg)
	if cong <= base*1.5 {
		t.Fatalf("congested %.4f should be ≫ base %.4f", cong, base)
	}
}

func TestSequentialBatchesAccumulateTime(t *testing.T) {
	n, a, _ := twoLinkNet()
	s := NewSim(n)
	f1 := s.Start([]LinkID{a}, 1e9)
	s.RunUntilDone(f1)
	t1 := s.Now()
	f2 := s.Start([]LinkID{a}, 1e9)
	s.RunUntilDone(f2)
	if s.Now() <= t1 {
		t.Fatal("time must advance across batches")
	}
}

func TestCancelUnblocks(t *testing.T) {
	n, a, _ := twoLinkNet()
	s := NewSim(n)
	bg := s.Start([]LinkID{a}, 1e15)
	f := s.Start([]LinkID{a}, 1e6)
	s.RunUntilDone(f)
	s.Cancel(bg)
	if !s.Done(f) {
		t.Fatal("tracked flow should be done")
	}
}

func TestZeroSizeFlowPanics(t *testing.T) {
	n, a, _ := twoLinkNet()
	s := NewSim(n)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Start([]LinkID{a}, 0)
}

// Property: total bytes drained never exceed link capacity × time for a
// single link (conservation).
func TestConservationProperty(t *testing.T) {
	f := func(sizesRaw [4]uint16) bool {
		n := NewNetwork()
		l := n.AddLink("l", 1e9, 0)
		s := NewSim(n)
		var ids []FlowID
		total := 0.0
		for _, raw := range sizesRaw {
			sz := float64(raw%1000+1) * 1e6
			total += sz
			ids = append(ids, s.Start([]LinkID{l}, sz))
		}
		el := s.RunUntilDone(ids...)
		// elapsed must be ≥ total/capacity (work conservation bound)
		// and ≤ total/capacity + small epsilon (single link, always
		// saturated).
		lower := total / 1e9
		return el >= lower-1e-9 && el <= lower+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyRoutes(t *testing.T) {
	sys := cluster.Default()
	topo := NewTopology(sys)

	// intra-node: 2 links (gpu up, gpu down)
	if got := len(topo.Route(0, 1)); got != 2 {
		t.Fatalf("intra-node path length %d, want 2", got)
	}
	// intra-rack: gpu up, node up, node down, gpu down
	if got := len(topo.Route(0, 4)); got != 4 {
		t.Fatalf("intra-rack path length %d, want 4", got)
	}
	// inter-rack adds two spine links
	interRackPE := sys.GPUsPerNode * sys.NodesPerRack // first PE of rack 1
	if got := len(topo.Route(0, interRackPE)); got != 6 {
		t.Fatalf("inter-rack path length %d, want 6", got)
	}
}

func TestMPIRouteSlowerThanNCCL(t *testing.T) {
	sys := cluster.Default()
	topo := NewTopology(sys)

	run := func(path []LinkID) float64 {
		s := NewSim(topo.Net)
		f := s.Start(path, 100e6)
		return s.RunUntilDone(f)
	}
	nccl := run(topo.Route(0, 1))
	mpi := run(topo.RouteMPI(0, 1))
	if mpi <= nccl {
		t.Fatalf("MPI path (%.6f) must be slower than GPU-direct (%.6f)", mpi, nccl)
	}
}

func TestOversubscriptionLimitsInterRack(t *testing.T) {
	sys := cluster.Default()
	topo := NewTopology(sys)
	// Saturate the rack uplink with one flow per node pair; per-flow
	// rate should be below the node uplink capacity.
	s := NewSim(topo.Net)
	var ids []FlowID
	size := 1e9
	nPairs := sys.NodesPerRack
	for i := 0; i < nPairs; i++ {
		src := i * sys.GPUsPerNode                                      // node i of rack 0
		dst := sys.GPUsPerNode*sys.NodesPerRack + i*sys.GPUsPerNode + 1 // rack 1
		ids = append(ids, s.Start(topo.Route(src, dst), size))
	}
	el := s.RunUntilDone(ids...)
	perFlowRate := size / el
	if perFlowRate >= railBW {
		t.Fatalf("per-flow rate %.2e should be throttled below one rail %.2e", perFlowRate, railBW)
	}
	// aggregate should be limited by the oversubscribed rack uplink
	agg := float64(nPairs) * perFlowRate
	rackBW := float64(sys.NodesPerRack*sys.UplinksPerNode) * railBW / sys.Oversubscription
	if agg > rackBW*1.05 {
		t.Fatalf("aggregate %.2e exceeds rack uplink %.2e", agg, rackBW)
	}
}

func TestGroupLevelClassification(t *testing.T) {
	sys := cluster.Default()
	if sys.GroupLevel(0, 4) != cluster.IntraNode {
		t.Fatal("4 PEs from base 0 are one node")
	}
	if sys.GroupLevel(0, 8) != cluster.IntraRack {
		t.Fatal("8 PEs span two nodes in one rack")
	}
	if sys.GroupLevel(0, sys.GPUsPerNode*sys.NodesPerRack+1) != cluster.InterRack {
		t.Fatal("spanning beyond a rack must be inter-rack")
	}
}
