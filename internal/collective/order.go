package collective

// This file defines the canonical chunking and the deterministic,
// seed-independent association order of the ring collectives, shared by
// the analytic schedules (analytic.go, schedule.go) and the executable
// runtime (internal/dist/comm.go). Keeping the schedule arithmetic here
// means the oracle prices exactly the communication pattern the runtime
// executes, and the runtime inherits the fixed association order the
// value-parity methodology (§4.5.2) depends on:
//
//   - Reduce-scatter: chunk c is first contributed by rank (c+1) mod p
//     and travels the ring (c+1) → (c+2) → … → c; each hop adds the
//     local contribution to the accumulated prefix, so chunk c's sum is
//     associated as (((x_{c+1} + x_{c+2}) + …) + x_c), independent of
//     seeds, goroutine scheduling, and buffer contents.
//   - Allgather: fully-reduced chunks circulate unchanged, so every
//     rank ends with the identical bytes for every chunk.
//
// Two runs of any width therefore reduce in the same order, and all
// ranks of one run agree bit-for-bit — the property synchronized batch
// norm and lock-stepped SGD replicas rely on.

// Chunks partitions n items into p contiguous chunks whose sizes differ
// by at most one, the remainder spread over the leading chunks. It
// restates tensor.SplitSizes so this package stays free of tensor
// dependencies while both sides agree on chunk boundaries.
func Chunks(n, p int) (offs, sizes []int) {
	q, r := n/p, n%p
	offs = make([]int, p)
	sizes = make([]int, p)
	o := 0
	for i := 0; i < p; i++ {
		sizes[i] = q
		if i < r {
			sizes[i]++
		}
		offs[i] = o
		o += sizes[i]
	}
	return offs, sizes
}

// mod is the arithmetic (always non-negative) remainder.
func mod(a, p int) int {
	a %= p
	if a < 0 {
		a += p
	}
	return a
}

// RingReduceScatterStep returns the chunk indices rank sends to its ring
// successor and receives (and reduces) from its predecessor at the given
// step of the (p−1)-step reduce-scatter. After the last step rank owns
// the fully reduced chunk `rank`.
func RingReduceScatterStep(rank, step, p int) (send, recv int) {
	return mod(rank-1-step, p), mod(rank-2-step, p)
}

// RingAllGatherStep returns the chunk indices rank sends and receives at
// the given step of the (p−1)-step ring allgather that follows a
// reduce-scatter: rank starts owning chunk `rank` and forwards what it
// received the step before.
func RingAllGatherStep(rank, step, p int) (send, recv int) {
	return mod(rank-step, p), mod(rank-1-step, p)
}
