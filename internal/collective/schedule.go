package collective

import (
	"fmt"

	"paradl/internal/simnet"
)

// FlowSpec describes one point-to-point transfer within a round.
type FlowSpec struct {
	Src, Dst int
	Bytes    float64
	// MPI selects the host-staged path (the paper's halo exchange and
	// Allgatherv ran over MPI rather than NCCL, §5.1).
	MPI bool
}

// Op is a communication operation expressed as synchronized rounds of
// concurrent flows: round r+1 starts only after every flow of round r
// has completed (the step barrier of ring algorithms).
type Op struct {
	Name   string
	Rounds [][]FlowSpec
}

// RingAllreduceOp builds the 2(p−1)-round ring Allreduce schedule among
// pes for an m-byte buffer: each round, every PE sends m/p to its ring
// successor (reduce-scatter phase then allgather phase — identical flow
// pattern on the wire).
func RingAllreduceOp(pes []int, m float64) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("allreduce(p=%d)", p)}
	if p <= 1 || m <= 0 {
		return op
	}
	chunk := m / float64(p)
	for step := 0; step < 2*(p-1); step++ {
		round := make([]FlowSpec, 0, p)
		for i := 0; i < p; i++ {
			round = append(round, FlowSpec{Src: pes[i], Dst: pes[(i+1)%p], Bytes: chunk})
		}
		op.Rounds = append(op.Rounds, round)
	}
	return op
}

// RingAllgatherOp builds the (p−1)-round ring Allgather among pes where
// each PE contributes a chunk of the given size.
func RingAllgatherOp(pes []int, chunk float64, mpi bool) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("allgather(p=%d)", p)}
	if p <= 1 || chunk <= 0 {
		return op
	}
	for step := 0; step < p-1; step++ {
		round := make([]FlowSpec, 0, p)
		for i := 0; i < p; i++ {
			round = append(round, FlowSpec{Src: pes[i], Dst: pes[(i+1)%p], Bytes: chunk, MPI: mpi})
		}
		op.Rounds = append(op.Rounds, round)
	}
	return op
}

// ReduceScatterOp builds the (p−1)-round reduce-scatter half of the
// ring Allreduce.
func ReduceScatterOp(pes []int, m float64) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("reducescatter(p=%d)", p)}
	if p <= 1 || m <= 0 {
		return op
	}
	chunk := m / float64(p)
	for step := 0; step < p-1; step++ {
		round := make([]FlowSpec, 0, p)
		for i := 0; i < p; i++ {
			round = append(round, FlowSpec{Src: pes[i], Dst: pes[(i+1)%p], Bytes: chunk})
		}
		op.Rounds = append(op.Rounds, round)
	}
	return op
}

// TwoTreeAllreduceOp builds the pipelined double-binary-tree allreduce
// schedule among pes for an m-byte buffer: each half of the buffer is
// assigned to one of the TwoTreeParents trees and streams through it in
// k chunks of m/(2k) bytes. Chunk c ascends the edge below a node at
// depth d in round c + (D − d) (D the tree depth) and descends it in
// round (k + D − 1) + c + (d − 1), so both trees' flows share rounds —
// the concurrent streaming the TwoTreeAllreduce closed form prices with
// its 2(log₂p + k) round count. Total bytes on the wire equal the ring
// allreduce's 2(p−1)·m: the two-tree trades none of the ring's
// bandwidth optimality, it only collapses the 2(p−1) latency terms to
// O(log p + k).
func TwoTreeAllreduceOp(pes []int, m float64, k int) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("twotree-allreduce(p=%d)", p)}
	if p <= 1 || m <= 0 {
		return op
	}
	if k < 1 {
		k = 1
	}
	chunk := m / (2 * float64(k))
	trees := TwoTreeParents(p)
	var rounds map[int][]FlowSpec
	add := func(round int, f FlowSpec) {
		if rounds == nil {
			rounds = make(map[int][]FlowSpec)
		}
		rounds[round] = append(rounds[round], f)
	}
	last := 0
	for _, parents := range trees {
		depths := TreeDepths(parents)
		maxD := 0
		for _, d := range depths {
			maxD = max(maxD, d)
		}
		bcast0 := k + maxD - 1 // first broadcast round of this tree
		for r, par := range parents {
			if par < 0 {
				continue
			}
			d := depths[r]
			for c := 0; c < k; c++ {
				add(c+maxD-d, FlowSpec{Src: pes[r], Dst: pes[par], Bytes: chunk})
				add(bcast0+c+d-1, FlowSpec{Src: pes[par], Dst: pes[r], Bytes: chunk})
				last = max(last, bcast0+c+d-1)
			}
		}
	}
	for round := 0; round <= last; round++ {
		if flows := rounds[round]; len(flows) > 0 {
			op.Rounds = append(op.Rounds, flows)
		}
	}
	return op
}

// BcastOp builds a binomial-tree broadcast of m bytes from pes[0].
func BcastOp(pes []int, m float64) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("bcast(p=%d)", p)}
	if p <= 1 || m <= 0 {
		return op
	}
	have := 1 // pes[0..have) hold the data
	for have < p {
		round := make([]FlowSpec, 0, have)
		for i := 0; i < have && have+i < p; i++ {
			round = append(round, FlowSpec{Src: pes[i], Dst: pes[have+i], Bytes: m})
		}
		op.Rounds = append(op.Rounds, round)
		have *= 2
	}
	return op
}

// ScatterOp builds a leader-rooted linear scatter of an m-byte buffer
// into p−1 chunks sent from pes[0] (the spatial strategy's sample
// distribution; the leader keeps its own chunk).
func ScatterOp(pes []int, m float64, mpi bool) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("scatter(p=%d)", p)}
	if p <= 1 || m <= 0 {
		return op
	}
	chunk := m / float64(p)
	round := make([]FlowSpec, 0, p-1)
	for i := 1; i < p; i++ {
		round = append(round, FlowSpec{Src: pes[0], Dst: pes[i], Bytes: chunk, MPI: mpi})
	}
	op.Rounds = append(op.Rounds, round)
	return op
}

// HaloExchangeOp builds the single-round bidirectional neighbour
// exchange of the spatial strategy: each PE swaps haloBytes with its
// successor (and implicitly its predecessor) in the logical spatial
// order. Runs on the MPI path when mpi is true, as in the paper.
func HaloExchangeOp(pes []int, haloBytes float64, mpi bool) *Op {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("halo(p=%d)", p)}
	if p <= 1 || haloBytes <= 0 {
		return op
	}
	round := make([]FlowSpec, 0, 2*(p-1))
	for i := 0; i+1 < p; i++ {
		round = append(round,
			FlowSpec{Src: pes[i], Dst: pes[i+1], Bytes: haloBytes, MPI: mpi},
			FlowSpec{Src: pes[i+1], Dst: pes[i], Bytes: haloBytes, MPI: mpi},
		)
	}
	op.Rounds = append(op.Rounds, round)
	return op
}

// P2POp builds a single transfer.
func P2POp(src, dst int, m float64, mpi bool) *Op {
	return &Op{
		Name:   "p2p",
		Rounds: [][]FlowSpec{{{Src: src, Dst: dst, Bytes: m, MPI: mpi}}},
	}
}

// RingRound builds ONE representative round of a ring collective among
// pes (every PE sends `chunk` bytes to its successor) together with the
// round count for the full operation. Ring rounds are structurally
// identical, so simulating one and multiplying by the count gives the
// exact steady-state time at a fraction of the event cost — essential
// for the 512–1024-GPU scales of Fig. 3. kind is "allreduce" (2(p−1)
// rounds), "allgather" or "reducescatter" (p−1 rounds).
func RingRound(kind string, pes []int, chunk float64, mpi bool) (*Op, int) {
	p := len(pes)
	op := &Op{Name: fmt.Sprintf("%s-round(p=%d)", kind, p)}
	if p <= 1 || chunk <= 0 {
		return op, 0
	}
	round := make([]FlowSpec, 0, p)
	for i := 0; i < p; i++ {
		round = append(round, FlowSpec{Src: pes[i], Dst: pes[(i+1)%p], Bytes: chunk, MPI: mpi})
	}
	op.Rounds = [][]FlowSpec{round}
	steps := p - 1
	if kind == "allreduce" {
		steps = 2 * (p - 1)
	}
	return op, steps
}

// Run executes a single op on a fresh position of sim and returns its
// elapsed time. Background flows already present in sim contend with
// it.
func Run(sim *simnet.Sim, topo *simnet.Topology, op *Op) float64 {
	els := RunConcurrent(sim, topo, []*Op{op})
	return els[0]
}

// RunConcurrent executes several ops concurrently on one simulator:
// each op's rounds advance independently (round barriers are per-op),
// and ops contend for shared links — this is how the segmented
// Allreduces of Data+Filter produce the φ≈2 contention the paper
// models (§4.3, §5.2). The returned slice holds each op's elapsed time
// from the common start.
func RunConcurrent(sim *simnet.Sim, topo *simnet.Topology, ops []*Op) []float64 {
	start := sim.Now()
	type opState struct {
		nextRound int
		pending   []simnet.FlowID
		finished  bool
		elapsed   float64
	}
	states := make([]opState, len(ops))
	// Empty ops complete immediately.
	for i, op := range ops {
		if len(op.Rounds) == 0 {
			states[i].finished = true
		}
	}
	launch := func(i int) {
		op := ops[i]
		st := &states[i]
		round := op.Rounds[st.nextRound]
		st.nextRound++
		for _, f := range round {
			var path []simnet.LinkID
			if f.MPI {
				path = topo.RouteMPI(f.Src, f.Dst)
			} else {
				path = topo.Route(f.Src, f.Dst)
			}
			st.pending = append(st.pending, sim.Start(path, f.Bytes))
		}
	}
	allFinished := func() bool {
		for i := range states {
			if !states[i].finished {
				return false
			}
		}
		return true
	}
	for !allFinished() {
		// Launch next rounds for every op that is ready.
		for i := range states {
			st := &states[i]
			if st.finished || len(st.pending) > 0 {
				continue
			}
			launch(i)
		}
		if !sim.Advance() {
			panic("collective: simulator stalled with unfinished ops")
		}
		// Retire completed rounds.
		for i := range states {
			st := &states[i]
			if st.finished || len(st.pending) == 0 {
				continue
			}
			done := true
			for _, id := range st.pending {
				if !sim.Done(id) {
					done = false
					break
				}
			}
			if !done {
				continue
			}
			st.pending = st.pending[:0]
			if st.nextRound >= len(ops[i].Rounds) {
				st.finished = true
				st.elapsed = sim.Now() - start
			}
		}
	}
	out := make([]float64, len(ops))
	for i := range states {
		out[i] = states[i].elapsed
	}
	return out
}
