package collective

import (
	"math"
	"testing"

	"paradl/internal/simnet"
)

// treeShape validates one parent array as a rooted tree: exactly one
// root, every parent in range, and every rank reaching the root (no
// cycles). It returns the root.
func treeShape(t *testing.T, parents []int) int {
	t.Helper()
	p := len(parents)
	root := -1
	for r, par := range parents {
		if par == -1 {
			if root >= 0 {
				t.Fatalf("two roots: %d and %d in %v", root, r, parents)
			}
			root = r
			continue
		}
		if par < 0 || par >= p || par == r {
			t.Fatalf("rank %d has invalid parent %d in %v", r, par, parents)
		}
	}
	if root < 0 {
		t.Fatalf("no root in %v", parents)
	}
	for r := range parents {
		seen := 0
		for cur := r; parents[cur] != -1; cur = parents[cur] {
			if seen++; seen > p {
				t.Fatalf("cycle reaching up from rank %d in %v", r, parents)
			}
		}
	}
	return root
}

// TestTwoTreeParentsShape: at every width both trees are valid rooted
// trees, and no rank is interior (has children) in both — the property
// that lets the two halves stream at full bandwidth concurrently.
func TestTwoTreeParentsShape(t *testing.T) {
	for p := 2; p <= 16; p++ {
		trees := TwoTreeParents(p)
		for tr := 0; tr < 2; tr++ {
			if len(trees[tr]) != p {
				t.Fatalf("p=%d tree %d has %d entries", p, tr, len(trees[tr]))
			}
			treeShape(t, trees[tr])
		}
		k0 := TreeChildren(trees[0])
		k1 := TreeChildren(trees[1])
		for r := 0; r < p; r++ {
			if len(k0[r]) > 0 && len(k1[r]) > 0 {
				t.Fatalf("p=%d: rank %d is interior in both trees", p, r)
			}
			if len(k0[r]) > 2 || len(k1[r]) > 2 {
				t.Fatalf("p=%d: rank %d exceeds binary degree (%d, %d children)",
					p, r, len(k0[r]), len(k1[r]))
			}
		}
	}
}

// TestTreeDepths: depths increase by one along every parent edge and
// the root sits at zero.
func TestTreeDepths(t *testing.T) {
	trees := TwoTreeParents(11)
	for tr := 0; tr < 2; tr++ {
		depths := TreeDepths(trees[tr])
		for r, par := range trees[tr] {
			if par == -1 {
				if depths[r] != 0 {
					t.Fatalf("root %d at depth %d", r, depths[r])
				}
				continue
			}
			if depths[r] != depths[par]+1 {
				t.Fatalf("rank %d depth %d, parent %d depth %d", r, depths[r], par, depths[par])
			}
		}
	}
}

// TestTwoTreeAllreduceOpConservation: the schedule moves exactly the
// ring allreduce's total of 2(p−1)·m bytes — the two-tree trades none
// of the ring's bandwidth optimality — in far fewer rounds than the
// ring's 2(p−1) once p outgrows log₂(p)+k.
func TestTwoTreeAllreduceOpConservation(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8, 16} {
		pes := make([]int, p)
		for i := range pes {
			pes[i] = i
		}
		m := 1e6
		op := TwoTreeAllreduceOp(pes, m, TwoTreeChunks)
		total := 0.0
		for _, round := range op.Rounds {
			if len(round) == 0 {
				t.Fatalf("p=%d: empty round in %s", p, op.Name)
			}
			for _, f := range round {
				total += f.Bytes
			}
		}
		if want := 2 * float64(p-1) * m; math.Abs(total-want) > want*1e-9 {
			t.Fatalf("p=%d: schedule moves %g bytes, want %g", p, total, want)
		}
	}
}

// TestSimTwoTreeFasterThanRingForSmall: on the simulated fabric the
// pipelined two-tree beats the ring for a latency-bound message at
// p=16, the regime the executable runtime switches algorithms in, and
// stays within a small factor of the TwoTreeAllreduce closed form.
func TestSimTwoTreeFasterThanRingForSmall(t *testing.T) {
	topo, _ := testTopo()
	pes := make([]int, 16)
	for i := range pes {
		pes[i] = i
	}
	m := 4e3 // small-but-not-tiny: latency terms dominate the ring
	ring := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp(pes, m))
	two := Run(simnet.NewSim(topo.Net), topo, TwoTreeAllreduceOp(pes, m, TwoTreeChunks))
	if two >= ring {
		t.Fatalf("two-tree %g should beat the ring %g for small messages at p=16", two, ring)
	}
}
