package collective

// This file defines the double binary tree ("two-tree") of Sanders,
// Speck & Träff — the algorithm NCCL uses for buffers too small for the
// ring to amortize its 2(p−1) latency terms but too large for a plain
// binomial tree's ⌈log₂p⌉·m per-hop payloads. The buffer is split into
// two halves, each reduced up and broadcast down its own tree in
// pipelined chunks; the trees are arranged so every rank is interior in
// at most one of them, so the two halves stream concurrently and each
// PE's bandwidth load stays ≈2·m/2 per tree instead of the binomial
// root's ⌈log₂p⌉·m.
//
// Like order.go, the construction lives here so the executable runtime
// (internal/dist/comm.go) and the analytic schedules (schedule.go,
// TwoTreeAllreduceOp) walk the SAME trees: the oracle prices exactly
// the communication pattern the runtime executes, and the runtime
// inherits a fixed, seed-independent association order — at every
// interior node the reduction is (own + child₀) + child₁ with children
// in ascending rank order, determined by the tree shape alone.

// TwoTreeChunks is the pipelining depth of the two-tree allreduce: each
// half of the buffer streams through its tree in this many chunks, the
// k of the TwoTreeAllreduce closed form. Shared by the executable and
// analytic sides so both price the same schedule.
const TwoTreeChunks = 4

// TwoTreeParents returns the two rooted trees of the double-binary-tree
// allreduce over p ranks: parents[tr][r] is r's parent in tree tr, −1
// at that tree's root.
//
// Tree 0 is built recursively: the root of a rank range is the largest
// power-of-two-minus-one offset the range admits, which makes its
// leaves exactly the even ranks. Tree 1 is the same shape with every
// rank shifted by one (rank r plays tree 0's role of (r+1) mod p), so
// its interior ranks are exactly tree 0's leaves: every rank is
// interior in at most one tree.
func TwoTreeParents(p int) [2][]int {
	var t [2][]int
	t[0] = make([]int, p)
	t[1] = make([]int, p)
	var build func(lo, hi, parent int)
	build = func(lo, hi, parent int) {
		n := hi - lo
		if n <= 0 {
			return
		}
		k := 1
		for 2*k <= n {
			k *= 2
		}
		root := lo + k - 1
		t[0][root] = parent
		build(lo, root, root)
		build(root+1, hi, root)
	}
	build(0, p, -1)
	for r := 0; r < p; r++ {
		par := t[0][(r+1)%p]
		if par < 0 {
			t[1][r] = -1
		} else {
			t[1][r] = (par - 1 + p) % p
		}
	}
	return t
}

// TreeChildren inverts a parent array into per-rank child lists in
// ascending rank order — the traversal and association order both sides
// of the two-tree use.
func TreeChildren(parents []int) [][]int {
	kids := make([][]int, len(parents))
	for r, par := range parents {
		if par >= 0 {
			kids[par] = append(kids[par], r)
		}
	}
	return kids
}

// TreeDepths returns each rank's distance from the root of the given
// parent array — the pipeline offset of the analytic two-tree rounds.
func TreeDepths(parents []int) []int {
	depth := make([]int, len(parents))
	var walk func(r int) int
	walk = func(r int) int {
		if parents[r] < 0 {
			return 0
		}
		if depth[r] == 0 {
			depth[r] = walk(parents[r]) + 1
		}
		return depth[r]
	}
	for r := range parents {
		walk(r)
	}
	return depth
}
