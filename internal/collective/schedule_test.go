package collective

import (
	"math"
	"testing"

	"paradl/internal/simnet"
)

func TestRingRoundStepCounts(t *testing.T) {
	pes := []int{0, 1, 2, 3}
	ar, arSteps := RingRound("allreduce", pes, 1e6, false)
	if arSteps != 6 { // 2(p-1)
		t.Fatalf("allreduce steps %d", arSteps)
	}
	if len(ar.Rounds) != 1 || len(ar.Rounds[0]) != 4 {
		t.Fatalf("allreduce round structure %v", ar.Rounds)
	}
	_, agSteps := RingRound("allgather", pes, 1e6, false)
	if agSteps != 3 { // p-1
		t.Fatalf("allgather steps %d", agSteps)
	}
	_, rsSteps := RingRound("reducescatter", pes, 1e6, false)
	if rsSteps != 3 {
		t.Fatalf("reducescatter steps %d", rsSteps)
	}
	empty, steps := RingRound("allreduce", []int{0}, 1e6, false)
	if steps != 0 || len(empty.Rounds) != 0 {
		t.Fatal("p=1 ring must be empty")
	}
}

func TestRingRoundTimesStepsMatchesFullSchedule(t *testing.T) {
	// The representative-round shortcut must agree with the full
	// 2(p−1)-round schedule on an uncontended fabric.
	topo, _ := testTopo()
	pes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m := 40e6

	full := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp(pes, m))

	op, steps := RingRound("allreduce", pes, m/float64(len(pes)), false)
	one := Run(simnet.NewSim(topo.Net), topo, op)
	shortcut := one * float64(steps)

	if d := math.Abs(full-shortcut) / full; d > 0.01 {
		t.Fatalf("shortcut %g vs full %g (%.1f%% apart)", shortcut, full, d*100)
	}
}

func TestReduceScatterOpStructure(t *testing.T) {
	op := ReduceScatterOp([]int{0, 1, 2, 3}, 4e6)
	if len(op.Rounds) != 3 {
		t.Fatalf("rs rounds %d, want p-1=3", len(op.Rounds))
	}
	for _, r := range op.Rounds {
		for _, f := range r {
			if f.Bytes != 1e6 {
				t.Fatalf("rs chunk %g, want m/p", f.Bytes)
			}
		}
	}
	topo, _ := testTopo()
	rs := Run(simnet.NewSim(topo.Net), topo, op)
	ar := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp([]int{0, 1, 2, 3}, 4e6))
	// Reduce-scatter is half the Allreduce rounds.
	if rs >= ar {
		t.Fatalf("reduce-scatter %g should undercut allreduce %g", rs, ar)
	}
}

func TestHaloZeroBytesEmpty(t *testing.T) {
	op := HaloExchangeOp([]int{0, 1}, 0, false)
	if len(op.Rounds) != 0 {
		t.Fatal("zero-byte halo must be empty")
	}
}

func TestRunConcurrentDisjointGroupsNoInterference(t *testing.T) {
	// Two Allreduces on different nodes' GPUs share no links; running
	// them together must cost the same as alone.
	topo, _ := testTopo()
	g0 := []int{0, 1, 2, 3}
	g1 := []int{4, 5, 6, 7}
	m := 30e6
	alone := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp(g0, m))
	els := RunConcurrent(simnet.NewSim(topo.Net), topo,
		[]*Op{RingAllreduceOp(g0, m), RingAllreduceOp(g1, m)})
	for i, el := range els {
		if d := math.Abs(el-alone) / alone; d > 0.01 {
			t.Fatalf("disjoint group %d slowed: %g vs %g", i, el, alone)
		}
	}
}
