package collective

import "testing"

// TestChunksCanonical: chunk sizes differ by at most one, remainder
// leads, offsets tile [0, n) exactly — the tensor.SplitSizes contract
// restated here.
func TestChunksCanonical(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 4}, {7, 7}, {9, 2}, {5, 5}, {16, 8}} {
		offs, sizes := Chunks(tc.n, tc.p)
		total, next := 0, 0
		for i := 0; i < tc.p; i++ {
			if offs[i] != next {
				t.Fatalf("n=%d p=%d: chunk %d offset %d, want %d", tc.n, tc.p, i, offs[i], next)
			}
			if d := sizes[0] - sizes[i]; d < 0 || d > 1 {
				t.Fatalf("n=%d p=%d: chunk sizes %v not near-equal", tc.n, tc.p, sizes)
			}
			total += sizes[i]
			next += sizes[i]
		}
		if total != tc.n {
			t.Fatalf("n=%d p=%d: sizes sum to %d", tc.n, tc.p, total)
		}
	}
}

// TestRingScheduleRoutesEveryChunk simulates the two ring phases on
// symbolic chunk sets: after the reduce-scatter every rank holds the
// complete sum of exactly its own chunk, and after the allgather every
// rank holds every chunk — for even, odd, and power-of-two widths.
func TestRingScheduleRoutesEveryChunk(t *testing.T) {
	for _, p := range []int{2, 3, 4, 5, 8} {
		// contrib[r][c] = set of ranks whose contribution to chunk c rank
		// r's in-flight buffer has absorbed, as a bitmask.
		hold := make([]uint64, p) // mask of contributions in rank r's circulating buffer
		for r := 0; r < p; r++ {
			hold[r] = 1 << r
		}
		for s := 0; s < p-1; s++ {
			next := make([]uint64, p)
			for r := 0; r < p; r++ {
				sc, _ := RingReduceScatterStep(r, s, p)
				// Rank r's buffer (carrying chunk sc) goes to r+1, which
				// adds its own contribution to the chunk it receives (rc of
				// the receiver's schedule must equal sc of the sender's).
				recvRank := (r + 1) % p
				_, rcOfRecv := RingReduceScatterStep(recvRank, s, p)
				if rcOfRecv != sc {
					t.Fatalf("p=%d s=%d: rank %d sends chunk %d but rank %d expects chunk %d", p, s, r, sc, recvRank, rcOfRecv)
				}
				next[recvRank] = hold[r] | 1<<recvRank
			}
			hold = next
		}
		full := uint64(1)<<p - 1
		for r := 0; r < p; r++ {
			// After the last step rank r's buffer must carry chunk r with
			// every rank's contribution.
			_, rc := RingReduceScatterStep(r, p-2, p)
			if rc != r {
				t.Fatalf("p=%d: rank %d ends owning chunk %d, want %d", p, r, rc, r)
			}
			if hold[r] != full {
				t.Fatalf("p=%d: rank %d's chunk misses contributions (mask %b, want %b)", p, r, hold[r], full)
			}
		}

		// Allgather phase: track which chunks each rank has written home.
		have := make([][]bool, p)
		carry := make([]int, p) // chunk id in rank r's circulating buffer
		for r := 0; r < p; r++ {
			have[r] = make([]bool, p)
			have[r][r] = true
			carry[r] = r
		}
		for s := 0; s < p-1; s++ {
			nextCarry := make([]int, p)
			for r := 0; r < p; r++ {
				sc, _ := RingAllGatherStep(r, s, p)
				if carry[r] != sc {
					t.Fatalf("p=%d s=%d: rank %d carries chunk %d but schedule says %d", p, s, r, carry[r], sc)
				}
				recvRank := (r + 1) % p
				_, rcOfRecv := RingAllGatherStep(recvRank, s, p)
				if rcOfRecv != sc {
					t.Fatalf("p=%d s=%d: allgather mismatch %d vs %d", p, s, sc, rcOfRecv)
				}
				have[recvRank][sc] = true
				nextCarry[recvRank] = sc
			}
			carry = nextCarry
		}
		for r := 0; r < p; r++ {
			for ch := 0; ch < p; ch++ {
				if !have[r][ch] {
					t.Fatalf("p=%d: rank %d never received chunk %d", p, r, ch)
				}
			}
		}
	}
}
