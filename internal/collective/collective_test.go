package collective

import (
	"math"
	"testing"
	"testing/quick"

	"paradl/internal/cluster"
	"paradl/internal/simnet"
)

var ab = AB{Alpha: 10e-6, Beta: 1.0 / 12.5e9}

func TestRingAllreduceFormula(t *testing.T) {
	m := 100e6
	p := 8
	want := 2 * float64(p-1) * (ab.Alpha + m/float64(p)*ab.Beta)
	if got := RingAllreduce(ab, p, m); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
	if RingAllreduce(ab, 1, m) != 0 {
		t.Fatal("p=1 must cost 0")
	}
}

func TestRingAllgatherFormula(t *testing.T) {
	chunk := 10e6
	p := 4
	want := float64(p-1) * (ab.Alpha + chunk*ab.Beta)
	if got := RingAllgather(ab, p, chunk); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %g want %g", got, want)
	}
}

func TestReduceScatterHalfOfAllreduce(t *testing.T) {
	m := 64e6
	p := 16
	if got, want := ReduceScatter(ab, p, m), RingAllreduce(ab, p, m)/2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("reduce-scatter %g, want half allreduce %g", got, want)
	}
}

func TestAllreduceAutoPicksTreeForSmall(t *testing.T) {
	p := 512
	small := 1e3
	large := 1e9
	if AllreduceAuto(ab, p, small) >= RingAllreduce(ab, p, small) {
		t.Fatal("small messages should use the tree algorithm")
	}
	ringLarge := RingAllreduce(ab, p, large)
	if math.Abs(AllreduceAuto(ab, p, large)-ringLarge) > ringLarge*0.5 {
		t.Fatal("large messages should be near the ring cost")
	}
}

func TestContentionScalesBeta(t *testing.T) {
	c := WithContention(ab, 2)
	if c.Beta != 2*ab.Beta || c.Alpha != ab.Alpha {
		t.Fatal("φ must scale β only")
	}
	if WithContention(ab, 0.5).Beta != ab.Beta {
		t.Fatal("φ<1 must clamp to 1")
	}
}

// Property: allreduce cost is monotonic in message size and in p (for
// fixed per-PE chunk regime the (p-1) term dominates).
func TestAllreduceMonotonicProperty(t *testing.T) {
	f := func(mRaw uint32, pRaw uint8) bool {
		m := float64(mRaw%1000000 + 1)
		p := int(pRaw%62) + 2
		return RingAllreduce(ab, p, m+1000) >= RingAllreduce(ab, p, m) &&
			RingAllreduce(ab, p+1, m) >= RingAllreduce(ab, p, m)*float64(p)/(float64(p)+1)*0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func testTopo() (*simnet.Topology, *cluster.System) {
	sys := cluster.Default()
	return simnet.NewTopology(sys), sys
}

func TestSimRingAllreduceMatchesAnalyticIntraNode(t *testing.T) {
	topo, sys := testTopo()
	pes := []int{0, 1, 2, 3} // one node
	m := 100e6
	sim := simnet.NewSim(topo.Net)
	got := Run(sim, topo, RingAllreduceOp(pes, m))

	// Analytic with the intra-node α/β. The simulated fabric routes
	// every intra-node flow over its two NVLink hops, so bandwidth per
	// step matches 1/β; α differs by small constants.
	want := RingAllreduce(AB{Alpha: 4e-6, Beta: sys.NCCL[cluster.IntraNode].Beta}, len(pes), m)
	if got < want*0.8 || got > want*1.5 {
		t.Fatalf("simulated %g vs analytic %g out of tolerance", got, want)
	}
}

func TestSimAllgatherShorterThanAllreduce(t *testing.T) {
	topo, _ := testTopo()
	pes := []int{0, 1, 2, 3, 4, 5, 6, 7}
	m := 80e6
	s1 := simnet.NewSim(topo.Net)
	ar := Run(s1, topo, RingAllreduceOp(pes, m))
	s2 := simnet.NewSim(topo.Net)
	ag := Run(s2, topo, RingAllgatherOp(pes, m/float64(len(pes)), false))
	if ag >= ar {
		t.Fatalf("allgather %g should be cheaper than allreduce %g", ag, ar)
	}
}

func TestSegmentedAllreduceContention(t *testing.T) {
	// Four disjoint Allreduces, each among "GPU k of every node" — the
	// Data+Filter segmented exchange. The four rings spread two-and-two
	// across the node's two IB rails, so each must take ≈2× longer than
	// one ring running alone: exactly the contention penalty φ=2 the
	// paper plugs into its Fig. 3 df projections (§5.2).
	topo, sys := testTopo()
	nodes := 4
	mkPes := func(k int) []int {
		pes := make([]int, nodes)
		for n := 0; n < nodes; n++ {
			pes[n] = n*sys.GPUsPerNode + k
		}
		return pes
	}
	m := 50e6

	alone := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp(mkPes(0), m))

	ops := make([]*Op, sys.GPUsPerNode)
	for k := range ops {
		ops[k] = RingAllreduceOp(mkPes(k), m)
	}
	els := RunConcurrent(simnet.NewSim(topo.Net), topo, ops)
	for k, el := range els {
		phi := el / alone
		if phi < 1.8 || phi > 2.5 {
			t.Fatalf("segment %d: φ = %.2f (concurrent %g vs alone %g), want ≈2", k, phi, el, alone)
		}
	}
}

func TestHaloExchangeOpBidirectional(t *testing.T) {
	topo, _ := testTopo()
	op := HaloExchangeOp([]int{0, 1, 2, 3}, 1e6, true)
	if len(op.Rounds) != 1 {
		t.Fatalf("halo rounds %d", len(op.Rounds))
	}
	if len(op.Rounds[0]) != 6 { // 3 neighbour pairs × 2 directions
		t.Fatalf("halo flows %d, want 6", len(op.Rounds[0]))
	}
	el := Run(simnet.NewSim(topo.Net), topo, op)
	if el <= 0 {
		t.Fatal("halo must take time")
	}
}

func TestHaloMPISlowerThanNCCL(t *testing.T) {
	topo, _ := testTopo()
	pes := []int{0, 1, 2, 3}
	mpi := Run(simnet.NewSim(topo.Net), topo, HaloExchangeOp(pes, 5e6, true))
	gpu := Run(simnet.NewSim(topo.Net), topo, HaloExchangeOp(pes, 5e6, false))
	if mpi <= gpu {
		t.Fatalf("MPI halo %g must exceed GPU-direct halo %g (the paper's P2P bottleneck)", mpi, gpu)
	}
}

func TestBcastOpRounds(t *testing.T) {
	op := BcastOp([]int{0, 1, 2, 3, 4, 5, 6, 7}, 1e6)
	if len(op.Rounds) != 3 {
		t.Fatalf("bcast of 8 PEs needs 3 rounds, got %d", len(op.Rounds))
	}
	total := 0
	for _, r := range op.Rounds {
		total += len(r)
	}
	if total != 7 {
		t.Fatalf("bcast flow count %d, want 7", total)
	}
}

func TestScatterOpSingleRound(t *testing.T) {
	op := ScatterOp([]int{0, 1, 2, 3}, 4e6, false)
	if len(op.Rounds) != 1 || len(op.Rounds[0]) != 3 {
		t.Fatalf("scatter structure wrong: %d rounds", len(op.Rounds))
	}
	for _, f := range op.Rounds[0] {
		if f.Bytes != 1e6 {
			t.Fatalf("scatter chunk %g, want 1e6", f.Bytes)
		}
		if f.Src != 0 {
			t.Fatal("scatter must be leader-rooted")
		}
	}
}

func TestP2POp(t *testing.T) {
	topo, _ := testTopo()
	el := Run(simnet.NewSim(topo.Net), topo, P2POp(0, 4, 10e6, false))
	// 10 MB over a 25 GB/s node uplink ≥ 0.4 ms
	if el < 0.4e-3 {
		t.Fatalf("p2p too fast: %g", el)
	}
}

func TestEmptyOpsCompleteInstantly(t *testing.T) {
	topo, _ := testTopo()
	els := RunConcurrent(simnet.NewSim(topo.Net), topo, []*Op{
		RingAllreduceOp([]int{0}, 1e6), // p=1 → empty
		P2POp(0, 1, 1e3, false),
	})
	if els[0] != 0 {
		t.Fatalf("empty op elapsed %g", els[0])
	}
	if els[1] <= 0 {
		t.Fatal("real op must take time")
	}
}

func TestScaleUpIncreasesAllreduceTime(t *testing.T) {
	topo, sys := testTopo()
	m := 25e6
	var prev float64
	for _, nodes := range []int{1, 2, 4, 8} {
		p := nodes * sys.GPUsPerNode
		pes := make([]int, p)
		for i := range pes {
			pes[i] = i
		}
		el := Run(simnet.NewSim(topo.Net), topo, RingAllreduceOp(pes, m))
		if el <= prev {
			t.Fatalf("allreduce time must grow with p: p=%d gave %g (prev %g)", p, el, prev)
		}
		prev = el
	}
}
