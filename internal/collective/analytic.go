// Package collective provides the communication primitives of the
// paper in two mirrored forms:
//
//   - analytic: Hockney α–β closed forms for ring/tree collectives
//     (§4.3) — these are what the ParaDL oracle evaluates, and
//   - simulated: step-by-step flow schedules on the simnet fabric —
//     these are what the "measured" side of the reproduction runs,
//     including self-contention between concurrent collectives and
//     background congestion.
package collective

import "math"

// AB aliases the Hockney parameter pair to keep signatures short.
type AB struct {
	Alpha, Beta float64
}

// RingAllreduce returns 2(p−1)(α + m/p·β) — the large-message NCCL ring
// algorithm (§4.3). m is the full buffer size in bytes.
func RingAllreduce(ab AB, p int, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return 2 * float64(p-1) * (ab.Alpha + m/float64(p)*ab.Beta)
}

// RingAllgather returns (p−1)(α + m·β) where m is the PER-PE chunk each
// process contributes (the paper's Tag(p, B|y|/p) convention).
func RingAllgather(ab AB, p int, chunk float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (ab.Alpha + chunk*ab.Beta)
}

// ReduceScatter returns (p−1)(α + m/p·β): the first half of the ring
// Allreduce, used by the paper's footnote-2 optimization for
// filter-parallel input gradients.
func ReduceScatter(ab AB, p int, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (ab.Alpha + m/float64(p)*ab.Beta)
}

// TwoTreeAllreduce returns 2(log₂(p)+k)(α + m/(2k)·β): the pipelined
// double-binary-tree algorithm the paper's footnote 4 cites for small
// messages, with each half of the message divided into k chunks. The
// trees themselves — the ones the executable runtime walks — are built
// by TwoTreeParents; TwoTreeAllreduceOp is the schedule counterpart.
func TwoTreeAllreduce(ab AB, p int, m float64, k int) float64 {
	if p <= 1 {
		return 0
	}
	if k < 1 {
		k = 1
	}
	return 2 * (math.Log2(float64(p)) + float64(k)) * (ab.Alpha + m/(2*float64(k))*ab.Beta)
}

// AllreduceAuto picks the ring algorithm for large messages and the
// two-tree algorithm for small ones, as NCCL does (§4.3). The crossover
// is where the two cost models intersect for the given α/β.
func AllreduceAuto(ab AB, p int, m float64) float64 {
	ring := RingAllreduce(ab, p, m)
	tree := TwoTreeAllreduce(ab, p, m, TwoTreeChunks)
	return math.Min(ring, tree)
}

// Bcast returns log₂(p)·(α + m·β): binomial-tree broadcast.
func Bcast(ab AB, p int, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * (ab.Alpha + m*ab.Beta)
}

// Scatter returns (p−1)(α + m/p·β) for scattering an m-byte buffer into
// p chunks (linear scatter, leader-rooted — the spatial strategy's
// sample distribution).
func Scatter(ab AB, p int, m float64) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * (ab.Alpha + m/float64(p)*ab.Beta)
}

// P2P returns α + m·β.
func P2P(ab AB, m float64) float64 { return ab.Alpha + m*ab.Beta }

// HaloExchange returns the per-layer halo cost of the spatial strategy:
// 2α + haloBytes·β for the bidirectional neighbour exchange, matching
// the Σ(2α + B(halo(x)+halo(dy))δβ) term of Table 3.
func HaloExchange(ab AB, haloBytes float64) float64 {
	return 2*ab.Alpha + haloBytes*ab.Beta
}

// WithContention divides effective bandwidth by the contention penalty
// coefficient φ (φ flows sharing each link, §4.3 "Contention
// modeling"); α is unchanged.
func WithContention(ab AB, phi float64) AB {
	if phi < 1 {
		phi = 1
	}
	return AB{Alpha: ab.Alpha, Beta: ab.Beta * phi}
}
