package profile

import (
	"fmt"
	"math"

	"paradl/internal/cluster"
	"paradl/internal/simnet"
)

// Sample is one (message size, measured seconds) benchmark point.
type Sample struct {
	Bytes   float64
	Seconds float64
}

// FitAlphaBeta least-squares-fits the Hockney model t = α + m·β to
// benchmark samples — the interpolation step of §4.4 ("we use those
// benchmark results to interpolate α and β").
func FitAlphaBeta(samples []Sample) (alpha, beta float64, err error) {
	n := float64(len(samples))
	if n < 2 {
		return 0, 0, fmt.Errorf("profile: need ≥2 samples to fit α/β, got %d", len(samples))
	}
	var sx, sy, sxx, sxy float64
	for _, s := range samples {
		sx += s.Bytes
		sy += s.Seconds
		sxx += s.Bytes * s.Bytes
		sxy += s.Bytes * s.Seconds
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("profile: degenerate sample set (all sizes equal)")
	}
	beta = (n*sxy - sx*sy) / den
	alpha = (sy - beta*sx) / n
	if beta < 0 {
		// Latency noise can produce a slightly negative slope on tiny
		// ranges; clamp and re-estimate α as the mean residual.
		beta = 0
		alpha = sy / n
	}
	return alpha, beta, nil
}

// PingPong benchmarks the p2p path between two PEs on the simulated
// fabric at the given message sizes.
func PingPong(topo *simnet.Topology, src, dst int, sizes []float64, mpi bool) []Sample {
	out := make([]Sample, 0, len(sizes))
	for _, m := range sizes {
		sim := simnet.NewSim(topo.Net)
		var path []simnet.LinkID
		if mpi {
			path = topo.RouteMPI(src, dst)
		} else {
			path = topo.Route(src, dst)
		}
		f := sim.Start(path, m)
		out = append(out, Sample{Bytes: m, Seconds: sim.RunUntilDone(f)})
	}
	return out
}

// DefaultSizes is a geometric sweep of benchmark message sizes (1 KiB
// to 256 MiB), mirroring osu_latency/nccl-tests sweeps.
func DefaultSizes() []float64 {
	var out []float64
	for m := 1024.0; m <= 256*1024*1024; m *= 4 {
		out = append(out, m)
	}
	return out
}

// CalibrateSystem re-derives per-level α/β pairs from the simulated
// fabric itself and returns a copy of sys carrying them. Running the
// oracle with calibrated parameters closes the loop the paper
// describes: benchmarks in, projections out, no hand-set constants.
func CalibrateSystem(sys *cluster.System) (*cluster.System, error) {
	topo := simnet.NewTopology(sys)
	pairs := map[cluster.LinkLevel][2]int{
		cluster.IntraNode: {0, 1},
		cluster.IntraRack: {0, sys.GPUsPerNode},
		cluster.InterRack: {0, sys.GPUsPerNode * sys.NodesPerRack},
	}
	out := *sys
	out.NCCL = map[cluster.LinkLevel]cluster.AlphaBeta{}
	out.MPI = map[cluster.LinkLevel]cluster.AlphaBeta{}
	for lvl, pe := range pairs {
		for _, mpi := range []bool{false, true} {
			samples := PingPong(topo, pe[0], pe[1], DefaultSizes(), mpi)
			a, b, err := FitAlphaBeta(samples)
			if err != nil {
				return nil, fmt.Errorf("profile: calibrating %v (mpi=%v): %w", lvl, mpi, err)
			}
			if mpi {
				out.MPI[lvl] = cluster.AlphaBeta{Alpha: a, Beta: b}
			} else {
				out.NCCL[lvl] = cluster.AlphaBeta{Alpha: a, Beta: b}
			}
		}
	}
	return &out, nil
}

// FitQuality returns the maximum relative residual of the fitted model
// over the samples.
func FitQuality(samples []Sample, alpha, beta float64) float64 {
	worst := 0.0
	for _, s := range samples {
		pred := alpha + beta*s.Bytes
		if s.Seconds == 0 {
			continue
		}
		r := math.Abs(pred-s.Seconds) / s.Seconds
		if r > worst {
			worst = r
		}
	}
	return worst
}
