// Package profile supplies ParaDL's empirical parameters (§4.4): the
// per-layer computation times FWl/BWl/WUl and the communication α/β
// pairs.
//
// The paper obtains these by micro-benchmarking a real V100 and a real
// InfiniBand fabric. This reproduction obtains them from a calibrated
// device model (FLOP counts × a saturation-efficiency curve, plus
// memory-bandwidth bounds and kernel-launch overhead) and from
// least-squares fits over the flow-level network simulator. Both
// sources exercise the same code path in the oracle: opaque measured
// numbers in, projections out.
package profile

import (
	"paradl/internal/cluster"
	"paradl/internal/nn"
)

// KernelClass selects the efficiency regime of a kernel.
type KernelClass int

const (
	// ConvClass kernels are compute-bound with moderate efficiency.
	ConvClass KernelClass = iota
	// GEMMClass (fully-connected) kernels reach higher efficiency.
	GEMMClass
	// ElementwiseClass kernels are memory-bandwidth bound.
	ElementwiseClass
	// UpdateClass models optimizer updates: many small bandwidth-bound
	// kernels that achieve a small fraction of peak bandwidth (this is
	// what makes weight update a non-trivial 15% for VGG16, Fig. 7).
	UpdateClass
)

// Device converts FLOP/byte counts into seconds for one GPU.
type Device struct {
	GPU cluster.GPU

	// MaxEff is the peak fraction of PeakFLOPS reachable per class.
	MaxEff map[KernelClass]float64
	// HalfWork is the per-kernel FLOP count at which a kernel reaches
	// half its peak efficiency — the saturation knee. Small kernels
	// (e.g. convolutions shrunk by filter parallelism) land below the
	// knee and lose efficiency, reproducing the "convolution does not
	// scale as expected" effect of Fig. 8.
	HalfWork float64
	// UpdateBWFrac is the fraction of memory bandwidth optimizer
	// updates achieve.
	UpdateBWFrac float64
}

// NewDevice builds the default V100-like device model.
func NewDevice(g cluster.GPU) *Device {
	return &Device{
		GPU: g,
		MaxEff: map[KernelClass]float64{
			ConvClass:        0.55,
			GEMMClass:        0.70,
			ElementwiseClass: 1.0, // bandwidth-bound; eff applies to BW
			UpdateClass:      1.0,
		},
		HalfWork:     2e9, // FLOPs at half efficiency
		UpdateBWFrac: 0.03,
	}
}

// Efficiency returns the fraction of peak FLOPS a kernel of the given
// class and total FLOP count achieves.
func (d *Device) Efficiency(class KernelClass, flops float64) float64 {
	max := d.MaxEff[class]
	if flops <= 0 {
		return max
	}
	return max * flops / (flops + d.HalfWork)
}

// KernelTime returns wall-clock seconds for one kernel moving `bytes`
// through memory and executing `flops`.
func (d *Device) KernelTime(class KernelClass, flops, bytes float64) float64 {
	var compute, memory float64
	switch class {
	case ElementwiseClass:
		memory = bytes / d.GPU.MemBandwidth
		compute = flops / d.GPU.PeakFLOPS
	case UpdateClass:
		memory = bytes / (d.GPU.MemBandwidth * d.UpdateBWFrac)
		compute = flops / d.GPU.PeakFLOPS
	default:
		compute = flops / (d.GPU.PeakFLOPS * d.Efficiency(class, flops))
		memory = bytes / d.GPU.MemBandwidth
	}
	t := compute
	if memory > t {
		t = memory
	}
	return t + d.GPU.LaunchOverhead
}

func classOf(kind nn.LayerKind) KernelClass {
	switch kind {
	case nn.Conv:
		return ConvClass
	case nn.FC:
		return GEMMClass
	default:
		return ElementwiseClass
	}
}

// LayerFW returns the forward time of layer l for a batch of b samples,
// with channel and spatial fractions frac (1 for full layer). frac
// scales the work, letting the measured side price the ACTUAL per-GPU
// partition (where efficiency loss appears) while the oracle divides
// profiled full-layer times ideally.
func (d *Device) LayerFW(l *nn.Layer, b int, frac float64) float64 {
	flops := float64(l.FwdFLOPs()) * float64(b) * frac
	bytes := float64(l.InSize()+l.OutSize()) * float64(b) * frac * 4
	return d.KernelTime(classOf(l.Kind), flops, bytes)
}

// LayerBW returns the backward time of layer l for b samples at
// fraction frac.
func (d *Device) LayerBW(l *nn.Layer, b int, frac float64) float64 {
	flops := float64(l.BwdFLOPs()) * float64(b) * frac
	bytes := 2 * float64(l.InSize()+l.OutSize()) * float64(b) * frac * 4
	return d.KernelTime(classOf(l.Kind), flops, bytes)
}

// OptimizerSpec prices one optimizer's weight-update pass: how many
// memory accesses and FLOPs each parameter costs, and how many
// persistent state variables it keeps beyond the weight itself. §5.3.3:
// ADAM's four variables per weight push WU time and memory up sharply.
type OptimizerSpec struct {
	Name string
	// ExtraState counts persistent per-parameter tensors beyond the
	// weight (and transient gradient): 0 for SGD, 2 for ADAM (m, v).
	ExtraState int
	// AccessesPerParam is memory operations per parameter per update.
	AccessesPerParam float64
	// FLOPsPerParam is arithmetic per parameter per update.
	FLOPsPerParam float64
}

// SGDSpec prices plain SGD: read w, read g, write w.
func SGDSpec() OptimizerSpec {
	return OptimizerSpec{Name: "sgd", ExtraState: 0, AccessesPerParam: 3, FLOPsPerParam: 2}
}

// AdamSpec prices ADAM: read w/g/m/v, write w/m/v, plus the moment and
// bias-correction arithmetic.
func AdamSpec() OptimizerSpec {
	return OptimizerSpec{Name: "adam", ExtraState: 2, AccessesPerParam: 7, FLOPsPerParam: 12}
}

// LayerWU returns the SGD weight-update time of layer l at weight
// fraction frac (filter/channel parallelism update only their slice).
func (d *Device) LayerWU(l *nn.Layer, frac float64) float64 {
	return d.LayerWUOpt(l, frac, SGDSpec())
}

// LayerWUOpt prices the weight update under an arbitrary optimizer.
func (d *Device) LayerWUOpt(l *nn.Layer, frac float64, opt OptimizerSpec) float64 {
	params := float64(l.WeightSize()+l.BiasSize()) * frac
	if params == 0 {
		return 0
	}
	return d.KernelTime(UpdateClass, opt.FLOPsPerParam*params, opt.AccessesPerParam*params*4)
}

// LayerTimes is the per-layer profile the oracle consumes: seconds for
// one SAMPLE (FW/BW) and one ITERATION (WU) per layer, as produced by
// profiling the full (unpartitioned) layer on one device — exactly the
// paper's procedure of profiling beforehand on the target architecture.
type LayerTimes struct {
	FW, BW, WU []float64
}

// ProfileModel profiles every layer of m on device d at per-GPU batch
// size b under SGD, normalizing FW/BW to per-sample seconds.
func ProfileModel(d *Device, m *nn.Model, b int) *LayerTimes {
	return ProfileModelOpt(d, m, b, SGDSpec())
}

// ProfileModelOpt profiles with an explicit optimizer pricing.
func ProfileModelOpt(d *Device, m *nn.Model, b int, opt OptimizerSpec) *LayerTimes {
	lt := &LayerTimes{
		FW: make([]float64, m.G()),
		BW: make([]float64, m.G()),
		WU: make([]float64, m.G()),
	}
	for i := range m.Layers {
		l := &m.Layers[i]
		lt.FW[i] = d.LayerFW(l, b, 1) / float64(b)
		lt.BW[i] = d.LayerBW(l, b, 1) / float64(b)
		lt.WU[i] = d.LayerWUOpt(l, 1, opt)
	}
	return lt
}

// SumFW returns Σ_l FW_l (seconds per sample).
func (lt *LayerTimes) SumFW() float64 { return sum(lt.FW) }

// SumBW returns Σ_l BW_l (seconds per sample).
func (lt *LayerTimes) SumBW() float64 { return sum(lt.BW) }

// SumWU returns Σ_l WU_l (seconds per iteration).
func (lt *LayerTimes) SumWU() float64 { return sum(lt.WU) }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
