package profile

import (
	"math"
	"testing"
	"testing/quick"

	"paradl/internal/cluster"
	"paradl/internal/model"
	"paradl/internal/simnet"
)

func TestFitAlphaBetaExact(t *testing.T) {
	alpha, beta := 12e-6, 1.0/10e9
	var samples []Sample
	for _, m := range DefaultSizes() {
		samples = append(samples, Sample{Bytes: m, Seconds: alpha + beta*m})
	}
	a, b, err := FitAlphaBeta(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-alpha) > alpha*1e-6 || math.Abs(b-beta) > beta*1e-6 {
		t.Fatalf("fit (%g, %g), want (%g, %g)", a, b, alpha, beta)
	}
}

func TestFitAlphaBetaRejectsDegenerate(t *testing.T) {
	if _, _, err := FitAlphaBeta([]Sample{{1, 1}}); err == nil {
		t.Fatal("single sample must be rejected")
	}
	if _, _, err := FitAlphaBeta([]Sample{{1024, 1e-6}, {1024, 2e-6}}); err == nil {
		t.Fatal("equal sizes must be rejected")
	}
}

// Property: the fit recovers arbitrary positive (α, β) from exact data.
func TestFitRecoveryProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		alpha := float64(aRaw%1000+1) * 1e-6
		beta := 1.0 / (float64(bRaw%100+1) * 1e9)
		var samples []Sample
		for m := 1e3; m <= 1e8; m *= 10 {
			samples = append(samples, Sample{Bytes: m, Seconds: alpha + beta*m})
		}
		a, b, err := FitAlphaBeta(samples)
		if err != nil {
			return false
		}
		return math.Abs(a-alpha) < alpha*1e-3+1e-12 && math.Abs(b-beta) < beta*1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPingPongMonotonic(t *testing.T) {
	sys := cluster.Default()
	topo := simnet.NewTopology(sys)
	samples := PingPong(topo, 0, 1, DefaultSizes(), false)
	for i := 1; i < len(samples); i++ {
		if samples[i].Seconds <= samples[i-1].Seconds {
			t.Fatalf("p2p time must grow with size: %v", samples)
		}
	}
}

func TestCalibrateSystemOrdering(t *testing.T) {
	sys := cluster.Default()
	cal, err := CalibrateSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	// Bandwidth ordering: NVLink (intra-node) ≥ IB rails; MPI path is
	// slower than GPU-direct at every level.
	for _, lvl := range []cluster.LinkLevel{cluster.IntraNode, cluster.IntraRack, cluster.InterRack} {
		nccl := cal.NCCL[lvl]
		mpi := cal.MPI[lvl]
		if nccl.Beta <= 0 || nccl.Alpha <= 0 {
			t.Fatalf("%v: non-positive calibrated parameters %+v", lvl, nccl)
		}
		if mpi.Beta < nccl.Beta {
			t.Fatalf("%v: MPI β %g should be ≥ NCCL β %g", lvl, mpi.Beta, nccl.Beta)
		}
		if mpi.Alpha < nccl.Alpha {
			t.Fatalf("%v: MPI α %g should be ≥ NCCL α %g", lvl, mpi.Alpha, nccl.Alpha)
		}
	}
	if cal.NCCL[cluster.IntraNode].Beta > cal.NCCL[cluster.IntraRack].Beta {
		t.Fatal("intra-node bandwidth must be ≥ intra-rack")
	}
	// The calibrated parameters should fit their own benchmarks well.
	topo := simnet.NewTopology(sys)
	samples := PingPong(topo, 0, 1, DefaultSizes(), false)
	q := FitQuality(samples, cal.NCCL[cluster.IntraNode].Alpha, cal.NCCL[cluster.IntraNode].Beta)
	if q > 0.25 {
		t.Fatalf("intra-node fit residual %.2f too large", q)
	}
}

func TestDeviceEfficiencySaturates(t *testing.T) {
	d := NewDevice(cluster.Default().GPU)
	small := d.Efficiency(ConvClass, 1e6)
	large := d.Efficiency(ConvClass, 1e12)
	if small >= large {
		t.Fatal("efficiency must grow with work")
	}
	if large > d.MaxEff[ConvClass] {
		t.Fatal("efficiency cannot exceed the class maximum")
	}
}

func TestKernelTimeRegimes(t *testing.T) {
	d := NewDevice(cluster.Default().GPU)
	// A compute-heavy kernel is FLOP-bound.
	tc := d.KernelTime(ConvClass, 1e12, 1e6)
	if tc < 1e12/(d.GPU.PeakFLOPS*d.MaxEff[ConvClass]) {
		t.Fatal("compute-bound kernel too fast")
	}
	// A pure memory kernel is bandwidth-bound.
	tm := d.KernelTime(ElementwiseClass, 0, 1e9)
	want := 1e9/d.GPU.MemBandwidth + d.GPU.LaunchOverhead
	if math.Abs(tm-want) > want*1e-9 {
		t.Fatalf("elementwise time %g, want %g", tm, want)
	}
	// Updates achieve only a fraction of bandwidth.
	tu := d.KernelTime(UpdateClass, 0, 1e9)
	if tu <= tm {
		t.Fatal("optimizer updates must be slower per byte than plain elementwise")
	}
}

func TestProfileModelShapes(t *testing.T) {
	sys := cluster.Default()
	d := NewDevice(sys.GPU)
	m := model.ResNet50()
	lt := ProfileModel(d, m, 32)
	if len(lt.FW) != m.G() || len(lt.BW) != m.G() || len(lt.WU) != m.G() {
		t.Fatal("profile must cover every layer")
	}
	if lt.SumFW() <= 0 || lt.SumBW() <= lt.SumFW() {
		t.Fatalf("BW (%g) should exceed FW (%g)", lt.SumBW(), lt.SumFW())
	}
	// Weight-less layers have zero WU time.
	for i := range m.Layers {
		if m.Layers[i].WeightSize() == 0 && lt.WU[i] != 0 {
			t.Fatalf("layer %d (%s) has WU time without weights", i, m.Layers[i].Name)
		}
	}
}

func TestVGGWeightUpdateShare(t *testing.T) {
	// Fig. 7 calibration target: VGG16 weight update ≈15% of compute at
	// b=32.
	sys := cluster.Default()
	d := NewDevice(sys.GPU)
	m := model.VGG16()
	lt := ProfileModel(d, m, 32)
	b := 32.0
	comp := b*(lt.SumFW()+lt.SumBW()) + lt.SumWU()
	share := lt.SumWU() / comp
	if share < 0.08 || share > 0.25 {
		t.Fatalf("VGG16 WU share %.3f outside Fig. 7's ≈0.15 regime", share)
	}
}
