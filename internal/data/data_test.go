package data

import (
	"testing"

	"paradl/internal/model"
	"paradl/internal/tensor"
)

func TestImageNetGeometry(t *testing.T) {
	ds := ImageNet()
	if ds.Samples != 1_281_167 || ds.Channels != 3 || ds.Classes != 1000 {
		t.Fatalf("bad ImageNet metadata: %+v", ds)
	}
	if !tensor.EqualShapes(ds.Dims, []int{226, 226}) {
		t.Fatalf("ImageNet dims %v", ds.Dims)
	}
	// One fp32 sample is 3·226²·4 ≈ 0.6 MB.
	if b := ds.SampleBytes(4); b != 3*226*226*4 {
		t.Fatalf("sample bytes %g", b)
	}
}

func TestCosmoFlowGeometry(t *testing.T) {
	ds := CosmoFlow()
	if ds.Samples != 1584 || ds.Channels != 4 {
		t.Fatalf("bad CosmoFlow metadata: %+v", ds)
	}
	// One fp32 sample is 4·256³·4 = 268 MB — the size that makes data
	// parallelism infeasible (§5.1).
	if b := ds.SampleBytes(4); b != 4*256*256*256*4 {
		t.Fatalf("sample bytes %g", b)
	}
}

func TestBatchDeterministic(t *testing.T) {
	m := model.TinyCNN()
	ds := Toy(m, 100)
	a := ds.Batch(5, 4)
	b := ds.Batch(5, 4)
	if !a.X.AllClose(b.X, 0) {
		t.Fatal("equal cursors must produce identical batches")
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels must be deterministic")
		}
	}
	c := ds.Batch(6, 4)
	if a.X.AllClose(c.X, 0) {
		t.Fatal("different cursors must produce different batches")
	}
}

func TestBatchShapeMatchesModel(t *testing.T) {
	m := model.Tiny3D()
	ds := Toy(m, 10)
	b := ds.Batch(0, 2)
	want := append([]int{2, m.InputChannels}, m.InputDims...)
	if !tensor.EqualShapes(b.X.Shape(), want) {
		t.Fatalf("batch shape %v, want %v", b.X.Shape(), want)
	}
	for _, l := range b.Labels {
		if l < 0 || l >= m.Classes {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestBatchesCount(t *testing.T) {
	ds := Toy(model.TinyCNN(), 100)
	bs := ds.Batches(3, 2)
	if len(bs) != 3 {
		t.Fatalf("batches %d", len(bs))
	}
}

func TestBatchesMatchCursorBatches(t *testing.T) {
	ds := Toy(model.Tiny3D(), 64)
	bs := ds.Batches(3, 4)
	for i := range bs {
		want := ds.Batch(i, 4)
		if !bs[i].X.AllClose(want.X, 0) {
			t.Fatalf("Batches[%d] diverges from Batch(%d)", i, i)
		}
		for j := range want.Labels {
			if bs[i].Labels[j] != want.Labels[j] {
				t.Fatalf("Batches[%d] label %d diverges", i, j)
			}
		}
	}
}

func TestToyGeometry(t *testing.T) {
	m := model.Tiny3D()
	ds := Toy(m, 64)
	if ds.Name != "toy-"+m.Name {
		t.Fatalf("toy name %q", ds.Name)
	}
	if ds.Samples != 64 || ds.Channels != m.InputChannels || ds.Classes != m.Classes {
		t.Fatalf("toy metadata %+v does not match model", ds)
	}
	if !tensor.EqualShapes(ds.Dims, m.InputDims) {
		t.Fatalf("toy dims %v, want %v", ds.Dims, m.InputDims)
	}
	// The dims slice must be a copy: mutating it must not alias the model.
	ds.Dims[0] = 99
	if m.InputDims[0] == 99 {
		t.Fatal("Toy must copy the model's input dims")
	}
}

func TestForModel(t *testing.T) {
	for _, name := range []string{"resnet50", "resnet152", "vgg16"} {
		ds, err := ForModel(name)
		if err != nil || ds.Name != "imagenet-synthetic" {
			t.Fatalf("ForModel(%s): %v %v", name, ds, err)
		}
	}
	ds, err := ForModel("cosmoflow")
	if err != nil || ds.Name != "cosmoflow-synthetic" {
		t.Fatalf("ForModel(cosmoflow): %v %v", ds, err)
	}
	if _, err := ForModel("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}
