// Package data provides synthetic datasets with the exact tensor
// geometry of the paper's Table 5 workloads (ImageNet 3×226², CosmoFlow
// 4×256³). Only sample geometry and count enter the performance model;
// sample VALUES matter only to the correctness harness, where
// procedurally generated tensors are equivalent to real images — the
// substitution recorded in DESIGN.md.
package data

import (
	"fmt"
	"math/rand"

	"paradl/internal/dist"
	"paradl/internal/nn"
	"paradl/internal/tensor"
)

// Dataset describes a training set: geometry plus a deterministic
// procedural sample generator.
type Dataset struct {
	Name     string
	Samples  int64
	Channels int
	Dims     []int
	Classes  int
	seed     int64
}

// SampleBytes returns the size of one sample at delta bytes per item.
func (d *Dataset) SampleBytes(delta float64) float64 {
	n := int64(d.Channels)
	for _, e := range d.Dims {
		n *= int64(e)
	}
	return float64(n) * delta
}

// Batch materializes a deterministic batch of the given size starting
// at a logical cursor (two equal cursors yield identical batches).
func (d *Dataset) Batch(cursor, size int) dist.Batch {
	rng := rand.New(rand.NewSource(d.seed + int64(cursor)*7919))
	shape := append([]int{size, d.Channels}, d.Dims...)
	x := tensor.New(shape...).RandN(rng, 1)
	labels := make([]int, size)
	for i := range labels {
		labels[i] = rng.Intn(d.Classes)
	}
	return dist.Batch{X: x, Labels: labels}
}

// Batches materializes n consecutive batches.
func (d *Dataset) Batches(n, size int) []dist.Batch {
	return d.BatchesFrom(0, n, size)
}

// BatchesFrom materializes n consecutive batches starting at a logical
// cursor — the resume path: a checkpoint taken after iteration k
// records cursor k, and BatchesFrom(k, n-k, size) regenerates exactly
// the batches the interrupted run never consumed.
func (d *Dataset) BatchesFrom(cursor, n, size int) []dist.Batch {
	out := make([]dist.Batch, n)
	for i := range out {
		out[i] = d.Batch(cursor+i, size)
	}
	return out
}

// ImageNet returns the synthetic stand-in for ILSVRC-2012 at the
// paper's 3×226² geometry (1.28M samples, 1000 classes).
func ImageNet() *Dataset {
	return &Dataset{
		Name:     "imagenet-synthetic",
		Samples:  1_281_167,
		Channels: 3,
		Dims:     []int{226, 226},
		Classes:  1000,
		seed:     1,
	}
}

// CosmoFlow returns the synthetic stand-in for the CosmoFlow dataset
// (1584 samples of 4×256³; the 4 regression targets are treated as
// classes for the synthetic loss).
func CosmoFlow() *Dataset {
	return &Dataset{
		Name:     "cosmoflow-synthetic",
		Samples:  1584,
		Channels: 4,
		Dims:     []int{256, 256, 256},
		Classes:  4,
		seed:     2,
	}
}

// Toy returns a small dataset matched to a toy model — the workload of
// the runnable examples and the correctness harness.
func Toy(m *nn.Model, samples int64) *Dataset {
	return &Dataset{
		Name:     "toy-" + m.Name,
		Samples:  samples,
		Channels: m.InputChannels,
		Dims:     append([]int(nil), m.InputDims...),
		Classes:  m.Classes,
		seed:     3,
	}
}

// ForModel returns the dataset a paper model trains on.
func ForModel(name string) (*Dataset, error) {
	switch name {
	case "resnet50", "resnet152", "vgg16":
		return ImageNet(), nil
	case "cosmoflow":
		return CosmoFlow(), nil
	default:
		return nil, fmt.Errorf("data: no dataset for model %q", name)
	}
}
