package core

import (
	"fmt"
	"sort"
)

// Advice is the oracle's recommendation for one strategy at one scale.
type Advice struct {
	Projection *Projection
	// Rank is 1 for the fastest feasible strategy.
	Rank int
}

// LessProjection is the oracle's ranking order: feasible strategies
// before infeasible ones, faster total epoch time first. It is the ONE
// comparator behind Advise, AdviseFeasible, and the workload
// scoreboard's oracle ordering, so "the oracle's pick" means the same
// thing everywhere it is scored.
func LessProjection(a, b *Projection) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	return a.Epoch.Total() < b.Epoch.Total()
}

// rank sorts advices by LessProjection and assigns 1-based ranks.
func rank(out []Advice) {
	sort.SliceStable(out, func(i, j int) bool {
		return LessProjection(out[i].Projection, out[j].Projection)
	})
	for i := range out {
		out[i].Rank = i + 1
	}
}

// Advise projects every strategy under cfg and returns them sorted by
// total epoch time, feasible strategies first — the "suggesting the
// best strategy for a given CNN, dataset, and resource budget" use of
// ParaDL (§4.1).
func Advise(cfg Config) ([]Advice, error) {
	var out []Advice
	for _, s := range Strategies() {
		pr, err := Project(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("core: advising %v: %w", s, err)
		}
		out = append(out, Advice{Projection: pr})
	}
	rank(out)
	return out, nil
}

// AdviseFeasible is Advise for worlds the strict oracle rejects
// outright: each strategy is projected individually and the ones whose
// Project errors — e.g. every hybrid at a prime P, where no P1×P2 grid
// exists — are silently skipped instead of failing the whole call. The
// elastic runtime uses it to re-plan after losing a PE, when the shrunk
// world size is rarely as friendly as the one the run started with.
// The survivors sort and rank exactly like Advise's output; the slice
// is empty (not an error) when no strategy projects.
func AdviseFeasible(cfg Config) []Advice {
	var out []Advice
	for _, s := range Strategies() {
		pr, err := Project(cfg, s)
		if err != nil {
			continue
		}
		out = append(out, Advice{Projection: pr})
	}
	rank(out)
	return out
}

// Best returns the fastest feasible strategy, or an error when nothing
// fits (e.g. CosmoFlow where only ds is viable at small scale).
func Best(cfg Config) (*Projection, error) {
	advs, err := Advise(cfg)
	if err != nil {
		return nil, err
	}
	for _, a := range advs {
		if a.Projection.Feasible {
			return a.Projection, nil
		}
	}
	return nil, fmt.Errorf("core: no feasible strategy for %s at P=%d B=%d", cfg.Model.Name, cfg.P, cfg.B)
}

// FindingKind classifies a detected issue as an inherent limitation of
// the strategy (L) or a framework/system bottleneck (B) — Table 6's
// L/B column.
type FindingKind string

const (
	// Limitation marks issues inherent to the parallel strategy.
	Limitation FindingKind = "L"
	// Bottleneck marks issues caused by framework or system components.
	Bottleneck FindingKind = "B"
)

// Finding is one row-instance of Table 6 for a concrete configuration.
type Finding struct {
	Kind     FindingKind
	Category string // Communication / Memory Capacity / Computation / Scaling
	Remark   string
	Detail   string
}

// DetectFindings inspects a projection and reports the limitations and
// bottlenecks of Table 6 that apply at this configuration. Thresholds
// express "significant" as a fraction of total epoch time.
func DetectFindings(pr *Projection) []Finding {
	var fs []Finding
	cfg := pr.Config
	total := pr.Epoch.Total()
	if total <= 0 {
		return fs
	}
	frac := func(x float64) float64 { return x / total }

	// Communication: gradient exchange (d, s, df, ds).
	if frac(pr.Epoch.GE) > 0.15 {
		fs = append(fs, Finding{Limitation, "Communication", "Gradient-exchange",
			fmt.Sprintf("Allreduce is %.0f%% of epoch time", 100*frac(pr.Epoch.GE))})
	}
	// Communication: layer-wise collectives (f/c, df).
	if frac(pr.Epoch.FBComm) > 0.15 {
		fs = append(fs, Finding{Limitation, "Communication", "Layer-wise comm.",
			fmt.Sprintf("per-layer Allgather/Allreduce is %.0f%% of epoch time", 100*frac(pr.Epoch.FBComm))})
	}
	// Communication: P2P (halo, pipeline) — a framework bottleneck, the
	// MPI-instead-of-NCCL path (§5.3.1).
	if frac(pr.Epoch.Halo+pr.Epoch.PipeP2P) > 0.10 {
		fs = append(fs, Finding{Bottleneck, "Communication", "P2P communication",
			fmt.Sprintf("halo/pipeline P2P is %.0f%% of epoch time", 100*frac(pr.Epoch.Halo+pr.Epoch.PipeP2P))})
	}
	// Memory capacity: redundancy (weights replicated in s/f/c, whole
	// replicas in d).
	if pr.MemoryPerPE > 0.8*cfg.Sys.GPU.MemBytes {
		kind := Bottleneck
		fs = append(fs, Finding{kind, "Memory Capacity", "Memory redundancy",
			fmt.Sprintf("projected %.1f GB per PE vs %.0f GB device", pr.MemoryPerPE/1e9, cfg.Sys.GPU.MemBytes/1e9)})
	}
	// Computation: weight update share (§5.3.3, Fig. 7).
	if comp := pr.Epoch.Comp(); comp > 0 && pr.Epoch.WU/comp > 0.10 {
		fs = append(fs, Finding{Limitation, "Computation", "Weight update",
			fmt.Sprintf("weight update is %.0f%% of compute", 100*pr.Epoch.WU/comp)})
	}
	// Scaling: at or beyond the PE limit.
	if pr.MaxPE > 0 && cfg.P >= pr.MaxPE {
		fs = append(fs, Finding{Limitation, "Scaling", "Number of PEs",
			fmt.Sprintf("P=%d is at the %v limit of %d for %s", cfg.P, pr.Strategy, pr.MaxPE, cfg.Model.Name)})
	}
	return fs
}
