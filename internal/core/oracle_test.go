package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"paradl/internal/cluster"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// testConfig builds a config for ResNet-50-like projection with weak
// scaling: B = b·P.
func testConfig(t testing.TB, m *nn.Model, p, perPE int) Config {
	t.Helper()
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	b := perPE * p
	return Config{
		Model: m,
		Sys:   sys,
		Times: profile.ProfileModel(dev, m, perPE),
		D:     model.ImageNetSamples,
		B:     b,
		P:     p,
	}
}

func TestSerialHasNoComm(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 1, 32)
	pr, err := Project(cfg, Serial)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epoch.Comm() != 0 {
		t.Fatalf("serial comm %g, want 0", pr.Epoch.Comm())
	}
	if pr.Epoch.Comp() <= 0 {
		t.Fatal("serial compute must be positive")
	}
}

func TestDataComputeScalesInversely(t *testing.T) {
	m := model.ResNet50()
	var prevFW float64
	for i, p := range []int{16, 32, 64} {
		cfg := testConfig(t, m, p, 32)
		pr, err := Project(cfg, Data)
		if err != nil {
			t.Fatal(err)
		}
		fw := pr.Epoch.FW
		if i > 0 {
			// per-epoch FW halves when p doubles (D fixed)
			if math.Abs(fw*2-prevFW) > prevFW*0.01 {
				t.Fatalf("FW did not halve: p=%d fw=%g prev=%g", p, fw, prevFW)
			}
		}
		prevFW = fw
	}
}

func TestDataDegeneratesToSerialAtP1(t *testing.T) {
	m := model.ResNet50()
	cfg := testConfig(t, m, 1, 32)
	serial, _ := Project(cfg, Serial)
	data, _ := Project(cfg, Data)
	if math.Abs(serial.Epoch.Comp()-data.Epoch.Comp()) > serial.Epoch.Comp()*1e-9 {
		t.Fatal("data parallelism at p=1 must equal serial compute")
	}
	if data.Epoch.GE != 0 {
		t.Fatal("no gradient exchange at p=1")
	}
}

func TestDataAllreduceGrowsWithModelSize(t *testing.T) {
	p := 64
	r50 := testConfig(t, model.ResNet50(), p, 32)
	vgg := testConfig(t, model.VGG16(), p, 32)
	pr50, _ := Project(r50, Data)
	prVGG, _ := Project(vgg, Data)
	ge50 := pr50.Iter().GE
	geVGG := prVGG.Iter().GE
	// VGG16 has ≈5× the parameters of ResNet-50.
	if geVGG < 3*ge50 {
		t.Fatalf("VGG16 GE %g should dwarf ResNet50 GE %g", geVGG, ge50)
	}
}

func TestSpatialAddsHalo(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 16, 8)
	pr, err := Project(cfg, Spatial)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epoch.Halo <= 0 {
		t.Fatal("spatial must pay halo exchange")
	}
	if pr.Epoch.GE <= 0 {
		t.Fatal("spatial still pays gradient exchange")
	}
}

func TestHaloSubstantialVsGE(t *testing.T) {
	// §5.3.1: for ResNet-50 at 128 GPUs the FB-Halo time is ≈60% of the
	// GE Allreduce — substantially higher than initially expected
	// because the framework uses MPI rather than NCCL. Reproduce the
	// paper's configuration (ds at 128 GPUs, b=32/GPU, spatial within
	// the node) and accept a broad band around the observation.
	cfg := testConfig(t, model.ResNet50(), 128, 32)
	cfg.P1, cfg.P2 = 32, 4
	pr, err := Project(cfg, DataSpatial)
	if err != nil {
		t.Fatal(err)
	}
	ratio := pr.Epoch.Halo / pr.Epoch.GE
	if ratio < 0.15 || ratio > 1.2 {
		t.Fatalf("halo/GE ratio %.2f outside the paper's observed regime (~0.6)", ratio)
	}
}

func TestHybridDerivesMissingGridAxis(t *testing.T) {
	// One grid axis given: validate derives the other from P (the CLI's
	// documented `-gpus 64 -p2 4` usage).
	cfg := testConfig(t, model.ResNet50(), 64, 8)
	cfg.P2 = 4
	pr, err := Project(cfg, DataSpatial)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Config.P1 != 16 || pr.Config.P2 != 4 {
		t.Fatalf("derived grid %d×%d, want 16×4", pr.Config.P1, pr.Config.P2)
	}
	cfg = testConfig(t, model.ResNet50(), 64, 8)
	cfg.P1 = 5 // does not divide 64: a diagnosis, not the opaque P1·P2 ≠ P
	if _, err := Project(cfg, DataFilter); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Fatalf("want non-dividing axis error, got %v", err)
	}
}

func TestFilterChannelCommEqual(t *testing.T) {
	cfg := testConfig(t, model.VGG16(), 16, 2)
	f, _ := Project(cfg, Filter)
	c, _ := Project(cfg, Channel)
	// Table 3 gives identical comm formulas for filter and channel.
	if math.Abs(f.Epoch.FBComm-c.Epoch.FBComm) > f.Epoch.FBComm*1e-9 {
		t.Fatal("filter and channel comm must match analytically")
	}
	if math.Abs(f.Epoch.Comp()-c.Epoch.Comp()) > f.Epoch.Comp()*1e-9 {
		t.Fatal("filter and channel compute must match")
	}
}

func TestFilterWeightUpdateSharded(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 16, 2)
	f, _ := Project(cfg, Filter)
	d, _ := Project(cfg, Data)
	if f.Epoch.WU >= d.Epoch.WU {
		t.Fatal("filter WU (sharded /p) must be below data WU")
	}
	if math.Abs(f.Epoch.WU*16-d.Epoch.WU) > d.Epoch.WU*0.01 {
		t.Fatalf("filter WU should be exactly WU/p: %g vs %g/16", f.Epoch.WU, d.Epoch.WU)
	}
}

func TestFilterCommExceedsDataAtB32(t *testing.T) {
	// §5.3.1: with batch ≥32/GPU on ImageNet models, filter/channel
	// layer-wise comm exceeds data parallelism's gradient exchange.
	m := model.ResNet50()
	p := 16
	cfg := testConfig(t, m, p, 32)
	f, _ := Project(cfg, Filter)
	d, _ := Project(cfg, Data)
	if f.Iter().Comm() <= d.Iter().Comm() {
		t.Fatalf("filter comm %g must exceed data comm %g at b=32",
			f.Iter().Comm(), d.Iter().Comm())
	}
}

func TestPipelineStageAmplification(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 4, 8)
	cfg.Segments = 4
	pr, err := Project(cfg, Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	// With p=4, S=4: amplification (p+S−1)/S = 7/4 over the bottleneck
	// stage; compute must be positive and less than serial.
	serial, _ := Project(cfg, Serial)
	if pr.Epoch.Comp() <= 0 || pr.Epoch.Comp() >= serial.Epoch.Comp() {
		t.Fatalf("pipeline compute %g should be within (0, serial %g)", pr.Epoch.Comp(), serial.Epoch.Comp())
	}
	if pr.Epoch.PipeP2P <= 0 {
		t.Fatal("pipeline must pay P2P communication")
	}
}

func TestPipelineMoreSegmentsLessBubble(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 4, 8)
	cfg.Segments = 2
	a, _ := Project(cfg, Pipeline)
	cfg.Segments = 8
	b, _ := Project(cfg, Pipeline)
	if b.Epoch.FW >= a.Epoch.FW {
		t.Fatalf("more segments must shrink the pipeline bubble: S=8 %g vs S=2 %g", b.Epoch.FW, a.Epoch.FW)
	}
}

func TestDataFilterCombinesBothComms(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 8)
	cfg.P1, cfg.P2 = 16, 4
	pr, err := Project(cfg, DataFilter)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epoch.GE <= 0 || pr.Epoch.FBComm <= 0 {
		t.Fatalf("df needs both GE (%g) and FB comm (%g)", pr.Epoch.GE, pr.Epoch.FBComm)
	}
}

func TestDataFilterContentionDefault(t *testing.T) {
	sys := cluster.Default()
	phi := EstimatePhi(sys, DataFilter, sys.GPUsPerNode)
	if phi != 2 {
		t.Fatalf("φ = %g, want 2 (4 GPUs / 2 uplinks, §5.2)", phi)
	}
	if EstimatePhi(sys, Data, 4) != 1 {
		t.Fatal("non-segmented strategies have φ=1")
	}
}

func TestDataSpatialGEMoreThanTwiceData(t *testing.T) {
	// §5.3.1: the hierarchical ds Allreduce costs more than 2× the
	// plain data-parallel Allreduce.
	m := model.ResNet50()
	cfg := testConfig(t, m, 64, 8)
	cfg.P1, cfg.P2 = 16, 4
	ds, err := Project(cfg, DataSpatial)
	if err != nil {
		t.Fatal(err)
	}
	cfgD := testConfig(t, m, 64, 8)
	d, _ := Project(cfgD, Data)
	if ds.Epoch.GE <= 2*d.Epoch.GE*0.8 {
		t.Fatalf("ds GE %g should be ≳2× data GE %g", ds.Epoch.GE, d.Epoch.GE)
	}
}

func TestScalingLimits(t *testing.T) {
	// Filter/channel runs are STRONG scaling (Fig. 3 caption): the
	// global batch stays fixed as p grows.
	m := model.ResNet50() // min filters 64
	strong := func(p int) Config {
		cfg := testConfig(t, m, p, 1)
		cfg.B = 32
		return cfg
	}
	pr, _ := Project(strong(128), Filter)
	if pr.Feasible {
		t.Fatal("filter at p=128 exceeds the 64-filter limit and must be infeasible")
	}
	pr64, _ := Project(strong(64), Filter)
	if !pr64.Feasible {
		t.Fatalf("filter at p=64 should be feasible: %v", pr64.Notes)
	}
}

func TestCosmoFlowDataParallelOOM(t *testing.T) {
	// The paper: CosmoFlow's sample is so large that data parallelism
	// is not an option (Fig. 4/§5.3.2: the first conv layer at 4×512³
	// generates >10 GB of activations alone). At 512³, even one sample
	// per GPU blows past 16 GB; spreading a sample spatially across
	// GPUs (ds) restores feasibility.
	m := model.CosmoFlowAt(512)
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	cfg := Config{
		Model: m, Sys: sys,
		Times: profile.ProfileModel(dev, m, 1),
		D:     model.CosmoFlowSamples, B: 2, P: 2,
	}
	pr, err := Project(cfg, Data)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Feasible {
		t.Fatalf("CosmoFlow-512 data parallelism must be memory-infeasible (got %.1f GB)", pr.MemoryPerPE/1e9)
	}
	if bytes := LargestLayerActivationBytes(m, 1, sys.BytesPerItem); bytes < 8e9 {
		t.Fatalf("first conv activation %.1f GB, expected >8 GB at 512³", bytes/1e9)
	}
	// ds with one sample spread over 8 GPUs (the paper ran CosmoFlow at
	// 0.25 samples/GPU — less than one sample per device).
	ds := cfg
	ds.B, ds.P, ds.P1, ds.P2 = 1, 8, 1, 8
	prDS, err := Project(ds, DataSpatial)
	if err != nil {
		t.Fatal(err)
	}
	if !prDS.Feasible {
		t.Fatalf("CosmoFlow ds must be feasible: %v (%.1f GB)", prDS.Notes, prDS.MemoryPerPE/1e9)
	}
}

func TestMemoryOrdering(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 16, 8)
	d, _ := Project(cfg, Data)
	f, _ := Project(cfg, Filter)
	s, _ := Project(cfg, Spatial)
	// Data replicates weights AND divides activations by p; filter
	// keeps all activations. For VGG16 at b=8, filter's replicated
	// activations dominate.
	if f.MemoryPerPE <= d.MemoryPerPE {
		t.Fatalf("filter memory %g should exceed data memory %g here", f.MemoryPerPE, d.MemoryPerPE)
	}
	if s.MemoryPerPE >= f.MemoryPerPE {
		t.Fatal("spatial divides activations; filter does not")
	}
}

func TestWeightUpdateShareVGG(t *testing.T) {
	// Fig. 7: weight update reaches ≈15% of compute for VGG16.
	cfg := testConfig(t, model.VGG16(), 16, 32)
	pr, _ := Project(cfg, Data)
	share := pr.Epoch.WU / pr.Epoch.Comp()
	if share < 0.05 || share > 0.35 {
		t.Fatalf("VGG16 WU share %.2f outside the paper's regime (~0.15)", share)
	}
	// ResNet-50 share must be smaller (fewer params per FLOP).
	cfgR := testConfig(t, model.ResNet50(), 16, 32)
	prR, _ := Project(cfgR, Data)
	if prR.Epoch.WU/prR.Epoch.Comp() >= share {
		t.Fatal("ResNet50 WU share should be below VGG16's")
	}
}

func TestProjectValidation(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 16, 8)
	bad := cfg
	bad.B = 0
	if _, err := Project(bad, Data); err == nil {
		t.Fatal("B=0 must be rejected")
	}
	bad2 := cfg
	bad2.P1, bad2.P2 = 3, 5 // ≠ 16
	if _, err := Project(bad2, DataFilter); err == nil {
		t.Fatal("P1·P2≠P must be rejected")
	}
}

func TestHybridDefaultsToNodeSize(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 8)
	pr, err := Project(cfg, DataFilter)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Config.P2 != cluster.Default().GPUsPerNode {
		t.Fatalf("default P2 = %d, want node size", pr.Config.P2)
	}
}

// Property: per-iteration total time is positive and finite for all
// strategies across random scales.
func TestProjectionSanityProperty(t *testing.T) {
	m := model.ResNet50()
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	times := profile.ProfileModel(dev, m, 8)
	f := func(pRaw uint8, sRaw uint8) bool {
		p := 1 << (pRaw % 7) // 1..64
		s := Strategies()[int(sRaw)%len(Strategies())]
		cfg := Config{Model: m, Sys: sys, Times: times, D: 1 << 16, B: 8 * p, P: p}
		pr, err := Project(cfg, s)
		if err != nil {
			return false
		}
		tot := pr.Epoch.Total()
		return tot > 0 && !math.IsNaN(tot) && !math.IsInf(tot, 0) && pr.MemoryPerPE > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionPipelineBalanced(t *testing.T) {
	m := model.VGG16()
	sys := cluster.Default()
	times := profile.ProfileModel(profile.NewDevice(sys.GPU), m, 8)
	for _, p := range []int{2, 4, 8} {
		groups := PartitionPipeline(times, p)
		if len(groups) != p {
			t.Fatalf("p=%d: got %d groups", p, len(groups))
		}
		// coverage and contiguity
		if groups[0].Start != 0 || groups[len(groups)-1].End != m.G() {
			t.Fatalf("p=%d: groups do not cover the model", p)
		}
		for i := 1; i < len(groups); i++ {
			if groups[i].Start != groups[i-1].End {
				t.Fatalf("p=%d: gap between groups %d and %d", p, i-1, i)
			}
		}
		// bottleneck must beat the trivial all-in-one split / p … loosely
		bt := BottleneckTime(times, groups)
		totalT := times.SumFW() + times.SumBW()
		if bt > totalT {
			t.Fatalf("bottleneck %g exceeds total %g", bt, totalT)
		}
		if bt < totalT/float64(p)*0.99 {
			t.Fatalf("bottleneck %g below the perfect-balance lower bound %g", bt, totalT/float64(p))
		}
	}
}

func TestAdviseRanksFeasibleFirst(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 128, 8)
	advs, err := Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != len(Strategies()) {
		t.Fatalf("advice count %d", len(advs))
	}
	seenInfeasible := false
	for _, a := range advs {
		if !a.Projection.Feasible {
			seenInfeasible = true
		} else if seenInfeasible {
			t.Fatal("feasible strategy ranked after infeasible one")
		}
	}
	best, err := Best(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != advs[0].Projection.Strategy {
		t.Fatal("Best must agree with the top-ranked advice")
	}
}

func TestDetectFindingsVGGWeightUpdate(t *testing.T) {
	cfg := testConfig(t, model.VGG16(), 16, 32)
	pr, _ := Project(cfg, Data)
	fs := DetectFindings(pr)
	found := false
	for _, f := range fs {
		if f.Remark == "Weight update" {
			found = true
			if f.Kind != Limitation {
				t.Fatal("weight update is a limitation, not a bottleneck")
			}
		}
	}
	if !found {
		t.Fatalf("VGG16 weight-update finding missing; got %+v", fs)
	}
}

func TestDetectFindingsScalingLimit(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 1)
	pr, _ := Project(cfg, Filter)
	found := false
	for _, f := range DetectFindings(pr) {
		if f.Category == "Scaling" {
			found = true
		}
	}
	if !found {
		t.Fatal("filter at its 64-PE limit must raise a scaling finding")
	}
}

func TestParseStrategyRoundTrip(t *testing.T) {
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("round trip failed for %v: %v", s, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy must error")
	}
}

// TestProjectDataPipeline: the dp composition — pipeline inside each
// data-parallel group plus the segmented per-stage gradient exchange —
// must be projectable, feasible at a sane grid, and collapse to the
// pure pipeline model on its p1=1 edge (where no exchange remains).
func TestProjectDataPipeline(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 8)
	cfg.P1, cfg.P2 = 16, 4
	pr, err := Project(cfg, DataPipeline)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Feasible {
		t.Fatalf("dp 16×4 on ResNet-50 should be feasible: %v", pr.Notes)
	}
	if pr.Epoch.GE <= 0 || pr.Epoch.PipeP2P <= 0 || pr.Epoch.FW <= 0 {
		t.Fatalf("dp breakdown missing phases: %+v", pr.Epoch)
	}

	// p1=1 edge ≡ pure pipeline (same stages, no cross-group exchange).
	edge := testConfig(t, model.ResNet50(), 4, 8)
	edge.P1, edge.P2 = 1, 4
	dp, err := Project(edge, DataPipeline)
	if err != nil {
		t.Fatal(err)
	}
	pure, err := Project(testConfig(t, model.ResNet50(), 4, 8), Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if dp.Epoch.GE != 0 {
		t.Fatalf("p1=1 edge must have no gradient exchange, got %g", dp.Epoch.GE)
	}
	if d := math.Abs(dp.Epoch.Total() - pure.Epoch.Total()); d > 1e-9*pure.Epoch.Total() {
		t.Fatalf("dp p1=1 edge total %g != pure pipeline %g", dp.Epoch.Total(), pure.Epoch.Total())
	}

	// Default node mapping derives the grid like the other hybrids.
	auto := testConfig(t, model.ResNet50(), 64, 8)
	prAuto, err := Project(auto, DataPipeline)
	if err != nil {
		t.Fatal(err)
	}
	if prAuto.Config.P1*prAuto.Config.P2 != 64 || prAuto.Config.P2 < 1 {
		t.Fatalf("default dp grid %d×%d", prAuto.Config.P1, prAuto.Config.P2)
	}

	// The stage-depth limit makes absurd grids infeasible.
	deep := testConfig(t, model.TinyCNN(), 16, 8)
	deep.P1, deep.P2 = 1, 16
	prDeep, err := Project(deep, DataPipeline)
	if err != nil {
		t.Fatal(err)
	}
	if prDeep.Feasible {
		t.Fatal("p2 > G must be infeasible")
	}
}

// TestAdviseRanksDataPipeline: the advisor now ranks dp with the rest.
func TestAdviseRanksDataPipeline(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 8)
	advs, err := Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range advs {
		if a.Projection.Strategy == DataPipeline {
			found = true
		}
	}
	if !found {
		t.Fatal("advisor must rank data+pipeline")
	}
}
