package core

import (
	"fmt"
	"math"

	"paradl/internal/collective"
)

// This file models the optimizations the paper names as remedies for
// the limitations of §5.3 — they are projections a user can compare
// against the base strategies:
//
//   - ZeRO weight partitioning (§5.3.2 "Redundancy in Memory")
//   - cross-replica weight-update sharding (§5.3.3 "Weight update",
//     citing Xu et al. [52])
//   - reduce-scatter filter backward (§3.3 footnote 2)
//   - gradient-checkpointed pipeline (§5.3.2, GPipe/PipeDream style)
//   - pipeline+data hybrid (§5.3.3 "Workload Balancing")

// ProjectZeRO projects data parallelism with ZeRO-style partitioning of
// weights and optimizer state: per-PE memory drops to |w|/p, at the
// cost of 50% extra gradient-exchange communication — "two Allgathers
// of the weights are needed in the forward and backward passes"
// (§5.3.2). On the wire: reduce-scatter of gradients plus two weight
// Allgathers = 3(p−1) chunk rounds vs the ring Allreduce's 2(p−1).
func ProjectZeRO(cfg Config) (*Projection, error) {
	if err := validate(&cfg, Data); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: Data, Config: cfg, Feasible: true}
	projectData(cfg, pr)

	p := float64(cfg.P)
	// Sharded update: each PE updates its 1/p slice.
	pr.Epoch.WU /= p
	// +50% communication.
	pr.Epoch.GE *= 1.5

	// Memory: activations like data parallelism, weight+gradient+
	// optimizer state all sharded 1/p.
	gamma, delta := cfg.Sys.MemReuseFactor, cfg.Sys.BytesPerItem
	b := float64(cfg.B)
	wVars := 2 + float64(cfg.OptimizerExtraState)
	items := 0.0
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		items += 2*b/p*float64(l.InSize()+l.OutSize()) + wVars*float64(l.WeightSize())/p + float64(l.BiasSize())
	}
	pr.MemoryPerPE = gamma * delta * items
	pr.MaxPE = cfg.B
	pr.Notes = append(pr.Notes, "ZeRO: weights, gradients and optimizer state partitioned across PEs")
	finishFeasibility(cfg, pr)
	return pr, nil
}

// ProjectWUSharded projects data parallelism with the weight update
// sharded across replicas ([52]): gradients are reduce-scattered, each
// PE updates its 1/p shard, and the fresh weights are Allgathered
// before the next forward pass. Wire cost equals the plain ring
// Allreduce (RS + AG = 2(p−1) chunk rounds) while WU time drops to 1/p
// — the fix for VGG16's 15% WU share.
func ProjectWUSharded(cfg Config) (*Projection, error) {
	if err := validate(&cfg, Data); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: Data, Config: cfg, Feasible: true}
	projectData(cfg, pr)
	pr.Epoch.WU /= float64(cfg.P)
	pr.MemoryPerPE = MemoryPerPE(cfg, Data)
	pr.MaxPE = cfg.B
	pr.Notes = append(pr.Notes, "weight update sharded across replicas (reduce-scatter + allgather)")
	finishFeasibility(cfg, pr)
	return pr, nil
}

// ProjectFilterRS projects filter parallelism with the footnote-2
// optimization: the backward input-gradient Allreduce is replaced by a
// Reduce-Scatter (each preceding layer only needs one partition of the
// gradients), cutting the layer-wise rounds from 3(p−1) to 2(p−1).
func ProjectFilterRS(cfg Config) (*Projection, error) {
	if err := validate(&cfg, Filter); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: Filter, Config: cfg, Feasible: true}
	projectFilterChannel(cfg, Filter, pr)
	// 2/3 of the 3(p−1)-round cost: Allgather forward + Reduce-Scatter
	// backward.
	pr.Epoch.FBComm *= 2.0 / 3.0
	pr.MemoryPerPE = MemoryPerPE(cfg, Filter)
	pr.Notes = append(pr.Notes, "reduce-scatter backward (footnote 2): 2(p−1) rounds per boundary")
	finishFeasibility(cfg, pr)
	return pr, nil
}

// ProjectPipelineCheckpointed projects the pipeline strategy with
// gradient checkpointing at partition boundaries (§5.3.2): only the
// boundary activations of each micro-batch stay resident (activation
// memory shrinks by ≈1/S), paid for by recomputing the forward pass
// inside each partition during backward (FW compute doubles).
func ProjectPipelineCheckpointed(cfg Config) (*Projection, error) {
	if err := validate(&cfg, Pipeline); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: Pipeline, Config: cfg, Feasible: true}
	projectPipeline(cfg, pr)
	pr.Epoch.FW *= 2 // recompute inside each partition
	base := MemoryPerPE(cfg, Pipeline)
	// Activation term shrinks to ~1/S; parameters unchanged. Estimate
	// the parameter share to keep the bound honest.
	paramBytes := paramBytesLargestStage(cfg)
	actBytes := base - paramBytes
	if actBytes < 0 {
		actBytes = 0
	}
	pr.MemoryPerPE = paramBytes + actBytes/float64(cfg.Segments)
	pr.MaxPE = cfg.Model.G()
	pr.Notes = append(pr.Notes, "gradient checkpointing at partition boundaries (FW recompute)")
	finishFeasibility(cfg, pr)
	return pr, nil
}

func paramBytesLargestStage(cfg Config) float64 {
	groups := PartitionPipeline(cfg.Times, cfg.P)
	gamma, delta := cfg.Sys.MemReuseFactor, cfg.Sys.BytesPerItem
	wVars := 2 + float64(cfg.OptimizerExtraState)
	maxB := 0.0
	for _, g := range groups {
		b := 0.0
		for l := g.Start; l < g.End; l++ {
			ly := &cfg.Model.Layers[l]
			b += wVars*float64(ly.WeightSize()) + float64(ly.BiasSize())
		}
		if b > maxB {
			maxB = b
		}
	}
	return gamma * delta * maxB
}

// ProjectPipelineData projects the pipeline+data hybrid of §5.3.3: P1
// pipeline stages, each replicated across P2 data-parallel PEs (p =
// P1·P2). Stage compute divides by P2; each stage's replicas Allreduce
// their own weight shard.
func ProjectPipelineData(cfg Config) (*Projection, error) {
	if cfg.P1 == 0 || cfg.P2 == 0 {
		return nil, fmt.Errorf("core: pipeline+data needs explicit P1 (stages) and P2 (replicas)")
	}
	if cfg.P1*cfg.P2 != cfg.P {
		return nil, fmt.Errorf("core: P1·P2 = %d·%d ≠ P = %d", cfg.P1, cfg.P2, cfg.P)
	}
	stageCfg := cfg
	stageCfg.P = cfg.P1
	if err := validate(&stageCfg, Pipeline); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: Pipeline, Config: cfg, Feasible: true}
	projectPipeline(stageCfg, pr)

	p2 := float64(cfg.P2)
	pr.Epoch.FW /= p2
	pr.Epoch.BW /= p2

	// Per-stage gradient exchange: the heaviest stage's weights,
	// Allreduced among its P2 replicas each iteration.
	groups := PartitionPipeline(cfg.Times, cfg.P1)
	maxW := 0.0
	for _, g := range groups {
		w := 0.0
		for l := g.Start; l < g.End; l++ {
			w += float64(cfg.Model.Layers[l].WeightSize())
		}
		maxW = math.Max(maxW, w)
	}
	x := ab(cfg.Sys, cfg.P2)
	iters := float64(cfg.D) / float64(cfg.B)
	pr.Epoch.GE = iters * collective.RingAllreduce(x, cfg.P2, maxW*cfg.Sys.BytesPerItem)

	// Each replica of a stage holds only its 1/P2 share of the batch.
	memCfg := stageCfg
	memCfg.B = cfg.B / cfg.P2
	if memCfg.B < 1 {
		memCfg.B = 1
	}
	pr.MemoryPerPE = MemoryPerPE(memCfg, Pipeline)
	pr.MaxPE = cfg.Model.G() * cfg.B
	pr.Notes = append(pr.Notes, fmt.Sprintf("pipeline+data: %d stages × %d replicas", cfg.P1, cfg.P2))
	finishFeasibility(cfg, pr)
	return pr, nil
}

// finishFeasibility applies the memory bound without re-deriving
// MaxPE (the extension functions set both fields themselves).
func finishFeasibility(cfg Config, pr *Projection) {
	if pr.MaxPE > 0 && cfg.P > pr.MaxPE {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("P=%d exceeds the scaling limit %d", cfg.P, pr.MaxPE))
	}
	if pr.MemoryPerPE > cfg.Sys.GPU.MemBytes {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("memory %.1f GB exceeds device capacity %.1f GB",
			pr.MemoryPerPE/1e9, cfg.Sys.GPU.MemBytes/1e9))
	}
}
