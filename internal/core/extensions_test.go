package core

import (
	"testing"

	"paradl/internal/model"
	"paradl/internal/profile"
)

func TestZeROShardsMemoryAndPaysComm(t *testing.T) {
	m := model.VGG16() // weight-heavy: where ZeRO matters
	cfg := testConfig(t, m, 64, 4)
	cfg.OptimizerExtraState = 2 // ADAM: ZeRO's original motivation

	base, err := Project(cfg, Data)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ProjectZeRO(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zero.MemoryPerPE >= base.MemoryPerPE {
		t.Fatalf("ZeRO memory %.1f GB must be below data's %.1f GB",
			zero.MemoryPerPE/1e9, base.MemoryPerPE/1e9)
	}
	// §5.3.2: "at the cost of extra communication of 50%".
	ratio := zero.Epoch.GE / base.Epoch.GE
	if ratio < 1.49 || ratio > 1.51 {
		t.Fatalf("ZeRO comm ratio %.3f, want 1.5", ratio)
	}
	// Sharded update.
	if zero.Epoch.WU >= base.Epoch.WU {
		t.Fatal("ZeRO shards the weight update")
	}
}

func TestWUShardedCutsUpdateNotComm(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 64, 32)
	base, err := Project(cfg, Data)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := ProjectWUSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sharded.Epoch.WU*64, base.Epoch.WU; got < want*0.99 || got > want*1.01 {
		t.Fatalf("WU should shard exactly 1/p: %g vs %g/64", sharded.Epoch.WU, base.Epoch.WU)
	}
	if sharded.Epoch.GE != base.Epoch.GE {
		t.Fatal("RS+AG costs the same wire time as the ring Allreduce")
	}
	// The point of [52]: total time strictly improves for WU-heavy
	// models.
	if sharded.Epoch.Total() >= base.Epoch.Total() {
		t.Fatal("WU sharding must help VGG16")
	}
}

func TestFilterRSSavesAThirdOfComm(t *testing.T) {
	m := model.ResNet50()
	cfg := testConfig(t, m, 16, 2)
	cfg.B = 32
	base, err := Project(cfg, Filter)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := ProjectFilterRS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rs.Epoch.FBComm / base.Epoch.FBComm
	if ratio < 0.66 || ratio > 0.67 {
		t.Fatalf("reduce-scatter ratio %.4f, want 2/3", ratio)
	}
}

func TestPipelineCheckpointTradesComputeForMemory(t *testing.T) {
	m := model.VGG16()
	cfg := testConfig(t, m, 4, 8)
	cfg.B = 32
	cfg.Segments = 4
	base, err := Project(cfg, Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ProjectPipelineCheckpointed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ck.MemoryPerPE >= base.MemoryPerPE {
		t.Fatal("checkpointing must reduce memory")
	}
	if got, want := ck.Epoch.FW, 2*base.Epoch.FW; got < want*0.99 || got > want*1.01 {
		t.Fatalf("checkpointing recomputes FW: %g vs 2×%g", got, base.Epoch.FW)
	}
	if ck.Epoch.BW != base.Epoch.BW {
		t.Fatal("BW unchanged under checkpointing")
	}
}

func TestPipelineDataScalesBeyondG(t *testing.T) {
	m := model.TinyCNNNoBN() // only 7 layers — pure pipeline caps at 7
	sys := testConfig(t, model.ResNet50(), 1, 1).Sys
	dev := profile.NewDevice(sys.GPU)
	times := profile.ProfileModel(dev, m, 8)

	cfg := Config{
		Model: m, Sys: sys, Times: times,
		D: 1 << 16, B: 64, P: 16, P1: 4, P2: 4, Segments: 4,
	}
	pr, err := ProjectPipelineData(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Feasible {
		t.Fatalf("pipeline+data at 16 PEs over a 7-layer net must be feasible: %v", pr.Notes)
	}
	if pr.Epoch.GE <= 0 {
		t.Fatal("replicated stages must pay a per-stage Allreduce")
	}
	// Compute beats pure pipeline at 4 stages (the replicas split the
	// batch).
	pipeCfg := cfg
	pipeCfg.P, pipeCfg.P1, pipeCfg.P2 = 4, 0, 0
	pipe, err := Project(pipeCfg, Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Epoch.Comp() >= pipe.Epoch.Comp() {
		t.Fatalf("pipeline+data compute %g must beat pure pipeline %g", pr.Epoch.Comp(), pipe.Epoch.Comp())
	}
}

func TestPipelineDataValidation(t *testing.T) {
	m := model.TinyCNNNoBN()
	sys := testConfig(t, model.ResNet50(), 1, 1).Sys
	times := profile.ProfileModel(profile.NewDevice(sys.GPU), m, 8)
	cfg := Config{Model: m, Sys: sys, Times: times, D: 1 << 16, B: 64, P: 16}
	if _, err := ProjectPipelineData(cfg); err == nil {
		t.Fatal("missing P1/P2 must be rejected")
	}
	cfg.P1, cfg.P2 = 3, 4
	if _, err := ProjectPipelineData(cfg); err == nil {
		t.Fatal("P1·P2≠P must be rejected")
	}
}
