package core

import "paradl/internal/nn"

// MemoryPerPE evaluates the "Maximum Memory Per PE" column of Table 3
// in bytes: the γ-scaled practical estimate (§4.2) over the naive
// per-layer aggregation of inputs, activations, weights, biases and
// their gradients.
func MemoryPerPE(cfg Config, s Strategy) float64 {
	m := cfg.Model
	gamma := cfg.Sys.MemReuseFactor
	delta := cfg.Sys.BytesPerItem
	b := float64(cfg.B)
	p := float64(cfg.P)
	// Weight-side variables per parameter: the weight and its gradient
	// (Table 3's 2|w|) plus any persistent optimizer state (§5.3.3:
	// ADAM keeps two extra moments per weight). Optimizer state shards
	// exactly like the weights do.
	wVars := 2 + float64(cfg.OptimizerExtraState)

	var items float64
	switch s {
	case Serial:
		for i := range m.Layers {
			l := &m.Layers[i]
			items += 2*b*float64(l.InSize()+l.OutSize()) + wVars*float64(l.WeightSize()) + float64(l.BiasSize())
		}
	case Data:
		for i := range m.Layers {
			l := &m.Layers[i]
			items += 2*b/p*float64(l.InSize()+l.OutSize()) + wVars*float64(l.WeightSize()) + float64(l.BiasSize())
		}
	case Spatial, DataSpatial:
		// Activations divided by p (spatial × microbatch); weights
		// replicated — the memory-redundancy limitation of §5.3.2.
		for i := range m.Layers {
			l := &m.Layers[i]
			items += 2*b*float64(l.InSize()+l.OutSize())/p + wVars*float64(l.WeightSize()) + float64(l.BiasSize())
		}
	case Filter, Channel:
		for i := range m.Layers {
			l := &m.Layers[i]
			items += 2*b*float64(l.InSize()+l.OutSize()) + wVars*float64(l.WeightSize())/p + float64(l.BiasSize())
		}
	case DataFilter:
		p1, p2 := float64(cfg.P1), float64(cfg.P2)
		for i := range m.Layers {
			l := &m.Layers[i]
			items += 2*b/p1*float64(l.InSize()+l.OutSize()) + wVars*float64(l.WeightSize())/p2 + float64(l.BiasSize())
		}
	case Pipeline, DataPipeline:
		// Each PE stores only its composite layer group; the bound is
		// the largest group (Table 3, eq. 14). Under dp the group's
		// stages see the batch shard B/p1.
		stages, bEff := cfg.P, b
		if s == DataPipeline {
			stages = cfg.P2
			if cfg.P1 > 1 {
				bEff = b / float64(cfg.P1)
			}
		}
		groups := PartitionPipeline(cfg.Times, stages)
		maxItems := 0.0
		for _, g := range groups {
			gi := 0.0
			for l := g.Start; l < g.End; l++ {
				ly := &m.Layers[l]
				gi += 2*bEff*float64(ly.InSize()+ly.OutSize()) + wVars*float64(ly.WeightSize()) + float64(ly.BiasSize())
			}
			if gi > maxItems {
				maxItems = gi
			}
		}
		items = maxItems
	}
	return gamma * delta * items
}

// LargestLayerActivationBytes returns max_l B·|y_l|·δ — the single-
// layer activation bound that makes pipeline infeasible for models like
// CosmoFlow (§5.3.2: the first conv layer at 4×512³ generates >10 GB).
func LargestLayerActivationBytes(m *nn.Model, b int, delta float64) float64 {
	maxOut := int64(0)
	for i := range m.Layers {
		if o := m.Layers[i].OutSize(); o > maxOut {
			maxOut = o
		}
	}
	return float64(b) * float64(maxOut) * delta
}
