package core

import (
	"fmt"
	"math"

	"paradl/internal/cluster"
	"paradl/internal/collective"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// Config is everything ParaDL knows beforehand (Fig. 2): the model, the
// dataset size, the machine, the empirical per-layer times, and the
// user's parallelization parameters.
type Config struct {
	Model *nn.Model
	Sys   *cluster.System
	Times *profile.LayerTimes

	// D is the dataset size (samples per epoch).
	D int64
	// B is the GLOBAL mini-batch per iteration. Under the paper's weak
	// scaling convention B = b·p for per-PE batch b.
	B int
	// P is the total number of PEs.
	P int

	// P1 and P2 split hybrid strategies into P1 data-parallel groups of
	// P2 model-parallel PEs (P = P1·P2). Zero values default P2 to the
	// node size, matching the paper's inter-node data mapping (§4.5.1).
	P1, P2 int

	// Segments is the pipeline segment count S (default 4).
	Segments int

	// Phi is the self-contention coefficient φ. Zero selects the
	// automatic estimate (GPUsPerNode/UplinksPerNode for segmented
	// exchanges, 1 otherwise).
	Phi float64

	// OptimizerExtraState is the number of persistent optimizer
	// variables per parameter beyond weight+gradient (0 for SGD, 2 for
	// ADAM — §5.3.3's "four variables per weight"). It inflates the
	// memory projection; the TIME effect enters through Times, which
	// should be profiled with profile.ProfileModelOpt for the same
	// optimizer.
	OptimizerExtraState int
}

// Breakdown holds per-epoch seconds by training phase (§2.1.1). The IO
// phase is excluded, as in the paper (§4.2).
type Breakdown struct {
	// Compute phases.
	FW float64 `json:"fw,omitempty"`
	BW float64 `json:"bw,omitempty"`
	WU float64 `json:"wu,omitempty"`
	// GE is the gradient-exchange Allreduce (data/spatial/hybrid).
	GE float64 `json:"ge,omitempty"`
	// FBComm is layer-wise forward/backward collective time
	// (filter/channel Allgather+Allreduce).
	FBComm float64 `json:"fb_comm,omitempty"`
	// Halo is the spatial neighbour exchange.
	Halo float64 `json:"halo,omitempty"`
	// PipeP2P is pipeline stage-to-stage activation passing.
	PipeP2P float64 `json:"pipe_p2p,omitempty"`
	// Scatter covers sample distribution inside spatial groups.
	Scatter float64 `json:"scatter,omitempty"`
}

// Comp returns total computation seconds per epoch.
func (b Breakdown) Comp() float64 { return b.FW + b.BW + b.WU }

// Comm returns total communication seconds per epoch.
func (b Breakdown) Comm() float64 { return b.GE + b.FBComm + b.Halo + b.PipeP2P + b.Scatter }

// Total returns computation plus communication.
func (b Breakdown) Total() float64 { return b.Comp() + b.Comm() }

// Scale multiplies every phase by f (e.g. epoch → iteration).
func (b Breakdown) Scale(f float64) Breakdown {
	return Breakdown{
		FW: b.FW * f, BW: b.BW * f, WU: b.WU * f,
		GE: b.GE * f, FBComm: b.FBComm * f, Halo: b.Halo * f,
		PipeP2P: b.PipeP2P * f, Scatter: b.Scatter * f,
	}
}

// Projection is the oracle's output for one (strategy, config) pair.
type Projection struct {
	Strategy Strategy
	Config   Config

	// Epoch is the per-epoch phase breakdown.
	Epoch Breakdown
	// MemoryPerPE is the practical per-PE requirement in bytes
	// (γ-scaled, Table 3).
	MemoryPerPE float64
	// MaxPE is the strategy's scaling limit for this model (Table 3
	// last column); 0 means unbounded by model shape.
	MaxPE int
	// Feasible is false when P exceeds MaxPE or memory exceeds the
	// device capacity.
	Feasible bool
	// Notes collects limitation/bottleneck annotations.
	Notes []string
}

// Iterations returns D/B.
func (p *Projection) Iterations() float64 { return float64(p.Config.D) / float64(p.Config.B) }

// Iter returns the per-iteration breakdown (what Fig. 3 plots).
func (p *Projection) Iter() Breakdown { return p.Epoch.Scale(1 / p.Iterations()) }

// WithCongestionFactor returns a copy of the projection whose
// communication phases are inflated by an empirically estimated
// congestion impact factor (§4.3: the clean-fabric baseline
// complemented to predict production shared-system behaviour).
func (p *Projection) WithCongestionFactor(factor float64) *Projection {
	if factor < 1 {
		factor = 1
	}
	out := *p
	out.Epoch.GE *= factor
	out.Epoch.FBComm *= factor
	out.Epoch.Halo *= factor
	out.Epoch.PipeP2P *= factor
	out.Epoch.Scatter *= factor
	out.Notes = append(append([]string(nil), p.Notes...),
		fmt.Sprintf("communication inflated by congestion impact factor %.2f", factor))
	return &out
}

// Project evaluates the analytical model of Table 3 for one strategy.
func Project(cfg Config, s Strategy) (*Projection, error) {
	if err := validate(&cfg, s); err != nil {
		return nil, err
	}
	pr := &Projection{Strategy: s, Config: cfg, Feasible: true}
	switch s {
	case Serial:
		projectSerial(cfg, pr)
	case Data:
		projectData(cfg, pr)
	case Spatial:
		projectSpatial(cfg, pr)
	case Pipeline:
		projectPipeline(cfg, pr)
	case Filter, Channel:
		projectFilterChannel(cfg, s, pr)
	case DataFilter:
		projectDataFilter(cfg, pr)
	case DataSpatial:
		projectDataSpatial(cfg, pr)
	case DataPipeline:
		projectDataPipeline(cfg, pr)
	default:
		return nil, fmt.Errorf("core: cannot project strategy %v", s)
	}
	finish(cfg, pr)
	return pr, nil
}

func validate(cfg *Config, s Strategy) error {
	if cfg.Model == nil || cfg.Sys == nil || cfg.Times == nil {
		return fmt.Errorf("core: config requires Model, Sys, and Times")
	}
	if cfg.D <= 0 || cfg.B <= 0 || cfg.P <= 0 {
		return fmt.Errorf("core: D=%d B=%d P=%d must be positive", cfg.D, cfg.B, cfg.P)
	}
	if len(cfg.Times.FW) != cfg.Model.G() {
		return fmt.Errorf("core: profile covers %d layers, model has %d", len(cfg.Times.FW), cfg.Model.G())
	}
	if cfg.Segments == 0 {
		cfg.Segments = 4
	}
	if cfg.Segments < 1 {
		return fmt.Errorf("core: pipeline segments %d < 1", cfg.Segments)
	}
	if s == DataFilter || s == DataSpatial || s == DataPipeline {
		if cfg.P1 == 0 && cfg.P2 == 0 {
			cfg.P2 = cfg.Sys.GPUsPerNode
			if cfg.P2 > cfg.P {
				cfg.P2 = cfg.P
			}
			cfg.P1 = cfg.P / cfg.P2
		}
		// One axis given: derive the other from P (e.g. P=64, P2=4 is a
		// 16×4 grid).
		if cfg.P1 > 0 && cfg.P2 == 0 {
			if cfg.P%cfg.P1 != 0 {
				return fmt.Errorf("core: P1=%d does not divide P=%d", cfg.P1, cfg.P)
			}
			cfg.P2 = cfg.P / cfg.P1
		}
		if cfg.P2 > 0 && cfg.P1 == 0 {
			if cfg.P%cfg.P2 != 0 {
				return fmt.Errorf("core: P2=%d does not divide P=%d", cfg.P2, cfg.P)
			}
			cfg.P1 = cfg.P / cfg.P2
		}
		if cfg.P1*cfg.P2 != cfg.P {
			return fmt.Errorf("core: P1·P2 = %d·%d ≠ P = %d", cfg.P1, cfg.P2, cfg.P)
		}
	}
	return nil
}

// ab returns the α/β pair for a ring collective over a contiguous span
// of p PEs.
func ab(sys *cluster.System, p int) collective.AB {
	x := sys.CollectiveAB(0, p)
	return collective.AB{Alpha: x.Alpha, Beta: x.Beta}
}

// abMPI is the through-host pair (halo exchange path).
func abMPI(sys *cluster.System, p int) collective.AB {
	x := sys.MPIAB(0, p)
	return collective.AB{Alpha: x.Alpha, Beta: x.Beta}
}

// weightBytes returns δ·Σ|w_l| — the gradient-exchange message size.
func weightBytes(cfg Config) float64 {
	return float64(cfg.Model.TotalWeights()) * cfg.Sys.BytesPerItem
}

// ---- Serial (Appendix A.1, eq. 3) ----

func projectSerial(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	iters := d / float64(cfg.B)
	pr.Epoch.FW = d * cfg.Times.SumFW()
	pr.Epoch.BW = d * cfg.Times.SumBW()
	pr.Epoch.WU = iters * cfg.Times.SumWU()
	pr.MaxPE = 1
}

// ---- Data parallelism (eq. 5–7) ----

func projectData(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	p := float64(cfg.P)
	iters := d / float64(cfg.B)
	pr.Epoch.FW = d / p * cfg.Times.SumFW()
	pr.Epoch.BW = d / p * cfg.Times.SumBW()
	pr.Epoch.WU = iters * cfg.Times.SumWU()
	pr.Epoch.GE = iters * collective.RingAllreduce(ab(cfg.Sys, cfg.P), cfg.P, weightBytes(cfg))
	pr.MaxPE = cfg.B
}

// ---- Spatial parallelism (eq. 8–10) ----

func projectSpatial(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	p := float64(cfg.P)
	iters := d / float64(cfg.B)
	pr.Epoch.FW = d / p * cfg.Times.SumFW()
	pr.Epoch.BW = d / p * cfg.Times.SumBW()
	pr.Epoch.WU = iters * cfg.Times.SumWU()
	pr.Epoch.GE = iters * collective.RingAllreduce(ab(cfg.Sys, cfg.P), cfg.P, weightBytes(cfg))
	pr.Epoch.Halo = iters * spatialHaloPerIter(cfg, cfg.P, cfg.B)
	pr.MaxPE = cfg.Model.MinSpatial()
}

// spatialHaloPerIter evaluates Σ_l (2α + B(halo(x_l)+halo(dy_l))δβ)
// over the MPI path (§5.1: halo exchange could not use NCCL).
func spatialHaloPerIter(cfg Config, p, b int) float64 {
	mpi := abMPI(cfg.Sys, p)
	t := 0.0
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		halo := l.HaloSize(0, p) + l.HaloSizeOut(0, p)
		if halo == 0 {
			continue
		}
		bytes := float64(b) * float64(halo) * cfg.Sys.BytesPerItem
		t += collective.HaloExchange(mpi, bytes)
	}
	return t
}

// ---- Pipeline parallelism (eq. 12–13) ----

func projectPipeline(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	s := float64(cfg.Segments)
	iters := d / float64(cfg.B)
	groups := PartitionPipeline(cfg.Times, cfg.P)

	maxFW, maxBW, maxWU, maxBoundary := 0.0, 0.0, 0.0, 0.0
	for gi, g := range groups {
		var fw, bw, wu float64
		for l := g.Start; l < g.End; l++ {
			fw += cfg.Times.FW[l]
			bw += cfg.Times.BW[l]
			wu += cfg.Times.WU[l]
		}
		maxFW = math.Max(maxFW, fw)
		maxBW = math.Max(maxBW, bw)
		maxWU = math.Max(maxWU, wu)
		if gi < len(groups)-1 {
			out := float64(cfg.Model.Layers[g.End-1].OutSize())
			maxBoundary = math.Max(maxBoundary, out)
		}
	}
	stageAmp := float64(cfg.P) + s - 1
	pr.Epoch.FW = d * stageAmp / s * maxFW
	pr.Epoch.BW = d * stageAmp / s * maxBW
	pr.Epoch.WU = iters * maxWU

	// P2P: 2·D(p+S−2)/B · max(α + B/S·|y_Gi|δβ), eq. 13.
	x := ab(cfg.Sys, cfg.P)
	seg := float64(cfg.B) / s * maxBoundary * cfg.Sys.BytesPerItem
	pr.Epoch.PipeP2P = 2 * d * (float64(cfg.P) + s - 2) / float64(cfg.B) * collective.P2P(x, seg)
	pr.MaxPE = cfg.Model.G()
}

// ---- Filter / Channel parallelism (eq. 15–19) ----

func projectFilterChannel(cfg Config, s Strategy, pr *Projection) {
	d := float64(cfg.D)
	p := float64(cfg.P)
	iters := d / float64(cfg.B)
	pr.Epoch.FW = d / p * cfg.Times.SumFW()
	pr.Epoch.BW = d / p * cfg.Times.SumBW()
	// Weight update is sharded: each PE updates |w|/p (GE is skipped).
	pr.Epoch.WU = iters / p * cfg.Times.SumWU()

	// 3·D/B·(p−1)·Σ_{l<G}(α + B|y_l|/p·δβ): one Allgather (forward) and
	// one Allreduce (backward) per layer boundary.
	x := ab(cfg.Sys, cfg.P)
	comm := 0.0
	for i := 0; i < cfg.Model.G()-1; i++ {
		chunk := float64(cfg.B) * float64(cfg.Model.Layers[i].OutSize()) / p * cfg.Sys.BytesPerItem
		comm += 3 * (p - 1) * (x.Alpha + chunk*x.Beta)
	}
	pr.Epoch.FBComm = iters * comm

	if s == Filter {
		pr.MaxPE = cfg.Model.MinFilters()
	} else {
		pr.MaxPE = cfg.Model.MinChannels()
	}
}

// ---- Data+Filter hybrid (eq. 20–22) ----

func projectDataFilter(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	p := float64(cfg.P)
	p2 := float64(cfg.P2)
	iters := d / float64(cfg.B)

	pr.Epoch.FW = d / p * cfg.Times.SumFW()
	pr.Epoch.BW = d / p * cfg.Times.SumBW()
	pr.Epoch.WU = iters / p2 * cfg.Times.SumWU()

	// Intra-group filter collectives on microbatch B/p1 with chunk
	// |y|/p2 → B|y|/p per Table 3.
	intra := ab(cfg.Sys, cfg.P2)
	comm := 0.0
	for i := 0; i < cfg.Model.G()-1; i++ {
		chunk := float64(cfg.B) * float64(cfg.Model.Layers[i].OutSize()) / p * cfg.Sys.BytesPerItem
		comm += 3 * (p2 - 1) * (intra.Alpha + chunk*intra.Beta)
	}
	pr.Epoch.FBComm = iters * comm

	// Inter-group segmented Allreduce of the weight shard Σ|w|/p2 among
	// p1 groups, with contention φ between the p2 concurrent segments.
	phi := cfg.Phi
	if phi == 0 {
		phi = EstimatePhi(cfg.Sys, DataFilter, cfg.P2)
	}
	inter := collective.WithContention(ab(cfg.Sys, cfg.P), phi)
	shard := weightBytes(cfg) / p2
	pr.Epoch.GE = iters * collective.RingAllreduce(inter, cfg.P1, shard)

	limit := cfg.Model.MinFilters()
	pr.MaxPE = cfg.B * limit
	if cfg.P2 > limit {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("P2=%d exceeds filter limit %d", cfg.P2, limit))
	}
}

// ---- Data+Spatial hybrid (§4.5.1, §5.3.1) ----

func projectDataSpatial(cfg Config, pr *Projection) {
	d := float64(cfg.D)
	p := float64(cfg.P)
	iters := d / float64(cfg.B)

	pr.Epoch.FW = d / p * cfg.Times.SumFW()
	pr.Epoch.BW = d / p * cfg.Times.SumBW()
	pr.Epoch.WU = iters * cfg.Times.SumWU()

	// Halo exchange inside each spatial group on microbatch B/p1.
	micro := cfg.B / cfg.P1
	if micro < 1 {
		micro = 1
	}
	pr.Epoch.Halo = iters * spatialHaloPerIter(cfg, cfg.P2, micro)

	// Hierarchical Allreduce (§5.3.1): tree-reduce to the node leader,
	// ring Allreduce among the p1 leaders, tree-broadcast back. The
	// local phases move the FULL buffer over NVLink, which is why the
	// paper measured ds gradient exchange at >2× plain data.
	m := weightBytes(cfg)
	local := ab(cfg.Sys, cfg.P2)
	leaders := ab(cfg.Sys, cfg.P)
	localRounds := math.Ceil(math.Log2(float64(cfg.P2)))
	localReduce := localRounds * (local.Alpha + m*local.Beta)
	localBcast := localRounds * (local.Alpha + m*local.Beta)
	global := collective.RingAllreduce(leaders, cfg.P1, m)
	pr.Epoch.GE = iters * (localReduce + global + localBcast)

	limit := cfg.Model.MinSpatial()
	pr.MaxPE = cfg.B * limit
	if cfg.P2 > limit {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("P2=%d exceeds spatial limit %d", cfg.P2, limit))
	}
}

// ---- Data+Pipeline hybrid (no Table 3 entry; §3.6 composition) ----

// projectDataPipeline composes the pipeline model (eq. 12–13 applied
// inside each of the p1 data-parallel groups, on the group's batch
// shard B/p1) with a segmented cross-group gradient exchange: stage k
// of every group owns the same layers, so the p2 concurrent Allreduces
// — one per stage's weight shard, over the p1 groups — share each
// node's uplinks with contention φ, exactly like the df segmentation.
// This is the analytic counterpart of the runtime's dp engine
// (internal/dist runDataPipeline), which Table 3 never modeled.
func projectDataPipeline(cfg Config, pr *Projection) {
	// One group's workload IS the pure pipeline model: depth p2 on the
	// batch shard B/p1 over the dataset share D/p1 (iteration count and
	// P2P round count are ratios, so the rescale preserves eq. 12–13 —
	// the p1=1 edge is exactly projectPipeline, pinned by test).
	stage := cfg
	stage.P = cfg.P2
	stage.B = cfg.B / cfg.P1
	if stage.B < 1 {
		stage.B = 1
	}
	stage.D = cfg.D / int64(cfg.P1)
	projectPipeline(stage, pr)

	// Segmented cross-group exchange of the bottleneck stage's weights:
	// stage k of every group owns the same layers, so the p2 concurrent
	// per-stage Allreduces over the p1 groups share each node's uplinks
	// with contention φ, exactly like the df segmentation.
	if cfg.P1 > 1 {
		maxShardW := 0.0
		for _, g := range PartitionPipeline(cfg.Times, cfg.P2) {
			shardW := 0.0
			for l := g.Start; l < g.End; l++ {
				shardW += float64(cfg.Model.Layers[l].WeightSize())
			}
			maxShardW = math.Max(maxShardW, shardW)
		}
		phi := cfg.Phi
		if phi == 0 {
			phi = EstimatePhi(cfg.Sys, DataPipeline, cfg.P2)
		}
		inter := collective.WithContention(ab(cfg.Sys, cfg.P), phi)
		iters := float64(cfg.D) / float64(cfg.B)
		pr.Epoch.GE = iters * collective.RingAllreduce(inter, cfg.P1, maxShardW*cfg.Sys.BytesPerItem)
	}

	limit := cfg.Model.G()
	pr.MaxPE = cfg.B * limit
	if cfg.P2 > limit {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("P2=%d exceeds the G=%d stage limit", cfg.P2, limit))
	}
}

// EstimatePhi returns the automatic self-contention coefficient φ
// (§4.3): for segmented exchanges (Data+Filter and Data+Pipeline, whose
// p2 concurrent per-shard Allreduces share the node's UplinksPerNode
// HCAs), φ = p2/uplinks; otherwise 1.
func EstimatePhi(sys *cluster.System, s Strategy, segments int) float64 {
	if s != DataFilter && s != DataPipeline {
		return 1
	}
	phi := float64(segments) / float64(sys.UplinksPerNode)
	if phi < 1 {
		return 1
	}
	return phi
}

// finish computes memory, applies scaling limits, and annotates.
func finish(cfg Config, pr *Projection) {
	pr.MemoryPerPE = MemoryPerPE(cfg, pr.Strategy)
	if pr.MaxPE > 0 && cfg.P > pr.MaxPE && pr.Strategy != Serial {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("P=%d exceeds the %v scaling limit %d", cfg.P, pr.Strategy, pr.MaxPE))
	}
	if pr.MemoryPerPE > cfg.Sys.GPU.MemBytes {
		pr.Feasible = false
		pr.Notes = append(pr.Notes, fmt.Sprintf("memory %.1f GB exceeds device capacity %.1f GB",
			pr.MemoryPerPE/1e9, cfg.Sys.GPU.MemBytes/1e9))
	}
}
