package core

// Stable wire encoding for the oracle's types. Projections are pure
// functions of (model, cluster, plan): a Config is CONTENT-ADDRESSED by
// the names of its model and machine plus its scalar knobs, so the wire
// form carries references, not the multi-megabyte resolved structures.
// ConfigRef is that reference form; Resolve reconstructs the exact
// Config the CLI builds for the same inputs (zoo model, named cluster,
// derived per-layer profile at per-PE batch B/P). Custom Times or
// hand-built models are outside the wire contract: the serialized form
// commits to the derived default profile, which is what makes
// projections cacheable and serveable.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"paradl/internal/cluster"
	"paradl/internal/model"
	"paradl/internal/profile"
)

// ConfigRef is the wire form of Config: every field that addresses a
// projection, with the model and cluster resolved to their canonical
// names. Two Configs with equal refs project bit-identically.
type ConfigRef struct {
	Model               string  `json:"model"`
	Cluster             string  `json:"cluster"`
	D                   int64   `json:"d"`
	B                   int     `json:"b"`
	P                   int     `json:"p"`
	P1                  int     `json:"p1,omitempty"`
	P2                  int     `json:"p2,omitempty"`
	Segments            int     `json:"segments,omitempty"`
	Phi                 float64 `json:"phi,omitempty"`
	OptimizerExtraState int     `json:"optimizer_extra_state,omitempty"`
}

// Ref projects a Config down to its wire reference.
func (c Config) Ref() ConfigRef {
	r := ConfigRef{
		D: c.D, B: c.B, P: c.P, P1: c.P1, P2: c.P2,
		Segments: c.Segments, Phi: c.Phi,
		OptimizerExtraState: c.OptimizerExtraState,
	}
	if c.Model != nil {
		r.Model = c.Model.Name
	}
	if c.Sys != nil {
		r.Cluster = c.Sys.Name
	}
	return r
}

// Resolve reconstructs the full Config: the zoo model, the named
// cluster, and the derived per-layer time profile at per-PE batch
// max(1, B/P) — exactly what the paradl CLI builds for the same flags,
// so server-side and in-process projections agree bit for bit.
func (r ConfigRef) Resolve() (Config, error) {
	if r.D <= 0 || r.B <= 0 || r.P <= 0 {
		return Config{}, fmt.Errorf("core: config ref needs positive D=%d B=%d P=%d", r.D, r.B, r.P)
	}
	m, err := model.ByName(r.Model)
	if err != nil {
		return Config{}, err
	}
	sys, err := cluster.ByName(r.Cluster)
	if err != nil {
		return Config{}, err
	}
	perPE := r.B / r.P
	if perPE < 1 {
		perPE = 1
	}
	dev := profile.NewDevice(sys.GPU)
	return Config{
		Model: m, Sys: sys, Times: profile.ProfileModel(dev, m, perPE),
		D: r.D, B: r.B, P: r.P, P1: r.P1, P2: r.P2,
		Segments: r.Segments, Phi: r.Phi,
		OptimizerExtraState: r.OptimizerExtraState,
	}, nil
}

// Canonical renders the ref in its canonical content-addressed form:
// fixed field order, every field present (no omission ambiguity), and
// floats in Go's shortest round-trip formatting, so equal refs — and
// only equal refs — render equal strings regardless of how the request
// that produced them was spelled.
func (r ConfigRef) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "model=%s|cluster=%s|d=%d|b=%d|p=%d|p1=%d|p2=%d|segments=%d|phi=%s|optextra=%d",
		r.Model, r.Cluster, r.D, r.B, r.P, r.P1, r.P2, r.Segments,
		strconv.FormatFloat(r.Phi, 'g', -1, 64), r.OptimizerExtraState)
	return b.String()
}

// Key returns the content address of the ref: the SHA-256 of its
// canonical rendering, hex-encoded.
func (r ConfigRef) Key() string {
	sum := sha256.Sum256([]byte(r.Canonical()))
	return hex.EncodeToString(sum[:])
}

// MarshalText implements encoding.TextMarshaler with the paper's
// strategy names, making Strategy fields wire-stable in JSON.
func (s Strategy) MarshalText() ([]byte, error) {
	name := s.String()
	if _, err := ParseStrategy(name); err != nil {
		return nil, err
	}
	return []byte(name), nil
}

// UnmarshalText inverts MarshalText via ParseStrategy.
func (s *Strategy) UnmarshalText(b []byte) error {
	parsed, err := ParseStrategy(string(b))
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// wireProjection is the committed JSON shape of a Projection.
type wireProjection struct {
	Strategy    Strategy  `json:"strategy"`
	Config      ConfigRef `json:"config"`
	Epoch       Breakdown `json:"epoch"`
	MemoryPerPE float64   `json:"memory_per_pe"`
	MaxPE       int       `json:"max_pe"`
	Feasible    bool      `json:"feasible"`
	Notes       []string  `json:"notes,omitempty"`
}

// MarshalJSON encodes the projection with its config as a ConfigRef:
// stable field order, resolved names, shortest-round-trip floats.
func (p Projection) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireProjection{
		Strategy: p.Strategy, Config: p.Config.Ref(), Epoch: p.Epoch,
		MemoryPerPE: p.MemoryPerPE, MaxPE: p.MaxPE, Feasible: p.Feasible,
		Notes: p.Notes,
	})
}

// UnmarshalJSON inverts MarshalJSON, resolving the ConfigRef back into
// the full Config (zoo model, named cluster, derived profile).
func (p *Projection) UnmarshalJSON(b []byte) error {
	var w wireProjection
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	cfg, err := w.Config.Resolve()
	if err != nil {
		return fmt.Errorf("core: projection config: %w", err)
	}
	*p = Projection{
		Strategy: w.Strategy, Config: cfg, Epoch: w.Epoch,
		MemoryPerPE: w.MemoryPerPE, MaxPE: w.MaxPE, Feasible: w.Feasible,
		Notes: w.Notes,
	}
	return nil
}

// wireAdvice is the committed JSON shape of an Advice.
type wireAdvice struct {
	Projection *Projection `json:"projection"`
	Rank       int         `json:"rank"`
}

// MarshalJSON encodes the advice with lower-case stable keys.
func (a Advice) MarshalJSON() ([]byte, error) {
	return json.Marshal(wireAdvice{Projection: a.Projection, Rank: a.Rank})
}

// UnmarshalJSON inverts MarshalJSON.
func (a *Advice) UnmarshalJSON(b []byte) error {
	var w wireAdvice
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	a.Projection, a.Rank = w.Projection, w.Rank
	return nil
}
