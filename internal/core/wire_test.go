package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// refSpace fuzzes ConfigRefs over the valid serving space: zoo models,
// the named cluster, and positive scalar knobs.
func refSpace(rng *rand.Rand) ConfigRef {
	models := []string{"tinycnn", "tinycnn-nobn", "tinyresnet", "tiny3d", "resnet50", "vgg16"}
	return ConfigRef{
		Model:               models[rng.Intn(len(models))],
		Cluster:             "abci-like",
		D:                   int64(rng.Intn(1_000_000) + 1),
		B:                   rng.Intn(4096) + 1,
		P:                   1 << rng.Intn(10),
		P1:                  rng.Intn(4),
		P2:                  rng.Intn(4),
		Segments:            rng.Intn(8),
		Phi:                 float64(rng.Intn(8)) / 2,
		OptimizerExtraState: rng.Intn(3),
	}
}

// Distinct ConfigRefs must render distinct canonical strings (and
// therefore distinct content-addressed keys): the cache key is
// injective over the config space.
func TestConfigRefKeyInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	seen := map[string]ConfigRef{}
	for i := 0; i < 5000; i++ {
		r := refSpace(rng)
		canon := r.Canonical()
		if prev, ok := seen[canon]; ok && prev != r {
			t.Fatalf("canonical collision: %+v and %+v both render %q", prev, r, canon)
		}
		seen[canon] = r
		if len(r.Key()) != 64 {
			t.Fatalf("key %q is not a sha256 hex digest", r.Key())
		}
	}
	// And directly: mutate each scalar field of a base ref; every
	// mutation must change the key.
	base := ConfigRef{Model: "resnet50", Cluster: "abci-like", D: 1000, B: 64, P: 8, Segments: 4}
	mutations := []ConfigRef{}
	for _, m := range []func(*ConfigRef){
		func(r *ConfigRef) { r.Model = "vgg16" },
		func(r *ConfigRef) { r.D++ },
		func(r *ConfigRef) { r.B++ },
		func(r *ConfigRef) { r.P *= 2 },
		func(r *ConfigRef) { r.P1 = 2 },
		func(r *ConfigRef) { r.P2 = 2 },
		func(r *ConfigRef) { r.Segments++ },
		func(r *ConfigRef) { r.Phi = 1.5 },
		func(r *ConfigRef) { r.OptimizerExtraState = 2 },
	} {
		mut := base
		m(&mut)
		mutations = append(mutations, mut)
	}
	keys := map[string]bool{base.Key(): true}
	for _, mut := range mutations {
		if keys[mut.Key()] {
			t.Fatalf("mutation %+v collides with an earlier key", mut)
		}
		keys[mut.Key()] = true
	}
}

// Key derivation is a pure function of the ref's VALUE: float spelling
// or field-order differences in the JSON that produced the ref cannot
// change the key, because equal refs render equal canonical strings.
func TestConfigRefKeyValueDetermined(t *testing.T) {
	orderA := []byte(`{"model":"resnet50","cluster":"abci-like","d":1000,"b":64,"p":8,"phi":0.5}`)
	orderB := []byte(`{"phi":5e-1,"p":8,"b":64,"d":1000,"cluster":"abci-like","model":"resnet50"}`)
	var a, b ConfigRef
	if err := json.Unmarshal(orderA, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(orderB, &b); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("refs differ: %+v vs %+v", a, b)
	}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ for equal refs: %s vs %s", a.Key(), b.Key())
	}
}

// Same ConfigRef ⇒ bit-identical Projection: resolve and project twice
// from scratch and require byte-equal wire encodings.
func TestProjectionDeterministic(t *testing.T) {
	ref := ConfigRef{Model: "resnet50", Cluster: "abci-like", D: 1_281_167, B: 32 * 64, P: 64}
	for _, s := range Strategies() {
		var encs [][]byte
		for trial := 0; trial < 2; trial++ {
			cfg, err := ref.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			pr, err := Project(cfg, s)
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			enc, err := json.Marshal(pr)
			if err != nil {
				t.Fatal(err)
			}
			encs = append(encs, enc)
		}
		if !bytes.Equal(encs[0], encs[1]) {
			t.Fatalf("%v: same config produced different projections:\n%s\n%s", s, encs[0], encs[1])
		}
	}
}

// Projection JSON round-trips: unmarshal(marshal(p)) reconstructs an
// equal projection (config resolved back through the zoo) and
// re-marshals to identical bytes.
func TestProjectionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		ref := ConfigRef{
			Model:    []string{"tinycnn", "tinyresnet", "tiny3d"}[rng.Intn(3)],
			Cluster:  "abci-like",
			D:        int64(rng.Intn(10000) + 64),
			B:        8 * (rng.Intn(8) + 1),
			P:        []int{1, 2, 4, 8}[rng.Intn(4)],
			Segments: rng.Intn(4),
			Phi:      float64(rng.Intn(4)),
		}
		cfg, err := ref.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		s := Strategies()[rng.Intn(len(Strategies()))]
		pr, err := Project(cfg, s)
		if err != nil {
			t.Fatalf("%v %+v: %v", s, ref, err)
		}
		enc, err := json.Marshal(pr)
		if err != nil {
			t.Fatal(err)
		}
		var back Projection
		if err := json.Unmarshal(enc, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", enc, err)
		}
		enc2, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed encoding:\n%s\n%s", enc, enc2)
		}
		if !reflect.DeepEqual(*pr, back) {
			t.Fatalf("round trip changed projection: %+v vs %+v", *pr, back)
		}
	}
}

// Advice lists round-trip through JSON with ranks and ordering intact.
func TestAdviceRoundTrip(t *testing.T) {
	ref := ConfigRef{Model: "tinyresnet", Cluster: "abci-like", D: 4096, B: 64, P: 4}
	cfg, err := ref.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	advs, err := Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(advs)
	if err != nil {
		t.Fatal(err)
	}
	var back []Advice
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	enc2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("advice round trip changed encoding:\n%s\n%s", enc, enc2)
	}
	if len(back) != len(advs) {
		t.Fatalf("lost advice entries: %d vs %d", len(back), len(advs))
	}
	for i := range advs {
		if back[i].Rank != advs[i].Rank || back[i].Projection.Strategy != advs[i].Projection.Strategy {
			t.Fatalf("entry %d changed: %+v vs %+v", i, advs[i], back[i])
		}
	}
}

// Every strategy's text form round-trips through ParseStrategy.
func TestStrategyTextRoundTrip(t *testing.T) {
	for _, s := range append(Strategies(), Serial) {
		txt, err := s.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Strategy
		if err := back.UnmarshalText(txt); err != nil {
			t.Fatalf("%s: %v", txt, err)
		}
		if back != s {
			t.Fatalf("%v round-tripped to %v", s, back)
		}
	}
	var bad Strategy
	if err := bad.UnmarshalText([]byte("nope")); err == nil {
		t.Fatal("unknown strategy text must be rejected")
	}
	if _, err := Strategy(99).MarshalText(); err == nil {
		t.Fatal("out-of-range strategy must refuse to marshal")
	}
}

// Resolve rejects unknown names and non-positive scalars.
func TestConfigRefResolveRejects(t *testing.T) {
	good := ConfigRef{Model: "tinycnn", Cluster: "abci-like", D: 64, B: 8, P: 2}
	if _, err := good.Resolve(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ConfigRef{
		{Model: "nope", Cluster: "abci-like", D: 64, B: 8, P: 2},
		{Model: "tinycnn", Cluster: "nope", D: 64, B: 8, P: 2},
		{Model: "tinycnn", Cluster: "abci-like", D: 0, B: 8, P: 2},
		{Model: "tinycnn", Cluster: "abci-like", D: 64, B: 0, P: 2},
		{Model: "tinycnn", Cluster: "abci-like", D: 64, B: 8, P: 0},
	} {
		if _, err := bad.Resolve(); err == nil {
			t.Fatalf("ref %+v must fail to resolve", bad)
		}
	}
}

// Config.Ref is the left inverse of ConfigRef.Resolve over the wire
// space (quick property over the scalar knobs).
func TestRefResolveInverse(t *testing.T) {
	f := func(dRaw uint32, bRaw, pRaw uint8) bool {
		ref := ConfigRef{
			Model:   "tinycnn",
			Cluster: "abci-like",
			D:       int64(dRaw%100000) + 1,
			B:       int(bRaw%64) + 1,
			P:       1 << (pRaw % 4),
		}
		cfg, err := ref.Resolve()
		if err != nil {
			return false
		}
		return cfg.Ref() == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
