// Package core implements ParaDL — the paper's contribution: a hybrid
// analytical/empirical oracle that projects the computation time,
// communication time (broken down by training phase), and per-PE memory
// of CNN distributed training under six parallel strategies, directly
// following Table 3 and the Appendix of the paper.
package core

import "fmt"

// Strategy enumerates the parallelization strategies of §3.
type Strategy int

const (
	// Serial is the single-PE baseline.
	Serial Strategy = iota
	// Data replicates the model and splits the batch dimension N.
	Data
	// Spatial splits the activation spatial dimensions (H/W/D) with
	// halo exchanges.
	Spatial
	// Pipeline partitions layers vertically into composite stages with
	// GPipe-style micro-batch pipelining.
	Pipeline
	// Filter splits every layer by output channels (Allgather forward,
	// Allreduce backward).
	Filter
	// Channel splits every layer by input channels (Allreduce forward,
	// Allgather backward).
	Channel
	// DataFilter is the df hybrid: filter parallelism inside groups,
	// data parallelism between groups.
	DataFilter
	// DataSpatial is the ds hybrid: spatial parallelism inside nodes,
	// data parallelism between nodes.
	DataSpatial
	// DataPipeline is the dp hybrid: pipeline parallelism inside groups,
	// data parallelism between groups (§3.6 grid recipe). Table 3 has
	// no entry for it; the oracle projects it by composing the pipeline
	// model (eq. 12–13 on each group's batch shard) with a segmented
	// per-stage gradient exchange, so the advisor can rank it next to
	// the executable runtime's dp plans.
	DataPipeline
)

// String implements fmt.Stringer using the paper's names.
func (s Strategy) String() string {
	switch s {
	case Serial:
		return "serial"
	case Data:
		return "data"
	case Spatial:
		return "spatial"
	case Pipeline:
		return "pipeline"
	case Filter:
		return "filter"
	case Channel:
		return "channel"
	case DataFilter:
		return "data+filter"
	case DataSpatial:
		return "data+spatial"
	case DataPipeline:
		return "data+pipeline"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy converts a CLI name into a Strategy.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "serial":
		return Serial, nil
	case "data":
		return Data, nil
	case "spatial":
		return Spatial, nil
	case "pipeline", "layer":
		return Pipeline, nil
	case "filter":
		return Filter, nil
	case "channel":
		return Channel, nil
	case "data+filter", "df":
		return DataFilter, nil
	case "data+spatial", "ds":
		return DataSpatial, nil
	case "data+pipeline", "dp":
		return DataPipeline, nil
	default:
		return Serial, fmt.Errorf("core: unknown strategy %q", name)
	}
}

// Strategies lists all projectable strategies in the paper's Fig. 3
// column order, with the dp composition (no Table 3 entry, see
// DataPipeline) appended after the pure pipeline it extends.
func Strategies() []Strategy {
	return []Strategy{Data, Spatial, Filter, Channel, DataFilter, DataSpatial, Pipeline, DataPipeline}
}
