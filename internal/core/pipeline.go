package core

import "paradl/internal/profile"

// LayerGroup is a contiguous composite layer [Start, End) assigned to
// one pipeline stage.
type LayerGroup struct {
	Start, End int
}

// PartitionPipeline splits the model's layers into p contiguous groups
// minimizing the bottleneck stage's FW+BW time — the workload-balancing
// problem of §5.3.3 ("the training time of a pipeline is limited by the
// slowest stage"). Classic linear-partition via binary search on the
// bottleneck value with a greedy feasibility check.
func PartitionPipeline(times *profile.LayerTimes, p int) []LayerGroup {
	g := len(times.FW)
	if p > g {
		p = g
	}
	if p < 1 {
		p = 1
	}
	w := make([]float64, g)
	total := 0.0
	maxW := 0.0
	for i := range w {
		w[i] = times.FW[i] + times.BW[i]
		total += w[i]
		if w[i] > maxW {
			maxW = w[i]
		}
	}

	fits := func(cap float64) bool {
		groups := 1
		cur := 0.0
		for _, x := range w {
			if cur+x > cap {
				groups++
				cur = 0
			}
			cur += x
		}
		return groups <= p
	}

	lo, hi := maxW, total
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if fits(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}

	// Emit groups greedily at the found bottleneck, then pad with empty
	// trailing splits merged backward so exactly min(p, g) non-empty
	// groups result.
	var groups []LayerGroup
	start := 0
	cur := 0.0
	for i, x := range w {
		if cur+x > hi && i > start {
			groups = append(groups, LayerGroup{Start: start, End: i})
			start = i
			cur = 0
		}
		cur += x
	}
	groups = append(groups, LayerGroup{Start: start, End: g})

	// Greedy can under-produce; split the largest groups until we have
	// exactly p (each group needs ≥1 layer).
	for len(groups) < p {
		// find the group with the most layers that can still split
		best, bestSpan := -1, 1
		for i, gr := range groups {
			if span := gr.End - gr.Start; span > bestSpan {
				best, bestSpan = i, span
			}
		}
		if best < 0 {
			break
		}
		gr := groups[best]
		mid := (gr.Start + gr.End) / 2
		groups = append(groups[:best], append([]LayerGroup{{gr.Start, mid}, {mid, gr.End}}, groups[best+1:]...)...)
	}
	return groups
}

// BottleneckTime returns the largest per-sample FW+BW time among groups.
func BottleneckTime(times *profile.LayerTimes, groups []LayerGroup) float64 {
	maxT := 0.0
	for _, g := range groups {
		t := 0.0
		for l := g.Start; l < g.End; l++ {
			t += times.FW[l] + times.BW[l]
		}
		if t > maxT {
			maxT = t
		}
	}
	return maxT
}
