package core

import (
	"math"
	"testing"

	"paradl/internal/model"
)

func TestBreakdownArithmetic(t *testing.T) {
	b := Breakdown{FW: 1, BW: 2, WU: 3, GE: 4, FBComm: 5, Halo: 6, PipeP2P: 7, Scatter: 8}
	if b.Comp() != 6 {
		t.Fatalf("Comp = %v", b.Comp())
	}
	if b.Comm() != 30 {
		t.Fatalf("Comm = %v", b.Comm())
	}
	if b.Total() != 36 {
		t.Fatalf("Total = %v", b.Total())
	}
	s := b.Scale(0.5)
	if s.Total() != 18 || s.FW != 0.5 {
		t.Fatalf("Scale broken: %+v", s)
	}
}

func TestIterEpochConsistency(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 32)
	pr, err := Project(cfg, Data)
	if err != nil {
		t.Fatal(err)
	}
	iters := pr.Iterations()
	if math.Abs(iters-float64(cfg.D)/float64(cfg.B)) > 1e-9 {
		t.Fatalf("iterations %v", iters)
	}
	if d := math.Abs(pr.Iter().Total()*iters - pr.Epoch.Total()); d > pr.Epoch.Total()*1e-12 {
		t.Fatalf("iter×iters ≠ epoch (diff %g)", d)
	}
}

func TestWithCongestionFactorImmutability(t *testing.T) {
	cfg := testConfig(t, model.ResNet50(), 64, 32)
	pr, err := Project(cfg, Data)
	if err != nil {
		t.Fatal(err)
	}
	before := pr.Epoch.GE
	adj := pr.WithCongestionFactor(3)
	if pr.Epoch.GE != before {
		t.Fatal("WithCongestionFactor must not mutate the receiver")
	}
	if adj.Epoch.GE != before*3 {
		t.Fatalf("adjusted GE %g, want %g", adj.Epoch.GE, before*3)
	}
	if len(adj.Notes) != len(pr.Notes)+1 {
		t.Fatal("adjustment must be annotated")
	}
}

func TestEstimatePhiBounds(t *testing.T) {
	sys := testConfig(t, model.ResNet50(), 1, 1).Sys
	if EstimatePhi(sys, DataFilter, 1) != 1 {
		t.Fatal("one segment cannot contend")
	}
	if got := EstimatePhi(sys, DataFilter, 8); got != 4 {
		t.Fatalf("8 segments over 2 rails → φ=4, got %g", got)
	}
}
