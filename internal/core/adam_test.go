package core

import (
	"testing"

	"paradl/internal/cluster"
	"paradl/internal/model"
	"paradl/internal/profile"
)

// TestAdamInflatesWeightUpdate reproduces the §5.3.3 observation: under
// ADAM the weight-update phase grows sharply relative to SGD (large
// Transformer models report up to 45% WU time; for CNNs the effect is
// smaller but clearly visible on the parameter-heavy VGG16).
func TestAdamInflatesWeightUpdate(t *testing.T) {
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	m := model.VGG16()

	sgdTimes := profile.ProfileModelOpt(dev, m, 32, profile.SGDSpec())
	adamTimes := profile.ProfileModelOpt(dev, m, 32, profile.AdamSpec())

	mk := func(times *profile.LayerTimes, extra int) Config {
		return Config{
			Model: m, Sys: sys, Times: times,
			D: model.ImageNetSamples, B: 32 * 16, P: 16,
			OptimizerExtraState: extra,
		}
	}
	sgd, err := Project(mk(sgdTimes, 0), Data)
	if err != nil {
		t.Fatal(err)
	}
	adam, err := Project(mk(adamTimes, 2), Data)
	if err != nil {
		t.Fatal(err)
	}

	sgdShare := sgd.Epoch.WU / sgd.Epoch.Comp()
	adamShare := adam.Epoch.WU / adam.Epoch.Comp()
	if adamShare <= sgdShare*1.5 {
		t.Fatalf("ADAM WU share %.3f should be ≥1.5× SGD's %.3f", adamShare, sgdShare)
	}
	if adamShare < 0.15 || adamShare > 0.5 {
		t.Fatalf("ADAM WU share %.3f outside the plausible CNN band", adamShare)
	}
}

// TestAdamInflatesMemory checks the "more than 60% extra memory" side:
// for a weight-dominated configuration the two extra moment tensors add
// ≈ 2/2 = 100% of the weight+gradient term.
func TestAdamInflatesMemory(t *testing.T) {
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	m := model.VGG16()
	times := profile.ProfileModel(dev, m, 4)
	mk := func(extra int) Config {
		return Config{
			Model: m, Sys: sys, Times: times,
			D: model.ImageNetSamples, B: 4 * 64, P: 64,
			OptimizerExtraState: extra,
		}
	}
	sgd := MemoryPerPE(mk(0), Data)
	adam := MemoryPerPE(mk(2), Data)
	if adam <= sgd {
		t.Fatal("ADAM must need more memory")
	}
	// At b=4 VGG16's weight term carries the budget; expect ≥30%
	// inflation (the paper's >60% figure is for Transformers, whose
	// weights dominate even harder).
	if adam/sgd < 1.3 {
		t.Fatalf("ADAM memory inflation %.2f× too small for a weight-dominated model", adam/sgd)
	}
	// Sharded-weight strategies shard the optimizer state too, so the
	// inflation shrinks under filter parallelism.
	fSGD := MemoryPerPE(mk(0), Filter)
	fAdam := MemoryPerPE(mk(2), Filter)
	if (fAdam-fSGD)*64 < (adam-sgd)*0.5 {
		t.Fatal("filter-sharded optimizer state should be ≈1/p of the replicated state")
	}
}

// TestOptimizerSpecPricing sanity-checks the per-parameter cost model.
func TestOptimizerSpecPricing(t *testing.T) {
	sgd, adam := profile.SGDSpec(), profile.AdamSpec()
	if adam.AccessesPerParam <= sgd.AccessesPerParam {
		t.Fatal("ADAM touches more memory per parameter")
	}
	if adam.FLOPsPerParam <= sgd.FLOPsPerParam {
		t.Fatal("ADAM spends more arithmetic per parameter")
	}
	dev := profile.NewDevice(cluster.Default().GPU)
	m := model.ResNet50()
	l := &m.Layers[0]
	if dev.LayerWUOpt(l, 1, adam) <= dev.LayerWUOpt(l, 1, sgd) {
		t.Fatal("ADAM WU must cost more time")
	}
}
