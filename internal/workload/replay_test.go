package workload

import (
	"reflect"
	"strings"
	"testing"
)

// testScenario is a cheap handcrafted scenario: tinycnn-nobn at p=4
// admits every pure strategy, so the comparable set is full.
func testScenario() Scenario {
	return Scenario{
		ID: "t000", Seed: 42, Model: "tinycnn-nobn", Cluster: "abci-like",
		Batch: 8, Iters: 2, P: 4, LR: 0.05,
		Overlap: true, BucketBytes: 8 << 10, Footnote2: true,
		Plans: []string{"data:4", "spatial:4", "filter:4", "channel:4", "pipeline:4"},
	}
}

func TestReplayScenario(t *testing.T) {
	r, err := NewReplayer(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Replay(testScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates)+len(res.Skipped) != len(res.Plans) {
		t.Fatalf("%d candidates + %d skips ≠ %d plans", len(res.Candidates), len(res.Skipped), len(res.Plans))
	}
	if len(res.Candidates) < 3 {
		t.Fatalf("only %d comparable candidates: skips %+v", len(res.Candidates), res.Skipped)
	}
	// Oracle ranks must be the permutation 1..n over the candidates.
	seen := map[int]bool{}
	for _, c := range res.Candidates {
		if c.OracleRank < 1 || c.OracleRank > len(res.Candidates) || seen[c.OracleRank] {
			t.Fatalf("bad oracle rank assignment: %+v", res.Candidates)
		}
		seen[c.OracleRank] = true
		if c.MeasuredSec <= 0 || c.SimSec <= 0 || c.OracleSec <= 0 {
			t.Errorf("%s: non-positive timing (%g, %g, %g)", c.Plan, c.MeasuredSec, c.SimSec, c.OracleSec)
		}
		if len(c.Losses) != res.Iters {
			t.Errorf("%s: %d losses, want %d", c.Plan, len(c.Losses), res.Iters)
		}
	}
}

// Replaying the same trace twice yields bit-identical loss series and
// bit-identical oracle/simulator timings — only the wall clock is
// allowed to move (the determinism half of the reproducibility pin).
func TestReplayDeterministic(t *testing.T) {
	sc := testScenario()
	run := func() *ScenarioResult {
		r, err := NewReplayer(1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Replay(sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate sets differ: %d vs %d", len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		ca, cb := a.Candidates[i], b.Candidates[i]
		if ca.Plan != cb.Plan || ca.OracleRank != cb.OracleRank {
			t.Errorf("candidate %d identity drifted: %s/%d vs %s/%d", i, ca.Plan, ca.OracleRank, cb.Plan, cb.OracleRank)
		}
		if !reflect.DeepEqual(ca.Losses, cb.Losses) {
			t.Errorf("%s: loss series not bit-identical: %v vs %v", ca.Plan, ca.Losses, cb.Losses)
		}
		if ca.SimSec != cb.SimSec || ca.OracleSec != cb.OracleSec {
			t.Errorf("%s: analytic timings drifted: sim %v vs %v, oracle %v vs %v",
				ca.Plan, ca.SimSec, cb.SimSec, ca.OracleSec, cb.OracleSec)
		}
	}
	if !reflect.DeepEqual(a.Skipped, b.Skipped) {
		t.Errorf("skips drifted: %+v vs %+v", a.Skipped, b.Skipped)
	}
}

// End-to-end: a tiny seeded sweep builds a valid scoreboard whose
// aggregates cover every scenario.
func TestScoreTraceEndToEnd(t *testing.T) {
	spec := GenSpec{Seed: 11, N: 2}
	sb, err := BuildScoreboard(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sb.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sb.Scenarios) != 2 || sb.Spec != spec || sb.ReplayIters != 1 {
		t.Fatalf("scoreboard identity: %d scenarios, spec %+v", len(sb.Scenarios), sb.Spec)
	}
	// The digest must match an independent regeneration of the trace.
	scs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	digest, err := TraceDigest(spec, scs)
	if err != nil {
		t.Fatal(err)
	}
	if sb.TraceSHA256 != digest {
		t.Errorf("scoreboard digest %s ≠ regenerated %s", sb.TraceSHA256, digest)
	}
}

// Infeasible plans must surface as skips naming the rejecting side, not
// fail the scenario: tiny3d at p=8 trips the Table 3 spatial, filter,
// and channel limits plus the pipeline depth bound.
func TestReplayRecordsSkips(t *testing.T) {
	sc := testScenario()
	sc.Model, sc.P = "tiny3d", 8
	sc.Plans = []string{"data:8", "spatial:8", "filter:8", "channel:8", "pipeline:8", "df:4x2", "ds:2x4", "dp:4x2"}
	r, err := NewReplayer(1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Replay(sc)
	if err != nil {
		t.Fatal(err)
	}
	skipped := map[string]string{}
	for _, sk := range res.Skipped {
		skipped[sk.Plan] = sk.Reason
	}
	for _, plan := range []string{"spatial:8", "filter:8", "channel:8", "pipeline:8"} {
		reason, ok := skipped[plan]
		if !ok {
			t.Errorf("%s: not skipped (Table 3 limit expected)", plan)
			continue
		}
		if !strings.HasPrefix(reason, "runtime:") {
			t.Errorf("%s: skip reason %q does not name the failing side", plan, reason)
		}
	}
	if len(res.Candidates) < 2 {
		t.Fatalf("tiny3d p=8 left %d comparable candidates", len(res.Candidates))
	}
}

func TestNewReplayerRejectsZeroIters(t *testing.T) {
	if _, err := NewReplayer(0); err == nil {
		t.Error("iters=0 accepted")
	}
}
