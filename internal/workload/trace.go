// Package workload is the oracle's examination hall: a seeded scenario
// generator sweeps zoo models × cluster geometries × batch regimes ×
// plan knobs into a versioned machine-readable trace, a replay engine
// runs every scenario's candidate plans on the REAL runtime (dist.Run)
// and through the measured simulator (internal/measure), and a scorer
// grades the oracle not on absolute latency error but on RANKING
// FIDELITY — does core.Project order the strategies the way the
// measurements do? Kendall-τ, top-1 agreement, and regret per scenario,
// aggregated over the sweep into the committed SCOREBOARD.json.
package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"paradl/internal/cluster"
	"paradl/internal/dist"
	"paradl/internal/model"
)

// Trace identity: bump TraceVersion whenever the scenario schema or the
// generator lattice changes, so a recorded seed keeps regenerating the
// bytes it was recorded against.
const (
	TraceSchema  = "paradl/trace"
	TraceVersion = 1
)

// TraceHeader is the first JSON line of a trace. It records the full
// generator spec, so `Generate(h.Spec)` regenerates the scenario lines
// byte-identically (pinned by test).
type TraceHeader struct {
	Schema  string  `json:"schema"`
	Version int     `json:"version"`
	Spec    GenSpec `json:"spec"`
	// Scenarios is the number of scenario lines that follow.
	Scenarios int `json:"scenarios"`
}

// Scenario is one point of the workload sweep: a (model, cluster,
// batch regime, width, knob setting) tuple plus the candidate plans to
// rank at that point. All candidates within a scenario train the same
// model on the same batches with the same knobs, so their relative
// timings are a strategy ordering.
type Scenario struct {
	// ID is the stable scenario name within its trace ("s017").
	ID string `json:"id"`
	// Seed is the deterministic training seed every candidate run uses.
	Seed int64 `json:"seed"`
	// Model is a zoo model name the real runtime can train (toy scale).
	Model string `json:"model"`
	// Cluster is a named system geometry (cluster.ByName) for the
	// oracle and simulator sides.
	Cluster string `json:"cluster"`
	// Batch is the GLOBAL mini-batch per iteration; Iters the training
	// iterations per candidate run.
	Batch int `json:"batch"`
	Iters int `json:"iters"`
	// P is the total PE width every candidate plan factors.
	P int `json:"p"`
	// LR is the SGD learning rate.
	LR float64 `json:"lr"`
	// The plan knobs applied to every candidate run: backward/comm
	// overlap, gradient bucket size, and the footnote-2 reduce-scatter
	// variant (false restores the pre-footnote-2 full allreduce).
	Overlap     bool `json:"overlap"`
	BucketBytes int  `json:"bucket_bytes"`
	Footnote2   bool `json:"footnote2"`
	// Plans are the candidate plan strings (dist.ParsePlan syntax), the
	// dist.SweepPlans enumeration at width P.
	Plans []string `json:"plans"`
}

// Validate checks a scenario is replayable: resolvable model and
// cluster, positive regime parameters, and candidate plans that parse
// and total width P.
func (sc *Scenario) Validate() error {
	if sc.ID == "" {
		return fmt.Errorf("workload: scenario without id")
	}
	if _, err := model.ByName(sc.Model); err != nil {
		return fmt.Errorf("workload: scenario %s: %w", sc.ID, err)
	}
	if _, err := cluster.ByName(sc.Cluster); err != nil {
		return fmt.Errorf("workload: scenario %s: %w", sc.ID, err)
	}
	if sc.Batch < 1 || sc.Iters < 1 || sc.P < 1 || sc.LR <= 0 || sc.BucketBytes < 1 {
		return fmt.Errorf("workload: scenario %s: non-positive regime (batch=%d iters=%d p=%d lr=%g bucket=%d)",
			sc.ID, sc.Batch, sc.Iters, sc.P, sc.LR, sc.BucketBytes)
	}
	if len(sc.Plans) == 0 {
		return fmt.Errorf("workload: scenario %s: no candidate plans", sc.ID)
	}
	for _, ps := range sc.Plans {
		pl, err := dist.ParsePlan(ps)
		if err != nil {
			return fmt.Errorf("workload: scenario %s: %w", sc.ID, err)
		}
		if pl.P() != sc.P {
			return fmt.Errorf("workload: scenario %s: plan %s totals %d PEs, scenario is p=%d", sc.ID, ps, pl.P(), sc.P)
		}
	}
	return nil
}

// WriteTrace emits the versioned JSON-lines trace: one header line,
// then one line per scenario. The byte stream is a pure function of
// (spec, scenarios) — json.Marshal of fixed-order structs — which is
// what makes traces diffable and regeneration pinnable.
func WriteTrace(w io.Writer, spec GenSpec, scs []Scenario) error {
	bw := bufio.NewWriter(w)
	h := TraceHeader{Schema: TraceSchema, Version: TraceVersion, Spec: spec, Scenarios: len(scs)}
	if err := writeLine(bw, h); err != nil {
		return err
	}
	for i := range scs {
		if err := scs[i].Validate(); err != nil {
			return err
		}
		if err := writeLine(bw, scs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadTrace parses and validates a JSON-lines trace. It rejects wrong
// schemas, versions this reader does not understand, header/body
// scenario-count mismatches, and unreplayable scenarios — a trace
// either loads whole or not at all.
func ReadTrace(r io.Reader) (TraceHeader, []Scenario, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var h TraceHeader
	if !sc.Scan() {
		return h, nil, fmt.Errorf("workload: empty trace: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return h, nil, fmt.Errorf("workload: bad trace header: %w", err)
	}
	if h.Schema != TraceSchema {
		return h, nil, fmt.Errorf("workload: trace schema %q, want %q", h.Schema, TraceSchema)
	}
	if h.Version < 1 || h.Version > TraceVersion {
		return h, nil, fmt.Errorf("workload: trace version %d outside supported 1..%d", h.Version, TraceVersion)
	}
	var out []Scenario
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Scenario
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return h, nil, fmt.Errorf("workload: bad scenario line %d: %w", len(out)+1, err)
		}
		if err := s.Validate(); err != nil {
			return h, nil, err
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return h, nil, err
	}
	if len(out) != h.Scenarios {
		return h, nil, fmt.Errorf("workload: trace header says %d scenarios, found %d", h.Scenarios, len(out))
	}
	return h, out, nil
}
