package workload

import "math"

// KendallTau returns the Kendall τ-b rank correlation between two
// paired score vectors: +1 when they order identically, −1 when they
// order exactly oppositely, with the standard tie correction
// τ = (C − D) / √((n₀−n₁)(n₀−n₂)). Vectors where every pair is tied
// (denominator zero) score 0 — no ordering information, no agreement
// claimed. Both vectors must have equal length; pairs are compared by
// value, so rank vectors and raw seconds are both valid inputs.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if len(b) != n {
		panic("workload: KendallTau on unequal-length vectors")
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := sign(a[i] - a[j])
			db := sign(b[i] - b[j])
			if da == 0 {
				tiesA++
			}
			if db == 0 {
				tiesB++
			}
			switch {
			case da*db > 0:
				concordant++
			case da*db < 0:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - tiesA) * (n0 - tiesB))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

func sign(x float64) float64 {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// ScenarioScore grades one scenario's oracle ordering against both
// measured orderings — the REAL runtime wall clock and the measured
// simulator. Degenerate scenarios (fewer than two comparable
// candidates — nothing to order) are flagged and excluded from
// aggregates.
type ScenarioScore struct {
	// Comparable is the number of candidates present in all three
	// orderings (runtime, simulator, oracle).
	Comparable int  `json:"comparable"`
	Degenerate bool `json:"degenerate,omitempty"`
	// TauRuntime/TauSim are Kendall-τ between the oracle's candidate
	// ranking and each measured ordering.
	TauRuntime float64 `json:"tau_runtime"`
	TauSim     float64 `json:"tau_sim"`
	// Top1Runtime/Top1Sim report whether the oracle's pick (rank 1) is
	// a measured fastest candidate (ties count as agreement).
	Top1Runtime bool `json:"top1_runtime"`
	Top1Sim     bool `json:"top1_sim"`
	// RegretRuntime/RegretSim are the relative cost of trusting the
	// oracle: (measured cost of the oracle's pick − measured cost of
	// the true best) / true best. 0 when the oracle picked a winner.
	RegretRuntime float64 `json:"regret_runtime"`
	RegretSim     float64 `json:"regret_sim"`
}

// ScoreScenario computes a scenario's ranking-fidelity scores from its
// comparable candidates (as produced by Replayer.Replay, oracle ranks
// assigned).
func ScoreScenario(cands []Candidate) ScenarioScore {
	s := ScenarioScore{Comparable: len(cands)}
	if len(cands) < 2 {
		s.Degenerate = true
		return s
	}
	ranks := make([]float64, len(cands))
	measured := make([]float64, len(cands))
	sim := make([]float64, len(cands))
	pick := 0
	for i, c := range cands {
		ranks[i] = float64(c.OracleRank)
		measured[i] = c.MeasuredSec
		sim[i] = c.SimSec
		if c.OracleRank == 1 {
			pick = i
		}
	}
	s.TauRuntime = KendallTau(ranks, measured)
	s.TauSim = KendallTau(ranks, sim)
	s.Top1Runtime, s.RegretRuntime = top1AndRegret(measured, pick)
	s.Top1Sim, s.RegretSim = top1AndRegret(sim, pick)
	return s
}

// top1AndRegret grades the oracle's pick against a measured cost
// vector.
func top1AndRegret(costs []float64, pick int) (bool, float64) {
	best := costs[0]
	for _, c := range costs[1:] {
		if c < best {
			best = c
		}
	}
	if best <= 0 {
		return costs[pick] <= best, 0
	}
	return costs[pick] <= best, (costs[pick] - best) / best
}

// Aggregate summarizes ranking fidelity over a sweep against one
// measured ordering.
type Aggregate struct {
	// Scenarios is the number of scored (non-degenerate) scenarios.
	Scenarios int `json:"scenarios"`
	// Degenerate counts scenarios excluded for having < 2 comparable
	// candidates.
	Degenerate int     `json:"degenerate"`
	MeanTau    float64 `json:"mean_tau"`
	Top1Rate   float64 `json:"top1_rate"`
	MeanRegret float64 `json:"mean_regret"`
	MaxRegret  float64 `json:"max_regret"`
}

// AggregateScores folds per-scenario scores into the two sweep-level
// aggregates: oracle-vs-runtime and oracle-vs-simulator.
func AggregateScores(results []*ScenarioResult) (runtime, sim Aggregate) {
	for _, r := range results {
		if r.Degenerate {
			runtime.Degenerate++
			sim.Degenerate++
			continue
		}
		runtime.add(r.TauRuntime, r.Top1Runtime, r.RegretRuntime)
		sim.add(r.TauSim, r.Top1Sim, r.RegretSim)
	}
	runtime.finish()
	sim.finish()
	return runtime, sim
}

func (a *Aggregate) add(tau float64, top1 bool, regret float64) {
	a.Scenarios++
	a.MeanTau += tau
	if top1 {
		a.Top1Rate++
	}
	a.MeanRegret += regret
	if regret > a.MaxRegret {
		a.MaxRegret = regret
	}
}

func (a *Aggregate) finish() {
	if a.Scenarios == 0 {
		return
	}
	n := float64(a.Scenarios)
	a.MeanTau /= n
	a.Top1Rate /= n
	a.MeanRegret /= n
}
