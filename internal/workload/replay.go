package workload

import (
	"fmt"
	"sort"
	"time"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/measure"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// Candidate is one plan's replay record inside a scenario: the three
// timings whose orderings the scorer compares, the oracle's rank among
// the scenario's comparable candidates, and the loss series of the
// real run (the determinism pin — wall times vary, losses must not).
type Candidate struct {
	Plan string `json:"plan"`
	// MeasuredSec is REAL wall seconds per training run under dist.Run
	// (mean over ReplayIters timed runs after one warm-up). Candidates
	// of one scenario run identical iteration counts, so per-run
	// ordering IS per-iteration ordering.
	MeasuredSec float64 `json:"measured_sec"`
	// SimSec is the measured simulator's per-iteration total
	// (measure.MeasurePlan) on the scenario's cluster geometry.
	SimSec float64 `json:"sim_sec"`
	// OracleSec is the oracle's projected per-iteration total
	// (core.Project) for the same config.
	OracleSec float64 `json:"oracle_sec"`
	// OracleFeasible mirrors Projection.Feasible; the oracle ordering
	// puts feasible candidates first (core.LessProjection).
	OracleFeasible bool `json:"oracle_feasible"`
	// OracleRank is 1 for the oracle's pick within this scenario.
	OracleRank int `json:"oracle_rank"`
	// Losses is the real run's per-iteration loss series.
	Losses []float64 `json:"losses"`
}

// Skip records a candidate plan excluded from a scenario's orderings,
// and why — e.g. a Table 3 width limit rejecting channel:4 on a
// 3-channel input, or an unsatisfiable pipeline depth.
type Skip struct {
	Plan   string `json:"plan"`
	Reason string `json:"reason"`
}

// ScenarioResult is one replayed scenario: its trace record, the
// comparable candidates (measured on all three sides), the skipped
// plans, and the scenario's fidelity scores.
type ScenarioResult struct {
	Scenario
	Candidates []Candidate `json:"candidates"`
	Skipped    []Skip      `json:"skipped,omitempty"`
	ScenarioScore
}

// Replayer executes trace scenarios. It caches the per-cluster
// measurement engines and per-(cluster, model, batch) layer profiles so
// a sweep with hundreds of scenarios resolves each combination once.
type Replayer struct {
	// Iters is the number of timed real runs per candidate after the
	// one warm-up run (which also surfaces infeasibility and records
	// the loss series). 1 suffices for ordering; raise it to damp
	// scheduler noise.
	Iters int

	engines  map[string]*measure.Engine
	profiles map[profileKey]*profile.LayerTimes
}

type profileKey struct {
	cluster, model string
	perPE          int
}

// NewReplayer builds a replay engine running `iters` timed runs per
// candidate.
func NewReplayer(iters int) (*Replayer, error) {
	if iters < 1 {
		return nil, fmt.Errorf("workload: replayer needs iters >= 1, got %d", iters)
	}
	return &Replayer{
		Iters:    iters,
		engines:  map[string]*measure.Engine{},
		profiles: map[profileKey]*profile.LayerTimes{},
	}, nil
}

func (r *Replayer) engine(name string) (*measure.Engine, error) {
	if e, ok := r.engines[name]; ok {
		return e, nil
	}
	sys, err := cluster.ByName(name)
	if err != nil {
		return nil, err
	}
	e := measure.NewEngine(sys)
	r.engines[name] = e
	return e, nil
}

func (r *Replayer) profile(e *measure.Engine, clusterName string, m *nn.Model, perPE int) *profile.LayerTimes {
	k := profileKey{clusterName, m.Name, perPE}
	if lt, ok := r.profiles[k]; ok {
		return lt
	}
	lt := profile.ProfileModel(e.Dev, m, perPE)
	r.profiles[k] = lt
	return lt
}

// Replay executes one scenario: every candidate plan runs on the real
// runtime with the scenario's knobs and seed, through the measured
// simulator on the scenario's cluster, and through the oracle; plans
// any side rejects are recorded as skips, the rest become comparable
// candidates ranked by the oracle's ordering. The scenario's scores
// are filled in by the caller (ScoreScenario) so replay and grading
// stay separable.
func (r *Replayer) Replay(sc Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	m, err := model.ByName(sc.Model)
	if err != nil {
		return nil, err
	}
	eng, err := r.engine(sc.Cluster)
	if err != nil {
		return nil, err
	}
	batches := data.Toy(m, int64(sc.Iters*sc.Batch)).Batches(sc.Iters, sc.Batch)
	opts := []dist.Option{
		dist.WithSeed(sc.Seed), dist.WithLR(sc.LR),
		dist.WithOverlap(sc.Overlap), dist.WithBucketBytes(sc.BucketBytes),
	}
	if !sc.Footnote2 {
		opts = append(opts, dist.WithInputGradAllReduce())
	}
	perPE := sc.Batch / sc.P
	if perPE < 1 {
		perPE = 1
	}
	times := r.profile(eng, sc.Cluster, m, perPE)

	res := &ScenarioResult{Scenario: sc}
	var projections []*core.Projection
	for _, ps := range sc.Plans {
		pl, err := dist.ParsePlan(ps)
		if err != nil {
			return nil, err // Validate already parsed these; a failure here is a bug
		}
		// Real runtime: warm-up run records losses and surfaces
		// rejections; the timed runs measure the identical execution.
		first, err := dist.Run(m, batches, pl, opts...)
		if err != nil {
			res.Skipped = append(res.Skipped, Skip{Plan: ps, Reason: "runtime: " + err.Error()})
			continue
		}
		start := time.Now()
		for i := 0; i < r.Iters; i++ {
			if _, err := dist.Run(m, batches, pl, opts...); err != nil {
				return nil, fmt.Errorf("workload: %s: %s ran its warm-up but failed a timed run: %w", sc.ID, ps, err)
			}
		}
		measuredSec := time.Since(start).Seconds() / float64(r.Iters)

		cfg := core.Config{
			Model: m, Sys: eng.Sys, Times: times,
			D: int64(sc.Iters * sc.Batch), B: sc.Batch,
			P: sc.P, Segments: 4,
		}
		switch pl.Strategy {
		case core.DataFilter, core.DataSpatial, core.DataPipeline:
			cfg.P1, cfg.P2 = pl.P1, pl.P2
		}
		pr, err := core.Project(cfg, pl.Strategy)
		if err != nil {
			res.Skipped = append(res.Skipped, Skip{Plan: ps, Reason: "oracle: " + err.Error()})
			continue
		}
		sim, err := measure.MeasurePlan(eng, cfg, pl)
		if err != nil {
			res.Skipped = append(res.Skipped, Skip{Plan: ps, Reason: "simulator: " + err.Error()})
			continue
		}
		res.Candidates = append(res.Candidates, Candidate{
			Plan:           ps,
			MeasuredSec:    measuredSec,
			SimSec:         sim.Iter.Total(),
			OracleSec:      pr.Iter().Total(),
			OracleFeasible: pr.Feasible,
			Losses:         first.Losses,
		})
		projections = append(projections, pr)
	}

	// Oracle ranks over the comparable set, by the SAME comparator
	// Advise uses — "the oracle's pick" here and over the planner
	// service is one definition.
	order := make([]int, len(projections))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return core.LessProjection(projections[order[a]], projections[order[b]])
	})
	for rank, idx := range order {
		res.Candidates[idx].OracleRank = rank + 1
	}
	return res, nil
}
