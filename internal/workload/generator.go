package workload

import (
	"fmt"
	"math/rand"

	"paradl/internal/dist"
)

// GenSpec parameterizes the seeded scenario generator. The full sweep
// lattice (models × geometries × batch regimes × widths × knob
// settings) is fixed by TraceVersion; a spec picks N scenarios out of
// it with a seeded shuffle, so any trace regenerates bit-identically
// from the (Seed, N) pair its header records.
type GenSpec struct {
	Seed int64 `json:"seed"`
	N    int   `json:"n"`
}

// The sweep lattice. Every axis is deliberately a fixed, ordered list:
// the generator's determinism contract is that lattice order — and
// therefore a recorded seed's sample — only changes with TraceVersion.
var (
	// latticeModels are the zoo models the REAL runtime trains in
	// milliseconds; replay cost is what bounds the list to toy scale.
	latticeModels = []string{"tinycnn", "tinycnn-nobn", "tinyresnet", "tiny3d"}
	// latticeClusters are the named system geometries (cluster.Names
	// minus nothing — all four reshape collective routing).
	latticeClusters = []string{"abci-like", "dense-node", "dual-gpu", "flat-rack"}
	// latticeBatches are the global mini-batch regimes.
	latticeBatches = []int{8, 16, 32}
	// latticeWidths are the total PE counts; 3 exercises prime widths
	// (no hybrid factorization), 6 and 8 the interior grids.
	latticeWidths = []int{2, 3, 4, 6, 8}
	// latticeBuckets are the gradient bucket sizes: the toy A/B size at
	// which buckets fill mid-backward, and the production default.
	latticeBuckets = []int{8 << 10, 256 << 10}
	latticeBools   = []bool{false, true}
)

// Fixed per-run training parameters: two iterations keeps a candidate
// run in the tens of milliseconds; the LR matches the parity suites.
const (
	scenarioIters = 2
	scenarioLR    = 0.05
)

// LatticeSize returns the number of points in the full sweep lattice —
// the upper bound on GenSpec.N.
func LatticeSize() int {
	return len(latticeModels) * len(latticeClusters) * len(latticeBatches) *
		len(latticeWidths) * len(latticeBuckets) * len(latticeBools) * len(latticeBools)
}

// point is one un-sampled lattice coordinate.
type point struct {
	model, cluster string
	batch, p       int
	bucket         int
	overlap, fn2   bool
}

// lattice enumerates the full cross product in fixed axis order.
func lattice() []point {
	pts := make([]point, 0, LatticeSize())
	for _, m := range latticeModels {
		for _, c := range latticeClusters {
			for _, b := range latticeBatches {
				for _, p := range latticeWidths {
					for _, bk := range latticeBuckets {
						for _, ov := range latticeBools {
							for _, fn2 := range latticeBools {
								pts = append(pts, point{m, c, b, p, bk, ov, fn2})
							}
						}
					}
				}
			}
		}
	}
	return pts
}

// Generate deterministically samples spec.N scenarios from the sweep
// lattice: a rand.Source seeded with spec.Seed shuffles the lattice,
// the first N points become scenarios s000…, and each scenario draws
// its training seed from the same stream. Calling Generate twice with
// the same spec yields identical values; serializing them yields
// identical bytes (the trace reproducibility pin).
func Generate(spec GenSpec) ([]Scenario, error) {
	if spec.N < 1 {
		return nil, fmt.Errorf("workload: generator needs N >= 1 scenarios, got %d", spec.N)
	}
	pts := lattice()
	if spec.N > len(pts) {
		return nil, fmt.Errorf("workload: N=%d exceeds the %d-point sweep lattice", spec.N, len(pts))
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })

	out := make([]Scenario, 0, spec.N)
	for i, pt := range pts[:spec.N] {
		plans := dist.SweepPlans(pt.p)
		strs := make([]string, len(plans))
		for j, pl := range plans {
			strs[j] = pl.String()
		}
		sc := Scenario{
			ID:          fmt.Sprintf("s%03d", i),
			Seed:        rng.Int63(),
			Model:       pt.model,
			Cluster:     pt.cluster,
			Batch:       pt.batch,
			Iters:       scenarioIters,
			P:           pt.p,
			LR:          scenarioLR,
			Overlap:     pt.overlap,
			BucketBytes: pt.bucket,
			Footnote2:   pt.fn2,
			Plans:       strs,
		}
		if err := sc.Validate(); err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}
