package workload

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestKendallTauPerfectOrdering(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	if tau := KendallTau(a, b); !almost(tau, 1) {
		t.Errorf("perfect ordering τ = %g, want 1", tau)
	}
	// Monotone but non-linear: τ only sees order.
	c := []float64{1, 10, 100, 1000, 10000}
	if tau := KendallTau(a, c); !almost(tau, 1) {
		t.Errorf("monotone ordering τ = %g, want 1", tau)
	}
}

func TestKendallTauReversedOrdering(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{5, 4, 3, 2, 1}
	if tau := KendallTau(a, b); !almost(tau, -1) {
		t.Errorf("reversed ordering τ = %g, want -1", tau)
	}
}

func TestKendallTauTies(t *testing.T) {
	// A tie on both sides for the same pair: τ-b still reaches 1.
	if tau := KendallTau([]float64{1, 1, 2}, []float64{5, 5, 9}); !almost(tau, 1) {
		t.Errorf("consistent ties τ = %g, want 1", tau)
	}
	// A tie on one side only: τ-b = (C−D)/√((n₀−n₁)(n₀−n₂)) = 2/√6.
	want := 2 / math.Sqrt(6)
	if tau := KendallTau([]float64{1, 1, 2}, []float64{1, 2, 3}); !almost(tau, want) {
		t.Errorf("one-sided tie τ = %g, want %g", tau, want)
	}
	// Everything tied: no ordering information, τ defined as 0.
	if tau := KendallTau([]float64{7, 7, 7}, []float64{1, 2, 3}); tau != 0 {
		t.Errorf("all-tied τ = %g, want 0", tau)
	}
	if tau := KendallTau(nil, nil); tau != 0 {
		t.Errorf("empty τ = %g, want 0", tau)
	}
}

// Fuzzed invariants: τ ∈ [−1, 1], symmetry τ(a,b)=τ(b,a),
// self-correlation 1, and antisymmetry under negation.
func TestKendallTauFuzzInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(12)
		a := make([]float64, n)
		b := make([]float64, n)
		neg := make([]float64, n)
		for i := range a {
			// Coarse values so ties occur often.
			a[i] = float64(rng.Intn(5))
			b[i] = float64(rng.Intn(5))
			neg[i] = -b[i]
		}
		tau := KendallTau(a, b)
		if tau < -1-1e-12 || tau > 1+1e-12 || math.IsNaN(tau) {
			t.Fatalf("trial %d: τ = %g outside [-1,1] (a=%v b=%v)", trial, tau, a, b)
		}
		if rev := KendallTau(b, a); !almost(tau, rev) {
			t.Fatalf("trial %d: τ(a,b)=%g ≠ τ(b,a)=%g", trial, tau, rev)
		}
		if !almost(KendallTau(a, neg), -tau) {
			t.Fatalf("trial %d: τ(a,-b) ≠ -τ(a,b)", trial)
		}
		allTied := true
		for i := 1; i < n; i++ {
			if a[i] != a[0] {
				allTied = false
			}
		}
		if self := KendallTau(a, a); !allTied && !almost(self, 1) {
			t.Fatalf("trial %d: τ(a,a) = %g, want 1", trial, self)
		}
	}
}

func TestKendallTauLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unequal lengths did not panic")
		}
	}()
	KendallTau([]float64{1}, []float64{1, 2})
}

// cand builds a scored candidate: oracle rank r, runtime seconds m,
// simulator seconds s.
func cand(plan string, r int, m, s float64) Candidate {
	return Candidate{Plan: plan, OracleRank: r, MeasuredSec: m, SimSec: s, OracleSec: float64(r)}
}

func TestScoreScenarioAgreement(t *testing.T) {
	// The oracle's ordering matches the runtime exactly and the
	// simulator exactly oppositely.
	s := ScoreScenario([]Candidate{
		cand("data:4", 1, 1.0, 9.0),
		cand("filter:4", 2, 2.0, 8.0),
		cand("pipeline:4", 3, 3.0, 7.0),
	})
	if s.Degenerate || s.Comparable != 3 {
		t.Fatalf("unexpected degeneracy: %+v", s)
	}
	if !almost(s.TauRuntime, 1) || !almost(s.TauSim, -1) {
		t.Errorf("τ = (%g, %g), want (1, -1)", s.TauRuntime, s.TauSim)
	}
	if !s.Top1Runtime || s.Top1Sim {
		t.Errorf("top-1 = (%v, %v), want (true, false)", s.Top1Runtime, s.Top1Sim)
	}
	if s.RegretRuntime != 0 {
		t.Errorf("runtime regret = %g, want 0", s.RegretRuntime)
	}
	// Sim regret: pick costs 9, best is 7 → (9-7)/7.
	if want := 2.0 / 7.0; !almost(s.RegretSim, want) {
		t.Errorf("sim regret = %g, want %g", s.RegretSim, want)
	}
}

func TestScoreScenarioTiedBest(t *testing.T) {
	// The oracle pick ties the measured fastest: agreement, zero regret.
	s := ScoreScenario([]Candidate{
		cand("data:2", 1, 2.0, 2.0),
		cand("filter:2", 2, 2.0, 2.0),
	})
	if !s.Top1Runtime || !s.Top1Sim || s.RegretRuntime != 0 || s.RegretSim != 0 {
		t.Errorf("tied best mis-scored: %+v", s)
	}
}

func TestScoreScenarioDegenerate(t *testing.T) {
	if s := ScoreScenario(nil); !s.Degenerate {
		t.Error("empty candidate set not degenerate")
	}
	if s := ScoreScenario([]Candidate{cand("data:2", 1, 1, 1)}); !s.Degenerate {
		t.Error("single candidate not degenerate")
	}
}

func TestAggregateScores(t *testing.T) {
	results := []*ScenarioResult{
		{ScenarioScore: ScenarioScore{Comparable: 3, TauRuntime: 1, TauSim: 0.5, Top1Runtime: true, Top1Sim: true, RegretRuntime: 0, RegretSim: 0.1}},
		{ScenarioScore: ScenarioScore{Comparable: 3, TauRuntime: 0, TauSim: 0.5, Top1Runtime: false, Top1Sim: true, RegretRuntime: 0.5, RegretSim: 0.3}},
		{ScenarioScore: ScenarioScore{Comparable: 1, Degenerate: true}},
	}
	rt, sim := AggregateScores(results)
	if rt.Scenarios != 2 || rt.Degenerate != 1 || sim.Scenarios != 2 {
		t.Fatalf("coverage: rt=%+v sim=%+v", rt, sim)
	}
	if !almost(rt.MeanTau, 0.5) || !almost(rt.Top1Rate, 0.5) || !almost(rt.MeanRegret, 0.25) || !almost(rt.MaxRegret, 0.5) {
		t.Errorf("runtime aggregate: %+v", rt)
	}
	if !almost(sim.MeanTau, 0.5) || !almost(sim.Top1Rate, 1) || !almost(sim.MeanRegret, 0.2) || !almost(sim.MaxRegret, 0.3) {
		t.Errorf("sim aggregate: %+v", sim)
	}
}
