package workload

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Seed: 7, N: 40}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different scenario sets")
	}
	if len(a) != 40 {
		t.Fatalf("generated %d scenarios, want 40", len(a))
	}
	// A different seed must sample a different sweep.
	c, err := Generate(GenSpec{Seed: 8, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical sweeps")
	}
}

// The trace reproducibility pin: serializing a generated sweep twice —
// and regenerating it from the seed its header records — yields
// byte-identical traces.
func TestTraceByteIdenticalRegeneration(t *testing.T) {
	spec := GenSpec{Seed: 3, N: 25}
	scs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var first, second bytes.Buffer
	if err := WriteTrace(&first, spec, scs); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&second, spec, scs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("serializing the same sweep twice produced different bytes")
	}

	// Round-trip: read the trace back, regenerate from the recorded
	// spec, re-serialize — still byte-identical.
	h, got, err := ReadTrace(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Spec != spec || h.Scenarios != len(scs) {
		t.Fatalf("header %+v does not record spec %+v over %d scenarios", h, spec, len(scs))
	}
	if !reflect.DeepEqual(got, scs) {
		t.Fatal("trace round-trip changed scenarios")
	}
	regen, err := Generate(h.Spec)
	if err != nil {
		t.Fatal(err)
	}
	var third bytes.Buffer
	if err := WriteTrace(&third, h.Spec, regen); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), third.Bytes()) {
		t.Fatal("regenerating from the recorded seed is not byte-identical")
	}

	d1, err := TraceDigest(spec, scs)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := TraceDigest(h.Spec, regen)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 || len(d1) != 64 {
		t.Fatalf("trace digests diverge: %s vs %s", d1, d2)
	}
}

func TestGenerateCoversSweepAxes(t *testing.T) {
	// A healthy sample must touch several models, geometries, batch
	// regimes, and widths — the sweep is the point.
	scs, err := Generate(GenSpec{Seed: 1, N: 60})
	if err != nil {
		t.Fatal(err)
	}
	models, clusters, batches, widths := map[string]bool{}, map[string]bool{}, map[int]bool{}, map[int]bool{}
	for _, sc := range scs {
		models[sc.Model] = true
		clusters[sc.Cluster] = true
		batches[sc.Batch] = true
		widths[sc.P] = true
		if len(sc.Plans) < 5 {
			t.Errorf("%s: only %d candidate plans at p=%d", sc.ID, len(sc.Plans), sc.P)
		}
	}
	if len(models) < 3 || len(clusters) < 3 || len(batches) < 2 || len(widths) < 4 {
		t.Errorf("sweep coverage too thin: %d models %d clusters %d batches %d widths",
			len(models), len(clusters), len(batches), len(widths))
	}
}

func TestGenerateRejectsBadSpecs(t *testing.T) {
	if _, err := Generate(GenSpec{Seed: 1, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Generate(GenSpec{Seed: 1, N: LatticeSize() + 1}); err == nil {
		t.Error("N beyond the lattice accepted")
	}
	if _, err := Generate(GenSpec{Seed: 1, N: LatticeSize()}); err != nil {
		t.Errorf("full lattice rejected: %v", err)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	spec := GenSpec{Seed: 5, N: 3}
	scs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spec, scs); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := map[string]string{
		"empty":            "",
		"wrong schema":     strings.Replace(good, TraceSchema, "paradl/other", 1),
		"future version":   strings.Replace(good, `"version":1`, `"version":99`, 1),
		"missing scenario": good[:strings.LastIndex(strings.TrimSpace(good), "\n")+1],
		"unknown model":    strings.ReplaceAll(good, "tiny", "mega"),
		"bad json":         good + "{not json\n",
	}
	for name, raw := range cases {
		if raw == good {
			t.Fatalf("%s: mutation did not change the trace", name)
		}
		if _, _, err := ReadTrace(strings.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	scs, err := Generate(GenSpec{Seed: 2, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := scs[0]

	mutate := func(f func(*Scenario)) *Scenario {
		sc := base
		sc.Plans = append([]string(nil), base.Plans...)
		f(&sc)
		return &sc
	}
	bad := map[string]*Scenario{
		"no id":          mutate(func(s *Scenario) { s.ID = "" }),
		"unknown model":  mutate(func(s *Scenario) { s.Model = "meganet" }),
		"unknown geo":    mutate(func(s *Scenario) { s.Cluster = "mystery" }),
		"zero batch":     mutate(func(s *Scenario) { s.Batch = 0 }),
		"zero lr":        mutate(func(s *Scenario) { s.LR = 0 }),
		"no plans":       mutate(func(s *Scenario) { s.Plans = nil }),
		"bad plan":       mutate(func(s *Scenario) { s.Plans[0] = "warp:9" }),
		"width mismatch": mutate(func(s *Scenario) { s.P++ }),
	}
	for name, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("pristine scenario rejected: %v", err)
	}
}
