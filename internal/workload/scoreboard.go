package workload

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"paradl/internal/artifact"
)

// Scoreboard identity: SCOREBOARD.json at the repo root is the
// committed ranking-fidelity artefact later PRs must not regress (the
// CI smoke pins a top-1 floor against the deterministic simulator
// side).
const (
	ScoreboardSchema  = "paradl/scoreboard"
	ScoreboardVersion = 1
)

// Scoreboard is the committed artefact: provenance, the generator spec
// and trace digest that reproduce the sweep, every replayed scenario
// with its candidates and scores, and the two sweep-level aggregates.
type Scoreboard struct {
	artifact.Header
	// Spec regenerates the trace; TraceSHA256 is the digest of the
	// regenerated trace bytes (WriteTrace output), pinning which
	// scenario set these scores grade.
	Spec        GenSpec `json:"spec"`
	TraceSHA256 string  `json:"trace_sha256"`
	// ReplayIters is the timed-runs-per-candidate setting of the
	// real-runtime measurements.
	ReplayIters int `json:"replay_iters"`

	Scenarios []*ScenarioResult `json:"scenarios"`

	// AggRuntime grades the oracle against REAL wall-clock ordering
	// (noisy: one host, goroutine PEs); AggSim against the
	// deterministic measured simulator (the reproducible floor CI
	// pins).
	AggRuntime Aggregate `json:"aggregate_runtime"`
	AggSim     Aggregate `json:"aggregate_sim"`
}

// TraceDigest returns the SHA-256 of the serialized trace for a spec —
// the content address a scoreboard records so its scenario set is
// verifiable.
func TraceDigest(spec GenSpec, scs []Scenario) (string, error) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, spec, scs); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// BuildScoreboard generates the seeded sweep, replays it, scores it,
// and assembles the artefact. It is `paraexp -exp scoreboard` behind
// the CLI flags.
func BuildScoreboard(spec GenSpec, replayIters int) (*Scoreboard, error) {
	scs, err := Generate(spec)
	if err != nil {
		return nil, err
	}
	return ScoreTrace(spec, scs, replayIters)
}

// ScoreTrace replays and scores an explicit scenario set (generated or
// loaded from a trace file) into a scoreboard.
func ScoreTrace(spec GenSpec, scs []Scenario, replayIters int) (*Scoreboard, error) {
	digest, err := TraceDigest(spec, scs)
	if err != nil {
		return nil, err
	}
	r, err := NewReplayer(replayIters)
	if err != nil {
		return nil, err
	}
	sb := &Scoreboard{
		Header:      artifact.NewHeader(ScoreboardSchema, ScoreboardVersion),
		Spec:        spec,
		TraceSHA256: digest,
		ReplayIters: replayIters,
	}
	for _, sc := range scs {
		res, err := r.Replay(sc)
		if err != nil {
			return nil, fmt.Errorf("workload: replaying %s: %w", sc.ID, err)
		}
		res.ScenarioScore = ScoreScenario(res.Candidates)
		sb.Scenarios = append(sb.Scenarios, res)
	}
	sb.AggRuntime, sb.AggSim = AggregateScores(sb.Scenarios)
	if err := sb.Validate(); err != nil {
		return nil, err
	}
	return sb, nil
}

// Validate checks the artefact's structural invariants: schema
// identity, a non-empty scored sweep, τ within [−1, 1], rates within
// [0, 1], and non-negative regret. The CI smoke runs this on the
// freshly generated artefact; regression gates can run it on the
// committed one.
func (sb *Scoreboard) Validate() error {
	if err := sb.Header.Check(ScoreboardSchema, ScoreboardVersion); err != nil {
		return err
	}
	if len(sb.Scenarios) == 0 {
		return fmt.Errorf("workload: scoreboard with no scenarios")
	}
	if len(sb.TraceSHA256) != 64 {
		return fmt.Errorf("workload: malformed trace digest %q", sb.TraceSHA256)
	}
	for _, r := range sb.Scenarios {
		if err := r.Scenario.Validate(); err != nil {
			return err
		}
		if len(r.Candidates)+len(r.Skipped) != len(r.Plans) {
			return fmt.Errorf("workload: %s: %d candidates + %d skips ≠ %d plans",
				r.ID, len(r.Candidates), len(r.Skipped), len(r.Plans))
		}
		if r.Comparable != len(r.Candidates) {
			return fmt.Errorf("workload: %s: comparable=%d but %d candidates", r.ID, r.Comparable, len(r.Candidates))
		}
		for _, tau := range []float64{r.TauRuntime, r.TauSim} {
			if tau < -1 || tau > 1 {
				return fmt.Errorf("workload: %s: τ=%g outside [-1,1]", r.ID, tau)
			}
		}
		if r.RegretRuntime < 0 || r.RegretSim < 0 {
			return fmt.Errorf("workload: %s: negative regret", r.ID)
		}
	}
	for side, a := range map[string]Aggregate{"runtime": sb.AggRuntime, "sim": sb.AggSim} {
		if a.Scenarios+a.Degenerate != len(sb.Scenarios) {
			return fmt.Errorf("workload: %s aggregate covers %d+%d of %d scenarios",
				side, a.Scenarios, a.Degenerate, len(sb.Scenarios))
		}
		if a.MeanTau < -1 || a.MeanTau > 1 || a.Top1Rate < 0 || a.Top1Rate > 1 || a.MeanRegret < 0 {
			return fmt.Errorf("workload: %s aggregate out of bounds: %+v", side, a)
		}
	}
	return nil
}
