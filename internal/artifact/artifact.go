// Package artifact defines the shared self-identification header every
// committed machine-readable artefact of this repo carries
// (BENCH_dist.json, BENCH_serve.json, SCOREBOARD.json). A consumer —
// the CI smoke steps, a later PR's regression gate, an external
// dashboard — first checks Schema and Version before trusting any other
// field, so emitters can evolve their payloads without silently
// breaking readers.
package artifact

import (
	"fmt"
	"runtime"
	"time"
)

// Header is embedded at the top of every committed artefact. Schema
// names the artefact kind ("paradl/bench-dist"), Version its payload
// revision; Generated/GoVersion/GOMAXPROCS record measurement
// provenance the way the pre-header snapshots already did.
type Header struct {
	Schema     string `json:"schema"`
	Version    int    `json:"version"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// NewHeader stamps a header for the given schema and version with the
// current environment's provenance.
func NewHeader(schema string, version int) Header {
	return Header{
		Schema:     schema,
		Version:    version,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Check validates that a decoded header identifies the expected schema
// at a version the caller understands (1..maxVersion).
func (h Header) Check(schema string, maxVersion int) error {
	if h.Schema != schema {
		return fmt.Errorf("artifact: schema %q, want %q", h.Schema, schema)
	}
	if h.Version < 1 || h.Version > maxVersion {
		return fmt.Errorf("artifact: %s version %d outside supported 1..%d", schema, h.Version, maxVersion)
	}
	return nil
}
