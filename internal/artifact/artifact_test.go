package artifact

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNewHeaderStampsProvenance(t *testing.T) {
	h := NewHeader("paradl/test", 3)
	if h.Schema != "paradl/test" || h.Version != 3 {
		t.Fatalf("header identity = %q v%d", h.Schema, h.Version)
	}
	if h.Generated == "" || h.GoVersion == "" || h.GOMAXPROCS < 1 {
		t.Fatalf("missing provenance: %+v", h)
	}
	if err := h.Check("paradl/test", 3); err != nil {
		t.Fatalf("self check: %v", err)
	}
}

func TestHeaderCheckRejects(t *testing.T) {
	h := NewHeader("paradl/test", 2)
	if err := h.Check("paradl/other", 2); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
	if err := h.Check("paradl/test", 1); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
	h.Version = 0
	if err := h.Check("paradl/test", 2); err == nil {
		t.Fatal("zero version accepted")
	}
}

func TestHeaderLeadsJSON(t *testing.T) {
	// The header must serialize with schema first so artefacts
	// self-identify even to a reader that peeks at the first bytes.
	b, err := json.Marshal(NewHeader("paradl/test", 1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), `{"schema":"paradl/test","version":1,`) {
		t.Fatalf("header JSON does not lead with identity: %s", b)
	}
}
