// Package measure is the reproduction's stand-in for the paper's
// empirical runs: it executes each parallel strategy's per-iteration
// schedule against the calibrated device model (internal/profile) and
// the flow-level network simulator (internal/simnet), pricing the
// ACTUAL per-GPU work rather than the oracle's idealized 1/p division.
//
// The gap between this package and internal/core is therefore exactly
// the gap the paper measures between ParaDL and reality:
//
//   - shrunken per-GPU kernels lose efficiency (filter/channel conv
//     scaling, Fig. 8),
//   - split/concat and tensor-rearrangement overheads are charged
//     (Fig. 8 "implementation overheads"),
//   - the FC head of the spatial strategy is computed redundantly on
//     every PE (§4.5.1) and an extra Allgather collects activations,
//   - halo exchange rides the slower MPI/PCIe path (§5.3.1), and
//   - concurrent collectives contend for shared links on the simulated
//     fabric instead of obeying a closed-form φ.
package measure

import (
	"fmt"
	"math"

	"paradl/internal/cluster"
	"paradl/internal/collective"
	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/nn"
	"paradl/internal/profile"
	"paradl/internal/simnet"
	"paradl/internal/strategy"
)

// Result is one measured run: per-iteration phase breakdown plus the
// epoch scale factor.
type Result struct {
	Strategy core.Strategy
	Config   core.Config
	// Iter is the measured per-iteration breakdown.
	Iter core.Breakdown
}

// Epoch returns the per-epoch breakdown (D/B iterations).
func (r *Result) Epoch() core.Breakdown {
	iters := float64(r.Config.D) / float64(r.Config.B)
	return r.Iter.Scale(iters)
}

// Accuracy returns the paper's §5.2 metric for an oracle projection
// against this measurement: 1 − |projected − measured| / measured.
func (r *Result) Accuracy(pr *core.Projection) float64 {
	measured := r.Iter.Total()
	projected := pr.Iter().Total()
	if measured == 0 {
		return 0
	}
	diff := projected - measured
	if diff < 0 {
		diff = -diff
	}
	return 1 - diff/measured
}

// MeasurePlan measures the runtime plan pl under cfg: the plan's
// strategy on the plan's grid. cfg.P/P1/P2 are overwritten from the
// plan geometry so a trace scenario's candidate plan and the measured
// schedule can never disagree about the grid shape.
func MeasurePlan(e *Engine, cfg core.Config, pl dist.Plan) (*Result, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	cfg.P = pl.P()
	cfg.P1, cfg.P2 = 0, 0
	switch pl.Strategy {
	case core.DataFilter, core.DataSpatial, core.DataPipeline:
		cfg.P1, cfg.P2 = pl.P1, pl.P2
	}
	return Measure(e, cfg, pl.Strategy)
}

// IterTotal measures one strategy and returns its per-iteration total
// seconds — a convenience for scaling studies.
func IterTotal(e *Engine, cfg core.Config, s core.Strategy) (float64, error) {
	res, err := Measure(e, cfg, s)
	if err != nil {
		return 0, err
	}
	return res.Iter.Total(), nil
}

// Engine owns the simulated fabric and device model.
type Engine struct {
	Sys  *cluster.System
	Dev  *profile.Device
	Topo *simnet.Topology

	// Background holds link IDs with persistent congestion traffic
	// (Fig. 6 studies); nil for clean runs.
	background []simnet.LinkID
}

// NewEngine builds a measurement engine for sys.
func NewEngine(sys *cluster.System) *Engine {
	return &Engine{
		Sys:  sys,
		Dev:  profile.NewDevice(sys.GPU),
		Topo: simnet.NewTopology(sys),
	}
}

// AddBackgroundOn marks links that carry external congestion traffic
// during communication measurement.
func (e *Engine) AddBackgroundOn(links ...simnet.LinkID) {
	e.background = append(e.background, links...)
}

// ClearBackground removes congestion.
func (e *Engine) ClearBackground() { e.background = nil }

// newSim builds a simulator, injecting one saturating background flow
// per registered congested link.
func (e *Engine) newSim() (*simnet.Sim, []simnet.FlowID) {
	sim := simnet.NewSim(e.Topo.Net)
	var bg []simnet.FlowID
	for _, l := range e.background {
		bg = append(bg, sim.Start([]simnet.LinkID{l}, 1e15))
	}
	return sim, bg
}

// runOps measures a set of concurrent one-round collective ops and
// multiplies each elapsed time by its step count.
func (e *Engine) runOps(ops []*collective.Op, steps []int) []float64 {
	sim, _ := e.newSim()
	els := collective.RunConcurrent(sim, e.Topo, ops)
	for i := range els {
		els[i] *= float64(steps[i])
	}
	return els
}

// runOp measures a single full op (small schedules: halo, p2p, bcast).
func (e *Engine) runOp(op *collective.Op) float64 {
	sim, _ := e.newSim()
	return collective.Run(sim, e.Topo, op)
}

// Measure runs one strategy under cfg and returns the per-iteration
// breakdown. Config semantics match core.Project (weak scaling for
// data/spatial/hybrids, strong scaling for filter/channel, global B).
func Measure(e *Engine, cfg core.Config, s core.Strategy) (*Result, error) {
	if cfg.Model == nil || cfg.Sys == nil {
		return nil, fmt.Errorf("measure: config requires Model and Sys")
	}
	if cfg.B <= 0 || cfg.P <= 0 || cfg.D <= 0 {
		return nil, fmt.Errorf("measure: D=%d B=%d P=%d must be positive", cfg.D, cfg.B, cfg.P)
	}
	if cfg.Segments == 0 {
		cfg.Segments = 4
	}
	if (s == core.DataFilter || s == core.DataSpatial || s == core.DataPipeline) && cfg.P1 == 0 && cfg.P2 == 0 {
		cfg.P2 = cfg.Sys.GPUsPerNode
		if cfg.P2 > cfg.P {
			cfg.P2 = cfg.P
		}
		cfg.P1 = cfg.P / cfg.P2
	}
	r := &Result{Strategy: s, Config: cfg}
	var err error
	switch s {
	case core.Serial:
		r.Iter, err = e.measureSerial(cfg)
	case core.Data:
		r.Iter, err = e.measureData(cfg)
	case core.Spatial:
		r.Iter, err = e.measureSpatial(cfg)
	case core.Filter:
		r.Iter, err = e.measureFilterChannel(cfg, false)
	case core.Channel:
		r.Iter, err = e.measureFilterChannel(cfg, true)
	case core.DataFilter:
		r.Iter, err = e.measureDataFilter(cfg)
	case core.DataSpatial:
		r.Iter, err = e.measureDataSpatial(cfg)
	case core.Pipeline:
		r.Iter, err = e.measurePipeline(cfg)
	case core.DataPipeline:
		r.Iter, err = e.measureDataPipeline(cfg)
	default:
		err = fmt.Errorf("measure: unsupported strategy %v", s)
	}
	if err != nil {
		return nil, err
	}
	// Framework friction: the paper repeatedly attributes oracle-vs-
	// measured gaps to implementation quality — the custom ChainerMNX
	// spatial/filter/channel layers, the leader-staged ds Allreduce, and
	// torchgpipe's bookkeeping are all less optimized than the mature
	// data-parallel path (§5.2, §5.3.3, Fig. 8). The calibrated
	// efficiency factors below inflate the measured forward/backward
	// times accordingly; data parallelism runs at full efficiency.
	f := frameworkEfficiency[s]
	if f == 0 {
		f = 1
	}
	r.Iter.FW /= f
	r.Iter.BW /= f
	// Distributed-iteration overhead: the multi-node training loop adds
	// bookkeeping the single-GPU profiling path (which calibrated the
	// oracle's FW/BW inputs) never sees — optimizer hooks, communicator
	// setup, solution-fidelity checks (§5.2 lists these among the
	// factors that separate measured runs from projections). Serial runs
	// ARE the profiling path and take none of it.
	if s != core.Serial {
		over := distIterOverhead + distCompFrac*(r.Iter.FW+r.Iter.BW)
		r.Iter.FW += over / 2
		r.Iter.BW += over / 2
	}
	return r, nil
}

// Calibrated distributed-loop overhead: a fixed per-iteration cost plus
// a small fraction of compute.
const (
	distIterOverhead = 1e-3
	distCompFrac     = 0.02
)

// frameworkEfficiency calibrates the maturity of each strategy's
// implementation relative to the built-in data-parallel path.
var frameworkEfficiency = map[core.Strategy]float64{
	core.Serial:       1.0,
	core.Data:         1.0,
	core.Spatial:      0.90,
	core.Filter:       0.88,
	core.Channel:      0.82,
	core.DataFilter:   0.93,
	core.DataSpatial:  0.90,
	core.Pipeline:     0.90,
	core.DataPipeline: 0.90, // torchgpipe bookkeeping inside every group
}

func (e *Engine) measureSerial(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		b.FW += e.Dev.LayerFW(l, cfg.B, 1)
		b.BW += e.Dev.LayerBW(l, cfg.B, 1)
		b.WU += e.Dev.LayerWU(l, 1)
	}
	return b, nil
}

// measureData: weak scaling, per-PE batch B/p, full model replica,
// ring Allreduce of all weight gradients.
func (e *Engine) measureData(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	micro := cfg.B / cfg.P
	if micro < 1 {
		return b, fmt.Errorf("measure: data parallelism needs B≥P (B=%d, P=%d)", cfg.B, cfg.P)
	}
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		b.FW += e.Dev.LayerFW(l, micro, 1)
		b.BW += e.Dev.LayerBW(l, micro, 1)
		b.WU += e.Dev.LayerWU(l, 1)
	}
	if cfg.P > 1 {
		m := float64(cfg.Model.TotalWeights()) * cfg.Sys.BytesPerItem
		op, steps := collective.RingRound("allreduce", strategy.AllPEs(cfg.P), m/float64(cfg.P), false)
		b.GE = e.runOps([]*collective.Op{op}, []int{steps})[0]
	}
	return b, nil
}

// measureSpatial: every PE works on the full batch over 1/p of the
// spatial extent; FC head replicated; halo over MPI; final Allgatherv
// before the head; gradient Allreduce.
func (e *Engine) measureSpatial(cfg core.Config) (core.Breakdown, error) {
	return e.spatialGroup(cfg, strategy.AllPEs(cfg.P), cfg.B, true)
}

// spatialGroup prices one spatial group of PEs processing batch samples
// jointly; withGE adds the global gradient exchange over all PEs.
func (e *Engine) spatialGroup(cfg core.Config, pes []int, batch int, withGE bool) (core.Breakdown, error) {
	var b core.Breakdown
	p := len(pes)
	if lim := cfg.Model.MinSpatial(); p > lim {
		return b, fmt.Errorf("measure: spatial p=%d exceeds extent limit %d", p, lim)
	}
	frac := 1.0 / float64(p)
	var haloTotal float64
	var lastTrunk *nn.Layer
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		if l.Kind == nn.FC {
			// Replicated head: full compute on every PE (§4.5.1).
			b.FW += e.Dev.LayerFW(l, batch, 1)
			b.BW += e.Dev.LayerBW(l, batch, 1)
			b.WU += e.Dev.LayerWU(l, 1)
			continue
		}
		lastTrunk = l
		b.FW += e.Dev.LayerFW(l, batch, frac)
		b.BW += e.Dev.LayerBW(l, batch, frac)
		b.WU += e.Dev.LayerWU(l, 1)
		if halo := l.HaloSize(0, p) + l.HaloSizeOut(0, p); halo > 0 && p > 1 {
			bytes := float64(batch) * float64(halo) * cfg.Sys.BytesPerItem
			haloTotal += e.runOp(collective.HaloExchangeOp(pes, bytes, true))
		}
	}
	b.Halo = haloTotal
	// Allgatherv collecting the trunk output before the replicated head
	// (over MPI: NCCL lacks Allgatherv, §5.1).
	if lastTrunk != nil && p > 1 {
		chunk := float64(batch) * float64(lastTrunk.OutSize()) / float64(p) * cfg.Sys.BytesPerItem
		op, steps := collective.RingRound("allgather", pes, chunk, true)
		b.Scatter = e.runOps([]*collective.Op{op}, []int{steps})[0]
	}
	if withGE && cfg.P > 1 {
		m := float64(cfg.Model.TotalWeights()) * cfg.Sys.BytesPerItem
		op, steps := collective.RingRound("allreduce", strategy.AllPEs(cfg.P), m/float64(cfg.P), false)
		b.GE = e.runOps([]*collective.Op{op}, []int{steps})[0]
	}
	return b, nil
}

// measureFilterChannel: strong scaling; each PE holds F/p filters (or
// C/p channels), pays layer-wise collectives plus the split/concat
// framework overhead of Fig. 8.
func (e *Engine) measureFilterChannel(cfg core.Config, channel bool) (core.Breakdown, error) {
	var b core.Breakdown
	limit := cfg.Model.MinFilters()
	if channel {
		limit = cfg.Model.MinChannels()
	}
	if cfg.P > limit {
		return b, fmt.Errorf("measure: p=%d exceeds the model-shape limit %d", cfg.P, limit)
	}
	p := float64(cfg.P)
	frac := 1.0 / p
	pes := strategy.AllPEs(cfg.P)

	var ops []*collective.Op
	var steps []int
	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		b.FW += e.Dev.LayerFW(l, cfg.B, frac)
		b.BW += e.Dev.LayerBW(l, cfg.B, frac)
		b.WU += e.Dev.LayerWU(l, frac)
		if cfg.P > 1 && i < cfg.Model.G()-1 {
			outBytes := float64(cfg.B) * float64(l.OutSize()) * cfg.Sys.BytesPerItem
			// Split/concat rearrangement: one extra elementwise pass over
			// the boundary activation in each direction (Fig. 8).
			b.FW += e.Dev.KernelTime(profile.ElementwiseClass, 0, outBytes)
			b.BW += e.Dev.KernelTime(profile.ElementwiseClass, 0, outBytes)
			if channel {
				// The channel implementation additionally re-scatters the
				// gathered activation into per-PE input shards from the
				// second layer on (§4.5.1), costing one more pass.
				b.FW += e.Dev.KernelTime(profile.ElementwiseClass, 0, outBytes)
			}
			// Forward Allgather (filter) or Allreduce (channel), and the
			// converse in backward — both 3(p−1) chunk-rounds total.
			agOp, agSteps := collective.RingRound("allgather", pes, outBytes/p, false)
			arOp, arSteps := collective.RingRound("allreduce", pes, outBytes/p, false)
			ops = append(ops, agOp, arOp)
			steps = append(steps, agSteps, arSteps)
		}
	}
	if len(ops) > 0 {
		// Layer collectives are serialized (layer l+1 cannot start before
		// l's Allgather), so measure sequentially.
		for i, op := range ops {
			b.FBComm += e.runOps([]*collective.Op{op}, []int{steps[i]})[0]
		}
	}
	return b, nil
}

// measureDataFilter: p1 groups (inter-node) × p2-way filter
// (intra-node), segmented gradient Allreduce with real link contention.
func (e *Engine) measureDataFilter(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	if cfg.P1*cfg.P2 != cfg.P {
		return b, fmt.Errorf("measure: P1·P2=%d·%d ≠ P=%d", cfg.P1, cfg.P2, cfg.P)
	}
	if lim := cfg.Model.MinFilters(); cfg.P2 > lim {
		return b, fmt.Errorf("measure: P2=%d exceeds filter limit %d", cfg.P2, lim)
	}
	micro := cfg.B / cfg.P1
	if micro < 1 {
		return b, fmt.Errorf("measure: df needs B≥P1")
	}
	groups, segments, err := strategy.HybridGroups(cfg.P1, cfg.P2)
	if err != nil {
		return b, err
	}
	frac := 1.0 / float64(cfg.P2)

	for i := range cfg.Model.Layers {
		l := &cfg.Model.Layers[i]
		b.FW += e.Dev.LayerFW(l, micro, frac)
		b.BW += e.Dev.LayerBW(l, micro, frac)
		b.WU += e.Dev.LayerWU(l, frac)
		if cfg.P2 > 1 && i < cfg.Model.G()-1 {
			outBytes := float64(micro) * float64(l.OutSize()) * cfg.Sys.BytesPerItem
			b.FW += e.Dev.KernelTime(profile.ElementwiseClass, 0, outBytes)
			b.BW += e.Dev.KernelTime(profile.ElementwiseClass, 0, outBytes)
			// All groups run their intra-group collectives concurrently on
			// disjoint intra-node links; measuring group 0 suffices.
			agOp, agSteps := collective.RingRound("allgather", groups[0], outBytes/float64(cfg.P2), false)
			arOp, arSteps := collective.RingRound("allreduce", groups[0], outBytes/float64(cfg.P2), false)
			b.FBComm += e.runOps([]*collective.Op{agOp}, []int{agSteps})[0]
			b.FBComm += e.runOps([]*collective.Op{arOp}, []int{arSteps})[0]
		}
	}
	// Segmented Allreduce: p2 concurrent rings, one per weight shard,
	// sharing every node's uplink — the φ contention arises in the
	// fabric rather than by assumption.
	if cfg.P1 > 1 {
		shard := float64(cfg.Model.TotalWeights()) * cfg.Sys.BytesPerItem / float64(cfg.P2)
		ops := make([]*collective.Op, len(segments))
		steps := make([]int, len(segments))
		for k, seg := range segments {
			ops[k], steps[k] = collective.RingRound("allreduce", seg, shard/float64(cfg.P1), false)
		}
		els := e.runOps(ops, steps)
		for _, el := range els {
			if el > b.GE {
				b.GE = el
			}
		}
	}
	return b, nil
}

// measureDataSpatial: p1 groups × p2-way spatial (intra-node), halo
// over MPI, hierarchical leader Allreduce (§4.5.1).
func (e *Engine) measureDataSpatial(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	if cfg.P1*cfg.P2 != cfg.P {
		return b, fmt.Errorf("measure: P1·P2=%d·%d ≠ P=%d", cfg.P1, cfg.P2, cfg.P)
	}
	micro := cfg.B / cfg.P1
	if micro < 1 {
		micro = 1
	}
	groups, _, err := strategy.HybridGroups(cfg.P1, cfg.P2)
	if err != nil {
		return b, err
	}
	// One spatial group's work (groups are symmetric; no GE inside).
	b, err = e.spatialGroup(cfg, groups[0], micro, false)
	if err != nil {
		return b, err
	}
	// Hierarchical gradient exchange: tree-reduce to the node leader,
	// ring Allreduce among leaders, tree-broadcast back.
	m := float64(cfg.Model.TotalWeights()) * cfg.Sys.BytesPerItem
	if cfg.P2 > 1 {
		leaders := make([]int, cfg.P1)
		for g := range groups {
			leaders[g] = groups[g][0]
		}
		b.GE += e.runOp(reverseBcast(groups[0], m))
		if cfg.P1 > 1 {
			op, steps := collective.RingRound("allreduce", leaders, m/float64(cfg.P1), false)
			b.GE += e.runOps([]*collective.Op{op}, []int{steps})[0]
		}
		b.GE += e.runOp(collective.BcastOp(groups[0], m))
	} else if cfg.P1 > 1 {
		op, steps := collective.RingRound("allreduce", strategy.AllPEs(cfg.P), m/float64(cfg.P), false)
		b.GE += e.runOps([]*collective.Op{op}, []int{steps})[0]
	}
	return b, nil
}

// reverseBcast builds the leader-rooted tree REDUCE of an m-byte buffer
// (the mirror image of BcastOp's rounds).
func reverseBcast(pes []int, m float64) *collective.Op {
	fwd := collective.BcastOp(pes, m)
	rev := &collective.Op{Name: "reduce"}
	for i := len(fwd.Rounds) - 1; i >= 0; i-- {
		round := make([]collective.FlowSpec, len(fwd.Rounds[i]))
		for j, f := range fwd.Rounds[i] {
			round[j] = collective.FlowSpec{Src: f.Dst, Dst: f.Src, Bytes: f.Bytes, MPI: f.MPI}
		}
		rev.Rounds = append(rev.Rounds, round)
	}
	return rev
}

// measurePipeline: GPipe-style stages over the oracle's balanced
// partition; stage times priced per micro-batch on the device model,
// with (p+S−1) stage slots and boundary P2P transfers.
func (e *Engine) measurePipeline(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	if cfg.P > cfg.Model.G() {
		return b, fmt.Errorf("measure: pipeline p=%d exceeds G=%d", cfg.P, cfg.Model.G())
	}
	times := profile.ProfileModel(e.Dev, cfg.Model, maxInt(1, cfg.B/cfg.Segments))
	groups := core.PartitionPipeline(times, cfg.P)
	s := cfg.Segments
	microB := maxInt(1, cfg.B/s)

	var maxFW, maxBW, maxWU float64
	var maxBoundaryBytes float64
	for gi, g := range groups {
		var fw, bw, wu float64
		for l := g.Start; l < g.End; l++ {
			ly := &cfg.Model.Layers[l]
			fw += e.Dev.LayerFW(ly, microB, 1)
			bw += e.Dev.LayerBW(ly, microB, 1)
			wu += e.Dev.LayerWU(ly, 1)
		}
		if fw > maxFW {
			maxFW = fw
		}
		if bw > maxBW {
			maxBW = bw
		}
		if wu > maxWU {
			maxWU = wu
		}
		if gi < len(groups)-1 {
			bytes := float64(microB) * float64(cfg.Model.Layers[g.End-1].OutSize()) * cfg.Sys.BytesPerItem
			if bytes > maxBoundaryBytes {
				maxBoundaryBytes = bytes
			}
		}
	}
	slots := float64(cfg.P + s - 1)
	b.FW = slots * maxFW
	b.BW = slots * maxBW
	b.WU = maxWU
	if cfg.P > 1 && maxBoundaryBytes > 0 {
		p2p := e.runOp(collective.P2POp(0, 1, maxBoundaryBytes, false))
		b.PipeP2P = 2 * float64(cfg.P+s-2) * p2p
	}
	return b, nil
}

// measureDataPipeline: GPipe pipelines of depth p2 inside each of p1
// data-parallel groups, each on its batch shard B/p1 (the §3.6 grid the
// runtime's dp engine executes). Intra-group stage P2P is measured on
// group 0 (groups run concurrently on disjoint links); the segmented
// cross-group exchange runs one ring per stage — p2 concurrent
// Allreduces of that stage's weights over the p1 groups — so the φ
// uplink contention arises in the fabric, as in measureDataFilter.
func (e *Engine) measureDataPipeline(cfg core.Config) (core.Breakdown, error) {
	var b core.Breakdown
	if cfg.P1*cfg.P2 != cfg.P {
		return b, fmt.Errorf("measure: P1·P2=%d·%d ≠ P=%d", cfg.P1, cfg.P2, cfg.P)
	}
	if cfg.P2 > cfg.Model.G() {
		return b, fmt.Errorf("measure: dp stage depth p2=%d exceeds G=%d", cfg.P2, cfg.Model.G())
	}
	bg := cfg.B / cfg.P1
	if bg < 1 {
		return b, fmt.Errorf("measure: dp needs B≥P1 (B=%d, P1=%d)", cfg.B, cfg.P1)
	}
	// One group's schedule IS the pure pipeline measurement at depth p2
	// on the batch shard (the p1=1 edge measures identically).
	stage := cfg
	stage.P = cfg.P2
	stage.B = bg
	b, err := e.measurePipeline(stage)
	if err != nil {
		return b, err
	}
	if cfg.P1 > 1 {
		// Same stage partition measurePipeline used for this workload.
		times := profile.ProfileModel(e.Dev, cfg.Model, maxInt(1, bg/cfg.Segments))
		groups := core.PartitionPipeline(times, cfg.P2)
		_, segments, err := strategy.HybridGroups(cfg.P1, cfg.P2)
		if err != nil {
			return b, err
		}
		ops := make([]*collective.Op, 0, len(segments))
		steps := make([]int, 0, len(segments))
		for k, seg := range segments {
			if k >= len(groups) {
				continue
			}
			shard := 0.0
			for l := groups[k].Start; l < groups[k].End; l++ {
				shard += float64(cfg.Model.Layers[l].WeightSize()) * cfg.Sys.BytesPerItem
			}
			if shard == 0 {
				continue
			}
			op, st := collective.RingRound("allreduce", seg, shard/float64(cfg.P1), false)
			ops = append(ops, op)
			steps = append(steps, st)
		}
		for _, el := range e.runOps(ops, steps) {
			b.GE = math.Max(b.GE, el)
		}
	}
	return b, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
