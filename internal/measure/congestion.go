package measure

import (
	"fmt"
	"math/rand"
	"sort"

	"paradl/internal/collective"
	"paradl/internal/simnet"
	"paradl/internal/strategy"
)

// ImpactFactor summarizes a GPCNeT-style congestion probe (§4.3: the
// oracle's clean-fabric baseline "can be complemented with a congestion
// impact factor, which can be empirically estimated as in [7]" to
// predict real-world shared-system performance).
type ImpactFactor struct {
	// Mean, P99 and Max are measured/clean inflation ratios across the
	// probe trials.
	Mean, P99, Max float64
	Trials         int
}

// EstimateImpactFactor runs repeated ring-Allreduce probes among p PEs
// on a fabric whose node uplinks each carry `load` expected background
// flows (Poisson-ish via per-trial sampling), and returns the inflation
// statistics relative to the uncongested fabric.
func EstimateImpactFactor(e *Engine, p int, bytes float64, load float64, trials int, seed int64) (ImpactFactor, error) {
	if p < 2 {
		return ImpactFactor{}, fmt.Errorf("measure: impact factor needs p ≥ 2")
	}
	if trials < 1 {
		return ImpactFactor{}, fmt.Errorf("measure: need at least one trial")
	}
	pes := strategy.AllPEs(p)
	rng := rand.New(rand.NewSource(seed))

	// Clean baseline.
	op, steps := collective.RingRound("allreduce", pes, bytes/float64(p), false)
	cleanSim := simnet.NewSim(e.Topo.Net)
	clean := collective.RunConcurrent(cleanSim, e.Topo, []*collective.Op{op})[0] * float64(steps)
	if clean <= 0 {
		return ImpactFactor{}, fmt.Errorf("measure: degenerate clean baseline")
	}

	ratios := make([]float64, 0, trials)
	nodes := p / e.Sys.GPUsPerNode
	if nodes < 1 {
		nodes = 1
	}
	for tr := 0; tr < trials; tr++ {
		sim := simnet.NewSim(e.Topo.Net)
		// Sample background flows per node uplink: expected `load`
		// flows each, geometric-ish via repeated Bernoulli draws.
		for n := 0; n < nodes; n++ {
			pe := n * e.Sys.GPUsPerNode
			for k := 0; k < 4; k++ {
				if rng.Float64() < load/4 {
					sim.Start([]simnet.LinkID{e.Topo.UplinkOf(pe + k%e.Sys.GPUsPerNode)}, 1e15)
				}
			}
		}
		probe, pSteps := collective.RingRound("allreduce", pes, bytes/float64(p), false)
		el := collective.RunConcurrent(sim, e.Topo, []*collective.Op{probe})[0] * float64(pSteps)
		ratios = append(ratios, el/clean)
	}
	sort.Float64s(ratios)
	sum := 0.0
	for _, r := range ratios {
		sum += r
	}
	idx99 := int(float64(len(ratios))*0.99) - 1
	if idx99 < 0 {
		idx99 = 0
	}
	return ImpactFactor{
		Mean:   sum / float64(len(ratios)),
		P99:    ratios[idx99],
		Max:    ratios[len(ratios)-1],
		Trials: trials,
	}, nil
}
