package measure

import (
	"testing"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/model"
)

func TestImpactFactorCleanFabricIsOne(t *testing.T) {
	e := NewEngine(cluster.Default())
	f, err := EstimateImpactFactor(e, 32, 100e6, 0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mean < 0.999 || f.Mean > 1.001 {
		t.Fatalf("zero load must give factor ≈1, got %.4f", f.Mean)
	}
}

func TestImpactFactorGrowsWithLoad(t *testing.T) {
	e := NewEngine(cluster.Default())
	light, err := EstimateImpactFactor(e, 32, 100e6, 0.3, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := EstimateImpactFactor(e, 32, 100e6, 2.0, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Mean <= light.Mean {
		t.Fatalf("heavier load must inflate more: %.3f vs %.3f", heavy.Mean, light.Mean)
	}
	if heavy.Max < heavy.Mean || heavy.P99 > heavy.Max {
		t.Fatalf("statistics ordering broken: %+v", heavy)
	}
	if heavy.Mean > 6 {
		t.Fatalf("mean inflation %.2f beyond plausible regime", heavy.Mean)
	}
}

func TestImpactFactorValidation(t *testing.T) {
	e := NewEngine(cluster.Default())
	if _, err := EstimateImpactFactor(e, 1, 1e6, 1, 3, 1); err == nil {
		t.Fatal("p<2 must be rejected")
	}
	if _, err := EstimateImpactFactor(e, 8, 1e6, 1, 0, 1); err == nil {
		t.Fatal("zero trials must be rejected")
	}
}

func TestProjectionWithCongestionFactor(t *testing.T) {
	sys := cluster.Default()
	e := NewEngine(sys)
	m := model.ResNet50()
	cfg := weakCfg(t, m, 64, 32)

	pr, err := core.Project(cfg, core.Data)
	if err != nil {
		t.Fatal(err)
	}
	f, err := EstimateImpactFactor(e, 64, 100e6, 1.0, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	adjusted := pr.WithCongestionFactor(f.Mean)
	if adjusted.Epoch.GE <= pr.Epoch.GE {
		t.Fatal("congestion factor must inflate GE")
	}
	if adjusted.Epoch.Comp() != pr.Epoch.Comp() {
		t.Fatal("congestion must not touch compute")
	}
	// below-1 factors clamp
	same := pr.WithCongestionFactor(0.5)
	if same.Epoch.GE != pr.Epoch.GE {
		t.Fatal("factor<1 must clamp to 1")
	}
}
