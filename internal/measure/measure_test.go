package measure

import (
	"testing"

	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

func engine(t testing.TB) *Engine {
	t.Helper()
	return NewEngine(cluster.Default())
}

func weakCfg(t testing.TB, m *nn.Model, p, perPE int) core.Config {
	t.Helper()
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	return core.Config{
		Model: m, Sys: sys,
		Times: profile.ProfileModel(dev, m, perPE),
		D:     model.ImageNetSamples,
		B:     perPE * p,
		P:     p,
	}
}

func strongCfg(t testing.TB, m *nn.Model, p, b int) core.Config {
	t.Helper()
	cfg := weakCfg(t, m, p, 1)
	cfg.B = b
	cfg.Times = profile.ProfileModel(profile.NewDevice(cfg.Sys.GPU), m, b)
	return cfg
}

func TestDataAccuracyHigh(t *testing.T) {
	// §5.2: ParaDL reaches 96.10% average accuracy for data parallelism
	// and up to 97.57%. Our clean-fabric measurement should agree to
	// ≥90% at every scale.
	e := engine(t)
	m := model.ResNet50()
	for _, p := range []int{16, 64, 256, 1024} {
		cfg := weakCfg(t, m, p, 32)
		res, err := Measure(e, cfg, core.Data)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := core.Project(cfg, core.Data)
		if err != nil {
			t.Fatal(err)
		}
		if acc := res.Accuracy(pr); acc < 0.90 {
			t.Fatalf("data accuracy %.3f at p=%d below 0.90", acc, p)
		}
	}
}

func TestAccuracyOrderingDataAboveChannel(t *testing.T) {
	// The paper's per-strategy accuracies order data (96.10%) well above
	// channel (73.67%): the custom channel implementation diverges most
	// from the ideal model.
	e := engine(t)
	m := model.ResNet50()

	cfgD := weakCfg(t, m, 64, 32)
	resD, err := Measure(e, cfgD, core.Data)
	if err != nil {
		t.Fatal(err)
	}
	prD, _ := core.Project(cfgD, core.Data)

	cfgC := strongCfg(t, m, 64, 32)
	resC, err := Measure(e, cfgC, core.Channel)
	if err != nil {
		t.Fatal(err)
	}
	prC, _ := core.Project(cfgC, core.Channel)

	if resD.Accuracy(prD) <= resC.Accuracy(prC) {
		t.Fatalf("data accuracy %.3f must exceed channel accuracy %.3f",
			resD.Accuracy(prD), resC.Accuracy(prC))
	}
}

func TestFilterCommExceedsDataComm(t *testing.T) {
	// §5.3.1: with batch ≥32 the measured layer-wise communication of
	// filter/channel exceeds data parallelism's gradient exchange even
	// though total activations are smaller than the weights.
	e := engine(t)
	m := model.ResNet50()
	resF, err := Measure(e, strongCfg(t, m, 16, 32), core.Filter)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := Measure(e, weakCfg(t, m, 16, 32), core.Data)
	if err != nil {
		t.Fatal(err)
	}
	if resF.Iter.Comm() <= resD.Iter.Comm() {
		t.Fatalf("filter comm %g must exceed data comm %g",
			resF.Iter.Comm(), resD.Iter.Comm())
	}
}

func TestFilterComputeScalesWorseThanIdeal(t *testing.T) {
	// Fig. 8: halving the filters per GPU does NOT halve the measured
	// convolution time — small kernels lose efficiency and split/concat
	// overhead is constant.
	e := engine(t)
	m := model.ResNet50()
	res16, err := Measure(e, strongCfg(t, m, 16, 32), core.Filter)
	if err != nil {
		t.Fatal(err)
	}
	res64, err := Measure(e, strongCfg(t, m, 64, 32), core.Filter)
	if err != nil {
		t.Fatal(err)
	}
	idealRatio := 4.0 // 16 → 64 GPUs divides work by 4
	actualRatio := (res16.Iter.FW + res16.Iter.BW) / (res64.Iter.FW + res64.Iter.BW)
	if actualRatio >= idealRatio*0.9 {
		t.Fatalf("filter compute scaled by %.2f×, suspiciously close to ideal %g×", actualRatio, idealRatio)
	}
	if actualRatio <= 1.0 {
		t.Fatalf("filter compute must still shrink with p (ratio %.2f)", actualRatio)
	}
}

func TestChannelSlowerThanFilter(t *testing.T) {
	// §4.5.1: channel parallelism needs the extra input re-scatter from
	// the second layer on, so its measured compute exceeds filter's.
	e := engine(t)
	m := model.VGG16()
	f, err := Measure(e, strongCfg(t, m, 16, 32), core.Filter)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Measure(e, strongCfg(t, m, 16, 32), core.Channel)
	if err != nil {
		t.Fatal(err)
	}
	if c.Iter.Comp() <= f.Iter.Comp() {
		t.Fatalf("channel compute %g must exceed filter compute %g", c.Iter.Comp(), f.Iter.Comp())
	}
}

func TestSpatialHaloOnMPIPath(t *testing.T) {
	e := engine(t)
	m := model.ResNet50()
	cfg := weakCfg(t, m, 4, 8)
	res, err := Measure(e, cfg, core.Spatial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iter.Halo <= 0 {
		t.Fatal("spatial must measure halo time")
	}
	if res.Iter.Scatter <= 0 {
		t.Fatal("spatial must pay the pre-head Allgatherv")
	}
}

func TestSpatialLimitEnforced(t *testing.T) {
	e := engine(t)
	m := model.ResNet50() // MinSpatial is 64 (8×8 trunk tail)
	cfg := weakCfg(t, m, 128, 1)
	if _, err := Measure(e, cfg, core.Spatial); err == nil {
		t.Fatal("spatial beyond the extent limit must error")
	}
}

func TestDataFilterSegmentedGE(t *testing.T) {
	// df's segmented Allreduce contends on the node uplinks: its GE must
	// exceed HALF the plain data GE of the same weight volume (it moves
	// 1/p2 of the bytes but φ≈2 eats the advantage).
	e := engine(t)
	m := model.VGG16()
	cfg := weakCfg(t, m, 64, 8)
	cfg.P1, cfg.P2 = 16, 4
	df, err := Measure(e, cfg, core.DataFilter)
	if err != nil {
		t.Fatal(err)
	}
	if df.Iter.GE <= 0 || df.Iter.FBComm <= 0 {
		t.Fatal("df needs both GE and intra-group comm")
	}
	d, err := Measure(e, weakCfg(t, m, 64, 8), core.Data)
	if err != nil {
		t.Fatal(err)
	}
	if df.Iter.GE >= d.Iter.GE {
		t.Fatalf("df segmented GE %g should still beat full data GE %g (smaller shard)", df.Iter.GE, d.Iter.GE)
	}
	if df.Iter.GE < d.Iter.GE/float64(cfg.P2)*1.2 {
		t.Fatalf("df GE %g suspiciously fast — φ contention missing (data GE %g, p2=%d)", df.Iter.GE, d.Iter.GE, cfg.P2)
	}
}

func TestDataSpatialGEOverhead(t *testing.T) {
	// §5.3.1: the hierarchical ds Allreduce costs >2× the plain data
	// Allreduce (leader staging moves the full buffer twice on NVLink).
	e := engine(t)
	m := model.ResNet50()
	cfg := weakCfg(t, m, 64, 8)
	cfg.P1, cfg.P2 = 16, 4
	ds, err := Measure(e, cfg, core.DataSpatial)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Measure(e, weakCfg(t, m, 64, 8), core.Data)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ds.Iter.GE / d.Iter.GE
	if ratio < 1.5 {
		t.Fatalf("ds GE should be ≳2× data GE, got %.2f×", ratio)
	}
}

func TestPipelineBubbleShape(t *testing.T) {
	// Doubling the segments shrinks the per-iteration bubble: with p=4,
	// compute time scales as (p+S−1)/S per micro-batch slot.
	e := engine(t)
	m := model.VGG16()
	cfg := weakCfg(t, m, 4, 8)
	cfg.B = 32
	cfg.Segments = 2
	s2, err := Measure(e, cfg, core.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Segments = 8
	s8, err := Measure(e, cfg, core.Pipeline)
	if err != nil {
		t.Fatal(err)
	}
	if s8.Iter.Comp() >= s2.Iter.Comp() {
		t.Fatalf("more segments must reduce bubble: S=8 %g vs S=2 %g", s8.Iter.Comp(), s2.Iter.Comp())
	}
}

func TestPipelineLimitEnforced(t *testing.T) {
	e := engine(t)
	m := model.Tiny3D() // 7 layers
	cfg := weakCfg(t, m, 8, 4)
	if _, err := Measure(e, cfg, core.Pipeline); err == nil {
		t.Fatal("pipeline with p > G must error")
	}
}

func TestBackgroundCongestionInflatesGE(t *testing.T) {
	// Fig. 6: external traffic pushes Allreduce times up to ≈4× the
	// α–β line.
	m := model.ResNet50()
	cfg := weakCfg(t, m, 16, 32)

	clean := NewEngine(cluster.Default())
	base, err := Measure(clean, cfg, core.Data)
	if err != nil {
		t.Fatal(err)
	}

	congested := NewEngine(cluster.Default())
	for pe := 0; pe < 16; pe += congested.Sys.GPUsPerNode {
		congested.AddBackgroundOn(congested.Topo.UplinkOf(pe + 3))
	}
	slow, err := Measure(congested, cfg, core.Data)
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow.Iter.GE / base.Iter.GE
	if ratio < 1.3 {
		t.Fatalf("congestion ratio %.2f too small", ratio)
	}
	if ratio > 6 {
		t.Fatalf("congestion ratio %.2f beyond Fig. 6's ≈4× regime", ratio)
	}
}

func TestEpochScalesIterations(t *testing.T) {
	e := engine(t)
	m := model.ResNet50()
	cfg := weakCfg(t, m, 16, 32)
	res, err := Measure(e, cfg, core.Data)
	if err != nil {
		t.Fatal(err)
	}
	iters := float64(cfg.D) / float64(cfg.B)
	if got, want := res.Epoch().Total(), res.Iter.Total()*iters; got < want*0.999 || got > want*1.001 {
		t.Fatalf("epoch %g != iter × iterations %g", got, want)
	}
}

func TestMeasureValidation(t *testing.T) {
	e := engine(t)
	m := model.ResNet50()
	cfg := weakCfg(t, m, 16, 32)
	cfg.B = 0
	if _, err := Measure(e, cfg, core.Data); err == nil {
		t.Fatal("B=0 must be rejected")
	}
	cfg = weakCfg(t, m, 16, 32)
	cfg.B = 8 // fewer samples than PEs
	if _, err := Measure(e, cfg, core.Data); err == nil {
		t.Fatal("B<P data parallelism must be rejected")
	}
}

func TestSerialMatchesOracleExactly(t *testing.T) {
	// Serial has no communication and both sides price compute from the
	// same device model, so they must agree almost exactly.
	e := engine(t)
	m := model.VGG16()
	cfg := weakCfg(t, m, 1, 32)
	res, err := Measure(e, cfg, core.Serial)
	if err != nil {
		t.Fatal(err)
	}
	pr, _ := core.Project(cfg, core.Serial)
	if acc := res.Accuracy(pr); acc < 0.999 {
		t.Fatalf("serial accuracy %.4f should be ≈1", acc)
	}
}

// MeasurePlan must be exactly Measure with the grid taken from the
// plan: bit-identical breakdowns for pure widths and explicit hybrid
// factorizations, plan validation errors surfaced, and a stale
// cfg.P/P1/P2 overwritten rather than trusted.
func TestMeasurePlanMatchesMeasure(t *testing.T) {
	e := engine(t)
	m := model.ResNet50()
	cases := []struct {
		plan      string
		p, p1, p2 int
	}{
		{"data:8", 8, 0, 0},
		{"pipeline:4", 4, 0, 0},
		{"df:4x2", 8, 4, 2},
		{"ds:2x4", 8, 2, 4},
	}
	for _, c := range cases {
		pl, err := dist.ParsePlan(c.plan)
		if err != nil {
			t.Fatal(err)
		}
		cfg := weakCfg(t, m, c.p, 4)
		cfg.P1, cfg.P2 = c.p1, c.p2
		want, err := Measure(e, cfg, pl.Strategy)
		if err != nil {
			t.Fatalf("Measure(%s): %v", c.plan, err)
		}
		// Hand MeasurePlan a config with a WRONG grid: the plan must win.
		stale := cfg
		stale.P, stale.P1, stale.P2 = 2, 2, 1
		got, err := MeasurePlan(e, stale, pl)
		if err != nil {
			t.Fatalf("MeasurePlan(%s): %v", c.plan, err)
		}
		if got.Iter != want.Iter {
			t.Errorf("%s: MeasurePlan iter %+v != Measure iter %+v", c.plan, got.Iter, want.Iter)
		}
		if got.Config.P != c.p {
			t.Errorf("%s: P = %d, want %d", c.plan, got.Config.P, c.p)
		}
	}
	if _, err := MeasurePlan(e, weakCfg(t, m, 4, 4), dist.Plan{Strategy: core.Data}); err == nil {
		t.Error("invalid plan (zero width axis) accepted")
	}
}
