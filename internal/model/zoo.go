// Package model is the model zoo of the reproduction: the four CNNs the
// paper evaluates (Table 5) plus small test networks for the real
// distributed-execution harness.
//
// The zoo builds layer lists with exact tensor geometry; parameter
// counts therefore come out of the same accounting the oracle uses.
// Deviations from the paper's rounded numbers (e.g. VGG16 ≈169M in
// Table 5 vs ≈138M from the canonical architecture) are recorded in
// EXPERIMENTS.md.
package model

import (
	"fmt"

	"paradl/internal/nn"
)

// ImageNet sample geometry used by the paper (Table 5): 3 × 226².
const (
	ImageNetChannels = 3
	ImageNetSide     = 226
	ImageNetClasses  = 1000
	// ImageNetSamples is the dataset size D (1.28M).
	ImageNetSamples = 1_281_167
)

// CosmoFlow sample geometry (Table 5): 4 × 256³, 1584 samples.
const (
	CosmoFlowChannels = 4
	CosmoFlowSide     = 256
	CosmoFlowTargets  = 4
	CosmoFlowSamples  = 1584
)

// VGG16 builds the 16-weight-layer VGG configuration D on ImageNet
// geometry: 13 convolutions in five blocks with 2×2 max-pooling, then
// three fully-connected layers.
func VGG16() *nn.Model {
	b := nn.NewBuilder("vgg16", ImageNetChannels, []int{ImageNetSide, ImageNetSide})
	block := func(f, convs int) {
		for i := 0; i < convs; i++ {
			b.Conv(f, 3, 1, 1).ReLU()
		}
		b.Pool(nn.MaxPool, 2, 2, 0)
	}
	block(64, 2)
	block(128, 2)
	block(256, 3)
	block(512, 3)
	block(512, 3)
	b.FC(4096).ReLU()
	b.FC(4096).ReLU()
	b.FC(ImageNetClasses)
	return b.MustBuild()
}

// resNet builds a bottleneck ResNet with the given block counts per
// stage (ResNet-50: 3,4,6,3; ResNet-152: 3,8,36,3) on ImageNet geometry.
func resNet(name string, blocks [4]int) *nn.Model {
	b := nn.NewBuilder(name, ImageNetChannels, []int{ImageNetSide, ImageNetSide})
	// Stem: 7×7/2 conv, BN, ReLU, 3×3/2 max-pool.
	b.Conv(64, 7, 2, 3).BatchNorm().ReLU()
	b.Pool(nn.MaxPool, 3, 2, 1)

	width := []int{64, 128, 256, 512}
	for stage := 0; stage < 4; stage++ {
		f := width[stage]
		for blk := 0; blk < blocks[stage]; blk++ {
			stride := 1
			if stage > 0 && blk == 0 {
				stride = 2
			}
			inC, inDims := b.Snapshot()
			// Bottleneck: 1×1 reduce, 3×3 (strided on stage entry),
			// 1×1 expand ×4, BN+ReLU after each conv.
			b.Conv(f, 1, 1, 0).BatchNorm().ReLU()
			b.Conv(f, 3, stride, 1).BatchNorm().ReLU()
			b.Conv(4*f, 1, 1, 0).BatchNorm()
			if blk == 0 {
				// Projection shortcut from the block input.
				b.ShortcutConv(inC, inDims, 4*f, 1, stride, 0)
			}
			b.ReLU()
		}
	}
	// Head: global average pool to 1×1, then the classifier.
	_, dims := b.Snapshot()
	b.Pool(nn.AvgPool, dims[0], dims[0], 0)
	b.FC(ImageNetClasses)
	return b.MustBuild()
}

// ResNet50 builds ResNet-50 (≈25.5M parameters).
func ResNet50() *nn.Model { return resNet("resnet50", [4]int{3, 4, 6, 3}) }

// ResNet152 builds ResNet-152 (≈60M parameters).
func ResNet152() *nn.Model { return resNet("resnet152", [4]int{3, 8, 36, 3}) }

// CosmoFlow builds the 3-D CosmoFlow regression network (Mathuriya et
// al., SC'18) on 4×256³ inputs: seven 3-D convolutions with 2³ average
// pooling after each, then a small fully-connected head (≈2.5M
// parameters, ≈20 weighted+pool layers as in Table 5).
func CosmoFlow() *nn.Model {
	side := CosmoFlowSide
	b := nn.NewBuilder("cosmoflow", CosmoFlowChannels, []int{side, side, side})
	chans := []int{16, 32, 64, 128, 256}
	for _, f := range chans {
		b.Conv(f, 3, 1, 1).ReLU()
		b.Pool(nn.AvgPool, 2, 2, 0)
	}
	// Two 2³ convolutions keep the parameter budget near the paper's 2M.
	for i := 0; i < 2; i++ {
		b.Conv(256, 2, 1, 1).ReLU()
		b.Pool(nn.AvgPool, 2, 2, 0)
	}
	b.FC(128).ReLU()
	b.FC(64).ReLU()
	b.FC(CosmoFlowTargets)
	return b.MustBuild()
}

// CosmoFlowAt builds the CosmoFlow network for a reduced cube side
// (e.g. 128 for scaling studies); side must be a multiple of 32.
func CosmoFlowAt(side int) *nn.Model {
	if side%32 != 0 || side < 32 {
		panic(fmt.Sprintf("model: CosmoFlow side must be a positive multiple of 32, got %d", side))
	}
	b := nn.NewBuilder(fmt.Sprintf("cosmoflow%d", side), CosmoFlowChannels, []int{side, side, side})
	chans := []int{16, 32, 64, 128, 256}
	for _, f := range chans {
		b.Conv(f, 3, 1, 1).ReLU()
		b.Pool(nn.AvgPool, 2, 2, 0)
	}
	for i := 0; i < 2; i++ {
		b.Conv(256, 2, 1, 1).ReLU()
		b.Pool(nn.AvgPool, 2, 2, 0)
	}
	b.FC(128).ReLU()
	b.FC(64).ReLU()
	b.FC(CosmoFlowTargets)
	return b.MustBuild()
}

// ByName returns a zoo model by its canonical name: the four paper
// models of Table 5 plus the executable tiny models of the
// distributed-correctness harness.
func ByName(name string) (*nn.Model, error) {
	switch name {
	case "vgg16":
		return VGG16(), nil
	case "resnet50":
		return ResNet50(), nil
	case "resnet152":
		return ResNet152(), nil
	case "cosmoflow":
		return CosmoFlow(), nil
	case "tinyresnet":
		return TinyResNet(), nil
	case "tinycnn":
		return TinyCNN(), nil
	case "tinycnn-nobn":
		return TinyCNNNoBN(), nil
	case "tiny3d":
		return Tiny3D(), nil
	default:
		return nil, fmt.Errorf("model: unknown model %q (want vgg16|resnet50|resnet152|cosmoflow|tinyresnet|tinycnn|tinycnn-nobn|tiny3d)", name)
	}
}

// Names lists the paper models in Table 5 order plus the residual toy
// model the real runtime trains (the projection-shortcut counterpart
// of the ResNet entries).
func Names() []string { return []string{"resnet50", "resnet152", "vgg16", "cosmoflow", "tinyresnet"} }

// TinyResNet is a toy bottleneck ResNet for the distributed-execution
// harness: two bottleneck blocks — the first with a strided projection
// shortcut (the graph-execution path: tap, branch convolution, additive
// merge), the second a plain chain like the zoo ResNets' non-entry
// blocks — on geometry every parallel strategy admits (filter/channel
// widths ≥ 2, spatial extent ≥ 2 everywhere, an FC head to aggregate
// into, legal 2-stage pipeline cuts around the residual block). It is
// deliberately BN-free so GPipe's per-microbatch statistics cannot
// break value parity: all eight registry plans must reproduce
// sequential SGD to ≤ 1e-6.
func TinyResNet() *nn.Model {
	b := nn.NewBuilder("tinyresnet", 3, []int{12, 12})
	b.Conv(8, 3, 1, 1).ReLU() // stem
	// Block 1: 1×1 reduce, strided 3×3, 1×1 expand, strided projection
	// shortcut from the block input, merge, rectify.
	inC, inDims := b.Snapshot()
	b.Conv(4, 1, 1, 0).ReLU()
	b.Conv(4, 3, 2, 1).ReLU()
	b.Conv(16, 1, 1, 0)
	b.ShortcutConv(inC, inDims, 16, 1, 2, 0)
	b.ReLU()
	// Block 2: identity-geometry bottleneck, plain chain.
	b.Conv(4, 1, 1, 0).ReLU()
	b.Conv(4, 3, 1, 1).ReLU()
	b.Conv(16, 1, 1, 0).ReLU()
	b.Pool(nn.AvgPool, 2, 2, 0)
	b.FC(10)
	return b.MustBuild()
}

// TinyCNN is a small 2-D CNN (executable in milliseconds) used by the
// distributed-correctness harness. Geometry is chosen so every parallel
// strategy is exercised: multiple conv layers (halo exchange), pooling,
// batch-norm, and a two-layer head.
func TinyCNN() *nn.Model {
	b := nn.NewBuilder("tinycnn", 3, []int{16, 16})
	b.Conv(8, 3, 1, 1).BatchNorm().ReLU()
	b.Conv(8, 3, 1, 1).ReLU()
	b.Pool(nn.MaxPool, 2, 2, 0)
	b.Conv(16, 3, 1, 1).ReLU()
	b.Pool(nn.AvgPool, 2, 2, 0)
	b.FC(32).ReLU()
	b.FC(10)
	return b.MustBuild()
}

// TinyCNNNoBN is TinyCNN without batch normalization, for strategies
// whose BN semantics differ from the sequential baseline by design
// (unsynchronized data-parallel BN, §4.5.2).
func TinyCNNNoBN() *nn.Model {
	b := nn.NewBuilder("tinycnn-nobn", 3, []int{16, 16})
	b.Conv(8, 3, 1, 1).ReLU()
	b.Conv(8, 3, 1, 1).ReLU()
	b.Pool(nn.MaxPool, 2, 2, 0)
	b.Conv(16, 3, 1, 1).ReLU()
	b.Pool(nn.AvgPool, 2, 2, 0)
	b.FC(32).ReLU()
	b.FC(10)
	return b.MustBuild()
}

// Tiny3D is a small 3-D CNN exercising the volumetric code paths
// (CosmoFlow-like geometry at toy scale).
func Tiny3D() *nn.Model {
	b := nn.NewBuilder("tiny3d", 2, []int{8, 8, 8})
	b.Conv(4, 3, 1, 1).ReLU()
	b.Pool(nn.AvgPool, 2, 2, 0)
	b.Conv(8, 3, 1, 1).ReLU()
	b.Pool(nn.AvgPool, 2, 2, 0)
	b.FC(4)
	return b.MustBuild()
}
