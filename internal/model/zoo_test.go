package model

import (
	"math/rand"
	"testing"

	"paradl/internal/nn"
	"paradl/internal/tensor"
)

func TestVGG16Geometry(t *testing.T) {
	m := VGG16()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// 13 convs + 15 relus + 5 pools + 3 fcs = 36 layers
	if m.G() != 36 {
		t.Fatalf("VGG16 G = %d, want 36", m.G())
	}
	// Canonical VGG16 has ≈138M parameters (the paper's Table 5 rounds
	// differently; see EXPERIMENTS.md).
	p := m.Params()
	if p < 130e6 || p > 145e6 {
		t.Fatalf("VGG16 params = %d, want ≈138M", p)
	}
	if m.MinFilters() != 64 {
		t.Fatalf("VGG16 min filters = %d, want 64 (§5.3.4)", m.MinFilters())
	}
}

func TestResNet50Geometry(t *testing.T) {
	m := ResNet50()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if p < 23e6 || p > 28e6 {
		t.Fatalf("ResNet50 params = %d, want ≈25.5M", p)
	}
	// 53 convolutions + 1 FC carry weights; BN adds small factors.
	convs := 0
	for i := range m.Layers {
		if m.Layers[i].Kind == nn.Conv {
			convs++
		}
	}
	if convs != 53 {
		t.Fatalf("ResNet50 conv count = %d, want 53", convs)
	}
	if m.MinFilters() != 64 {
		t.Fatalf("ResNet50 min filters = %d, want 64 (§5.3.4)", m.MinFilters())
	}
}

func TestResNet152Geometry(t *testing.T) {
	m := ResNet152()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if p < 55e6 || p > 65e6 {
		t.Fatalf("ResNet152 params = %d, want ≈60M", p)
	}
	if m.Params() <= ResNet50().Params() {
		t.Fatal("ResNet152 must be larger than ResNet50")
	}
	convs := 0
	for i := range m.Layers {
		if m.Layers[i].Kind == nn.Conv {
			convs++
		}
	}
	// 1 stem + 50*3 bottleneck convs + 4 shortcuts = 155
	if convs != 155 {
		t.Fatalf("ResNet152 conv count = %d, want 155", convs)
	}
}

func TestCosmoFlowGeometry(t *testing.T) {
	m := CosmoFlow()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	p := m.Params()
	if p < 1.5e6 || p > 4e6 {
		t.Fatalf("CosmoFlow params = %d, want ≈2M", p)
	}
	// 3-D input geometry
	if len(m.InputDims) != 3 || m.InputDims[0] != 256 {
		t.Fatalf("CosmoFlow input dims %v", m.InputDims)
	}
	// First conv dominates activation memory (>10GB at 512³ per §5.3.2);
	// at 256³ its output is 16×256³ elements.
	if got := m.Layers[0].OutSize(); got != 16*256*256*256 {
		t.Fatalf("CosmoFlow first conv |y| = %d", got)
	}
}

func TestCosmoFlowAtScalesGeometry(t *testing.T) {
	m128 := CosmoFlowAt(128)
	if err := m128.Validate(); err != nil {
		t.Fatal(err)
	}
	m256 := CosmoFlowAt(256)
	if m128.FwdFLOPs() >= m256.FwdFLOPs() {
		t.Fatal("128³ must be cheaper than 256³")
	}
}

func TestCosmoFlowAtRejectsBadSide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for side 100")
		}
	}()
	CosmoFlowAt(100)
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Fatalf("ByName(%q) returned %q", name, m.Name)
		}
	}
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestParamOrdering(t *testing.T) {
	// Table 5 ordering: CosmoFlow < ResNet50 < ResNet152 < VGG16.
	if !(CosmoFlow().Params() < ResNet50().Params() &&
		ResNet50().Params() < ResNet152().Params() &&
		ResNet152().Params() < VGG16().Params()) {
		t.Fatal("parameter ordering does not match Table 5")
	}
}

func TestTinyModelsExecutable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []*nn.Model{TinyCNN(), TinyCNNNoBN()} {
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		net := nn.NewNetwork(m, rng)
		x := tensor.New(2, 3, 16, 16).RandN(rng, 1)
		logits, _ := net.Forward(x)
		if !tensor.EqualShapes(logits.Shape(), []int{2, 10}) {
			t.Fatalf("%s logits shape %v", m.Name, logits.Shape())
		}
	}
}

func TestTiny3DExecutable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := Tiny3D()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	net := nn.NewNetwork(m, rng)
	x := tensor.New(2, 2, 8, 8, 8).RandN(rng, 1)
	logits, _ := net.Forward(x)
	if !tensor.EqualShapes(logits.Shape(), []int{2, 4}) {
		t.Fatalf("tiny3d logits shape %v", logits.Shape())
	}
}

func TestScalingLimitsMatchPaper(t *testing.T) {
	// §5.3.4: filter parallelism cannot exceed 64 for VGG16/ResNet-50;
	// channel parallelism limit on ImageNet models is also 64 (second
	// layer onward).
	for _, name := range []string{"vgg16", "resnet50"} {
		m, _ := ByName(name)
		if m.MinFilters() != 64 {
			t.Errorf("%s filter limit %d, want 64", name, m.MinFilters())
		}
		if m.MinChannels() != 64 {
			t.Errorf("%s channel limit %d, want 64", name, m.MinChannels())
		}
	}
}
