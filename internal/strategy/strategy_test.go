package strategy

import (
	"testing"
	"testing/quick"

	"paradl/internal/model"
)

func TestPartitionDimCoverage(t *testing.T) {
	rs := PartitionDim(10, 4)
	if len(rs) != 4 {
		t.Fatalf("ranges %d", len(rs))
	}
	if rs[0].Start != 0 || rs[len(rs)-1].End != 10 {
		t.Fatalf("partition does not cover: %v", rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Start != rs[i-1].End {
			t.Fatalf("gap between ranges %d and %d", i-1, i)
		}
	}
}

func TestPartitionDimProperty(t *testing.T) {
	f := func(extentRaw, pRaw uint8) bool {
		extent := int(extentRaw)
		p := int(pRaw%16) + 1
		rs := PartitionDim(extent, p)
		total := 0
		for _, r := range rs {
			if r.Size() < 0 {
				return false
			}
			total += r.Size()
		}
		return total == extent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHybridGroupsStructure(t *testing.T) {
	groups, segments, err := HybridGroups(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 || len(segments) != 2 {
		t.Fatalf("groups %d segments %d", len(groups), len(segments))
	}
	// Group g holds PEs {2g, 2g+1}; segment k holds {k, 2+k, 4+k, 6+k}.
	if groups[1][0] != 2 || groups[1][1] != 3 {
		t.Fatalf("group 1 = %v", groups[1])
	}
	if segments[1][0] != 1 || segments[1][3] != 7 {
		t.Fatalf("segment 1 = %v", segments[1])
	}
	// Every PE appears exactly once in groups and once in segments.
	seen := map[int]int{}
	for _, g := range groups {
		for _, pe := range g {
			seen[pe]++
		}
	}
	for pe := 0; pe < 8; pe++ {
		if seen[pe] != 1 {
			t.Fatalf("PE %d appears %d times in groups", pe, seen[pe])
		}
	}
}

func TestHybridGroupsRejectsBadSplit(t *testing.T) {
	if _, _, err := HybridGroups(0, 4); err == nil {
		t.Fatal("p1=0 must be rejected")
	}
}

func TestMicroBatches(t *testing.T) {
	mb, err := MicroBatches(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, b := range mb {
		sum += b
	}
	if sum != 10 {
		t.Fatalf("micro batches %v do not sum to 10", mb)
	}
	if _, err := MicroBatches(3, 4); err == nil {
		t.Fatal("B<p1 must be rejected")
	}
}

func TestFilterShardsLimit(t *testing.T) {
	m := model.TinyCNN()
	var convIdx int
	for i := range m.Layers {
		if m.Layers[i].WeightSize() > 0 {
			convIdx = i
			break
		}
	}
	l := &m.Layers[convIdx] // F=8
	shards, err := FilterShards(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 || shards[3].End != l.F {
		t.Fatalf("shards %v", shards)
	}
	if _, err := FilterShards(l, l.F+1); err == nil {
		t.Fatal("p>F must be rejected")
	}
}

func TestChannelShardsLimit(t *testing.T) {
	m := model.TinyCNN()
	l := &m.Layers[0] // C=3
	if _, err := ChannelShards(l, 4); err == nil {
		t.Fatal("p>C must be rejected")
	}
	shards, err := ChannelShards(l, 3)
	if err != nil {
		t.Fatal(err)
	}
	if shards[2].End != 3 {
		t.Fatalf("shards %v", shards)
	}
}

func TestSpatialShards(t *testing.T) {
	shards, err := SpatialShards(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range shards {
		if r.Size() != 4 {
			t.Fatalf("uneven shards %v", shards)
		}
	}
	if _, err := SpatialShards(2, 4); err == nil {
		t.Fatal("extent<p must be rejected")
	}
}

func TestHaloFor(t *testing.T) {
	// middle PE gets halo on both sides; edge PEs only inward
	h := HaloFor(1, 4, 3)
	if h.Lo != 1 || h.Hi != 1 {
		t.Fatalf("middle halo %+v", h)
	}
	if h := HaloFor(0, 4, 3); h.Lo != 0 || h.Hi != 1 {
		t.Fatalf("first halo %+v", h)
	}
	if h := HaloFor(3, 4, 3); h.Lo != 1 || h.Hi != 0 {
		t.Fatalf("last halo %+v", h)
	}
	if h := HaloFor(1, 1, 3); h.Lo != 0 || h.Hi != 0 {
		t.Fatal("p=1 needs no halo")
	}
	if h := HaloFor(1, 4, 1); h.Lo != 0 || h.Hi != 0 {
		t.Fatal("1×1 kernels need no halo")
	}
}

func TestAllPEs(t *testing.T) {
	pes := AllPEs(4)
	for i, pe := range pes {
		if pe != i {
			t.Fatalf("AllPEs = %v", pes)
		}
	}
}

func TestContiguousStages(t *testing.T) {
	st := ContiguousStages([]Range{{0, 3}, {3, 7}})
	if len(st) != 2 || st[1].Start != 3 || st[1].PE != 1 {
		t.Fatalf("stages %v", st)
	}
}
