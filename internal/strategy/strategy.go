// Package strategy encodes how each parallelization strategy of §3
// arranges PEs and partitions tensors: data-parallel replica groups,
// filter/channel groups with segmented cross-groups, spatial neighbour
// chains, and pipeline stages. Both the measured-execution engine
// (internal/measure) and the real distributed runtime (internal/dist)
// consume these plans, so the two sides cannot drift apart.
package strategy

import (
	"fmt"

	"paradl/internal/nn"
	"paradl/internal/tensor"
)

// Range is the contiguous slice [Start, End) a PE owns of some
// dimension.
type Range struct {
	Start, End int
}

// Size returns End-Start.
func (r Range) Size() int { return r.End - r.Start }

// PartitionDim splits a dimension of the given extent into p near-equal
// ranges (leading ranges take the remainder), mirroring
// tensor.SplitSizes.
func PartitionDim(extent, p int) []Range {
	sizes := tensor.SplitSizes(extent, p)
	out := make([]Range, p)
	at := 0
	for i, s := range sizes {
		out[i] = Range{Start: at, End: at + s}
		at += s
	}
	return out
}

// AllPEs returns [0, 1, …, p−1].
func AllPEs(p int) []int {
	pes := make([]int, p)
	for i := range pes {
		pes[i] = i
	}
	return pes
}

// HybridGroups arranges p = p1·p2 PEs into p1 contiguous model-parallel
// groups of p2 (the intra-node side of df/ds, §4.5.1: data parallelism
// is mapped inter-node) plus p2 segmented cross-groups — {GPU k of each
// group} — which carry the segmented/hierarchical gradient exchange.
func HybridGroups(p1, p2 int) (groups [][]int, segments [][]int, err error) {
	if p1 <= 0 || p2 <= 0 {
		return nil, nil, fmt.Errorf("strategy: invalid hybrid split %d×%d", p1, p2)
	}
	groups = make([][]int, p1)
	for g := 0; g < p1; g++ {
		grp := make([]int, p2)
		for i := 0; i < p2; i++ {
			grp[i] = g*p2 + i
		}
		groups[g] = grp
	}
	segments = make([][]int, p2)
	for k := 0; k < p2; k++ {
		seg := make([]int, p1)
		for g := 0; g < p1; g++ {
			seg[g] = g*p2 + k
		}
		segments[k] = seg
	}
	return groups, segments, nil
}

// MicroBatches splits a global batch B over p1 data-parallel groups.
// Every group must receive at least one sample.
func MicroBatches(b, p1 int) ([]int, error) {
	if b < p1 {
		return nil, fmt.Errorf("strategy: batch %d smaller than group count %d", b, p1)
	}
	return tensor.SplitSizes(b, p1), nil
}

// FilterShards returns each PE's output-channel range for layer l under
// filter parallelism of width p. An error reports the Table 3 scaling
// violation p > F_l.
func FilterShards(l *nn.Layer, p int) ([]Range, error) {
	if l.F < p {
		return nil, fmt.Errorf("strategy: layer %q has %d filters < p=%d", l.Name, l.F, p)
	}
	return PartitionDim(l.F, p), nil
}

// ChannelShards returns each PE's input-channel range for layer l under
// channel parallelism of width p.
func ChannelShards(l *nn.Layer, p int) ([]Range, error) {
	if l.C < p {
		return nil, fmt.Errorf("strategy: layer %q has %d channels < p=%d", l.Name, l.C, p)
	}
	return PartitionDim(l.C, p), nil
}

// SpatialShards returns each PE's range of the FIRST spatial dimension
// (height) for an input extent h. The paper splits width, height, or
// both; this reproduction decomposes 1-D along the leading spatial
// axis, which preserves the halo-exchange pattern.
func SpatialShards(h, p int) ([]Range, error) {
	if h < p {
		return nil, fmt.Errorf("strategy: spatial extent %d smaller than p=%d", h, p)
	}
	return PartitionDim(h, p), nil
}

// SpatialHalo describes the rows PE i must receive from its neighbours
// to compute a convolution with kernel k and stride s: lo rows from the
// predecessor, hi rows from the successor (§3.2).
type SpatialHalo struct {
	Lo, Hi int
}

// HaloFor returns the halo requirement of PE i of p under a kernel of
// size k with padding pad. Boundary PEs take padding instead of a
// neighbour on the outer side.
func HaloFor(i, p, k int) SpatialHalo {
	if p <= 1 || k <= 1 {
		return SpatialHalo{}
	}
	h := SpatialHalo{Lo: k / 2, Hi: k / 2}
	if i == 0 {
		h.Lo = 0
	}
	if i == p-1 {
		h.Hi = 0
	}
	return h
}

// PipelineStages assigns layers to p contiguous stages given per-layer
// weights (FW+BW seconds); it delegates to the balanced linear
// partition used by the oracle so measured and projected stages agree.
type PipelineStage struct {
	Start, End int
	PE         int
}

// ContiguousStages builds stages from group boundaries.
func ContiguousStages(bounds []Range) []PipelineStage {
	out := make([]PipelineStage, len(bounds))
	for i, b := range bounds {
		out[i] = PipelineStage{Start: b.Start, End: b.End, PE: i}
	}
	return out
}
