package nn

import (
	"math"
	"math/rand"
	"testing"

	"paradl/internal/tensor"
)

func TestSGDOptimizerMatchesStep(t *testing.T) {
	m := smallModel(t)
	rng := rand.New(rand.NewSource(50))
	a := NewNetwork(m, rand.New(rand.NewSource(51)))
	b := NewNetwork(m, rand.New(rand.NewSource(51)))
	x := tensor.New(4, 3, 8, 8).RandN(rng, 1)
	labels := []int{0, 1, 2, 3}

	logits, states := a.Forward(x)
	_, d := tensor.SoftmaxCrossEntropy(logits, labels)
	_, grads := a.Backward(d, states)

	a.Step(grads, 0.1)
	b.StepWith(&SGD{LR: 0.1}, grads)
	for l := range a.Params {
		if a.Params[l].W != nil && !a.Params[l].W.AllClose(b.Params[l].W, 0) {
			t.Fatalf("SGD optimizer diverges from Step at layer %d", l)
		}
	}
}

// TestMomentumUpdate: the heavy-ball recurrence v ← µv + g, w ← w − lr·v
// against a hand-computed two-step trace, and the Update path (the one
// sharded runtimes use) agreeing with Step.
func TestMomentumUpdate(t *testing.T) {
	w := tensor.FromSlice([]float64{1, 2}, 2)
	g := tensor.FromSlice([]float64{0.5, -1}, 2)
	opt := NewMomentum(0.1, 0.9)
	opt.Update(w, g) // v = g → w = {1−0.05, 2+0.1}
	opt.Update(w, g) // v = 0.9g + g = 1.9g → w −= 0.19g
	want := []float64{1 - 0.05 - 0.095, 2 + 0.1 + 0.19}
	for i, v := range w.Data() {
		if math.Abs(v-want[i]) > 1e-12 {
			t.Fatalf("w[%d] = %.15f, want %.15f", i, v, want[i])
		}
	}
	if opt.ExtraStatePerParam() != 1 || opt.Name() != "momentum" {
		t.Fatalf("momentum metadata: %d state, name %q", opt.ExtraStatePerParam(), opt.Name())
	}

	m := smallModel(t)
	rng := rand.New(rand.NewSource(53))
	a := NewNetwork(m, rand.New(rand.NewSource(54)))
	b := NewNetwork(m, rand.New(rand.NewSource(54)))
	x := tensor.New(4, 3, 8, 8).RandN(rng, 1)
	logits, states := a.Forward(x)
	_, d := tensor.SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3})
	_, grads := a.Backward(d, states)
	a.StepWith(NewMomentum(0.1, 0.9), grads)
	bo := NewMomentum(0.1, 0.9)
	for l := range b.Params {
		applyPair(b.Params[l].W, grads[l].W, bo.Update)
		applyPair(b.Params[l].B, grads[l].B, bo.Update)
		applyPair(b.Params[l].Gamma, grads[l].Gamma, bo.Update)
		applyPair(b.Params[l].Beta, grads[l].Beta, bo.Update)
	}
	for l := range a.Params {
		if a.Params[l].W != nil && !a.Params[l].W.AllClose(b.Params[l].W, 0) {
			t.Fatalf("Momentum Step diverges from per-pair Update at layer %d", l)
		}
	}
}

func TestAdamConverges(t *testing.T) {
	m := smallModel(t)
	rng := rand.New(rand.NewSource(52))
	net := NewNetwork(m, rng)
	opt := NewAdam(0.01)
	x := tensor.New(4, 3, 8, 8).RandN(rng, 1)
	labels := []int{1, 3, 5, 7}
	first := net.TrainStepWith(opt, x, labels)
	var last float64
	for i := 0; i < 40; i++ {
		last = net.TrainStepWith(opt, x, labels)
	}
	if last >= first/2 {
		t.Fatalf("Adam should converge fast on a fixed batch: first %g last %g", first, last)
	}
}

func TestAdamFirstStepFormula(t *testing.T) {
	// With bias correction, the first Adam step moves every weight by
	// ≈ lr·sign(g) (since mHat/sqrt(vHat) = g/|g| at t=1).
	opt := NewAdam(0.1)
	w := tensor.FromSlice([]float64{1, -2, 3}, 3)
	g := tensor.FromSlice([]float64{0.5, -0.25, 1}, 3)
	params := []Params{{W: w}}
	grads := []Grads{{W: g}}
	opt.Step(params, grads)
	want := []float64{1 - 0.1, -2 + 0.1, 3 - 0.1}
	for i, v := range want {
		if d := math.Abs(w.At(i) - v); d > 1e-6 {
			t.Fatalf("adam step[%d] = %v, want ≈%v", i, w.At(i), v)
		}
	}
}

func TestAdamKeepsPerParamState(t *testing.T) {
	opt := NewAdam(0.1)
	if opt.ExtraStatePerParam() != 2 {
		t.Fatal("Adam keeps m and v")
	}
	if (&SGD{}).ExtraStatePerParam() != 0 {
		t.Fatal("SGD keeps no extra state")
	}
	w := tensor.FromSlice([]float64{1}, 1)
	g := tensor.FromSlice([]float64{1}, 1)
	opt.Step([]Params{{W: w}}, []Grads{{W: g}})
	opt.Step([]Params{{W: w}}, []Grads{{W: g}})
	if len(opt.m) != 1 || len(opt.v) != 1 {
		t.Fatalf("adam state entries m=%d v=%d", len(opt.m), len(opt.v))
	}
	if opt.t != 2 {
		t.Fatalf("adam step counter %d", opt.t)
	}
}

func TestAdamSkipsNilGrads(t *testing.T) {
	opt := NewAdam(0.1)
	w := tensor.FromSlice([]float64{5}, 1)
	opt.Step([]Params{{W: w}}, []Grads{{}}) // nil gradient
	if w.At(0) != 5 {
		t.Fatal("nil gradient must not move the weight")
	}
}
