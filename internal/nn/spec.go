// Package nn describes CNN models at the level the ParaDL oracle needs:
// an ordered list of G layers with exact tensor geometry per layer. From
// the geometry the package derives the per-layer quantities of the
// paper's Table 2/3 — |x_l|, |y_l|, |w_l|, |bi_l| (all per sample where
// applicable) — and FLOP counts for the compute-side parametrization.
//
// The same specs can be instantiated into an executable Network
// (exec.go) whose forward/backward run real numbers through
// internal/tensor, which is how the distributed runtime validates every
// parallel strategy value-by-value against the sequential baseline.
// Execution follows the compiled graph (graph.go): chain models walk
// the degenerate DAG bit-identically, and Branch/shortcut layers run
// for real — tap read, additive merge, fan-out backward.
package nn

import (
	"fmt"

	"paradl/internal/tensor"
)

// LayerKind enumerates the layer types found in production CNNs that the
// paper's analysis covers (§4.2 "all types of layers used in production
// CNNs").
type LayerKind int

const (
	// Conv is an N-spatial-dimensional convolution.
	Conv LayerKind = iota
	// Pool is max or average pooling (channel-wise, no weights).
	Pool
	// FC is a fully-connected layer; in the paper's notation a
	// convolution whose kernel equals the input extent.
	FC
	// ReLU is the element-wise rectifier (no weights, F = C).
	ReLU
	// BatchNorm is channel-wise normalization with scale/shift weights.
	BatchNorm
)

// String implements fmt.Stringer.
func (k LayerKind) String() string {
	switch k {
	case Conv:
		return "conv"
	case Pool:
		return "pool"
	case FC:
		return "fc"
	case ReLU:
		return "relu"
	case BatchNorm:
		return "bn"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is the static description of one layer: its geometry and
// derived sizes. Spatial extents are stored explicitly so the spec
// doubles as the shape-inference record.
type Layer struct {
	Kind LayerKind
	Name string

	// C and F are input and output channel counts. For channel-wise
	// layers (Pool, ReLU, BatchNorm) F == C.
	C, F int

	// In and Out are the input/output spatial extents (e.g. [H, W] or
	// [D, H, W]). For FC layers Out is all-ones.
	In, Out []int

	// Kernel, Stride, Pad describe Conv/Pool windows; nil otherwise
	// (FC implicitly uses Kernel == In).
	Kernel, Stride, Pad []int

	// PoolKind selects max vs average pooling for Pool layers.
	PoolKind tensor.PoolKind

	// Branch marks a layer whose input is taken from an earlier point of
	// the network (e.g. a ResNet shortcut/downsample convolution) and
	// whose output merges additively into the main path. Branch layers
	// participate fully in the size/FLOP accounting but are exempt from
	// chain-continuity validation; instead their OUTPUT must match the
	// preceding layer's output so the merge is well-formed. Branch
	// layers are executable: CompileGraph routes their input from the
	// tap point and adds their output into the main path.
	Branch bool

	// Tap is the index of the layer whose (post-merge) output feeds this
	// Branch layer, with -1 meaning the network input. It is meaningful
	// only when Branch is set (the Builder records it from the most
	// recent Snapshot call) and is validated against the branch's C/In
	// geometry by Model.Validate.
	Tap int
}

// SpatialRank returns the number of spatial dimensions.
func (l *Layer) SpatialRank() int { return len(l.In) }

// InSize returns |x_l|: elements of the layer input for ONE sample.
func (l *Layer) InSize() int64 {
	return int64(l.C) * volume(l.In)
}

// OutSize returns |y_l|: elements of the layer output for ONE sample.
func (l *Layer) OutSize() int64 {
	return int64(l.F) * volume(l.Out)
}

// WeightSize returns |w_l|: weight elements of the layer.
//
//   - Conv: C·F·∏K
//   - FC:   C·F·∏In (kernel = input size, paper §2.2)
//   - BatchNorm: 2·C (gamma and beta; they ride the gradient exchange)
//   - Pool/ReLU: 0 (the paper writes w[C, F, 0])
func (l *Layer) WeightSize() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.C) * int64(l.F) * volume(l.Kernel)
	case FC:
		return int64(l.C) * int64(l.F) * volume(l.In)
	case BatchNorm:
		return 2 * int64(l.C)
	default:
		return 0
	}
}

// BiasSize returns |bi_l|: bias elements (F for weighted layers).
func (l *Layer) BiasSize() int64 {
	switch l.Kind {
	case Conv, FC:
		return int64(l.F)
	default:
		return 0
	}
}

// FwdFLOPs estimates multiply-add FLOPs of the forward pass for ONE
// sample (2 FLOPs per MAC).
func (l *Layer) FwdFLOPs() int64 {
	switch l.Kind {
	case Conv:
		return 2 * l.OutSize() * int64(l.C) * volume(l.Kernel)
	case FC:
		return 2 * int64(l.F) * l.InSize()
	case Pool:
		return l.OutSize() * volume(l.Kernel)
	case ReLU:
		return l.OutSize()
	case BatchNorm:
		return 4 * l.InSize() // two reduction passes + normalize + affine
	default:
		return 0
	}
}

// BwdFLOPs estimates backward-pass FLOPs for ONE sample. Convolutional
// and FC layers pay roughly twice the forward cost (backward-data plus
// backward-weight); channel-wise layers pay about the forward cost.
func (l *Layer) BwdFLOPs() int64 {
	switch l.Kind {
	case Conv, FC:
		return 2 * l.FwdFLOPs()
	default:
		return l.FwdFLOPs()
	}
}

// WUFLOPs estimates weight-update FLOPs per iteration (one SGD axpy per
// parameter).
func (l *Layer) WUFLOPs() int64 {
	return 2 * (l.WeightSize() + l.BiasSize())
}

// HaloSize returns halo(|x_l|): elements exchanged per sample with
// logical neighbours when the layer's spatial domain is decomposed
// across parts PEs along the given axis (0 = first spatial dim). Only
// Conv/Pool layers with kernels wider than their stride need halos. The
// estimate follows the paper: K/2 rows (or columns/planes) of the input
// cross each internal partition boundary, in both directions.
func (l *Layer) HaloSize(axis, parts int) int64 {
	if parts <= 1 {
		return 0
	}
	if l.Kind != Conv && l.Kind != Pool {
		return 0
	}
	if axis < 0 || axis >= len(l.In) {
		return 0
	}
	k := l.Kernel[axis]
	if k <= 1 || k <= l.Stride[axis] {
		return 0 // stride consumes the window; no remote rows needed
	}
	rows := int64(k / 2)
	// cross-section: channels × product of the other spatial extents
	cross := int64(l.C)
	for i, e := range l.In {
		if i != axis {
			cross *= int64(e)
		}
	}
	return rows * cross
}

// HaloSizeOut returns halo(|dL/dy_l|): the activation-gradient elements
// exchanged per sample in the backward pass under the same spatial
// decomposition — K/2 planes of the OUTPUT geometry (F channels over
// the output cross-section).
func (l *Layer) HaloSizeOut(axis, parts int) int64 {
	if parts <= 1 {
		return 0
	}
	if l.Kind != Conv && l.Kind != Pool {
		return 0
	}
	if axis < 0 || axis >= len(l.Out) {
		return 0
	}
	k := l.Kernel[axis]
	if k <= 1 || k <= l.Stride[axis] {
		return 0
	}
	rows := int64(k / 2)
	cross := int64(l.F)
	for i, e := range l.Out {
		if i != axis {
			cross *= int64(e)
		}
	}
	return rows * cross
}

// Validate performs internal-consistency checks on the layer geometry
// and returns a descriptive error for the first violation found.
func (l *Layer) Validate() error {
	if l.C <= 0 || l.F <= 0 {
		return fmt.Errorf("nn: layer %q has non-positive channels C=%d F=%d", l.Name, l.C, l.F)
	}
	if len(l.In) == 0 && l.Kind != FC {
		return fmt.Errorf("nn: layer %q has no spatial extent", l.Name)
	}
	switch l.Kind {
	case Conv, Pool:
		if len(l.Kernel) != len(l.In) || len(l.Stride) != len(l.In) || len(l.Pad) != len(l.In) {
			return fmt.Errorf("nn: layer %q kernel/stride/pad rank mismatch", l.Name)
		}
		for i := range l.In {
			want := tensor.ConvOutSize(l.In[i], l.Kernel[i], l.Stride[i], l.Pad[i])
			if l.Out[i] != want {
				return fmt.Errorf("nn: layer %q dim %d: out %d, want %d", l.Name, i, l.Out[i], want)
			}
		}
	case ReLU, BatchNorm:
		if l.F != l.C {
			return fmt.Errorf("nn: channel-wise layer %q must have F==C", l.Name)
		}
		if !tensor.EqualShapes(l.In, l.Out) {
			return fmt.Errorf("nn: channel-wise layer %q must preserve spatial extent", l.Name)
		}
	case FC:
		for _, e := range l.Out {
			if e != 1 {
				return fmt.Errorf("nn: fc layer %q must have all-ones output extent", l.Name)
			}
		}
	}
	return nil
}

func volume(dims []int) int64 {
	v := int64(1)
	for _, d := range dims {
		v *= int64(d)
	}
	return v
}
