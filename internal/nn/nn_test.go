package nn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"paradl/internal/tensor"
)

func smallModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewBuilder("small", 3, []int{8, 8}).
		Conv(4, 3, 1, 1).BatchNorm().ReLU().
		Pool(MaxPool, 2, 2, 0).
		Conv(8, 3, 1, 1).ReLU().
		Pool(AvgPool, 2, 2, 0).
		FC(10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuilderShapeInference(t *testing.T) {
	m := smallModel(t)
	if m.G() != 8 {
		t.Fatalf("G = %d, want 8", m.G())
	}
	conv1 := m.Layers[0]
	if conv1.InSize() != 3*8*8 || conv1.OutSize() != 4*8*8 {
		t.Fatalf("conv1 sizes in=%d out=%d", conv1.InSize(), conv1.OutSize())
	}
	fc := m.Layers[7]
	if fc.Kind != FC || fc.InSize() != 8*2*2 || fc.OutSize() != 10 {
		t.Fatalf("fc geometry wrong: %+v", fc)
	}
	if m.Classes != 10 {
		t.Fatalf("classes %d", m.Classes)
	}
}

func TestLayerSizes(t *testing.T) {
	m := smallModel(t)
	conv1 := m.Layers[0]
	if w := conv1.WeightSize(); w != 3*4*9 {
		t.Fatalf("conv weight size %d", w)
	}
	if b := conv1.BiasSize(); b != 4 {
		t.Fatalf("conv bias size %d", b)
	}
	bn := m.Layers[1]
	if bn.WeightSize() != 8 || bn.BiasSize() != 0 {
		t.Fatalf("bn sizes w=%d b=%d", bn.WeightSize(), bn.BiasSize())
	}
	relu := m.Layers[2]
	if relu.WeightSize() != 0 {
		t.Fatalf("relu weight size %d", relu.WeightSize())
	}
	fc := m.Layers[7]
	if fc.WeightSize() != 8*10*2*2 {
		t.Fatalf("fc weight size %d", fc.WeightSize())
	}
}

func TestLayerFLOPs(t *testing.T) {
	m := smallModel(t)
	conv1 := m.Layers[0]
	// 2 * |y| * C * K² = 2 * 4*64 * 3*9
	if f := conv1.FwdFLOPs(); f != 2*4*64*3*9 {
		t.Fatalf("conv fwd flops %d", f)
	}
	if conv1.BwdFLOPs() != 2*conv1.FwdFLOPs() {
		t.Fatal("conv bwd flops should be 2× fwd")
	}
	if conv1.WUFLOPs() != 2*(conv1.WeightSize()+conv1.BiasSize()) {
		t.Fatal("WU flops mismatch")
	}
}

func TestHaloSize(t *testing.T) {
	m := smallModel(t)
	conv1 := m.Layers[0] // 3×3 kernel stride 1 on 3×8×8
	// K/2 = 1 row of C×W = 3×8 elements
	if h := conv1.HaloSize(0, 2); h != 24 {
		t.Fatalf("halo = %d, want 24", h)
	}
	if h := conv1.HaloSize(0, 1); h != 0 {
		t.Fatal("no halo for p=1")
	}
	relu := m.Layers[2]
	if relu.HaloSize(0, 4) != 0 {
		t.Fatal("relu needs no halo")
	}
	pool := m.Layers[3] // 2×2 window stride 2: stride consumes window
	if pool.HaloSize(0, 2) != 0 {
		t.Fatal("non-overlapping pool needs no halo")
	}
}

func TestModelAggregates(t *testing.T) {
	m := smallModel(t)
	var wantParams int64
	for i := range m.Layers {
		wantParams += m.Layers[i].WeightSize() + m.Layers[i].BiasSize()
	}
	if m.Params() != wantParams {
		t.Fatalf("Params() %d != %d", m.Params(), wantParams)
	}
	if m.TotalWeights() >= m.Params() {
		t.Fatal("TotalWeights must exclude biases")
	}
	if m.MinFilters() != 4 {
		t.Fatalf("MinFilters %d, want 4", m.MinFilters())
	}
	// channel limit skips the first weighted layer (C=3)
	if m.MinChannels() != 4 {
		t.Fatalf("MinChannels %d, want 4", m.MinChannels())
	}
	// smallest spatially parallelizable input map is the 4×4 feeding the
	// second conv/pool stage; FC layers are excluded by definition
	if m.MinSpatial() != 16 {
		t.Fatalf("MinSpatial %d, want 16", m.MinSpatial())
	}
}

func TestValidateCatchesDiscontinuity(t *testing.T) {
	m := smallModel(t)
	m.Layers[4].C = 7 // break the chain
	if err := m.Validate(); err == nil {
		t.Fatal("Validate should reject broken channel chain")
	}
}

func TestValidateCatchesBadSpatial(t *testing.T) {
	m := smallModel(t)
	m.Layers[0].Out[0] = 5
	if err := m.Validate(); err == nil {
		t.Fatal("Validate should reject wrong conv output extent")
	}
}

func TestBranchLayerValidation(t *testing.T) {
	b := NewBuilder("branchy", 3, []int{8, 8})
	b.Conv(4, 3, 1, 1)
	c, dims := b.Snapshot()
	_ = c
	b.Conv(8, 3, 2, 1)
	b.ShortcutConv(4, dims, 8, 1, 2, 0)
	b.ReLU()
	b.FC(2)
	m, err := b.Build()
	if err != nil {
		t.Fatalf("branch model should validate: %v", err)
	}
	// the shortcut conv contributes weights
	var shortcut *Layer
	for i := range m.Layers {
		if m.Layers[i].Branch {
			shortcut = &m.Layers[i]
		}
	}
	if shortcut == nil {
		t.Fatal("no branch layer recorded")
	}
	if shortcut.WeightSize() != 4*8 {
		t.Fatalf("shortcut weight size %d", shortcut.WeightSize())
	}
}

func TestBranchMergeMismatchRejected(t *testing.T) {
	b := NewBuilder("branchy", 3, []int{8, 8})
	b.Conv(4, 3, 1, 1)
	_, dims := b.Snapshot()
	b.Conv(8, 3, 2, 1)
	b.ShortcutConv(4, dims, 16, 1, 2, 0) // F=16 cannot merge into F=8
	b.ReLU()
	if _, err := b.Build(); err == nil {
		t.Fatal("mismatched branch merge must be rejected")
	}
}

func TestNetworkForwardShapes(t *testing.T) {
	m := smallModel(t)
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(m, rng)
	x := tensor.New(2, 3, 8, 8).RandN(rng, 1)
	logits, states := net.Forward(x)
	if !tensor.EqualShapes(logits.Shape(), []int{2, 10}) {
		t.Fatalf("logits shape %v", logits.Shape())
	}
	if len(states) != m.G() {
		t.Fatalf("state count %d", len(states))
	}
}

func TestNetworkTrainStepReducesLoss(t *testing.T) {
	m := smallModel(t)
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(m, rng)
	x := tensor.New(4, 3, 8, 8).RandN(rng, 1)
	labels := []int{1, 3, 5, 7}
	first := net.TrainStep(x, labels, 0.05)
	var last float64
	for i := 0; i < 30; i++ {
		last = net.TrainStep(x, labels, 0.05)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %g last %g", first, last)
	}
}

func TestNetworkDeterministicInit(t *testing.T) {
	m := smallModel(t)
	a := NewNetwork(m, rand.New(rand.NewSource(77)))
	b := NewNetwork(m, rand.New(rand.NewSource(77)))
	for i := range a.Params {
		if a.Params[i].W != nil && !a.Params[i].W.AllClose(b.Params[i].W, 0) {
			t.Fatalf("layer %d weights differ across identical seeds", i)
		}
	}
}

func TestCloneParamsIndependent(t *testing.T) {
	m := smallModel(t)
	net := NewNetwork(m, rand.New(rand.NewSource(3)))
	snap := net.CloneParams()
	net.Params[0].W.Fill(0)
	if snap[0].W.MaxAbs() == 0 {
		t.Fatal("CloneParams must deep-copy")
	}
}

// Property: InSize/OutSize/WeightSize are non-negative and consistent
// with FLOP counts for random conv geometries.
func TestConvLayerAccountingProperty(t *testing.T) {
	f := func(cRaw, fRaw, hRaw, kRaw uint8) bool {
		c := int(cRaw%8) + 1
		fl := int(fRaw%8) + 1
		h := int(hRaw%16) + 3
		k := int(kRaw%3)*2 + 1 // 1, 3, 5
		if k > h {
			return true
		}
		b := NewBuilder("prop", c, []int{h, h})
		b.Conv(fl, k, 1, k/2)
		m, err := b.Build()
		if err != nil {
			return false
		}
		l := m.Layers[0]
		return l.InSize() == int64(c*h*h) &&
			l.OutSize() == int64(fl*h*h) &&
			l.WeightSize() == int64(c*fl*k*k) &&
			l.FwdFLOPs() == 2*l.OutSize()*int64(c*k*k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayerKindString(t *testing.T) {
	names := map[LayerKind]string{Conv: "conv", Pool: "pool", FC: "fc", ReLU: "relu", BatchNorm: "bn"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("String(%d) = %q", int(k), k.String())
		}
	}
}
