package nn

import (
	"math"

	"paradl/internal/tensor"
)

// Optimizer updates network parameters from gradients. The paper's
// weight-update phase (WU) analysis depends on the optimizer: plain SGD
// touches 2 variables per weight, ADAM four — which is why large models
// "report up to 45% time on weight update and more than 60% extra
// memory" under ADAM (§5.3.3).
type Optimizer interface {
	// Step applies one update.
	Step(params []Params, grads []Grads)
	// Name identifies the optimizer for reports.
	Name() string
	// ExtraStatePerParam is the number of persistent state variables
	// per parameter beyond the weight itself (SGD 0, momentum 1,
	// ADAM 2).
	ExtraStatePerParam() int
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// ExtraStatePerParam implements Optimizer.
func (s *SGD) ExtraStatePerParam() int { return 0 }

// Step implements Optimizer.
func (s *SGD) Step(params []Params, grads []Grads) {
	for l := range params {
		applyPair(params[l].W, grads[l].W, func(w, g *tensor.Tensor) { tensor.SGDStep(w, g, s.LR) })
		applyPair(params[l].B, grads[l].B, func(w, g *tensor.Tensor) { tensor.SGDStep(w, g, s.LR) })
		applyPair(params[l].Gamma, grads[l].Gamma, func(w, g *tensor.Tensor) { tensor.SGDStep(w, g, s.LR) })
		applyPair(params[l].Beta, grads[l].Beta, func(w, g *tensor.Tensor) { tensor.SGDStep(w, g, s.LR) })
	}
}

// Momentum is heavy-ball SGD: v ← µ·v + g, w ← w − lr·v — the
// one-extra-variable-per-weight point of the §5.3.3 weight-update
// analysis. Velocities are keyed by parameter-tensor identity, so it
// works on full replicas and on parameter shards alike (a shard's
// velocity is the matching slice of the global velocity).
type Momentum struct {
	LR, Mu float64

	vel map[*tensor.Tensor]*tensor.Tensor
}

// NewMomentum returns a heavy-ball SGD optimizer.
func NewMomentum(lr, mu float64) *Momentum {
	return &Momentum{LR: lr, Mu: mu, vel: map[*tensor.Tensor]*tensor.Tensor{}}
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// ExtraStatePerParam implements Optimizer.
func (m *Momentum) ExtraStatePerParam() int { return 1 }

// Step implements Optimizer.
func (m *Momentum) Step(params []Params, grads []Grads) {
	for l := range params {
		applyPair(params[l].W, grads[l].W, m.Update)
		applyPair(params[l].B, grads[l].B, m.Update)
		applyPair(params[l].Gamma, grads[l].Gamma, m.Update)
		applyPair(params[l].Beta, grads[l].Beta, m.Update)
	}
}

// Velocity returns the velocity tensor of parameter w, or nil if no
// update has touched w yet — an absent velocity is semantically a zero
// tensor (Update creates it lazily). Checkpointing uses this to export
// the optimizer state alongside the parameters.
func (m *Momentum) Velocity(w *tensor.Tensor) *tensor.Tensor {
	if m.vel == nil {
		return nil
	}
	return m.vel[w]
}

// SeedVelocity installs v as parameter w's velocity, replacing any
// existing one. Restore paths use it to rebuild the optimizer state a
// checkpoint recorded, so a resumed run continues the exact heavy-ball
// trajectory of the original.
func (m *Momentum) SeedVelocity(w, v *tensor.Tensor) {
	if m.vel == nil {
		m.vel = map[*tensor.Tensor]*tensor.Tensor{}
	}
	m.vel[w] = v
}

// Update applies the momentum update to one (param, grad) pair. It is
// exported because sharded runtimes (internal/dist) step parameter
// slices that never appear in a []Params.
func (m *Momentum) Update(w, g *tensor.Tensor) {
	if m.vel == nil {
		m.vel = map[*tensor.Tensor]*tensor.Tensor{}
	}
	v, ok := m.vel[w]
	if !ok {
		v = tensor.New(w.Shape()...)
		m.vel[w] = v
	}
	wd, gd, vd := w.Data(), g.Data(), v.Data()
	for i := range wd {
		vd[i] = m.Mu*vd[i] + gd[i]
		wd[i] -= m.LR * vd[i]
	}
}

// Adam is the ADAM optimizer (Kingma & Ba) with bias correction. It
// keeps first- and second-moment estimates per parameter — the four
// variables per weight (w, g, m, v) of §5.3.3.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*tensor.Tensor]*tensor.Tensor // first moments, keyed by param
	v map[*tensor.Tensor]*tensor.Tensor // second moments
}

// NewAdam returns an Adam optimizer with the canonical defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: map[*tensor.Tensor]*tensor.Tensor{},
		v: map[*tensor.Tensor]*tensor.Tensor{},
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// ExtraStatePerParam implements Optimizer.
func (a *Adam) ExtraStatePerParam() int { return 2 }

// Step implements Optimizer.
func (a *Adam) Step(params []Params, grads []Grads) {
	a.t++
	for l := range params {
		applyPair(params[l].W, grads[l].W, a.update)
		applyPair(params[l].B, grads[l].B, a.update)
		applyPair(params[l].Gamma, grads[l].Gamma, a.update)
		applyPair(params[l].Beta, grads[l].Beta, a.update)
	}
}

func (a *Adam) update(w, g *tensor.Tensor) {
	m, ok := a.m[w]
	if !ok {
		m = tensor.New(w.Shape()...)
		a.m[w] = m
	}
	v, ok := a.v[w]
	if !ok {
		v = tensor.New(w.Shape()...)
		a.v[w] = v
	}
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	wd, gd, md, vd := w.Data(), g.Data(), m.Data(), v.Data()
	for i := range wd {
		md[i] = a.Beta1*md[i] + (1-a.Beta1)*gd[i]
		vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gd[i]*gd[i]
		mHat := md[i] / c1
		vHat := vd[i] / c2
		wd[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
	}
}

func applyPair(w, g *tensor.Tensor, f func(w, g *tensor.Tensor)) {
	if w != nil && g != nil {
		f(w, g)
	}
}

// StepWith applies an arbitrary optimizer to the network.
func (n *Network) StepWith(opt Optimizer, grads []Grads) {
	opt.Step(n.Params, grads)
}

// TrainStepWith is TrainStep with a pluggable optimizer.
func (n *Network) TrainStepWith(opt Optimizer, x *tensor.Tensor, labels []int) float64 {
	logits, states := n.Forward(x)
	loss, dLogits := tensor.SoftmaxCrossEntropy(logits, labels)
	_, grads := n.Backward(dLogits, states)
	n.StepWith(opt, grads)
	return loss
}
