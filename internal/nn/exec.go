package nn

import (
	"fmt"
	"math/rand"

	"paradl/internal/tensor"
)

// Params holds the learnable tensors of one layer. Nil fields mean the
// layer has no such parameter.
type Params struct {
	W, B        *tensor.Tensor // conv/fc weight and bias
	Gamma, Beta *tensor.Tensor // batch-norm scale and shift
}

// Grads mirrors Params for gradients.
type Grads struct {
	W, B        *tensor.Tensor
	Gamma, Beta *tensor.Tensor
}

// Network is an executable instantiation of a Model: specs plus real
// parameter tensors. Forward/Backward walk the compiled execution
// graph layer by layer — a strict chain for chain models, with branch
// taps and additive merges for residual models — so parallel
// strategies can interleave communication between layers.
type Network struct {
	Model  *Model
	Params []Params
	graph  *Graph
}

// NewNetwork allocates parameters for every layer, initialized from rng
// with a He-style scale. Deterministic given the seed, so two PEs can
// build identical replicas. It panics on models whose layer list does
// not compile to an executable graph (see CompileGraph); callers that
// must report this as an error compile first.
func NewNetwork(m *Model, rng *rand.Rand) *Network {
	g, err := CompileGraph(m)
	if err != nil {
		panic(err)
	}
	net := &Network{Model: m, Params: make([]Params, len(m.Layers)), graph: g}
	for i := range m.Layers {
		l := &m.Layers[i]
		switch l.Kind {
		case Conv:
			shape := append([]int{l.F, l.C}, l.Kernel...)
			fanIn := float64(l.InSize())
			net.Params[i].W = tensor.New(shape...).RandN(rng, 1.0/(1.0+fanIn/64))
			net.Params[i].B = tensor.New(l.F).RandN(rng, 0.01)
		case FC:
			in := int(l.InSize())
			net.Params[i].W = tensor.New(l.F, in).RandN(rng, 1.0/(1.0+float64(in)/64))
			net.Params[i].B = tensor.New(l.F).RandN(rng, 0.01)
		case BatchNorm:
			g := tensor.New(l.C)
			g.Fill(1)
			net.Params[i].Gamma = g
			net.Params[i].Beta = tensor.New(l.C)
		}
	}
	return net
}

// LayerState carries forward-pass intermediates a layer's backward pass
// needs.
type LayerState struct {
	X      *tensor.Tensor // layer input as seen by forward
	Argmax []int          // max-pool winners
	BN     *tensor.BNState
}

// ForwardLayer applies layer l to x and returns the activation plus the
// state needed by BackwardLayer.
func (n *Network) ForwardLayer(l int, x *tensor.Tensor) (*tensor.Tensor, *LayerState) {
	spec := &n.Model.Layers[l]
	p := n.Params[l]
	st := &LayerState{X: x}
	switch spec.Kind {
	case Conv:
		y := tensor.ConvForward(x, p.W, p.B, tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad})
		return y, st
	case Pool:
		y, arg := tensor.PoolForward(x, tensor.PoolSpec{Kind: spec.PoolKind, Window: spec.Kernel, Stride: spec.Stride, Pad: spec.Pad})
		st.Argmax = arg
		return y, st
	case FC:
		nBatch := x.Dim(0)
		flat := x.Reshape(nBatch, x.Len()/nBatch)
		y := tensor.FCForward(flat, p.W, p.B)
		return y, st
	case ReLU:
		return tensor.ReLUForward(x), st
	case BatchNorm:
		y, bn := tensor.BNForward(x, p.Gamma, p.Beta, 1e-5)
		st.BN = bn
		return y, st
	default:
		panic(fmt.Sprintf("nn: cannot execute layer kind %v", spec.Kind))
	}
}

// BackwardLayer propagates dy through layer l given the forward state,
// returning the input gradient and the parameter gradients.
func (n *Network) BackwardLayer(l int, dy *tensor.Tensor, st *LayerState) (*tensor.Tensor, Grads) {
	spec := &n.Model.Layers[l]
	p := n.Params[l]
	var g Grads
	switch spec.Kind {
	case Conv:
		cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
		dx := tensor.ConvBackwardData(dy, p.W, st.X.Shape(), cs)
		g.W, g.B = tensor.ConvBackwardWeight(dy, st.X, p.W.Shape(), cs)
		return dx, g
	case Pool:
		ps := tensor.PoolSpec{Kind: spec.PoolKind, Window: spec.Kernel, Stride: spec.Stride, Pad: spec.Pad}
		return tensor.PoolBackward(dy, st.X.Shape(), ps, st.Argmax), g
	case FC:
		nBatch := st.X.Dim(0)
		flat := st.X.Reshape(nBatch, st.X.Len()/nBatch)
		dx, dw, db := tensor.FCBackward(dy, flat, p.W, st.X.Shape())
		g.W, g.B = dw, db
		return dx, g
	case ReLU:
		return tensor.ReLUBackward(dy, st.X), g
	case BatchNorm:
		dx, dgamma, dbeta := tensor.BNBackward(dy, p.Gamma, st.BN)
		g.Gamma, g.Beta = dgamma, dbeta
		return dx, g
	default:
		panic(fmt.Sprintf("nn: cannot execute layer kind %v", spec.Kind))
	}
}

// Graph returns the network's compiled execution graph.
func (n *Network) Graph() *Graph { return n.graph }

// Forward runs the whole network through the execution graph — branch
// layers read their tap and merge additively — returning logits and
// per-layer states. For chain models the walk is bit-identical to the
// historical layer-by-layer loop.
func (n *Network) Forward(x *tensor.Tensor) (*tensor.Tensor, []*LayerState) {
	states := make([]*LayerState, len(n.Model.Layers))
	logits := n.graph.ForwardRange(0, len(n.Model.Layers), x, func(l int, xin *tensor.Tensor) *tensor.Tensor {
		y, st := n.ForwardLayer(l, xin)
		states[l] = st
		return y
	})
	return logits, states
}

// Backward runs the full backward pass from dLogits through the
// execution graph — merge gradients fan into both paths, branch input
// gradients accumulate at their taps — returning the gradient of the
// network input and all parameter gradients.
func (n *Network) Backward(dLogits *tensor.Tensor, states []*LayerState) (*tensor.Tensor, []Grads) {
	grads := make([]Grads, len(n.Model.Layers))
	dx := n.graph.BackwardRange(0, len(n.Model.Layers), dLogits, func(l int, dy *tensor.Tensor) *tensor.Tensor {
		d, g := n.BackwardLayer(l, dy, states[l])
		grads[l] = g
		return d
	})
	return dx, grads
}

// Step applies SGD with learning rate lr to every parameter.
func (n *Network) Step(grads []Grads, lr float64) {
	for l := range n.Params {
		p, g := n.Params[l], grads[l]
		if p.W != nil && g.W != nil {
			tensor.SGDStep(p.W, g.W, lr)
		}
		if p.B != nil && g.B != nil {
			tensor.SGDStep(p.B, g.B, lr)
		}
		if p.Gamma != nil && g.Gamma != nil {
			tensor.SGDStep(p.Gamma, g.Gamma, lr)
		}
		if p.Beta != nil && g.Beta != nil {
			tensor.SGDStep(p.Beta, g.Beta, lr)
		}
	}
}

// TrainStep performs one full SGD iteration (forward, softmax loss,
// backward, update) and returns the loss — the sequential baseline every
// parallel strategy is validated against.
func (n *Network) TrainStep(x *tensor.Tensor, labels []int, lr float64) float64 {
	logits, states := n.Forward(x)
	loss, dLogits := tensor.SoftmaxCrossEntropy(logits, labels)
	_, grads := n.Backward(dLogits, states)
	n.Step(grads, lr)
	return loss
}

// CloneParams deep-copies all parameters (e.g. to snapshot a replica).
func (n *Network) CloneParams() []Params {
	out := make([]Params, len(n.Params))
	for i, p := range n.Params {
		if p.W != nil {
			out[i].W = p.W.Clone()
		}
		if p.B != nil {
			out[i].B = p.B.Clone()
		}
		if p.Gamma != nil {
			out[i].Gamma = p.Gamma.Clone()
		}
		if p.Beta != nil {
			out[i].Beta = p.Beta.Clone()
		}
	}
	return out
}
