package nn

import "testing"

func TestHaloSizeOutGeometry(t *testing.T) {
	m := smallModel(t)
	conv1 := m.Layers[0] // 3×3 stride 1, C=3→F=4, 8×8
	// Output halo: K/2 = 1 row of F × outW = 4×8.
	if h := conv1.HaloSizeOut(0, 2); h != 32 {
		t.Fatalf("halo out = %d, want 32", h)
	}
	if conv1.HaloSizeOut(0, 1) != 0 {
		t.Fatal("no halo at p=1")
	}
	if conv1.HaloSizeOut(5, 2) != 0 {
		t.Fatal("invalid axis yields zero")
	}
	relu := m.Layers[2]
	if relu.HaloSizeOut(0, 2) != 0 {
		t.Fatal("channel-wise layers need no halo")
	}
}

func TestHaloZeroWhenStrideConsumesKernel(t *testing.T) {
	// A 2×2/2 pool never reaches across partition boundaries.
	b := NewBuilder("x", 1, []int{8, 8})
	b.Pool(MaxPool, 2, 2, 0)
	m := b.m
	if m.Layers[0].HaloSize(0, 2) != 0 || m.Layers[0].HaloSizeOut(0, 2) != 0 {
		t.Fatal("non-overlapping windows need no halo")
	}
	// A 3×3/2 pool (ResNet stem) DOES need one.
	b2 := NewBuilder("y", 1, []int{9, 9})
	b2.Pool(MaxPool, 3, 2, 0)
	if b2.m.Layers[0].HaloSize(0, 2) == 0 {
		t.Fatal("overlapping pool windows need halo rows")
	}
}

func TestValidateErrorBranches(t *testing.T) {
	bad := Layer{Kind: Conv, Name: "bad", C: 0, F: 4, In: []int{4, 4}, Out: []int{4, 4},
		Kernel: []int{3, 3}, Stride: []int{1, 1}, Pad: []int{1, 1}}
	if err := bad.Validate(); err == nil {
		t.Fatal("C=0 must fail")
	}
	bad2 := Layer{Kind: ReLU, Name: "bad2", C: 4, F: 8, In: []int{4}, Out: []int{4}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("channel-wise with F≠C must fail")
	}
	bad3 := Layer{Kind: FC, Name: "bad3", C: 4, F: 8, In: []int{4}, Out: []int{2}}
	if err := bad3.Validate(); err == nil {
		t.Fatal("FC with non-unit output extent must fail")
	}
	bad4 := Layer{Kind: Conv, Name: "bad4", C: 1, F: 1, In: []int{4, 4}, Out: []int{4, 4},
		Kernel: []int{3}, Stride: []int{1}, Pad: []int{1}}
	if err := bad4.Validate(); err == nil {
		t.Fatal("kernel rank mismatch must fail")
	}
}

func TestBreakLayerChainOnSpatial(t *testing.T) {
	m := smallModel(t)
	m.Layers[2].In[0] = 7 // relu claims different extent than conv output
	m.Layers[2].Out[0] = 7
	if err := m.Validate(); err == nil {
		t.Fatal("spatial discontinuity must be rejected")
	}
}
