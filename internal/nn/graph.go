package nn

import (
	"fmt"

	"paradl/internal/tensor"
)

// Graph is the compiled execution plan of a Model: every layer with its
// resolved input source, in a topologically ordered walk. The layer
// list order is already topological — a Branch layer's tap precedes it
// and its output merges additively into the preceding main-path
// layer's output — so the graph stores, per layer, WHERE its input
// comes from and lets ForwardRange/BackwardRange drive any per-layer
// compute through the DAG:
//
//   - a chain model compiles to the degenerate DAG src[l] = l-1 and the
//     walkers add no operations, so chain execution is bit-identical to
//     the historical layer-by-layer loop (pinned by test);
//   - a Branch layer reads the post-merge output of its tap (src[l] =
//     Layers[l].Tap) and its output adds into the running main-path
//     activation; backward, the merge point's gradient fans into both
//     the main path (unchanged) and the branch, whose input gradient
//     accumulates at the tap.
//
// The same walkers serve the sequential Network (exec.go) and every
// internal/dist engine, which supply strategy-specific per-layer
// compute (sharded convolutions, halo-exchanged blocks, …) while the
// graph owns the routing — so partitioned execution cannot disagree
// with the sequential baseline about the model's topology.
type Graph struct {
	model *Model
	// src[l] is the layer whose post-merge output feeds layer l
	// (-1 = network input). For Branch layers src[l] = Layers[l].Tap.
	src []int
	// mergeInto[l] is, for a Branch layer, the main-path layer whose
	// output it adds into (the nearest non-branch predecessor); -1 for
	// main-path layers.
	mergeInto []int
	// tapped[l] reports that some Branch layer taps l, so out[l] must
	// stay live through the forward pass and collects an extra gradient
	// contribution in the backward pass.
	tapped   []bool
	branches int
}

// CompileGraph resolves a model's layer list into an executable graph.
// It rejects structures the executor cannot run: branches whose tap is
// out of range, taps into other branches, and geometry mismatches
// between tap output and branch input (the checks of Model.validateTap,
// re-run here so hand-built models fail at compile time, not mid-walk).
func CompileGraph(m *Model) (*Graph, error) {
	if len(m.Layers) == 0 {
		return nil, fmt.Errorf("nn: model %q has no layers", m.Name)
	}
	g := &Graph{
		model:     m,
		src:       make([]int, len(m.Layers)),
		mergeInto: make([]int, len(m.Layers)),
		tapped:    make([]bool, len(m.Layers)),
	}
	prev := -1 // most recent main-path layer
	for l := range m.Layers {
		spec := &m.Layers[l]
		if !spec.Branch {
			g.src[l] = prev
			g.mergeInto[l] = -1
			prev = l
			continue
		}
		if prev < 0 {
			return nil, fmt.Errorf("nn: model %q: branch layer %d (%s) has no main-path output to merge into",
				m.Name, l, spec.Name)
		}
		if err := m.validateTap(l); err != nil {
			return nil, err
		}
		g.src[l] = spec.Tap
		g.mergeInto[l] = prev
		if spec.Tap >= 0 {
			g.tapped[spec.Tap] = true
		}
		g.branches++
	}
	// A tap must reference a PRE-merge activation: if some branch's
	// output also adds into the tapped layer's output, the tap would
	// alias a tensor the walk later mutates in place (and "which value
	// does the tap read" becomes ambiguous). The builder idiom never
	// produces this — blocks end with an explicit post-merge layer
	// (ReLU) and taps point there — so reject it loudly.
	for l := range m.Layers {
		if g.mergeInto[l] < 0 {
			continue
		}
		if t := g.mergeInto[l]; g.tapped[t] {
			return nil, fmt.Errorf("nn: model %q: layer %d (%s) is both a merge target and a branch tap; taps must read a post-merge layer (insert e.g. a ReLU after the merge and tap that)",
				m.Name, t, m.Layers[t].Name)
		}
	}
	return g, nil
}

// Model returns the model the graph was compiled from.
func (g *Graph) Model() *Model { return g.model }

// HasBranches reports whether any layer branches (a chain model
// compiles to a branch-free degenerate DAG).
func (g *Graph) HasBranches() bool { return g.branches > 0 }

// Src returns the layer whose post-merge output feeds layer l
// (-1 = network input); for Branch layers this is the tap.
func (g *Graph) Src(l int) int { return g.src[l] }

// MergeInto returns, for a Branch layer, the main-path layer whose
// output the branch adds into; -1 for main-path layers.
func (g *Graph) MergeInto(l int) int { return g.mergeInto[l] }

// Tapped reports whether some Branch layer taps layer l's output.
func (g *Graph) Tapped(l int) bool { return g.tapped[l] }

// LegalCut reports whether a stage boundary between layer c-1 and
// layer c keeps every residual block intact: the layers tap+1 … branch
// must share a stage, because only the chain activation crosses a
// boundary — a cut strictly inside (tap+1, branch] would sever either
// the branch from its tap (the tap tensor would never arrive) or the
// branch from its merge target (the boundary tensor would be
// pre-merge). A cut AT tap+1 is legal: the stage input then IS the tap.
func (g *Graph) LegalCut(c int) bool {
	_, ok := g.cutViolation(c)
	return ok == nil
}

// cutViolation returns the first branch layer a cut at c would sever,
// or -1 and nil when the cut is legal.
func (g *Graph) cutViolation(c int) (int, error) {
	if c <= 0 || c >= len(g.src) {
		return -1, fmt.Errorf("nn: cut position %d outside 1..%d", c, len(g.src)-1)
	}
	for l := range g.src {
		if g.mergeInto[l] < 0 {
			continue
		}
		if g.src[l]+1 < c && c <= l {
			return l, fmt.Errorf("nn: a stage boundary before layer %d (%s) would cut the residual block of branch layer %d (%s), which spans layers %d..%d",
				c, g.model.Layers[c].Name, l, g.model.Layers[l].Name, g.src[l]+1, l)
		}
	}
	return -1, nil
}

// CutViolation names the branch layer a cut at c would sever (the
// error's text identifies the offending layers); nil means legal.
func (g *Graph) CutViolation(c int) error {
	_, err := g.cutViolation(c)
	return err
}

// ForwardRange walks layers [start, end) of the graph forward from the
// range input x, calling apply(l, xin) for each layer's compute and
// routing activations per the DAG: main-path layers chain, Branch
// layers read their tap's post-merge output and their result adds (in
// place) into the running main-path activation. x stands in for every
// source below start — legal stage ranges guarantee any such source is
// exactly the stage input (see LegalCut); callers must treat apply's
// previous return values as owned by the walk (the merge mutates the
// running activation in place).
//
// For a branch-free range the walk degenerates to cur = apply(l, cur):
// bit-identical to the historical chain loop.
func (g *Graph) ForwardRange(start, end int, x *tensor.Tensor, apply func(l int, xin *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {
	var outs []*tensor.Tensor
	if g.branches > 0 {
		outs = make([]*tensor.Tensor, len(g.src))
	}
	cur := x
	for l := start; l < end; l++ {
		if g.mergeInto[l] < 0 {
			cur = apply(l, cur)
			if outs != nil {
				outs[l] = cur
			}
			continue
		}
		xin := x
		if s := g.src[l]; s >= start {
			xin = outs[s]
		}
		y := apply(l, xin)
		// Additive merge: the branch output joins the preceding
		// main-path output. cur is owned by the walk (it came from
		// apply), so the add is in place; outs[mergeInto[l]] already
		// aliases cur and stays consistent. Defensive corner: a merge
		// target below start means cur still IS the caller's range
		// input (no legal stage cut produces this — see LegalCut —
		// but an ad-hoc range must not mutate the caller's tensor), so
		// clone first. Tap views can never alias cur here: CompileGraph
		// rejects taps into merge targets.
		if g.mergeInto[l] < start {
			cur = cur.Clone()
		}
		cur.Add(y)
	}
	return cur
}

// BackwardRange walks layers [end-1 … start] backward from dTop (the
// gradient of the range's final post-merge output), calling
// apply(l, dy) for each layer's backward compute; apply returns the
// layer's INPUT gradient (nil to stop propagation where no consumer
// exists, e.g. the bottom layer of a training run). Routing mirrors
// ForwardRange: a merge point's gradient flows unchanged into both the
// main path and the branch, and a branch's input gradient accumulates
// at its tap — added into the main-path gradient stream when the walk
// reaches the tap, or into the returned range-input gradient when the
// tap lies below start. The returned tensor is the gradient of the
// range input (nil if the bottom apply returned nil and no branch
// contributed).
//
// apply must not mutate dy: at a merge point the same tensor is handed
// to the branch and then continues down the main path.
func (g *Graph) BackwardRange(start, end int, dTop *tensor.Tensor, apply func(l int, dy *tensor.Tensor) *tensor.Tensor) *tensor.Tensor {
	var pend []*tensor.Tensor
	if g.branches > 0 {
		// pend[s+1] accumulates branch input gradients for source s
		// (s = -1, the range input, lands in pend[0] … relative to
		// start so sub-ranges stay cheap).
		pend = make([]*tensor.Tensor, len(g.src)+1)
	}
	below := func(s int) int { // pend slot of source s (clamped below start)
		if s < start {
			return start
		}
		return s + 1
	}
	cur := dTop
	for l := end - 1; l >= start; l-- {
		if g.mergeInto[l] >= 0 {
			if dxb := apply(l, cur); dxb != nil {
				slot := below(g.src[l])
				if pend[slot] == nil {
					pend[slot] = dxb
				} else {
					pend[slot].Add(dxb)
				}
			}
			continue
		}
		if pend != nil {
			if p := pend[l+1]; p != nil {
				// cur is owned by the walk (a prior apply's return or
				// dTop, which the caller hands over), so accumulate the
				// tap contribution in place.
				cur.Add(p)
				pend[l+1] = nil
			}
		}
		cur = apply(l, cur)
	}
	if pend != nil {
		if p := pend[start]; p != nil {
			if cur == nil {
				cur = p
			} else {
				cur.Add(p)
			}
		}
	}
	return cur
}
