package nn

import (
	"math/rand"
	"strings"
	"testing"

	"paradl/internal/tensor"
)

// residualModel builds a small smooth (conv/FC only, so finite
// differences are well-behaved) projection-shortcut model:
//
//	conv0 ── conv1(s2) ──(+)── fc
//	   └── shortcut(s2) ──┘
func residualModel(t *testing.T) *Model {
	t.Helper()
	b := NewBuilder("residual-test", 2, []int{6, 6})
	b.Conv(4, 3, 1, 1)
	c, dims := b.Snapshot()
	b.Conv(4, 3, 2, 1)
	b.ShortcutConv(c, dims, 4, 1, 2, 0)
	b.FC(3)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// inputTapModel branches from the network input itself (Tap = -1).
func inputTapModel(t *testing.T) *Model {
	t.Helper()
	b := NewBuilder("input-tap", 2, []int{5, 5})
	c, dims := b.Snapshot() // before any layer: the network input
	b.Conv(2, 3, 1, 1)
	b.ShortcutConv(c, dims, 2, 1, 1, 0)
	b.FC(3)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCompileGraphResolvesResidual(t *testing.T) {
	m := residualModel(t)
	g, err := CompileGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasBranches() {
		t.Fatal("residual model must report branches")
	}
	if g.Src(2) != 0 || g.MergeInto(2) != 1 {
		t.Fatalf("branch routing src=%d merge=%d, want 0 and 1", g.Src(2), g.MergeInto(2))
	}
	if !g.Tapped(0) || g.Tapped(1) {
		t.Fatalf("tapped flags wrong: %v %v", g.Tapped(0), g.Tapped(1))
	}
	// Chain models are the degenerate DAG.
	chain, err := CompileGraph(&Model{Name: "chain", InputChannels: 2, InputDims: []int{4, 4}, Layers: []Layer{
		{Kind: ReLU, Name: "r1", C: 2, F: 2, In: []int{4, 4}, Out: []int{4, 4}},
		{Kind: ReLU, Name: "r2", C: 2, F: 2, In: []int{4, 4}, Out: []int{4, 4}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if chain.HasBranches() || chain.Src(1) != 0 || chain.Src(0) != -1 {
		t.Fatal("chain model must compile to the degenerate DAG")
	}
}

func TestCompileGraphRejectsBadStructures(t *testing.T) {
	m := residualModel(t)
	m.Layers[2].Tap = 5 // out of range
	if _, err := CompileGraph(m); err == nil {
		t.Fatal("out-of-range tap must be rejected")
	}
	m = residualModel(t)
	m.Layers[2].Tap = 1 // geometry mismatch: layer 1 outputs 3×3, branch expects 6×6
	if _, err := CompileGraph(m); err == nil {
		t.Fatal("tap geometry mismatch must be rejected")
	}
	// A branch with no main-path output to merge into.
	bad := &Model{Name: "bad", InputChannels: 2, InputDims: []int{4, 4}, Layers: []Layer{
		{Kind: Conv, Name: "s", C: 2, F: 2, In: []int{4, 4}, Out: []int{4, 4},
			Kernel: []int{1, 1}, Stride: []int{1, 1}, Pad: []int{0, 0}, Branch: true, Tap: -1},
	}}
	if _, err := CompileGraph(bad); err == nil {
		t.Fatal("leading branch must be rejected")
	}
}

// TestTapIntoMergeTargetRejected: a branch tapping the very layer it
// merges into (no main-path layer between tap and shortcut) would make
// the saved tap state alias the in-place merge — the graph compiler
// and Build/Validate must both refuse the shape and steer the caller
// toward tapping a post-merge layer.
func TestTapIntoMergeTargetRejected(t *testing.T) {
	b := NewBuilder("self-merge", 2, []int{6, 6})
	b.Conv(4, 3, 1, 1)
	c, dims := b.Snapshot()
	b.ShortcutConv(c, dims, 4, 1, 1, 0) // tap == merge target: conv1
	b.FC(3)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "merge target") {
		t.Fatalf("zero-main-path residual must be rejected, got %v", err)
	}

	// Same shape with an intervening main-path layer is fine.
	ok := NewBuilder("post-merge-tap", 2, []int{6, 6})
	ok.Conv(4, 3, 1, 1)
	c, dims = ok.Snapshot()
	ok.Conv(4, 3, 1, 1)
	ok.ShortcutConv(c, dims, 4, 1, 1, 0)
	ok.ReLU()
	ok.FC(3)
	if _, err := ok.Build(); err != nil {
		t.Fatalf("tap with intervening main path must validate: %v", err)
	}
}

// TestSnapshotConsumedPerShortcut: ShortcutConv consumes its Snapshot,
// so a second same-geometry block that forgets to re-snapshot cannot
// silently reuse the first block's tap (a long-range shortcut the
// parity tests could never notice). Here the fallback inference lands
// on the adjacent main-path conv — a merge target — so Build fails
// loudly; snapshotting each block builds the intended taps.
func TestSnapshotConsumedPerShortcut(t *testing.T) {
	build := func(resnap bool) (*Model, error) {
		b := NewBuilder("two-blocks", 2, []int{6, 6})
		b.Conv(4, 3, 1, 1).ReLU()
		c, dims := b.Snapshot() // block 1 entry: relu1 (index 1)
		b.Conv(4, 3, 1, 1)
		b.ShortcutConv(c, dims, 4, 1, 1, 0)
		b.ReLU() // block 2 entry (index 4), same geometry as block 1's
		if resnap {
			c, dims = b.Snapshot()
		}
		b.Conv(4, 3, 1, 1)
		b.ShortcutConv(c, dims, 4, 1, 1, 0)
		b.ReLU()
		b.FC(3)
		return b.Build()
	}
	if _, err := build(false); err == nil {
		t.Fatal("forgotten Snapshot must not silently reuse the stale tap")
	}
	m, err := build(true)
	if err != nil {
		t.Fatal(err)
	}
	var taps []int
	for i := range m.Layers {
		if m.Layers[i].Branch {
			taps = append(taps, m.Layers[i].Tap)
		}
	}
	if len(taps) != 2 || taps[0] != 1 || taps[1] != 4 {
		t.Fatalf("taps = %v, want [1 4]", taps)
	}
}

func TestLegalCutAroundResidualBlock(t *testing.T) {
	m := residualModel(t)
	g, err := CompileGraph(m)
	if err != nil {
		t.Fatal(err)
	}
	// Block spans layers 1..2 (tap 0): a cut at 1 is legal (the stage
	// input IS the tap), cuts at 2 sever the branch from its merge
	// target, a cut at 3 is past the block.
	if !g.LegalCut(1) || !g.LegalCut(3) {
		t.Fatal("cuts at the block boundary must be legal")
	}
	if g.LegalCut(2) {
		t.Fatal("a cut inside the residual block must be illegal")
	}
	err = g.CutViolation(2)
	if err == nil || !strings.Contains(err.Error(), "conv3_shortcut") {
		t.Fatalf("violation must name the offending branch layer, got %v", err)
	}
}

// TestChainDAGBitIdentity: for chain models the graph walk must execute
// the very same operation sequence as the historical layer-by-layer
// loop — losses and gradients bit for bit.
func TestChainDAGBitIdentity(t *testing.T) {
	m := smallModel(t) // the chain model of nn_test.go (conv/bn/pool/fc)
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(m, rng)
	x := tensor.New(3, 3, 8, 8).RandN(rng, 1)
	labels := []int{0, 4, 9}

	// Manual chain loop (the pre-DAG execution path).
	states := make([]*LayerState, m.G())
	cur := x
	for l := 0; l < m.G(); l++ {
		cur, states[l] = net.ForwardLayer(l, cur)
	}
	wantLoss, dLogits := tensor.SoftmaxCrossEntropy(cur, labels)
	wantGrads := make([]Grads, m.G())
	dcur := dLogits.Clone()
	for l := m.G() - 1; l >= 0; l-- {
		dcur, wantGrads[l] = net.BackwardLayer(l, dcur, states[l])
	}

	logits, st2 := net.Forward(x)
	gotLoss, dl2 := tensor.SoftmaxCrossEntropy(logits, labels)
	dx, gotGrads := net.Backward(dl2, st2)
	if gotLoss != wantLoss {
		t.Fatalf("loss %v != chain loss %v", gotLoss, wantLoss)
	}
	if dx.MaxDiff(dcur) != 0 {
		t.Fatal("input gradient differs from the chain loop")
	}
	for l := range wantGrads {
		for name, pair := range map[string][2]*tensor.Tensor{
			"W": {gotGrads[l].W, wantGrads[l].W}, "B": {gotGrads[l].B, wantGrads[l].B},
			"Gamma": {gotGrads[l].Gamma, wantGrads[l].Gamma}, "Beta": {gotGrads[l].Beta, wantGrads[l].Beta},
		} {
			got, want := pair[0], pair[1]
			if (got == nil) != (want == nil) {
				t.Fatalf("layer %d %s: nil mismatch", l, name)
			}
			if got != nil && got.MaxDiff(want) != 0 {
				t.Fatalf("layer %d %s gradient differs from the chain loop", l, name)
			}
		}
	}
}

// TestResidualForwardMatchesManual: the DAG forward must equal the
// hand-composed residual computation a + shortcut(z) on the same
// parameters.
func TestResidualForwardMatchesManual(t *testing.T) {
	m := residualModel(t)
	rng := rand.New(rand.NewSource(4))
	net := NewNetwork(m, rng)
	x := tensor.New(2, 2, 6, 6).RandN(rng, 1)

	logits, _ := net.Forward(x)

	cs := func(l int) tensor.ConvSpec {
		return tensor.ConvSpec{Stride: m.Layers[l].Stride, Pad: m.Layers[l].Pad}
	}
	z := tensor.ConvForward(x, net.Params[0].W, net.Params[0].B, cs(0))
	a := tensor.ConvForward(z, net.Params[1].W, net.Params[1].B, cs(1))
	s := tensor.ConvForward(z, net.Params[2].W, net.Params[2].B, cs(2))
	a.Add(s)
	flat := a.Reshape(a.Dim(0), a.Len()/a.Dim(0))
	want := tensor.FCForward(flat, net.Params[3].W, net.Params[3].B)
	if logits.MaxDiff(want) > 1e-12 {
		t.Fatalf("DAG forward differs from manual residual composition by %g", logits.MaxDiff(want))
	}
}

// lossOf runs one forward pass and returns the softmax loss — the
// scalar field the finite-difference checks probe.
func lossOf(net *Network, x *tensor.Tensor, labels []int) float64 {
	logits, _ := net.Forward(x)
	loss, _ := tensor.SoftmaxCrossEntropy(logits, labels)
	return loss
}

// fdCheck verifies dLoss/dθ for a handful of elements of tensor w whose
// analytic gradient is g, via central differences on the full forward
// pass.
func fdCheck(t *testing.T, net *Network, x *tensor.Tensor, labels []int, w, g *tensor.Tensor, what string) {
	t.Helper()
	const eps = 1e-6
	data := w.Data()
	stride := len(data)/5 + 1
	for i := 0; i < len(data); i += stride {
		orig := data[i]
		data[i] = orig + eps
		up := lossOf(net, x, labels)
		data[i] = orig - eps
		down := lossOf(net, x, labels)
		data[i] = orig
		numeric := (up - down) / (2 * eps)
		analytic := g.Data()[i]
		if diff := numeric - analytic; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("%s[%d]: analytic %.8g vs numeric %.8g", what, i, analytic, numeric)
		}
	}
}

// TestResidualGradientsFiniteDifference: the merge join must fan the
// output gradient into both branches and the shortcut's input gradient
// must accumulate at the tap — checked against central differences on
// the projection shortcut, the tapped conv (which sums both paths'
// contributions), the main-path conv, and the network input.
func TestResidualGradientsFiniteDifference(t *testing.T) {
	m := residualModel(t)
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork(m, rng)
	x := tensor.New(2, 2, 6, 6).RandN(rng, 1)
	labels := []int{1, 2}

	logits, states := net.Forward(x)
	_, dLogits := tensor.SoftmaxCrossEntropy(logits, labels)
	dx, grads := net.Backward(dLogits, states)

	fdCheck(t, net, x, labels, net.Params[2].W, grads[2].W, "shortcut W")
	fdCheck(t, net, x, labels, net.Params[2].B, grads[2].B, "shortcut B")
	fdCheck(t, net, x, labels, net.Params[0].W, grads[0].W, "tapped conv W")
	fdCheck(t, net, x, labels, net.Params[1].W, grads[1].W, "main conv W")
	fdCheck(t, net, x, labels, x, dx, "input")
}

// TestInputTapGradientsFiniteDifference: a branch tapping the network
// input itself must contribute to the returned input gradient.
func TestInputTapGradientsFiniteDifference(t *testing.T) {
	m := inputTapModel(t)
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(m, rng)
	x := tensor.New(2, 2, 5, 5).RandN(rng, 1)
	labels := []int{0, 2}

	logits, states := net.Forward(x)
	_, dLogits := tensor.SoftmaxCrossEntropy(logits, labels)
	dx, grads := net.Backward(dLogits, states)

	fdCheck(t, net, x, labels, net.Params[1].W, grads[1].W, "shortcut W")
	fdCheck(t, net, x, labels, x, dx, "input")
}

// TestResidualTrainStepReducesLoss: end-to-end SGD through the DAG.
func TestResidualTrainStepReducesLoss(t *testing.T) {
	m := residualModel(t)
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(m, rng)
	x := tensor.New(4, 2, 6, 6).RandN(rng, 1)
	labels := []int{0, 1, 2, 0}
	first := net.TrainStep(x, labels, 0.05)
	var last float64
	for i := 0; i < 30; i++ {
		last = net.TrainStep(x, labels, 0.05)
	}
	if last >= first {
		t.Fatalf("residual training did not reduce loss: first %g last %g", first, last)
	}
}
