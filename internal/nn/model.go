package nn

import (
	"fmt"
	"math"

	"paradl/internal/tensor"
)

// Model is an ordered list of G layers plus dataset geometry — exactly
// the information the ParaDL oracle consumes.
type Model struct {
	Name string
	// InputChannels and InputDims describe one sample (e.g. 3 × [226,
	// 226] for ImageNet geometry, 4 × [256, 256, 256] for CosmoFlow).
	InputChannels int
	InputDims     []int
	// Classes is the output dimensionality of the final layer.
	Classes int
	Layers  []Layer
}

// G returns the layer count (the paper's G).
func (m *Model) G() int { return len(m.Layers) }

// Params returns the total number of weight+bias elements.
func (m *Model) Params() int64 {
	var p int64
	for i := range m.Layers {
		p += m.Layers[i].WeightSize() + m.Layers[i].BiasSize()
	}
	return p
}

// TotalWeights returns Σ|w_l| (excluding biases) — the Allreduce volume
// of the gradient-exchange phase.
func (m *Model) TotalWeights() int64 {
	var p int64
	for i := range m.Layers {
		p += m.Layers[i].WeightSize()
	}
	return p
}

// TotalActivations returns Σ(|x_l| + |y_l|) per sample.
func (m *Model) TotalActivations() int64 {
	var a int64
	for i := range m.Layers {
		a += m.Layers[i].InSize() + m.Layers[i].OutSize()
	}
	return a
}

// SumOutputs returns Σ_{l<G'}|y_l| per sample over the first G' layers
// (G' = G-1 gives the filter/channel communication volume of Table 3).
func (m *Model) SumOutputs(upTo int) int64 {
	var a int64
	for i := 0; i < upTo && i < len(m.Layers); i++ {
		a += m.Layers[i].OutSize()
	}
	return a
}

// FwdFLOPs returns total forward FLOPs per sample.
func (m *Model) FwdFLOPs() int64 {
	var f int64
	for i := range m.Layers {
		f += m.Layers[i].FwdFLOPs()
	}
	return f
}

// BwdFLOPs returns total backward FLOPs per sample.
func (m *Model) BwdFLOPs() int64 {
	var f int64
	for i := range m.Layers {
		f += m.Layers[i].BwdFLOPs()
	}
	return f
}

// MinFilters returns min_l F_l over weighted layers — the filter-
// parallel scaling limit (Table 3: p ≤ min F_l).
func (m *Model) MinFilters() int {
	minF := math.MaxInt
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Kind == Conv || l.Kind == FC {
			if l.F < minF {
				minF = l.F
			}
		}
	}
	if minF == math.MaxInt {
		return 0
	}
	return minF
}

// MinChannels returns min_l C_l over weighted layers EXCLUDING the first
// (the paper implements channel parallelism from the second layer since
// e.g. ImageNet has only 3 input channels).
func (m *Model) MinChannels() int {
	minC := math.MaxInt
	seenFirst := false
	for i := range m.Layers {
		l := &m.Layers[i]
		if l.Kind != Conv && l.Kind != FC {
			continue
		}
		if !seenFirst {
			seenFirst = true
			continue
		}
		if l.C < minC {
			minC = l.C
		}
	}
	if minC == math.MaxInt {
		return 0
	}
	return minC
}

// MinSpatial returns min_l ∏(spatial extent of x_l) over the spatially
// parallelizable trunk — the spatial scaling limit of Table 3
// (p ≤ min W_l×H_l). Layers from the first FC onward are excluded: the
// paper never partitions the classifier head spatially (§4.2) and
// aggregates activations before it (§4.5.1).
func (m *Model) MinSpatial() int {
	minS := math.MaxInt
	for i := range m.Layers {
		if m.Layers[i].Kind == FC {
			break
		}
		v := int(volume(m.Layers[i].In))
		if v < minS {
			minS = v
		}
	}
	if minS == math.MaxInt {
		return 0
	}
	return minS
}

// Validate checks that consecutive layers agree on geometry.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("nn: model %q has no layers", m.Name)
	}
	for i := range m.Layers {
		if err := m.Layers[i].Validate(); err != nil {
			return fmt.Errorf("model %q: %w", m.Name, err)
		}
		if i == 0 {
			continue
		}
		// When prev is a Branch layer its output F equals the main
		// path's F (enforced below), so checking continuity against it
		// is equivalent to checking against the main path.
		prev, cur := &m.Layers[i-1], &m.Layers[i]
		if cur.Branch {
			if cur.F != prev.F {
				return fmt.Errorf("nn: model %q: branch layer %d (%s) outputs F=%d, cannot merge into main path F=%d",
					m.Name, i, cur.Name, cur.F, prev.F)
			}
			if err := m.validateTap(i); err != nil {
				return err
			}
			continue
		}
		if prev.F != cur.C {
			return fmt.Errorf("nn: model %q: layer %d (%s) expects C=%d but layer %d (%s) outputs F=%d",
				m.Name, i, cur.Name, cur.C, i-1, prev.Name, prev.F)
		}
		// FC layers flatten, so spatial continuity only applies between
		// spatial layers of equal rank.
		if cur.Kind != FC && len(prev.Out) == len(cur.In) {
			for d := range cur.In {
				if prev.Out[d] != cur.In[d] {
					return fmt.Errorf("nn: model %q: layer %d (%s) spatial dim %d: in %d != previous out %d",
						m.Name, i, cur.Name, d, cur.In[d], prev.Out[d])
				}
			}
		}
	}
	// Structural cross-checks (taps into merge targets, leading
	// branches) live in the graph compiler; running it here means a
	// model that validates always executes.
	if _, err := CompileGraph(m); err != nil {
		return err
	}
	return nil
}

// validateTap checks that branch layer i's Tap names an executable
// source whose output geometry matches the branch input: an earlier
// non-branch layer (its post-merge output feeds the branch) or the
// network input (Tap = -1). Merges can then be executed, not just
// priced — see CompileGraph.
func (m *Model) validateTap(i int) error {
	cur := &m.Layers[i]
	if cur.Kind != Conv {
		return fmt.Errorf("nn: model %q: branch layer %d (%s) has kind %v; only convolutions can branch",
			m.Name, i, cur.Name, cur.Kind)
	}
	tap := cur.Tap
	if tap < -1 || tap >= i {
		return fmt.Errorf("nn: model %q: branch layer %d (%s) taps layer %d, want -1 (network input) .. %d",
			m.Name, i, cur.Name, tap, i-1)
	}
	srcF, srcOut := m.InputChannels, m.InputDims
	srcName := "network input"
	if tap >= 0 {
		src := &m.Layers[tap]
		if src.Branch {
			return fmt.Errorf("nn: model %q: branch layer %d (%s) taps branch layer %d (%s); taps must name a main-path layer",
				m.Name, i, cur.Name, tap, src.Name)
		}
		srcF, srcOut = src.F, src.Out
		srcName = src.Name
	}
	if cur.C != srcF || !tensor.EqualShapes(cur.In, srcOut) {
		return fmt.Errorf("nn: model %q: branch layer %d (%s) expects C=%d over %v but tap %s produces F=%d over %v",
			m.Name, i, cur.Name, cur.C, cur.In, srcName, srcF, srcOut)
	}
	return nil
}

// Builder incrementally constructs a Model, tracking the running output
// shape so callers only specify what changes.
type Builder struct {
	m       *Model
	curC    int
	curDims []int
	counts  map[LayerKind]int
	// tapIdx is the layer index recorded by the most recent Snapshot
	// call (-1 = the network input); ShortcutConv branches from it.
	tapIdx  int
	snapped bool
}

// NewBuilder starts a model with the given input geometry.
func NewBuilder(name string, inputChannels int, inputDims []int) *Builder {
	return &Builder{
		m: &Model{
			Name:          name,
			InputChannels: inputChannels,
			InputDims:     append([]int(nil), inputDims...),
		},
		curC:    inputChannels,
		curDims: append([]int(nil), inputDims...),
		counts:  map[LayerKind]int{},
	}
}

func (b *Builder) autoName(k LayerKind) string {
	b.counts[k]++
	return fmt.Sprintf("%s%d", k, b.counts[k])
}

// Conv appends a convolution with F filters and uniform kernel/stride/
// pad across all spatial dims.
func (b *Builder) Conv(f, kernel, stride, pad int) *Builder {
	d := len(b.curDims)
	k := uniform(d, kernel)
	s := uniform(d, stride)
	p := uniform(d, pad)
	out := make([]int, d)
	for i := range out {
		out[i] = convOut(b.curDims[i], kernel, stride, pad)
	}
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: Conv, Name: b.autoName(Conv),
		C: b.curC, F: f,
		In: append([]int(nil), b.curDims...), Out: out,
		Kernel: k, Stride: s, Pad: p,
	})
	b.curC = f
	b.curDims = out
	return b
}

// Pool appends a pooling layer with a uniform window.
func (b *Builder) Pool(kind int, window, stride, pad int) *Builder {
	d := len(b.curDims)
	out := make([]int, d)
	for i := range out {
		out[i] = convOut(b.curDims[i], window, stride, pad)
	}
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: Pool, Name: b.autoName(Pool),
		C: b.curC, F: b.curC,
		In: append([]int(nil), b.curDims...), Out: out,
		Kernel: uniform(d, window), Stride: uniform(d, stride), Pad: uniform(d, pad),
		PoolKind: poolKind(kind),
	})
	b.curDims = out
	return b
}

// ReLU appends a rectifier.
func (b *Builder) ReLU() *Builder {
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: ReLU, Name: b.autoName(ReLU),
		C: b.curC, F: b.curC,
		In: append([]int(nil), b.curDims...), Out: append([]int(nil), b.curDims...),
	})
	return b
}

// BatchNorm appends channel-wise batch normalization.
func (b *Builder) BatchNorm() *Builder {
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: BatchNorm, Name: b.autoName(BatchNorm),
		C: b.curC, F: b.curC,
		In: append([]int(nil), b.curDims...), Out: append([]int(nil), b.curDims...),
	})
	return b
}

// ShortcutConv appends a Branch convolution whose input geometry (c
// input channels over inDims) is taken from an earlier point of the
// network — the ResNet downsample/projection shortcut. The tap point is
// the layer recorded by the most recent Snapshot call (callers snapshot
// at block entry), so the branch is executable, not just priced; each
// ShortcutConv consumes its snapshot, and without one the nearest
// earlier main-path layer matching (c, inDims) is inferred. The
// shortcut's output must match the current
// main-path geometry (channel count f and the current spatial extent),
// which Build verifies.
func (b *Builder) ShortcutConv(c int, inDims []int, f, kernel, stride, pad int) *Builder {
	d := len(inDims)
	out := make([]int, d)
	for i := range out {
		out[i] = convOut(inDims[i], kernel, stride, pad)
	}
	tap := b.tapIdx
	if !b.snapped {
		tap = b.inferTap(c, inDims)
	}
	// Consume the snapshot: each shortcut needs its own Snapshot call,
	// so a forgotten one cannot silently reuse an earlier block's tap
	// (same-geometry blocks would validate and miswire undetected).
	b.snapped = false
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: Conv, Name: b.autoName(Conv) + "_shortcut",
		C: c, F: f,
		In: append([]int(nil), inDims...), Out: out,
		Kernel: uniform(d, kernel), Stride: uniform(d, stride), Pad: uniform(d, pad),
		Branch: true,
		Tap:    tap,
	})
	return b
}

// inferTap finds the nearest earlier main-path layer producing c
// channels over dims, falling back to the network input; Validate
// rejects the result if nothing matches.
func (b *Builder) inferTap(c int, dims []int) int {
	for i := len(b.m.Layers) - 1; i >= 0; i-- {
		l := &b.m.Layers[i]
		if !l.Branch && l.F == c && tensor.EqualShapes(l.Out, dims) {
			return i
		}
	}
	return -1
}

// Snapshot reports the builder's current channel count and spatial
// extent, and records the current position as the tap point of the next
// ShortcutConv (the ResNet idiom: snapshot at block entry, branch at
// block exit).
func (b *Builder) Snapshot() (c int, dims []int) {
	b.tapIdx = len(b.m.Layers) - 1
	b.snapped = true
	return b.curC, append([]int(nil), b.curDims...)
}

// FC appends a fully-connected layer with out outputs; it consumes the
// whole current extent (flattening it).
func (b *Builder) FC(out int) *Builder {
	outDims := uniform(len(b.curDims), 1)
	if len(outDims) == 0 {
		outDims = []int{1}
	}
	in := append([]int(nil), b.curDims...)
	if len(in) == 0 {
		in = []int{1}
	}
	b.m.Layers = append(b.m.Layers, Layer{
		Kind: FC, Name: b.autoName(FC),
		C: b.curC, F: out,
		In: in, Out: outDims,
	})
	b.curC = out
	b.curDims = outDims
	return b
}

// Build finalizes and validates the model.
func (b *Builder) Build() (*Model, error) {
	b.m.Classes = b.curC
	if err := b.m.Validate(); err != nil {
		return nil, err
	}
	return b.m, nil
}

// MustBuild is Build that panics on error (for the static model zoo).
func (b *Builder) MustBuild() *Model {
	m, err := b.Build()
	if err != nil {
		panic(err)
	}
	return m
}

func uniform(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func convOut(in, k, s, p int) int {
	n := in + 2*p - k
	if n < 0 {
		panic(fmt.Sprintf("nn: kernel %d larger than padded input %d", k, in+2*p))
	}
	return n/s + 1
}

// Pool kind constants re-exported for Builder.Pool readability.
const (
	MaxPool = 0
	AvgPool = 1
)

func poolKind(kind int) tensor.PoolKind {
	switch kind {
	case MaxPool:
		return tensor.MaxPool
	case AvgPool:
		return tensor.AvgPool
	default:
		panic(fmt.Sprintf("nn: unknown pool kind %d", kind))
	}
}
