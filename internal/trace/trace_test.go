package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestPhaseVocabulary pins the closed vocabulary: names, count, and
// String round-trip. The export format, the summary keys, and the
// metric labels all use these strings, so a change here is a schema
// change.
func TestPhaseVocabulary(t *testing.T) {
	want := []string{
		"compute-forward", "compute-backward", "collective-launch",
		"collective-wait", "halo", "pipeline-transfer", "bn-sync",
		"checkpoint-put", "idle", "recovery",
	}
	ps := Phases()
	if len(ps) != len(want) || int(NumPhases) != len(want) {
		t.Fatalf("vocabulary size = %d, want %d", len(ps), len(want))
	}
	for i, p := range ps {
		if p.String() != want[i] {
			t.Errorf("phase %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if s := Phase(200).String(); s != "phase(200)" {
		t.Errorf("out-of-range String = %q", s)
	}
}

// TestBeginEndTiling checks that Begin/End produce contiguous spans:
// each span starts where the previous ended, phases and iteration
// labels are attributed correctly, and Begin with the open phase is a
// no-op rather than a fragment.
func TestBeginEndTiling(t *testing.T) {
	r := NewRecorder()
	pe := r.PE(0)
	pe.Iter(0)
	pe.Begin(ComputeForward)
	pe.Begin(ComputeForward) // same phase: must not close the span
	pe.Begin(CollectiveWait)
	pe.Iter(1)
	pe.Begin(ComputeBackward)
	pe.End()
	pe.End() // double End: no-op

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(evs), evs)
	}
	wantPhases := []Phase{ComputeForward, CollectiveWait, ComputeBackward}
	wantIters := []int32{0, 0, 1}
	for i, e := range evs {
		if e.Phase != wantPhases[i] {
			t.Errorf("event %d phase = %v, want %v", i, e.Phase, wantPhases[i])
		}
		if e.Iter != wantIters[i] {
			t.Errorf("event %d iter = %d, want %d", i, e.Iter, wantIters[i])
		}
		if e.Dur < 0 {
			t.Errorf("event %d negative duration %d", i, e.Dur)
		}
		if i > 0 && e.Start != evs[i-1].Start+evs[i-1].Dur {
			t.Errorf("event %d start %d does not abut previous end %d",
				i, e.Start, evs[i-1].Start+evs[i-1].Dur)
		}
	}
}

// TestBeginReturnsPrev checks the nesting contract: Begin returns the
// phase that was open so a nested site can restore it.
func TestBeginReturnsPrev(t *testing.T) {
	r := NewRecorder()
	pe := r.PE(0)
	if got := pe.Begin(ComputeBackward); got != ComputeBackward {
		t.Errorf("first Begin returned %v, want the new phase back", got)
	}
	if got := pe.Begin(CollectiveWait); got != ComputeBackward {
		t.Errorf("nested Begin returned %v, want compute-backward", got)
	}
	pe.Begin(ComputeBackward) // restore
	pe.End()
	evs := r.Events()
	if len(evs) != 3 || evs[2].Phase != ComputeBackward {
		t.Fatalf("restore did not reopen compute-backward: %+v", evs)
	}
}

// TestRingWrap checks overflow behaviour: oldest events are dropped,
// Dropped counts them, and Events returns the survivors in order.
func TestRingWrap(t *testing.T) {
	r := NewRecorderCap(16)
	pe := r.PE(0)
	const total = 40
	for i := 0; i < total; i++ {
		pe.Iter(i)
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward) // closes forward span → 1 event per pair
	}
	pe.End()
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want ring capacity 16", len(evs))
	}
	if got, want := r.Dropped(), total*2-16; got != want {
		t.Errorf("Dropped = %d, want %d", got, want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatalf("events out of order after wrap at %d", i)
		}
	}
}

// TestFlightLand checks async window recording and that async events
// do not disturb the open sync span.
func TestFlightLand(t *testing.T) {
	r := NewRecorder()
	pe := r.PE(0)
	pe.Iter(3)
	pe.Begin(ComputeBackward)
	tok := pe.Flight()
	time.Sleep(time.Millisecond)
	pe.Land(tok)
	pe.End()

	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want async + sync: %+v", len(evs), evs)
	}
	var async, syncE *Event
	for i := range evs {
		if evs[i].Async {
			async = &evs[i]
		} else {
			syncE = &evs[i]
		}
	}
	if async == nil || syncE == nil {
		t.Fatalf("missing async or sync event: %+v", evs)
	}
	if async.Phase != CollectiveLaunch || async.Dur < int64(time.Millisecond) {
		t.Errorf("async window wrong: %+v", *async)
	}
	if syncE.Phase != ComputeBackward || syncE.Start+syncE.Dur < async.Start+async.Dur {
		t.Errorf("sync span should cover the async window: sync=%+v async=%+v", *syncE, *async)
	}
	pe.Land(-1) // nil-tracer token: must be ignored
	if n := len(r.Events()); n != 2 {
		t.Errorf("Land(-1) recorded an event: %d", n)
	}
}

// TestNilRecorder checks the whole disabled surface: nil recorder, nil
// tracer, every method a no-op.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	pe := r.PE(0)
	if pe != nil {
		t.Fatal("nil recorder returned non-nil tracer")
	}
	tr := r.Track("aux")
	if tr != nil {
		t.Fatal("nil recorder returned non-nil aux track")
	}
	pe.Iter(1)
	pe.Begin(ComputeForward)
	pe.End()
	pe.Land(pe.Flight())
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder has events: %+v", evs)
	}
	if d := r.Dropped(); d != 0 {
		t.Errorf("nil recorder dropped = %d", d)
	}
	s := r.Summarize()
	if s.Events != 0 || s.Coverage != 1 {
		t.Errorf("nil summary = %+v", s)
	}
}

// TestSummarize builds a two-PE + aux recorder and checks the
// aggregation: phase sums, iteration count, async separation, aux
// separation, and coverage ≈ 1 for tiled tracks.
func TestSummarize(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for rank := 0; rank < 2; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			pe := r.PE(rank)
			for it := 0; it < 3; it++ {
				pe.Iter(it)
				pe.Begin(ComputeForward)
				time.Sleep(200 * time.Microsecond)
				pe.Begin(ComputeBackward)
				tok := pe.Flight()
				time.Sleep(200 * time.Microsecond)
				pe.Begin(CollectiveWait)
				pe.Land(tok)
				time.Sleep(50 * time.Microsecond)
			}
			pe.End()
		}(rank)
	}
	wg.Wait()
	aux := r.Track("ckpt-writer")
	aux.Begin(CheckpointPut)
	time.Sleep(100 * time.Microsecond)
	aux.End()

	s := r.Summarize()
	if s.PEs != 2 {
		t.Errorf("PEs = %d, want 2", s.PEs)
	}
	if s.Iters != 3 {
		t.Errorf("Iters = %d, want 3", s.Iters)
	}
	if s.Dropped != 0 {
		t.Errorf("Dropped = %d", s.Dropped)
	}
	for _, ph := range []Phase{ComputeForward, ComputeBackward, CollectiveWait} {
		if s.PhaseNS[ph.String()] <= 0 {
			t.Errorf("PhaseNS[%s] = %d, want > 0", ph, s.PhaseNS[ph.String()])
		}
	}
	if s.AsyncNS <= 0 {
		t.Errorf("AsyncNS = %d, want > 0", s.AsyncNS)
	}
	if s.AuxNS[CheckpointPut.String()] <= 0 {
		t.Errorf("AuxNS[checkpoint-put] = %d, want > 0", s.AuxNS[CheckpointPut.String()])
	}
	if s.PhaseNS[CheckpointPut.String()] != 0 {
		t.Errorf("aux time leaked into PhaseNS: %d", s.PhaseNS[CheckpointPut.String()])
	}
	// Spans are emitted back-to-back by Begin, so each PE track tiles
	// its own extent exactly.
	if s.Coverage < 0.999 {
		t.Errorf("Coverage = %v, want ≈ 1 for tiled tracks", s.Coverage)
	}
	if s.BusyNS() <= 0 || s.ComputeNS() <= 0 || s.CommNS() <= 0 {
		t.Errorf("aggregate helpers: busy=%d compute=%d comm=%d", s.BusyNS(), s.ComputeNS(), s.CommNS())
	}
	if s.WallNS <= 0 {
		t.Errorf("WallNS = %d", s.WallNS)
	}
}

// TestWriteChrome checks the export is valid trace_event JSON: object
// form, metadata + X + b/e events, µs timestamps, and the embedded
// summary under "paradl".
func TestWriteChrome(t *testing.T) {
	r := NewRecorder()
	pe := r.PE(0)
	pe.Iter(0)
	pe.Begin(ComputeForward)
	tok := pe.Flight()
	time.Sleep(time.Millisecond)
	pe.Begin(CollectiveWait)
	pe.Land(tok)
	pe.End()
	r.Track("supervisor").Begin(Recovery)
	r.Track("supervisor").End()

	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			ID   int     `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		Paradl          Summary `json:"paradl"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	counts := map[string]int{}
	tids := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
		if e.Ph == "M" && e.Name == "thread_name" {
			tids[e.Name]++
		}
	}
	if counts["M"] < 3 { // process_name + 2 thread_names
		t.Errorf("metadata events = %d, want ≥ 3", counts["M"])
	}
	if counts["X"] != 3 { // 2 PE sync spans + 1 supervisor span
		t.Errorf("X events = %d, want 3", counts["X"])
	}
	if counts["b"] != 1 || counts["e"] != 1 {
		t.Errorf("async pair = b:%d e:%d, want 1/1", counts["b"], counts["e"])
	}
	if doc.Paradl.Events != r.Summarize().Events {
		t.Errorf("embedded summary events = %d, want %d", doc.Paradl.Events, r.Summarize().Events)
	}
	// The 1 ms sleep must show up as ≥ 1000 µs somewhere.
	var maxDur float64
	for _, e := range doc.TraceEvents {
		if e.Dur > maxDur {
			maxDur = e.Dur
		}
	}
	if maxDur < 1000 {
		t.Errorf("timestamps not in microseconds? max dur = %v", maxDur)
	}
}

// TestAuxTrackIdentity checks aux tracks get ids that cannot collide
// with PE ranks and keep their registered identity.
func TestAuxTrackIdentity(t *testing.T) {
	r := NewRecorder()
	r.PE(0).Begin(ComputeForward)
	r.PE(0).End()
	a := r.Track("writer")
	if a2 := r.Track("writer"); a2 != a {
		t.Error("Track is not idempotent per name")
	}
	b := r.Track("supervisor")
	a.Begin(CheckpointPut)
	a.End()
	b.Begin(Recovery)
	b.End()
	for _, e := range r.Events() {
		if e.Phase == CheckpointPut || e.Phase == Recovery {
			if e.Track >= 0 {
				t.Errorf("aux event carries PE-range track id %d", e.Track)
			}
		}
	}
	labels, tids := r.trackLabels()
	if labels[0] != "PE 0" || tids[0] != 0 {
		t.Errorf("PE label/tid wrong: %q %d", labels[0], tids[0])
	}
	if labels[a.id] != "writer" || labels[b.id] != "supervisor" {
		t.Errorf("aux labels wrong: %v", labels)
	}
	if tids[a.id] == tids[b.id] || tids[a.id] == 0 {
		t.Errorf("aux tids collide: %v", tids)
	}
}

// TestDisabledAllocs pins the disabled fast path: zero allocations for
// the full per-iteration call pattern on a nil tracer.
func TestDisabledAllocs(t *testing.T) {
	var r *Recorder
	pe := r.PE(3)
	allocs := testing.AllocsPerRun(1000, func() {
		pe.Iter(7)
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward)
		tok := pe.Flight()
		pe.Begin(CollectiveWait)
		pe.Land(tok)
		pe.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates: %v allocs/op", allocs)
	}
}

// TestEnabledSteadyStateAllocs pins the enabled hot path: once the ring
// is warm (appends stop growing it), recording allocates nothing.
func TestEnabledSteadyStateAllocs(t *testing.T) {
	r := NewRecorderCap(64)
	pe := r.PE(0)
	for i := 0; i < 128; i++ { // wrap the ring: all further puts overwrite
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		pe.Iter(7)
		pe.Begin(ComputeForward)
		tok := pe.Flight()
		pe.Begin(ComputeBackward)
		pe.Land(tok)
		pe.Begin(CollectiveWait)
	})
	if allocs != 0 {
		t.Fatalf("enabled steady-state recording allocates: %v allocs/op", allocs)
	}
}

// BenchmarkTracerDisabled / BenchmarkTracerEnabled are the A/B pair
// pinning the disabled-path cost. TestDisabledOverheadBound turns the
// same A/B into a hard test bound.
func BenchmarkTracerDisabled(b *testing.B) {
	var r *Recorder
	pe := r.PE(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pe.Iter(i)
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward)
		pe.End()
	}
}

func BenchmarkTracerEnabled(b *testing.B) {
	r := NewRecorderCap(1 << 10)
	pe := r.PE(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pe.Iter(i)
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward)
		pe.End()
	}
}

// TestDisabledOverheadBound bounds the absolute cost of the disabled
// tracer: the full per-iteration call pattern (≈ a dozen calls) must
// cost well under a microsecond, which against the ≥ 100 µs toy
// iterations measured by the engine tests is far below the 1% overhead
// budget the issue pins. An absolute bound is used rather than a
// noisy measured-iteration ratio; the engines' A/B (traced vs not)
// loss bit-identity is checked in internal/dist.
func TestDisabledOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing bound")
	}
	var r *Recorder
	pe := r.PE(0)
	const rounds = 200_000
	start := time.Now()
	for i := 0; i < rounds; i++ {
		pe.Iter(i)
		pe.Begin(ComputeForward)
		pe.Begin(ComputeBackward)
		tok := pe.Flight()
		pe.Begin(CollectiveWait)
		pe.Land(tok)
		pe.End()
	}
	perRound := time.Since(start) / rounds
	// Seven nil-receiver calls; generous bound (plain runs measure ~5 ns).
	if perRound > 2*time.Microsecond {
		t.Errorf("disabled tracer costs %v per iteration pattern, want ≤ 2µs", perRound)
	}
}
