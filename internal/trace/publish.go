package trace

import (
	"time"

	"paradl/internal/metrics"
)

// PhaseDurationBuckets are the upper bounds (seconds) of the per-phase
// duration histograms: toy-scale spans run from microseconds to tens of
// milliseconds, recovery legs to seconds.
var PhaseDurationBuckets = []float64{
	10e-6, 100e-6, 1e-3, 10e-3, 100e-3, 1, 10,
}

// PublishMetrics folds the recorder's events into reg as operational
// telemetry: one per-phase duration histogram family
// (paradl_phase_duration_seconds{phase=...}) covering sync spans of PE
// tracks, a separate family for aux tracks
// (paradl_aux_duration_seconds), the async in-flight windows as
// paradl_collective_inflight_seconds, and the recovery events of the
// supervisor as paradl_recoveries_total. Call after the run quiesces;
// calling for successive runs accumulates into the same registry, which
// is what a scrape endpoint wants.
func (r *Recorder) PublishMetrics(reg *metrics.Registry) {
	if r == nil || reg == nil {
		return
	}
	inflight := reg.Histogram("paradl_collective_inflight_seconds",
		"In-flight windows of nonblocking collectives (overlap-hidden communication).",
		PhaseDurationBuckets)
	recoveries := reg.Counter("paradl_recoveries_total",
		"Elastic recovery interventions observed on the supervisor track.")
	for _, e := range r.Events() {
		sec := time.Duration(e.Dur).Seconds()
		switch {
		case e.Async:
			inflight.Observe(sec)
		case e.Track < 0:
			reg.HistogramVec("paradl_aux_duration_seconds",
				"Span durations on auxiliary tracks (checkpoint writer, supervisor).",
				"phase", PhaseDurationBuckets, e.Phase.String()).Observe(sec)
			if e.Phase == Recovery {
				recoveries.Inc()
			}
		default:
			reg.HistogramVec("paradl_phase_duration_seconds",
				"Per-PE span durations by phase.",
				"phase", PhaseDurationBuckets, e.Phase.String()).Observe(sec)
		}
	}
}
