package trace

// Summary aggregates a recorder's events into the per-phase time table
// the measured-vs-projected join consumes. Sync spans tile each
// track's timeline, so their per-track sums approximate that track's
// wall clock — Coverage reports how tightly (the CI smoke gates it at
// ≥ 0.95). Async in-flight windows overlap the sync spans and are
// reported separately as overlap-hidden communication.
type Summary struct {
	// PEs is the number of world-rank tracks that recorded events.
	PEs int `json:"pes"`
	// Iters is the number of distinct non-negative iteration labels.
	Iters int `json:"iters"`
	// Events counts recorded events (sync + async), Dropped the events
	// lost to ring wraps.
	Events  int `json:"events"`
	Dropped int `json:"dropped"`
	// WallNS is the observed wall clock: max span end minus min span
	// start over the sync events of the PE tracks.
	WallNS int64 `json:"wall_ns"`
	// PhaseNS sums sync span durations per phase across PE tracks.
	// The aux tracks (checkpoint writer, supervisor) are excluded:
	// they overlap the PE timeline by design.
	PhaseNS map[string]int64 `json:"phase_ns"`
	// AuxNS sums aux-track sync spans per phase (writer disk time,
	// supervisor recovery time).
	AuxNS map[string]int64 `json:"aux_ns,omitempty"`
	// AsyncNS sums the async in-flight windows of nonblocking
	// collectives — the communication the overlap machinery hid
	// behind backward compute.
	AsyncNS int64 `json:"async_ns"`
	// Coverage is min over PE tracks of sum(sync durations) / (last
	// end − first start): 1.0 means the spans tile the track exactly.
	Coverage float64 `json:"coverage"`
}

// BusyNS sums every phase's sync time across PEs.
func (s Summary) BusyNS() int64 {
	var n int64
	for _, v := range s.PhaseNS {
		n += v
	}
	return n
}

// ComputeNS is the compute share (forward + backward/update).
func (s Summary) ComputeNS() int64 {
	return s.PhaseNS[ComputeForward.String()] + s.PhaseNS[ComputeBackward.String()]
}

// CommNS is the exposed (non-hidden) communication share: collective
// launch+wait, halo, pipeline transfer, and BN sync.
func (s Summary) CommNS() int64 {
	return s.PhaseNS[CollectiveLaunch.String()] + s.PhaseNS[CollectiveWait.String()] +
		s.PhaseNS[Halo.String()] + s.PhaseNS[PipelineTransfer.String()] +
		s.PhaseNS[BNSync.String()]
}

// Summarize aggregates the recorder's events. Call only after the
// writing goroutines have quiesced (the run returned, the writer
// drained).
func (r *Recorder) Summarize() Summary {
	s := Summary{PhaseNS: map[string]int64{}, Coverage: 1}
	if r == nil {
		return s
	}
	type extent struct {
		busy     int64
		lo, hi   int64
		nonEmpty bool
	}
	perTrack := map[int32]*extent{}
	iters := map[int32]bool{}
	for _, e := range r.Events() {
		s.Events++
		if e.Async {
			s.AsyncNS += e.Dur
			continue
		}
		if e.Track < 0 {
			if s.AuxNS == nil {
				s.AuxNS = map[string]int64{}
			}
			s.AuxNS[e.Phase.String()] += e.Dur
			continue
		}
		s.PhaseNS[e.Phase.String()] += e.Dur
		if e.Iter >= 0 {
			iters[e.Iter] = true
		}
		x := perTrack[e.Track]
		if x == nil {
			x = &extent{lo: e.Start, hi: e.Start + e.Dur, nonEmpty: true}
			perTrack[e.Track] = x
		}
		x.busy += e.Dur
		if e.Start < x.lo {
			x.lo = e.Start
		}
		if end := e.Start + e.Dur; end > x.hi {
			x.hi = end
		}
	}
	s.PEs = len(perTrack)
	s.Iters = len(iters)
	s.Dropped = r.Dropped()
	var lo, hi int64
	first := true
	for _, x := range perTrack {
		if first {
			lo, hi, first = x.lo, x.hi, false
		} else {
			if x.lo < lo {
				lo = x.lo
			}
			if x.hi > hi {
				hi = x.hi
			}
		}
		if span := x.hi - x.lo; span > 0 {
			if c := float64(x.busy) / float64(span); c < s.Coverage {
				s.Coverage = c
			}
		}
	}
	if !first {
		s.WallNS = hi - lo
	}
	return s
}
