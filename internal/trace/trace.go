// Package trace is the phase-attributed event recorder of the runtime:
// every PE of a dist run (plus auxiliary actors — the async checkpoint
// writer, the elastic supervisor) records which phase of the closed
// vocabulary it is in at every moment, so a run's wall clock decomposes
// into the same terms the analytic oracle projects (compute, gradient
// exchange, halo, pipeline transfer, …) instead of one opaque total.
//
// The design constraints come from the measurement use case:
//
//   - Disabled tracing must be free. Every engine call site holds a
//     *PE tracer that is nil when no recorder is configured, and every
//     method no-ops on the nil receiver — zero allocations and a few
//     nanoseconds per call, pinned by AllocsPerRun and an A/B bench.
//   - Enabled tracing must not perturb what it measures. Each PE
//     writes only its own preallocated ring buffer (single-writer, so
//     no locks or atomics on the hot path) and records a span as one
//     in-place struct store plus a monotonic clock read.
//   - Spans must TILE the timeline. Begin(ph) closes the open span and
//     opens the next, so a PE's spans are contiguous from its first
//     Begin to End — which is what lets the harness gate "per-phase
//     durations sum to the measured wall clock" instead of trusting
//     the instrumentation blindly.
//
// Ring buffers are drained only after the writers have joined (Run
// returns, the writer Drains, the supervisor leg ends), so the reader
// side needs no synchronization either; registering a tracer takes a
// lock, but that happens once per run leg, off the hot path.
package trace

import (
	"fmt"
	"sync"
	"time"
)

// Phase is one entry of the closed phase vocabulary. The vocabulary is
// deliberately small and runtime-oriented: each phase is a thing a PE
// goroutine can be observed doing, and the summary joins them against
// the oracle's analytic terms (compute ↔ FW/BW/WU, the collective and
// transfer phases ↔ GE/FBComm/Halo/PipeP2P).
type Phase uint8

const (
	// ComputeForward is forward-pass arithmetic (kernels, loss).
	ComputeForward Phase = iota
	// ComputeBackward is backward-pass arithmetic plus the optimizer
	// step (the oracle's BW+WU terms).
	ComputeBackward
	// CollectiveLaunch is the synchronous cost of launching a
	// nonblocking collective: packing the bucket and starting the
	// worker. Async in-flight windows are recorded as Async events
	// with this phase.
	CollectiveLaunch
	// CollectiveWait is time blocked in a collective: a blocking
	// allreduce/allgather/reduce-scatter, or waiting an async handle.
	CollectiveWait
	// Halo is the spatial strategy's neighbour halo exchange and
	// scatter (§3.2).
	Halo
	// PipelineTransfer is stage-to-stage activation/gradient traffic
	// (§3.3).
	PipelineTransfer
	// BNSync is synchronized batch normalization's statistic
	// allreduces (§4.5.2).
	BNSync
	// CheckpointPut is checkpoint work: the canonical state gather,
	// the sink handoff, the checkpoint barrier, and the async writer's
	// disk write on its own track.
	CheckpointPut
	// Idle is idle or straggle time: injected stalls, schedule gaps,
	// and per-iteration bookkeeping outside any other phase.
	Idle
	// Recovery is elastic-supervisor work after a failure: detection,
	// restore-point re-establishment, and re-planning.
	Recovery

	// NumPhases bounds the vocabulary; it is NOT itself a phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"compute-forward",
	"compute-backward",
	"collective-launch",
	"collective-wait",
	"halo",
	"pipeline-transfer",
	"bn-sync",
	"checkpoint-put",
	"idle",
	"recovery",
}

// String returns the canonical phase name used in exports, summaries,
// and metric labels.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Phases returns the closed vocabulary in declaration order.
func Phases() []Phase {
	out := make([]Phase, NumPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Event is one closed span on a track's timeline. Sync events tile the
// track (Begin closes the previous span); Async events are the
// in-flight windows of nonblocking collectives and overlap the sync
// spans recorded while the collective was airborne — they are the
// "overlap-hidden communication" the summary reports separately.
type Event struct {
	Track int32 // track id (world rank for PEs; negative-free aux ids after)
	Iter  int32 // global iteration the span belongs to (-1 outside any)
	Phase Phase
	Async bool  // an in-flight nonblocking collective window
	Start int64 // ns since the recorder epoch
	Dur   int64 // ns
}

// DefaultRingEvents is the per-track ring capacity: 64 Ki events
// (~2 MiB per track) holds hundreds of toy iterations; overflow wraps,
// overwriting the oldest events and counting them as dropped.
const DefaultRingEvents = 1 << 16

// Recorder collects per-track events. One Recorder observes one
// logical run (possibly spanning several elastic legs); world rank r of
// every leg writes the same track, ordered by the supervisor's joins.
type Recorder struct {
	epoch time.Time
	cap   int

	mu     sync.Mutex
	pes    []*PE    // indexed by world rank
	aux    []*PE    // named auxiliary tracks (ckpt writer, supervisor)
	auxIDs []string // aux[i]'s name; exported as the track label
}

// NewRecorder returns a recorder with the default per-track ring
// capacity; its epoch (the zero of every timestamp) is now.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultRingEvents) }

// NewRecorderCap returns a recorder whose per-track rings hold up to
// capEvents events each (minimum 16).
func NewRecorderCap(capEvents int) *Recorder {
	if capEvents < 16 {
		capEvents = 16
	}
	return &Recorder{epoch: time.Now(), cap: capEvents}
}

// PE returns the tracer of one world rank, creating its ring on first
// use. Nil-safe: a nil recorder returns a nil tracer, whose methods all
// no-op — the disabled fast path. Registration locks; recording does
// not.
func (r *Recorder) PE(rank int) *PE {
	if r == nil || rank < 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.pes) <= rank {
		r.pes = append(r.pes, nil)
	}
	if r.pes[rank] == nil {
		r.pes[rank] = newPE(r, int32(rank))
	}
	return r.pes[rank]
}

// Track returns a named auxiliary track (e.g. "ckpt-writer",
// "supervisor"), creating it on first use. Nil-safe like PE.
func (r *Recorder) Track(name string) *PE {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, n := range r.auxIDs {
		if n == name {
			return r.aux[i]
		}
	}
	// Aux tracks get negative ids so they can never collide with a
	// world rank in Event.Track.
	t := newPE(r, int32(-len(r.aux)-1))
	r.aux = append(r.aux, t)
	r.auxIDs = append(r.auxIDs, name)
	return t
}

// PE is one track's single-writer tracer. Only the owning goroutine
// may call its recording methods; the ring is read (Events, Summarize,
// WriteChrome) only after that goroutine has quiesced — which the run
// structure guarantees: engines join before Run returns, the writer
// track quiesces at Drain/Close, the supervisor track is the reading
// goroutine itself.
//
// All methods are nil-safe: a nil *PE is the disabled tracer, and
// every call on it returns immediately without allocating.
type PE struct {
	rec  *Recorder
	id   int32
	ring []Event
	n    int // total events ever written; ring index is n % len(ring)

	iter     int32
	cur      Phase
	open     bool
	curStart int64
	curIter  int32 // iteration the open span belongs to (stamped at open)
}

func newPE(r *Recorder, id int32) *PE {
	return &PE{rec: r, id: id, ring: make([]Event, 0, r.cap), iter: -1}
}

// now is nanoseconds since the recorder epoch (monotonic).
func (t *PE) now() int64 { return int64(time.Since(t.rec.epoch)) }

// put appends one event to the ring, overwriting the oldest on wrap.
func (t *PE) put(e Event) {
	if t.n < cap(t.ring) {
		t.ring = append(t.ring, e)
	} else {
		t.ring[t.n%len(t.ring)] = e
	}
	t.n++
}

// Iter sets the global iteration subsequent spans are labelled with.
func (t *PE) Iter(iter int) {
	if t == nil {
		return
	}
	t.iter = int32(iter)
}

// Begin switches the track to phase ph: it closes the open span (if
// any) and opens a new one, so spans tile the timeline. It returns the
// previous phase, letting nested call sites (the gradient exchanger, a
// collective inside a forward walk) restore their caller's phase with
// a second Begin. Begin with the already-open phase is a no-op, so
// nesting never fragments a span into zero-length pieces.
func (t *PE) Begin(ph Phase) Phase {
	if t == nil {
		return ComputeForward
	}
	if t.open && t.cur == ph {
		return ph
	}
	now := t.now()
	prev := t.cur
	if t.open {
		t.put(Event{Track: t.id, Iter: t.curIter, Phase: t.cur, Start: t.curStart, Dur: now - t.curStart})
	} else {
		prev = ph
	}
	t.cur, t.curStart, t.open, t.curIter = ph, now, true, t.iter
	return prev
}

// End closes the open span without opening another — the end of a
// run's loop, or of one supervisor intervention.
func (t *PE) End() {
	if t == nil || !t.open {
		return
	}
	now := t.now()
	t.put(Event{Track: t.id, Iter: t.curIter, Phase: t.cur, Start: t.curStart, Dur: now - t.curStart})
	t.open = false
}

// Flight stamps the launch of a nonblocking collective and returns its
// token (the launch time); Land records the in-flight window. A nil
// tracer returns a token Land will ignore.
func (t *PE) Flight() int64 {
	if t == nil {
		return -1
	}
	return t.now()
}

// Land records the async in-flight span of a collective launched at
// token tok — launch to completion-observed — as an Async event. These
// windows overlap the sync spans recorded meanwhile (that is the
// point: they are the communication the overlap machinery hid behind
// compute) and are excluded from the tiling/coverage accounting.
func (t *PE) Land(tok int64) {
	if t == nil || tok < 0 {
		return
	}
	t.put(Event{Track: t.id, Iter: t.iter, Phase: CollectiveLaunch, Async: true, Start: tok, Dur: t.now() - tok})
}

// Events returns every recorded event, PE tracks first (by rank), then
// auxiliary tracks in creation order; within a track, in write order
// (oldest surviving first after a wrap). Call only after the writing
// goroutines have quiesced.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	tracks := make([]*PE, 0, len(r.pes)+len(r.aux))
	tracks = append(tracks, r.pes...)
	tracks = append(tracks, r.aux...)
	r.mu.Unlock()
	var out []Event
	for _, t := range tracks {
		if t == nil {
			continue
		}
		if t.n <= len(t.ring) {
			out = append(out, t.ring...)
			continue
		}
		at := t.n % len(t.ring)
		out = append(out, t.ring[at:]...)
		out = append(out, t.ring[:at]...)
	}
	return out
}

// Dropped reports how many events were overwritten by ring wraps
// across all tracks.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := 0
	for _, set := range [][]*PE{r.pes, r.aux} {
		for _, t := range set {
			if t != nil && t.n > len(t.ring) {
				d += t.n - len(t.ring)
			}
		}
	}
	return d
}

// trackLabels returns a display label and export thread id per track
// id: "PE <rank>" at tid == rank for world ranks, the registered name
// for aux tracks at tids after the widest rank.
func (r *Recorder) trackLabels() (labels map[int32]string, tids map[int32]int) {
	labels, tids = map[int32]string{}, map[int32]int{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for rank, t := range r.pes {
		if t != nil {
			labels[int32(rank)] = fmt.Sprintf("PE %d", rank)
			tids[int32(rank)] = rank
		}
	}
	for i, name := range r.auxIDs {
		id := int32(-i - 1)
		labels[id] = name
		tids[id] = len(r.pes) + i
	}
	return labels, tids
}
