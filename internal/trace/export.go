package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// This file renders a recorder in Chrome trace_event JSON — the format
// Perfetto (ui.perfetto.dev) and chrome://tracing load directly. Each
// track (PE or aux) is one thread row of process "paradl"; sync spans
// are complete ("X") events, and the in-flight windows of nonblocking
// collectives are async "b"/"e" pairs, so overlap is visible as spans
// floating above the compute that hid them. The document is the object
// form ({"traceEvents": [...]}) with a "paradl" extension key carrying
// the aggregated Summary — Perfetto ignores unknown keys, and the CI
// smoke reads the summary with jq from the same file it validates.

// chromeEvent is one trace_event entry (the subset we emit).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	ID   int            `json:"id,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeDoc is the exported document.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Paradl          Summary       `json:"paradl"`
}

const chromePid = 1

// WriteChrome writes the recorder's events as Chrome trace_event JSON.
// Call only after the writing goroutines have quiesced.
func (r *Recorder) WriteChrome(w io.Writer) error {
	labels, tids := r.trackLabels()
	events := r.Events()
	doc := chromeDoc{DisplayTimeUnit: "ms", Paradl: r.Summarize()}

	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: chromePid,
		Args: map[string]any{"name": "paradl"},
	})
	// Stable metadata order: PE tracks by rank, then aux by tid.
	type tl struct {
		id    int32
		tid   int
		label string
	}
	var tracks []tl
	for id, tid := range tids {
		tracks = append(tracks, tl{id, tid, labels[id]})
	}
	sort.Slice(tracks, func(i, j int) bool { return tracks[i].tid < tracks[j].tid })
	for _, t := range tracks {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePid, Tid: t.tid,
			Args: map[string]any{"name": t.label},
		})
	}

	asyncID := 0
	for _, e := range events {
		tid := tids[e.Track]
		ts := float64(e.Start) / 1e3
		dur := float64(e.Dur) / 1e3
		if e.Async {
			// One async span per in-flight collective: a "b"/"e" pair
			// scoped by (cat, id) floats above the thread's sync spans.
			asyncID++
			doc.TraceEvents = append(doc.TraceEvents,
				chromeEvent{Name: "collective-inflight", Ph: "b", Cat: "async", Pid: chromePid, Tid: tid,
					Ts: ts, ID: asyncID, Args: map[string]any{"iter": e.Iter}},
				chromeEvent{Name: "collective-inflight", Ph: "e", Cat: "async", Pid: chromePid, Tid: tid,
					Ts: ts + dur, ID: asyncID},
			)
			continue
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: e.Phase.String(), Ph: "X", Cat: "phase", Pid: chromePid, Tid: tid,
			Ts: ts, Dur: dur, Args: map[string]any{"iter": e.Iter},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
