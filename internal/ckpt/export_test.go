package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
)

// SaveCrashing simulates the writer being killed after exactly n bytes
// of the temp file hit disk: the partial temp file is left behind and
// no rename happens — byte-for-byte the on-disk state a crash at that
// offset leaves the atomic Save path in. The crash-consistency
// property test sweeps n over random offsets.
func SaveCrashing(dir string, s *State, n int) error {
	enc, err := s.Encode()
	if err != nil {
		return err
	}
	if n > len(enc) {
		n = len(enc)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return err
	}
	defer tmp.Close()
	_, err = tmp.Write(enc[:n])
	return err
}

// SaveTorn writes exactly n bytes of s's encoding AT THE FINAL
// checkpoint path — the state a non-atomic writer, a corrupted rename,
// or power loss without fsync would leave. LatestValid must skip it.
func SaveTorn(dir string, s *State, n int) error {
	enc, err := s.Encode()
	if err != nil {
		return err
	}
	if n > len(enc) {
		n = len(enc)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, FileName(s.Iter)), enc[:n], 0o644)
}

// EncodeV1ForTest renders s in the version-1 wire layout (no Streams
// header field), so the forward-compat test can prove old files still
// load. The payload geometry is identical to version 2; only the JSON
// header differs.
func EncodeV1ForTest(s *State) ([]byte, error) {
	streams := s.Streams
	s.Streams = nil
	defer func() { s.Streams = streams }()
	enc, err := s.Encode()
	if err != nil {
		return nil, err
	}
	return rewriteVersionForTest(enc, 1)
}

// rewriteVersionForTest rewrites the header's version field and
// re-derives the length prefix and SHA-256 trailer, yielding a file
// that is valid at the requested header version.
func rewriteVersionForTest(enc []byte, v int) ([]byte, error) {
	hlen := int(binary.LittleEndian.Uint32(enc[len(magic):]))
	hdrStart := len(magic) + 4
	var h header
	if err := json.Unmarshal(enc[hdrStart:hdrStart+hlen], &h); err != nil {
		return nil, err
	}
	h.Version = v
	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	payload := enc[hdrStart+hlen : len(enc)-sha256.Size]
	var buf bytes.Buffer
	buf.WriteString(magic)
	var hl [4]byte
	binary.LittleEndian.PutUint32(hl[:], uint32(len(hdr)))
	buf.Write(hl[:])
	buf.Write(hdr)
	buf.Write(payload)
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}
