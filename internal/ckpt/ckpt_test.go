package ckpt_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"paradl/internal/ckpt"
	"paradl/internal/nn"
	"paradl/internal/tensor"
)

// testState builds a two-layer snapshot with awkward float values
// (subnormals, negative zero, huge magnitudes) so round-trip equality
// is a real bit-identity check, not a pretty-printing coincidence.
func testState() *ckpt.State {
	w := tensor.FromSlice([]float64{0.1, -0.2, 0.3, 5e-324, math.Copysign(0, -1), 1e300}, 2, 3)
	b := tensor.FromSlice([]float64{-1.5, 2.5}, 2)
	gamma := tensor.FromSlice([]float64{1, 1, 0.999999999999}, 3)
	beta := tensor.FromSlice([]float64{0, -0.25, 1e-17}, 3)
	vw := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	vb := tensor.FromSlice([]float64{0.5, -0.5}, 2)
	return &ckpt.State{
		Model: "tinycnn-nobn", Plan: "df:4x2", Iter: 3, Seed: 42,
		LR: 0.05, Momentum: 0.9, Cursor: 3,
		Losses: []float64{2.302585092994046, 2.1, math.Pi},
		Params: []nn.Params{{W: w, B: b}, {Gamma: gamma, Beta: beta}},
		Vel:    []nn.Params{{W: vw, B: vb}, {}},
	}
}

func assertTensorEq(t *testing.T, name string, got, want *tensor.Tensor) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: nil-ness mismatch (got %v, want %v)", name, got, want)
	}
	if got == nil {
		return
	}
	if !tensor.EqualShapes(got.Shape(), want.Shape()) {
		t.Fatalf("%s: shape %v, want %v", name, got.Shape(), want.Shape())
	}
	gd, wd := got.Data(), want.Data()
	for i := range wd {
		if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
			t.Fatalf("%s[%d]: %v is not bit-identical to %v", name, i, gd[i], wd[i])
		}
	}
}

func assertStateEq(t *testing.T, got, want *ckpt.State) {
	t.Helper()
	if got.Model != want.Model || got.Plan != want.Plan || got.Iter != want.Iter ||
		got.Seed != want.Seed || got.Cursor != want.Cursor ||
		math.Float64bits(got.LR) != math.Float64bits(want.LR) ||
		math.Float64bits(got.Momentum) != math.Float64bits(want.Momentum) {
		t.Fatalf("metadata mismatch: got %+v, want %+v", got, want)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("%d losses, want %d", len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if math.Float64bits(got.Losses[i]) != math.Float64bits(want.Losses[i]) {
			t.Fatalf("loss %d: %v not bit-identical to %v", i, got.Losses[i], want.Losses[i])
		}
	}
	if len(got.Params) != len(want.Params) {
		t.Fatalf("%d param layers, want %d", len(got.Params), len(want.Params))
	}
	for l := range want.Params {
		assertTensorEq(t, "param.W", got.Params[l].W, want.Params[l].W)
		assertTensorEq(t, "param.B", got.Params[l].B, want.Params[l].B)
		assertTensorEq(t, "param.Gamma", got.Params[l].Gamma, want.Params[l].Gamma)
		assertTensorEq(t, "param.Beta", got.Params[l].Beta, want.Params[l].Beta)
	}
	for l := range want.Vel {
		assertTensorEq(t, "vel.W", got.Vel[l].W, want.Vel[l].W)
		assertTensorEq(t, "vel.B", got.Vel[l].B, want.Vel[l].B)
	}
}

func TestCkptRoundTripBitIdentical(t *testing.T) {
	want := testState()
	enc, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	assertStateEq(t, got, want)
}

func TestCkptSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for _, iter := range []int{2, 10, 100} {
		s := testState()
		s.Iter = iter
		if _, err := ckpt.Save(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file (a crash mid-write) must be invisible to Latest.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-ckpt-dead"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	path, err := ckpt.Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != ckpt.FileName(100) {
		t.Fatalf("Latest picked %s, want %s", filepath.Base(path), ckpt.FileName(100))
	}
	got, err := ckpt.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testState()
	want.Iter = 100
	assertStateEq(t, got, want)

	if _, err := ckpt.Latest(t.TempDir()); err == nil {
		t.Fatal("Latest on an empty directory must error")
	}
}

// TestCkptCorruptionFailsLoudly is the crash-safety property test: a
// checkpoint truncated at any offset, with any byte flipped, or with
// garbage appended must fail Decode — never silently resume from torn
// state.
func TestCkptCorruptionFailsLoudly(t *testing.T) {
	enc, err := testState().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Decode(append([]byte(nil), enc...)); err != nil {
		t.Fatalf("pristine checkpoint must decode: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		b := append([]byte(nil), enc...)
		switch trial % 3 {
		case 0:
			b = b[:rng.Intn(len(b))]
		case 1:
			b[rng.Intn(len(b))]++
		case 2:
			extra := make([]byte, 1+rng.Intn(16))
			rng.Read(extra)
			b = append(b, extra...)
		}
		if _, err := ckpt.Decode(b); err == nil {
			t.Fatalf("trial %d (mode %d): corrupted checkpoint decoded without error", trial, trial%3)
		}
	}
}

func TestCkptLoadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s := testState()
	path, err := ckpt.Save(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(path); err == nil {
		t.Fatal("Load accepted a corrupted checkpoint file")
	}
}
