// Package ckpt snapshots full training state — parameters, momentum
// velocities, the data cursor, the executed plan, and the iteration
// count — in a CANONICAL UNSHARDED representation: whatever plan a run
// executes, shards gather into full tensors at checkpoint time and
// re-shard at restore, so a checkpoint written under data:8 restores
// under df:4x2 (or any other plan) bit-for-bit. That one invariant is
// what makes elastic recovery and live plan migration a single code
// path in internal/dist.
//
// Wire format (all integers little-endian):
//
//	magic   "PDLCKPT1"                      8 bytes
//	hlen    uint32                          JSON header length
//	header  JSON                            metadata + tensor directory
//	payload float64 LE values               losses, then directory order
//	sum     SHA-256                         over every preceding byte
//
// The header's tensor directory fixes the payload order: losses first,
// then per directory entry (layer ascending, params before velocities,
// fields in W, B, Gamma, Beta order) the tensor's row-major values.
// Load verifies the checksum before parsing anything, so a truncated
// or corrupted file always fails loudly — never a silent resume from
// torn state. Save writes through a temp file and renames, so a crash
// mid-write never clobbers the previous checkpoint.
package ckpt

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"paradl/internal/nn"
	"paradl/internal/tensor"
)

// State is one canonical training snapshot: everything a fresh world —
// of any size, under any plan — needs to continue the run as if it had
// never stopped. Params holds the full unsharded parameters per layer;
// Vel the matching momentum velocities (nil when the run uses plain
// SGD; individual nil tensors mean a zero velocity). Iter counts
// completed iterations, so a resume trains batches[Iter:], and Cursor
// is the dataset cursor of the next batch (equal to Iter for the
// sequential cursor-addressed datasets of internal/data).
type State struct {
	Model    string
	Plan     string
	Iter     int
	Seed     int64
	LR       float64
	Momentum float64
	Cursor   int
	// Streams records every named deterministic RNG/data stream the run
	// consumes and the next position each will draw — today the data
	// cursor, tomorrow dropout/augmentation streams — so a stochastic
	// layer added later resumes bit-identically instead of re-deriving
	// its stream from ambient state. Version-1 checkpoints predate the
	// field and decode with Streams nil.
	Streams []Stream
	Losses  []float64
	Params  []nn.Params
	Vel     []nn.Params
}

// Stream is one named deterministic stream position: the seed that
// parameterizes the stream and the next index it will consume. Two
// runs holding equal (Seed, Next) draw identical continuations.
type Stream struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	Next int64  `json:"next"`
}

// Stream returns the recorded position of the named stream, or false
// when the checkpoint predates stream recording (version-1 files) or
// never tracked it.
func (s *State) Stream(name string) (Stream, bool) {
	for _, st := range s.Streams {
		if st.Name == name {
			return st, true
		}
	}
	return Stream{}, false
}

const magic = "PDLCKPT1"

// version is the header revision Encode writes. Decode accepts every
// revision in [1, version]: version 2 added the Streams directory (a
// header-only JSON field), so version-1 payload geometry is unchanged
// and old files load with Streams nil.
const version = 2

// header is the JSON metadata block; the float64 series (losses and
// tensor values) live in the binary payload, never in JSON, so decode
// is bit-exact by construction rather than by strconv round-tripping.
type header struct {
	Version  int        `json:"version"`
	Model    string     `json:"model"`
	Plan     string     `json:"plan"`
	Iter     int        `json:"iter"`
	Seed     int64      `json:"seed"`
	LR       float64    `json:"lr"`
	Momentum float64    `json:"momentum"`
	Cursor   int        `json:"cursor"`
	Streams  []Stream   `json:"streams,omitempty"` // since version 2
	NLosses  int        `json:"nlosses"`
	NLayers  int        `json:"nlayers"`
	Dir      []dirEntry `json:"dir"`
}

// dirEntry describes one tensor of the payload: its layer, field
// ("W"|"B"|"Gamma"|"Beta"), kind ("param"|"vel"), and shape.
type dirEntry struct {
	Layer int    `json:"l"`
	Field string `json:"f"`
	Kind  string `json:"k"`
	Shape []int  `json:"shape"`
}

var fieldOrder = []string{"W", "B", "Gamma", "Beta"}

func fieldOf(p *nn.Params, f string) **tensor.Tensor {
	switch f {
	case "W":
		return &p.W
	case "B":
		return &p.B
	case "Gamma":
		return &p.Gamma
	case "Beta":
		return &p.Beta
	}
	return nil
}

// Encode renders s in the stable wire format.
func (s *State) Encode() ([]byte, error) {
	if len(s.Vel) != 0 && len(s.Vel) != len(s.Params) {
		return nil, fmt.Errorf("ckpt: %d velocity layers vs %d parameter layers", len(s.Vel), len(s.Params))
	}
	h := header{
		Version: version, Model: s.Model, Plan: s.Plan, Iter: s.Iter,
		Seed: s.Seed, LR: s.LR, Momentum: s.Momentum, Cursor: s.Cursor,
		Streams: s.Streams,
		NLosses: len(s.Losses), NLayers: len(s.Params),
	}
	var tensors []*tensor.Tensor
	collect := func(layers []nn.Params, kind string) {
		for l := range layers {
			for _, f := range fieldOrder {
				t := *fieldOf(&layers[l], f)
				if t == nil {
					continue
				}
				h.Dir = append(h.Dir, dirEntry{Layer: l, Field: f, Kind: kind, Shape: t.Shape()})
				tensors = append(tensors, t)
			}
		}
	}
	collect(s.Params, "param")
	collect(s.Vel, "vel")

	hdr, err := json.Marshal(h)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	buf.WriteString(magic)
	var hlen [4]byte
	binary.LittleEndian.PutUint32(hlen[:], uint32(len(hdr)))
	buf.Write(hlen[:])
	buf.Write(hdr)
	writeFloats(&buf, s.Losses)
	for _, t := range tensors {
		writeFloats(&buf, t.Data())
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

func writeFloats(buf *bytes.Buffer, xs []float64) {
	var b [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		buf.Write(b[:])
	}
}

// Decode parses a wire-format checkpoint. The SHA-256 trailer is
// verified over every preceding byte BEFORE any field is trusted, and
// the declared geometry must account for the file length exactly, so
// truncation, bit flips, and appended garbage all fail loudly.
func Decode(b []byte) (*State, error) {
	const trailer = sha256.Size
	if len(b) < len(magic)+4+trailer {
		return nil, fmt.Errorf("ckpt: %d bytes is shorter than any checkpoint", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", b[:len(magic)])
	}
	body, sum := b[:len(b)-trailer], b[len(b)-trailer:]
	if want := sha256.Sum256(body); !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("ckpt: checksum mismatch — file is truncated or corrupted")
	}
	hlen := int(binary.LittleEndian.Uint32(body[len(magic):]))
	rest := body[len(magic)+4:]
	if hlen < 2 || hlen > len(rest) {
		return nil, fmt.Errorf("ckpt: header length %d out of range", hlen)
	}
	var h header
	if err := json.Unmarshal(rest[:hlen], &h); err != nil {
		return nil, fmt.Errorf("ckpt: decoding header: %w", err)
	}
	if h.Version < 1 || h.Version > version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (this build reads 1..%d)", h.Version, version)
	}
	payload := rest[hlen:]
	n := h.NLosses
	for _, e := range h.Dir {
		vol := 1
		for _, d := range e.Shape {
			if d < 1 {
				return nil, fmt.Errorf("ckpt: layer %d %s has invalid shape %v", e.Layer, e.Field, e.Shape)
			}
			vol *= d
		}
		n += vol
	}
	if h.NLosses < 0 || len(payload) != 8*n {
		return nil, fmt.Errorf("ckpt: payload is %d bytes, directory declares %d", len(payload), 8*n)
	}

	s := &State{
		Model: h.Model, Plan: h.Plan, Iter: h.Iter, Seed: h.Seed,
		LR: h.LR, Momentum: h.Momentum, Cursor: h.Cursor,
		Streams: h.Streams,
		Params:  make([]nn.Params, h.NLayers),
	}
	s.Losses, payload = readFloats(payload, h.NLosses)
	for _, e := range h.Dir {
		var layers []nn.Params
		switch e.Kind {
		case "param":
			layers = s.Params
		case "vel":
			if s.Vel == nil {
				s.Vel = make([]nn.Params, h.NLayers)
			}
			layers = s.Vel
		default:
			return nil, fmt.Errorf("ckpt: unknown tensor kind %q", e.Kind)
		}
		if e.Layer < 0 || e.Layer >= h.NLayers {
			return nil, fmt.Errorf("ckpt: directory layer %d outside [0,%d)", e.Layer, h.NLayers)
		}
		slot := fieldOf(&layers[e.Layer], e.Field)
		if slot == nil {
			return nil, fmt.Errorf("ckpt: unknown tensor field %q", e.Field)
		}
		var vals []float64
		vals, payload = readFloats(payload, tensor.Volume(e.Shape))
		*slot = tensor.FromSlice(vals, e.Shape...)
	}
	return s, nil
}

func readFloats(b []byte, n int) ([]float64, []byte) {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, b[8*n:]
}

// FileName is the canonical checkpoint file name for an iteration.
func FileName(iter int) string { return fmt.Sprintf("ckpt-%06d.pdl", iter) }

// Save writes s atomically into dir as ckpt-<iter>.pdl: the encoding
// lands in a temp file first and renames into place, so a crash
// mid-write leaves the previous checkpoint intact and readers never
// observe a torn file.
func Save(dir string, s *State) (string, error) {
	enc, err := s.Encode()
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-ckpt-*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(enc); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	path := filepath.Join(dir, FileName(s.Iter))
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// Load reads and decodes one checkpoint file; any integrity violation
// is an error, never a partial state.
func Load(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}

// CorruptFile flips one bit of the byte at offset off (reduced modulo
// the file size) — the checkpoint-corruption fault of the chaos
// harness. The SHA-256 trailer guarantees the damaged file fails Load
// loudly, and LatestValid falls back to the previous snapshot, so an
// injected corruption costs recovery PROGRESS (an older resume point),
// never correctness.
func CorruptFile(path string, off int64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("ckpt: cannot corrupt empty file %s", path)
	}
	if off < 0 {
		off = -off
	}
	b[off%int64(len(b))] ^= 0x40
	return os.WriteFile(path, b, 0o644)
}

// Latest returns the path of the highest-iteration checkpoint in dir
// (by the canonical file-name ordering; temp files are invisible).
func Latest(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pdl"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("ckpt: no checkpoint files in %s", dir)
	}
	sort.Strings(paths) // zero-padded iters: lexical order IS numeric order
	return paths[len(paths)-1], nil
}

// LatestValid loads the newest checkpoint in dir that passes integrity
// verification, skipping torn, truncated, or corrupted files — the
// crash-recovery read path. Because Save is atomic (temp + rename), a
// writer killed mid-write leaves only an invisible temp file; but a
// corrupted or non-atomically produced newest file must never mask the
// previous durable snapshot, so the scan falls back file by file until
// a checksum verifies. It errors only when NO valid checkpoint exists.
func LatestValid(dir string) (*State, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "ckpt-*.pdl"))
	if err != nil {
		return nil, "", err
	}
	if len(paths) == 0 {
		return nil, "", fmt.Errorf("ckpt: no checkpoint files in %s", dir)
	}
	sort.Strings(paths)
	var lastErr error
	for i := len(paths) - 1; i >= 0; i-- {
		s, err := Load(paths[i])
		if err == nil {
			return s, paths[i], nil
		}
		lastErr = err
	}
	return nil, "", fmt.Errorf("ckpt: no valid checkpoint in %s: %w", dir, lastErr)
}
