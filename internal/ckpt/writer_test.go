package ckpt_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"paradl/internal/ckpt"
	"paradl/internal/nn"
	"paradl/internal/tensor"
)

// heavyState is a snapshot bulky enough that Save spends real time in
// encode+SHA-256+write, so the writer tests genuinely overlap Put with
// in-flight disk I/O.
func heavyState(iter int) *ckpt.State {
	s := testState()
	s.Iter = iter
	s.Cursor = iter
	s.Params = append(s.Params, nn.Params{W: tensor.New(64, 256)})
	s.Vel = append(s.Vel, nn.Params{})
	return s
}

// TestAsyncCkptCrashConsistency is the crash-consistency property
// test: kill the writer at 200 random byte offsets mid-write (both the
// atomic-path crash, which strands a temp file, and the torn-final-
// file case a non-atomic writer would leave) — the previous valid
// snapshot must load every single time.
func TestAsyncCkptCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	prev := testState()
	prev.Iter = 1
	if _, err := ckpt.Save(dir, prev); err != nil {
		t.Fatal(err)
	}
	next := testState()
	next.Iter = 2
	enc, err := next.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		off := rng.Intn(len(enc))
		var crashErr error
		if trial%2 == 0 {
			crashErr = ckpt.SaveCrashing(dir, next, off)
		} else {
			crashErr = ckpt.SaveTorn(dir, next, off)
		}
		if crashErr != nil {
			t.Fatalf("trial %d: injecting the crash failed: %v", trial, crashErr)
		}
		st, path, err := ckpt.LatestValid(dir)
		if err != nil {
			t.Fatalf("trial %d (offset %d): no valid checkpoint after mid-write kill: %v", trial, off, err)
		}
		if st.Iter != 1 {
			t.Fatalf("trial %d (offset %d): recovered iteration %d from %s, want the previous snapshot at 1", trial, off, st.Iter, path)
		}
		os.Remove(filepath.Join(dir, ckpt.FileName(2))) // clear any torn final file for the next trial
	}
	// A write that completes takes over as the restore point.
	if _, err := ckpt.Save(dir, next); err != nil {
		t.Fatal(err)
	}
	st, _, err := ckpt.LatestValid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iter != 2 {
		t.Fatalf("after a completed save, LatestValid resumed from %d, want 2", st.Iter)
	}
}

// TestAsyncWriterNewestAlwaysLands: the bounded one-slot queue may
// drop intermediate snapshots under pressure, but the final Put must
// always reach disk, and saved+dropped must account for every Put.
func TestAsyncWriterNewestAlwaysLands(t *testing.T) {
	dir := t.TempDir()
	w := ckpt.NewWriter(dir)
	const puts = 40
	for i := 1; i <= puts; i++ {
		w.Put(heavyState(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st, _, err := ckpt.LatestValid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iter != puts {
		t.Fatalf("newest durable snapshot is iteration %d, want %d (the last Put must never be dropped)", st.Iter, puts)
	}
	stats := w.Stats()
	if stats.Saved+stats.Dropped != puts {
		t.Fatalf("accounting leak: saved %d + dropped %d != %d puts", stats.Saved, stats.Dropped, puts)
	}
	if stats.Saved < 1 {
		t.Fatalf("nothing was saved: %+v", stats)
	}
}

// TestAsyncWriterPutStaysOffTrainingPath pins the acceptance bound:
// handing a snapshot to the writer is a pointer swap — zero
// allocations, and never blocked behind the in-flight disk write.
func TestAsyncWriterPutStaysOffTrainingPath(t *testing.T) {
	dir := t.TempDir()
	w := ckpt.NewWriter(dir)
	defer w.Close()
	s := heavyState(1)
	if n := testing.AllocsPerRun(100, func() { w.Put(s) }); n > 0 {
		t.Fatalf("Put allocates %.0f objects per call on the training path, want 0", n)
	}
	var worst time.Duration
	for i := 2; i <= 200; i++ {
		start := time.Now()
		w.Put(heavyState(i))
		if d := time.Since(start); d > worst {
			worst = d
		}
	}
	// The bound is generous (scheduler noise) but categorical: Put must
	// cost a lock handoff, not an encode+hash+write (which takes far
	// longer for heavyState).
	if worst > 50*time.Millisecond {
		t.Fatalf("worst Put took %v — checkpoint I/O is leaking onto the training path", worst)
	}
}

// TestAsyncWriterSurfacesWriteErrors: a failing disk must not fail
// silently — Drain/Close return the first write error.
func TestAsyncWriterSurfacesWriteErrors(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	w := ckpt.NewWriter(blocked) // MkdirAll over a file fails
	w.Put(testState())
	if err := w.Close(); err == nil {
		t.Fatal("writer swallowed a persistent write failure")
	}
}

// TestCkptHeaderForwardCompatV1: version-1 checkpoint files (written
// before the Streams directory existed) must keep loading, with
// Streams simply absent.
func TestCkptHeaderForwardCompatV1(t *testing.T) {
	want := testState()
	v1, err := ckpt.EncodeV1ForTest(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Decode(v1)
	if err != nil {
		t.Fatalf("version-1 checkpoint no longer loads: %v", err)
	}
	if got.Streams != nil {
		t.Fatalf("version-1 file decoded with streams %+v, want none", got.Streams)
	}
	assertStateEq(t, got, want)

	// A version from the future still fails loudly.
	future, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Decode(future); err != nil {
		t.Fatalf("current-version checkpoint must decode: %v", err)
	}
}

// TestCkptStreamsRoundTrip: stream positions survive the wire format
// and are addressable by name.
func TestCkptStreamsRoundTrip(t *testing.T) {
	want := testState()
	want.Streams = []ckpt.Stream{
		{Name: "data-cursor", Seed: 42, Next: 3},
		{Name: "dropout", Seed: -7, Next: 1 << 40},
	}
	enc, err := want.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ckpt.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != 2 {
		t.Fatalf("decoded %d streams, want 2", len(got.Streams))
	}
	for i, s := range want.Streams {
		if got.Streams[i] != s {
			t.Fatalf("stream %d: %+v, want %+v", i, got.Streams[i], s)
		}
	}
	st, ok := got.Stream("dropout")
	if !ok || st.Seed != -7 || st.Next != 1<<40 {
		t.Fatalf("Stream lookup: %+v, %v", st, ok)
	}
	if _, ok := got.Stream("absent"); ok {
		t.Fatal("Stream reported an entry that was never recorded")
	}
}

// TestLatestValidSkipsCorruptNewest: an injected corruption of the
// newest file (the chaos harness's FaultCorrupt) falls back to the
// previous snapshot rather than erroring or resuming from torn state.
func TestLatestValidSkipsCorruptNewest(t *testing.T) {
	dir := t.TempDir()
	for _, iter := range []int{2, 4} {
		s := testState()
		s.Iter = iter
		if _, err := ckpt.Save(dir, s); err != nil {
			t.Fatal(err)
		}
	}
	newest := filepath.Join(dir, ckpt.FileName(4))
	if err := ckpt.CorruptFile(newest, 12345); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.Load(newest); err == nil {
		t.Fatal("corrupted file loaded cleanly")
	}
	st, path, err := ckpt.LatestValid(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iter != 2 || filepath.Base(path) != ckpt.FileName(2) {
		t.Fatalf("fell back to iter %d (%s), want 2", st.Iter, path)
	}
	if err := ckpt.CorruptFile(filepath.Join(dir, ckpt.FileName(2)), 99); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ckpt.LatestValid(dir); err == nil {
		t.Fatal("LatestValid found a valid checkpoint in a fully corrupted directory")
	}
}
