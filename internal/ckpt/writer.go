package ckpt

import (
	"sync"

	"paradl/internal/trace"
)

// Writer persists checkpoints asynchronously: Put hands a snapshot to
// a background goroutine and returns immediately — no encoding, no
// hashing, no disk I/O on the caller's (training) path. The queue is a
// one-slot double buffer bounded by construction: while a write is in
// flight, newer snapshots replace the pending one instead of piling
// up, so a slow disk costs checkpoint FREQUENCY, never training
// latency or memory. Every write goes through the atomic Save path
// (temp + rename + SHA-256), so a crash at any moment leaves the
// previous checkpoint loadable — the crash-consistency property the
// ckpt tests pin at 200 random kill offsets.
//
// States handed to Put must not be mutated afterwards; the dist
// engines satisfy this by construction (checkpoint gathers clone every
// tensor).
type Writer struct {
	dir string

	mu      sync.Mutex
	cond    *sync.Cond
	pending *State // back buffer: newest snapshot awaiting disk
	writing bool   // front buffer currently being saved
	closed  bool
	saved   int   // snapshots durably renamed into place
	dropped int   // snapshots displaced by a newer one before writing
	err     error // first write failure, surfaced by Drain/Close

	tr *trace.PE // the writer's own trace track; nil when tracing is off
}

// WriterStats snapshots a Writer's accounting.
type WriterStats struct {
	Saved   int // checkpoints durably written
	Dropped int // checkpoints displaced by newer ones (bounded queue)
}

// NewWriter starts the background writer for dir.
func NewWriter(dir string) *Writer {
	w := &Writer{dir: dir}
	w.cond = sync.NewCond(&w.mu)
	go w.loop()
	return w
}

// Put enqueues s for persistence and returns without blocking on I/O:
// it swaps a pointer under a mutex (zero allocations — pinned by
// test). If a snapshot is already pending, the newer one wins and the
// displaced snapshot counts as dropped. Put after Close is a no-op
// recorded as a drop.
func (w *Writer) Put(s *State) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.dropped++
		return
	}
	if w.pending != nil {
		w.dropped++
	}
	w.pending = s
	w.cond.Broadcast()
}

// Drain blocks until every enqueued snapshot is durably on disk (or
// failed) and returns the first write error. The supervisor calls it
// before reading the directory back, so recovery never races the
// writer it is recovering from.
func (w *Writer) Drain() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.pending != nil || w.writing {
		w.cond.Wait()
	}
	return w.err
}

// Close drains outstanding work, stops the background goroutine, and
// returns the first write error. Close is idempotent.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	w.cond.Broadcast()
	for w.pending != nil || w.writing {
		w.cond.Wait()
	}
	return w.err
}

// SetTracer attaches a trace track to the writer: each disk write
// appears as a checkpoint-put span on it (an auxiliary track, since
// the writer's time overlaps the training PEs by design). Call before
// the first Put; the track is read only after Drain/Close, which is
// the quiescence the recorder requires.
func (w *Writer) SetTracer(tr *trace.PE) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tr = tr
}

// Stats reports the writer's saved/dropped accounting so far.
func (w *Writer) Stats() WriterStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WriterStats{Saved: w.saved, Dropped: w.dropped}
}

func (w *Writer) loop() {
	w.mu.Lock()
	for {
		for w.pending == nil && !w.closed {
			w.cond.Wait()
		}
		if w.pending == nil { // closed and drained
			w.mu.Unlock()
			return
		}
		s := w.pending
		w.pending = nil
		w.writing = true
		tr := w.tr
		w.mu.Unlock()

		tr.Iter(s.Iter)
		tr.Begin(trace.CheckpointPut)
		_, err := Save(w.dir, s)
		tr.End()

		w.mu.Lock()
		w.writing = false
		if err != nil {
			if w.err == nil {
				w.err = err
			}
		} else {
			w.saved++
		}
		w.cond.Broadcast()
	}
}
