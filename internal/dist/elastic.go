package dist

import (
	"errors"
	"fmt"
	"time"

	"paradl/internal/ckpt"
	"paradl/internal/core"
	"paradl/internal/nn"
)

// Policy configures the elastic supervisor: how often the running world
// checkpoints, where the checkpoints persist, and how stubbornly the
// supervisor retries after losing PEs.
type Policy struct {
	// CkptEvery is the checkpoint cadence in iterations (default 1).
	CkptEvery int
	// CkptDir, when non-empty, persists every checkpoint to disk via
	// ckpt.Save in addition to the in-memory copy recovery restores
	// from. A persistence failure surfaces as the run's error even when
	// training itself succeeds — a silently unprotected run is worse
	// than a failed one.
	CkptDir string
	// MaxRetries bounds how many PE deaths the supervisor absorbs
	// before giving up (default 3).
	MaxRetries int
	// Backoff, when positive, sleeps Backoff<<(attempt-1) before each
	// recovery attempt — the usual exponential courtesy toward whatever
	// killed the PE.
	Backoff time.Duration
}

// Recovery records one supervisor intervention: which PE died where,
// the plan migration it forced, and the iteration training resumed
// from (0 when no checkpoint existed yet and the run restarted).
type Recovery struct {
	PE         int    // world rank of the dead PE
	FailIter   int    // global iteration it died in
	From, To   string // plan strings before / after re-planning
	ResumeIter int    // first iteration of the resumed leg
}

// ElasticResult is a supervised run's outcome: the final leg's Result
// with the loss series stitched across every recovery (so it spans all
// iterations, exactly like an uninterrupted run), plus the recovery
// log.
type ElasticResult struct {
	*Result
	Recoveries []Recovery
}

// RunElastic trains under supervision: the world checkpoints its
// canonical state every CkptEvery iterations, and when a PE dies
// (WithFailAt, or any injected *PEFailure) the supervisor consults the
// oracle for the best trainable plan at the shrunken world size,
// restores the last checkpoint, and continues — falling down a
// graceful-degradation ladder (oracle picks, then plain data
// parallelism, then narrower, then serial) until something trains or
// MaxRetries is spent. Non-failure errors (bad plans, incompatible
// models) pass straight through: only PE death is recoverable.
func RunElastic(m *nn.Model, batches []Batch, pl Plan, pol Policy, opts ...Option) (*ElasticResult, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("dist: elastic run needs at least one batch")
	}
	every := pol.CkptEvery
	if every <= 0 {
		every = 1
	}
	maxRetries := pol.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}

	var (
		latest     *ckpt.State // most recent snapshot, the restore point
		saveErr    error       // first persistence failure, surfaced at the end
		recoveries []Recovery
	)
	sink := func(st *ckpt.State) {
		latest = st
		if pol.CkptDir != "" && saveErr == nil {
			if _, err := ckpt.Save(pol.CkptDir, st); err != nil {
				saveErr = err
			}
		}
	}

	// leg runs one supervised stretch under plan p, resuming from the
	// latest checkpoint when one exists. disarm appends WithFailAt(-1,-1)
	// AFTER the caller's options, overriding any injected failure so a
	// recovery attempt does not re-trip the same trap.
	leg := func(p Plan, disarm bool) (*Result, []float64, error) {
		start := 0
		var prefix []float64
		runOpts := append(append([]Option(nil), opts...), WithCheckpoint(every, sink))
		if latest != nil {
			start = latest.Iter
			prefix = append([]float64(nil), latest.Losses...)
			runOpts = append(runOpts, WithInitState(latest))
		}
		if disarm {
			runOpts = append(runOpts, WithFailAt(-1, -1))
		}
		res, err := Run(m, batches[start:], p, runOpts...)
		return res, prefix, err
	}
	finish := func(res *Result, prefix []float64) (*ElasticResult, error) {
		if saveErr != nil {
			return nil, fmt.Errorf("dist: training finished but checkpointing to %s failed: %w", pol.CkptDir, saveErr)
		}
		res.Losses = append(prefix, res.Losses...)
		return &ElasticResult{Result: res, Recoveries: recoveries}, nil
	}

	cur := pl
	disarm := false
	for attempt := 0; ; {
		res, prefix, err := leg(cur, disarm)
		if err == nil {
			return finish(res, prefix)
		}
		var pf *PEFailure
		if !errors.As(err, &pf) {
			return nil, err
		}
		disarm = true
		attempt++
		if attempt > maxRetries {
			return nil, fmt.Errorf("dist: elastic run gave up after %d recovery attempts: %w", maxRetries, err)
		}
		if pol.Backoff > 0 {
			time.Sleep(pol.Backoff << (attempt - 1))
		}
		pNew := cur.P() - 1
		if pNew < 1 {
			return nil, fmt.Errorf("dist: no PEs left to recover with: %w", err)
		}
		resumeIter := 0
		if latest != nil {
			resumeIter = latest.Iter
		}
		globalBatch := batches[0].X.Dim(0)
		cands := recoveryPlans(m, pNew, globalBatch, len(batches))
		var candErr error
		migrated := false
		for _, cand := range cands {
			res, prefix, err := leg(cand, true)
			if err == nil {
				recoveries = append(recoveries, Recovery{
					PE: pf.PE, FailIter: pf.Iter,
					From: cur.String(), To: cand.String(), ResumeIter: resumeIter,
				})
				return finish(res, prefix)
			}
			var again *PEFailure
			if errors.As(err, &again) {
				// The shrunken world died too: record the migration and
				// hand the fresh failure back to the supervisor loop.
				recoveries = append(recoveries, Recovery{
					PE: pf.PE, FailIter: pf.Iter,
					From: cur.String(), To: cand.String(), ResumeIter: resumeIter,
				})
				cur, migrated = cand, true
				break
			}
			candErr = err // plan not trainable for this model: next rung
		}
		if migrated {
			continue
		}
		return nil, fmt.Errorf("dist: no recovery plan at p=%d is trainable for %q (last candidate: %v): %w", pNew, m.Name, candErr, err)
	}
}

// recoveryPlans ranks the plans worth trying at the shrunken world
// size p: the oracle's feasible strategies first (core.AdviseFeasible —
// the strict advisor would refuse outright at awkward widths like
// primes), then the graceful-degradation ladder of plain data
// parallelism at p, narrower data parallelism, and finally serial —
// which always trains, so a supervised run never strands without a
// plan for runtime reasons alone.
func recoveryPlans(m *nn.Model, p, globalBatch, nBatches int) []Plan {
	var out []Plan
	seen := map[string]bool{}
	add := func(pl Plan) {
		if pl.Validate() != nil || seen[pl.String()] || !semanticsPreserving(m, pl) {
			return
		}
		seen[pl.String()] = true
		out = append(out, pl)
	}
	if globalBatch > 0 {
		ref := core.ConfigRef{
			Model: m.Name,
			D:     int64(maxOf(1, nBatches) * maxOf(1, globalBatch)),
			B:     globalBatch,
			P:     p,
		}
		// Non-zoo models have no oracle entry; the ladder below still
		// applies.
		if cfg, err := ref.Resolve(); err == nil {
			for _, a := range core.AdviseFeasible(cfg) {
				if pl := PlanFromProjection(a.Projection); pl.P() == p {
					add(pl)
				}
			}
		}
	}
	add(Plan{Strategy: core.Data, P1: p})
	for q := p - 1; q >= 2; q-- {
		add(Plan{Strategy: core.Data, P1: q})
	}
	add(Plan{Strategy: core.Serial})
	return out
}

// semanticsPreserving reports whether migrating to pl continues the
// SAME optimization trajectory the failed run was on. Pipeline
// microbatching computes batch-norm statistics per microbatch (the
// GPipe semantics, a documented deviation from the baseline), so for
// BN models the pipeline strategies are not valid resume targets —
// every other strategy synchronizes BN and keeps value parity.
func semanticsPreserving(m *nn.Model, pl Plan) bool {
	switch pl.Strategy {
	case core.Pipeline, core.DataPipeline:
	default:
		return true
	}
	if pl.normalized().P2 == 1 {
		return true // a single stage is plain data parallelism
	}
	for l := range m.Layers {
		if m.Layers[l].Kind == nn.BatchNorm {
			return false
		}
	}
	return true
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlanFromProjection maps an oracle projection onto an executable
// plan: the data-parallel width rides the first axis, model-parallel
// strategies the second, and hybrids keep the advisor's defaulted
// P1×P2 grid shape.
func PlanFromProjection(pr *core.Projection) Plan {
	cfg := pr.Config
	switch s := pr.Strategy; s {
	case core.Serial:
		return Plan{Strategy: core.Serial}
	case core.Data:
		return Plan{Strategy: core.Data, P1: cfg.P}
	case core.DataFilter, core.DataSpatial, core.DataPipeline:
		return Plan{Strategy: s, P1: cfg.P1, P2: cfg.P2}
	default:
		return Plan{Strategy: s, P2: cfg.P}
	}
}

// Migrate trains batches[:switchAt] under plan from, checkpoints at
// the switch point through the canonical representation, and resumes
// batches[switchAt:] under plan to — a live plan migration (e.g.
// data:8 → df:4x2) with no retraining. The returned Result carries
// to's grid shape and the loss series of the whole run.
func Migrate(m *nn.Model, batches []Batch, from Plan, switchAt int, to Plan, opts ...Option) (*Result, error) {
	if switchAt <= 0 || switchAt >= len(batches) {
		return nil, fmt.Errorf("dist: migration point %d outside (0, %d)", switchAt, len(batches))
	}
	var snap *ckpt.State
	o1 := append(append([]Option(nil), opts...), WithCheckpoint(switchAt, func(st *ckpt.State) {
		if st.Iter == switchAt {
			snap = st
		}
	}))
	r1, err := Run(m, batches[:switchAt], from, o1...)
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("dist: plan %s produced no checkpoint at iteration %d", from, switchAt)
	}
	o2 := append(append([]Option(nil), opts...), WithInitState(snap))
	r2, err := Run(m, batches[switchAt:], to, o2...)
	if err != nil {
		return nil, err
	}
	r2.Losses = append(append([]float64(nil), r1.Losses...), r2.Losses...)
	return r2, nil
}
