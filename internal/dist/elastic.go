package dist

import (
	"context"
	"errors"
	"fmt"
	"time"

	"paradl/internal/ckpt"
	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/trace"
)

// Policy configures the elastic supervisor: how often the running world
// checkpoints, where the checkpoints persist, and how stubbornly the
// supervisor retries after losing PEs.
type Policy struct {
	// CkptEvery is the checkpoint cadence in iterations (default 1).
	CkptEvery int
	// CkptDir, when non-empty, persists every checkpoint to disk
	// through an async ckpt.Writer: the training path hands snapshots
	// off and keeps going while the writer does the atomic
	// temp+rename+SHA-256 in the background. With a directory set, the
	// durable, integrity-checked newest file (ckpt.LatestValid) is the
	// restore point after a failure — not the in-memory copy — so
	// recovery proves out the same path a real process restart would
	// take. A persistence failure surfaces as the run's error even when
	// training itself succeeds — a silently unprotected run is worse
	// than a failed one.
	CkptDir string
	// MaxRetries bounds how many PE deaths the supervisor absorbs
	// before giving up (default 3).
	MaxRetries int
	// Backoff, when positive, sleeps Backoff<<(attempt-1) before each
	// recovery attempt — the usual exponential courtesy toward whatever
	// killed the PE.
	Backoff time.Duration
	// Ctx, when non-nil, bounds the whole supervised run: a cancelled
	// context stops the supervisor between legs and interrupts backoff
	// sleeps, so callers get control back promptly instead of waiting
	// out the ladder.
	Ctx context.Context
	// Faults, when non-nil, scripts chaos for the run: scheduled
	// crashes (which supersede any WithFailAt in the run options),
	// straggler stalls, checkpoint corruptions (CkptDir required to
	// have any effect), and heal events that trigger grow-back.
	Faults *FaultSchedule
}

// Recovery records one supervisor intervention: a crash (shrink) or a
// grow-back (the failed slot healed), the plan migration it forced,
// the iteration training resumed from (0 when no checkpoint existed
// yet and the run restarted), and — for crashes — the recovery timing
// breakdown (MTTR). Grow-backs are planned transitions, not repairs,
// so their timing fields stay zero.
type Recovery struct {
	Kind       string `json:"kind"`        // "crash" or "grow-back"
	PE         int    `json:"pe"`          // world rank of the dead PE (-1 for grow-back)
	FailIter   int    `json:"fail_iter"`   // global iteration it died in (heal iteration for grow-back)
	From       string `json:"from"`        // plan string before re-planning
	To         string `json:"to"`          // plan string after re-planning
	ResumeIter int    `json:"resume_iter"` // first iteration of the resumed leg

	// Crash-recovery timing, all in milliseconds of wall clock:
	// DetectMS is PE death → the supervisor observing the failure (the
	// world unwinding and Run returning its error), RestoreMS the
	// re-establishment of the restore point (writer drain + durable
	// checkpoint scan-back), ReplanMS the oracle consult building the
	// candidate ladder, and MTTRMS the whole outage — PE death → the
	// re-planned world actually launching (backoff included).
	DetectMS  float64 `json:"detect_ms,omitempty"`
	RestoreMS float64 `json:"restore_ms,omitempty"`
	ReplanMS  float64 `json:"replan_ms,omitempty"`
	MTTRMS    float64 `json:"mttr_ms,omitempty"`
}

// ElasticResult is a supervised run's outcome: the final leg's Result
// with the loss series stitched across every recovery (so it spans all
// iterations, exactly like an uninterrupted run), plus the recovery
// log.
type ElasticResult struct {
	*Result
	Recoveries []Recovery
}

// RunElastic trains under supervision: the world checkpoints its
// canonical state every CkptEvery iterations (asynchronously when
// CkptDir is set), and when a PE dies (WithFailAt, a scheduled
// FaultCrash, or any injected *PEFailure) the supervisor consults the
// oracle for the best trainable plan at the shrunken world size,
// restores the last checkpoint, and continues — falling down a
// graceful-degradation ladder (oracle picks, then plain data
// parallelism, then narrower, then serial) until something trains or
// MaxRetries is spent. When a scheduled FaultHeal marks the failed
// slot healthy again, the ladder runs the other way: the supervisor
// stops the shrunken world at the heal point, re-plans at full width,
// and migrates back through the same checkpoint path (grow-back).
// Because every leg resumes from canonical unsharded state, the
// stitched loss series matches an uninterrupted run to ≤1e-6 no matter
// how many shrinks and grow-backs happened. Non-failure errors (bad
// plans, incompatible models) pass straight through: only PE death is
// recoverable.
func RunElastic(m *nn.Model, batches []Batch, pl Plan, pol Policy, opts ...Option) (*ElasticResult, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("dist: elastic run needs at least one batch")
	}
	ctx := pol.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	every := pol.CkptEvery
	if every <= 0 {
		every = 1
	}
	maxRetries := pol.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 3
	}
	fullP := pl.P()
	globalBatch := batches[0].X.Dim(0)
	sched := newScheduleState(pol.Faults)

	var (
		latest     *ckpt.State  // most recent snapshot, the restore point
		writer     *ckpt.Writer // async persistence when CkptDir is set
		recoveries []Recovery
	)
	// The supervisor's own trace track (and the writer's): recovery work
	// overlaps no PE timeline, so it records on auxiliary tracks of the
	// recorder the run options carry — nil tracks when tracing is off.
	probe := defaultConfig()
	for _, o := range opts {
		o(&probe)
	}
	sup := probe.trace.Track("supervisor")
	if pol.CkptDir != "" {
		writer = ckpt.NewWriter(pol.CkptDir)
		writer.SetTracer(probe.trace.Track("ckpt-writer"))
		defer writer.Close()
	}
	sink := func(st *ckpt.State) {
		latest = st
		if writer != nil {
			writer.Put(st) // pointer handoff; I/O happens off the training path
		}
	}

	// leg runs one supervised stretch under plan p over global
	// iterations [latest.Iter, end), resuming from the latest checkpoint
	// when one exists. disarm appends WithFailAt(-1,-1) AFTER the
	// caller's options, overriding any injected failure so a recovery
	// attempt does not re-trip the same trap; scheduled faults for the
	// window re-arm after that (the schedule supersedes WithFailAt).
	leg := func(p Plan, end int, disarm bool) (*Result, []float64, error) {
		start := 0
		var prefix []float64
		runOpts := append(append([]Option(nil), opts...), WithCheckpoint(every, sink))
		if latest != nil {
			start = latest.Iter
			prefix = append([]float64(nil), latest.Losses...)
			runOpts = append(runOpts, WithInitState(latest))
		}
		if disarm {
			runOpts = append(runOpts, WithFailAt(-1, -1))
		}
		runOpts = append(runOpts, sched.arm(p.P(), start, end)...)
		res, err := Run(m, batches[start:end], p, runOpts...)
		return res, prefix, err
	}
	finish := func(res *Result, prefix []float64) (*ElasticResult, error) {
		if writer != nil {
			if err := writer.Drain(); err != nil {
				return nil, fmt.Errorf("dist: training finished but checkpointing to %s failed: %w", pol.CkptDir, err)
			}
		}
		res.Losses = append(prefix, res.Losses...)
		return &ElasticResult{Result: res, Recoveries: recoveries}, nil
	}
	// restorePoint re-establishes the restore state after a failure.
	// With a checkpoint directory, the durable newest VALID file is the
	// truth: drain the writer (so recovery never races the write it
	// depends on), let scheduled corruptions do their damage, then scan
	// back from the newest file until one passes its SHA-256. Without a
	// directory, the in-memory snapshot stands.
	restorePoint := func(failIter int) {
		if writer == nil {
			return
		}
		_ = writer.Drain() // a write error still surfaces at finish
		sched.applyCorruptions(pol.CkptDir, failIter)
		if st, _, err := ckpt.LatestValid(pol.CkptDir); err == nil {
			latest = st
		} else {
			latest = nil // nothing durable survived: restart from scratch
		}
	}
	resumeIter := func() int {
		if latest != nil {
			return latest.Iter
		}
		return 0
	}

	cur := pl
	disarm := false
	attempt := 0
	var cands []Plan      // untried alternatives for the in-progress re-plan
	var pending *Recovery // logged once the re-planned world actually runs
	var failAt time.Time  // crash instant of the pending recovery (zero for grow-backs)
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dist: elastic supervisor cancelled: %w", err)
		}
		start := resumeIter()
		// A heal the checkpoint already covers: grow immediately.
		if cur.P() < fullP && sched.healDue(start) {
			sched.consumeHeal(start)
			cands = growCandidates(m, pl, fullP, globalBatch, len(batches))
			grown := cands[0]
			cands = cands[1:]
			pending = &Recovery{Kind: "grow-back", PE: -1, FailIter: start, From: cur.String(), To: grown.String(), ResumeIter: start}
			cur, disarm = grown, true
			failAt = time.Time{}
			continue
		}
		end := sched.growBoundary(start, len(batches), cur.P() < fullP)
		if pending != nil && !failAt.IsZero() {
			// The re-planned world launches now: the outage — death to
			// relaunch, backoff and failed candidates included — is over.
			pending.MTTRMS = msSince(failAt)
			sup.End()
		}
		res, prefix, err := leg(cur, end, disarm)
		if err == nil {
			if pending != nil { // the migrated world ran: log the recovery
				recoveries = append(recoveries, *pending)
				pending = nil
			}
			cands = nil
			if end == len(batches) {
				return finish(res, prefix)
			}
			// The leg stopped at a heal boundary: the failed slot is
			// healthy again — re-plan at full width and migrate back
			// through the checkpoint. If the cadence left the newest
			// snapshot short of the boundary, the grown world replays the
			// gap; replay through canonical state is parity-exact.
			sched.consumeHeal(end)
			cands = growCandidates(m, pl, fullP, globalBatch, len(batches))
			grown := cands[0]
			cands = cands[1:]
			pending = &Recovery{Kind: "grow-back", PE: -1, FailIter: end, From: cur.String(), To: grown.String(), ResumeIter: resumeIter()}
			cur, disarm = grown, true
			failAt = time.Time{}
			continue
		}
		var pf *PEFailure
		if !errors.As(err, &pf) {
			// Not a PE death. Mid-re-plan it means the candidate is
			// untrainable for this model: fall to the next rung. Otherwise
			// it is a hard error.
			if len(cands) > 0 {
				next := cands[0]
				cands = cands[1:]
				if pending != nil {
					pending.To = next.String()
				}
				cur = next
				continue
			}
			if pending != nil {
				return nil, fmt.Errorf("dist: no %s plan is trainable for %q (last candidate %s: %v)", pending.Kind, m.Name, cur, err)
			}
			return nil, err
		}
		// A PE died. If a migration was pending, the re-planned world
		// really ran (and died again): the migration happened, log it.
		detected := time.Now() // the world has unwound; the supervisor knows
		sup.Iter(pf.Iter)
		sup.Begin(trace.Recovery)
		var detectMS float64
		if !pf.At.IsZero() {
			detectMS = detected.Sub(pf.At).Seconds() * 1e3
		}
		if pending != nil {
			recoveries = append(recoveries, *pending)
			pending = nil
		}
		cands = nil
		sched.consumeCrash(pf)
		disarm = true
		attempt++
		if attempt > maxRetries {
			sup.End()
			return nil, fmt.Errorf("dist: elastic run gave up after %d recovery attempts: %w", maxRetries, err)
		}
		if pol.Backoff > 0 {
			if serr := sleepCtx(ctx, pol.Backoff<<(attempt-1)); serr != nil {
				sup.End()
				return nil, fmt.Errorf("dist: elastic supervisor cancelled during backoff: %w", serr)
			}
		}
		restoreStart := time.Now()
		restorePoint(pf.Iter)
		restoreMS := msSince(restoreStart)
		pNew := cur.P() - 1
		if pNew < 1 {
			sup.End()
			return nil, fmt.Errorf("dist: no PEs left to recover with: %w", err)
		}
		replanStart := time.Now()
		cands = recoveryPlans(m, pNew, globalBatch, len(batches))
		replanMS := msSince(replanStart)
		if len(cands) == 0 { // unreachable: the ladder always ends at serial
			sup.End()
			return nil, fmt.Errorf("dist: no recovery plan at p=%d for %q: %w", pNew, m.Name, err)
		}
		next := cands[0]
		cands = cands[1:]
		pending = &Recovery{
			Kind: "crash", PE: pf.PE, FailIter: pf.Iter,
			From: cur.String(), To: next.String(), ResumeIter: resumeIter(),
			DetectMS: detectMS, RestoreMS: restoreMS, ReplanMS: replanMS,
		}
		failAt = pf.At
		if failAt.IsZero() {
			failAt = detected // injected failures always stamp At; be safe
		}
		cur = next
	}
}

// msSince returns the wall-clock milliseconds elapsed since t.
func msSince(t time.Time) float64 {
	return float64(time.Since(t)) / float64(time.Millisecond)
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes
// first, returning the context's error on early wake.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// growCandidates ranks the plans worth trying when the world grows
// back to full width p: the plan the run originally asked for first
// (growing back should land where the user started whenever that plan
// still preserves semantics), then the standard recovery ladder at p.
func growCandidates(m *nn.Model, original Plan, p, globalBatch, nBatches int) []Plan {
	var out []Plan
	if original.P() == p && original.Validate() == nil && semanticsPreserving(m, original) {
		out = append(out, original)
	}
	for _, c := range recoveryPlans(m, p, globalBatch, nBatches) {
		if len(out) > 0 && c.String() == out[0].String() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// recoveryPlans ranks the plans worth trying at the shrunken world
// size p: the oracle's feasible strategies first (core.AdviseFeasible —
// the strict advisor would refuse outright at awkward widths like
// primes), then the graceful-degradation ladder of plain data
// parallelism at p, narrower data parallelism, and finally serial —
// which always trains, so a supervised run never strands without a
// plan for runtime reasons alone.
func recoveryPlans(m *nn.Model, p, globalBatch, nBatches int) []Plan {
	var out []Plan
	seen := map[string]bool{}
	add := func(pl Plan) {
		if pl.Validate() != nil || seen[pl.String()] || !semanticsPreserving(m, pl) {
			return
		}
		seen[pl.String()] = true
		out = append(out, pl)
	}
	if globalBatch > 0 {
		ref := core.ConfigRef{
			Model: m.Name,
			D:     int64(maxOf(1, nBatches) * maxOf(1, globalBatch)),
			B:     globalBatch,
			P:     p,
		}
		// Non-zoo models have no oracle entry; the ladder below still
		// applies.
		if cfg, err := ref.Resolve(); err == nil {
			for _, a := range core.AdviseFeasible(cfg) {
				if pl := PlanFromProjection(a.Projection); pl.P() == p {
					add(pl)
				}
			}
		}
	}
	add(Plan{Strategy: core.Data, P1: p})
	for q := p - 1; q >= 2; q-- {
		add(Plan{Strategy: core.Data, P1: q})
	}
	add(Plan{Strategy: core.Serial})
	return out
}

// semanticsPreserving reports whether migrating to pl continues the
// SAME optimization trajectory the failed run was on. Pipeline
// microbatching computes batch-norm statistics per microbatch (the
// GPipe semantics, a documented deviation from the baseline), so for
// BN models the pipeline strategies are not valid resume targets —
// every other strategy synchronizes BN and keeps value parity.
func semanticsPreserving(m *nn.Model, pl Plan) bool {
	switch pl.Strategy {
	case core.Pipeline, core.DataPipeline:
	default:
		return true
	}
	if pl.normalized().P2 == 1 {
		return true // a single stage is plain data parallelism
	}
	for l := range m.Layers {
		if m.Layers[l].Kind == nn.BatchNorm {
			return false
		}
	}
	return true
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PlanFromProjection maps an oracle projection onto an executable
// plan: the data-parallel width rides the first axis, model-parallel
// strategies the second, and hybrids keep the advisor's defaulted
// P1×P2 grid shape.
func PlanFromProjection(pr *core.Projection) Plan {
	cfg := pr.Config
	switch s := pr.Strategy; s {
	case core.Serial:
		return Plan{Strategy: core.Serial}
	case core.Data:
		return Plan{Strategy: core.Data, P1: cfg.P}
	case core.DataFilter, core.DataSpatial, core.DataPipeline:
		return Plan{Strategy: s, P1: cfg.P1, P2: cfg.P2}
	default:
		return Plan{Strategy: s, P2: cfg.P}
	}
}

// Migrate trains batches[:switchAt] under plan from, checkpoints at
// the switch point through the canonical representation, and resumes
// batches[switchAt:] under plan to — a live plan migration (e.g.
// data:8 → df:4x2) with no retraining. The returned Result carries
// to's grid shape and the loss series of the whole run.
func Migrate(m *nn.Model, batches []Batch, from Plan, switchAt int, to Plan, opts ...Option) (*Result, error) {
	if switchAt <= 0 || switchAt >= len(batches) {
		return nil, fmt.Errorf("dist: migration point %d outside (0, %d)", switchAt, len(batches))
	}
	var snap *ckpt.State
	o1 := append(append([]Option(nil), opts...), WithCheckpoint(switchAt, func(st *ckpt.State) {
		if st.Iter == switchAt {
			snap = st
		}
	}))
	r1, err := Run(m, batches[:switchAt], from, o1...)
	if err != nil {
		return nil, err
	}
	if snap == nil {
		return nil, fmt.Errorf("dist: plan %s produced no checkpoint at iteration %d", from, switchAt)
	}
	o2 := append(append([]Option(nil), opts...), WithInitState(snap))
	r2, err := Run(m, batches[switchAt:], to, o2...)
	if err != nil {
		return nil, err
	}
	r2.Losses = append(append([]float64(nil), r1.Losses...), r2.Losses...)
	return r2, nil
}
