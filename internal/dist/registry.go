package dist

import (
	"fmt"
	"time"

	"paradl/internal/ckpt"
	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// runConfig carries every knob of one training run. It is assembled
// only by Run from the functional options below; the deprecated Run*
// shims translate their positional arguments into options and delegate
// to Run, so every entry path feeds the engines identically.
type runConfig struct {
	seed     int64
	lr       float64
	momentum float64
	hook     func(iter int, loss float64)
	// arInputGrad forces the filter-parallel backward to Allreduce the
	// full input gradient instead of the default footnote-2
	// reduce-scatter (see tensorpar.go); kept as a knob so the two
	// exchange paths can be compared for parity.
	arInputGrad bool
	// overlap launches each gradient bucket's allreduce nonblocking as
	// soon as the bucket fills during the backward pass, overlapping the
	// exchange with the backward compute of the layers below (the DDP
	// scheme); off runs the identical bucketed exchange blocking at the
	// same flush points, so the two modes are bit-identical and A/B
	// comparable.
	overlap bool
	// bucketBytes bounds the gradient bucket size (bytes of float64
	// payload) at which an exchange launches.
	bucketBytes int
	// planStr is the canonical string of the executing plan, stamped by
	// Run so checkpoints record what produced them.
	planStr string
	// startIter is the global iteration index of batches[0] — nonzero on
	// a resumed run, where the engines' local batch index bi corresponds
	// to global iteration startIter+bi (hooks, failure matching, and
	// checkpoint cadence all use the global index).
	startIter int
	// prefixLosses is the global loss series before batches[0] (from the
	// restored checkpoint), so emitted snapshots carry the full history.
	prefixLosses []float64
	// initState, when set, replaces the seed-derived initial parameters:
	// every PE restores the canonical snapshot into its replica before
	// carving shards, and momentum velocities are re-seeded per shard.
	initState *ckpt.State
	// ckptEvery/ckptSink: every ckptEvery global iterations the engines
	// gather the canonical training state and hand it to ckptSink on the
	// result PE's goroutine (synchronously, like the iteration hook).
	ckptEvery int
	ckptSink  func(*ckpt.State)
	// failPE/failIter inject a failure: world rank failPE panics at the
	// top of global iteration failIter, mid-iteration from its peers'
	// point of view — they die blocked in collectives. failPE < 0 is off.
	failPE, failIter int
	// delays inject stragglers: world rank pe stalls for the mapped
	// duration at the top of global iteration iter, so its peers wait
	// in collectives exactly like behind a real slow node.
	delays map[delayPoint]time.Duration
	// trace, when set, receives phase-attributed span events from every
	// PE of the run (see internal/trace). Nil — the default — makes
	// every tracer call site a nil-receiver no-op.
	trace *trace.Recorder
}

// delayPoint keys one straggler stall: (world rank, global iteration).
type delayPoint struct{ pe, iter int }

// Option customizes a Run call.
type Option func(*runConfig)

// defaultConfig returns the documented defaults: seed 1, plain SGD at
// lr 0.01, no momentum, no hook, footnote-2 reduce-scatter enabled,
// backward/communication overlap on with 256 KiB gradient buckets.
func defaultConfig() runConfig {
	return runConfig{seed: 1, lr: 0.01, overlap: true, bucketBytes: defaultBucketBytes, failPE: -1}
}

// WithSeed sets the parameter-initialization seed (default 1). Every PE
// derives its replica from the same seed, so runs are reproducible.
func WithSeed(seed int64) Option { return func(c *runConfig) { c.seed = seed } }

// WithLR sets the SGD learning rate (default 0.01).
func WithLR(lr float64) Option { return func(c *runConfig) { c.lr = lr } }

// WithMomentum enables heavy-ball SGD: v ← µ·v + g, w ← w − lr·v.
// Velocity state lives per PE on exactly the parameter shards the PE
// owns, so momentum runs stay in value parity with the sequential
// baseline under every strategy (each shard's gradient is already its
// slice of the global mean gradient).
func WithMomentum(mu float64) Option { return func(c *runConfig) { c.momentum = mu } }

// WithIterHook registers a per-iteration callback receiving the
// iteration index and its global loss — the same series Result.Losses
// records. The hook runs on the result PE's goroutine, synchronously
// with training, so a slow hook slows the run; it must not call back
// into the run.
func WithIterHook(hook func(iter int, loss float64)) Option {
	return func(c *runConfig) { c.hook = hook }
}

// WithOverlap toggles backward/communication overlap (default on):
// gradient buckets launch nonblocking allreduces as the backward pass
// produces them, hiding the exchange behind the backward compute of the
// layers below. WithOverlap(false) runs the identical bucketed exchange
// synchronously — losses are bit-identical either way (the determinism
// suite pins this), so the knob exists purely for A/B timing.
func WithOverlap(on bool) Option { return func(c *runConfig) { c.overlap = on } }

// WithBucketBytes sets the gradient bucket size bound in bytes (default
// 256 KiB): a bucket's allreduce launches as soon as the gradients
// queued since the last flush reach this many bytes. Smaller buckets
// start overlapping earlier but pay more per-collective overhead;
// n <= 1 flushes every gradient tensor by itself. Bucket boundaries are
// deterministic (backward push order and sizes only), so any value
// keeps bit-reproducibility.
func WithBucketBytes(n int) Option { return func(c *runConfig) { c.bucketBytes = n } }

// WithInputGradAllReduce restores the pre-footnote-2 filter-parallel
// backward: the input gradient is Allreduced to full width even where
// the next sharded layer would immediately narrow it to its own slice.
// Default off (the reduce-scatter path runs); the option exists for
// A/B parity checks and overhead comparisons.
func WithInputGradAllReduce() Option { return func(c *runConfig) { c.arInputGrad = true } }

// WithFailAt injects a failure for the elastic-recovery path: world
// rank pe panics at the top of global iteration iter, so its peers die
// mid-collective exactly like a real PE loss. A negative pe disables
// injection (the WithFailAt(-1, -1) a supervisor appends on recovery
// attempts). Run reports the death as a *PEFailure error.
func WithFailAt(pe, iter int) Option {
	return func(c *runConfig) { c.failPE, c.failIter = pe, iter }
}

// WithDelay injects a straggler: world rank pe stalls for d at the top
// of global iteration iter before computing, so its peers observe a
// slow node (they block in the iteration's collectives until it
// catches up). Stalls change timing only — the loss trajectory is
// bit-identical to an unstalled run. Multiple WithDelay options
// accumulate; chaos schedules arm one per straggle fault.
func WithDelay(pe, iter int, d time.Duration) Option {
	return func(c *runConfig) {
		if c.delays == nil {
			c.delays = map[delayPoint]time.Duration{}
		}
		c.delays[delayPoint{pe, iter}] = d
	}
}

// WithTrace attaches a phase-attributed trace recorder: every PE of
// the run records which phase (compute, collective, halo, pipeline
// transfer, …) it is in at every moment into its own ring buffer in
// rec. The recorder may be shared across runs (an elastic supervisor's
// legs all write the same recorder) but must only be read — Summarize,
// WriteChrome — after Run returns. A nil rec is the default: tracing
// disabled at zero cost.
func WithTrace(rec *trace.Recorder) Option {
	return func(c *runConfig) { c.trace = rec }
}

// WithCheckpoint registers a checkpoint sink: every `every` global
// iterations — right after the optimizer step — the engines gather the
// canonical unsharded training state (full params, full momentum
// velocities, cursor, loss history) and pass it to sink on the result
// PE's goroutine, synchronously with training. The gather is pure data
// movement: a checkpointing run stays bit-identical to a plain one.
// every < 1 or a nil sink disables checkpointing.
func WithCheckpoint(every int, sink func(*ckpt.State)) Option {
	return func(c *runConfig) { c.ckptEvery, c.ckptSink = every, sink }
}

// WithInitState resumes from a canonical checkpoint: every PE restores
// the snapshot's full parameters into its replica before carving
// shards (so any plan re-shards the same canonical state), momentum
// velocities are re-seeded shard by shard, and the run's seed, lr,
// momentum, loss history, and iteration offset all come from the
// snapshot. Resuming under the checkpoint's own plan is bit-identical
// to never having stopped; resuming under a different plan is a live
// migration through the same path.
func WithInitState(st *ckpt.State) Option {
	return func(c *runConfig) {
		c.initState = st
		if st == nil {
			return
		}
		c.startIter = st.Iter
		c.seed = st.Seed
		c.lr = st.LR
		c.momentum = st.Momentum
		c.prefixLosses = st.Losses
	}
}

// fire invokes the per-iteration hook if one is registered. iter is the
// engine's local batch index; the hook sees the global iteration.
func (c *runConfig) fire(iter int, loss float64) {
	if c.hook != nil {
		c.hook(c.startIter+iter, loss)
	}
}

// tracer returns the configured recorder's tracer for one world rank —
// nil (the free disabled tracer) when tracing is off.
func (c *runConfig) tracer(worldRank int) *trace.PE {
	return c.trace.PE(worldRank)
}

// maybeFail panics with a *PEFailure when this PE is the configured
// casualty of global iteration startIter+bi. It runs at the top of the
// iteration body, before any collective: the victim dies cleanly while
// its peers are already (or soon) blocked in exchanges, so the world
// observes a mid-iteration loss and aborts. An injected straggle shows
// up on the trace as idle time (the engines open an idle span around
// this call).
func (c *runConfig) maybeFail(worldRank, bi int) {
	if d, ok := c.delays[delayPoint{worldRank, c.startIter + bi}]; ok {
		time.Sleep(d) // straggle first: a slow node can still die
	}
	if worldRank == c.failPE && c.startIter+bi == c.failIter {
		panic(&PEFailure{PE: worldRank, Iter: c.failIter, At: time.Now()})
	}
}

// snapshotDue reports whether the iteration at local batch index bi
// ends on a checkpoint boundary.
func (c *runConfig) snapshotDue(bi int) bool {
	return c.ckptSink != nil && c.ckptEvery > 0 && (c.startIter+bi+1)%c.ckptEvery == 0
}

// emit assembles the canonical snapshot after local iteration bi and
// hands it to the sink. tail is the engine's local loss series
// (batches[0..bi]); the restored prefix is prepended so the snapshot
// always carries the full global history.
func (c *runConfig) emit(modelName string, bi int, tail []float64, params, vel []nn.Params) {
	iter := c.startIter + bi + 1
	losses := make([]float64, 0, len(c.prefixLosses)+bi+1)
	losses = append(losses, c.prefixLosses...)
	losses = append(losses, tail[:bi+1]...)
	c.ckptSink(&ckpt.State{
		Model: modelName, Plan: c.planStr, Iter: iter,
		Seed: c.seed, LR: c.lr, Momentum: c.momentum,
		Cursor: iter, Losses: losses, Params: params, Vel: vel,
		// The data-cursor stream records the RNG lineage of the input
		// pipeline explicitly (seed + next draw index), so stochastic
		// consumers resume bit-identically even if Cursor's meaning
		// ever diverges from "iterations completed".
		Streams: []ckpt.Stream{{Name: "data-cursor", Seed: c.seed, Next: int64(iter)}},
	})
}

// stepper adapts the configured optimizer to the runtime's two update
// surfaces: whole networks (stepNet) and bare parameter shards (step) —
// filter/channel slices and pipeline stages never appear in a
// []nn.Params. With zero momentum it is plain SGD; otherwise it wraps
// one nn.Momentum per PE, whose identity-keyed velocities give each
// shard its own slice of the global velocity.
type stepper struct {
	lr  float64
	mom *nn.Momentum // nil for plain SGD
}

func newStepper(cfg *runConfig) *stepper {
	s := &stepper{lr: cfg.lr}
	if cfg.momentum != 0 {
		s.mom = nn.NewMomentum(cfg.lr, cfg.momentum)
	}
	return s
}

// step updates w in place from gradient g (no-op when either is nil).
func (s *stepper) step(w, g *tensor.Tensor) {
	if w == nil || g == nil {
		return
	}
	if s.mom != nil {
		s.mom.Update(w, g)
		return
	}
	tensor.SGDStep(w, g, s.lr)
}

// stepNet applies the update to every (param, grad) pair of the
// network; both paths visit pairs in nn's own order, so zero-momentum
// runs are bit-identical to Network.Step.
func (s *stepper) stepNet(net *nn.Network, grads []nn.Grads) {
	if s.mom != nil {
		net.StepWith(s.mom, grads)
		return
	}
	net.Step(grads, s.lr)
}

// runnerFunc executes one normalized, validated plan.
type runnerFunc func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error)

// registry maps every executable strategy to its runner. The pure
// strategies are registered as the degenerate edges of the grid engines
// they share with the hybrids — data is the P2=1 edge of the
// data×filter grid, filter/spatial/pipeline the P1=1 edges of their
// grids — so a new strategy lands as one entry here, not a new export.
var registry = map[core.Strategy]runnerFunc{
	core.Serial: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runSequential(m, batches, cfg)
	},
	core.Data: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataFilter(m, batches, cfg, pl.P1, 1, "data")
	},
	core.Filter: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataFilter(m, batches, cfg, 1, pl.P2, "filter")
	},
	core.Spatial: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataSpatial(m, batches, cfg, 1, pl.P2, "spatial")
	},
	core.Channel: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runChannel(m, batches, cfg, pl.P2)
	},
	core.Pipeline: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataPipeline(m, batches, cfg, 1, pl.P2, "pipeline")
	},
	core.DataFilter: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataFilter(m, batches, cfg, pl.P1, pl.P2, "data+filter")
	},
	core.DataSpatial: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataSpatial(m, batches, cfg, pl.P1, pl.P2, "data+spatial")
	},
	core.DataPipeline: func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return runDataPipeline(m, batches, cfg, pl.P1, pl.P2, "data+pipeline")
	},
}

// Strategies lists every strategy with a registered runner, in plan
// order: the serial baseline, the five pure strategies, then the grid
// hybrids. (core.Strategies lists the PROJECTABLE set; the two differ
// exactly by Serial, the baseline only the runtime executes — dp is
// both executable and, via the §3.6 composition, projectable.)
func Strategies() []core.Strategy {
	return []core.Strategy{
		core.Serial, core.Data, core.Spatial, core.Filter, core.Channel,
		core.Pipeline, core.DataFilter, core.DataSpatial, core.DataPipeline,
	}
}

// Run executes a training run described by a Plan: it validates the
// plan, looks up the strategy's runner in the registry, and dispatches
// with the options applied. This is the single entry point of the
// runtime — the advisor, the CLI, and the deprecated per-strategy
// shims all converge here, so a strategy choice can be a runtime value
// rather than a function name.
func Run(m *nn.Model, batches []Batch, pl Plan, opts ...Option) (*Result, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	pl = pl.normalized()
	if err := pl.Validate(); err != nil {
		return nil, err // includes unregistered strategies
	}
	cfg.planStr = pl.String()
	if st := cfg.initState; st != nil {
		if st.Model != m.Name {
			return nil, fmt.Errorf("dist: checkpoint is for model %q, run is for %q", st.Model, m.Name)
		}
		if len(st.Params) != m.G() {
			return nil, fmt.Errorf("dist: checkpoint has %d layers, model %q has %d", len(st.Params), m.Name, m.G())
		}
	}
	return registry[pl.Strategy](m, batches, pl, &cfg)
}
