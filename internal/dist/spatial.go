package dist

import (
	"fmt"
	"math"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// spatialAxis is the tensor axis of the first spatial dimension in the
// [N, C, spatial...] layout — the axis the spatial strategy decomposes
// (internal/strategy splits height only, preserving the halo pattern).
const spatialAxis = 2

// rowSpan is a half-open interval [Lo, Hi) of global rows along the
// split axis.
type rowSpan struct{ Lo, Hi int }

func (s rowSpan) len() int { return s.Hi - s.Lo }

func spanOf(r strategy.Range) rowSpan { return rowSpan{r.Start, r.End} }

func intersect(a, b rowSpan) rowSpan {
	lo, hi := max(a.Lo, b.Lo), min(a.Hi, b.Hi)
	if hi < lo {
		hi = lo
	}
	return rowSpan{lo, hi}
}

// layerPlan precomputes, for one windowed (Conv/Pool) layer, every PE's
// owned rows of the input and output activations plus the real input
// rows [need) and synthetic edge-padding rows each PE must assemble to
// compute exactly its output shard. It is shared read-only by all PEs,
// so sender and receiver agree on every halo message without any
// negotiation round.
type layerPlan struct {
	in, out      []strategy.Range
	need         []rowSpan
	padLo, padHi []int
}

// planLayer derives the halo-exchange plan of layer l at width p. For a
// window of size k, stride s, padding pd, PE i's output rows [oS, oE)
// require global input rows [oS·s − pd, (oE−1)·s − pd + k); rows below 0
// or past the input extent are synthesized as edge padding, the rest are
// fetched from whoever owns them.
func planLayer(l *nn.Layer, p int) (*layerPlan, error) {
	out, err := strategy.SpatialShards(l.Out[0], p)
	if err != nil {
		return nil, err
	}
	in, err := strategy.SpatialShards(l.In[0], p)
	if err != nil {
		return nil, err
	}
	pl := &layerPlan{
		in: in, out: out,
		need:  make([]rowSpan, p),
		padLo: make([]int, p),
		padHi: make([]int, p),
	}
	k, s, pd := l.Kernel[0], l.Stride[0], l.Pad[0]
	for i := 0; i < p; i++ {
		needLo := out[i].Start*s - pd
		needHi := (out[i].End-1)*s - pd + k
		realLo, realHi := max(needLo, 0), min(needHi, l.In[0])
		pl.need[i] = rowSpan{realLo, realHi}
		pl.padLo[i] = realLo - needLo
		pl.padHi[i] = needHi - realHi
	}
	return pl, nil
}

// haloExchange assembles this PE's windowed-layer input block: its own
// rows plus halo rows fetched point-to-point from the PEs owning them
// (§3.2), with padVal rows synthesized on the outer edges. padVal is 0
// for convolution and average pooling; max pooling uses −Inf because
// the sequential kernel skips padded positions, which a −Inf row can
// never beat.
func haloExchange(c *Comm, x *tensor.Tensor, pl *layerPlan, padVal float64) *tensor.Tensor {
	rank, p := c.Rank(), c.Size()
	own := spanOf(pl.in[rank])
	for dst := 0; dst < p; dst++ {
		if dst == rank {
			continue
		}
		if ov := intersect(pl.need[dst], own); ov.len() > 0 {
			// Narrow already snapshots the halo rows; hand that copy over
			// instead of paying Send's second deep copy.
			c.sendOwned(dst, x.Narrow(spatialAxis, ov.Lo-own.Lo, ov.len()))
		}
	}
	need := pl.need[rank]
	shape := x.Shape()
	shape[spatialAxis] = pl.padLo[rank] + need.len() + pl.padHi[rank]
	block := tensor.New(shape...)
	if padVal != 0 {
		block.Fill(padVal)
	}
	for src := 0; src < p; src++ {
		ov := intersect(need, spanOf(pl.in[src]))
		if ov.len() == 0 {
			continue
		}
		var piece *tensor.Tensor
		if src == rank {
			piece = x.Narrow(spatialAxis, ov.Lo-own.Lo, ov.len())
		} else {
			piece = c.Recv(src)
		}
		block.CopyInto(piece, spatialAxis, pl.padLo[rank]+ov.Lo-need.Lo)
	}
	return block
}

// haloScatter is the backward counterpart of haloExchange: it strips the
// synthetic padding off dxBlock, ships halo-row gradient contributions
// back to their owners, and accumulates incoming pieces in ascending PE
// order so every replica reduces deterministically.
func haloScatter(c *Comm, dxBlock *tensor.Tensor, pl *layerPlan) *tensor.Tensor {
	rank, p := c.Rank(), c.Size()
	need := pl.need[rank]
	real := dxBlock.Narrow(spatialAxis, pl.padLo[rank], need.len())
	own := spanOf(pl.in[rank])
	for dst := 0; dst < p; dst++ {
		if dst == rank {
			continue
		}
		if ov := intersect(need, spanOf(pl.in[dst])); ov.len() > 0 {
			c.sendOwned(dst, real.Narrow(spatialAxis, ov.Lo-need.Lo, ov.len()))
		}
	}
	shape := dxBlock.Shape()
	shape[spatialAxis] = own.len()
	acc := tensor.New(shape...)
	for src := 0; src < p; src++ {
		ov := intersect(pl.need[src], own)
		if ov.len() == 0 {
			continue
		}
		var piece *tensor.Tensor
		if src == rank {
			piece = real.Narrow(spatialAxis, ov.Lo-need.Lo, ov.len())
		} else {
			piece = c.Recv(src)
		}
		addRegion(acc, piece, spatialAxis, ov.Lo-own.Lo)
	}
	return acc
}

// addRegion accumulates src into dst at offset start along axis — the
// additive counterpart of Tensor.CopyInto, touching only the O(region)
// elements of the halo rows rather than the whole slab. dst and src
// must agree on every dimension except axis.
func addRegion(dst, src *tensor.Tensor, axis, start int) {
	inner := 1
	for i := axis + 1; i < src.Rank(); i++ {
		inner *= src.Dim(i)
	}
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= src.Dim(i)
	}
	srcAxis, dstAxis := src.Dim(axis), dst.Dim(axis)
	sd, dd := src.Data(), dst.Data()
	for o := 0; o < outer; o++ {
		srcBase := o * srcAxis * inner
		dstBase := (o*dstAxis + start) * inner
		for i := 0; i < srcAxis*inner; i++ {
			dd[dstBase+i] += sd[srcBase+i]
		}
	}
}

// zeroAxis returns pad with the split-axis entry cleared: the halo block
// already carries the synthetic edge rows, so the kernel itself must not
// pad that axis again.
func zeroAxis(pad []int) []int {
	out := append([]int(nil), pad...)
	out[0] = 0
	return out
}

// RunSpatial executes spatial parallelism (§3.2): every PE owns a
// contiguous slab of the first spatial dimension of every activation,
// convolutions and poolings exchange halo rows with their neighbours,
// and the slabs are aggregated (Allgather) before the classifier head,
// which runs replicated — the aggregation point of §4.5.1. Trunk weight
// gradients are partial sums over each PE's output rows and are
// Allreduced before the identical SGD step; trunk batch norm is
// synchronized across slabs. It is the p1=1 edge of the data×spatial
// grid.
//
// Deprecated: use Run with Plan{Strategy: core.Spatial, P2: p}.
func RunSpatial(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.Spatial, P2: p}, WithSeed(seed), WithLR(lr))
}

// runDataSpatial is the shared engine behind the spatial (p1=1) and
// data+spatial registry entries: a p1×p2 grid where each group
// spatially decomposes its own batch shard over p2 slabs, joined by
// world-wide trunk and segmented head gradient exchange.
func runDataSpatial(m *nn.Model, batches []Batch, cfg *runConfig, p1, p2 int, label string) (*Result, error) {
	if err := checkGrid(m, batches, p1, p2, label); err != nil {
		return nil, err
	}
	fcStart := m.G()
	for l := range m.Layers {
		if m.Layers[l].Kind == nn.FC {
			fcStart = l
			break
		}
	}
	if fcStart == m.G() {
		return nil, fmt.Errorf("dist: spatial runtime requires a fully-connected head to aggregate into (model %q has none)", m.Name)
	}
	for l := range m.Layers {
		if m.Layers[l].Branch && l >= fcStart {
			return nil, fmt.Errorf("dist: %s aggregates slabs before the classifier head (§4.5.1), so residual blocks must close inside the trunk; branch layer %d (%s) sits in the head (layers %d..%d)",
				label, l, m.Layers[l].Name, fcStart, m.G()-1)
		}
	}
	limit := m.InputDims[0]
	for l := 0; l < fcStart; l++ {
		limit = min(limit, m.Layers[l].In[0], m.Layers[l].Out[0])
	}
	if p2 > limit {
		return nil, fmt.Errorf("dist: model %q supports spatial width <= %d (Table 3), got %d", m.Name, limit, p2)
	}
	// Shared read-only exchange plans for every windowed trunk layer;
	// slabs split within a group, so plans depend only on p2.
	plans := make([]*layerPlan, fcStart)
	for l := 0; l < fcStart; l++ {
		spec := &m.Layers[l]
		if spec.Kind != nn.Conv && spec.Kind != nn.Pool {
			continue
		}
		pl, err := planLayer(spec, p2)
		if err != nil {
			return nil, err
		}
		plans[l] = pl
	}
	losses, err := runGrid(p1, p2, 0, func(world, group, seg *Comm) ([]float64, error) {
		net, err := cfg.replica(m)
		if err != nil {
			return nil, err
		}
		step := newStepper(cfg)
		seedFullVelocities(cfg, step.mom, net)
		// Two bucketed exchanges per PE: trunk conv gradients sum over
		// the whole world, head gradients over the segment.
		exWorld := newGradExchanger(world, cfg)
		exSeg := newGradExchanger(seg, cfg)
		tr := cfg.tracer(world.Rank())
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			tr.Iter(cfg.startIter + bi)
			tr.Begin(trace.Idle)
			cfg.maybeFail(world.Rank(), bi)
			x, labels, weight := groupShard(&batches[bi], seg.Rank(), p1)
			loss := dataSpatialStep(world, group, seg, exWorld, exSeg, net, x, labels, weight, plans, fcStart, step, tr)
			if world.Rank() == 0 {
				cfg.fire(bi, loss)
			}
			out = append(out, loss)
			if cfg.snapshotDue(bi) {
				tr.Begin(trace.CheckpointPut)
				if world.Rank() == 0 {
					// Every PE steps the full replica in lockstep, so rank 0's
					// replica IS the canonical state — no gather traffic.
					params, vel := cloneNetState(net, step.mom)
					cfg.emit(m.Name, bi, out, params, vel)
				}
				// Checkpoint barrier — see runDataFilter.
				world.AllReduceScalar(0)
			}
		}
		tr.End()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: label, P: p1 * p2, P1: p1, P2: p2, Losses: losses}, nil
}

// dataSpatialStep runs one SGD iteration of the data×spatial grid on
// this group's batch shard x, weighted n_g/B in the global loss. Halo
// exchange and slab aggregation stay inside the group; trunk batch norm
// synchronizes over the whole world, because the (group, slab) pairs
// tile the global batch × spatial domain exactly once. Both gradient
// exchanges are bucketed: head gradients enter exSeg as the head
// backward produces them (overlapping the whole trunk backward), trunk
// conv gradients enter exWorld layer by layer (overlapping the backward
// of the layers below); draining both is the pre-step barrier.
func dataSpatialStep(world, group, seg *Comm, exWorld, exSeg *gradExchanger, net *nn.Network, x *tensor.Tensor, labels []int, weight float64, plans []*layerPlan, fcStart int, step *stepper, tr *trace.PE) float64 {
	model := net.Model
	rank, p := group.Rank(), group.Size()
	layers := model.Layers
	g := len(layers)

	inParts := strategy.PartitionDim(model.InputDims[0], p)
	gph := net.Graph()
	states := make([]*nn.LayerState, g)
	bnSync := make([]bool, g)
	tr.Begin(trace.ComputeForward)

	// Partitioned trunk forward: halo-assembled windowed layers,
	// slab-local element-wise layers, world-synchronized batch norm.
	// The graph walk routes shortcut convolutions from their tap's slab
	// — partitioned identically, since slab ranges depend only on the
	// extent — runs halo exchange on the shortcut like any windowed
	// layer, and merges slab-aligned outputs into the main path.
	cur := gph.ForwardRange(0, fcStart, x.Narrow(spatialAxis, inParts[rank].Start, inParts[rank].Size()),
		func(l int, xin *tensor.Tensor) *tensor.Tensor {
			spec := &layers[l]
			switch spec.Kind {
			case nn.Conv:
				tr.Begin(trace.Halo)
				block := haloExchange(group, xin, plans[l], 0)
				tr.Begin(trace.ComputeForward)
				cs := tensor.ConvSpec{Stride: spec.Stride, Pad: zeroAxis(spec.Pad)}
				states[l] = &nn.LayerState{X: block}
				return tensor.ConvForward(block, net.Params[l].W, net.Params[l].B, cs)
			case nn.Pool:
				padVal := 0.0
				if spec.PoolKind == tensor.MaxPool {
					padVal = math.Inf(-1)
				}
				tr.Begin(trace.Halo)
				block := haloExchange(group, xin, plans[l], padVal)
				tr.Begin(trace.ComputeForward)
				ps := tensor.PoolSpec{Kind: spec.PoolKind, Window: spec.Kernel, Stride: spec.Stride, Pad: zeroAxis(spec.Pad)}
				y, arg := tensor.PoolForward(block, ps)
				states[l] = &nn.LayerState{X: block, Argmax: arg}
				return y
			case nn.ReLU:
				states[l] = &nn.LayerState{X: xin}
				return tensor.ReLUForward(xin)
			case nn.BatchNorm:
				if world.Size() > 1 {
					tr.Begin(trace.BNSync)
					y, st := syncBNForward(world, xin, net.Params[l].Gamma, net.Params[l].Beta)
					tr.Begin(trace.ComputeForward)
					states[l] = &nn.LayerState{X: xin, BN: st}
					bnSync[l] = true
					return y
				}
				y, st := net.ForwardLayer(l, xin)
				states[l] = st
				return y
			default:
				panic(fmt.Sprintf("dist: layer kind %v in spatial trunk", spec.Kind))
			}
		})

	// Aggregate the group's slabs, then run the replicated head on the
	// group's batch shard (§4.5.1) — every PE of the group computes
	// identical logits and loss. Head batch norm sees only this group's
	// shard and synchronizes across the segment.
	tr.Begin(trace.CollectiveWait)
	cur = group.AllGather(cur, spatialAxis)
	tr.Begin(trace.ComputeForward)
	for l := fcStart; l < g; l++ {
		if layers[l].Kind == nn.BatchNorm && seg.Size() > 1 {
			tr.Begin(trace.BNSync)
			y, st := syncBNForward(seg, cur, net.Params[l].Gamma, net.Params[l].Beta)
			tr.Begin(trace.ComputeForward)
			states[l] = &nn.LayerState{X: cur, BN: st}
			bnSync[l] = true
			cur = y
			continue
		}
		cur, states[l] = net.ForwardLayer(l, cur)
	}
	loss, dy := tensor.SoftmaxCrossEntropy(cur, labels)
	if weight != 1 {
		dy.Scale(weight)
	}
	tr.Begin(trace.ComputeBackward)

	grads := make([]nn.Grads, g)
	for l := g - 1; l >= fcStart; l-- {
		if bnSync[l] {
			// Sync-BN gradients are already global: they bypass the
			// bucketed exchange, like the blocking path before it.
			tr.Begin(trace.BNSync)
			dx, dgamma, dbeta := syncBNBackward(seg, dy, net.Params[l].Gamma, states[l].BN)
			tr.Begin(trace.ComputeBackward)
			grads[l] = nn.Grads{Gamma: dgamma, Beta: dbeta}
			dy = dx
			continue
		}
		dy, grads[l] = net.BackwardLayer(l, dy, states[l])
		if exSeg != nil {
			exSeg.pushGrads(&grads[l])
		}
	}

	// Back into the trunk: keep only the gradient rows of this PE's
	// slab. The graph walk fans a merge point's slab gradient into both
	// the main path and the shortcut, whose halo-scattered input
	// gradient accumulates on the tap's slab (identical row partition).
	bParts := strategy.PartitionDim(layers[fcStart].In[0], p)
	gph.BackwardRange(0, fcStart, dy.Narrow(spatialAxis, bParts[rank].Start, bParts[rank].Size()),
		func(l int, dy *tensor.Tensor) *tensor.Tensor {
			spec := &layers[l]
			switch spec.Kind {
			case nn.Conv:
				cs := tensor.ConvSpec{Stride: spec.Stride, Pad: zeroAxis(spec.Pad)}
				block := states[l].X
				dxBlock := tensor.ConvBackwardData(dy, net.Params[l].W, block.Shape(), cs)
				dw, db := tensor.ConvBackwardWeight(dy, block, net.Params[l].W.Shape(), cs)
				grads[l] = nn.Grads{W: dw, B: db}
				if exWorld != nil {
					exWorld.push(dw, db)
				}
				tr.Begin(trace.Halo)
				out := haloScatter(group, dxBlock, plans[l])
				tr.Begin(trace.ComputeBackward)
				return out
			case nn.Pool:
				ps := tensor.PoolSpec{Kind: spec.PoolKind, Window: spec.Kernel, Stride: spec.Stride, Pad: zeroAxis(spec.Pad)}
				dxBlock := tensor.PoolBackward(dy, states[l].X.Shape(), ps, states[l].Argmax)
				tr.Begin(trace.Halo)
				out := haloScatter(group, dxBlock, plans[l])
				tr.Begin(trace.ComputeBackward)
				return out
			case nn.ReLU:
				return tensor.ReLUBackward(dy, states[l].X)
			case nn.BatchNorm:
				if bnSync[l] {
					tr.Begin(trace.BNSync)
					dx, dgamma, dbeta := syncBNBackward(world, dy, net.Params[l].Gamma, states[l].BN)
					tr.Begin(trace.ComputeBackward)
					grads[l] = nn.Grads{Gamma: dgamma, Beta: dbeta}
					return dx
				}
				dx, gr := net.BackwardLayer(l, dy, states[l])
				grads[l] = gr
				return dx
			default:
				panic(fmt.Sprintf("dist: layer kind %v in spatial trunk", spec.Kind))
			}
		})

	// Gradient exchange barrier: trunk convolution gradients are partial
	// sums over this PE's (batch shard, output rows) block and were
	// pushed into the world-wide bucketed exchange above; head gradients
	// are identical within a group and were pushed into the segmented
	// one; sync-BN gradients are already global. Draining both waits
	// every in-flight bucket and writes the sums back in place.
	if exWorld != nil {
		exWorld.drain()
	}
	if exSeg != nil {
		exSeg.drain()
	}
	step.stepNet(net, grads)
	tr.Begin(trace.CollectiveWait)
	global := seg.AllReduceScalar(loss * weight)
	tr.Begin(trace.ComputeBackward)
	return global
}
