package dist

import "paradl/internal/nn"

// The canonical benchmark workload, shared by the in-repo benchmarks
// (bench_test.go) and the machine-readable perf snapshot
// (cmd/paraexp -exp benchdist) so that committed BENCH_dist.json
// snapshots stay comparable with `go test ./internal/dist -bench .`
// across PRs: both sides consume BenchMatrix and these constants, and
// widening the matrix widens both at once.
const (
	// BenchBatchSize is the global batch per iteration; 8 admits every
	// width of the matrix (data needs batch ≥ p).
	BenchBatchSize = 8
	// BenchBatches is the number of training iterations per measured op.
	BenchBatches = 2
)

// BenchSpec is one strategy×width case of the benchmark matrix. P1/P2
// are zero except for grid (hybrid) cases.
type BenchSpec struct {
	Name   string
	P      int
	P1, P2 int
	Run    func(m *nn.Model, seed int64, batches []Batch, lr float64) (*Result, error)
}

// BenchMatrix returns the strategy×width matrix the benchmarks sweep:
// every runner at the widths model.TinyCNNNoBN admits, p∈{2,4,8} where
// Table 3 allows (spatial extent caps at 4, channel stays at its
// cheap widths, pipeline at ≤ G stages).
func BenchMatrix() []BenchSpec {
	specs := []BenchSpec{{
		Name: "sequential", P: 1,
		Run: func(m *nn.Model, seed int64, batches []Batch, lr float64) (*Result, error) {
			return RunSequential(m, seed, batches, lr), nil
		},
	}}
	pure := func(name string, run func(*nn.Model, int64, []Batch, float64, int) (*Result, error), ps ...int) {
		for _, p := range ps {
			p := p
			specs = append(specs, BenchSpec{
				Name: name, P: p,
				Run: func(m *nn.Model, seed int64, batches []Batch, lr float64) (*Result, error) {
					return run(m, seed, batches, lr, p)
				},
			})
		}
	}
	hybrid := func(name string, run func(*nn.Model, int64, []Batch, float64, int, int) (*Result, error), grids ...[2]int) {
		for _, g := range grids {
			g := g
			specs = append(specs, BenchSpec{
				Name: name, P: g[0] * g[1], P1: g[0], P2: g[1],
				Run: func(m *nn.Model, seed int64, batches []Batch, lr float64) (*Result, error) {
					return run(m, seed, batches, lr, g[0], g[1])
				},
			})
		}
	}
	pure("data", RunData, 2, 4, 8)
	pure("spatial", RunSpatial, 2, 4)
	pure("filter", RunFilter, 2, 4, 8)
	pure("channel", RunChannel, 2, 3)
	pure("pipeline", RunPipeline, 2, 4)
	hybrid("data+filter", RunDataFilter, [2]int{2, 2}, [2]int{4, 2})
	hybrid("data+spatial", RunDataSpatial, [2]int{2, 2}, [2]int{4, 2})
	return specs
}
