package dist

import (
	"paradl/internal/core"
	"paradl/internal/nn"
)

// The canonical benchmark workload, shared by the in-repo benchmarks
// (bench_test.go) and the machine-readable perf snapshot
// (cmd/paraexp -exp benchdist) so that committed BENCH_dist.json
// snapshots stay comparable with `go test ./internal/dist -bench .`
// across PRs: both sides consume BenchMatrix and these constants, and
// widening the matrix widens both at once.
const (
	// BenchBatchSize is the global batch per iteration; 8 admits every
	// width of the matrix (data needs batch ≥ p).
	BenchBatchSize = 8
	// BenchBatches is the number of training iterations per measured op.
	BenchBatches = 2
	// BenchOverlapBucketBytes is the gradient-bucket size every toy-scale
	// overlap A/B surface pins (bench matrix, benchdist columns, the
	// -measured table, paradl -train -overlap). The default 256 KiB
	// bucket targets real-model-scale gradients and never fills on the
	// toy zoo (~84 KB of gradients), so at the default the on/off pair
	// would compare identical executions; 8 KiB forces buckets to fill
	// mid-backward, so the A/B isolates exactly the nonblocking launch.
	BenchOverlapBucketBytes = 8 << 10
)

// BenchSpec is one strategy×width case of the benchmark matrix. P1/P2
// are zero except for grid (hybrid) cases. Every case dispatches
// through the Plan registry (Run), so the benchmarks measure the same
// path every client takes. Extra options (the overlap A/B:
// WithOverlap(false) for the blocking column) are appended after the
// workload's seed and learning rate.
type BenchSpec struct {
	Name string
	// Model overrides the matrix's default workload (internal/model zoo
	// name); "" runs the harness default, tinycnn-nobn. The tinyresnet
	// cases exercise the DAG executor (branch tap + additive merge) so
	// graph-execution overhead stays on the perf trajectory.
	Model  string
	P      int
	P1, P2 int
	Run    func(m *nn.Model, seed int64, batches []Batch, lr float64, opts ...Option) (*Result, error)
}

// BenchMatrix returns the strategy×width matrix the benchmarks sweep:
// every runner at the widths model.TinyCNNNoBN admits, p∈{2,4,8} where
// Table 3 allows (spatial extent caps at 4, channel stays at its
// cheap widths, pipeline at ≤ G stages).
func BenchMatrix() []BenchSpec {
	var specs []BenchSpec
	add := func(name string, p, p1, p2 int, pl Plan) {
		specs = append(specs, BenchSpec{
			Name: name, P: p, P1: p1, P2: p2,
			Run: func(m *nn.Model, seed int64, batches []Batch, lr float64, opts ...Option) (*Result, error) {
				return Run(m, batches, pl, append([]Option{WithSeed(seed), WithLR(lr)}, opts...)...)
			},
		})
	}
	add("sequential", 1, 0, 0, Plan{Strategy: core.Serial})
	pure := func(name string, s core.Strategy, ps ...int) {
		for _, p := range ps {
			add(name, p, 0, 0, widthPlan(s, p))
		}
	}
	hybrid := func(name string, s core.Strategy, grids ...[2]int) {
		for _, g := range grids {
			add(name, g[0]*g[1], g[0], g[1], Plan{Strategy: s, P1: g[0], P2: g[1]})
		}
	}
	pure("data", core.Data, 2, 4, 8)
	pure("spatial", core.Spatial, 2, 4)
	pure("filter", core.Filter, 2, 4, 8)
	pure("channel", core.Channel, 2, 3)
	pure("pipeline", core.Pipeline, 2, 4)
	hybrid("data+filter", core.DataFilter, [2]int{2, 2}, [2]int{4, 2})
	hybrid("data+spatial", core.DataSpatial, [2]int{2, 2}, [2]int{4, 2})
	hybrid("data+pipeline", core.DataPipeline, [2]int{2, 2}, [2]int{4, 2})
	// The residual grid points: the DAG executor (tap + additive merge)
	// under a pure-data plan and under the dp grid, on model.TinyResNet.
	residual := func(p, p1, p2 int, pl Plan) {
		add("tinyresnet", p, p1, p2, pl)
		specs[len(specs)-1].Model = "tinyresnet"
	}
	residual(4, 0, 0, Plan{Strategy: core.Data, P1: 4})
	residual(4, 2, 2, Plan{Strategy: core.DataPipeline, P1: 2, P2: 2})
	return specs
}
