// Tests for the plan-driven API: ParsePlan/String round-trips, registry
// dispatch (every deprecated shim routes through Run), and the
// correctness of the new plan-only capabilities — the data×pipeline
// hybrid, momentum, per-iteration hooks, and the footnote-2
// reduce-scatter backward.
package dist_test

import (
	"fmt"
	"math"
	"testing"

	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

// planWidths returns representative valid plans for one strategy.
func planWidths(s core.Strategy) []dist.Plan {
	switch {
	case s == core.Serial:
		return []dist.Plan{{Strategy: s, P1: 1, P2: 1}}
	case s == core.Data:
		return []dist.Plan{{Strategy: s, P1: 1, P2: 1}, {Strategy: s, P1: 2, P2: 1}, {Strategy: s, P1: 7, P2: 1}}
	case s == core.DataFilter, s == core.DataSpatial, s == core.DataPipeline:
		return []dist.Plan{{Strategy: s, P1: 1, P2: 1}, {Strategy: s, P1: 4, P2: 2}, {Strategy: s, P1: 2, P2: 3}}
	default:
		return []dist.Plan{{Strategy: s, P1: 1, P2: 1}, {Strategy: s, P1: 1, P2: 2}, {Strategy: s, P1: 1, P2: 5}}
	}
}

// TestPlanRoundTripParity: ParsePlan(p.String()) == p for every
// registered strategy at several widths — the property that lets plan
// strings travel through CLIs and configs losslessly.
func TestPlanRoundTripParity(t *testing.T) {
	for _, s := range dist.Strategies() {
		for _, pl := range planWidths(s) {
			str := pl.String()
			got, err := dist.ParsePlan(str)
			if err != nil {
				t.Fatalf("ParsePlan(%q): %v", str, err)
			}
			if got != pl {
				t.Fatalf("round trip %q: got %+v, want %+v", str, got, pl)
			}
			if got.String() != str {
				t.Fatalf("re-render %q: got %q", str, got.String())
			}
		}
	}
	// Long spellings parse to the same plans as the short ones.
	long, err := dist.ParsePlan("data+filter:4x2")
	if err != nil || long != (dist.Plan{Strategy: core.DataFilter, P1: 4, P2: 2}) {
		t.Fatalf("long spelling: %+v, %v", long, err)
	}
}

// TestStrategiesMatchRegistry: the curated Strategies() order and the
// registry key set never drift apart — a strategy added to one must be
// added to the other, or the round-trip property test above would
// silently skip it.
func TestStrategiesMatchRegistry(t *testing.T) {
	listed := dist.Strategies()
	keys := dist.RegistryStrategiesForTest()
	if len(listed) != len(keys) {
		t.Fatalf("Strategies() lists %d strategies, registry has %d", len(listed), len(keys))
	}
	seen := map[core.Strategy]bool{}
	for _, s := range listed {
		if seen[s] {
			t.Fatalf("Strategies() lists %v twice", s)
		}
		seen[s] = true
	}
	for _, s := range keys {
		if !seen[s] {
			t.Fatalf("registry strategy %v missing from Strategies()", s)
		}
	}
}

func TestParsePlanRejectsInvalid(t *testing.T) {
	for _, s := range []string{
		"",            // no strategy
		"quantum:2",   // unknown strategy
		"df:3x0",      // zero grid axis
		"df:0x3",      // zero grid axis
		"dp:2x-1",     // negative axis
		"df:4",        // hybrid without explicit grid
		"data:2x2",    // pure strategy with a grid
		"serial:2",    // serial wider than 1
		"data:0",      // zero width
		"data:x",      // not a number
		"data:2.5",    // not an integer
		"ds:2x2x2",    // malformed grid
		"pipeline:],", // garbage width
	} {
		if pl, err := dist.ParsePlan(s); err == nil {
			t.Fatalf("ParsePlan(%q) = %+v, want error", s, pl)
		}
	}
	// Hand-built invalid plans fail Validate and Run.
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	for _, pl := range []dist.Plan{
		{Strategy: core.Strategy(99), P1: 1, P2: 1}, // unregistered
		{Strategy: core.Data, P1: 0, P2: 1},         // explicit zero width
		{Strategy: core.Data, P1: 2, P2: 3},         // data width on the wrong axis
		{Strategy: core.Filter, P1: 2, P2: 2},       // filter needs P1=1
		{Strategy: core.DataFilter, P1: -2, P2: 2},  // negative axis
	} {
		if err := pl.Validate(); err == nil {
			t.Fatalf("Validate(%+v) must fail", pl)
		}
		if _, err := dist.Run(m, batches, pl); err == nil {
			t.Fatalf("Run(%+v) must fail", pl)
		}
	}
}

// TestShimRegistryDelegation: every deprecated Run* shim must reach its
// strategy's registry entry — swapping the entry for a stub must be
// observable through the shim (the "single dispatch path" criterion).
func TestShimRegistryDelegation(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 4)
	type shim struct {
		s    core.Strategy
		call func() (*dist.Result, error)
	}
	shims := []shim{
		{core.Serial, func() (*dist.Result, error) { return dist.RunSequential(m, seed, batches, lr), nil }},
		{core.Data, func() (*dist.Result, error) { return dist.RunData(m, seed, batches, lr, 2) }},
		{core.Spatial, func() (*dist.Result, error) { return dist.RunSpatial(m, seed, batches, lr, 2) }},
		{core.Filter, func() (*dist.Result, error) { return dist.RunFilter(m, seed, batches, lr, 2) }},
		{core.Channel, func() (*dist.Result, error) { return dist.RunChannel(m, seed, batches, lr, 2) }},
		{core.Pipeline, func() (*dist.Result, error) { return dist.RunPipeline(m, seed, batches, lr, 2) }},
		{core.DataFilter, func() (*dist.Result, error) { return dist.RunDataFilter(m, seed, batches, lr, 2, 2) }},
		{core.DataSpatial, func() (*dist.Result, error) { return dist.RunDataSpatial(m, seed, batches, lr, 2, 2) }},
		{core.DataPipeline, func() (*dist.Result, error) { return dist.RunDataPipeline(m, seed, batches, lr, 2, 2) }},
	}
	for _, sh := range shims {
		sentinel := fmt.Sprintf("stub:%v", sh.s)
		restore := dist.SetRunnerForTest(sh.s, func(_ *nn.Model, _ []dist.Batch, pl dist.Plan) (*dist.Result, error) {
			return &dist.Result{Strategy: sentinel, P: pl.P()}, nil
		})
		got, err := sh.call()
		restore()
		if err != nil {
			t.Fatalf("%v shim: %v", sh.s, err)
		}
		if got.Strategy != sentinel {
			t.Fatalf("%v shim bypassed the registry: got %q, want %q", sh.s, got.Strategy, sentinel)
		}
	}
}

// TestShimsMatchPlanRunBitForBit: each deprecated shim and the
// equivalent Run(plan) call are the same computation — identical loss
// bits, not merely within tolerance.
func TestShimsMatchPlanRunBitForBit(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	opts := []dist.Option{dist.WithSeed(seed), dist.WithLR(lr)}
	type pair struct {
		name string
		plan dist.Plan
		shim func() (*dist.Result, error)
	}
	for _, pr := range []pair{
		{"sequential", dist.Plan{Strategy: core.Serial}, func() (*dist.Result, error) { return dist.RunSequential(m, seed, batches, lr), nil }},
		{"data", dist.Plan{Strategy: core.Data, P1: 3}, func() (*dist.Result, error) { return dist.RunData(m, seed, batches, lr, 3) }},
		{"spatial", dist.Plan{Strategy: core.Spatial, P2: 2}, func() (*dist.Result, error) { return dist.RunSpatial(m, seed, batches, lr, 2) }},
		{"filter", dist.Plan{Strategy: core.Filter, P2: 3}, func() (*dist.Result, error) { return dist.RunFilter(m, seed, batches, lr, 3) }},
		{"channel", dist.Plan{Strategy: core.Channel, P2: 2}, func() (*dist.Result, error) { return dist.RunChannel(m, seed, batches, lr, 2) }},
		{"pipeline", dist.Plan{Strategy: core.Pipeline, P2: 3}, func() (*dist.Result, error) { return dist.RunPipeline(m, seed, batches, lr, 3) }},
		{"df", dist.Plan{Strategy: core.DataFilter, P1: 2, P2: 2}, func() (*dist.Result, error) { return dist.RunDataFilter(m, seed, batches, lr, 2, 2) }},
		{"ds", dist.Plan{Strategy: core.DataSpatial, P1: 2, P2: 2}, func() (*dist.Result, error) { return dist.RunDataSpatial(m, seed, batches, lr, 2, 2) }},
		{"dp", dist.Plan{Strategy: core.DataPipeline, P1: 2, P2: 2}, func() (*dist.Result, error) { return dist.RunDataPipeline(m, seed, batches, lr, 2, 2) }},
	} {
		want, err := dist.Run(m, batches, pr.plan, opts...)
		if err != nil {
			t.Fatalf("%s: Run: %v", pr.name, err)
		}
		got, err := pr.shim()
		if err != nil {
			t.Fatalf("%s: shim: %v", pr.name, err)
		}
		if len(got.Losses) != len(want.Losses) {
			t.Fatalf("%s: %d losses vs %d", pr.name, len(got.Losses), len(want.Losses))
		}
		for i := range want.Losses {
			if got.Losses[i] != want.Losses[i] {
				t.Fatalf("%s iter %d: shim %.17g != Run %.17g", pr.name, i, got.Losses[i], want.Losses[i])
			}
		}
	}
}

// TestDataPipelineParity is the dp acceptance criterion: GPipe stage
// groups under segmented gradient exchange reproduce sequential SGD at
// ≤1e-6 on the tiny zoo for p1×p2 ∈ {2×2, 2×3}.
func TestDataPipelineParity(t *testing.T) {
	for _, m := range []*nn.Model{model.TinyCNNNoBN(), model.Tiny3D()} {
		batches := toyBatches(t, m, 4, 4)
		seq := dist.RunSequential(m, seed, batches, lr)
		for _, grid := range [][2]int{{2, 2}, {2, 3}} {
			pl := dist.Plan{Strategy: core.DataPipeline, P1: grid[0], P2: grid[1]}
			got, err := dist.Run(m, batches, pl, dist.WithSeed(seed), dist.WithLR(lr))
			assertParity(t, seq, got, err)
			if got.P1 != grid[0] || got.P2 != grid[1] || got.P != grid[0]*grid[1] {
				t.Fatalf("%s %v: grid %d=%d×%d", m.Name, pl, got.P, got.P1, got.P2)
			}
		}
	}
}

// TestDataPipelineUnevenParity: remainder-bearing microbatches and
// group shards on the dp grid (batch 5 over 2 groups → shards 3,2;
// shard 3 over 3 stages → microbatches 1,1,1).
func TestDataPipelineUnevenParity(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 5)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.Run(m, batches, dist.Plan{Strategy: core.DataPipeline, P1: 2, P2: 3},
		dist.WithSeed(seed), dist.WithLR(lr))
	assertParity(t, seq, got, err)
}

// TestDataPipelineDegenerateEdge: pure pipeline is the p1=1 edge of the
// dp grid, bit-for-bit.
func TestDataPipelineDegenerateEdge(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	pure, err := dist.RunPipeline(m, seed, batches, lr, 3)
	if err != nil {
		t.Fatal(err)
	}
	edge, err := dist.Run(m, batches, dist.Plan{Strategy: core.DataPipeline, P1: 1, P2: 3},
		dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pure.Losses {
		if pure.Losses[i] != edge.Losses[i] {
			t.Fatalf("iter %d: pipeline %.17g != dp(1,3) %.17g", i, pure.Losses[i], edge.Losses[i])
		}
	}
}

func TestDataPipelineLimits(t *testing.T) {
	m := model.Tiny3D() // G = 7
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.Run(m, batches, dist.Plan{Strategy: core.DataPipeline, P1: 1, P2: 8}); err == nil {
		t.Fatal("dp: 8 stages for 7 layers must fail")
	}
	if _, err := dist.Run(m, batches, dist.Plan{Strategy: core.DataPipeline, P1: 3, P2: 2}); err == nil {
		t.Fatal("dp: batch 2 over 3 groups must fail")
	}
}

// TestFootnote2ReduceScatterParity: the filter-parallel backward's
// default reduce-scatter input-gradient exchange (footnote 2) matches
// both the sequential baseline and the full Allreduce path.
func TestFootnote2ReduceScatterParity(t *testing.T) {
	// tinycnn has conv→relu→conv and fc→relu→fc runs, so the
	// reduce-scatter precondition must hold somewhere.
	m := model.TinyCNN()
	if rs := dist.ScatterableForTest(m, 2); !anyTrue(rs) {
		t.Fatalf("footnote-2 path never eligible on %s: %v", m.Name, rs)
	}
	for _, tc := range []struct {
		name string
		pl   dist.Plan
	}{
		{"filter:2", dist.Plan{Strategy: core.Filter, P2: 2}},
		{"filter:3", dist.Plan{Strategy: core.Filter, P2: 3}},
		{"df:2x2", dist.Plan{Strategy: core.DataFilter, P1: 2, P2: 2}},
	} {
		batches := toyBatches(t, m, 3, 4)
		seq := dist.RunSequential(m, seed, batches, lr)
		rs, err := dist.Run(m, batches, tc.pl, dist.WithSeed(seed), dist.WithLR(lr))
		assertParity(t, seq, rs, err)
		ar, err := dist.Run(m, batches, tc.pl, dist.WithSeed(seed), dist.WithLR(lr),
			dist.WithInputGradAllReduce())
		assertParity(t, seq, ar, err)
		for i := range rs.Losses {
			if d := math.Abs(rs.Losses[i] - ar.Losses[i]); d > tol {
				t.Fatalf("%s iter %d: reduce-scatter %.12f vs allreduce %.12f (Δ %.3e)",
					tc.name, i, rs.Losses[i], ar.Losses[i], d)
			}
		}
	}
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

// TestMomentumParity: heavy-ball SGD stays in value parity with the
// momentum sequential baseline under every strategy — each PE's
// velocity shard is the matching slice of the global velocity.
func TestMomentumParity(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 4)
	opts := []dist.Option{dist.WithSeed(seed), dist.WithLR(lr), dist.WithMomentum(0.9)}
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	plain := dist.RunSequential(m, seed, batches, lr)
	same := true
	for i := range seq.Losses {
		if seq.Losses[i] != plain.Losses[i] {
			same = false
		}
	}
	if same {
		t.Fatal("momentum run identical to plain SGD: WithMomentum had no effect")
	}
	for _, pl := range []dist.Plan{
		{Strategy: core.Data, P1: 2},
		{Strategy: core.Spatial, P2: 2},
		{Strategy: core.Filter, P2: 2},
		{Strategy: core.Channel, P2: 2},
		{Strategy: core.Pipeline, P2: 2},
		{Strategy: core.DataFilter, P1: 2, P2: 2},
		{Strategy: core.DataSpatial, P1: 2, P2: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 2},
	} {
		got, err := dist.Run(m, batches, pl, opts...)
		assertParity(t, seq, got, err)
	}
}

// TestIterHook: the per-iteration callback reports exactly the loss
// series the Result records, in order.
func TestIterHook(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	for _, pl := range []dist.Plan{
		{Strategy: core.Serial},
		{Strategy: core.Data, P1: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 2},
	} {
		var iters []int
		var losses []float64
		res, err := dist.Run(m, batches, pl, dist.WithSeed(seed), dist.WithLR(lr),
			dist.WithIterHook(func(i int, loss float64) {
				iters = append(iters, i)
				losses = append(losses, loss)
			}))
		if err != nil {
			t.Fatalf("%v: %v", pl, err)
		}
		if len(losses) != len(res.Losses) {
			t.Fatalf("%v: hook fired %d times for %d iterations", pl, len(losses), len(res.Losses))
		}
		for i := range res.Losses {
			if iters[i] != i || losses[i] != res.Losses[i] {
				t.Fatalf("%v iter %d: hook (%d, %.17g) vs result %.17g", pl, i, iters[i], losses[i], res.Losses[i])
			}
		}
	}
}

// TestRunDefaults: Run works with no options (documented defaults) and
// fills the degenerate axis of hand-built pure plans.
func TestRunDefaults(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 2, 4)
	res, err := dist.Run(m, batches, dist.Plan{Strategy: core.Data, P1: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 2 || res.P1 != 2 || res.P2 != 1 {
		t.Fatalf("grid %d=%d×%d, want 2=2×1", res.P, res.P1, res.P2)
	}
}

// SweepPlans invariants: every plan is valid, totals p, pure strategies
// appear exactly once, and hybrids cover every interior factorization
// of p (both orientations, e.g. 2x4 AND 4x2 at p=8).
func TestSweepPlansEnumeration(t *testing.T) {
	if got := dist.SweepPlans(1); len(got) != 1 || got[0].Strategy != core.Serial {
		t.Fatalf("dist.SweepPlans(1) = %v, want serial only", got)
	}
	for _, p := range []int{2, 3, 4, 6, 8, 12} {
		plans := dist.SweepPlans(p)
		seen := map[string]bool{}
		hybrids := 0
		for _, pl := range plans {
			if err := pl.Validate(); err != nil {
				t.Fatalf("p=%d: invalid sweep plan %v: %v", p, pl, err)
			}
			if pl.P() != p {
				t.Errorf("p=%d: plan %s totals %d", p, pl, pl.P())
			}
			if seen[pl.String()] {
				t.Errorf("p=%d: duplicate plan %s", p, pl)
			}
			seen[pl.String()] = true
			switch pl.Strategy {
			case core.DataFilter, core.DataSpatial, core.DataPipeline:
				hybrids++
				if pl.P1 < 2 || pl.P2 < 2 {
					t.Errorf("p=%d: non-interior hybrid %s in sweep", p, pl)
				}
			}
		}
		pure := []dist.Plan{
			{Strategy: core.Data, P1: p}, {Strategy: core.Spatial, P2: p},
			{Strategy: core.Filter, P2: p}, {Strategy: core.Channel, P2: p},
			{Strategy: core.Pipeline, P2: p},
		}
		for _, pp := range pure {
			if !seen[pp.String()] {
				t.Errorf("p=%d: pure plan %s missing", p, pp)
			}
		}
		// Interior divisor count d ⇒ 3·d hybrid plans.
		divisors := 0
		for d := 2; d <= p/2; d++ {
			if p%d == 0 {
				divisors++
			}
		}
		if hybrids != 3*divisors {
			t.Errorf("p=%d: %d hybrid plans, want %d", p, hybrids, 3*divisors)
		}
	}
}
