package dist_test

import (
	"testing"

	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

// Benchmarks compare the real per-iteration cost of every runner on the
// same model and batches, making strategy-vs-strategy runtime overhead
// (collectives, halo traffic, grid choreography) measurable:
//
//	go test ./internal/dist -bench . -benchtime 10x

func benchBatches(b *testing.B, m *nn.Model, size int) []dist.Batch {
	b.Helper()
	return data.Toy(m, int64(2*size)).Batches(2, size)
}

func BenchmarkRunSequential(b *testing.B) {
	m := model.TinyCNNNoBN()
	batches := benchBatches(b, m, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.RunSequential(m, seed, batches, lr)
	}
}

func benchStrategy(b *testing.B, run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error), p int) {
	m := model.TinyCNNNoBN()
	batches := benchBatches(b, m, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(m, seed, batches, lr, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunData(b *testing.B)     { benchStrategy(b, dist.RunData, 2) }
func BenchmarkRunSpatial(b *testing.B)  { benchStrategy(b, dist.RunSpatial, 2) }
func BenchmarkRunFilter(b *testing.B)   { benchStrategy(b, dist.RunFilter, 2) }
func BenchmarkRunChannel(b *testing.B)  { benchStrategy(b, dist.RunChannel, 2) }
func BenchmarkRunPipeline(b *testing.B) { benchStrategy(b, dist.RunPipeline, 2) }

func benchHybrid(b *testing.B, run func(*nn.Model, int64, []dist.Batch, float64, int, int) (*dist.Result, error)) {
	m := model.TinyCNNNoBN()
	batches := benchBatches(b, m, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := run(m, seed, batches, lr, 2, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunDataFilter(b *testing.B)  { benchHybrid(b, dist.RunDataFilter) }
func BenchmarkRunDataSpatial(b *testing.B) { benchHybrid(b, dist.RunDataSpatial) }
