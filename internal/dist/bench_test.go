package dist_test

import (
	"fmt"
	"testing"

	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

// Benchmarks compare the real per-iteration cost of every runner on the
// same model and batches, making strategy-vs-strategy runtime overhead
// (collectives, halo traffic, grid choreography) measurable:
//
//	go test ./internal/dist -bench . -benchtime 10x
//
// The strategy×width matrix comes from dist.BenchMatrix — shared with
// `paraexp -exp benchdist`, whose committed BENCH_dist.json snapshots
// must stay comparable with these benchmarks. Widths sweep p∈{2,4,8}
// where the Table 3 limits allow, so collective scaling (hub O(p) vs
// ring O(1) per-PE traffic) is visible, not just the p=2 constant
// factor.

func benchBatches(b *testing.B, m *nn.Model) []dist.Batch {
	b.Helper()
	return data.Toy(m, int64(dist.BenchBatches*dist.BenchBatchSize)).Batches(dist.BenchBatches, dist.BenchBatchSize)
}

// benchMatrix runs every matrix case of one strategy as a sub-benchmark
// pair at the BenchOverlapBucketBytes bucket size — overlap=true
// launches nonblocking exchanges mid-backward, overlap=false runs the
// identical buckets synchronously — so the cost (or win, with parallel
// hardware) of the async launches is visible per strategy×width.
// BENCH_dist.json's primary ns_per_op additionally tracks the default
// configuration.
func benchMatrix(b *testing.B, name string) {
	ran := false
	for _, spec := range dist.BenchMatrix() {
		if spec.Name != name {
			continue
		}
		ran = true
		m := model.TinyCNNNoBN()
		if spec.Model != "" {
			var err error
			if m, err = model.ByName(spec.Model); err != nil {
				b.Fatal(err)
			}
		}
		batches := benchBatches(b, m)
		label := fmt.Sprintf("p=%d", spec.P)
		if spec.P1 > 0 {
			label = fmt.Sprintf("p=%dx%d", spec.P1, spec.P2)
		}
		for _, overlap := range []bool{true, false} {
			spec, overlap := spec, overlap
			b.Run(fmt.Sprintf("%s/overlap=%v", label, overlap), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := spec.Run(m, seed, batches, lr, dist.WithOverlap(overlap),
						dist.WithBucketBytes(dist.BenchOverlapBucketBytes)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	if !ran {
		b.Fatalf("no %q cases in dist.BenchMatrix", name)
	}
}

func BenchmarkRunSequential(b *testing.B) {
	m := model.TinyCNNNoBN()
	batches := benchBatches(b, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist.RunSequential(m, seed, batches, lr)
	}
}

func BenchmarkRunData(b *testing.B)        { benchMatrix(b, "data") }
func BenchmarkRunSpatial(b *testing.B)     { benchMatrix(b, "spatial") }
func BenchmarkRunFilter(b *testing.B)      { benchMatrix(b, "filter") }
func BenchmarkRunChannel(b *testing.B)     { benchMatrix(b, "channel") }
func BenchmarkRunPipeline(b *testing.B)    { benchMatrix(b, "pipeline") }
func BenchmarkRunDataFilter(b *testing.B)  { benchMatrix(b, "data+filter") }
func BenchmarkRunDataSpatial(b *testing.B) { benchMatrix(b, "data+spatial") }

func BenchmarkRunDataPipeline(b *testing.B) { benchMatrix(b, "data+pipeline") }

// BenchmarkRunTinyResNet tracks the DAG executor's overhead: the
// residual model under a pure-data plan and the dp grid.
func BenchmarkRunTinyResNet(b *testing.B) { benchMatrix(b, "tinyresnet") }
