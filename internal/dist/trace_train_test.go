// Trace suite (training level): every engine of the eight-plan matrix
// must emit a well-formed phase timeline when a recorder is attached —
// concurrent per-PE emission stays race-clean (this file runs under CI's
// race detector), the spans tile each PE's timeline (coverage ≥ 0.95),
// the strategy-specific phases actually appear, and attaching the
// recorder must not change a single loss bit: observation is not
// intervention.
package dist_test

import (
	"testing"

	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/trace"
)

// traceOpts is the traced-run option set: overlap on with the toy A/B
// bucket size, so the async collective path (CollectiveLaunch spans +
// in-flight windows) is exercised wherever the plan has a gradient
// exchange.
func traceOpts(extra ...dist.Option) []dist.Option {
	return append([]dist.Option{dist.WithSeed(seed), dist.WithLR(lr),
		dist.WithOverlap(true), dist.WithBucketBytes(dist.BenchOverlapBucketBytes)}, extra...)
}

// TestTraceEveryPlan: the full eight-plan matrix on tinycnn-nobn, each
// run traced. Gates per plan: bit-identical losses vs the untraced run,
// per-PE span coverage, exact PE-track count, every iteration labelled,
// no ring drops, and the phases that define the strategy present with
// nonzero time.
func TestTraceEveryPlan(t *testing.T) {
	cases := []struct {
		plan   dist.Plan
		phases []trace.Phase // must appear with nonzero time
	}{
		{dist.Plan{Strategy: core.Data, P1: 4}, []trace.Phase{trace.CollectiveLaunch, trace.CollectiveWait}},
		{dist.Plan{Strategy: core.Spatial, P2: 4}, []trace.Phase{trace.Halo}},
		{dist.Plan{Strategy: core.Filter, P2: 4}, []trace.Phase{trace.CollectiveWait}},
		{dist.Plan{Strategy: core.Channel, P2: 4}, []trace.Phase{trace.CollectiveWait}},
		{dist.Plan{Strategy: core.Pipeline, P2: 4}, []trace.Phase{trace.PipelineTransfer}},
		{dist.Plan{Strategy: core.DataFilter, P1: 2, P2: 2}, []trace.Phase{trace.CollectiveLaunch, trace.CollectiveWait}},
		{dist.Plan{Strategy: core.DataSpatial, P1: 2, P2: 2}, []trace.Phase{trace.Halo, trace.CollectiveLaunch}},
		{dist.Plan{Strategy: core.DataPipeline, P1: 2, P2: 2}, []trace.Phase{trace.PipelineTransfer, trace.CollectiveLaunch}},
	}
	m := model.TinyCNNNoBN()
	const iters = 3
	batches := toyBatches(t, m, iters, 8)
	for _, tc := range cases {
		t.Run(tc.plan.String(), func(t *testing.T) {
			rec := trace.NewRecorder()
			traced, err := dist.Run(m, batches, tc.plan, traceOpts(dist.WithTrace(rec))...)
			if err != nil {
				t.Fatalf("traced run: %v", err)
			}
			plain, err := dist.Run(m, batches, tc.plan, traceOpts()...)
			if err != nil {
				t.Fatalf("untraced run: %v", err)
			}
			assertBitIdentical(t, tc.plan.String(), traced, plain)

			sum := rec.Summarize()
			if sum.PEs != tc.plan.P() {
				t.Fatalf("summary has %d PE tracks, want %d", sum.PEs, tc.plan.P())
			}
			if sum.Iters != iters {
				t.Fatalf("summary attributes %d iterations, want %d", sum.Iters, iters)
			}
			if sum.Dropped != 0 {
				t.Fatalf("ring dropped %d events on a toy run", sum.Dropped)
			}
			if sum.Coverage < 0.95 {
				t.Fatalf("span coverage %.3f < 0.95: the spans do not tile the PE timelines", sum.Coverage)
			}
			// Every plan computes; the strategy-specific phases define it.
			want := append([]trace.Phase{trace.ComputeForward, trace.ComputeBackward}, tc.phases...)
			for _, ph := range want {
				if sum.PhaseNS[ph.String()] <= 0 {
					t.Fatalf("phase %q absent from %s trace: %v", ph, tc.plan, sum.PhaseNS)
				}
			}
		})
	}
}

// TestTraceHiddenComm: with overlap on, the data engine's exchange must
// leave async in-flight windows in the trace — the overlap-hidden
// communication the summary reports next to the exposed phases.
func TestTraceHiddenComm(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 3, 8)
	rec := trace.NewRecorder()
	if _, err := dist.Run(m, batches, dist.Plan{Strategy: core.Data, P1: 4}, traceOpts(dist.WithTrace(rec))...); err != nil {
		t.Fatal(err)
	}
	if sum := rec.Summarize(); sum.AsyncNS <= 0 {
		t.Fatalf("overlap-on data run recorded no async in-flight time: %+v", sum)
	}
}

// TestTraceBNSync: on a batch-norm model, the engines that shard the
// batch or spatial extent synchronize BN statistics across PEs, and
// those collectives must be attributed to the bn-sync phase, not
// folded into generic collective time. (Filter/channel parallel keep
// the full activation per PE, so their BN stays replicated — no sync.)
func TestTraceBNSync(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 2, 8)
	for _, pl := range []dist.Plan{
		{Strategy: core.Data, P1: 2},
		{Strategy: core.Spatial, P2: 2},
	} {
		rec := trace.NewRecorder()
		if _, err := dist.Run(m, batches, pl, traceOpts(dist.WithTrace(rec))...); err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		if sum := rec.Summarize(); sum.PhaseNS[trace.BNSync.String()] <= 0 {
			t.Fatalf("%s on a BN model recorded no bn-sync time: %v", pl, sum.PhaseNS)
		}
	}
}

// TestTraceSerialBaseline: the sequential engine traces too (one PE
// track, forward/backward spans), so -train serial -trace works.
func TestTraceSerialBaseline(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 2, 8)
	rec := trace.NewRecorder()
	if _, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, traceOpts(dist.WithTrace(rec))...); err != nil {
		t.Fatal(err)
	}
	sum := rec.Summarize()
	if sum.PEs != 1 {
		t.Fatalf("serial run has %d PE tracks, want 1", sum.PEs)
	}
	for _, ph := range []trace.Phase{trace.ComputeForward, trace.ComputeBackward} {
		if sum.PhaseNS[ph.String()] <= 0 {
			t.Fatalf("phase %q absent from serial trace: %v", ph, sum.PhaseNS)
		}
	}
}
