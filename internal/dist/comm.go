package dist

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"paradl/internal/collective"
	"paradl/internal/tensor"
)

// errAborted is panicked by blocked communication calls when another PE
// of the same world has already failed, so a single error tears the
// whole world down instead of deadlocking it.
var errAborted = errors.New("dist: world aborted by peer failure")

// AllReduceSum picks among three algorithms by buffer size, the same
// three-regime policy the analytic side prices with Hockney α–β terms
// in internal/collective:
//
//   - below twoTreeMinElems: binomial tree — ⌈log₂p⌉ whole-buffer hops,
//     best for latency-bound tiny tensors (BN statistics, biases);
//   - [twoTreeMinElems, ringMinElems): pipelined double binary tree —
//     two halves streaming concurrently in TwoTreeChunks chunks, low
//     latency AND full bandwidth for the small-but-not-tiny regime;
//   - at and above ringMinElems: ring reduce-scatter + allgather —
//     2(p−1) rounds of m/p chunks, bandwidth-optimal for gradient-sized
//     buffers.
const (
	twoTreeMinElems = 64
	ringMinElems    = 256
)

// message is one mailbox payload: a tensor, or (t == nil) a bare
// scalar, so scalar reductions never allocate a 1-element tensor.
type message struct {
	t *tensor.Tensor
	v float64
}

// World wires p in-process PEs together with buffered point-to-point
// channels — one mailbox per (sender, receiver) pair, created lazily on
// first use. Ring and tree collectives touch only O(p) of the p² pairs,
// so lazy creation keeps world setup O(p) instead of letting the
// mailbox matrix dominate at larger p. Every collective of the runtime
// (allreduce, allgather, halo exchange, pipeline stage transfer) is
// built from these two-sided messages, mirroring the message-passing
// structure of the MPI/NCCL execution the paper validates against
// (§5.1).
//
// Besides the base mailboxes there is a second, stream-tagged plane
// (tagged): every in-flight nonblocking collective and every concurrent
// half of the two-tree gets its own (src, dst, stream) channels, so
// overlapped traffic can never interleave with — or be mismatched
// against — the program-ordered blocking traffic on the base plane.
type World struct {
	p     int
	depth int
	mail  []atomic.Pointer[chan message] // p×p base cells, row-major [src][dst]
	mu    sync.Mutex                     // serializes base mailbox creation
	// tagged holds the stream-tagged mailboxes (mailKey → chan message)
	// of nonblocking operations; sync.Map keeps steady-state loads
	// lock-free while concurrent first-use creation stays race-safe.
	tagged sync.Map
	// pending[r] counts world rank r's launched-but-unwaited nonblocking
	// handles; runWorld fails the world if a PE finishes with a nonzero
	// count (a dropped Handle means results were never synchronized).
	pending []atomic.Int64
	once    sync.Once
	// abort is closed on the first failure; err records its cause.
	abort chan struct{}
	err   error
}

// mailKey addresses one stream-tagged mailbox.
type mailKey struct {
	src, dst int
	stream   string
}

// NewWorld creates a world of p PEs.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d < 1", p))
	}
	depth := 4 * p
	if depth < 64 {
		depth = 64
	}
	return &World{
		p:       p,
		depth:   depth,
		mail:    make([]atomic.Pointer[chan message], p*p),
		pending: make([]atomic.Int64, p),
		abort:   make(chan struct{}),
	}
}

// mailbox returns the src→dst channel of the given stream, creating it
// on first use. The base stream ("") lives in the p×p array with a
// double-checked atomic fast path; tagged streams live in the sync.Map.
func (w *World) mailbox(src, dst int, stream string) chan message {
	if stream == "" {
		cell := &w.mail[src*w.p+dst]
		if ch := cell.Load(); ch != nil {
			return *ch
		}
		w.mu.Lock()
		defer w.mu.Unlock()
		if ch := cell.Load(); ch != nil {
			return *ch
		}
		ch := make(chan message, w.depth)
		cell.Store(&ch)
		return ch
	}
	key := mailKey{src: src, dst: dst, stream: stream}
	if ch, ok := w.tagged.Load(key); ok {
		return ch.(chan message)
	}
	ch, _ := w.tagged.LoadOrStore(key, make(chan message, w.depth))
	return ch.(chan message)
}

// fail records the first error and wakes every blocked PE.
func (w *World) fail(err error) {
	w.once.Do(func() {
		w.err = err
		close(w.abort)
	})
}

// Comm is one PE's handle onto a communicator: the whole world, or a
// sub-communicator over a subset of its ranks (Sub). Rank and Size are
// always relative to the communicator; members maps communicator ranks
// to world ranks (nil for the world itself).
//
// key is the communicator's deterministic identity — derived from its
// world-rank membership alone, so every member computes the same key
// without negotiation — and namespaces the mailbox streams of
// nonblocking collectives. nseq counts the distinct stream ids minted
// on this handle, and free recycles them: a Waited operation returns
// its stream id for the next launch, so the tagged mailbox plane stays
// bounded by the maximum number of operations in flight at once rather
// than growing with every launch. Under the runtime's SPMD discipline
// every member launches AND waits its nonblocking operations in the
// same program order, so the id sequence — and with it the (key, id)
// stream of one logical collective — agrees on all of its PEs, and
// channel FIFO order keeps a recycled stream's old traffic strictly
// ahead of its new traffic on every mailbox. Corollary: two DISTINCT
// Comm handles with the same membership (e.g. two separate Sub calls
// over the same ranks) must not have nonblocking operations in flight
// concurrently.
type Comm struct {
	w       *World
	rank    int
	members []int
	key     string
	stream  string   // mailbox stream this handle's traffic uses ("" = base)
	nseq    int      // distinct nonblocking stream ids minted on this handle
	free    []string // Waited stream ids available for reuse (LIFO)
}

// Comm returns the world communicator handle of the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.p {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, w.p))
	}
	return &Comm{w: w, rank: rank, key: "w"}
}

// withStream returns a view of the communicator whose traffic flows on
// the given mailbox stream — the isolation mechanism of nonblocking
// collectives and of the two-tree's concurrently streaming halves.
func (c *Comm) withStream(stream string) *Comm {
	return &Comm{w: c.w, rank: c.rank, members: c.members, key: c.key, stream: stream}
}

// worldRank translates a communicator rank to its world rank.
func (c *Comm) worldRank(r int) int {
	if c.members == nil {
		return r
	}
	return c.members[r]
}

// Sub returns a sub-communicator over the given ranks OF THIS
// communicator, in the given order: new rank i speaks as members[i].
// The caller must appear in members. Collectives on the result involve
// only its members, so disjoint groups — e.g. the model-parallel groups
// and segmented cross-groups of the §3.6 hybrids — proceed
// independently over the same world. Message matching between
// overlapping communicators relies on the SPMD discipline the runtime
// already assumes: every PE issues its communication calls in the same
// program order.
func (c *Comm) Sub(members []int) *Comm {
	if len(members) == 0 {
		panic("dist: empty sub-communicator")
	}
	world := make([]int, len(members))
	seen := make(map[int]bool, len(members))
	me := -1
	for i, r := range members {
		if r < 0 || r >= c.Size() {
			panic(fmt.Sprintf("dist: sub-communicator member %d out of range [0,%d)", r, c.Size()))
		}
		if seen[r] {
			panic(fmt.Sprintf("dist: duplicate sub-communicator member %d", r))
		}
		seen[r] = true
		world[i] = c.worldRank(r)
		if r == c.rank {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("dist: rank %d is not a member of the sub-communicator %v", c.rank, members))
	}
	var key strings.Builder
	key.WriteString("s")
	for _, r := range world {
		key.WriteByte(':')
		key.WriteString(strconv.Itoa(r))
	}
	return &Comm{w: c.w, rank: me, members: world, key: key.String()}
}

// Rank returns this PE's id in [0, Size) within the communicator.
func (c *Comm) Rank() int { return c.rank }

// WorldRank returns this PE's rank in the world communicator —
// invariant under Sub, so a sub-communicator still identifies the PE
// globally (the trace recorder keys its tracks by world rank).
func (c *Comm) WorldRank() int { return c.worldRank(c.rank) }

// Size returns the communicator size.
func (c *Comm) Size() int {
	if c.members == nil {
		return c.w.p
	}
	return len(c.members)
}

// send enqueues a message (or aborts with the world).
func (c *Comm) send(dst int, m message) {
	select {
	case c.w.mailbox(c.worldRank(c.rank), c.worldRank(dst), c.stream) <- m:
	case <-c.w.abort:
		panic(errAborted)
	}
}

// Send delivers a deep copy of t to dst's mailbox. Payloads are copied
// at the sender so a message is immutable in flight, like a buffer
// handed to a real interconnect. Use sendOwned when the sender
// relinquishes the buffer anyway — the copy discipline of the
// collectives below.
func (c *Comm) Send(dst int, t *tensor.Tensor) {
	c.send(dst, message{t: t.Clone()})
}

// sendOwned delivers t itself, transferring ownership: the caller must
// not read or write t afterwards, and the receiver must treat it as
// immutable if it may still be aliased (ring forwarding). This is the
// zero-copy path every collective and halo/pipeline transfer uses for
// buffers that are handed off anyway — cloning is reserved for true
// aliasing boundaries (public Send, tree broadcast fan-out).
func (c *Comm) sendOwned(dst int, t *tensor.Tensor) {
	c.send(dst, message{t: t})
}

// sendScalar delivers a bare float64 with no tensor allocation.
func (c *Comm) sendScalar(dst int, v float64) {
	c.send(dst, message{v: v})
}

// Recv blocks until a tensor from src arrives (or the world aborts).
func (c *Comm) Recv(src int) *tensor.Tensor {
	select {
	case m := <-c.w.mailbox(c.worldRank(src), c.worldRank(c.rank), c.stream):
		if m.t == nil {
			panic(fmt.Sprintf("dist: world rank %d received a scalar where a tensor was expected (collective program order diverged)", c.worldRank(c.rank)))
		}
		return m.t
	case <-c.w.abort:
		panic(errAborted)
	}
}

// recvScalar blocks until a scalar from src arrives.
func (c *Comm) recvScalar(src int) float64 {
	select {
	case m := <-c.w.mailbox(c.worldRank(src), c.worldRank(c.rank), c.stream):
		if m.t != nil {
			panic(fmt.Sprintf("dist: world rank %d received a tensor where a scalar was expected (collective program order diverged)", c.worldRank(c.rank)))
		}
		return m.v
	case <-c.w.abort:
		panic(errAborted)
	}
}

// AllReduceSum returns the element-wise sum of t across all PEs, every
// PE receiving bit-identical values. It takes ownership of t: the
// buffer may be reduced in place and returned, so the caller must use
// only the returned tensor.
//
// Large buffers run the bandwidth-optimal ring reduce-scatter +
// allgather (2(p−1) chunk hops, the algorithm the analytic oracle
// prices); small-but-not-tiny ones run the pipelined double binary tree
// (both halves streaming concurrently at full bandwidth in O(log p + k)
// rounds); tiny ones run a binomial reduce + broadcast tree (2⌈log p⌉
// latency-bound hops). All three have a fixed, documented association
// order (internal/collective/order.go, twotree.go) independent of seeds
// and scheduling, so repeated runs are bit-identical and value parity
// vs the sequential baseline holds within the reassociation tolerance
// (§4.5.2).
func (c *Comm) AllReduceSum(t *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	switch n := t.Len(); {
	case n >= ringMinElems && n >= p:
		return c.ringAllReduce(t)
	case n >= twoTreeMinElems:
		return c.twoTreeAllReduce(t)
	default:
		return c.treeAllReduce(t)
	}
}

// ringAllReduce reduces t in place over the flat element range: a
// (p−1)-step ring reduce-scatter leaves rank owning the fully reduced
// chunk `rank`, then a (p−1)-step ring allgather circulates the reduced
// chunks and writes them into place. Per PE it moves 2(p−1)·n/p
// elements — the bandwidth-optimal schedule — versus the O(p·n) the
// serialized rank-0 hub shipped.
//
// Buffer discipline: exactly one chunk buffer is allocated per PE
// (chunkCopy below); every hop hands the received buffer onward after
// accumulating into it, so p buffers circulate for the whole collective
// instead of one allocation per hop.
func (c *Comm) ringAllReduce(t *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	data := t.Data()
	offs, sizes := collective.Chunks(len(data), p)
	next, prev := (c.rank+1)%p, (c.rank+p-1)%p
	sc0, _ := collective.RingReduceScatterStep(c.rank, 0, p)
	cur := chunkCopy(data, offs[sc0], sizes[sc0])
	for s := 0; s < p-1; s++ {
		_, rc := collective.RingReduceScatterStep(c.rank, s, p)
		c.sendOwned(next, cur)
		cur = c.Recv(prev)
		in := cur.Data()
		for i, v := range data[offs[rc] : offs[rc]+sizes[rc]] {
			in[i] += v
		}
	}
	// cur is the fully reduced chunk `rank`; the allgather ring forwards
	// the reduced chunks unchanged (read-only from here on).
	copy(data[offs[c.rank]:offs[c.rank]+sizes[c.rank]], cur.Data())
	for s := 0; s < p-1; s++ {
		_, rc := collective.RingAllGatherStep(c.rank, s, p)
		c.sendOwned(next, cur)
		cur = c.Recv(prev)
		copy(data[offs[rc]:offs[rc]+sizes[rc]], cur.Data())
	}
	return t
}

// chunkCopy snapshots [off, off+n) of data as a rank-1 tensor — the one
// buffer this PE contributes to the circulating ring.
func chunkCopy(data []float64, off, n int) *tensor.Tensor {
	buf := make([]float64, n)
	copy(buf, data[off:off+n])
	return tensor.FromSlice(buf, n)
}

// treeAllReduce reduces small buffers up a binomial tree rooted at rank
// 0 and broadcasts the result back down it. The upward sends transfer
// ownership (partials are dead after the send); the downward hops clone
// so every PE returns a buffer it exclusively owns. Association order at
// the root: ((x₀+x₁) + (x₂+x₃)) + … — fixed by the tree shape alone.
func (c *Comm) treeAllReduce(t *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	acc := t
reduce:
	for d := 1; d < p; d *= 2 {
		switch {
		case c.rank%(2*d) == d:
			c.sendOwned(c.rank-d, acc)
			break reduce
		case c.rank%(2*d) == 0 && c.rank+d < p:
			acc.Add(c.Recv(c.rank + d))
		}
	}
	top := 1
	for top < p {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case c.rank%(2*d) == 0 && c.rank+d < p:
			c.Send(c.rank+d, acc)
		case c.rank%(2*d) == d:
			acc = c.Recv(c.rank - d)
		}
	}
	return acc
}

// twoTreeAllReduce reduces a small-but-not-tiny buffer over the
// pipelined double binary tree (collective.TwoTreeParents): the flat
// element range splits into two near-equal halves, each half streams up
// and down its own tree in collective.TwoTreeChunks chunks, and the two
// trees run concurrently — tree 1 on a derived mailbox stream and its
// own goroutine — so a PE that is a leaf of one tree (doing no
// reduction work there) is typically interior in the other. Every
// element's sum is associated by its tree's shape alone ((own + child₀)
// + child₁ at each interior node), so results are bit-identical across
// runs and ranks like the ring and binomial paths.
func (c *Comm) twoTreeAllReduce(t *tensor.Tensor) *tensor.Tensor {
	data := t.Data()
	half := (len(data) + 1) / 2
	trees := collective.TwoTreeParents(c.Size())
	done := make(chan struct{})
	var t2panic any
	go func() {
		defer close(done)
		defer func() { t2panic = recover() }()
		c.withStream(c.stream+"/t2").treeHalfAllReduce(data[half:], trees[1])
	}()
	c.treeHalfAllReduce(data[:half], trees[0])
	<-done
	if t2panic != nil {
		panic(t2panic)
	}
	return t
}

// treeHalfAllReduce reduces buf — one half of a two-tree buffer — up
// the tree given by parents and broadcasts the result back down it, in
// pipelined chunks. The reduction accumulates in place: after the up
// phase an interior rank's chunk region holds its subtree sum, and the
// down phase overwrites it with the root's total.
func (c *Comm) treeHalfAllReduce(buf []float64, parents []int) {
	if len(buf) == 0 {
		return // every rank sees the same length, so all skip together
	}
	par := parents[c.rank]
	kids := collective.TreeChildren(parents)[c.rank]
	k := min(collective.TwoTreeChunks, len(buf))
	offs, sizes := collective.Chunks(len(buf), k)
	for ci := 0; ci < k; ci++ {
		region := buf[offs[ci] : offs[ci]+sizes[ci]]
		for _, kid := range kids {
			in := c.Recv(kid).Data()
			for i, v := range in {
				region[i] += v
			}
		}
		if par >= 0 {
			c.sendOwned(par, chunkCopy(buf, offs[ci], sizes[ci]))
		}
	}
	for ci := 0; ci < k; ci++ {
		region := buf[offs[ci] : offs[ci]+sizes[ci]]
		var in *tensor.Tensor
		if par >= 0 {
			in = c.Recv(par)
			copy(region, in.Data())
		}
		for i, kid := range kids {
			if in != nil && i == len(kids)-1 {
				// The received buffer is dead here: forward it to the
				// last child instead of cloning (the copy discipline of
				// the other collectives).
				c.sendOwned(kid, in)
				continue
			}
			c.sendOwned(kid, chunkCopy(buf, offs[ci], sizes[ci]))
		}
	}
}

// AllReduceScalar sums one float64 across all PEs on the binomial tree,
// exchanging bare scalars — no tensor allocation on any PE. The
// association order is the tree's, identical for every run.
func (c *Comm) AllReduceScalar(v float64) float64 {
	p := c.Size()
	if p == 1 {
		return v
	}
reduce:
	for d := 1; d < p; d *= 2 {
		switch {
		case c.rank%(2*d) == d:
			c.sendScalar(c.rank-d, v)
			break reduce
		case c.rank%(2*d) == 0 && c.rank+d < p:
			v += c.recvScalar(c.rank + d)
		}
	}
	top := 1
	for top < p {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case c.rank%(2*d) == 0 && c.rank+d < p:
			c.sendScalar(c.rank+d, v)
		case c.rank%(2*d) == d:
			v = c.recvScalar(c.rank - d)
		}
	}
	return v
}

// ReduceScatterSum sums t element-wise across all PEs and returns only
// this rank's chunk of the result, split along axis in rank order with
// the canonical near-equal sizes (tensor.SplitSizes). It is the
// reduce-scatter half of the ring allreduce — the primitive the paper's
// footnote-2 filter-parallel optimization aggregates input gradients
// with — at (p−1) chunk hops per PE. Takes ownership of t; a singleton
// communicator returns t itself.
func (c *Comm) ReduceScatterSum(t *tensor.Tensor, axis int) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	offs := tensor.SplitOffsets(t.Dim(axis), p)
	sizes := tensor.SplitSizes(t.Dim(axis), p)
	next, prev := (c.rank+1)%p, (c.rank+p-1)%p
	sc0, _ := collective.RingReduceScatterStep(c.rank, 0, p)
	cur := t.Narrow(axis, offs[sc0], sizes[sc0])
	for s := 0; s < p-1; s++ {
		_, rc := collective.RingReduceScatterStep(c.rank, s, p)
		c.sendOwned(next, cur)
		cur = c.Recv(prev)
		addFromRegion(cur, t, axis, offs[rc])
	}
	return cur
}

// addFromRegion accumulates the [start, start+dst.Dim(axis)) slice of
// src along axis into dst without materializing the slice — the
// gather-side counterpart of addRegion. All dimensions except axis must
// match.
func addFromRegion(dst, src *tensor.Tensor, axis, start int) {
	inner := 1
	for i := axis + 1; i < src.Rank(); i++ {
		inner *= src.Dim(i)
	}
	outer := 1
	for i := 0; i < axis; i++ {
		outer *= src.Dim(i)
	}
	n, srcAxis := dst.Dim(axis), src.Dim(axis)
	sd, dd := src.Data(), dst.Data()
	for o := 0; o < outer; o++ {
		srcBase := (o*srcAxis + start) * inner
		dstBase := o * n * inner
		for i := 0; i < n*inner; i++ {
			dd[dstBase+i] += sd[srcBase+i]
		}
	}
}

// AllGather concatenates every PE's shard along axis in rank order —
// the activation aggregation of filter parallelism and of the spatial
// trunk/classifier boundary (§4.5.1). All PEs receive identical bits.
// Shards circulate the ring unchanged — p−1 shard hops per PE instead
// of the p−1 full fan-out sends (each cloned) per PE of the old
// implementation. Takes ownership of t: the shard is forwarded without
// copying and must not be mutated after the call; the returned
// concatenation is freshly allocated. A singleton communicator returns
// t itself, so the degenerate grid edges (p1=1 or p2=1) pay no copy.
func (c *Comm) AllGather(t *tensor.Tensor, axis int) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	parts := make([]*tensor.Tensor, p)
	parts[c.rank] = t
	next, prev := (c.rank+1)%p, (c.rank+p-1)%p
	cur := t
	for s := 0; s < p-1; s++ {
		_, rc := collective.RingAllGatherStep(c.rank, s, p)
		c.sendOwned(next, cur)
		cur = c.Recv(prev)
		parts[rc] = cur
	}
	return tensor.Concat(axis, parts...)
}
