package dist

import (
	"errors"
	"fmt"
	"sync"

	"paradl/internal/tensor"
)

// errAborted is panicked by blocked communication calls when another PE
// of the same world has already failed, so a single error tears the
// whole world down instead of deadlocking it.
var errAborted = errors.New("dist: world aborted by peer failure")

// World wires p in-process PEs together with buffered point-to-point
// channels — one mailbox per (sender, receiver) pair. Every collective
// of the runtime (allreduce, allgather, halo exchange, pipeline stage
// transfer) is built from these two-sided messages, mirroring the
// message-passing structure of the MPI/NCCL execution the paper
// validates against (§5.1).
type World struct {
	p    int
	ch   [][]chan *tensor.Tensor
	once sync.Once
	// abort is closed on the first failure; err records its cause.
	abort chan struct{}
	err   error
}

// NewWorld creates a world of p PEs.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d < 1", p))
	}
	depth := 4 * p
	if depth < 64 {
		depth = 64
	}
	w := &World{p: p, abort: make(chan struct{})}
	w.ch = make([][]chan *tensor.Tensor, p)
	for s := range w.ch {
		w.ch[s] = make([]chan *tensor.Tensor, p)
		for d := range w.ch[s] {
			w.ch[s][d] = make(chan *tensor.Tensor, depth)
		}
	}
	return w
}

// fail records the first error and wakes every blocked PE.
func (w *World) fail(err error) {
	w.once.Do(func() {
		w.err = err
		close(w.abort)
	})
}

// Comm is one PE's handle onto a communicator: the whole world, or a
// sub-communicator over a subset of its ranks (Sub). Rank and Size are
// always relative to the communicator; members maps communicator ranks
// to world ranks (nil for the world itself).
type Comm struct {
	w       *World
	rank    int
	members []int
}

// Comm returns the world communicator handle of the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.p {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, w.p))
	}
	return &Comm{w: w, rank: rank}
}

// worldRank translates a communicator rank to its world rank.
func (c *Comm) worldRank(r int) int {
	if c.members == nil {
		return r
	}
	return c.members[r]
}

// Sub returns a sub-communicator over the given ranks OF THIS
// communicator, in the given order: new rank i speaks as members[i].
// The caller must appear in members. Collectives on the result involve
// only its members, so disjoint groups — e.g. the model-parallel groups
// and segmented cross-groups of the §3.6 hybrids — proceed
// independently over the same world. Message matching between
// overlapping communicators relies on the SPMD discipline the runtime
// already assumes: every PE issues its communication calls in the same
// program order.
func (c *Comm) Sub(members []int) *Comm {
	if len(members) == 0 {
		panic("dist: empty sub-communicator")
	}
	world := make([]int, len(members))
	seen := make(map[int]bool, len(members))
	me := -1
	for i, r := range members {
		if r < 0 || r >= c.Size() {
			panic(fmt.Sprintf("dist: sub-communicator member %d out of range [0,%d)", r, c.Size()))
		}
		if seen[r] {
			panic(fmt.Sprintf("dist: duplicate sub-communicator member %d", r))
		}
		seen[r] = true
		world[i] = c.worldRank(r)
		if r == c.rank {
			me = i
		}
	}
	if me < 0 {
		panic(fmt.Sprintf("dist: rank %d is not a member of the sub-communicator %v", c.rank, members))
	}
	return &Comm{w: c.w, rank: me, members: world}
}

// Rank returns this PE's id in [0, Size) within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int {
	if c.members == nil {
		return c.w.p
	}
	return len(c.members)
}

// Send delivers a deep copy of t to dst's mailbox. Payloads are copied
// at the sender so a message is immutable in flight, like a buffer
// handed to a real interconnect.
func (c *Comm) Send(dst int, t *tensor.Tensor) {
	select {
	case c.w.ch[c.worldRank(c.rank)][c.worldRank(dst)] <- t.Clone():
	case <-c.w.abort:
		panic(errAborted)
	}
}

// Recv blocks until a message from src arrives (or the world aborts).
func (c *Comm) Recv(src int) *tensor.Tensor {
	select {
	case t := <-c.w.ch[c.worldRank(src)][c.worldRank(c.rank)]:
		return t
	case <-c.w.abort:
		panic(errAborted)
	}
}

// AllReduceSum returns the element-wise sum of t across all PEs. Rank 0
// acts as the hub: it accumulates partial buffers in ascending rank
// order and broadcasts the result, so every PE ends with bit-identical
// values and the reduction order is deterministic — the property the
// value-parity methodology (§4.5.2) depends on. (The analytic side
// models the bandwidth-optimal ring instead; see internal/collective.)
func (c *Comm) AllReduceSum(t *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	if c.rank == 0 {
		sum := t.Clone()
		for src := 1; src < p; src++ {
			sum.Add(c.Recv(src))
		}
		for dst := 1; dst < p; dst++ {
			c.Send(dst, sum)
		}
		return sum
	}
	c.Send(0, t)
	return c.Recv(0)
}

// AllReduceScalar sums one float64 across all PEs.
func (c *Comm) AllReduceScalar(v float64) float64 {
	if c.Size() == 1 {
		return v
	}
	s := tensor.New(1)
	s.Set(v, 0)
	return c.AllReduceSum(s).At(0)
}

// AllGather concatenates every PE's shard along axis in rank order —
// the activation aggregation of filter parallelism and of the spatial
// trunk/classifier boundary (§4.5.1). All PEs receive identical bits.
// A singleton communicator returns t itself, like AllReduceSum, so the
// degenerate grid edges (p1=1 or p2=1) pay no copy.
func (c *Comm) AllGather(t *tensor.Tensor, axis int) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	for dst := 0; dst < p; dst++ {
		if dst != c.rank {
			c.Send(dst, t)
		}
	}
	parts := make([]*tensor.Tensor, p)
	parts[c.rank] = t
	for src := 0; src < p; src++ {
		if src != c.rank {
			parts[src] = c.Recv(src)
		}
	}
	return tensor.Concat(axis, parts...)
}
