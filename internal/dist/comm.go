package dist

import (
	"errors"
	"fmt"
	"sync"

	"paradl/internal/tensor"
)

// errAborted is panicked by blocked communication calls when another PE
// of the same world has already failed, so a single error tears the
// whole world down instead of deadlocking it.
var errAborted = errors.New("dist: world aborted by peer failure")

// World wires p in-process PEs together with buffered point-to-point
// channels — one mailbox per (sender, receiver) pair. Every collective
// of the runtime (allreduce, allgather, halo exchange, pipeline stage
// transfer) is built from these two-sided messages, mirroring the
// message-passing structure of the MPI/NCCL execution the paper
// validates against (§5.1).
type World struct {
	p    int
	ch   [][]chan *tensor.Tensor
	once sync.Once
	// abort is closed on the first failure; err records its cause.
	abort chan struct{}
	err   error
}

// NewWorld creates a world of p PEs.
func NewWorld(p int) *World {
	if p < 1 {
		panic(fmt.Sprintf("dist: world size %d < 1", p))
	}
	depth := 4 * p
	if depth < 64 {
		depth = 64
	}
	w := &World{p: p, abort: make(chan struct{})}
	w.ch = make([][]chan *tensor.Tensor, p)
	for s := range w.ch {
		w.ch[s] = make([]chan *tensor.Tensor, p)
		for d := range w.ch[s] {
			w.ch[s][d] = make(chan *tensor.Tensor, depth)
		}
	}
	return w
}

// fail records the first error and wakes every blocked PE.
func (w *World) fail(err error) {
	w.once.Do(func() {
		w.err = err
		close(w.abort)
	})
}

// Comm is one PE's handle onto the world.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the handle of the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.p {
		panic(fmt.Sprintf("dist: rank %d out of range [0,%d)", rank, w.p))
	}
	return &Comm{w: w, rank: rank}
}

// Rank returns this PE's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size p.
func (c *Comm) Size() int { return c.w.p }

// Send delivers a deep copy of t to dst's mailbox. Payloads are copied
// at the sender so a message is immutable in flight, like a buffer
// handed to a real interconnect.
func (c *Comm) Send(dst int, t *tensor.Tensor) {
	select {
	case c.w.ch[c.rank][dst] <- t.Clone():
	case <-c.w.abort:
		panic(errAborted)
	}
}

// Recv blocks until a message from src arrives (or the world aborts).
func (c *Comm) Recv(src int) *tensor.Tensor {
	select {
	case t := <-c.w.ch[src][c.rank]:
		return t
	case <-c.w.abort:
		panic(errAborted)
	}
}

// AllReduceSum returns the element-wise sum of t across all PEs. Rank 0
// acts as the hub: it accumulates partial buffers in ascending rank
// order and broadcasts the result, so every PE ends with bit-identical
// values and the reduction order is deterministic — the property the
// value-parity methodology (§4.5.2) depends on. (The analytic side
// models the bandwidth-optimal ring instead; see internal/collective.)
func (c *Comm) AllReduceSum(t *tensor.Tensor) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t
	}
	if c.rank == 0 {
		sum := t.Clone()
		for src := 1; src < p; src++ {
			sum.Add(c.Recv(src))
		}
		for dst := 1; dst < p; dst++ {
			c.Send(dst, sum)
		}
		return sum
	}
	c.Send(0, t)
	return c.Recv(0)
}

// AllReduceScalar sums one float64 across all PEs.
func (c *Comm) AllReduceScalar(v float64) float64 {
	if c.Size() == 1 {
		return v
	}
	s := tensor.New(1)
	s.Set(v, 0)
	return c.AllReduceSum(s).At(0)
}

// AllGather concatenates every PE's shard along axis in rank order —
// the activation aggregation of filter parallelism and of the spatial
// trunk/classifier boundary (§4.5.1). All PEs receive identical bits.
func (c *Comm) AllGather(t *tensor.Tensor, axis int) *tensor.Tensor {
	p := c.Size()
	if p == 1 {
		return t.Clone()
	}
	for dst := 0; dst < p; dst++ {
		if dst != c.rank {
			c.Send(dst, t)
		}
	}
	parts := make([]*tensor.Tensor, p)
	parts[c.rank] = t
	for src := 0; src < p; src++ {
		if src != c.rank {
			parts[src] = c.Recv(src)
		}
	}
	return tensor.Concat(axis, parts...)
}
