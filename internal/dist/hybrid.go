package dist

import (
	"fmt"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
)

// The §3.6 hybrids arrange p = p1·p2 PEs as a 2-D grid per
// strategy.HybridGroups: p1 model-parallel GROUPS of p2 PEs, each group
// training on its contiguous shard of every batch, plus p2 segmented
// cross-groups — {PE k of every group} — carrying the data-parallel
// gradient exchange between groups (§4.5.1). Every PE therefore holds
// three communicators: the world, its group, and its segment. The pure
// strategies are the degenerate edges of the same grid — data is
// p2 = 1 (groups of one, the segment spans the world), filter and
// spatial are p1 = 1 (one group spanning the world, singleton
// segments) — and share the grid step implementations so the pure and
// hybrid choreographies cannot drift.

// runGrid spawns the p1×p2 grid and hands every PE its world, group,
// and segment communicator. World rank g·p2+k is PE k of group g, so
// group.Rank() = k and seg.Rank() = g. resultRank selects the world
// rank whose per-iteration losses the run reports (0 for the
// filter/spatial grids, group 0's last stage for the pipeline grid).
func runGrid(p1, p2, resultRank int, body func(world, group, seg *Comm) ([]float64, error)) ([]float64, error) {
	groups, segments, err := strategy.HybridGroups(p1, p2)
	if err != nil {
		return nil, err
	}
	return runWorld(p1*p2, resultRank, func(c *Comm) ([]float64, error) {
		g, k := c.Rank()/p2, c.Rank()%p2
		return body(c, c.Sub(groups[g]), c.Sub(segments[k]))
	})
}

// groupShard slices group g's contiguous shard out of a batch and
// returns it with its loss weight n_g/B. Shard sizes come from
// strategy.MicroBatches — the same decomposition the Run entry points
// validate against — so slicing and validation cannot diverge.
func groupShard(b *Batch, g, p1 int) (*tensor.Tensor, []int, float64) {
	if p1 == 1 {
		// Degenerate grid edge (pure model parallelism): the shard IS
		// the batch — no Narrow copy.
		return b.X, b.Labels, 1
	}
	total := b.X.Dim(0)
	sizes, err := strategy.MicroBatches(total, p1)
	if err != nil {
		panic(err) // unreachable: checkGrid validated every batch
	}
	off := tensor.SplitOffsets(total, p1)[g]
	n := sizes[g]
	return b.X.Narrow(0, off, n), b.Labels[off : off+n], float64(n) / float64(total)
}

// checkGrid validates the common hybrid preconditions: a sane grid
// shape and at least one sample per group in every batch.
func checkGrid(m *nn.Model, batches []Batch, p1, p2 int, label string) error {
	if p1 < 1 || p2 < 1 {
		return fmt.Errorf("dist: %s needs p1, p2 >= 1, got %d×%d", label, p1, p2)
	}
	if err := checkBatches(m, batches); err != nil {
		return err
	}
	for i := range batches {
		if _, err := strategy.MicroBatches(batches[i].X.Dim(0), p1); err != nil {
			return fmt.Errorf("dist: batch %d: %w", i, err)
		}
	}
	return nil
}

// RunDataFilter executes the df hybrid (§3.6): filter parallelism of
// width p2 inside each of p1 data-parallel groups. Each group trains on
// its batch shard with every weighted layer's output channels sharded
// across the group; the segmented cross-group allreduce then sums each
// PE's weight-shard gradient over the groups into the global mean
// gradient. Batch norm is synchronized across segments (one PE per
// group covers the global batch exactly once), so runs match the
// sequential baseline even on BN models.
//
// Deprecated: use Run with Plan{Strategy: core.DataFilter, P1: p1, P2: p2}.
func RunDataFilter(m *nn.Model, seed int64, batches []Batch, lr float64, p1, p2 int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.DataFilter, P1: p1, P2: p2}, WithSeed(seed), WithLR(lr))
}

// RunDataSpatial executes the ds hybrid (§3.6): spatial parallelism of
// width p2 inside each of p1 data-parallel groups — the paper's
// CosmoFlow configuration (one sample per node, spatial within the
// node, Fig. 5). Trunk convolution gradients are partial over each
// (group, slab) pair and allreduce across the whole world; the
// replicated classifier head's gradients allreduce across segments;
// trunk batch norm is synchronized world-wide.
//
// Deprecated: use Run with Plan{Strategy: core.DataSpatial, P1: p1, P2: p2}.
func RunDataSpatial(m *nn.Model, seed int64, batches []Batch, lr float64, p1, p2 int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.DataSpatial, P1: p1, P2: p2}, WithSeed(seed), WithLR(lr))
}

// RunDataPipeline executes the dp hybrid per the §3.6 grid recipe:
// GPipe pipeline parallelism of depth p2 inside each of p1
// data-parallel groups, with segmented cross-group gradient exchange —
// stage k of every group holds the same layers, so segment k's
// allreduce sums the per-group stage gradients into the global mean
// gradient. Batch-norm statistics are per-microbatch per-group (the
// GPipe semantics), so value parity vs the sequential baseline holds
// for BN-free models, like pure pipeline parallelism.
//
// Deprecated: use Run with Plan{Strategy: core.DataPipeline, P1: p1, P2: p2};
// this wrapper exists only for symmetry with the other grid shims.
func RunDataPipeline(m *nn.Model, seed int64, batches []Batch, lr float64, p1, p2 int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.DataPipeline, P1: p1, P2: p2}, WithSeed(seed), WithLR(lr))
}
