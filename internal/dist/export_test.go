package dist

import (
	"paradl/internal/core"
	"paradl/internal/nn"
)

// SetRunnerForTest swaps strategy s's registry entry for a stub and
// returns a restore func. The delegation tests use it to observe that
// the deprecated Run* shims route through the registry dispatch rather
// than calling an engine directly.
func SetRunnerForTest(s core.Strategy, fn func(m *nn.Model, batches []Batch, pl Plan) (*Result, error)) (restore func()) {
	old, ok := registry[s]
	registry[s] = func(m *nn.Model, batches []Batch, pl Plan, cfg *runConfig) (*Result, error) {
		return fn(m, batches, pl)
	}
	return func() {
		if ok {
			registry[s] = old
		} else {
			delete(registry, s)
		}
	}
}

// RegistryStrategiesForTest returns the registry's key set (unordered)
// so the invariant test can pin Strategies() against it.
func RegistryStrategiesForTest() []core.Strategy {
	out := make([]core.Strategy, 0, len(registry))
	for s := range registry {
		out = append(out, s)
	}
	return out
}

// ScatterableForTest exposes the footnote-2 eligibility analysis so the
// parity tests can assert the reduce-scatter path actually triggers.
func ScatterableForTest(m *nn.Model, p2 int) []bool {
	cfg := defaultConfig()
	return scatterableInputGrads(m, p2, &cfg)
}
