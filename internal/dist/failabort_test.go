// White-box abort-path test: concurrent World.fail from several PEs
// while nonblocking collective handles are still in flight must
// neither deadlock nor double-close the abort channel. Run under
// -race (the Makefile's race-elastic target does).
package dist

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"paradl/internal/tensor"
)

// TestConcurrentFailAbortNoDeadlock launches a 4-PE world where every
// PE posts a nonblocking allreduce, then — after a barrier that
// guarantees all handles are in flight — three PEs fail at the same
// instant while rank 0 is (or is about to be) blocked in Wait. The
// world must come down with an error, every goroutine must exit, and
// the sync.Once-guarded fail path must absorb the concurrent failures
// without panicking on a double close.
func TestConcurrentFailAbortNoDeadlock(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		var ready sync.WaitGroup
		ready.Add(4)
		_, err := runWorld(4, 0, func(c *Comm) ([]float64, error) {
			h := c.IAllReduceSum(tensor.New(64))
			ready.Done()
			ready.Wait() // every handle is now in flight
			if c.Rank() != 0 {
				// Three concurrent failures, handle deliberately dropped:
				// the error path must tolerate unwaited handles.
				_ = h
				return nil, fmt.Errorf("rank %d: synthetic fault", c.Rank())
			}
			h.Wait() // may complete or panic errAborted; both must unwind cleanly
			return []float64{0}, nil
		})
		if err == nil {
			t.Fatalf("trial %d: world survived three concurrent PE failures", trial)
		}
	}
}

// TestFailAtConvertsToTypedError pins the runWorld recover path: an
// injected *PEFailure panic surfaces as the world's error with its
// type intact (the elastic supervisor matches on it), while peer PEs
// die silently as aborted.
func TestFailAtConvertsToTypedError(t *testing.T) {
	_, err := runWorld(3, 0, func(c *Comm) ([]float64, error) {
		if c.Rank() == 1 {
			panic(&PEFailure{PE: 1, Iter: 7})
		}
		// Peers block in a collective the failed PE never joins.
		c.AllReduceSum(tensor.New(8))
		return []float64{0}, nil
	})
	if err == nil {
		t.Fatal("world with a dead PE returned nil error")
	}
	var pf *PEFailure
	if !errors.As(err, &pf) {
		t.Fatalf("world error %v does not unwrap to *PEFailure", err)
	}
	if pf.PE != 1 || pf.Iter != 7 {
		t.Fatalf("typed failure %+v, want PE=1 Iter=7", pf)
	}
}
