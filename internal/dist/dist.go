// Package dist is the real partitioned-execution runtime of the ParaDL
// reproduction: it trains CNNs for real — actual forward/backward/SGD
// arithmetic through internal/tensor — with the model or data
// partitioned across in-process PEs exactly as the six parallelization
// strategies of §3 prescribe. Each PE is a goroutine owning its tensor
// shard per the plans in internal/strategy, and all cross-PE traffic
// flows through channel-based message passing (comm.go): gradient
// allreduce for data parallelism, halo exchange for spatial, activation
// allgather for filter, partial-sum allreduce for channel, and stage
// transfers for the pipeline.
//
// Models execute as compiled DAGs (nn.CompileGraph): ResNet-style
// Branch/shortcut layers read their tap point and merge additively
// into the main path under every strategy, with pipeline stage
// boundaries snapped to cuts that keep each residual block whole.
//
// The package exists to close the correctness loop of §4.5.2/§5.2:
// every strategy must reproduce the per-iteration losses of the serial
// baseline value by value (the parity tests pin this to 1e-6), so the
// oracle's projections and the executable semantics can never drift
// apart.
//
// The single entry point is plan-driven:
//
//	res, err := dist.Run(m, batches, dist.Plan{Strategy: core.DataFilter, P1: 4, P2: 2},
//	        dist.WithSeed(7), dist.WithLR(0.05))
//
// Run dispatches through a strategy registry (registry.go) whose
// entries are the grid engines of §3/§3.6:
//
//	serial        — single-PE SGD, the baseline every strategy must match
//	data          — batch sharded over replicas, gradient Allreduce (p2=1 edge of df)
//	spatial       — sample domain sharded, neighbour halo exchange (§3.2; p1=1 edge of ds)
//	filter        — output channels sharded, activation Allgather (§3.4; p1=1 edge of df)
//	channel       — input channels sharded, activation Allreduce (§3.5)
//	pipeline      — contiguous layer stages, GPipe microbatching (§3.3; p1=1 edge of dp)
//	df / ds / dp  — §3.6 hybrids: p1 model-parallel groups × segmented exchange
//
// Plans round-trip through strings ("ds:4x2" ⇄ ParsePlan/String), so
// the advisor and the CLI can select strategies as runtime values. The
// per-strategy Run* functions survive as deprecated shims over Run.
package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// PEFailure reports the death of one PE mid-run: the failure WithFailAt
// injects, surfaced as the error of the whole (aborted) world. The
// elastic supervisor (RunElastic) matches it with errors.As to tell a
// recoverable PE loss from a configuration error, and measures its
// detection latency from At.
type PEFailure struct {
	PE   int       // world rank of the dead PE
	Iter int       // global iteration it died in
	At   time.Time // when the PE died (stamped at the panic site)
}

func (e *PEFailure) Error() string {
	return fmt.Sprintf("dist: PE %d died at iteration %d", e.PE, e.Iter)
}

// Batch is one training step's input: samples [N, C, spatial...] plus
// integer class labels of length N.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// Result reports one training run: the strategy executed, its width,
// and the loss of every iteration — the series the value-parity
// methodology compares across strategies. P1×P2 is the executed plan's
// grid shape — P1 data-parallel groups of P2 model-parallel PEs,
// P = P1·P2 — with the pure strategies on their degenerate edges
// (sequential 1×1, data p×1, channel 1×p, …).
type Result struct {
	Strategy string
	P        int
	P1, P2   int
	Losses   []float64
}

// RunSequential trains a fresh replica (deterministically initialized
// from seed) with plain SGD, one iteration per batch. It is the ground
// truth every partitioned run is validated against. It panics on models
// whose layer list does not compile to an executable graph and on
// malformed batches; the Run* strategy variants return the same
// conditions as errors.
//
// Deprecated: use Run with Plan{Strategy: core.Serial} (paradl.Train),
// which reports those conditions as errors instead of panicking.
func RunSequential(m *nn.Model, seed int64, batches []Batch, lr float64) *Result {
	res, err := Run(m, batches, Plan{Strategy: core.Serial}, WithSeed(seed), WithLR(lr))
	if err != nil {
		panic(err)
	}
	return res
}

// runSequential is the serial engine behind the registry: single-PE
// training, one optimizer step per batch.
func runSequential(m *nn.Model, batches []Batch, cfg *runConfig) (*Result, error) {
	if err := checkBatches(m, batches); err != nil {
		return nil, err
	}
	net, err := cfg.replica(m)
	if err != nil {
		return nil, err
	}
	step := newStepper(cfg)
	seedFullVelocities(cfg, step.mom, net)
	losses := make([]float64, 0, len(batches))
	tr := cfg.tracer(0)
	var runErr error
	func() {
		defer tr.End()
		defer func() {
			if rec := recover(); rec != nil {
				var pf *PEFailure
				if err, ok := rec.(error); ok && errors.As(err, &pf) {
					runErr = err // the single PE IS the world: no peers to abort
					return
				}
				panic(rec)
			}
		}()
		for i := range batches {
			tr.Iter(cfg.startIter + i)
			tr.Begin(trace.Idle)
			cfg.maybeFail(0, i)
			// The explicit forward/loss/backward/step composition is
			// TrainStep(With) verbatim (see nn/exec.go), split so each
			// phase lands on its own span.
			tr.Begin(trace.ComputeForward)
			logits, states := net.Forward(batches[i].X)
			loss, dLogits := tensor.SoftmaxCrossEntropy(logits, batches[i].Labels)
			tr.Begin(trace.ComputeBackward)
			_, grads := net.Backward(dLogits, states)
			step.stepNet(net, grads)
			losses = append(losses, loss)
			cfg.fire(i, loss)
			if cfg.snapshotDue(i) {
				tr.Begin(trace.CheckpointPut)
				params, vel := cloneNetState(net, step.mom)
				cfg.emit(m.Name, i, losses, params, vel)
			}
		}
	}()
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Strategy: "sequential", P: 1, P1: 1, P2: 1, Losses: losses}, nil
}

// newReplica instantiates the model with parameters drawn from seed.
// Two PEs calling this with the same seed hold bit-identical replicas.
func newReplica(m *nn.Model, seed int64) *nn.Network {
	return nn.NewNetwork(m, rand.New(rand.NewSource(seed)))
}

// replica builds this PE's full replica: the usual seed-derived
// initialization, then — when resuming — the canonical checkpoint
// parameters copied over it. The seed init still runs first so the
// model's RNG stream is consumed identically to a fresh run; engines
// then carve their shards from the restored replica exactly as they
// would from a fresh one, which is what makes re-sharding under any
// plan a non-event.
func (c *runConfig) replica(m *nn.Model) (*nn.Network, error) {
	net := newReplica(m, c.seed)
	if c.initState != nil {
		if err := restoreParams(net, c.initState); err != nil {
			return nil, err
		}
	}
	return net, nil
}

// runWorld spawns one goroutine per PE, runs body on each, and returns
// resultRank's per-iteration losses. A panic or error on any PE aborts
// the whole world (no deadlocked stragglers) and is reported once.
func runWorld(p, resultRank int, body func(c *Comm) ([]float64, error)) ([]float64, error) {
	w := NewWorld(p)
	results := make([][]float64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					if err, ok := rec.(error); ok {
						if err == errAborted {
							return // a peer already recorded the root cause
						}
						var pf *PEFailure
						if errors.As(err, &pf) {
							// An injected death: keep the typed error so the
							// elastic supervisor can recognize it as
							// recoverable rather than a generic panic.
							w.fail(err)
							return
						}
					}
					w.fail(fmt.Errorf("dist: PE %d panicked: %v", rank, rec))
				}
			}()
			losses, err := body(w.Comm(rank))
			if err != nil {
				w.fail(fmt.Errorf("dist: PE %d: %w", rank, err))
				return
			}
			// A dropped Handle means a nonblocking collective's result was
			// never synchronized back — silently proceeding would train on
			// unreduced gradients, so the misuse fails the world loudly.
			if n := w.pending[rank].Load(); n != 0 {
				w.fail(fmt.Errorf("dist: PE %d finished with %d nonblocking collective handle(s) dropped without Wait", rank, n))
				return
			}
			results[rank] = losses
		}(r)
	}
	wg.Wait()
	if w.err != nil {
		return nil, w.err
	}
	return results[resultRank], nil
}

// checkBatches validates the common preconditions of every Run
// function: the model must compile to an executable graph (Branch/
// shortcut layers included — the DAG executor runs them; only
// malformed taps are rejected) and every batch must match the model's
// input geometry.
func checkBatches(m *nn.Model, batches []Batch) error {
	if _, err := nn.CompileGraph(m); err != nil {
		return fmt.Errorf("dist: model %q does not compile to an executable graph: %w", m.Name, err)
	}
	for i := range batches {
		b := &batches[i]
		if b.X == nil || b.X.Rank() < 2 {
			return fmt.Errorf("dist: batch %d has no activation tensor", i)
		}
		if b.X.Dim(0) != len(b.Labels) {
			return fmt.Errorf("dist: batch %d has %d samples but %d labels", i, b.X.Dim(0), len(b.Labels))
		}
		want := append([]int{b.X.Dim(0), m.InputChannels}, m.InputDims...)
		if !tensor.EqualShapes(b.X.Shape(), want) {
			return fmt.Errorf("dist: batch %d shape %v does not match model input %v", i, b.X.Shape(), want)
		}
	}
	return nil
}

// addInto accumulates src into dst, adopting src when dst is nil.
func addInto(dst, src *tensor.Tensor) *tensor.Tensor {
	if src == nil {
		return dst
	}
	if dst == nil {
		return src
	}
	dst.Add(src)
	return dst
}

// accumulateGrads folds one microbatch's gradients into the running
// per-layer accumulator.
func accumulateGrads(dst *nn.Grads, g nn.Grads) {
	dst.W = addInto(dst.W, g.W)
	dst.B = addInto(dst.B, g.B)
	dst.Gamma = addInto(dst.Gamma, g.Gamma)
	dst.Beta = addInto(dst.Beta, g.Beta)
}
