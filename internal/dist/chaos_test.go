// Chaos tests: multi-crash fault schedules, straggler injection,
// checkpoint corruption, grow-back elasticity, and supervisor
// cancellation. All of them pin the same invariant the single-failure
// tests do — the stitched loss series matches sequential SGD within
// 1e-6 no matter what the schedule throws at the run.
package dist_test

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"paradl/internal/dist"
	"paradl/internal/model"
)

// TestChaosMultiCrashRecoveryParity is the multi-crash regression at
// p=8 the issue demands under -race: three scheduled PE deaths at
// distinct iterations plus a straggler stall, and the supervisor must
// shrink 8→7→6→5 hands-free while keeping loss parity.
func TestChaosMultiCrashRecoveryParity(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 6, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	sched := &dist.FaultSchedule{Seed: 7, Faults: []dist.Fault{
		{Kind: dist.FaultCrash, PE: 3, Iter: 1},
		{Kind: dist.FaultStraggle, PE: 1, Iter: 2, Delay: 500 * time.Microsecond},
		{Kind: dist.FaultCrash, PE: 0, Iter: 3},
		{Kind: dist.FaultCrash, PE: 2, Iter: 4},
	}}
	res, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
		dist.Policy{CkptEvery: 1, MaxRetries: 5, CkptDir: t.TempDir(), Faults: sched},
		dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 3 {
		t.Fatalf("supervisor logged %d recoveries, want 3: %+v", len(res.Recoveries), res.Recoveries)
	}
	for i, rec := range res.Recoveries {
		if rec.Kind != "crash" {
			t.Fatalf("recovery %d kind %q, want crash: %+v", i, rec.Kind, rec)
		}
	}
	if last := mustPlan(t, res.Recoveries[2].To); last.P() >= 8 {
		t.Fatalf("after three deaths the world still has %d PEs", last.P())
	}
	assertParity(t, seq, res.Result, nil)
}

// TestGrowBackParity: a PE dies at iteration 1 and its slot heals at
// iteration 3 — the supervisor must shrink, train narrow through the
// heal point, then re-plan back to the original full-width plan and
// finish there, with the stitched series still at sequential parity.
func TestGrowBackParity(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 6, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	sched := &dist.FaultSchedule{Seed: 11, Faults: []dist.Fault{
		{Kind: dist.FaultCrash, PE: 2, Iter: 1},
		{Kind: dist.FaultHeal, Iter: 3},
	}}
	res, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
		dist.Policy{CkptEvery: 1, MaxRetries: 4, CkptDir: t.TempDir(), Faults: sched},
		dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 2 {
		t.Fatalf("want a crash then a grow-back, got %+v", res.Recoveries)
	}
	crash, grow := res.Recoveries[0], res.Recoveries[1]
	if crash.Kind != "crash" || crash.PE != 2 || crash.FailIter != 1 {
		t.Fatalf("first recovery %+v, want crash of PE 2 at iteration 1", crash)
	}
	if grow.Kind != "grow-back" || grow.PE != -1 || grow.FailIter != 3 {
		t.Fatalf("second recovery %+v, want grow-back at iteration 3", grow)
	}
	if grow.To != "data:8" {
		t.Fatalf("grow-back re-planned to %q, want the original data:8", grow.To)
	}
	if shrunk := mustPlan(t, grow.From); shrunk.P() >= 8 {
		t.Fatalf("grow-back started from %q, which is not a shrunken world", grow.From)
	}
	assertParity(t, seq, res.Result, nil)
}

// TestGrowBackWithoutCheckpointDir: grow-back must also work from the
// in-memory snapshot alone — no disk involved.
func TestGrowBackWithoutCheckpointDir(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 5, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	sched := &dist.FaultSchedule{Seed: 3, Faults: []dist.Fault{
		{Kind: dist.FaultCrash, PE: 0, Iter: 0},
		{Kind: dist.FaultHeal, Iter: 2},
	}}
	res, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
		dist.Policy{CkptEvery: 1, MaxRetries: 4, Faults: sched},
		dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 2 || res.Recoveries[1].Kind != "grow-back" {
		t.Fatalf("recoveries %+v, want crash then grow-back", res.Recoveries)
	}
	assertParity(t, seq, res.Result, nil)
}

// TestChaosCorruptionFallsBackToOlderCheckpoint: a scheduled corruption
// flips a byte of the newest checkpoint file between the crash and the
// restore. Recovery must fall back to the previous valid snapshot —
// losing progress, never correctness.
func TestChaosCorruptionFallsBackToOlderCheckpoint(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 5, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	sched := &dist.FaultSchedule{Seed: 5, Faults: []dist.Fault{
		{Kind: dist.FaultCrash, PE: 4, Iter: 3},
		{Kind: dist.FaultCorrupt, Iter: 3},
	}}
	res, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
		dist.Policy{CkptEvery: 1, MaxRetries: 3, CkptDir: t.TempDir(), Faults: sched},
		dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("recoveries %+v, want exactly one crash recovery", res.Recoveries)
	}
	rec := res.Recoveries[0]
	// Checkpoints 1..3 were durable when PE 4 died at iteration 3; the
	// corruption destroys the newest, so the resume must start earlier.
	if rec.ResumeIter >= 3 {
		t.Fatalf("resumed from iteration %d despite the newest checkpoint being corrupted", rec.ResumeIter)
	}
	assertParity(t, seq, res.Result, nil)
}

// TestChaosRandomizedScenariosParity soaks a band of seeded random
// schedules end-to-end — the in-repo slice of what paraexp -exp chaos
// does at scale. Every scenario must recover hands-free to parity.
func TestChaosRandomizedScenariosParity(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 6, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	for s := int64(1); s <= 6; s++ {
		sched := dist.RandomFaultSchedule(s, 8, len(batches))
		res, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
			dist.Policy{CkptEvery: 1, MaxRetries: 8, CkptDir: t.TempDir(), Faults: sched},
			dist.WithSeed(seed), dist.WithLR(lr))
		if err != nil {
			t.Fatalf("seed %d (%v): %v", s, sched.Faults, err)
		}
		if len(res.Recoveries) == 0 {
			t.Fatalf("seed %d schedules at least one crash but the supervisor logged no recovery", s)
		}
		assertParity(t, seq, res.Result, nil)
	}
}

// TestChaosScheduleReplayable: the same seed must always draw the same
// schedule — the property that makes every chaos run reproducible.
func TestChaosScheduleReplayable(t *testing.T) {
	a := dist.RandomFaultSchedule(123, 8, 16)
	b := dist.RandomFaultSchedule(123, 8, 16)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different schedules:\n%+v\n%+v", a.Faults, b.Faults)
	}
	if len(a.Faults) == 0 {
		t.Fatal("schedule drew no faults at all")
	}
	c := dist.RandomFaultSchedule(124, 8, 16)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Fatal("adjacent seeds drew identical schedules — the seed is not feeding the RNG")
	}
}

// TestChaosCancelledSupervisorReturnsPromptly pins the satellite fix:
// a cancelled context must interrupt the backoff sleep instead of
// waiting out the full exponential ladder.
func TestChaosCancelledSupervisorReturnsPromptly(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := dist.RunElastic(m, batches, mustPlan(t, "data:8"),
		dist.Policy{CkptEvery: 1, MaxRetries: 3, Backoff: time.Hour, Ctx: ctx},
		dist.WithSeed(seed), dist.WithLR(lr), dist.WithFailAt(1, 1))
	if err == nil {
		t.Fatal("cancelled supervisor returned success")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Fatalf("error %v does not report the cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("supervisor took %v to notice cancellation — it slept out the backoff", elapsed)
	}
}

// TestChaosStragglerKeepsParity: a straggler stall must cost wall
// time only; the loss series stays bit-compatible with a clean run.
func TestChaosStragglerKeepsParity(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 8)
	seq := dist.RunSequential(m, seed, batches, lr)
	res, err := dist.Run(m, batches, mustPlan(t, "data:8"),
		dist.WithSeed(seed), dist.WithLR(lr),
		dist.WithDelay(5, 1, 2*time.Millisecond), dist.WithDelay(2, 3, time.Millisecond))
	assertParity(t, seq, res, err)
}
