// Overlap determinism suite (training level): for every engine with a
// gradient exchange, an overlap-on run must reproduce the overlap-off
// run's per-iteration losses BIT for bit — same buckets, same
// collectives, only the launch timing differs — at widths p∈{2,3,4,5,8},
// on hybrid grids (sub-communicator exchanges), and across bucket sizes
// including ones that force uneven bucket tails. Parity vs the
// sequential baseline is covered by the main suite, which now runs with
// overlap on by default.
package dist_test

import (
	"fmt"
	"testing"

	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

// assertBitIdentical pins two runs to the exact same loss bits.
func assertBitIdentical(t *testing.T, label string, on, off *dist.Result) {
	t.Helper()
	if len(on.Losses) != len(off.Losses) {
		t.Fatalf("%s: %d losses with overlap vs %d without", label, len(on.Losses), len(off.Losses))
	}
	for i := range on.Losses {
		if on.Losses[i] != off.Losses[i] {
			t.Fatalf("%s iter %d: overlap %.17g != blocking %.17g", label, i, on.Losses[i], off.Losses[i])
		}
	}
}

// overlapAB runs one plan with overlap on and off under the given extra
// options and demands bit-identical losses.
func overlapAB(t *testing.T, m *nn.Model, batches []dist.Batch, pl dist.Plan, label string, extra ...dist.Option) {
	t.Helper()
	base := append([]dist.Option{dist.WithSeed(seed), dist.WithLR(lr)}, extra...)
	on, err := dist.Run(m, batches, pl, append(base, dist.WithOverlap(true))...)
	if err != nil {
		t.Fatalf("%s overlap on: %v", label, err)
	}
	off, err := dist.Run(m, batches, pl, append(base, dist.WithOverlap(false))...)
	if err != nil {
		t.Fatalf("%s overlap off: %v", label, err)
	}
	assertBitIdentical(t, label, on, off)
}

// TestOverlapTrainingBitIdenticalWidths: data parallelism — the
// heaviest gradient-exchange user — at every suite width, including
// remainder-bearing batch shards (p=3, 5).
func TestOverlapTrainingBitIdenticalWidths(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 3, 8)
	for _, p := range []int{2, 3, 4, 5, 8} {
		overlapAB(t, m, batches, dist.Plan{Strategy: core.Data, P1: p}, fmt.Sprintf("data:%d", p))
	}
}

// TestOverlapTrainingBitIdenticalEngines: every engine with a real
// exchange — the filter/spatial/pipeline grids run their segmented and
// world-wide exchanges over sub-communicators — plus synchronized batch
// norm (blocking collectives interleaved with in-flight buckets on the
// same communicators).
func TestOverlapTrainingBitIdenticalEngines(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 3, 8)
	for _, pl := range []dist.Plan{
		{Strategy: core.Filter, P2: 3},
		{Strategy: core.DataFilter, P1: 2, P2: 2},
		{Strategy: core.DataSpatial, P1: 2, P2: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 3},
	} {
		overlapAB(t, m, batches, pl, pl.String())
	}
	bn := model.TinyCNN()
	bnBatches := toyBatches(t, bn, 3, 8)
	overlapAB(t, bn, bnBatches, dist.Plan{Strategy: core.Data, P1: 4}, "data:4+syncBN")
	overlapAB(t, bn, bnBatches, dist.Plan{Strategy: core.DataSpatial, P1: 2, P2: 2}, "ds:2x2+syncBN")
}

// TestOverlapTrainingBucketSizes: bucket-boundary extremes — one tensor
// per bucket (1 byte), buckets that cut mid-backward with an uneven
// tail (2 KiB), and everything in one bucket (1 MiB) — each pinned
// bit-identical between overlap modes, for EVERY engine with a gradient
// exchange. The small sizes are what actually exercise the nonblocking
// path (at the 256 KiB default the toy gradient sets flush only at
// drain, which is blocking in both modes): spatial runs its two
// exchangers (world trunk + segment head) with handles in flight
// concurrently, pipeline launches from inside the final microbatch
// flush. Different bucket sizes pack different flat buffers, so runs
// are only comparable within one setting; across settings the parity
// suite's 1e-6 bound applies.
func TestOverlapTrainingBucketSizes(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 3, 8)
	for _, bb := range []int{1, 2 << 10, 1 << 20} {
		for _, pl := range []dist.Plan{
			{Strategy: core.Data, P1: 4},
			{Strategy: core.DataFilter, P1: 2, P2: 2},
			{Strategy: core.DataSpatial, P1: 2, P2: 2},
			{Strategy: core.DataPipeline, P1: 2, P2: 3},
		} {
			overlapAB(t, m, batches, pl, fmt.Sprintf("%s bucket=%d", pl, bb), dist.WithBucketBytes(bb))
		}
	}
}

// TestOverlapTrainingMomentum: velocity state composes with the
// overlapped exchange (the optimizer steps strictly after drain).
func TestOverlapTrainingMomentum(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 3, 8)
	overlapAB(t, m, batches, dist.Plan{Strategy: core.Data, P1: 4}, "data:4+momentum", dist.WithMomentum(0.9))
}
