package dist

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"paradl/internal/core"
)

// Plans round-trip through their text/JSON wire form: marshal →
// unmarshal reconstructs the normalized plan, and re-marshal is
// byte-identical (property over the whole valid plan space).
func TestPlanTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	strategies := append(Strategies(), core.Serial)
	for i := 0; i < 2000; i++ {
		s := strategies[rng.Intn(len(strategies))]
		var pl Plan
		switch s {
		case core.Serial:
			pl = Plan{Strategy: s}
		case core.DataFilter, core.DataSpatial, core.DataPipeline:
			pl = Plan{Strategy: s, P1: rng.Intn(8) + 1, P2: rng.Intn(8) + 1}
		case core.Data:
			pl = Plan{Strategy: s, P1: rng.Intn(8) + 1}
		default:
			pl = Plan{Strategy: s, P2: rng.Intn(8) + 1}
		}
		txt, err := pl.MarshalText()
		if err != nil {
			t.Fatalf("%+v: %v", pl, err)
		}
		var back Plan
		if err := back.UnmarshalText(txt); err != nil {
			t.Fatalf("%s: %v", txt, err)
		}
		if back != pl.normalized() {
			t.Fatalf("%s decoded to %+v, want %+v", txt, back, pl.normalized())
		}
		txt2, err := back.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(txt, txt2) {
			t.Fatalf("re-marshal changed: %s vs %s", txt, txt2)
		}
	}
}

// Plan participates in JSON documents via its text form.
func TestPlanJSON(t *testing.T) {
	type doc struct {
		Plan Plan `json:"plan"`
	}
	in := doc{Plan: Plan{Strategy: core.DataSpatial, P1: 4, P2: 2}}
	enc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"plan":"ds:4x2"}`; string(enc) != want {
		t.Fatalf("encoded %s, want %s", enc, want)
	}
	var out doc
	if err := json.Unmarshal(enc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan != in.Plan {
		t.Fatalf("decoded %+v, want %+v", out.Plan, in.Plan)
	}
	var bad doc
	if err := json.Unmarshal([]byte(`{"plan":"df:0x2"}`), &bad); err == nil {
		t.Fatal("invalid plan string must fail to decode")
	}
}

// Invalid plans refuse to marshal instead of emitting unparseable text.
func TestPlanMarshalRejectsInvalid(t *testing.T) {
	for _, pl := range []Plan{
		{Strategy: core.Data, P1: 0, P2: 1},
		{Strategy: core.DataFilter, P1: 2},
		{Strategy: core.Serial, P1: 3, P2: 1},
		{Strategy: core.Strategy(42), P1: 1, P2: 1},
	} {
		if _, err := pl.MarshalText(); err == nil {
			t.Fatalf("plan %+v must refuse to marshal", pl)
		}
	}
}
