// Elastic-runtime tests: bit-identical checkpoint/resume on every
// plan, supervised recovery from injected PE death, and live plan
// migration through the canonical checkpoint representation.
package dist_test

import (
	"math"
	"testing"

	"paradl/internal/ckpt"
	"paradl/internal/core"
	"paradl/internal/dist"
	"paradl/internal/model"
)

func mustPlan(t *testing.T, s string) dist.Plan {
	t.Helper()
	pl, err := dist.ParsePlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestResumeBitIdenticalAllPlans pins the tentpole invariant on every
// plan: (1) a checkpointing run is bit-identical to a plain run (the
// snapshot gathers are pure data movement), and (2) a run restored
// from the iteration-2 snapshot — after a full wire round-trip —
// reproduces the remaining losses bit-for-bit, momentum velocities
// included. Equality here is ==, not a tolerance.
func TestResumeBitIdenticalAllPlans(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 8)
	opts := []dist.Option{dist.WithSeed(seed), dist.WithLR(lr), dist.WithMomentum(0.9)}
	plans := []string{
		"serial",
		"data:2", "data:4",
		"spatial:2", "spatial:4",
		"filter:2", "filter:4",
		"channel:2", "channel:4",
		"pipeline:2", "pipeline:4",
		"df:2x2", "ds:2x2", "dp:2x2",
	}
	for _, ps := range plans {
		ps := ps
		t.Run(ps, func(t *testing.T) {
			pl := mustPlan(t, ps)
			straight, err := dist.Run(m, batches, pl, opts...)
			if err != nil {
				t.Fatal(err)
			}
			var snap *ckpt.State
			ckOpts := append(append([]dist.Option(nil), opts...),
				dist.WithCheckpoint(2, func(st *ckpt.State) {
					if st.Iter == 2 {
						snap = st
					}
				}))
			ck, err := dist.Run(m, batches, pl, ckOpts...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range straight.Losses {
				if ck.Losses[i] != straight.Losses[i] {
					t.Fatalf("checkpointing perturbed the run: iter %d loss %v vs %v", i, ck.Losses[i], straight.Losses[i])
				}
			}
			if snap == nil {
				t.Fatal("no snapshot emitted at iteration 2")
			}
			if snap.Iter != 2 || snap.Cursor != 2 || snap.Plan != pl.String() || snap.Model != m.Name {
				t.Fatalf("snapshot metadata %+v, want iter=2 cursor=2 plan=%s model=%s", snap, pl, m.Name)
			}
			if len(snap.Losses) != 2 {
				t.Fatalf("snapshot carries %d losses, want 2", len(snap.Losses))
			}
			// Round-trip through the wire format so the resume also
			// proves encode/decode fidelity, not just in-memory cloning.
			enc, err := snap.Encode()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := ckpt.Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := dist.Run(m, batches[2:], pl,
				append(append([]dist.Option(nil), opts...), dist.WithInitState(restored))...)
			if err != nil {
				t.Fatal(err)
			}
			if len(resumed.Losses) != 2 {
				t.Fatalf("resumed run produced %d losses, want 2", len(resumed.Losses))
			}
			for i := range resumed.Losses {
				if resumed.Losses[i] != straight.Losses[2+i] {
					t.Fatalf("resume diverged at iter %d: %v vs straight %v (Δ=%g)",
						2+i, resumed.Losses[i], straight.Losses[2+i],
						math.Abs(resumed.Losses[i]-straight.Losses[2+i]))
				}
			}
		})
	}
}

// TestElasticRecoveryParity injects the death of PE 3 at iteration 2
// into p=8 worlds and demands the supervisor recover WITHOUT human
// intervention: re-plan at p=7 via the oracle ladder, restore the
// iteration-2 checkpoint, and finish with ≤1e-6 parity against the
// sequential baseline over the whole stitched loss series.
func TestElasticRecoveryParity(t *testing.T) {
	for _, tc := range []struct {
		model string
		plan  string
	}{
		{"tinycnn-nobn", "data:8"},
		{"tinycnn-nobn", "df:4x2"},
		{"tinyresnet", "data:8"},
	} {
		tc := tc
		t.Run(tc.model+"/"+tc.plan, func(t *testing.T) {
			m, err := model.ByName(tc.model)
			if err != nil {
				t.Fatal(err)
			}
			batches := toyBatches(t, m, 4, 8)
			seq := dist.RunSequential(m, seed, batches, lr)
			res, err := dist.RunElastic(m, batches, mustPlan(t, tc.plan),
				dist.Policy{CkptEvery: 1, MaxRetries: 3, CkptDir: t.TempDir()},
				dist.WithSeed(seed), dist.WithLR(lr), dist.WithFailAt(3, 2))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Recoveries) != 1 {
				t.Fatalf("supervisor logged %d recoveries, want 1: %+v", len(res.Recoveries), res.Recoveries)
			}
			rec := res.Recoveries[0]
			if rec.PE != 3 || rec.FailIter != 2 || rec.ResumeIter != 2 {
				t.Fatalf("recovery %+v, want PE=3 FailIter=2 ResumeIter=2", rec)
			}
			if rec.From != mustPlan(t, tc.plan).String() {
				t.Fatalf("recovery migrated from %q, want %q", rec.From, tc.plan)
			}
			to := mustPlan(t, rec.To)
			if to.P() >= 8 {
				t.Fatalf("recovery plan %q did not shrink the world below 8 PEs", rec.To)
			}
			assertParity(t, seq, res.Result, nil)
		})
	}
}

// TestElasticGivesUpAfterMaxRetries: a failure the ladder cannot save
// (serial — no checkpoint ever taken, no smaller world) surfaces as an
// error instead of looping forever.
func TestElasticExhaustsRetries(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 2, 4)
	_, err := dist.RunElastic(m, batches, dist.Plan{Strategy: core.Serial},
		dist.Policy{CkptEvery: 1, MaxRetries: 2},
		dist.WithSeed(seed), dist.WithLR(lr), dist.WithFailAt(0, 0))
	if err == nil {
		t.Fatal("a serial world with a dead PE 0 cannot recover, but RunElastic returned nil error")
	}
}

// TestMigratePlanMidRun is the live-migration acceptance test:
// batches 0..1 under data:8, canonical checkpoint at the switch point,
// batches 2..3 under df:4x2 — and the stitched series still matches
// sequential SGD within 1e-6.
func TestMigratePlanMidRun(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 8)
	opts := []dist.Option{dist.WithSeed(seed), dist.WithLR(lr), dist.WithMomentum(0.9)}
	baseline, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dist.Migrate(m, batches, mustPlan(t, "data:8"), 2, mustPlan(t, "df:4x2"), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "data+filter" && res.Strategy != "df" {
		t.Logf("migrated result strategy: %s", res.Strategy)
	}
	if res.P1 != 4 || res.P2 != 2 {
		t.Fatalf("migrated run reports grid %dx%d, want 4x2", res.P1, res.P2)
	}
	assertParity(t, baseline, res, nil)
}

// TestResumeRejectsWrongModel: a checkpoint written for one model must
// not restore into another.
func TestResumeRejectsWrongModel(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 2, 4)
	var snap *ckpt.State
	if _, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial},
		dist.WithSeed(seed), dist.WithLR(lr),
		dist.WithCheckpoint(1, func(st *ckpt.State) { snap = st })); err != nil {
		t.Fatal(err)
	}
	other := model.TinyCNN()
	otherBatches := toyBatches(t, other, 1, 4)
	if _, err := dist.Run(other, otherBatches, dist.Plan{Strategy: core.Serial},
		dist.WithSeed(seed), dist.WithLR(lr), dist.WithInitState(snap)); err == nil {
		t.Fatal("restoring a tinycnn-nobn checkpoint into tinycnn must fail")
	}
}
