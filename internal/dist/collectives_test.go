package dist

// Determinism and parity suite for the ring/tree collectives: the
// value-parity methodology (§4.5.2) needs every collective to be
// (a) bit-identical across repeated runs and across ranks of one run,
// (b) within reassociation distance of the reference ascending-rank
// (hub) summation order, at every width — power-of-two or not — and on
// sub-communicators.

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"paradl/internal/tensor"
)

// collectiveWidths spans the shapes that exercise every code path:
// even/odd, power-of-two and not, and the widths the grid runners use.
var collectiveWidths = []int{2, 3, 4, 5, 8}

// ringSize comfortably exceeds ringMinElems; treeSize stays below
// twoTreeMinElems (binomial path); twoTreeSize falls in the two-tree
// window [twoTreeMinElems, ringMinElems) with uneven chunk splits.
const (
	ringSize    = 4 * ringMinElems
	twoTreeSize = 100
	treeSize    = 16
)

// allReduceSizes exercises all three AllReduceSum algorithms.
var allReduceSizes = []int{treeSize, twoTreeSize, ringSize}

// rankInput builds rank's deterministic pseudo-random contribution.
func rankInput(rank, n int) *tensor.Tensor {
	t := tensor.New(n)
	rng := rand.New(rand.NewSource(int64(rank + 1)))
	d := t.Data()
	for i := range d {
		d[i] = rng.Float64() - 0.5
	}
	return t
}

// eachRank runs body on every rank of a fresh world and returns the
// per-rank results.
func eachRank(t *testing.T, p int, body func(c *Comm) *tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	w := NewWorld(p)
	out := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			out[rank] = body(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return out
}

// hubSum is the reference reduction: ascending rank order, the
// association the old rank-0 hub used and the sequential baseline's
// natural order.
func hubSum(p, n int) *tensor.Tensor {
	sum := rankInput(0, n)
	for r := 1; r < p; r++ {
		sum.Add(rankInput(r, n))
	}
	return sum
}

// TestAllReduceDeterministicRepeatedRuns: at every width and on both
// the ring (large buffer) and tree (small buffer) paths, repeated runs
// produce bit-identical results, and all ranks of one run agree
// bit-for-bit.
func TestAllReduceDeterministicRepeatedRuns(t *testing.T) {
	for _, p := range collectiveWidths {
		for _, n := range allReduceSizes {
			first := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.AllReduceSum(rankInput(c.Rank(), n))
			})
			for rank := 1; rank < p; rank++ {
				if !first[rank].AllClose(first[0], 0) {
					t.Fatalf("p=%d n=%d: rank %d diverged from rank 0 within one run", p, n, rank)
				}
			}
			second := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.AllReduceSum(rankInput(c.Rank(), n))
			})
			for rank := 0; rank < p; rank++ {
				if !first[rank].AllClose(second[rank], 0) {
					t.Fatalf("p=%d n=%d: rank %d not bit-identical across runs", p, n, rank)
				}
			}
		}
	}
}

// TestAllReduceHubParity pins the ring/tree association orders to the
// reference ascending-rank order: for p ≤ 8 unit-scale inputs the
// difference is pure summation reassociation, orders of magnitude
// below the 1e-6 the value-parity tests tolerate.
func TestAllReduceHubParity(t *testing.T) {
	const reassocTol = 1e-12
	for _, p := range collectiveWidths {
		for _, n := range allReduceSizes {
			want := hubSum(p, n)
			got := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.AllReduceSum(rankInput(c.Rank(), n))
			})
			if d := got[0].MaxDiff(want); d > reassocTol || math.IsNaN(d) {
				t.Fatalf("p=%d n=%d: ring/tree vs hub order differs by %.3e > %g", p, n, d, reassocTol)
			}
		}
	}
}

// TestSubCommRingAllReduce: the ring path works over a non-contiguous
// sub-communicator (the segments of the §3.6 grids), with members that
// are neither rank-ordered world prefixes nor the whole world.
func TestSubCommRingAllReduce(t *testing.T) {
	const p = 6
	members := []int{1, 3, 5}
	results := make([]*tensor.Tensor, p)
	w := NewWorld(p)
	var wg sync.WaitGroup
	for _, r := range members {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			sub := w.Comm(rank).Sub(members)
			results[rank] = sub.AllReduceSum(rankInput(sub.Rank(), ringSize))
		}(r)
	}
	wg.Wait()
	want := hubSum(len(members), ringSize)
	for _, r := range members {
		if d := results[r].MaxDiff(want); d > 1e-12 {
			t.Fatalf("world rank %d: sub-communicator ring allreduce off by %.3e", r, d)
		}
		if !results[r].AllClose(results[members[0]], 0) {
			t.Fatalf("world rank %d diverged from rank %d", r, members[0])
		}
	}
}

// TestReduceScatterSum: every rank receives exactly its canonical
// (SplitSizes) chunk of the full sum, including uneven splits.
func TestReduceScatterSum(t *testing.T) {
	for _, p := range collectiveWidths {
		rows := p + 2 // uneven whenever p does not divide p+2
		cols := 3
		n := rows * cols
		want := hubSum(p, n).Reshape(rows, cols)
		got := eachRank(t, p, func(c *Comm) *tensor.Tensor {
			return c.ReduceScatterSum(rankInput(c.Rank(), n).Reshape(rows, cols), 0)
		})
		offs := tensor.SplitOffsets(rows, p)
		sizes := tensor.SplitSizes(rows, p)
		for rank := 0; rank < p; rank++ {
			wantChunk := want.Narrow(0, offs[rank], sizes[rank])
			if d := got[rank].MaxDiff(wantChunk); d > 1e-12 {
				t.Fatalf("p=%d rank %d: reduce-scatter chunk off by %.3e", p, rank, d)
			}
		}
	}
}

// TestReduceScatterSingleton: p=1 returns the input itself, the same
// degenerate-edge contract as AllReduceSum and AllGather.
func TestReduceScatterSingleton(t *testing.T) {
	w := NewWorld(1)
	x := rankInput(0, 12).Reshape(4, 3)
	if got := w.Comm(0).ReduceScatterSum(x, 0); got != x {
		t.Fatal("singleton reduce-scatter must return the input tensor unchanged")
	}
}

// TestAllGatherUnevenShards: the ring allgather preserves rank order
// when shard extents differ (remainder-bearing splits).
func TestAllGatherUnevenShards(t *testing.T) {
	const p = 3
	sizes := []int{2, 2, 1} // SplitSizes(5, 3)
	got := eachRank(t, p, func(c *Comm) *tensor.Tensor {
		sh := tensor.New(sizes[c.Rank()], 2)
		sh.Fill(float64(c.Rank() + 1))
		return c.AllGather(sh, 0)
	})
	for rank := 0; rank < p; rank++ {
		g := got[rank]
		if g.Dim(0) != 5 || g.Dim(1) != 2 {
			t.Fatalf("rank %d: gathered shape %v, want [5 2]", rank, g.Shape())
		}
		row := 0
		for src := 0; src < p; src++ {
			for i := 0; i < sizes[src]; i++ {
				if g.At(row, 0) != float64(src+1) {
					t.Fatalf("rank %d row %d: %g, want %d", rank, row, g.At(row, 0), src+1)
				}
				row++
			}
		}
	}
}

// TestAllReduceScalarWidths: the scalar tree path sums exactly at every
// width (integer inputs are associativity-proof, so any order must give
// the closed form) and agrees across ranks.
func TestAllReduceScalarWidths(t *testing.T) {
	for _, p := range collectiveWidths {
		vals := make([]float64, p)
		w := NewWorld(p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				vals[rank] = w.Comm(rank).AllReduceScalar(float64(rank + 1))
			}(r)
		}
		wg.Wait()
		want := float64(p*(p+1)) / 2
		for r := 0; r < p; r++ {
			if vals[r] != want {
				t.Fatalf("p=%d rank %d: scalar sum %g, want %g", p, r, vals[r], want)
			}
		}
	}
}
