package dist

import (
	"paradl/internal/nn"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// defaultBucketBytes is the default gradient-bucket capacity (DDP-style
// size bound): gradients queue as their producing layer's backward
// completes, and a bucket's exchange launches the moment the queued
// bytes reach this bound, overlapping the backward compute of the
// layers below. 256 KiB coalesces the whole gradient set of the toy zoo
// into a single ring allreduce while still splitting real-model-scale
// exchanges into multiple in-flight buckets.
const defaultBucketBytes = 256 << 10

// gradExchanger is the bucketed gradient exchange every engine's
// cross-group allreduce goes through. Gradients are pushed in backward
// order (layer l's gradients as soon as its backward completes); full
// buckets are packed into one flat buffer and summed with a single
// allreduce — nonblocking (IAllReduceSum, overlapping the backward of
// the layers below) when overlap is on, blocking at the same flush
// points when it is off; the tail bucket at drain runs blocking in both
// modes since no compute remains to hide behind. Both modes pack
// identical buckets and run identical collectives, so their results are
// bit-identical — the overlap A/B the determinism suite pins — and
// drain() writes every reduced value back into the gradient tensor it
// came from, so engine code downstream is oblivious to the bucketing.
type gradExchanger struct {
	c           *Comm
	overlap     bool
	bucketBytes int
	queued      []*tensor.Tensor
	queuedBytes int
	flights     []flight
	tr          *trace.PE // this PE's tracer; nil when tracing is off
}

// flight is one launched bucket: the flat buffer in the collective (or
// its blocking-mode result) plus the gradient tensors to unpack into.
type flight struct {
	flat *tensor.Tensor
	ts   []*tensor.Tensor
	h    *Handle // nil when the exchange already ran blocking at flush
	tok  int64   // trace flight token of the nonblocking launch
}

// newGradExchanger returns the exchanger of one PE for the given
// communicator, or nil when the communicator is singleton — gradients
// are already global there, exactly as the blocking AllReduceSum's p=1
// identity made them before.
func newGradExchanger(c *Comm, cfg *runConfig) *gradExchanger {
	if c.Size() == 1 {
		return nil
	}
	bb := cfg.bucketBytes
	if bb < 1 {
		bb = 1 // flush every tensor by itself
	}
	return &gradExchanger{c: c, overlap: cfg.overlap, bucketBytes: bb, tr: cfg.tracer(c.WorldRank())}
}

// push queues gradient tensors for exchange, flushing the bucket
// whenever the size bound is reached. Nil tensors (absent fields of
// nn.Grads) are skipped. The tensors must be dead to the caller until
// drain returns: the exchange owns their values and rewrites their data
// in place with the reduced result.
func (ex *gradExchanger) push(ts ...*tensor.Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		ex.queued = append(ex.queued, t)
		ex.queuedBytes += 8 * t.Len()
		if ex.queuedBytes >= ex.bucketBytes {
			ex.flush(ex.overlap)
		}
	}
}

// pushGrads queues every present field of one layer's gradients.
func (ex *gradExchanger) pushGrads(gr *nn.Grads) {
	ex.push(gr.W, gr.B, gr.Gamma, gr.Beta)
}

// flush launches the exchange of the queued bucket — nonblocking when
// async is set (a mid-backward bucket with compute left to hide
// behind), blocking otherwise. Either way the packed buffer and the
// collective are identical, so the two modes cannot diverge by a bit.
// Single-tensor buckets skip the pack/unpack copies and exchange the
// tensor directly; larger buckets are packed into one flat buffer in
// push order, so the whole bucket costs one collective instead of one
// per tensor.
func (ex *gradExchanger) flush(async bool) {
	if len(ex.queued) == 0 {
		return
	}
	// The synchronous flush cost — pack plus launch (async) or pack plus
	// the blocking exchange — is a collective span; the caller's phase
	// (usually compute-backward) is restored on the way out. The async
	// in-flight window itself lands at drain.
	ph := trace.CollectiveWait
	if async {
		ph = trace.CollectiveLaunch
	}
	prev := ex.tr.Begin(ph)
	ts := ex.queued
	ex.queued = nil
	n := ex.queuedBytes / 8
	ex.queuedBytes = 0
	flat := ts[0]
	if len(ts) > 1 {
		buf := make([]float64, n)
		o := 0
		for _, t := range ts {
			o += copy(buf[o:], t.Data())
		}
		flat = tensor.FromSlice(buf, n)
	}
	fl := flight{ts: ts, tok: -1}
	if async {
		fl.h = ex.c.IAllReduceSum(flat)
		fl.tok = ex.tr.Flight()
	} else {
		fl.flat = ex.c.AllReduceSum(flat)
	}
	ex.flights = append(ex.flights, fl)
	ex.tr.Begin(prev)
}

// drain flushes the tail bucket — blocking: at the pre-step barrier
// there is no backward compute left to overlap, so a worker goroutine
// would be pure overhead — waits every in-flight collective, and
// unpacks each reduced bucket back into its gradient tensors.
func (ex *gradExchanger) drain() {
	ex.flush(false)
	prev := ex.tr.Begin(trace.CollectiveWait)
	for _, fl := range ex.flights {
		res := fl.flat
		if fl.h != nil {
			res = fl.h.Wait()
			ex.tr.Land(fl.tok)
		}
		if len(fl.ts) == 1 {
			if res != fl.ts[0] {
				copy(fl.ts[0].Data(), res.Data())
			}
			continue
		}
		d := res.Data()
		o := 0
		for _, t := range fl.ts {
			td := t.Data()
			copy(td, d[o:o+len(td)])
			o += len(td)
		}
	}
	ex.flights = ex.flights[:0]
	ex.tr.Begin(prev)
}
