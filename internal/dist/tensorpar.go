package dist

import (
	"fmt"

	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
)

// weightShard is one PE's slice of a weighted layer's parameters.
type weightShard struct {
	w, b *tensor.Tensor
	rng  strategy.Range
}

// RunFilter executes filter parallelism (§3.4): every weighted layer's
// output channels (filters) are sharded across the PEs. Each PE holds
// the full input activation, computes its output-channel slice, and the
// slices are Allgathered so the next layer again sees the full tensor.
// Backward, the input gradient is the Allreduced sum of per-shard
// contributions, while each PE's weight gradients are exact for its own
// filters — no gradient exchange at all, the selling point of the
// strategy in Table 3. It is the p1=1 edge of the data×filter grid.
func RunFilter(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: filter parallelism needs p >= 1, got %d", p)
	}
	return runDataFilter(m, seed, batches, lr, 1, p, "filter")
}

// runDataFilter is the shared engine behind RunData (p2=1), RunFilter
// (p1=1), and RunDataFilter: a p1×p2 grid of filter-parallel groups
// joined by segmented cross-group gradient exchange.
func runDataFilter(m *nn.Model, seed int64, batches []Batch, lr float64, p1, p2 int, label string) (*Result, error) {
	if err := checkGrid(m, batches, p1, p2, label); err != nil {
		return nil, err
	}
	if mf := m.MinFilters(); p2 > 1 && p2 > mf {
		return nil, fmt.Errorf("dist: model %q supports filter width <= min F_l = %d (Table 3), got %d", m.Name, mf, p2)
	}
	losses, err := runGrid(p1, p2, func(world, group, seg *Comm) ([]float64, error) {
		net := newReplica(m, seed)
		shards, err := filterShards(net, group.Rank(), p2)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			x, labels, weight := groupShard(&batches[bi], seg.Rank(), p1)
			out = append(out, dataFilterStep(group, seg, net, shards, x, labels, weight, lr))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: label, P: p1 * p2, P1: p1, P2: p2, Losses: losses}, nil
}

// filterShards carves rank's output-channel slice out of every weighted
// layer of an (identically seeded) full replica. The slices are the
// PE's authoritative parameters from here on; the replica keeps only
// the replicated BN parameters live.
func filterShards(net *nn.Network, rank, p int) ([]*weightShard, error) {
	layers := net.Model.Layers
	shards := make([]*weightShard, len(layers))
	for l := range layers {
		spec := &layers[l]
		if spec.Kind != nn.Conv && spec.Kind != nn.FC {
			continue
		}
		rngs, err := strategy.FilterShards(spec, p)
		if err != nil {
			return nil, err
		}
		rng := rngs[rank]
		if p == 1 {
			// Degenerate width (the data-parallel grid edge): the shard
			// IS the whole parameter — alias it instead of Narrow-copying
			// every weight tensor per replica.
			shards[l] = &weightShard{w: net.Params[l].W, b: net.Params[l].B, rng: rng}
			continue
		}
		shards[l] = &weightShard{
			w:   net.Params[l].W.Narrow(0, rng.Start, rng.Size()),
			b:   net.Params[l].B.Narrow(0, rng.Start, rng.Size()),
			rng: rng,
		}
	}
	return shards, nil
}

// shardGrad returns this PE's output-channel slice of the loss
// gradient — the whole tensor when the group is singleton (the
// data-parallel grid edge), avoiding a full-width Narrow copy.
func shardGrad(dy *tensor.Tensor, sh *weightShard, group *Comm) *tensor.Tensor {
	if group.Size() == 1 {
		return dy
	}
	return dy.Narrow(1, sh.rng.Start, sh.rng.Size())
}

// dataFilterStep runs one SGD iteration of the data×filter grid on this
// group's batch shard x, weighted n_g/B in the global loss. Scaling the
// loss gradient by the weight up front makes every local gradient
// exactly this group's contribution to the full-batch mean gradient, so
// the cross-group exchange is a plain segmented sum. Batch norm, whose
// full activation is replicated within the group, synchronizes across
// the segment — one PE per group covers the global batch exactly once,
// and every segment reduces in the same group order, so all PEs agree
// bit-for-bit.
func dataFilterStep(group, seg *Comm, net *nn.Network, shards []*weightShard, x *tensor.Tensor, labels []int, weight, lr float64) float64 {
	layers := net.Model.Layers
	g := len(layers)
	states := make([]*nn.LayerState, g)
	bnSync := make([]bool, g)
	cur := x
	for l := 0; l < g; l++ {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			states[l] = &nn.LayerState{X: cur}
			cur = group.AllGather(tensor.ConvForward(cur, sh.w, sh.b, cs), 1)
		case spec.Kind == nn.FC:
			n := cur.Dim(0)
			flat := cur.Reshape(n, cur.Len()/n)
			states[l] = &nn.LayerState{X: cur}
			cur = group.AllGather(tensor.FCForward(flat, sh.w, sh.b), 1)
		case spec.Kind == nn.BatchNorm && seg.Size() > 1:
			y, st := syncBNForward(seg, cur, net.Params[l].Gamma, net.Params[l].Beta)
			states[l] = &nn.LayerState{X: cur, BN: st}
			bnSync[l] = true
			cur = y
		default:
			// Channel-wise layers run replicated on the group's full
			// activation and stay bit-identical across the group.
			cur, states[l] = net.ForwardLayer(l, cur)
		}
	}
	loss, dy := tensor.SoftmaxCrossEntropy(cur, labels)
	if weight != 1 {
		dy.Scale(weight)
	}

	grads := make([]nn.Grads, g)
	shardGrads := make([]weightShard, g)
	for l := g - 1; l >= 0; l-- {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xl := states[l].X
			dySh := shardGrad(dy, sh, group)
			dxPart := tensor.ConvBackwardData(dySh, sh.w, xl.Shape(), cs)
			dw, db := tensor.ConvBackwardWeight(dySh, xl, sh.w.Shape(), cs)
			shardGrads[l] = weightShard{w: dw, b: db}
			dy = group.AllReduceSum(dxPart)
		case spec.Kind == nn.FC:
			xl := states[l].X
			n := xl.Dim(0)
			flat := xl.Reshape(n, xl.Len()/n)
			dxPart, dw, db := tensor.FCBackward(shardGrad(dy, sh, group), flat, sh.w, xl.Shape())
			shardGrads[l] = weightShard{w: dw, b: db}
			dy = group.AllReduceSum(dxPart)
		case bnSync[l]:
			dx, dgamma, dbeta := syncBNBackward(seg, dy, net.Params[l].Gamma, states[l].BN)
			grads[l] = nn.Grads{Gamma: dgamma, Beta: dbeta}
			dy = dx
		default:
			dy, grads[l] = net.BackwardLayer(l, dy, states[l])
		}
	}

	// Cross-group gradient exchange (§4.5.1, segmented): every shard
	// gradient is this group's batch-shard contribution to the global
	// mean gradient and sums over the segment; within a group the
	// exchange is free (filter shards are exact for their own filters).
	// No other parameters need traffic: every Conv/FC is sharded, the
	// parameterless layers contribute empty grads, and BN — the only
	// replicated parameterized layer — is segment-synchronized whenever
	// the segment is wider than one, so its gradients are already
	// global. With p1=1 — pure filter — even the segment allreduce
	// degenerates to the identity.
	for l := range shards {
		if shards[l] == nil {
			continue
		}
		shardGrads[l].w = seg.AllReduceSum(shardGrads[l].w)
		shardGrads[l].b = seg.AllReduceSum(shardGrads[l].b)
	}
	net.Step(grads, lr)
	for l := range shards {
		if shards[l] == nil {
			continue
		}
		tensor.SGDStep(shards[l].w, shardGrads[l].w, lr)
		tensor.SGDStep(shards[l].b, shardGrads[l].b, lr)
	}
	return seg.AllReduceScalar(loss * weight)
}

// RunChannel executes channel parallelism (§3.5): every weighted layer's
// input channels are sharded, each PE convolves its channel slice with
// its weight slice, and the partial outputs are summed by Allreduce
// before the bias is applied exactly once. Layers with fewer channels
// than PEs — in practice the first layer, which the paper also leaves
// unsplit (§4.2) — run replicated.
func RunChannel(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: channel parallelism needs p >= 1, got %d", p)
	}
	if mc := m.MinChannels(); p > 1 && p > mc {
		return nil, fmt.Errorf("dist: model %q supports channel width <= min C_l = %d (Table 3), got p=%d", m.Name, mc, p)
	}
	if err := checkBatches(m, batches); err != nil {
		return nil, err
	}
	losses, err := runWorld(p, 0, func(c *Comm) ([]float64, error) {
		net := newReplica(m, seed)
		shards, err := channelShards(net, c.Rank(), p)
		if err != nil {
			return nil, err
		}
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			out = append(out, channelStep(c, net, shards, &batches[bi], lr))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: "channel", P: p, Losses: losses}, nil
}

// channelShards carves rank's input-channel slice of every weighted
// layer wide enough to split; narrower layers keep shards[l] == nil and
// run replicated. FC weights are sliced by channel blocks of the
// flattened input (the layer is the paper's kernel-equals-input
// convolution, so a channel is a contiguous run of vol(In) columns).
func channelShards(net *nn.Network, rank, p int) ([]*weightShard, error) {
	layers := net.Model.Layers
	shards := make([]*weightShard, len(layers))
	if p == 1 {
		return shards, nil // degenerate width: run every layer replicated
	}
	for l := range layers {
		spec := &layers[l]
		if (spec.Kind != nn.Conv && spec.Kind != nn.FC) || spec.C < p {
			continue
		}
		rngs, err := strategy.ChannelShards(spec, p)
		if err != nil {
			return nil, err
		}
		rng := rngs[rank]
		sh := &weightShard{rng: rng}
		switch spec.Kind {
		case nn.Conv:
			sh.w = net.Params[l].W.Narrow(1, rng.Start, rng.Size())
		case nn.FC:
			vol := int(spec.InSize()) / spec.C
			sh.w = net.Params[l].W.Narrow(1, rng.Start*vol, rng.Size()*vol)
		}
		shards[l] = sh
	}
	return shards, nil
}

// channelStep runs one channel-parallel SGD iteration.
func channelStep(c *Comm, net *nn.Network, shards []*weightShard, b *Batch, lr float64) float64 {
	layers := net.Model.Layers
	g := len(layers)
	states := make([]*nn.LayerState, g)
	cur := b.X
	for l := 0; l < g; l++ {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv && sh != nil:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xSh := cur.Narrow(1, sh.rng.Start, sh.rng.Size())
			states[l] = &nn.LayerState{X: xSh}
			y := c.AllReduceSum(tensor.ConvForward(xSh, sh.w, nil, cs))
			tensor.AddBias(y, net.Params[l].B)
			cur = y
		case spec.Kind == nn.FC && sh != nil:
			xSh := cur.Narrow(1, sh.rng.Start, sh.rng.Size())
			n := xSh.Dim(0)
			flat := xSh.Reshape(n, xSh.Len()/n)
			states[l] = &nn.LayerState{X: xSh}
			y := c.AllReduceSum(tensor.FCForward(flat, sh.w, nil))
			tensor.AddBias(y, net.Params[l].B)
			cur = y
		default:
			// Replicated layer (channel-wise, or too narrow to split):
			// full activation, identical on every PE.
			cur, states[l] = net.ForwardLayer(l, cur)
		}
	}
	loss, dy := tensor.SoftmaxCrossEntropy(cur, b.Labels)

	grads := make([]nn.Grads, g)
	shardGrads := make([]weightShard, g)
	for l := g - 1; l >= 0; l-- {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv && sh != nil:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xSh := states[l].X
			dxSh := tensor.ConvBackwardData(dy, sh.w, xSh.Shape(), cs)
			dw, db := tensor.ConvBackwardWeight(dy, xSh, sh.w.Shape(), cs)
			shardGrads[l] = weightShard{w: dw, b: db}
			dy = c.AllGather(dxSh, 1)
		case spec.Kind == nn.FC && sh != nil:
			xSh := states[l].X
			n := xSh.Dim(0)
			flat := xSh.Reshape(n, xSh.Len()/n)
			dxSh, dw, db := tensor.FCBackward(dy, flat, sh.w, xSh.Shape())
			shardGrads[l] = weightShard{w: dw, b: db}
			dy = c.AllGather(dxSh, 1)
		default:
			dy, grads[l] = net.BackwardLayer(l, dy, states[l])
		}
	}

	// Weight-shard gradients are exact (dy was global); the bias
	// gradient Σdy is identical on every PE, so the replicated bias
	// steps in lockstep without any exchange.
	net.Step(grads, lr)
	for l := range shards {
		if shards[l] == nil {
			continue
		}
		tensor.SGDStep(shards[l].w, shardGrads[l].w, lr)
		tensor.SGDStep(net.Params[l].B, shardGrads[l].b, lr)
	}
	return loss
}
