package dist

import (
	"fmt"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// weightShard is one PE's slice of a weighted layer's parameters.
type weightShard struct {
	w, b *tensor.Tensor
	rng  strategy.Range
}

// RunFilter executes filter parallelism (§3.4): every weighted layer's
// output channels (filters) are sharded across the PEs. Each PE holds
// the full input activation, computes its output-channel slice, and the
// slices are Allgathered so the next layer again sees the full tensor.
// Backward, the input gradient is the Allreduced sum of per-shard
// contributions — reduce-scattered instead wherever the layer below
// immediately narrows to its own slice (the paper's footnote-2
// optimization) — while each PE's weight gradients are exact for its
// own filters — no gradient exchange at all, the selling point of the
// strategy in Table 3. It is the p1=1 edge of the data×filter grid.
//
// Deprecated: use Run with Plan{Strategy: core.Filter, P2: p}.
func RunFilter(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.Filter, P2: p}, WithSeed(seed), WithLR(lr))
}

// runDataFilter is the shared engine behind the data (p2=1), filter
// (p1=1), and data+filter registry entries: a p1×p2 grid of
// filter-parallel groups joined by segmented cross-group gradient
// exchange.
func runDataFilter(m *nn.Model, batches []Batch, cfg *runConfig, p1, p2 int, label string) (*Result, error) {
	if err := checkGrid(m, batches, p1, p2, label); err != nil {
		return nil, err
	}
	if mf := m.MinFilters(); p2 > 1 && p2 > mf {
		return nil, fmt.Errorf("dist: model %q supports filter width <= min F_l = %d (Table 3), got %d", m.Name, mf, p2)
	}
	rsOK := scatterableInputGrads(m, p2, cfg)
	losses, err := runGrid(p1, p2, 0, func(world, group, seg *Comm) ([]float64, error) {
		net, err := cfg.replica(m)
		if err != nil {
			return nil, err
		}
		step := newStepper(cfg)
		ex := newGradExchanger(seg, cfg)
		shards, err := filterShards(net, group.Rank(), p2)
		if err != nil {
			return nil, err
		}
		seedFilterVelocities(cfg, step.mom, net, shards)
		tr := cfg.tracer(world.Rank())
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			tr.Iter(cfg.startIter + bi)
			tr.Begin(trace.Idle)
			cfg.maybeFail(world.Rank(), bi)
			x, labels, weight := groupShard(&batches[bi], seg.Rank(), p1)
			loss := dataFilterStep(group, seg, ex, net, shards, rsOK, x, labels, weight, step, tr)
			if world.Rank() == 0 {
				cfg.fire(bi, loss)
			}
			out = append(out, loss)
			if cfg.snapshotDue(bi) {
				tr.Begin(trace.CheckpointPut)
				// Collective within the group (every group holds an
				// identical replica of the canonical state); only the
				// world's result rank emits.
				params, vel := gatherFilterState(group, net, shards, step.mom)
				if world.Rank() == 0 {
					cfg.emit(m.Name, bi, out, params, vel)
				}
				// Checkpoint barrier: no PE may start the next iteration
				// until the snapshot is durable, or a failure injected
				// just past the boundary could abort the world mid-gather
				// and lose the checkpoint recovery should resume from.
				world.AllReduceScalar(0)
			}
		}
		tr.End()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: label, P: p1 * p2, P1: p1, P2: p2, Losses: losses}, nil
}

// scatterableInputGrads marks the sharded layers whose backward input
// gradient may be ReduceScattered instead of Allreduced — the paper's
// footnote-2 filter optimization. It holds for layer l when everything
// between l and the sharded layer below it is element-wise and
// channel-preserving (ReLU), so each PE consumes only its own
// output-channel slice of the gradient: the slice flows through the
// intermediate ReLUs and arrives at the lower layer's shardGrad already
// narrowed, and the chunking (tensor.SplitSizes over the channel axis)
// coincides with strategy.FilterShards by construction. Windowed layers
// (Pool) and segment-synchronized BN need the full-width gradient and
// break the chain.
func scatterableInputGrads(m *nn.Model, p2 int, cfg *runConfig) []bool {
	rsOK := make([]bool, m.G())
	if cfg.arInputGrad || p2 <= 1 {
		return rsOK
	}
	for l := range m.Layers {
		if m.Layers[l].Branch {
			// A merge point's gradient feeds two consumers (the main
			// path and the shortcut) and every tap adds a second
			// gradient stream, so no narrowing chain survives a
			// residual block: branch models keep the full-width
			// allreduce everywhere.
			return rsOK
		}
	}
	prevSharded := false // a sharded layer lies below, with…
	chainOK := false     // …only ReLUs in between
	for l := range m.Layers {
		switch m.Layers[l].Kind {
		case nn.Conv, nn.FC:
			rsOK[l] = prevSharded && chainOK
			prevSharded, chainOK = true, true
		case nn.ReLU:
			// channel-preserving, element-wise: keeps the chain intact
		default:
			chainOK = false
		}
	}
	return rsOK
}

// filterShards carves rank's output-channel slice out of every weighted
// layer of an (identically seeded) full replica. The slices are the
// PE's authoritative parameters from here on; the replica keeps only
// the replicated BN parameters live.
func filterShards(net *nn.Network, rank, p int) ([]*weightShard, error) {
	layers := net.Model.Layers
	shards := make([]*weightShard, len(layers))
	for l := range layers {
		spec := &layers[l]
		if spec.Kind != nn.Conv && spec.Kind != nn.FC {
			continue
		}
		rngs, err := strategy.FilterShards(spec, p)
		if err != nil {
			return nil, err
		}
		rng := rngs[rank]
		if p == 1 {
			// Degenerate width (the data-parallel grid edge): the shard
			// IS the whole parameter — alias it instead of Narrow-copying
			// every weight tensor per replica.
			shards[l] = &weightShard{w: net.Params[l].W, b: net.Params[l].B, rng: rng}
			continue
		}
		shards[l] = &weightShard{
			w:   net.Params[l].W.Narrow(0, rng.Start, rng.Size()),
			b:   net.Params[l].B.Narrow(0, rng.Start, rng.Size()),
			rng: rng,
		}
	}
	return shards, nil
}

// shardGrad returns this PE's output-channel slice of the loss
// gradient — the whole tensor when the group is singleton (the
// data-parallel grid edge), avoiding a full-width Narrow copy.
func shardGrad(dy *tensor.Tensor, sh *weightShard, group *Comm) *tensor.Tensor {
	if group.Size() == 1 {
		return dy
	}
	return dy.Narrow(1, sh.rng.Start, sh.rng.Size())
}

// dataFilterStep runs one SGD iteration of the data×filter grid on this
// group's batch shard x, weighted n_g/B in the global loss. Scaling the
// loss gradient by the weight up front makes every local gradient
// exactly this group's contribution to the full-batch mean gradient, so
// the cross-group exchange is a plain segmented sum. Batch norm, whose
// full activation is replicated within the group, synchronizes across
// the segment — one PE per group covers the global batch exactly once,
// and every segment reduces in the same group order, so all PEs agree
// bit-for-bit.
//
// Backward, the input gradient is Allreduced to full width — except at
// the rsOK layers, where it is ReduceScattered so each PE receives only
// its own channel slice (footnote 2): the slice rides through the
// intermediate ReLUs (sliced against the matching slice of their stored
// input) and is consumed by the sharded layer below without ever
// materializing the full tensor.
//
// The cross-group exchange is bucketed (ex): each sharded layer's
// weight/bias gradients are pushed the moment its backward completes,
// so with overlap on the segment allreduce of layer l hides behind the
// backward compute of the layers below it.
func dataFilterStep(group, seg *Comm, ex *gradExchanger, net *nn.Network, shards []*weightShard, rsOK []bool, x *tensor.Tensor, labels []int, weight float64, step *stepper, tr *trace.PE) float64 {
	layers := net.Model.Layers
	gph := net.Graph()
	g := len(layers)
	states := make([]*nn.LayerState, g)
	bnSync := make([]bool, g)
	tr.Begin(trace.ComputeForward)
	cur := gph.ForwardRange(0, g, x, func(l int, xin *tensor.Tensor) *tensor.Tensor {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv:
			// Shortcut convolutions shard exactly like main-path ones:
			// the graph walk routes xin from the tap and merges the
			// allgathered output into the main path.
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			states[l] = &nn.LayerState{X: xin}
			y := tensor.ConvForward(xin, sh.w, sh.b, cs)
			tr.Begin(trace.CollectiveWait)
			out := group.AllGather(y, 1)
			tr.Begin(trace.ComputeForward)
			return out
		case spec.Kind == nn.FC:
			n := xin.Dim(0)
			flat := xin.Reshape(n, xin.Len()/n)
			states[l] = &nn.LayerState{X: xin}
			y := tensor.FCForward(flat, sh.w, sh.b)
			tr.Begin(trace.CollectiveWait)
			out := group.AllGather(y, 1)
			tr.Begin(trace.ComputeForward)
			return out
		case spec.Kind == nn.BatchNorm && seg.Size() > 1:
			tr.Begin(trace.BNSync)
			y, st := syncBNForward(seg, xin, net.Params[l].Gamma, net.Params[l].Beta)
			tr.Begin(trace.ComputeForward)
			states[l] = &nn.LayerState{X: xin, BN: st}
			bnSync[l] = true
			return y
		default:
			// Channel-wise layers run replicated on the group's full
			// activation and stay bit-identical across the group.
			y, st := net.ForwardLayer(l, xin)
			states[l] = st
			return y
		}
	})
	loss, dy := tensor.SoftmaxCrossEntropy(cur, labels)
	if weight != 1 {
		dy.Scale(weight)
	}
	tr.Begin(trace.ComputeBackward)

	grads := make([]nn.Grads, g)
	shardGrads := make([]weightShard, g)
	dySliced := false // the main-path gradient holds only this PE's channel slice
	gph.BackwardRange(0, g, dy, func(l int, dy *tensor.Tensor) *tensor.Tensor {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xl := states[l].X
			dySh := dy
			if !dySliced {
				dySh = shardGrad(dy, sh, group)
			}
			dw, db := tensor.ConvBackwardWeight(dySh, xl, sh.w.Shape(), cs)
			shardGrads[l] = weightShard{w: dw, b: db}
			if ex != nil {
				ex.push(dw, db)
			}
			if gph.Src(l) < 0 {
				// No consumer for the input gradient — the bottom layer,
				// or a shortcut tapping the network input: skip the data
				// backward and its group-wide exchange.
				return nil
			}
			dxPart := tensor.ConvBackwardData(dySh, sh.w, xl.Shape(), cs)
			tr.Begin(trace.CollectiveWait)
			out, sliced := exchangeInputGrad(group, dxPart, rsOK[l])
			tr.Begin(trace.ComputeBackward)
			if !spec.Branch {
				dySliced = sliced
			}
			return out
		case spec.Kind == nn.FC:
			xl := states[l].X
			n := xl.Dim(0)
			flat := xl.Reshape(n, xl.Len()/n)
			dySh := dy
			if !dySliced {
				dySh = shardGrad(dy, sh, group)
			}
			dxPart, dw, db := tensor.FCBackward(dySh, flat, sh.w, xl.Shape())
			shardGrads[l] = weightShard{w: dw, b: db}
			if ex != nil {
				ex.push(dw, db)
			}
			if gph.Src(l) < 0 {
				return nil
			}
			tr.Begin(trace.CollectiveWait)
			out, sliced := exchangeInputGrad(group, dxPart, rsOK[l])
			tr.Begin(trace.ComputeBackward)
			dySliced = sliced
			return out
		case bnSync[l]:
			tr.Begin(trace.BNSync)
			dx, dgamma, dbeta := syncBNBackward(seg, dy, net.Params[l].Gamma, states[l].BN)
			tr.Begin(trace.ComputeBackward)
			grads[l] = nn.Grads{Gamma: dgamma, Beta: dbeta}
			return dx
		case dySliced:
			// Only ReLU can sit inside a reduce-scatter chain
			// (scatterableInputGrads): backpropagate the slice against
			// the matching channel slice of the stored input.
			if spec.Kind != nn.ReLU {
				panic(fmt.Sprintf("dist: layer %d (%v) reached with a sliced gradient; scatterableInputGrads admitted a non-ReLU chain", l, spec.Kind))
			}
			return tensor.ReLUBackward(dy, channelChunk(states[l].X, group))
		default:
			dx, gr := net.BackwardLayer(l, dy, states[l])
			grads[l] = gr
			return dx
		}
	})

	// Cross-group gradient exchange (§4.5.1, segmented): every shard
	// gradient is this group's batch-shard contribution to the global
	// mean gradient and sums over the segment, in the size-bounded
	// buckets pushed above as each layer's backward completed — drain is
	// the barrier that synchronizes every in-flight bucket before the
	// optimizer step. Within a group the exchange is free (filter shards
	// are exact for their own filters). No other parameters need
	// traffic: every Conv/FC is sharded, the parameterless layers
	// contribute empty grads, and BN — the only replicated parameterized
	// layer — is segment-synchronized whenever the segment is wider than
	// one, so its gradients are already global. With p1=1 — pure filter
	// — the segment is singleton and ex is nil: no exchange at all.
	if ex != nil {
		ex.drain()
	}
	step.stepNet(net, grads)
	for l := range shards {
		if shards[l] == nil {
			continue
		}
		step.step(shards[l].w, shardGrads[l].w)
		step.step(shards[l].b, shardGrads[l].b)
	}
	tr.Begin(trace.CollectiveWait)
	global := seg.AllReduceScalar(loss * weight)
	tr.Begin(trace.ComputeBackward)
	return global
}

// exchangeInputGrad performs the group-wide input-gradient exchange of
// one sharded layer's backward pass: a full-width Allreduce by default,
// or — when the footnote-2 precondition holds for this layer — a
// ReduceScatter along the channel axis that leaves each PE exactly the
// slice the layer below will consume. Both take ownership of dxPart.
func exchangeInputGrad(group *Comm, dxPart *tensor.Tensor, rs bool) (*tensor.Tensor, bool) {
	if rs && group.Size() > 1 {
		return group.ReduceScatterSum(dxPart, 1), true
	}
	return group.AllReduceSum(dxPart), false
}

// channelChunk returns this rank's canonical chunk of x along the
// channel axis — the region a ReduceScattered gradient corresponds to.
func channelChunk(x *tensor.Tensor, group *Comm) *tensor.Tensor {
	p, r := group.Size(), group.Rank()
	off := tensor.SplitOffsets(x.Dim(1), p)[r]
	return x.Narrow(1, off, tensor.SplitSizes(x.Dim(1), p)[r])
}

// RunChannel executes channel parallelism (§3.5): every weighted layer's
// input channels are sharded, each PE convolves its channel slice with
// its weight slice, and the partial outputs are summed by Allreduce
// before the bias is applied exactly once. Layers with fewer channels
// than PEs — in practice the first layer, which the paper also leaves
// unsplit (§4.2) — run replicated.
//
// Deprecated: use Run with Plan{Strategy: core.Channel, P2: p}.
func RunChannel(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.Channel, P2: p}, WithSeed(seed), WithLR(lr))
}

// runChannel is the channel-parallel engine behind the registry, which
// guarantees p >= 1 via Plan.Validate.
func runChannel(m *nn.Model, batches []Batch, cfg *runConfig, p int) (*Result, error) {
	if mc := m.MinChannels(); p > 1 && p > mc {
		return nil, fmt.Errorf("dist: model %q supports channel width <= min C_l = %d (Table 3), got p=%d", m.Name, mc, p)
	}
	if err := checkBatches(m, batches); err != nil {
		return nil, err
	}
	losses, err := runWorld(p, 0, func(c *Comm) ([]float64, error) {
		net, err := cfg.replica(m)
		if err != nil {
			return nil, err
		}
		step := newStepper(cfg)
		shards, err := channelShards(net, c.Rank(), p)
		if err != nil {
			return nil, err
		}
		seedChannelVelocities(cfg, step.mom, net, shards)
		tr := cfg.tracer(c.Rank())
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			tr.Iter(cfg.startIter + bi)
			tr.Begin(trace.Idle)
			cfg.maybeFail(c.Rank(), bi)
			loss := channelStep(c, net, shards, &batches[bi], step, tr)
			if c.Rank() == 0 {
				cfg.fire(bi, loss)
			}
			out = append(out, loss)
			if cfg.snapshotDue(bi) {
				tr.Begin(trace.CheckpointPut)
				params, vel := gatherChannelState(c, net, shards, step.mom)
				if c.Rank() == 0 {
					cfg.emit(m.Name, bi, out, params, vel)
				}
				// Checkpoint barrier — see runDataFilter.
				c.AllReduceScalar(0)
			}
		}
		tr.End()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: "channel", P: p, P1: 1, P2: p, Losses: losses}, nil
}

// channelShards carves rank's input-channel slice of every weighted
// layer wide enough to split; narrower layers keep shards[l] == nil and
// run replicated. FC weights are sliced by channel blocks of the
// flattened input (the layer is the paper's kernel-equals-input
// convolution, so a channel is a contiguous run of vol(In) columns).
func channelShards(net *nn.Network, rank, p int) ([]*weightShard, error) {
	layers := net.Model.Layers
	shards := make([]*weightShard, len(layers))
	if p == 1 {
		return shards, nil // degenerate width: run every layer replicated
	}
	for l := range layers {
		spec := &layers[l]
		if (spec.Kind != nn.Conv && spec.Kind != nn.FC) || spec.C < p {
			continue
		}
		rngs, err := strategy.ChannelShards(spec, p)
		if err != nil {
			return nil, err
		}
		rng := rngs[rank]
		sh := &weightShard{rng: rng}
		switch spec.Kind {
		case nn.Conv:
			sh.w = net.Params[l].W.Narrow(1, rng.Start, rng.Size())
		case nn.FC:
			vol := int(spec.InSize()) / spec.C
			sh.w = net.Params[l].W.Narrow(1, rng.Start*vol, rng.Size()*vol)
		}
		shards[l] = sh
	}
	return shards, nil
}

// channelStep runs one channel-parallel SGD iteration. The graph walk
// routes shortcut convolutions from their taps and merges their output
// into the main path; a sharded shortcut convolves its input-channel
// slice of the tap activation like any other sharded layer.
func channelStep(c *Comm, net *nn.Network, shards []*weightShard, b *Batch, step *stepper, tr *trace.PE) float64 {
	layers := net.Model.Layers
	gph := net.Graph()
	g := len(layers)
	states := make([]*nn.LayerState, g)
	tr.Begin(trace.ComputeForward)
	cur := gph.ForwardRange(0, g, b.X, func(l int, xin *tensor.Tensor) *tensor.Tensor {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv && sh != nil:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xSh := xin.Narrow(1, sh.rng.Start, sh.rng.Size())
			states[l] = &nn.LayerState{X: xSh}
			part := tensor.ConvForward(xSh, sh.w, nil, cs)
			tr.Begin(trace.CollectiveWait)
			y := c.AllReduceSum(part)
			tr.Begin(trace.ComputeForward)
			tensor.AddBias(y, net.Params[l].B)
			return y
		case spec.Kind == nn.FC && sh != nil:
			xSh := xin.Narrow(1, sh.rng.Start, sh.rng.Size())
			n := xSh.Dim(0)
			flat := xSh.Reshape(n, xSh.Len()/n)
			states[l] = &nn.LayerState{X: xSh}
			part := tensor.FCForward(flat, sh.w, nil)
			tr.Begin(trace.CollectiveWait)
			y := c.AllReduceSum(part)
			tr.Begin(trace.ComputeForward)
			tensor.AddBias(y, net.Params[l].B)
			return y
		default:
			// Replicated layer (channel-wise, or too narrow to split):
			// full activation, identical on every PE.
			y, st := net.ForwardLayer(l, xin)
			states[l] = st
			return y
		}
	})
	loss, dy := tensor.SoftmaxCrossEntropy(cur, b.Labels)
	tr.Begin(trace.ComputeBackward)

	grads := make([]nn.Grads, g)
	shardGrads := make([]weightShard, g)
	gph.BackwardRange(0, g, dy, func(l int, dy *tensor.Tensor) *tensor.Tensor {
		spec := &layers[l]
		sh := shards[l]
		switch {
		case spec.Kind == nn.Conv && sh != nil:
			cs := tensor.ConvSpec{Stride: spec.Stride, Pad: spec.Pad}
			xSh := states[l].X
			dxSh := tensor.ConvBackwardData(dy, sh.w, xSh.Shape(), cs)
			dw, db := tensor.ConvBackwardWeight(dy, xSh, sh.w.Shape(), cs)
			shardGrads[l] = weightShard{w: dw, b: db}
			tr.Begin(trace.CollectiveWait)
			out := c.AllGather(dxSh, 1)
			tr.Begin(trace.ComputeBackward)
			return out
		case spec.Kind == nn.FC && sh != nil:
			xSh := states[l].X
			n := xSh.Dim(0)
			flat := xSh.Reshape(n, xSh.Len()/n)
			dxSh, dw, db := tensor.FCBackward(dy, flat, sh.w, xSh.Shape())
			shardGrads[l] = weightShard{w: dw, b: db}
			tr.Begin(trace.CollectiveWait)
			out := c.AllGather(dxSh, 1)
			tr.Begin(trace.ComputeBackward)
			return out
		default:
			dx, gr := net.BackwardLayer(l, dy, states[l])
			grads[l] = gr
			return dx
		}
	})

	// Weight-shard gradients are exact (dy was global); the bias
	// gradient Σdy is identical on every PE, so the replicated bias
	// steps in lockstep without any exchange.
	step.stepNet(net, grads)
	for l := range shards {
		if shards[l] == nil {
			continue
		}
		step.step(shards[l].w, shardGrads[l].w)
		step.step(net.Params[l].B, shardGrads[l].b)
	}
	return loss
}
