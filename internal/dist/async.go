package dist

import (
	"fmt"

	"paradl/internal/tensor"
)

// This file is the nonblocking collective layer: IAllReduceSum,
// IReduceScatterSum and IAllGather launch the SAME deterministic
// ring/tree/two-tree algorithms as their blocking counterparts on a
// per-operation worker goroutine and return a Handle immediately, so
// gradient exchange can overlap the backward compute that follows it
// (the DDP-style bucketing of overlap.go). Isolation comes from mailbox
// streams: every launched operation derives a private (comm key, seq)
// stream for its traffic, so in-flight operations can never interleave
// with each other or with the program-ordered blocking traffic on the
// base stream. Because the algorithms and their association orders are
// untouched, an overlapped result is bit-identical to the blocking one
// — the property the determinism suite pins.

// Handle is the completion token of one nonblocking collective on one
// PE. It is owned by the goroutine that launched it (it is not safe for
// concurrent use), must be Waited exactly once before the PE finishes —
// runWorld fails the world with a clear error if a PE drops a handle
// without Wait, since that means the result was never synchronized —
// and Wait returns the collective's result exactly as the blocking call
// would have. A second Wait is a no-op returning the same tensor.
//
// Launches and Waits are communicator program order, like every other
// collective call: all members of a communicator must launch AND wait
// its operations in the same order (waiting h2 before h1 on one PE but
// h1 before h2 on another diverges the stream recycling and mismatches
// messages, exactly like issuing blocking collectives out of order).
type Handle struct {
	c      *Comm
	stream string
	done   chan struct{}
	res    *tensor.Tensor
	pan    any
	waited bool
}

// Wait blocks until the collective completes and returns its result —
// the tensor the blocking counterpart would have returned. The caller
// must use only the returned tensor (the launch took ownership of the
// input). If the operation failed, Wait re-panics the failure on the
// waiting PE so it is accounted to that PE like a blocking collective's
// failure. Waiting an already-waited handle returns the same result
// without blocking.
func (h *Handle) Wait() *tensor.Tensor {
	if h.waited {
		return h.res
	}
	<-h.done
	h.waited = true
	if h.c != nil {
		h.c.w.pending[h.c.worldRank(h.c.rank)].Add(-1)
		// The worker is done on this PE: its stream id may be recycled.
		// Peers still mid-operation are safe because each PE orders its
		// own sends/recvs of the old and any future use of the stream
		// through its own Wait, and mailboxes are FIFO.
		h.c.free = append(h.c.free, h.stream)
	}
	if h.pan != nil {
		panic(h.pan)
	}
	return h.res
}

// doneHandle wraps an already-available result (singleton communicators
// and other degenerate widths) — no goroutine, no pending accounting.
func doneHandle(t *tensor.Tensor) *Handle {
	done := make(chan struct{})
	close(done)
	return &Handle{done: done, res: t, waited: true}
}

// launch starts fn on a worker goroutine speaking over this operation's
// private mailbox stream — a recycled id from an already-Waited
// operation when one is free, a freshly minted one otherwise. Under the
// SPMD discipline every member of the communicator launches and waits
// its nonblocking operations in the same program order, so the stream
// ids agree across PEs and the workers pair up without negotiation. A
// panic inside the worker (a world abort, a shape error) is captured
// and re-thrown by Wait.
func (c *Comm) launch(fn func(op *Comm) *tensor.Tensor) *Handle {
	var stream string
	if n := len(c.free); n > 0 {
		stream = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		stream = fmt.Sprintf("nb:%s#%d", c.key, c.nseq)
		c.nseq++
	}
	op := c.withStream(stream)
	c.w.pending[c.worldRank(c.rank)].Add(1)
	h := &Handle{c: c, stream: stream, done: make(chan struct{})}
	go func() {
		defer close(h.done)
		defer func() {
			if r := recover(); r != nil {
				h.pan = r
			}
		}()
		h.res = fn(op)
	}()
	return h
}

// IAllReduceSum is the nonblocking AllReduceSum: it takes ownership of
// t, starts the same size-switched ring/two-tree/binomial algorithm on
// a worker goroutine, and returns immediately. Handle.Wait yields the
// sum, bit-identical to the blocking call's.
func (c *Comm) IAllReduceSum(t *tensor.Tensor) *Handle {
	if c.Size() == 1 {
		return doneHandle(t)
	}
	return c.launch(func(op *Comm) *tensor.Tensor { return op.AllReduceSum(t) })
}

// IReduceScatterSum is the nonblocking ReduceScatterSum: Handle.Wait
// yields this rank's canonical chunk of the sum along axis.
func (c *Comm) IReduceScatterSum(t *tensor.Tensor, axis int) *Handle {
	if c.Size() == 1 {
		return doneHandle(t)
	}
	return c.launch(func(op *Comm) *tensor.Tensor { return op.ReduceScatterSum(t, axis) })
}

// IAllGather is the nonblocking AllGather: Handle.Wait yields the
// rank-ordered concatenation along axis.
func (c *Comm) IAllGather(t *tensor.Tensor, axis int) *Handle {
	if c.Size() == 1 {
		return doneHandle(t)
	}
	return c.launch(func(op *Comm) *tensor.Tensor { return op.AllGather(t, axis) })
}
