package dist

import (
	"paradl/internal/core"
	"paradl/internal/nn"
)

// RunData executes data parallelism (§3.1): p full replicas, each
// training on a contiguous shard of every batch. Replicas exchange
// gradients by Allreduce after the backward pass and take identical SGD
// steps, so they stay bit-synchronized. Batch normalization is
// synchronized (global statistics) so runs match the sequential
// baseline even on BN models — the paper's framework comparison point
// of §4.5.2. It is the p2=1 edge of the data×filter grid: groups of
// one, so every filter shard spans its whole layer and the segmented
// cross-group exchange is the classic gradient allreduce.
//
// Deprecated: use Run with Plan{Strategy: core.Data, P1: p}.
func RunData(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.Data, P1: p}, WithSeed(seed), WithLR(lr))
}
