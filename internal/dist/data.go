package dist

import (
	"fmt"

	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
)

// RunData executes data parallelism (§3.1): p full replicas, each
// training on a contiguous shard of every batch. Replicas exchange
// gradients by Allreduce after the backward pass and take identical SGD
// steps, so they stay bit-synchronized. Batch normalization is
// synchronized (global statistics) so runs match the sequential
// baseline even on BN models — the paper's framework comparison point
// of §4.5.2.
func RunData(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: data parallelism needs p >= 1, got %d", p)
	}
	if err := checkBatches(m, batches); err != nil {
		return nil, err
	}
	for i := range batches {
		if _, err := strategy.MicroBatches(batches[i].X.Dim(0), p); err != nil {
			return nil, fmt.Errorf("dist: batch %d: %w", i, err)
		}
	}
	losses, err := runWorld(p, 0, func(c *Comm) ([]float64, error) {
		net := newReplica(m, seed)
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			b := &batches[bi]
			total := b.X.Dim(0)
			sizes, err := strategy.MicroBatches(total, p)
			if err != nil {
				return nil, err
			}
			off := 0
			for r := 0; r < c.Rank(); r++ {
				off += sizes[r]
			}
			n := sizes[c.Rank()]
			x := b.X.Narrow(0, off, n)
			labels := b.Labels[off : off+n]
			weight := float64(n) / float64(total)
			loss := replicaStep(c, net, x, labels, weight, lr)
			out = append(out, c.AllReduceScalar(loss*weight))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: "data", P: p, Losses: losses}, nil
}

// replicaStep runs one data-parallel SGD iteration on this PE's batch
// shard. Scaling the loss gradient by n_local/B up front makes every
// downstream local gradient exactly this shard's contribution to the
// full-batch mean gradient, so the exchange is a plain sum.
func replicaStep(c *Comm, net *nn.Network, x *tensor.Tensor, labels []int, dlScale, lr float64) float64 {
	layers := net.Model.Layers
	states := make([]*nn.LayerState, len(layers))
	bnSync := make([]bool, len(layers))
	cur := x
	for l := range layers {
		if layers[l].Kind == nn.BatchNorm && c.Size() > 1 {
			y, st := syncBNForward(c, cur, net.Params[l].Gamma, net.Params[l].Beta)
			states[l] = &nn.LayerState{X: cur, BN: st}
			bnSync[l] = true
			cur = y
			continue
		}
		cur, states[l] = net.ForwardLayer(l, cur)
	}
	loss, dy := tensor.SoftmaxCrossEntropy(cur, labels)
	dy.Scale(dlScale)

	grads := make([]nn.Grads, len(layers))
	for l := len(layers) - 1; l >= 0; l-- {
		if bnSync[l] {
			dx, dgamma, dbeta := syncBNBackward(c, dy, net.Params[l].Gamma, states[l].BN)
			grads[l] = nn.Grads{Gamma: dgamma, Beta: dbeta}
			dy = dx
			continue
		}
		dy, grads[l] = net.BackwardLayer(l, dy, states[l])
	}

	// Gradient exchange: every partial sum becomes the global mean
	// gradient. Synchronized-BN gamma/beta gradients are already global
	// (syncBNBackward Allreduced their channel sums) and are skipped.
	for l := range grads {
		if bnSync[l] {
			continue
		}
		g := &grads[l]
		if g.W != nil {
			g.W = c.AllReduceSum(g.W)
		}
		if g.B != nil {
			g.B = c.AllReduceSum(g.B)
		}
		if g.Gamma != nil {
			g.Gamma = c.AllReduceSum(g.Gamma)
		}
		if g.Beta != nil {
			g.Beta = c.AllReduceSum(g.Beta)
		}
	}
	net.Step(grads, lr)
	return loss
}
