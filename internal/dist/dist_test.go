// Value-parity tests: the §4.5.2 methodology. Every partitioned run
// must reproduce the sequential baseline's per-iteration losses within
// 1e-6 (in practice the runs agree to ~1e-12; the tolerance absorbs
// summation reassociation across PEs).
package dist_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

const (
	seed = 42
	lr   = 0.05
	tol  = 1e-6
)

func toyBatches(t *testing.T, m *nn.Model, iters, size int) []dist.Batch {
	t.Helper()
	ds := data.Toy(m, int64(iters*size))
	return ds.Batches(iters, size)
}

func assertParity(t *testing.T, want *dist.Result, got *dist.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("%s: %d losses, want %d", got.Strategy, len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if d := math.Abs(got.Losses[i] - want.Losses[i]); d > tol || math.IsNaN(d) {
			t.Fatalf("%s p=%d iter %d: loss %.12f vs sequential %.12f (Δ %.3e > %g)",
				got.Strategy, got.P, i, got.Losses[i], want.Losses[i], d, tol)
		}
	}
}

// TestSpatialMatchesSequentialTiny3D is the acceptance criterion of the
// runtime: 3-D spatial decomposition over 2 PEs reproduces sequential
// SGD losses on Tiny3D over 4 iterations.
func TestSpatialMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

func TestDataMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

// TestAllStrategiesMatchSequential runs every §3 strategy at p=2 on the
// BN-free tiny CNN (pipeline microbatching legitimately changes BN
// statistics) and demands value parity across 4 iterations.
func TestAllStrategiesMatchSequential(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data":     dist.RunData,
		"spatial":  dist.RunSpatial,
		"filter":   dist.RunFilter,
		"channel":  dist.RunChannel,
		"pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertParity(t, seq, got, err)
	}
}

// TestSyncBNParity: with synchronized batch norm, data- and
// spatial-parallel runs match sequential SGD even on a BN model —
// the global-statistics semantics of §4.5.2.
func TestSyncBNParity(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 3, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, gotData, err)
	gotSpatial, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, gotSpatial, err)
}

// TestHybridsMatchSequential is the §3.6 acceptance criterion: both
// hybrids on a 2×2 grid reproduce sequential SGD on the BN-free CNN and
// the 3-D (CosmoFlow-like) model over 4 iterations.
func TestHybridsMatchSequential(t *testing.T) {
	for _, m := range []*nn.Model{model.TinyCNNNoBN(), model.Tiny3D()} {
		batches := toyBatches(t, m, 4, 4)
		seq := dist.RunSequential(m, seed, batches, lr)
		df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 2)
		assertParity(t, seq, df, err)
		ds, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 2)
		assertParity(t, seq, ds, err)
		if df.P != 4 || df.P1 != 2 || df.P2 != 2 {
			t.Fatalf("%s: df grid %d=%d×%d, want 4=2×2", m.Name, df.P, df.P1, df.P2)
		}
	}
}

// TestHybridSyncBNParity: hybrids synchronize batch norm over the
// correct cover — segments for data+filter (one PE per group spans the
// global batch), the world for data+spatial — so even BN models match
// the sequential baseline.
func TestHybridSyncBNParity(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 3, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 2)
	assertParity(t, seq, df, err)
	ds, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 2)
	assertParity(t, seq, ds, err)
}

// TestHybridDegenerateEdges: the pure strategies are the p1=1 / p2=1
// edges of the grid and must agree with the hybrid entry points
// bit-for-bit. Today the pure runners delegate to the grid engines, so
// this is a determinism check plus a delegation canary — it becomes
// load-bearing the day a pure runner is specialized (e.g. for
// performance) and starts drifting from its grid edge.
func TestHybridDegenerateEdges(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	type edge struct {
		name       string
		hybrid     *dist.Result
		pure       *dist.Result
		hErr, pErr error
	}
	df21, e1 := dist.RunDataFilter(m, seed, batches, lr, 2, 1)
	data2, e2 := dist.RunData(m, seed, batches, lr, 2)
	df12, e3 := dist.RunDataFilter(m, seed, batches, lr, 1, 2)
	filter2, e4 := dist.RunFilter(m, seed, batches, lr, 2)
	ds12, e5 := dist.RunDataSpatial(m, seed, batches, lr, 1, 2)
	spatial2, e6 := dist.RunSpatial(m, seed, batches, lr, 2)
	for _, e := range []edge{
		{"df(2,1)=data(2)", df21, data2, e1, e2},
		{"df(1,2)=filter(2)", df12, filter2, e3, e4},
		{"ds(1,2)=spatial(2)", ds12, spatial2, e5, e6},
	} {
		if e.hErr != nil || e.pErr != nil {
			t.Fatalf("%s: %v / %v", e.name, e.hErr, e.pErr)
		}
		for i := range e.pure.Losses {
			if e.hybrid.Losses[i] != e.pure.Losses[i] {
				t.Fatalf("%s iter %d: %.17g != %.17g", e.name, i, e.hybrid.Losses[i], e.pure.Losses[i])
			}
		}
	}
}

// TestHybridUnevenGrid: remainder-bearing shards on both grid axes —
// p1 not dividing the batch and p2 not dividing every filter count.
func TestHybridUnevenGrid(t *testing.T) {
	m := model.Tiny3D() // min F_l = 4, filters 4 and 8: p2=3 is uneven
	batches := toyBatches(t, m, 3, 5)
	seq := dist.RunSequential(m, seed, batches, lr)
	df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 3) // batch 5 → 3,2
	assertParity(t, seq, df, err)
	ds, err := dist.RunDataSpatial(m, seed, batches, lr, 3, 2) // batch 5 → 2,2,1
	assertParity(t, seq, ds, err)

	// Synchronized BN over UNEVEN group shards: the count-weighted
	// statistics and n_g/B-scaled gradients must still combine to the
	// sequential arithmetic when the shards differ in size.
	bn := model.TinyCNN()
	bnBatches := toyBatches(t, bn, 3, 5) // batch 5 over 2 groups → 3,2
	bnSeq := dist.RunSequential(bn, seed, bnBatches, lr)
	bnDf, err := dist.RunDataFilter(bn, seed, bnBatches, lr, 2, 2)
	assertParity(t, bnSeq, bnDf, err)
	bnDs, err := dist.RunDataSpatial(bn, seed, bnBatches, lr, 2, 2)
	assertParity(t, bnSeq, bnDs, err)
}

// TestHybridScalingLimits: the Table 3 bounds hold per grid axis.
func TestHybridScalingLimits(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.RunDataFilter(m, seed, batches, lr, 3, 2); err == nil {
		t.Fatal("df: batch 2 over 3 groups must fail")
	}
	if _, err := dist.RunDataFilter(m, seed, batches, lr, 2, 5); err == nil {
		t.Fatal("df: p2=5 > min F_l=4 must fail")
	}
	if _, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 3); err == nil {
		t.Fatal("ds: extent-2 activation over 3 slabs must fail")
	}
	if _, err := dist.RunDataSpatial(m, seed, batches, lr, 0, 2); err == nil {
		t.Fatal("ds: p1=0 must fail")
	}
}

// TestUnevenPartitions exercises remainder-bearing shards (p that does
// not divide the batch, filter counts, or layer count).
func TestUnevenPartitions(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4) // batch 4 over 3 replicas → 2,1,1
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 3)
	assertParity(t, seq, gotData, err)
	gotFilter, err := dist.RunFilter(m, seed, batches, lr, 3) // min F_l = 4
	assertParity(t, seq, gotFilter, err)
	gotPipe, err := dist.RunPipeline(m, seed, batches, lr, 3) // 5 layers over 3 stages
	assertParity(t, seq, gotPipe, err)
}

// TestWidthOne: every strategy at p=1 degenerates to the sequential
// baseline exactly.
func TestWidthOne(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 2, 2)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data": dist.RunData, "spatial": dist.RunSpatial, "filter": dist.RunFilter,
		"channel": dist.RunChannel, "pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range seq.Losses {
			if got.Losses[i] != seq.Losses[i] {
				t.Fatalf("%s p=1 iter %d: %.17g != sequential %.17g", name, i, got.Losses[i], seq.Losses[i])
			}
		}
	}
}

// TestDeterminism: two identical partitioned runs produce bit-identical
// loss series despite goroutine scheduling.
func TestDeterminism(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	a, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("iter %d: %.17g != %.17g", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestScalingLimits: the Table 3 feasibility bounds surface as errors,
// not panics or wrong numbers.
func TestScalingLimits(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.RunData(m, seed, batches, lr, 3); err == nil {
		t.Fatal("data: batch 2 over 3 replicas must fail")
	}
	if _, err := dist.RunSpatial(m, seed, batches, lr, 3); err == nil {
		t.Fatal("spatial: extent-2 activation over 3 PEs must fail")
	}
	if _, err := dist.RunFilter(m, seed, batches, lr, 5); err == nil {
		t.Fatal("filter: p=5 > min F_l=4 must fail")
	}
	if _, err := dist.RunChannel(m, seed, batches, lr, 5); err == nil {
		t.Fatal("channel: p=5 > min C_l=4 must fail")
	}
	if _, err := dist.RunPipeline(m, seed, batches, lr, 8); err == nil {
		t.Fatal("pipeline: 8 stages for 7 layers must fail")
	}
	if _, err := dist.RunData(m, seed, batches, lr, 0); err == nil {
		t.Fatal("p=0 must fail")
	}
}

// TestBatchValidation: malformed batches are rejected before any PE
// spawns.
func TestBatchValidation(t *testing.T) {
	m := model.Tiny3D()
	good := toyBatches(t, m, 1, 2)
	bad := []dist.Batch{{X: good[0].X, Labels: []int{0}}}
	if _, err := dist.RunData(m, seed, bad, lr, 2); err == nil {
		t.Fatal("label/sample mismatch must fail")
	}
	other := model.TinyCNN()
	if _, err := dist.RunSpatial(other, seed, good, lr, 2); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
}

// TestBranchModelsRejected: ResNet shortcut (Branch) layers have no
// chain-execution semantics; the runtime must refuse them with a clear
// error rather than panicking deep inside a conv kernel.
func TestBranchModelsRejected(t *testing.T) {
	m := model.ResNet50()
	x := data.ImageNet().Batch(0, 1)
	if _, err := dist.RunData(m, seed, []dist.Batch{x}, lr, 1); err == nil ||
		!strings.Contains(err.Error(), "branch") {
		t.Fatalf("branch model must be rejected with a branch error, got %v", err)
	}
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(fmt.Sprint(rec), "branch") {
			t.Fatalf("RunSequential must panic with a branch error, got %v", rec)
		}
	}()
	dist.RunSequential(m, seed, []dist.Batch{x}, lr)
}
