// Value-parity tests: the §4.5.2 methodology. Every partitioned run
// must reproduce the sequential baseline's per-iteration losses within
// 1e-6 (in practice the runs agree to ~1e-12; the tolerance absorbs
// summation reassociation across PEs).
package dist_test

import (
	"math"
	"strings"
	"testing"

	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

const (
	seed = 42
	lr   = 0.05
	tol  = 1e-6
)

func toyBatches(t *testing.T, m *nn.Model, iters, size int) []dist.Batch {
	t.Helper()
	ds := data.Toy(m, int64(iters*size))
	return ds.Batches(iters, size)
}

func assertParity(t *testing.T, want *dist.Result, got *dist.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("%s: %d losses, want %d", got.Strategy, len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if d := math.Abs(got.Losses[i] - want.Losses[i]); d > tol || math.IsNaN(d) {
			t.Fatalf("%s p=%d iter %d: loss %.12f vs sequential %.12f (Δ %.3e > %g)",
				got.Strategy, got.P, i, got.Losses[i], want.Losses[i], d, tol)
		}
	}
}

// TestSpatialMatchesSequentialTiny3D is the acceptance criterion of the
// runtime: 3-D spatial decomposition over 2 PEs reproduces sequential
// SGD losses on Tiny3D over 4 iterations.
func TestSpatialMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

func TestDataMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

// TestAllStrategiesMatchSequential runs every §3 strategy at p=2 on the
// BN-free tiny CNN (pipeline microbatching legitimately changes BN
// statistics) and demands value parity across 4 iterations.
func TestAllStrategiesMatchSequential(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data":     dist.RunData,
		"spatial":  dist.RunSpatial,
		"filter":   dist.RunFilter,
		"channel":  dist.RunChannel,
		"pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertParity(t, seq, got, err)
	}
}

// TestSyncBNParity: with synchronized batch norm, data- and
// spatial-parallel runs match sequential SGD even on a BN model —
// the global-statistics semantics of §4.5.2.
func TestSyncBNParity(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 3, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, gotData, err)
	gotSpatial, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, gotSpatial, err)
}

// TestHybridsMatchSequential is the §3.6 acceptance criterion: both
// hybrids on a 2×2 grid reproduce sequential SGD on the BN-free CNN and
// the 3-D (CosmoFlow-like) model over 4 iterations.
func TestHybridsMatchSequential(t *testing.T) {
	for _, m := range []*nn.Model{model.TinyCNNNoBN(), model.Tiny3D()} {
		batches := toyBatches(t, m, 4, 4)
		seq := dist.RunSequential(m, seed, batches, lr)
		df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 2)
		assertParity(t, seq, df, err)
		ds, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 2)
		assertParity(t, seq, ds, err)
		if df.P != 4 || df.P1 != 2 || df.P2 != 2 {
			t.Fatalf("%s: df grid %d=%d×%d, want 4=2×2", m.Name, df.P, df.P1, df.P2)
		}
	}
}

// TestHybridSyncBNParity: hybrids synchronize batch norm over the
// correct cover — segments for data+filter (one PE per group spans the
// global batch), the world for data+spatial — so even BN models match
// the sequential baseline.
func TestHybridSyncBNParity(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 3, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 2)
	assertParity(t, seq, df, err)
	ds, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 2)
	assertParity(t, seq, ds, err)
}

// TestHybridDegenerateEdges: the pure strategies are the p1=1 / p2=1
// edges of the grid and must agree with the hybrid entry points
// bit-for-bit. Today the pure runners delegate to the grid engines, so
// this is a determinism check plus a delegation canary — it becomes
// load-bearing the day a pure runner is specialized (e.g. for
// performance) and starts drifting from its grid edge.
func TestHybridDegenerateEdges(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	type edge struct {
		name       string
		hybrid     *dist.Result
		pure       *dist.Result
		hErr, pErr error
	}
	df21, e1 := dist.RunDataFilter(m, seed, batches, lr, 2, 1)
	data2, e2 := dist.RunData(m, seed, batches, lr, 2)
	df12, e3 := dist.RunDataFilter(m, seed, batches, lr, 1, 2)
	filter2, e4 := dist.RunFilter(m, seed, batches, lr, 2)
	ds12, e5 := dist.RunDataSpatial(m, seed, batches, lr, 1, 2)
	spatial2, e6 := dist.RunSpatial(m, seed, batches, lr, 2)
	for _, e := range []edge{
		{"df(2,1)=data(2)", df21, data2, e1, e2},
		{"df(1,2)=filter(2)", df12, filter2, e3, e4},
		{"ds(1,2)=spatial(2)", ds12, spatial2, e5, e6},
	} {
		if e.hErr != nil || e.pErr != nil {
			t.Fatalf("%s: %v / %v", e.name, e.hErr, e.pErr)
		}
		for i := range e.pure.Losses {
			if e.hybrid.Losses[i] != e.pure.Losses[i] {
				t.Fatalf("%s iter %d: %.17g != %.17g", e.name, i, e.hybrid.Losses[i], e.pure.Losses[i])
			}
		}
	}
}

// TestHybridUnevenGrid: remainder-bearing shards on both grid axes —
// p1 not dividing the batch and p2 not dividing every filter count.
func TestHybridUnevenGrid(t *testing.T) {
	m := model.Tiny3D() // min F_l = 4, filters 4 and 8: p2=3 is uneven
	batches := toyBatches(t, m, 3, 5)
	seq := dist.RunSequential(m, seed, batches, lr)
	df, err := dist.RunDataFilter(m, seed, batches, lr, 2, 3) // batch 5 → 3,2
	assertParity(t, seq, df, err)
	ds, err := dist.RunDataSpatial(m, seed, batches, lr, 3, 2) // batch 5 → 2,2,1
	assertParity(t, seq, ds, err)

	// Synchronized BN over UNEVEN group shards: the count-weighted
	// statistics and n_g/B-scaled gradients must still combine to the
	// sequential arithmetic when the shards differ in size.
	bn := model.TinyCNN()
	bnBatches := toyBatches(t, bn, 3, 5) // batch 5 over 2 groups → 3,2
	bnSeq := dist.RunSequential(bn, seed, bnBatches, lr)
	bnDf, err := dist.RunDataFilter(bn, seed, bnBatches, lr, 2, 2)
	assertParity(t, bnSeq, bnDf, err)
	bnDs, err := dist.RunDataSpatial(bn, seed, bnBatches, lr, 2, 2)
	assertParity(t, bnSeq, bnDs, err)
}

// TestHybridScalingLimits: the Table 3 bounds hold per grid axis.
func TestHybridScalingLimits(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.RunDataFilter(m, seed, batches, lr, 3, 2); err == nil {
		t.Fatal("df: batch 2 over 3 groups must fail")
	}
	if _, err := dist.RunDataFilter(m, seed, batches, lr, 2, 5); err == nil {
		t.Fatal("df: p2=5 > min F_l=4 must fail")
	}
	if _, err := dist.RunDataSpatial(m, seed, batches, lr, 2, 3); err == nil {
		t.Fatal("ds: extent-2 activation over 3 slabs must fail")
	}
	if _, err := dist.RunDataSpatial(m, seed, batches, lr, 0, 2); err == nil {
		t.Fatal("ds: p1=0 must fail")
	}
}

// TestUnevenPartitions exercises remainder-bearing shards (p that does
// not divide the batch, filter counts, or layer count).
func TestUnevenPartitions(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4) // batch 4 over 3 replicas → 2,1,1
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 3)
	assertParity(t, seq, gotData, err)
	gotFilter, err := dist.RunFilter(m, seed, batches, lr, 3) // min F_l = 4
	assertParity(t, seq, gotFilter, err)
	gotPipe, err := dist.RunPipeline(m, seed, batches, lr, 3) // 5 layers over 3 stages
	assertParity(t, seq, gotPipe, err)
}

// TestWidthOne: every strategy at p=1 degenerates to the sequential
// baseline exactly.
func TestWidthOne(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 2, 2)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data": dist.RunData, "spatial": dist.RunSpatial, "filter": dist.RunFilter,
		"channel": dist.RunChannel, "pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range seq.Losses {
			if got.Losses[i] != seq.Losses[i] {
				t.Fatalf("%s p=1 iter %d: %.17g != sequential %.17g", name, i, got.Losses[i], seq.Losses[i])
			}
		}
	}
}

// TestDeterminism: two identical partitioned runs produce bit-identical
// loss series despite goroutine scheduling.
func TestDeterminism(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	a, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("iter %d: %.17g != %.17g", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestScalingLimits: the Table 3 feasibility bounds surface as errors,
// not panics or wrong numbers.
func TestScalingLimits(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.RunData(m, seed, batches, lr, 3); err == nil {
		t.Fatal("data: batch 2 over 3 replicas must fail")
	}
	if _, err := dist.RunSpatial(m, seed, batches, lr, 3); err == nil {
		t.Fatal("spatial: extent-2 activation over 3 PEs must fail")
	}
	if _, err := dist.RunFilter(m, seed, batches, lr, 5); err == nil {
		t.Fatal("filter: p=5 > min F_l=4 must fail")
	}
	if _, err := dist.RunChannel(m, seed, batches, lr, 5); err == nil {
		t.Fatal("channel: p=5 > min C_l=4 must fail")
	}
	if _, err := dist.RunPipeline(m, seed, batches, lr, 8); err == nil {
		t.Fatal("pipeline: 8 stages for 7 layers must fail")
	}
	if _, err := dist.RunData(m, seed, batches, lr, 0); err == nil {
		t.Fatal("p=0 must fail")
	}
}

// TestBatchValidation: malformed batches are rejected before any PE
// spawns.
func TestBatchValidation(t *testing.T) {
	m := model.Tiny3D()
	good := toyBatches(t, m, 1, 2)
	bad := []dist.Batch{{X: good[0].X, Labels: []int{0}}}
	if _, err := dist.RunData(m, seed, bad, lr, 2); err == nil {
		t.Fatal("label/sample mismatch must fail")
	}
	other := model.TinyCNN()
	if _, err := dist.RunSpatial(other, seed, good, lr, 2); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
}

// residualPlans is the acceptance grid of the DAG executor: every
// registry plan the ISSUE pins for model.TinyResNet.
func residualPlans() []dist.Plan {
	return []dist.Plan{
		{Strategy: core.Data, P1: 4},
		{Strategy: core.Filter, P2: 2},
		{Strategy: core.Spatial, P2: 2},
		{Strategy: core.Channel, P2: 2},
		{Strategy: core.Pipeline, P2: 2},
		{Strategy: core.DataFilter, P1: 2, P2: 2},
		{Strategy: core.DataSpatial, P1: 2, P2: 2},
		{Strategy: core.DataPipeline, P1: 2, P2: 2},
	}
}

// TestResidualParityAllPlans is the headline acceptance criterion of
// the graph executor: TinyResNet — projection shortcut, additive merge
// — reproduces the sequential DAG baseline's per-iteration losses to
// ≤ 1e-6 under every registry plan (data:4, filter:2, spatial:2,
// channel:2, pipe:2, df:2x2, ds:2x2, dp:2x2).
func TestResidualParityAllPlans(t *testing.T) {
	m := model.TinyResNet()
	batches := toyBatches(t, m, 3, 8)
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range residualPlans() {
		got, err := dist.Run(m, batches, pl, dist.WithSeed(seed), dist.WithLR(lr))
		if err != nil {
			t.Fatalf("%s: %v", pl, err)
		}
		assertParity(t, seq, got, err)
	}
}

// TestResidualParityMomentum: the DAG executor composes with heavy-ball
// SGD on sharded branch weights.
func TestResidualParityMomentum(t *testing.T) {
	m := model.TinyResNet()
	batches := toyBatches(t, m, 3, 8)
	opts := []dist.Option{dist.WithSeed(seed), dist.WithLR(lr), dist.WithMomentum(0.9)}
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range []dist.Plan{{Strategy: core.Data, P1: 4}, {Strategy: core.DataFilter, P1: 2, P2: 2}} {
		got, err := dist.Run(m, batches, pl, opts...)
		assertParity(t, seq, got, err)
	}
}

// TestResidualOverlapBitIdentity: on the residual model, the
// nonblocking bucketed gradient exchange must stay bit-identical to
// the blocking one (the buckets now carry shortcut gradients too).
func TestResidualOverlapBitIdentity(t *testing.T) {
	m := model.TinyResNet()
	batches := toyBatches(t, m, 3, 8)
	for _, pl := range []dist.Plan{{Strategy: core.Data, P1: 4}, {Strategy: core.DataFilter, P1: 2, P2: 2}, {Strategy: core.DataSpatial, P1: 2, P2: 2}} {
		var runs [2]*dist.Result
		for i, overlap := range []bool{true, false} {
			res, err := dist.Run(m, batches, pl, dist.WithSeed(seed), dist.WithLR(lr),
				dist.WithOverlap(overlap), dist.WithBucketBytes(dist.BenchOverlapBucketBytes))
			if err != nil {
				t.Fatalf("%s overlap=%v: %v", pl, overlap, err)
			}
			runs[i] = res
		}
		for i := range runs[0].Losses {
			if runs[0].Losses[i] != runs[1].Losses[i] {
				t.Fatalf("%s iter %d: overlap %v vs blocking %v — must be bit-identical", pl, i, runs[0].Losses[i], runs[1].Losses[i])
			}
		}
	}
}

// TestResidualPipelineLegality: stage splitting must keep a residual
// block's tap, shortcut, and merge inside one stage. Boundaries snap
// to legal cuts when possible (pipe:4 trains in parity); when the
// model does not admit enough legal cuts the error names the shortcut
// a cut would sever.
func TestResidualPipelineLegality(t *testing.T) {
	m := model.TinyResNet()
	batches := toyBatches(t, m, 2, 8)
	seq, err := dist.Run(m, batches, dist.Plan{Strategy: core.Serial}, dist.WithSeed(seed), dist.WithLR(lr))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Run(m, batches, dist.Plan{Strategy: core.Pipeline, P2: 4}, dist.WithSeed(seed), dist.WithLR(lr))
	assertParity(t, seq, got, err)

	// TinyResNet has 11 legal cuts (the block interior forbids 5 of
	// G-1 = 16): 13 stages would need 12.
	_, err = dist.Run(m, batches, dist.Plan{Strategy: core.Pipeline, P2: 13}, dist.WithSeed(seed), dist.WithLR(lr))
	if err == nil || !strings.Contains(err.Error(), "_shortcut") {
		t.Fatalf("unsupported partition must name the offending shortcut layer, got %v", err)
	}
	if !strings.Contains(err.Error(), "residual block") {
		t.Fatalf("legality error should explain the residual-block rule, got %v", err)
	}
}

// TestMalformedBranchRejected: models whose branch taps do not resolve
// still fail loudly — at graph compile time, before any PE spawns.
func TestMalformedBranchRejected(t *testing.T) {
	m := model.TinyResNet()
	for l := range m.Layers {
		if m.Layers[l].Branch {
			m.Layers[l].Tap = l // tap itself: unresolvable
		}
	}
	batches := toyBatches(t, model.TinyResNet(), 1, 2)
	if _, err := dist.RunData(m, seed, batches, lr, 1); err == nil ||
		!strings.Contains(err.Error(), "graph") {
		t.Fatalf("malformed tap must be rejected with a graph-compile error, got %v", err)
	}
}

// TestSpatialBranchLegality: the spatial engine aggregates slabs before
// the classifier head (§4.5.1), so a residual block closing inside the
// trunk is supported, while a branch merging into the head is a
// genuinely unsupported partition rejected with a targeted error
// naming the offending layer.
func TestSpatialBranchLegality(t *testing.T) {
	b := nn.NewBuilder("trunk-branch", 3, []int{8, 8})
	b.Conv(4, 3, 1, 1).ReLU()
	c, dims := b.Snapshot()
	b.Conv(4, 3, 1, 1)
	b.ShortcutConv(c, dims, 4, 1, 1, 0)
	b.ReLU()
	b.FC(6)
	trunk := b.MustBuild()
	batches := toyBatches(t, trunk, 2, 4)
	seq := dist.RunSequential(trunk, seed, batches, lr)
	got, err := dist.RunSpatial(trunk, seed, batches, lr, 2)
	assertParity(t, seq, got, err)

	// Hand-build a head-resident branch: a full-extent shortcut
	// convolution merging into the classifier FC's output.
	head := &nn.Model{Name: "head-branch", InputChannels: 3, InputDims: []int{8, 8}, Classes: 6, Layers: []nn.Layer{
		{Kind: nn.Conv, Name: "conv1", C: 3, F: 4, In: []int{8, 8}, Out: []int{8, 8},
			Kernel: []int{3, 3}, Stride: []int{1, 1}, Pad: []int{1, 1}},
		{Kind: nn.FC, Name: "fc1", C: 4, F: 6, In: []int{8, 8}, Out: []int{1, 1}},
		{Kind: nn.Conv, Name: "conv2_shortcut", C: 3, F: 6, In: []int{8, 8}, Out: []int{1, 1},
			Kernel: []int{8, 8}, Stride: []int{1, 1}, Pad: []int{0, 0}, Branch: true, Tap: -1},
	}}
	if err := head.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err = dist.RunSpatial(head, seed, toyBatches(t, head, 1, 4), lr, 2)
	if err == nil || !strings.Contains(err.Error(), "conv2_shortcut") {
		t.Fatalf("head-resident branch must be rejected with an error naming it, got %v", err)
	}
}
