// Value-parity tests: the §4.5.2 methodology. Every partitioned run
// must reproduce the sequential baseline's per-iteration losses within
// 1e-6 (in practice the runs agree to ~1e-12; the tolerance absorbs
// summation reassociation across PEs).
package dist_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

const (
	seed = 42
	lr   = 0.05
	tol  = 1e-6
)

func toyBatches(t *testing.T, m *nn.Model, iters, size int) []dist.Batch {
	t.Helper()
	ds := data.Toy(m, int64(iters*size))
	return ds.Batches(iters, size)
}

func assertParity(t *testing.T, want *dist.Result, got *dist.Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Losses) != len(want.Losses) {
		t.Fatalf("%s: %d losses, want %d", got.Strategy, len(got.Losses), len(want.Losses))
	}
	for i := range want.Losses {
		if d := math.Abs(got.Losses[i] - want.Losses[i]); d > tol || math.IsNaN(d) {
			t.Fatalf("%s p=%d iter %d: loss %.12f vs sequential %.12f (Δ %.3e > %g)",
				got.Strategy, got.P, i, got.Losses[i], want.Losses[i], d, tol)
		}
	}
}

// TestSpatialMatchesSequentialTiny3D is the acceptance criterion of the
// runtime: 3-D spatial decomposition over 2 PEs reproduces sequential
// SGD losses on Tiny3D over 4 iterations.
func TestSpatialMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

func TestDataMatchesSequentialTiny3D(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	got, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, got, err)
}

// TestAllStrategiesMatchSequential runs every §3 strategy at p=2 on the
// BN-free tiny CNN (pipeline microbatching legitimately changes BN
// statistics) and demands value parity across 4 iterations.
func TestAllStrategiesMatchSequential(t *testing.T) {
	m := model.TinyCNNNoBN()
	batches := toyBatches(t, m, 4, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data":     dist.RunData,
		"spatial":  dist.RunSpatial,
		"filter":   dist.RunFilter,
		"channel":  dist.RunChannel,
		"pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertParity(t, seq, got, err)
	}
}

// TestSyncBNParity: with synchronized batch norm, data- and
// spatial-parallel runs match sequential SGD even on a BN model —
// the global-statistics semantics of §4.5.2.
func TestSyncBNParity(t *testing.T) {
	m := model.TinyCNN()
	batches := toyBatches(t, m, 3, 4)
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 2)
	assertParity(t, seq, gotData, err)
	gotSpatial, err := dist.RunSpatial(m, seed, batches, lr, 2)
	assertParity(t, seq, gotSpatial, err)
}

// TestUnevenPartitions exercises remainder-bearing shards (p that does
// not divide the batch, filter counts, or layer count).
func TestUnevenPartitions(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4) // batch 4 over 3 replicas → 2,1,1
	seq := dist.RunSequential(m, seed, batches, lr)
	gotData, err := dist.RunData(m, seed, batches, lr, 3)
	assertParity(t, seq, gotData, err)
	gotFilter, err := dist.RunFilter(m, seed, batches, lr, 3) // min F_l = 4
	assertParity(t, seq, gotFilter, err)
	gotPipe, err := dist.RunPipeline(m, seed, batches, lr, 3) // 5 layers over 3 stages
	assertParity(t, seq, gotPipe, err)
}

// TestWidthOne: every strategy at p=1 degenerates to the sequential
// baseline exactly.
func TestWidthOne(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 2, 2)
	seq := dist.RunSequential(m, seed, batches, lr)
	type run func(*nn.Model, int64, []dist.Batch, float64, int) (*dist.Result, error)
	for name, fn := range map[string]run{
		"data": dist.RunData, "spatial": dist.RunSpatial, "filter": dist.RunFilter,
		"channel": dist.RunChannel, "pipeline": dist.RunPipeline,
	} {
		got, err := fn(m, seed, batches, lr, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range seq.Losses {
			if got.Losses[i] != seq.Losses[i] {
				t.Fatalf("%s p=1 iter %d: %.17g != sequential %.17g", name, i, got.Losses[i], seq.Losses[i])
			}
		}
	}
}

// TestDeterminism: two identical partitioned runs produce bit-identical
// loss series despite goroutine scheduling.
func TestDeterminism(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 3, 4)
	a, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.RunSpatial(m, seed, batches, lr, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Losses {
		if a.Losses[i] != b.Losses[i] {
			t.Fatalf("iter %d: %.17g != %.17g", i, a.Losses[i], b.Losses[i])
		}
	}
}

// TestScalingLimits: the Table 3 feasibility bounds surface as errors,
// not panics or wrong numbers.
func TestScalingLimits(t *testing.T) {
	m := model.Tiny3D()
	batches := toyBatches(t, m, 1, 2)
	if _, err := dist.RunData(m, seed, batches, lr, 3); err == nil {
		t.Fatal("data: batch 2 over 3 replicas must fail")
	}
	if _, err := dist.RunSpatial(m, seed, batches, lr, 3); err == nil {
		t.Fatal("spatial: extent-2 activation over 3 PEs must fail")
	}
	if _, err := dist.RunFilter(m, seed, batches, lr, 5); err == nil {
		t.Fatal("filter: p=5 > min F_l=4 must fail")
	}
	if _, err := dist.RunChannel(m, seed, batches, lr, 5); err == nil {
		t.Fatal("channel: p=5 > min C_l=4 must fail")
	}
	if _, err := dist.RunPipeline(m, seed, batches, lr, 8); err == nil {
		t.Fatal("pipeline: 8 stages for 7 layers must fail")
	}
	if _, err := dist.RunData(m, seed, batches, lr, 0); err == nil {
		t.Fatal("p=0 must fail")
	}
}

// TestBatchValidation: malformed batches are rejected before any PE
// spawns.
func TestBatchValidation(t *testing.T) {
	m := model.Tiny3D()
	good := toyBatches(t, m, 1, 2)
	bad := []dist.Batch{{X: good[0].X, Labels: []int{0}}}
	if _, err := dist.RunData(m, seed, bad, lr, 2); err == nil {
		t.Fatal("label/sample mismatch must fail")
	}
	other := model.TinyCNN()
	if _, err := dist.RunSpatial(other, seed, good, lr, 2); err == nil {
		t.Fatal("geometry mismatch must fail")
	}
}

// TestBranchModelsRejected: ResNet shortcut (Branch) layers have no
// chain-execution semantics; the runtime must refuse them with a clear
// error rather than panicking deep inside a conv kernel.
func TestBranchModelsRejected(t *testing.T) {
	m := model.ResNet50()
	x := data.ImageNet().Batch(0, 1)
	if _, err := dist.RunData(m, seed, []dist.Batch{x}, lr, 1); err == nil ||
		!strings.Contains(err.Error(), "branch") {
		t.Fatalf("branch model must be rejected with a branch error, got %v", err)
	}
	defer func() {
		rec := recover()
		if rec == nil || !strings.Contains(fmt.Sprint(rec), "branch") {
			t.Fatalf("RunSequential must panic with a branch error, got %v", rec)
		}
	}()
	dist.RunSequential(m, seed, []dist.Batch{x}, lr)
}
