package dist

import (
	"fmt"
	"strconv"
	"strings"

	"paradl/internal/core"
)

// Plan is a first-class execution plan: which §3 strategy to run and
// the P1×P2 grid shape to run it on. P1 is always the data-parallel
// axis (replica groups), P2 the model-parallel axis (PEs per group) —
// the same convention as strategy.HybridGroups and core.Config. The
// pure strategies are the degenerate edges of the grids they share with
// the hybrids:
//
//	serial                P1 = P2 = 1
//	data                  width on P1 (P2 = 1: groups of one)
//	spatial/filter/
//	channel/pipeline      width on P2 (P1 = 1: one group spans the world)
//	df/ds/dp hybrids      both axes free
//
// A Plan round-trips through its string form: ParsePlan(p.String())
// yields p back for every valid plan. A pure strategy's DEGENERATE axis
// may be left zero in a hand-built plan — Run fills it with 1, so
// Plan{Strategy: core.Data, P1: 4} is valid — but a zero on a width
// axis (data's P1, filter's P2, either hybrid axis) is an error, never
// silently promoted.
type Plan struct {
	Strategy core.Strategy
	P1, P2   int
}

// P returns the total PE count P1·P2 of the (normalized) plan.
func (pl Plan) P() int {
	pl = pl.normalized()
	return pl.P1 * pl.P2
}

// planAxis classifies where a strategy's width lives on the P1×P2 grid.
// It is the single source of the per-strategy axis convention that
// normalization, rendering, validation, and parsing all share — a new
// strategy states its axis once in axisOf and every plan operation
// follows.
type planAxis int

const (
	axisNone planAxis = iota // serial: both axes pinned to 1
	axisP1                   // data: width on the data-parallel axis, P2 pinned
	axisP2                   // spatial/filter/channel/pipeline: width on the model-parallel axis, P1 pinned
	axisGrid                 // df/ds/dp hybrids: both axes free
)

func axisOf(s core.Strategy) planAxis {
	switch s {
	case core.Serial:
		return axisNone
	case core.Data:
		return axisP1
	case core.DataFilter, core.DataSpatial, core.DataPipeline:
		return axisGrid
	default:
		return axisP2
	}
}

// widthPlan places width p on pure strategy s's free axis; hybrids take
// an explicit grid and must be built literally.
func widthPlan(s core.Strategy, p int) Plan {
	if axisOf(s) == axisP1 {
		return Plan{Strategy: s, P1: p}
	}
	return Plan{Strategy: s, P2: p}
}

// normalized fills only the axes a pure strategy pins to 1 anyway; the
// width axes stay as given so an explicit zero still fails validation.
func (pl Plan) normalized() Plan {
	switch axisOf(pl.Strategy) {
	case axisGrid:
		// Both axes are widths: nothing to fill.
	case axisP1:
		if pl.P2 == 0 {
			pl.P2 = 1
		}
	case axisNone:
		if pl.P1 == 0 {
			pl.P1 = 1
		}
		if pl.P2 == 0 {
			pl.P2 = 1
		}
	case axisP2:
		if pl.P1 == 0 {
			pl.P1 = 1
		}
	}
	return pl
}

// planShort is the canonical short name used in plan strings; it is the
// inverse image core.ParseStrategy accepts for every strategy.
func planShort(s core.Strategy) string {
	switch s {
	case core.DataFilter:
		return "df"
	case core.DataSpatial:
		return "ds"
	case core.DataPipeline:
		return "dp"
	default:
		return s.String() // serial, data, spatial, pipeline, filter, channel
	}
}

// String renders the canonical plan string: "serial", "data:4",
// "filter:2", or "df:4x2". ParsePlan inverts it exactly.
func (pl Plan) String() string {
	pl = pl.normalized()
	switch axisOf(pl.Strategy) {
	case axisNone:
		return "serial"
	case axisGrid:
		return fmt.Sprintf("%s:%dx%d", planShort(pl.Strategy), pl.P1, pl.P2)
	case axisP1:
		return fmt.Sprintf("%s:%d", planShort(pl.Strategy), pl.P1)
	default:
		return fmt.Sprintf("%s:%d", planShort(pl.Strategy), pl.P2)
	}
}

// MarshalText implements encoding.TextMarshaler with the canonical
// plan string, giving Plan a committed serialized form ("df:4x2") in
// JSON and text wires. Invalid plans refuse to marshal rather than
// emitting a string ParsePlan would reject.
func (pl Plan) MarshalText() ([]byte, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	return []byte(pl.String()), nil
}

// UnmarshalText inverts MarshalText via ParsePlan; the decoded plan is
// always normalized and valid.
func (pl *Plan) UnmarshalText(b []byte) error {
	parsed, err := ParsePlan(string(b))
	if err != nil {
		return err
	}
	*pl = parsed
	return nil
}

// Validate rejects plans the registry cannot dispatch: unknown or
// unregistered strategies, non-positive grid axes, and pure strategies
// whose degenerate axis is not 1 (e.g. Plan{Strategy: Data, P2: 3}).
// Width-vs-model limits (Table 3) are checked later by the runner,
// which knows the model.
func (pl Plan) Validate() error {
	pl = pl.normalized()
	if _, ok := registry[pl.Strategy]; !ok {
		return fmt.Errorf("dist: no registered runner for strategy %v", pl.Strategy)
	}
	if pl.P1 < 1 || pl.P2 < 1 {
		return fmt.Errorf("dist: plan %v needs positive grid axes, got %d×%d", pl.Strategy, pl.P1, pl.P2)
	}
	switch axisOf(pl.Strategy) {
	case axisNone:
		if pl.P1 != 1 || pl.P2 != 1 {
			return fmt.Errorf("dist: serial plan must be 1×1, got %d×%d", pl.P1, pl.P2)
		}
	case axisP1:
		if pl.P2 != 1 {
			return fmt.Errorf("dist: %v plan puts its width on P1 and needs P2=1, got %d×%d", pl.Strategy, pl.P1, pl.P2)
		}
	case axisP2:
		if pl.P1 != 1 {
			return fmt.Errorf("dist: %v plan puts its width on P2 and needs P1=1, got %d×%d", pl.Strategy, pl.P1, pl.P2)
		}
	}
	return nil
}

// ParsePlan parses a plan string: a strategy name (any spelling
// core.ParseStrategy accepts — "data+filter" and "df" are equivalent),
// optionally followed by ":" and a width — a single integer for pure
// strategies ("data:4", "pipeline:3") or an explicit P1xP2 grid for the
// hybrids ("ds:4x2"). A bare name means width 1. The result always
// satisfies Validate.
func ParsePlan(s string) (Plan, error) {
	name, width, hasWidth := strings.Cut(s, ":")
	strat, err := core.ParseStrategy(name)
	if err != nil {
		return Plan{}, fmt.Errorf("dist: plan %q: %w", s, err)
	}
	pl := Plan{Strategy: strat, P1: 1, P2: 1}
	if hasWidth {
		a, b, grid := strings.Cut(width, "x")
		axis := axisOf(strat)
		switch {
		case grid && axis != axisGrid:
			return Plan{}, fmt.Errorf("dist: plan %q: %v takes a single width, not a grid", s, strat)
		case grid:
			if pl.P1, err = parseAxis(s, a); err != nil {
				return Plan{}, err
			}
			if pl.P2, err = parseAxis(s, b); err != nil {
				return Plan{}, err
			}
		case axis == axisGrid:
			return Plan{}, fmt.Errorf("dist: plan %q: hybrid %v needs an explicit p1xp2 grid", s, strat)
		case axis == axisP1:
			if pl.P1, err = parseAxis(s, a); err != nil {
				return Plan{}, err
			}
		default:
			if pl.P2, err = parseAxis(s, a); err != nil {
				return Plan{}, err
			}
		}
	}
	if err := pl.Validate(); err != nil {
		return Plan{}, err
	}
	return pl, nil
}

// SweepPlans enumerates the candidate plans at total width p: every
// pure strategy with its width on the proper axis, plus every interior
// p1×p2 factorization of the three hybrids (the degenerate p1=1 / p2=1
// edges are exactly the pure strategies already listed). p=1 yields the
// serial baseline alone. This is the ONE enumeration behind the
// planner service's /sweep grid and the workload generator's
// per-scenario candidate set, so "the strategy ordering at width p"
// ranges over the same plans everywhere it is scored.
func SweepPlans(p int) []Plan {
	if p == 1 {
		return []Plan{{Strategy: core.Serial, P1: 1, P2: 1}}
	}
	plans := []Plan{
		{Strategy: core.Data, P1: p, P2: 1},
		{Strategy: core.Spatial, P1: 1, P2: p},
		{Strategy: core.Filter, P1: 1, P2: p},
		{Strategy: core.Channel, P1: 1, P2: p},
		{Strategy: core.Pipeline, P1: 1, P2: p},
	}
	for p2 := 2; p2 <= p/2; p2++ {
		if p%p2 != 0 {
			continue
		}
		for _, s := range []core.Strategy{core.DataFilter, core.DataSpatial, core.DataPipeline} {
			plans = append(plans, Plan{Strategy: s, P1: p / p2, P2: p2})
		}
	}
	return plans
}

// parseAxis parses one positive grid axis of plan string s.
func parseAxis(s, a string) (int, error) {
	n, err := strconv.Atoi(a)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("dist: plan %q: grid axis %q must be a positive integer", s, a)
	}
	return n, nil
}
