package dist

import (
	"fmt"

	"paradl/internal/ckpt"
	"paradl/internal/nn"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
)

// This file is the canonical-state machinery of the elastic runtime:
// every engine can GATHER its sharded training state into the full
// unsharded tensors a checkpoint records, and RESTORE such a snapshot
// by overwriting its freshly-initialized replica before carving shards.
// Because every engine derives its shards from the full replica by
// Narrow (a copy), restore is uniform: write the canonical parameters
// into the replica and the usual sharding path re-shards them — under
// the original plan, a shrunken plan, or an entirely different
// strategy. Gathers are pure data movement over cloned tensors, so a
// checkpointing run is bit-identical to a plain one.

// restoreParams copies the canonical snapshot parameters over net's
// seed-derived ones, field by field, with strict shape checking; it
// also validates the snapshot's velocity geometry so the per-engine
// velocity seeding below cannot fail mid-world.
func restoreParams(net *nn.Network, st *ckpt.State) error {
	for l := range net.Params {
		for _, f := range [4]struct {
			name     string
			dst, src *tensor.Tensor
		}{
			{"W", net.Params[l].W, st.Params[l].W},
			{"B", net.Params[l].B, st.Params[l].B},
			{"Gamma", net.Params[l].Gamma, st.Params[l].Gamma},
			{"Beta", net.Params[l].Beta, st.Params[l].Beta},
		} {
			if err := restoreField(f.dst, f.src, l, f.name); err != nil {
				return err
			}
		}
		if st.Vel == nil {
			continue
		}
		for _, f := range [4]struct {
			name       string
			param, vel *tensor.Tensor
		}{
			{"W", net.Params[l].W, st.Vel[l].W},
			{"B", net.Params[l].B, st.Vel[l].B},
			{"Gamma", net.Params[l].Gamma, st.Vel[l].Gamma},
			{"Beta", net.Params[l].Beta, st.Vel[l].Beta},
		} {
			if f.vel == nil {
				continue
			}
			if f.param == nil || !tensor.EqualShapes(f.vel.Shape(), f.param.Shape()) {
				return fmt.Errorf("dist: checkpoint velocity for layer %d %s does not match the model's parameter geometry", l, f.name)
			}
		}
	}
	return nil
}

func restoreField(dst, src *tensor.Tensor, l int, name string) error {
	if (dst == nil) != (src == nil) {
		return fmt.Errorf("dist: checkpoint and model disagree on layer %d parameter %s", l, name)
	}
	if dst == nil {
		return nil
	}
	if !tensor.EqualShapes(dst.Shape(), src.Shape()) {
		return fmt.Errorf("dist: checkpoint layer %d %s has shape %v, model wants %v", l, name, src.Shape(), dst.Shape())
	}
	copy(dst.Data(), src.Data())
	return nil
}

// velClone returns a private copy of w's momentum velocity — a zero
// tensor when no update has created one yet (lazy creation makes
// absence ≡ zeros, and presence is SPMD-deterministic, so every PE of
// a gather agrees on the geometry).
func velClone(mom *nn.Momentum, w *tensor.Tensor) *tensor.Tensor {
	if w == nil {
		return nil
	}
	if v := mom.Velocity(w); v != nil {
		return v.Clone()
	}
	return tensor.New(w.Shape()...)
}

// seedVel installs a private clone of canonical velocity v for
// parameter (or shard) w.
func seedVel(mom *nn.Momentum, w, v *tensor.Tensor) {
	if w == nil || v == nil {
		return
	}
	mom.SeedVelocity(w, v.Clone())
}

// velRestorable reports whether a run has velocity state to re-seed.
func velRestorable(cfg *runConfig, mom *nn.Momentum) bool {
	return mom != nil && cfg.initState != nil && cfg.initState.Vel != nil
}

// cloneNetState snapshots a fully-replicated network: the sequential
// engine's state, and the spatial engine's (where every PE steps the
// whole replica in lockstep, so rank 0's replica IS the canonical
// state). vel is nil for plain-SGD runs.
func cloneNetState(net *nn.Network, mom *nn.Momentum) (params, vel []nn.Params) {
	params = net.CloneParams()
	if mom == nil {
		return params, nil
	}
	vel = make([]nn.Params, len(net.Params))
	for l, p := range net.Params {
		vel[l] = nn.Params{
			W: velClone(mom, p.W), B: velClone(mom, p.B),
			Gamma: velClone(mom, p.Gamma), Beta: velClone(mom, p.Beta),
		}
	}
	return params, vel
}

// seedFullVelocities re-seeds momentum state for a fully-replicated
// engine (sequential, spatial): every parameter takes its full
// canonical velocity.
func seedFullVelocities(cfg *runConfig, mom *nn.Momentum, net *nn.Network) {
	if !velRestorable(cfg, mom) {
		return
	}
	for l := range net.Params {
		v := cfg.initState.Vel[l]
		seedVel(mom, net.Params[l].W, v.W)
		seedVel(mom, net.Params[l].B, v.B)
		seedVel(mom, net.Params[l].Gamma, v.Gamma)
		seedVel(mom, net.Params[l].Beta, v.Beta)
	}
}

// gatherFilterState reassembles the data×filter grid's canonical state
// within one group: every sharded layer's W/B (and velocities)
// Allgather along the filter axis — the exact inverse of filterShards'
// Narrow — and the replicated BN parameters clone locally. All ranks of
// every group run it (SPMD within the group; groups are replicas), and
// every rank returns the full tensors; the caller emits on the result
// rank only.
func gatherFilterState(group *Comm, net *nn.Network, shards []*weightShard, mom *nn.Momentum) (params, vel []nn.Params) {
	g := len(net.Params)
	params = make([]nn.Params, g)
	if mom != nil {
		vel = make([]nn.Params, g)
	}
	for l := range net.Params {
		if sh := shards[l]; sh != nil {
			params[l].W = group.AllGather(sh.w.Clone(), 0)
			params[l].B = group.AllGather(sh.b.Clone(), 0)
			if mom != nil {
				vel[l].W = group.AllGather(velClone(mom, sh.w), 0)
				vel[l].B = group.AllGather(velClone(mom, sh.b), 0)
			}
			continue
		}
		cloneReplicated(&params[l], net.Params[l])
		if mom != nil {
			vel[l] = nn.Params{
				W: velClone(mom, net.Params[l].W), B: velClone(mom, net.Params[l].B),
				Gamma: velClone(mom, net.Params[l].Gamma), Beta: velClone(mom, net.Params[l].Beta),
			}
		}
	}
	return params, vel
}

func cloneReplicated(dst *nn.Params, src nn.Params) {
	if src.W != nil {
		dst.W = src.W.Clone()
	}
	if src.B != nil {
		dst.B = src.B.Clone()
	}
	if src.Gamma != nil {
		dst.Gamma = src.Gamma.Clone()
	}
	if src.Beta != nil {
		dst.Beta = src.Beta.Clone()
	}
}

// seedFilterVelocities re-seeds momentum state after a restore under
// the data×filter grid: each shard takes its Narrow slice of the
// canonical velocity (the same slice geometry filterShards carves from
// the parameters), replicated layers take the full tensors.
func seedFilterVelocities(cfg *runConfig, mom *nn.Momentum, net *nn.Network, shards []*weightShard) {
	if !velRestorable(cfg, mom) {
		return
	}
	for l := range net.Params {
		v := cfg.initState.Vel[l]
		sh := shards[l]
		if sh == nil {
			seedVel(mom, net.Params[l].W, v.W)
			seedVel(mom, net.Params[l].B, v.B)
			seedVel(mom, net.Params[l].Gamma, v.Gamma)
			seedVel(mom, net.Params[l].Beta, v.Beta)
			continue
		}
		if v.W != nil {
			mom.SeedVelocity(sh.w, v.W.Narrow(0, sh.rng.Start, sh.rng.Size()))
		}
		if v.B != nil {
			mom.SeedVelocity(sh.b, v.B.Narrow(0, sh.rng.Start, sh.rng.Size()))
		}
	}
}

// gatherChannelState reassembles the channel engine's canonical state:
// sharded weights Allgather along the input-channel axis (conv axis 1;
// FC column blocks, contiguous per rank, so the same axis-1 gather
// inverts channelShards), while biases — replicated and stepped in
// lockstep — and whole replicated layers clone locally.
func gatherChannelState(c *Comm, net *nn.Network, shards []*weightShard, mom *nn.Momentum) (params, vel []nn.Params) {
	g := len(net.Params)
	params = make([]nn.Params, g)
	if mom != nil {
		vel = make([]nn.Params, g)
	}
	for l := range net.Params {
		if sh := shards[l]; sh != nil {
			params[l].W = c.AllGather(sh.w.Clone(), 1)
			params[l].B = net.Params[l].B.Clone()
			if mom != nil {
				vel[l].W = c.AllGather(velClone(mom, sh.w), 1)
				vel[l].B = velClone(mom, net.Params[l].B)
			}
			continue
		}
		cloneReplicated(&params[l], net.Params[l])
		if mom != nil {
			vel[l] = nn.Params{
				W: velClone(mom, net.Params[l].W), B: velClone(mom, net.Params[l].B),
				Gamma: velClone(mom, net.Params[l].Gamma), Beta: velClone(mom, net.Params[l].Beta),
			}
		}
	}
	return params, vel
}

// seedChannelVelocities mirrors gatherChannelState at restore time:
// sharded weights take their axis-1 Narrow slice of the canonical
// velocity, replicated biases and layers the full tensors.
func seedChannelVelocities(cfg *runConfig, mom *nn.Momentum, net *nn.Network, shards []*weightShard) {
	if !velRestorable(cfg, mom) {
		return
	}
	layers := net.Model.Layers
	for l := range net.Params {
		v := cfg.initState.Vel[l]
		sh := shards[l]
		if sh == nil {
			seedVel(mom, net.Params[l].W, v.W)
			seedVel(mom, net.Params[l].B, v.B)
			seedVel(mom, net.Params[l].Gamma, v.Gamma)
			seedVel(mom, net.Params[l].Beta, v.Beta)
			continue
		}
		if v.W != nil {
			switch layers[l].Kind {
			case nn.Conv:
				mom.SeedVelocity(sh.w, v.W.Narrow(1, sh.rng.Start, sh.rng.Size()))
			case nn.FC:
				vol := int(layers[l].InSize()) / layers[l].C
				mom.SeedVelocity(sh.w, v.W.Narrow(1, sh.rng.Start*vol, sh.rng.Size()*vol))
			}
		}
		// The bias is replicated and stepped in lockstep on every PE.
		seedVel(mom, net.Params[l].B, v.B)
	}
}

// gatherPipelineState assembles the pipeline grid's canonical state on
// the LAST stage of group 0 (the engine's result rank, which also owns
// the loss series): every stage of the group sends its owned layers'
// parameters — and velocities, under momentum — point-to-point to the
// root in deterministic (stage-ascending, layer-ascending, W/B/Gamma/
// Beta) order. Only group 0 calls this (other groups are bit-identical
// replicas); ranks other than the root return nil.
func gatherPipelineState(group *Comm, net *nn.Network, stages []strategy.PipelineStage, mom *nn.Momentum) (params, vel []nn.Params) {
	root := group.Size() - 1
	g := len(net.Params)
	if group.Rank() == root {
		params = make([]nn.Params, g)
		if mom != nil {
			vel = make([]nn.Params, g)
		}
	}
	for _, st := range stages {
		owner := st.PE
		for l := st.Start; l < st.End; l++ {
			for _, f := range fieldPtrs(&net.Params[l]) {
				if *f == nil {
					continue
				}
				switch {
				case owner == root && group.Rank() == root:
					*fieldSlot(&params[l], f, &net.Params[l]) = (*f).Clone()
				case group.Rank() == owner:
					group.Send(root, *f)
				case group.Rank() == root:
					*fieldSlot(&params[l], f, &net.Params[l]) = group.Recv(owner)
				}
			}
			if mom == nil {
				continue
			}
			for _, f := range fieldPtrs(&net.Params[l]) {
				if *f == nil {
					continue
				}
				switch {
				case owner == root && group.Rank() == root:
					*fieldSlot(&vel[l], f, &net.Params[l]) = velClone(mom, *f)
				case group.Rank() == owner:
					group.sendOwned(root, velClone(mom, *f))
				case group.Rank() == root:
					*fieldSlot(&vel[l], f, &net.Params[l]) = group.Recv(owner)
				}
			}
		}
	}
	return params, vel
}

// fieldPtrs returns the four parameter slots of a layer in canonical
// order; nil slots mean the layer has no such parameter, identically
// on every replica (geometry comes from the model spec).
func fieldPtrs(p *nn.Params) [4]**tensor.Tensor {
	return [4]**tensor.Tensor{&p.W, &p.B, &p.Gamma, &p.Beta}
}

// fieldSlot maps a source field pointer of ref onto the corresponding
// slot of dst, so gathered tensors land in the same field they came
// from.
func fieldSlot(dst *nn.Params, f **tensor.Tensor, ref *nn.Params) **tensor.Tensor {
	switch f {
	case &ref.W:
		return &dst.W
	case &ref.B:
		return &dst.B
	case &ref.Gamma:
		return &dst.Gamma
	default:
		return &dst.Beta
	}
}

// seedStageVelocities re-seeds momentum state for this pipeline
// stage's owned layers after a restore; other layers are never stepped
// here and keep no velocity.
func seedStageVelocities(cfg *runConfig, mom *nn.Momentum, net *nn.Network, st strategy.PipelineStage) {
	if !velRestorable(cfg, mom) {
		return
	}
	for l := st.Start; l < st.End; l++ {
		v := cfg.initState.Vel[l]
		seedVel(mom, net.Params[l].W, v.W)
		seedVel(mom, net.Params[l].B, v.B)
		seedVel(mom, net.Params[l].Gamma, v.Gamma)
		seedVel(mom, net.Params[l].Beta, v.Beta)
	}
}
