package dist

import (
	"strings"
	"sync"
	"testing"

	"paradl/internal/tensor"
)

// TestAllReduceDeterministic: every PE ends with the identical sum,
// reduced in ascending rank order regardless of arrival order.
func TestAllReduceDeterministic(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	results := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			x := tensor.New(3)
			x.Fill(float64(rank + 1))
			results[rank] = c.AllReduceSum(x)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if got := results[r].At(0); got != 10 {
			t.Fatalf("rank %d: sum %g, want 10", r, got)
		}
		if !results[r].AllClose(results[0], 0) {
			t.Fatalf("rank %d diverged from rank 0", r)
		}
	}
}

// TestAllGatherOrder: shards concatenate in rank order along the axis.
func TestAllGatherOrder(t *testing.T) {
	const p = 3
	w := NewWorld(p)
	results := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			x := tensor.New(2, 1)
			x.Fill(float64(rank))
			results[rank] = c.AllGather(x, 1)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for col := 0; col < p; col++ {
			if got := results[r].At(0, col); got != float64(col) {
				t.Fatalf("rank %d col %d: %g, want %d", r, col, got, col)
			}
		}
	}
}

// TestSubCommIsolation: the §3.6 grid layout — two groups {0,1} and
// {2,3} plus two segments {0,2} and {1,3} — runs group allreduces and
// segment allgathers concurrently over one world, and every collective
// sees only its own members.
func TestSubCommIsolation(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	sums := make([]*tensor.Tensor, p)
	gathers := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			group := c.Sub([]int{rank / 2 * 2, rank/2*2 + 1})
			seg := c.Sub([]int{rank % 2, rank%2 + 2})
			if group.Size() != 2 || seg.Size() != 2 {
				t.Errorf("rank %d: group size %d, segment size %d, want 2, 2", rank, group.Size(), seg.Size())
				return
			}
			if got, want := group.Rank(), rank%2; got != want {
				t.Errorf("rank %d: group rank %d, want %d", rank, got, want)
				return
			}
			if got, want := seg.Rank(), rank/2; got != want {
				t.Errorf("rank %d: segment rank %d, want %d", rank, got, want)
				return
			}
			x := tensor.New(2)
			x.Fill(float64(rank + 1))
			sums[rank] = group.AllReduceSum(x.Clone())
			gathers[rank] = seg.AllGather(x, 0)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		wantSum := float64(1 + 2)
		if r >= 2 {
			wantSum = 3 + 4
		}
		if got := sums[r].At(0); got != wantSum {
			t.Fatalf("rank %d: group sum %g, want %g", r, got, wantSum)
		}
		// Segment gather concatenates {k+1, k+3} for segment k = r%2.
		k := r % 2
		for g := 0; g < 2; g++ {
			if got, want := gathers[r].At(g*2), float64(g*2+k+1); got != want {
				t.Fatalf("rank %d: segment gather[%d] = %g, want %g", r, g*2, got, want)
			}
		}
	}
}

// TestSubValidation: malformed memberships panic before any traffic.
func TestSubValidation(t *testing.T) {
	w := NewWorld(3)
	c := w.Comm(0)
	for name, members := range map[string][]int{
		"empty":      {},
		"duplicate":  {0, 0},
		"out-range":  {0, 3},
		"non-member": {1, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s membership %v must panic", name, members)
				}
			}()
			c.Sub(members)
		}()
	}
}

// TestSubOfSub: membership composes through nested sub-communicators —
// Sub's members are always ranks of the communicator it is called on.
func TestSubOfSub(t *testing.T) {
	w := NewWorld(4)
	results := make([]*tensor.Tensor, 4)
	var wg sync.WaitGroup
	for _, r := range []int{1, 2} {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			upper := w.Comm(rank).Sub([]int{1, 2, 3}) // world ranks 1..3
			duo := upper.Sub([]int{0, 1})             // upper ranks 0,1 = world ranks 1,2
			x := tensor.New(1)
			x.Set(float64(rank), 0)
			results[rank] = duo.AllReduceSum(x)
		}(r)
	}
	wg.Wait()
	for _, r := range []int{1, 2} {
		if got := results[r].At(0); got != 3 {
			t.Fatalf("rank %d: nested sum %g, want 3", r, got)
		}
	}
}

// TestWorldAbortOnFailure: one failing PE tears the world down instead
// of deadlocking peers blocked in Recv.
func TestWorldAbortOnFailure(t *testing.T) {
	_, err := runWorld(2, 0, func(c *Comm) ([]float64, error) {
		if c.Rank() == 0 {
			panic("injected failure")
		}
		c.Recv(0) // would block forever without the abort path
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("want injected failure error, got %v", err)
	}
}

// TestSendIsolation: messages are deep copies; mutating the original
// after Send must not corrupt the delivered payload.
func TestSendIsolation(t *testing.T) {
	w := NewWorld(2)
	src := tensor.New(2)
	src.Fill(7)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, src)
	src.Fill(-1)
	got := c1.Recv(0)
	if got.At(0) != 7 {
		t.Fatalf("payload mutated in flight: %v", got)
	}
}
