package dist

import (
	"strings"
	"sync"
	"testing"

	"paradl/internal/tensor"
)

// TestAllReduceDeterministic: every PE ends with the identical sum,
// reduced in ascending rank order regardless of arrival order.
func TestAllReduceDeterministic(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	results := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			x := tensor.New(3)
			x.Fill(float64(rank + 1))
			results[rank] = c.AllReduceSum(x)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		if got := results[r].At(0); got != 10 {
			t.Fatalf("rank %d: sum %g, want 10", r, got)
		}
		if !results[r].AllClose(results[0], 0) {
			t.Fatalf("rank %d diverged from rank 0", r)
		}
	}
}

// TestAllGatherOrder: shards concatenate in rank order along the axis.
func TestAllGatherOrder(t *testing.T) {
	const p = 3
	w := NewWorld(p)
	results := make([]*tensor.Tensor, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			x := tensor.New(2, 1)
			x.Fill(float64(rank))
			results[rank] = c.AllGather(x, 1)
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for col := 0; col < p; col++ {
			if got := results[r].At(0, col); got != float64(col) {
				t.Fatalf("rank %d col %d: %g, want %d", r, col, got, col)
			}
		}
	}
}

// TestWorldAbortOnFailure: one failing PE tears the world down instead
// of deadlocking peers blocked in Recv.
func TestWorldAbortOnFailure(t *testing.T) {
	_, err := runWorld(2, 0, func(c *Comm) ([]float64, error) {
		if c.Rank() == 0 {
			panic("injected failure")
		}
		c.Recv(0) // would block forever without the abort path
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("want injected failure error, got %v", err)
	}
}

// TestSendIsolation: messages are deep copies; mutating the original
// after Send must not corrupt the delivered payload.
func TestSendIsolation(t *testing.T) {
	w := NewWorld(2)
	src := tensor.New(2)
	src.Fill(7)
	c0, c1 := w.Comm(0), w.Comm(1)
	c0.Send(1, src)
	src.Fill(-1)
	got := c1.Recv(0)
	if got.At(0) != 7 {
		t.Fatalf("payload mutated in flight: %v", got)
	}
}
