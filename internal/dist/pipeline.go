package dist

import (
	"fmt"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/profile"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
	"paradl/internal/trace"
)

// RunPipeline executes layer/pipeline parallelism (§3.3): the network is
// cut into p contiguous stages, each owned exclusively by one PE, and a
// batch flows through as microbatches GPipe-style — all microbatches
// forward, then a backward flush in reverse order, then one local SGD
// step per stage. Activations and activation gradients are the only
// traffic, point-to-point between neighbouring stages; weights are never
// exchanged because no two PEs share a layer.
//
// Microbatch gradients are scaled by n_mb/B before the backward pass, so
// their sum is exactly the full-batch mean gradient. Per-iteration
// losses therefore match the sequential baseline up to summation
// reassociation for models without batch norm; BN statistics are
// per-microbatch (the GPipe semantics), which is a genuine semantic
// deviation the correctness harness documents rather than hides. It is
// the p1=1 edge of the data×pipeline grid.
//
// Deprecated: use Run with Plan{Strategy: core.Pipeline, P2: p}.
func RunPipeline(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	return Run(m, batches, Plan{Strategy: core.Pipeline, P2: p}, WithSeed(seed), WithLR(lr))
}

// runDataPipeline is the shared engine behind the pipeline (p1=1) and
// data+pipeline registry entries — the §3.6 grid recipe applied to
// GPipe stages: each of p1 data-parallel groups pipelines its own batch
// shard through p2 stages, and the p2 segmented cross-groups — {stage k
// of every group}, which hold identical layer ranges — carry the
// data-parallel gradient exchange. Per-microbatch gradients are
// pre-scaled by n_mb/B (the GLOBAL batch), so each stage's accumulated
// gradient is exactly its group's contribution to the full-batch mean
// gradient and the segment exchange is a plain sum.
func runDataPipeline(m *nn.Model, batches []Batch, cfg *runConfig, p1, p2 int, label string) (*Result, error) {
	g := m.G()
	if p2 < 1 || p2 > g {
		return nil, fmt.Errorf("dist: %s needs 1 <= p2 <= G=%d stages, got p2=%d", label, g, p2)
	}
	if err := checkGrid(m, batches, p1, p2, label); err != nil {
		return nil, err
	}
	gph, err := nn.CompileGraph(m)
	if err != nil {
		return nil, err
	}
	bounds, err := legalStages(m, gph, p2, label)
	if err != nil {
		return nil, err
	}
	stages := strategy.ContiguousStages(bounds)
	resultRank := p2 - 1 // group 0's last stage: the first PE to own a global loss
	losses, err := runGrid(p1, p2, resultRank, func(world, group, seg *Comm) ([]float64, error) {
		net, err := cfg.replica(m)
		if err != nil {
			return nil, err
		}
		step := newStepper(cfg)
		seedStageVelocities(cfg, step.mom, net, stages[group.Rank()])
		ex := newGradExchanger(seg, cfg)
		st := stages[group.Rank()]
		lastStage := group.Rank() == group.Size()-1
		tr := cfg.tracer(world.Rank())
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			tr.Iter(cfg.startIter + bi)
			tr.Begin(trace.Idle)
			cfg.maybeFail(world.Rank(), bi)
			x, labels, weight := groupShard(&batches[bi], seg.Rank(), p1)
			loss := dataPipelineStep(group, seg, ex, net, st, x, labels, weight, step, tr)
			if lastStage {
				// The last-stage segment sums the per-group weighted
				// losses into the global mean loss.
				tr.Begin(trace.CollectiveWait)
				loss = seg.AllReduceScalar(loss)
				tr.Begin(trace.ComputeBackward)
				out = append(out, loss)
				if world.Rank() == resultRank {
					cfg.fire(bi, loss)
				}
			}
			if cfg.snapshotDue(bi) {
				tr.Begin(trace.CheckpointPut)
				if seg.Rank() == 0 {
					// Group 0 (the groups are bit-identical replicas) streams
					// every stage's owned layers to its last stage — the
					// result rank, which also owns the loss series.
					params, vel := gatherPipelineState(group, net, stages, step.mom)
					if world.Rank() == resultRank {
						cfg.emit(m.Name, bi, out, params, vel)
					}
				}
				// Checkpoint barrier — see runDataFilter.
				world.AllReduceScalar(0)
			}
		}
		tr.End()
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: label, P: p1 * p2, P1: p1, P2: p2, Losses: losses}, nil
}

// balanceStages splits the G layers into p contiguous groups via the
// oracle's own bottleneck-minimizing pipeline partition (§5.3.3), with
// per-layer FW+BW FLOPs standing in for profiled times so the executed
// stage boundaries cannot drift from the projected ones.
func balanceStages(m *nn.Model, p int) []strategy.Range {
	g := m.G()
	times := &profile.LayerTimes{FW: make([]float64, g), BW: make([]float64, g)}
	for l := range m.Layers {
		times.FW[l] = float64(m.Layers[l].FwdFLOPs())
		times.BW[l] = float64(m.Layers[l].BwdFLOPs())
	}
	groups := core.PartitionPipeline(times, p)
	bounds := make([]strategy.Range, len(groups))
	for i, gr := range groups {
		bounds[i] = strategy.Range{Start: gr.Start, End: gr.End}
	}
	return bounds
}

// legalStages returns the executed stage partition: the FLOP-balanced
// bounds for chain models, and for residual models the same bounds
// with every boundary snapped to the nearest LEGAL cut — one that
// keeps each residual block's tap, shortcut, and merge inside one
// stage (nn.Graph.LegalCut), since only the chain activation crosses a
// stage boundary. When the model does not admit p-1 legal cuts the
// partition is genuinely unsupported and the error names the block a
// cut would sever.
func legalStages(m *nn.Model, gph *nn.Graph, p int, label string) ([]strategy.Range, error) {
	bounds := balanceStages(m, p)
	if !gph.HasBranches() || len(bounds) <= 1 {
		return bounds, nil
	}
	var legal []int
	for c := 1; c < m.G(); c++ {
		if gph.LegalCut(c) {
			legal = append(legal, c)
		}
	}
	need := len(bounds) - 1
	if len(legal) < need {
		var example error
		for c := 1; c < m.G() && example == nil; c++ {
			example = gph.CutViolation(c)
		}
		return nil, fmt.Errorf("dist: %s cannot split model %q into %d stages: only %d stage boundaries keep every residual block intact (%v)",
			label, m.Name, p, len(legal), example)
	}
	// Snap each balanced boundary to the nearest legal cut, keeping the
	// cuts strictly increasing (ties break toward the earlier cut);
	// feasibility-aware so later boundaries always have cuts left.
	cuts := make([]int, 0, need)
	lo := 0
	for i := 1; i <= need; i++ {
		hi := len(legal) - (need - i) // exclusive upper index bound + 1
		best := lo
		for j := lo + 1; j < hi; j++ {
			if abs(legal[j]-bounds[i].Start) < abs(legal[best]-bounds[i].Start) {
				best = j
			}
		}
		cuts = append(cuts, legal[best])
		lo = best + 1
	}
	out := make([]strategy.Range, len(bounds))
	prev := 0
	for i, c := range cuts {
		out[i] = strategy.Range{Start: prev, End: c}
		prev = c
	}
	out[len(out)-1] = strategy.Range{Start: prev, End: m.G()}
	return out, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// dataPipelineStep pushes this group's batch shard x (weighted n_g/B in
// the global loss) through the group's pipeline as microbatches,
// exchanges the accumulated stage gradients across the segment, and
// applies this stage's optimizer step. It returns the group's weighted
// shard loss on the last stage (0 elsewhere). The stage-gradient
// exchange is bucketed (ex): a layer's accumulated gradient is final
// once the LAST microbatch's backward has passed it, so it enters the
// segment exchange right there, overlapping the rest of the flush.
func dataPipelineStep(c, seg *Comm, ex *gradExchanger, net *nn.Network, st strategy.PipelineStage, x *tensor.Tensor, labels []int, weight float64, step *stepper, tr *trace.PE) float64 {
	rank, p := c.Rank(), c.Size()
	total := x.Dim(0)
	nm := min(p, total)
	sizes := tensor.SplitSizes(total, nm)
	offs := tensor.SplitOffsets(total, nm)

	// Forward: stream every microbatch through this stage's layers via
	// the stage-local graph walk — legalStages guarantees every shortcut
	// in the stage can resolve its tap locally (or to the stage input),
	// so residual blocks execute whole inside their stage.
	gph := net.Graph()
	states := make([][]*nn.LayerState, nm)
	logits := make([]*tensor.Tensor, nm)
	tr.Begin(trace.ComputeForward)
	for mb := 0; mb < nm; mb++ {
		var xin *tensor.Tensor
		if rank == 0 {
			xin = x.Narrow(0, offs[mb], sizes[mb])
		} else {
			// Blocked on the upstream stage: bubble time on the trace
			// until the activation arrives.
			tr.Begin(trace.PipelineTransfer)
			xin = c.Recv(rank - 1)
			tr.Begin(trace.ComputeForward)
		}
		states[mb] = make([]*nn.LayerState, st.End-st.Start)
		out := gph.ForwardRange(st.Start, st.End, xin, func(l int, x2 *tensor.Tensor) *tensor.Tensor {
			y, s := net.ForwardLayer(l, x2)
			states[mb][l-st.Start] = s
			return y
		})
		if rank < p-1 {
			// The stage output is dead here (states keep layer inputs,
			// not outputs), so ownership transfers without a copy.
			tr.Begin(trace.PipelineTransfer)
			c.sendOwned(rank+1, out)
			tr.Begin(trace.ComputeForward)
		} else {
			logits[mb] = out
		}
	}

	// Backward flush in reverse microbatch order, accumulating this
	// stage's gradients across microbatches.
	tr.Begin(trace.ComputeBackward)
	acc := make([]nn.Grads, st.End-st.Start)
	loss := 0.0
	for mb := nm - 1; mb >= 0; mb-- {
		var dy *tensor.Tensor
		if rank == p-1 {
			lbl := labels[offs[mb] : offs[mb]+sizes[mb]]
			mbLoss, dl := tensor.SoftmaxCrossEntropy(logits[mb], lbl)
			mbWeight := weight * float64(sizes[mb]) / float64(total)
			loss += mbLoss * mbWeight
			dl.Scale(mbWeight)
			dy = dl
		} else {
			tr.Begin(trace.PipelineTransfer)
			dy = c.Recv(rank + 1)
			tr.Begin(trace.ComputeBackward)
		}
		dy = gph.BackwardRange(st.Start, st.End, dy, func(l int, d *tensor.Tensor) *tensor.Tensor {
			dx, g := net.BackwardLayer(l, d, states[mb][l-st.Start])
			accumulateGrads(&acc[l-st.Start], g)
			if mb == 0 && ex != nil {
				// The reverse-order flush visits microbatch 0 last, so
				// this layer's accumulation is complete: its exchange can
				// launch while the flush continues below it.
				ex.pushGrads(&acc[l-st.Start])
			}
			return dx
		})
		if rank > 0 {
			tr.Begin(trace.PipelineTransfer)
			c.sendOwned(rank-1, dy)
			tr.Begin(trace.ComputeBackward)
		}
	}

	// Cross-group gradient exchange (§4.5.1, segmented): stage k of
	// every group owns the same layers, so segment k's buckets sum the
	// per-group contributions into the global mean gradient; drain is
	// the pre-step barrier. With p1=1 — pure pipeline — the segment is
	// singleton, ex is nil, and there is no exchange at all.
	if ex != nil {
		ex.drain()
	}

	// This stage owns its layers exclusively within the group: step them
	// locally.
	grads := make([]nn.Grads, net.Model.G())
	copy(grads[st.Start:st.End], acc)
	step.stepNet(net, grads)
	return loss
}
