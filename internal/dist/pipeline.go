package dist

import (
	"fmt"

	"paradl/internal/core"
	"paradl/internal/nn"
	"paradl/internal/profile"
	"paradl/internal/strategy"
	"paradl/internal/tensor"
)

// RunPipeline executes layer/pipeline parallelism (§3.3): the network is
// cut into p contiguous stages, each owned exclusively by one PE, and a
// batch flows through as microbatches GPipe-style — all microbatches
// forward, then a backward flush in reverse order, then one local SGD
// step per stage. Activations and activation gradients are the only
// traffic, point-to-point between neighbouring stages; weights are never
// exchanged because no two PEs share a layer.
//
// Microbatch gradients are scaled by n_mb/B before the backward pass, so
// their sum is exactly the full-batch mean gradient. Per-iteration
// losses therefore match the sequential baseline up to summation
// reassociation for models without batch norm; BN statistics are
// per-microbatch (the GPipe semantics), which is a genuine semantic
// deviation the correctness harness documents rather than hides.
func RunPipeline(m *nn.Model, seed int64, batches []Batch, lr float64, p int) (*Result, error) {
	g := m.G()
	if p < 1 || p > g {
		return nil, fmt.Errorf("dist: pipeline needs 1 <= p <= G=%d stages, got p=%d", g, p)
	}
	if err := checkBatches(m, batches); err != nil {
		return nil, err
	}
	stages := strategy.ContiguousStages(balanceStages(m, p))
	losses, err := runWorld(p, p-1, func(c *Comm) ([]float64, error) {
		net := newReplica(m, seed)
		st := stages[c.Rank()]
		out := make([]float64, 0, len(batches))
		for bi := range batches {
			loss := pipelineStep(c, net, st, &batches[bi], lr)
			if c.Rank() == c.Size()-1 {
				out = append(out, loss)
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Strategy: "pipeline", P: p, Losses: losses}, nil
}

// balanceStages splits the G layers into p contiguous groups via the
// oracle's own bottleneck-minimizing pipeline partition (§5.3.3), with
// per-layer FW+BW FLOPs standing in for profiled times so the executed
// stage boundaries cannot drift from the projected ones.
func balanceStages(m *nn.Model, p int) []strategy.Range {
	g := m.G()
	times := &profile.LayerTimes{FW: make([]float64, g), BW: make([]float64, g)}
	for l := range m.Layers {
		times.FW[l] = float64(m.Layers[l].FwdFLOPs())
		times.BW[l] = float64(m.Layers[l].BwdFLOPs())
	}
	groups := core.PartitionPipeline(times, p)
	bounds := make([]strategy.Range, len(groups))
	for i, gr := range groups {
		bounds[i] = strategy.Range{Start: gr.Start, End: gr.End}
	}
	return bounds
}

// pipelineStep pushes one batch through the pipeline as microbatches and
// applies this stage's SGD step. It returns the batch loss on the last
// stage (0 elsewhere).
func pipelineStep(c *Comm, net *nn.Network, st strategy.PipelineStage, b *Batch, lr float64) float64 {
	rank, p := c.Rank(), c.Size()
	total := b.X.Dim(0)
	nm := min(p, total)
	sizes := tensor.SplitSizes(total, nm)
	offs := tensor.SplitOffsets(total, nm)

	// Forward: stream every microbatch through this stage's layers.
	states := make([][]*nn.LayerState, nm)
	logits := make([]*tensor.Tensor, nm)
	for mb := 0; mb < nm; mb++ {
		var x *tensor.Tensor
		if rank == 0 {
			x = b.X.Narrow(0, offs[mb], sizes[mb])
		} else {
			x = c.Recv(rank - 1)
		}
		states[mb] = make([]*nn.LayerState, st.End-st.Start)
		for l := st.Start; l < st.End; l++ {
			x, states[mb][l-st.Start] = net.ForwardLayer(l, x)
		}
		if rank < p-1 {
			// The stage output is dead here (states keep layer inputs,
			// not outputs), so ownership transfers without a copy.
			c.sendOwned(rank+1, x)
		} else {
			logits[mb] = x
		}
	}

	// Backward flush in reverse microbatch order, accumulating this
	// stage's gradients across microbatches.
	acc := make([]nn.Grads, st.End-st.Start)
	loss := 0.0
	for mb := nm - 1; mb >= 0; mb-- {
		var dy *tensor.Tensor
		if rank == p-1 {
			lbl := b.Labels[offs[mb] : offs[mb]+sizes[mb]]
			mbLoss, dl := tensor.SoftmaxCrossEntropy(logits[mb], lbl)
			weight := float64(sizes[mb]) / float64(total)
			loss += mbLoss * weight
			dl.Scale(weight)
			dy = dl
		} else {
			dy = c.Recv(rank + 1)
		}
		for l := st.End - 1; l >= st.Start; l-- {
			var g nn.Grads
			dy, g = net.BackwardLayer(l, dy, states[mb][l-st.Start])
			accumulateGrads(&acc[l-st.Start], g)
		}
		if rank > 0 {
			c.sendOwned(rank-1, dy)
		}
	}

	// This stage owns its layers exclusively: step them locally.
	grads := make([]nn.Grads, net.Model.G())
	copy(grads[st.Start:st.End], acc)
	net.Step(grads, lr)
	return loss
}
