package dist

import (
	"paradl/internal/tensor"
)

// bnEps matches the epsilon hard-wired into nn.ForwardLayer's batch
// normalization, so synchronized and sequential BN normalize alike.
const bnEps = 1e-5

// syncBNForward is synchronized batch normalization (§4.5.2): the
// per-channel statistics are computed over the GLOBAL mini-batch by
// Allreducing the local sums, so a partitioned run normalizes with
// exactly the statistics the sequential baseline sees. Two passes —
// mean first, then centered squares — mirror the sequential kernel's
// arithmetic so the only divergence is summation reassociation.
func syncBNForward(c *Comm, x, gamma, beta *tensor.Tensor) (*tensor.Tensor, *tensor.BNState) {
	sum, localCnt := channelSums(x)
	sum = c.AllReduceSum(sum)
	cnt := int(c.AllReduceScalar(float64(localCnt)))
	mean := sum
	mean.Scale(1 / float64(cnt))
	variance := c.AllReduceSum(centeredSquares(x, mean))
	variance.Scale(1 / float64(cnt))
	return tensor.BNForwardWithStats(x, gamma, beta, mean, variance, bnEps, cnt)
}

// syncBNBackward finishes the BN backward pass with globally reduced
// channel sums. The returned dgamma/dbeta are already global gradients
// (identical on every PE) and must NOT enter a later gradient
// Allreduce.
func syncBNBackward(c *Comm, dy, gamma *tensor.Tensor, st *tensor.BNState) (dx, dgamma, dbeta *tensor.Tensor) {
	sumDyXhat, sumDy := tensor.BNBackwardReduce(dy, st)
	sumDyXhat = c.AllReduceSum(sumDyXhat)
	sumDy = c.AllReduceSum(sumDy)
	dx = tensor.BNBackwardApply(dy, gamma, st, sumDyXhat, sumDy)
	return dx, sumDyXhat, sumDy
}

// channelSums returns the per-channel sum of x [N, C, spatial...] over
// the batch and spatial dimensions plus the local element count per
// channel — the first-pass reduction of synchronized BN. (It deliberately
// skips the Σx² that tensor.BNLocalStats also produces: the two-pass
// variance below never uses it.)
func channelSums(x *tensor.Tensor) (*tensor.Tensor, int) {
	shape := x.Shape()
	n, ch := shape[0], shape[1]
	vol := 1
	for _, d := range shape[2:] {
		vol *= d
	}
	out := tensor.New(ch)
	xd, od := x.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < ch; ci++ {
			base := (ni*ch + ci) * vol
			for i := 0; i < vol; i++ {
				od[ci] += xd[base+i]
			}
		}
	}
	return out, n * vol
}

// centeredSquares returns the per-channel sum of (x - mean_c)² over the
// batch and spatial dimensions of x [N, C, spatial...].
func centeredSquares(x, mean *tensor.Tensor) *tensor.Tensor {
	shape := x.Shape()
	n, ch := shape[0], shape[1]
	vol := 1
	for _, d := range shape[2:] {
		vol *= d
	}
	out := tensor.New(ch)
	xd, od, md := x.Data(), out.Data(), mean.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < ch; ci++ {
			base := (ni*ch + ci) * vol
			m := md[ci]
			for i := 0; i < vol; i++ {
				d := xd[base+i] - m
				od[ci] += d * d
			}
		}
	}
	return out
}
