package dist

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"paradl/internal/ckpt"
)

// FaultKind names one class of injectable adversity.
type FaultKind string

const (
	// FaultCrash kills a PE at the top of a global iteration — the
	// generalization of WithFailAt to many deaths per run.
	FaultCrash FaultKind = "crash"
	// FaultStraggle stalls a PE's compute for Delay at one iteration,
	// so its peers wait in collectives (the slow-node case; it degrades
	// time, never correctness).
	FaultStraggle FaultKind = "straggle"
	// FaultCorrupt flips a byte of the newest on-disk checkpoint
	// between save and restore; recovery must fall back to an older
	// valid snapshot (requires Policy.CkptDir).
	FaultCorrupt FaultKind = "corrupt"
	// FaultHeal marks the failed PE slot healthy again at Iter: the
	// supervisor grows the shrunken world back toward full width.
	FaultHeal FaultKind = "heal"
)

// Fault is one scheduled adversity. PE is a world rank in the plan the
// fault fires under; after the world shrinks, targets are remapped
// modulo the current world size so every scheduled fault stays
// meaningful at any width.
type Fault struct {
	Kind  FaultKind     `json:"kind"`
	PE    int           `json:"pe,omitempty"`    // crash/straggle target
	Iter  int           `json:"iter"`            // global iteration the fault arms at
	Delay time.Duration `json:"delay,omitempty"` // straggle stall
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultStraggle:
		return fmt.Sprintf("straggle(pe=%d,iter=%d,%v)", f.PE, f.Iter, f.Delay)
	case FaultCorrupt:
		return fmt.Sprintf("corrupt(iter=%d)", f.Iter)
	case FaultHeal:
		return fmt.Sprintf("heal(iter=%d)", f.Iter)
	default:
		return fmt.Sprintf("crash(pe=%d,iter=%d)", f.PE, f.Iter)
	}
}

// FaultSchedule scripts a chaos run: a seeded, replayable list of
// faults the elastic supervisor injects while training. The same seed
// always yields the same schedule (RandomFaultSchedule) and the same
// injected byte offsets (corruption), so every chaos scenario is
// reproducible from one integer.
type FaultSchedule struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Counts tallies the schedule by kind — the chaos harness reports
// these per scenario.
func (s *FaultSchedule) Counts() map[FaultKind]int {
	m := map[FaultKind]int{}
	if s != nil {
		for _, f := range s.Faults {
			m[f.Kind]++
		}
	}
	return m
}

// RandomFaultSchedule draws a replayable schedule for a p-wide run of
// iters iterations from seed: 1–3 crashes at distinct iterations, up
// to two stragglers, a checkpoint corruption with probability ~1/3,
// and — when the run is long enough to profit — a heal event after the
// first crash so the supervisor exercises grow-back. Faults are sorted
// by iteration for stable JSON output.
func RandomFaultSchedule(seed int64, p, iters int) *FaultSchedule {
	rng := rand.New(rand.NewSource(seed))
	s := &FaultSchedule{Seed: seed}
	if p < 1 || iters < 1 {
		return s
	}
	nCrash := 1 + rng.Intn(3)
	crashIters := map[int]bool{}
	firstCrash := iters
	for i := 0; i < nCrash; i++ {
		it := rng.Intn(iters)
		if crashIters[it] {
			continue // distinct iterations keep one-death-per-leg semantics simple
		}
		crashIters[it] = true
		if it < firstCrash {
			firstCrash = it
		}
		s.Faults = append(s.Faults, Fault{Kind: FaultCrash, PE: rng.Intn(p), Iter: it})
	}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		s.Faults = append(s.Faults, Fault{
			Kind:  FaultStraggle,
			PE:    rng.Intn(p),
			Iter:  rng.Intn(iters),
			Delay: time.Duration(200+rng.Intn(1800)) * time.Microsecond,
		})
	}
	if rng.Intn(3) == 0 {
		s.Faults = append(s.Faults, Fault{Kind: FaultCorrupt, Iter: firstCrash})
	}
	if firstCrash+1 < iters && rng.Intn(2) == 0 {
		s.Faults = append(s.Faults, Fault{Kind: FaultHeal, Iter: firstCrash + 1 + rng.Intn(iters-firstCrash-1)})
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].Iter < s.Faults[j].Iter })
	return s
}

// scheduleState is the supervisor's mutable view of a FaultSchedule:
// crashes and heals are consumed as they fire, corruptions as they are
// applied; stragglers re-arm on every leg covering their iteration
// (replaying a window replays its slowness — deterministic either way).
type scheduleState struct {
	seed      int64
	crashes   []Fault
	straggles []Fault
	corrupts  []Fault
	heals     []int // sorted ascending
}

func newScheduleState(fs *FaultSchedule) *scheduleState {
	s := &scheduleState{}
	if fs == nil {
		return s
	}
	s.seed = fs.Seed
	for _, f := range fs.Faults {
		switch f.Kind {
		case FaultCrash:
			s.crashes = append(s.crashes, f)
		case FaultStraggle:
			s.straggles = append(s.straggles, f)
		case FaultCorrupt:
			s.corrupts = append(s.corrupts, f)
		case FaultHeal:
			s.heals = append(s.heals, f.Iter)
		}
	}
	sort.Ints(s.heals)
	return s
}

// arm translates the schedule's faults for a leg over global
// iterations [start, end) in a p-wide world into run options: the
// earliest pending crash in the window (the engines model one death
// per leg; later crashes fire on subsequent legs) and every straggler
// stall in the window. Targets are remapped modulo p.
func (s *scheduleState) arm(p, start, end int) []Option {
	var opts []Option
	armed := -1
	for i, f := range s.crashes {
		if f.Iter < start || f.Iter >= end {
			continue
		}
		if armed < 0 || f.Iter < s.crashes[armed].Iter {
			armed = i
		}
	}
	if armed >= 0 {
		f := s.crashes[armed]
		opts = append(opts, WithFailAt(f.PE%p, f.Iter))
	}
	for _, f := range s.straggles {
		if f.Iter >= start && f.Iter < end && f.Delay > 0 {
			opts = append(opts, WithDelay(f.PE%p, f.Iter, f.Delay))
		}
	}
	return opts
}

// consumeCrash retires the scheduled crash that produced pf (matched
// by iteration — arm injects at most one crash per leg). A failure
// injected by the caller's own WithFailAt matches nothing and consumes
// nothing.
func (s *scheduleState) consumeCrash(pf *PEFailure) {
	for i, f := range s.crashes {
		if f.Iter == pf.Iter {
			s.crashes = append(s.crashes[:i], s.crashes[i+1:]...)
			return
		}
	}
}

// growBoundary returns the end of the next leg: len(batches) at full
// width, else the earliest pending heal iteration strictly inside
// (start, n) — the point where the supervisor stops the shrunken world
// and grows back.
func (s *scheduleState) growBoundary(start, n int, shrunken bool) int {
	if !shrunken {
		return n
	}
	for _, h := range s.heals {
		if h > start && h < n {
			return h
		}
	}
	return n
}

// healDue reports a pending heal at or before start — the checkpoint
// already covers the heal point, so the world can grow immediately
// without running a leg.
func (s *scheduleState) healDue(start int) bool {
	return len(s.heals) > 0 && s.heals[0] <= start
}

// consumeHeal retires every heal at or before iter (stacked heals
// collapse into one grow-back — the world is already full).
func (s *scheduleState) consumeHeal(iter int) {
	for len(s.heals) > 0 && s.heals[0] <= iter {
		s.heals = s.heals[1:]
	}
}

// applyCorruptions fires every pending corruption scheduled at or
// before failIter against the newest checkpoint file in dir. The
// flipped byte's offset derives from the schedule seed, so a replay
// corrupts identically. Corruption is an injected fault: errors here
// (e.g. no file yet) mean there was nothing to corrupt, and are
// ignored — LatestValid decides what the damage cost.
func (s *scheduleState) applyCorruptions(dir string, failIter int) {
	rest := s.corrupts[:0]
	for _, f := range s.corrupts {
		if f.Iter > failIter {
			rest = append(rest, f)
			continue
		}
		if path, err := ckpt.Latest(dir); err == nil {
			_ = ckpt.CorruptFile(path, s.seed+int64(f.Iter)*7919)
		}
	}
	s.corrupts = rest
}
