package dist

// Overlap determinism suite (collective level): nonblocking collectives
// must be bit-identical to their blocking counterparts at every width
// and on every algorithm path (binomial, two-tree, ring), including
// sub-communicators, several operations in flight at once, and the
// Handle misuse contracts. The training-level half of the suite —
// overlap-on vs overlap-off runs pinned loss-bit-identical — lives in
// overlap_train_test.go.

import (
	"strings"
	"sync"
	"testing"

	"paradl/internal/tensor"
)

// TestOverlapAllReduceBitIdentical: IAllReduceSum across widths and all
// three algorithm regimes returns exactly the blocking AllReduceSum's
// bits on every rank.
func TestOverlapAllReduceBitIdentical(t *testing.T) {
	for _, p := range collectiveWidths {
		for _, n := range allReduceSizes {
			blocking := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.AllReduceSum(rankInput(c.Rank(), n))
			})
			overlapped := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.IAllReduceSum(rankInput(c.Rank(), n)).Wait()
			})
			for rank := 0; rank < p; rank++ {
				if !overlapped[rank].AllClose(blocking[rank], 0) {
					t.Fatalf("p=%d n=%d rank %d: nonblocking allreduce differs from blocking", p, n, rank)
				}
			}
		}
	}
}

// TestOverlapTwoTreeHubParity pins the two-tree association order to
// the reference ascending-rank order across its whole size window,
// including uneven halves and chunk tails (255 = 128+127 halves).
func TestOverlapTwoTreeHubParity(t *testing.T) {
	const reassocTol = 1e-12
	for _, p := range collectiveWidths {
		for _, n := range []int{twoTreeMinElems, twoTreeSize, ringMinElems - 1} {
			want := hubSum(p, n)
			got := eachRank(t, p, func(c *Comm) *tensor.Tensor {
				return c.IAllReduceSum(rankInput(c.Rank(), n)).Wait()
			})
			if d := got[0].MaxDiff(want); d > reassocTol {
				t.Fatalf("p=%d n=%d: two-tree vs hub order differs by %.3e", p, n, d)
			}
			for rank := 1; rank < p; rank++ {
				if !got[rank].AllClose(got[0], 0) {
					t.Fatalf("p=%d n=%d: rank %d diverged", p, n, rank)
				}
			}
		}
	}
}

// TestOverlapScatterGatherBitIdentical: the nonblocking reduce-scatter
// and allgather match their blocking counterparts bit for bit,
// including remainder-bearing shard splits.
func TestOverlapScatterGatherBitIdentical(t *testing.T) {
	for _, p := range collectiveWidths {
		rows, cols := p+2, 3
		n := rows * cols
		blockRS := eachRank(t, p, func(c *Comm) *tensor.Tensor {
			return c.ReduceScatterSum(rankInput(c.Rank(), n).Reshape(rows, cols), 0)
		})
		overlapRS := eachRank(t, p, func(c *Comm) *tensor.Tensor {
			return c.IReduceScatterSum(rankInput(c.Rank(), n).Reshape(rows, cols), 0).Wait()
		})
		blockAG := eachRank(t, p, func(c *Comm) *tensor.Tensor {
			return c.AllGather(rankInput(c.Rank(), 2*(c.Rank()+1)).Reshape(c.Rank()+1, 2), 0)
		})
		overlapAG := eachRank(t, p, func(c *Comm) *tensor.Tensor {
			return c.IAllGather(rankInput(c.Rank(), 2*(c.Rank()+1)).Reshape(c.Rank()+1, 2), 0).Wait()
		})
		for rank := 0; rank < p; rank++ {
			if !overlapRS[rank].AllClose(blockRS[rank], 0) {
				t.Fatalf("p=%d rank %d: nonblocking reduce-scatter differs", p, rank)
			}
			if !overlapAG[rank].AllClose(blockAG[rank], 0) {
				t.Fatalf("p=%d rank %d: nonblocking allgather differs", p, rank)
			}
		}
	}
}

// TestOverlapConcurrentOps: several nonblocking collectives in flight
// on one communicator at once — one per algorithm regime — each land
// the same bits as the blocking calls issued one at a time.
func TestOverlapConcurrentOps(t *testing.T) {
	const p = 5
	input := func(rank, j int) *tensor.Tensor {
		return rankInput(rank*31+j, allReduceSizes[j])
	}
	blocking := make([][]*tensor.Tensor, p)
	eachRank(t, p, func(c *Comm) *tensor.Tensor {
		res := make([]*tensor.Tensor, len(allReduceSizes))
		for j := range allReduceSizes {
			res[j] = c.AllReduceSum(input(c.Rank(), j))
		}
		blocking[c.Rank()] = res
		return nil
	})
	overlapped := make([][]*tensor.Tensor, p)
	eachRank(t, p, func(c *Comm) *tensor.Tensor {
		hs := make([]*Handle, len(allReduceSizes))
		for j := range allReduceSizes {
			hs[j] = c.IAllReduceSum(input(c.Rank(), j))
		}
		res := make([]*tensor.Tensor, len(hs))
		for j, h := range hs {
			res[j] = h.Wait()
		}
		overlapped[c.Rank()] = res
		return nil
	})
	for rank := 0; rank < p; rank++ {
		for j := range allReduceSizes {
			if !overlapped[rank][j].AllClose(blocking[rank][j], 0) {
				t.Fatalf("rank %d op %d: concurrent nonblocking result differs from blocking", rank, j)
			}
		}
	}
}

// TestOverlapSubCommunicators: the §3.6 grid layout with nonblocking
// operations in flight on the group and the segment of each PE
// SIMULTANEOUSLY — the exact concurrency pattern of the data+spatial
// engine's two bucketed exchanges — still matches the blocking results.
func TestOverlapSubCommunicators(t *testing.T) {
	const p = 4
	groupOf := func(rank int) []int { return []int{rank / 2 * 2, rank/2*2 + 1} }
	segOf := func(rank int) []int { return []int{rank % 2, rank%2 + 2} }
	type pair struct{ g, s *tensor.Tensor }
	run := func(overlap bool) []pair {
		w := NewWorld(p)
		out := make([]pair, p)
		var wg sync.WaitGroup
		for r := 0; r < p; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c := w.Comm(rank)
				group, seg := c.Sub(groupOf(rank)), c.Sub(segOf(rank))
				a := rankInput(rank, twoTreeSize)
				b := rankInput(rank+100, ringSize)
				if overlap {
					hg, hs := group.IAllReduceSum(a), seg.IAllReduceSum(b)
					out[rank] = pair{g: hg.Wait(), s: hs.Wait()}
					return
				}
				out[rank] = pair{g: group.AllReduceSum(a), s: seg.AllReduceSum(b)}
			}(r)
		}
		wg.Wait()
		return out
	}
	blocking, overlapped := run(false), run(true)
	for rank := 0; rank < p; rank++ {
		if !overlapped[rank].g.AllClose(blocking[rank].g, 0) {
			t.Fatalf("rank %d: group result differs under overlap", rank)
		}
		if !overlapped[rank].s.AllClose(blocking[rank].s, 0) {
			t.Fatalf("rank %d: segment result differs under overlap", rank)
		}
	}
}

// TestOverlapStreamRecycling: Waited operations return their mailbox
// stream to the launcher, so the tagged mailbox plane stays bounded by
// the maximum number of operations in flight — not by the total number
// of launches — across arbitrarily long runs.
func TestOverlapStreamRecycling(t *testing.T) {
	const p, iters = 4, 50
	w := NewWorld(p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			for i := 0; i < iters; i++ {
				c.IAllReduceSum(rankInput(rank, ringSize)).Wait()
			}
			if c.nseq != 1 {
				t.Errorf("rank %d minted %d stream ids for serial ops, want 1", rank, c.nseq)
			}
		}(r)
	}
	wg.Wait()
	entries := 0
	w.tagged.Range(func(any, any) bool { entries++; return true })
	// One op in flight at a time: one stream (plus any derived two-tree
	// stream) over O(p) ring pairs — nowhere near iters×p.
	if entries > 4*p {
		t.Fatalf("tagged mailbox plane grew to %d entries over %d serial ops (leak)", entries, iters)
	}
}

// TestOverlapHandleDoubleWait: a second Wait is a no-op returning the
// same tensor without blocking, on both real and degenerate handles.
func TestOverlapHandleDoubleWait(t *testing.T) {
	eachRank(t, 2, func(c *Comm) *tensor.Tensor {
		h := c.IAllReduceSum(rankInput(c.Rank(), treeSize))
		first := h.Wait()
		if second := h.Wait(); second != first {
			t.Errorf("rank %d: second Wait returned a different tensor", c.Rank())
		}
		return nil
	})
	w := NewWorld(1)
	x := rankInput(0, 8)
	h := w.Comm(0).IAllReduceSum(x)
	if h.Wait() != x || h.Wait() != x {
		t.Fatal("singleton handle must return the input on every Wait")
	}
}

// TestOverlapDroppedHandleFails: a PE that finishes its run with a
// launched-but-unwaited handle fails the world with a clear message —
// a dropped handle means gradients were never synchronized.
func TestOverlapDroppedHandleFails(t *testing.T) {
	_, err := runWorld(2, 0, func(c *Comm) ([]float64, error) {
		c.IAllReduceSum(rankInput(c.Rank(), treeSize)) // dropped!
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "without Wait") {
		t.Fatalf("dropped handle must fail the world with a Wait message, got: %v", err)
	}
}

// TestOverlapAbortUnblocksWait: a peer failure aborts an in-flight
// nonblocking collective instead of deadlocking the Wait, and the root
// cause is reported.
func TestOverlapAbortUnblocksWait(t *testing.T) {
	_, err := runWorld(2, 0, func(c *Comm) ([]float64, error) {
		if c.Rank() == 0 {
			panic("injected overlap failure")
		}
		h := c.IAllReduceSum(rankInput(c.Rank(), ringSize))
		h.Wait() // must abort, not hang: rank 0 never launches its op
		return nil, nil
	})
	if err == nil || !strings.Contains(err.Error(), "injected overlap failure") {
		t.Fatalf("want the injected failure as the root cause, got: %v", err)
	}
}
