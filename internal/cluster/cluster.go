// Package cluster models the HPC system the paper evaluates on: GPU
// compute devices grouped into multi-GPU nodes, nodes grouped into
// racks, racks joined by a 3-level fat tree with 1:3 inter-rack
// oversubscription (§5.1 "Evaluation Environment").
//
// The model supplies the two kinds of parameters ParaDL consumes:
//
//   - compute: peak FLOP/s, memory bandwidth/capacity, an efficiency
//     curve, and per-kernel launch overhead (the empirical FW/BW/WU
//     parametrization of §4.4 derives from these), and
//   - communication: per-level Hockney α/β pairs for both the NCCL-like
//     GPU-direct path and the MPI-through-host path the paper's spatial
//     halo exchange used.
package cluster

import (
	"fmt"
	"strings"
)

// LinkLevel classifies a PE pair by the deepest interconnect level their
// traffic crosses. Levels are ordered from fastest to slowest.
type LinkLevel int

const (
	// IntraNode traffic stays on NVLink inside one node.
	IntraNode LinkLevel = iota
	// IntraRack traffic crosses the node's InfiniBand HCA and one leaf
	// switch.
	IntraRack
	// InterRack traffic additionally crosses the oversubscribed spine.
	InterRack
)

// String implements fmt.Stringer.
func (l LinkLevel) String() string {
	switch l {
	case IntraNode:
		return "intra-node"
	case IntraRack:
		return "intra-rack"
	case InterRack:
		return "inter-rack"
	default:
		return fmt.Sprintf("LinkLevel(%d)", int(l))
	}
}

// AlphaBeta is one Hockney model point: α startup seconds, β seconds
// per byte.
type AlphaBeta struct {
	Alpha float64
	Beta  float64
}

// P2PTime returns α + m·β for an m-byte message.
func (ab AlphaBeta) P2PTime(bytes float64) float64 { return ab.Alpha + bytes*ab.Beta }

// GPU describes one processing element.
type GPU struct {
	// PeakFLOPS is peak single-precision throughput (FLOP/s).
	PeakFLOPS float64
	// MemBandwidth is device memory bandwidth (bytes/s).
	MemBandwidth float64
	// MemBytes is device memory capacity.
	MemBytes float64
	// LaunchOverhead is the fixed cost of one kernel launch (s).
	LaunchOverhead float64
}

// System is the full machine description.
type System struct {
	Name string

	GPUsPerNode  int
	NodesPerRack int
	Racks        int

	GPU GPU

	// NCCL holds GPU-direct α/β per link level; MPI holds the
	// through-host path used for halo exchange and Allgatherv (§5.1:
	// NCCL lacked P2P and Allgatherv, so the spatial strategy used MPI).
	NCCL map[LinkLevel]AlphaBeta
	MPI  map[LinkLevel]AlphaBeta

	// Oversubscription is the inter-rack bandwidth divisor of the fat
	// tree (3 means 1:3).
	Oversubscription float64

	// UplinksPerNode is the number of independent InfiniBand HCAs per
	// node (2 × EDR in the paper's machine). The self-contention
	// coefficient φ of segmented collectives is GPUsPerNode/UplinksPerNode
	// (§5.2: two disjoint Allreduces share one IB link → φ = 2).
	UplinksPerNode int

	// BytesPerItem is δ of Table 2 (bytes per tensor element on the
	// wire and in memory). The paper's frameworks train in fp32.
	BytesPerItem float64

	// MemReuseFactor is γ of Table 2: the fraction of the naive
	// aggregate memory a framework actually needs after buffer reuse.
	MemReuseFactor float64
}

// TotalGPUs returns the number of PEs in the system.
func (s *System) TotalGPUs() int { return s.GPUsPerNode * s.NodesPerRack * s.Racks }

// Node returns the node index hosting PE id.
func (s *System) Node(pe int) int { return pe / s.GPUsPerNode }

// Rack returns the rack index hosting PE id.
func (s *System) Rack(pe int) int { return pe / (s.GPUsPerNode * s.NodesPerRack) }

// Level returns the link level between two PEs.
func (s *System) Level(a, b int) LinkLevel {
	switch {
	case s.Node(a) == s.Node(b):
		return IntraNode
	case s.Rack(a) == s.Rack(b):
		return IntraRack
	default:
		return InterRack
	}
}

// GroupLevel returns the deepest level any pair within a contiguous
// group of p PEs starting at PE base crosses; it selects which α/β a
// collective over that group should use (§4.4: α and β change with the
// number of PEs in a hierarchical machine).
func (s *System) GroupLevel(base, p int) LinkLevel {
	if p <= 1 {
		return IntraNode
	}
	last := base + p - 1
	switch {
	case s.Node(base) == s.Node(last):
		return IntraNode
	case s.Rack(base) == s.Rack(last):
		return IntraRack
	default:
		return InterRack
	}
}

// CollectiveAB returns the α/β pair for a ring collective spanning a
// contiguous group of p PEs starting at base, on the GPU-direct path.
func (s *System) CollectiveAB(base, p int) AlphaBeta {
	return s.NCCL[s.GroupLevel(base, p)]
}

// MPIAB returns the through-host α/β for the same span.
func (s *System) MPIAB(base, p int) AlphaBeta {
	return s.MPI[s.GroupLevel(base, p)]
}

// Validate checks structural sanity.
func (s *System) Validate() error {
	if s.GPUsPerNode <= 0 || s.NodesPerRack <= 0 || s.Racks <= 0 {
		return fmt.Errorf("cluster: non-positive extent in %d×%d×%d", s.GPUsPerNode, s.NodesPerRack, s.Racks)
	}
	if s.GPU.PeakFLOPS <= 0 || s.GPU.MemBandwidth <= 0 || s.GPU.MemBytes <= 0 {
		return fmt.Errorf("cluster: GPU parameters must be positive")
	}
	for _, lvl := range []LinkLevel{IntraNode, IntraRack, InterRack} {
		if _, ok := s.NCCL[lvl]; !ok {
			return fmt.Errorf("cluster: missing NCCL α/β for %v", lvl)
		}
		if _, ok := s.MPI[lvl]; !ok {
			return fmt.Errorf("cluster: missing MPI α/β for %v", lvl)
		}
	}
	if s.Oversubscription < 1 {
		return fmt.Errorf("cluster: oversubscription %.2f < 1", s.Oversubscription)
	}
	if s.UplinksPerNode <= 0 {
		return fmt.Errorf("cluster: uplinks per node must be positive")
	}
	if s.BytesPerItem <= 0 {
		return fmt.Errorf("cluster: bytes per item must be positive")
	}
	if s.MemReuseFactor <= 0 || s.MemReuseFactor > 1 {
		return fmt.Errorf("cluster: memory reuse factor γ=%.2f outside (0,1]", s.MemReuseFactor)
	}
	return nil
}

// ByName returns a system description by its canonical name. The empty
// string and "default" alias the paper's evaluation machine, so wire
// requests may omit the cluster; the resolved System always carries its
// canonical name ("abci-like"), which is what content-addressed config
// keys embed. The geometry variants keep the paper's GPU and link
// parameters but re-shape the hierarchy, so collectives cross different
// levels at the same PE count — the cluster axis of the workload
// sweep.
func ByName(name string) (*System, error) {
	switch name {
	case "", "default", "abci-like":
		return Default(), nil
	case "dense-node":
		return DenseNode(), nil
	case "dual-gpu":
		return DualGPU(), nil
	case "flat-rack":
		return FlatRack(), nil
	default:
		return nil, fmt.Errorf("cluster: unknown system %q (want %s)", name, strings.Join(Names(), "|"))
	}
}

// Names lists every named system geometry, paper machine first.
func Names() []string { return []string{"abci-like", "dense-node", "dual-gpu", "flat-rack"} }

// DenseNode is the paper machine re-packed into DGX-style fat nodes:
// eight GPUs share one node (and its two uplinks, so segmented
// collectives self-contend at φ = 4), nine nodes per rack. Groups of
// up to eight PEs stay on NVLink where the paper machine would already
// cross the rack fabric.
func DenseNode() *System {
	s := Default()
	s.Name = "dense-node"
	s.GPUsPerNode = 8
	s.NodesPerRack = 9
	s.Racks = 16 // 8·9·16 = 1152 ≥ 1024 GPUs
	mustValidate(s)
	return s
}

// DualGPU is the opposite packing: two GPUs per node, 34 nodes per
// rack. Almost every collective leaves the node immediately, but each
// PE pair has an uplink to itself (φ = 1).
func DualGPU() *System {
	s := Default()
	s.Name = "dual-gpu"
	s.GPUsPerNode = 2
	s.NodesPerRack = 34
	s.Racks = 16 // 2·34·16 = 1088 ≥ 1024 GPUs
	mustValidate(s)
	return s
}

// FlatRack keeps the paper's node but flattens the fabric: 68 nodes in
// one giant rack tier with full bisection (no oversubscribed spine
// within the first 272 GPUs), modelling a single-tier leaf-spine pod.
func FlatRack() *System {
	s := Default()
	s.Name = "flat-rack"
	s.NodesPerRack = 68
	s.Racks = 4 // 4·68·4 = 1088 ≥ 1024 GPUs
	mustValidate(s)
	return s
}

func mustValidate(s *System) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}

// Default builds the paper's evaluation machine (§5.1): nodes with four
// 16-GB V100-class GPUs joined by NVLink (20 GB/s), dual-EDR InfiniBand
// uplinks (2 × 12.5 GB/s), 17 nodes per rack, and a 3-level fat tree
// with full bisection intra-rack and 1:3 oversubscription inter-rack.
// Enough racks are provisioned for 1024 GPUs.
func Default() *System {
	s := &System{
		Name:         "abci-like",
		GPUsPerNode:  4,
		NodesPerRack: 17,
		Racks:        16, // 4·17·16 = 1088 ≥ 1024 GPUs
		GPU: GPU{
			PeakFLOPS:      15.7e12, // V100 fp32
			MemBandwidth:   900e9,
			MemBytes:       16e9,
			LaunchOverhead: 10e-6,
		},
		// GPU-direct (NCCL-like) path. α grows with switch hops; β is
		// the inverse of the narrowest link. NVLink 20 GB/s intra-node;
		// 2×EDR = 25 GB/s per node; inter-rack divided by the
		// oversubscription factor.
		NCCL: map[LinkLevel]AlphaBeta{
			IntraNode: {Alpha: 8e-6, Beta: 1.0 / 20e9},
			IntraRack: {Alpha: 15e-6, Beta: 1.0 / 12.5e9},
			InterRack: {Alpha: 22e-6, Beta: 1.0 / 12.5e9},
		},
		// Through-host MPI path: higher startup (CPU staging) and PCIe
		// Gen3 x16 (~16 GB/s shared) limiting bandwidth; no GPUDirect.
		MPI: map[LinkLevel]AlphaBeta{
			IntraNode: {Alpha: 25e-6, Beta: 1.0 / 10e9},
			IntraRack: {Alpha: 40e-6, Beta: 1.0 / 8e9},
			InterRack: {Alpha: 50e-6, Beta: 1.0 / 8e9},
		},
		Oversubscription: 3,
		UplinksPerNode:   2,
		BytesPerItem:     4, // fp32
		MemReuseFactor:   0.7,
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}
