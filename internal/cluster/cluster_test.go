package cluster

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalGPUs() < 1024 {
		t.Fatalf("default system must host ≥1024 GPUs, has %d", s.TotalGPUs())
	}
}

func TestPlacementArithmetic(t *testing.T) {
	s := Default()
	if s.Node(0) != 0 || s.Node(3) != 0 || s.Node(4) != 1 {
		t.Fatal("node placement wrong")
	}
	perRack := s.GPUsPerNode * s.NodesPerRack
	if s.Rack(perRack-1) != 0 || s.Rack(perRack) != 1 {
		t.Fatal("rack placement wrong")
	}
}

func TestLevelClassification(t *testing.T) {
	s := Default()
	if s.Level(0, 1) != IntraNode {
		t.Fatal("same node")
	}
	if s.Level(0, 4) != IntraRack {
		t.Fatal("same rack")
	}
	if s.Level(0, s.GPUsPerNode*s.NodesPerRack) != InterRack {
		t.Fatal("different racks")
	}
}

func TestLevelStrings(t *testing.T) {
	for lvl, want := range map[LinkLevel]string{
		IntraNode: "intra-node", IntraRack: "intra-rack", InterRack: "inter-rack",
	} {
		if lvl.String() != want {
			t.Fatalf("String(%d) = %q", int(lvl), lvl.String())
		}
	}
}

func TestCollectiveABSelectsLevel(t *testing.T) {
	s := Default()
	intra := s.CollectiveAB(0, s.GPUsPerNode)
	inter := s.CollectiveAB(0, s.TotalGPUs())
	if intra.Alpha >= inter.Alpha {
		t.Fatal("wider spans pay higher startup")
	}
	if intra.Beta > inter.Beta {
		t.Fatal("NVLink bandwidth must be ≥ IB")
	}
	mpi := s.MPIAB(0, s.GPUsPerNode)
	if mpi.Alpha <= intra.Alpha {
		t.Fatal("host-staged path has higher α")
	}
}

func TestP2PTimeLinear(t *testing.T) {
	ab := AlphaBeta{Alpha: 1e-6, Beta: 1e-9}
	want := 1e-6 + 1000*1e-9
	if got := ab.P2PTime(1000); got < want*(1-1e-12) || got > want*(1+1e-12) {
		t.Fatalf("p2p time %g, want %g", got, want)
	}
}

func TestValidateRejectsBrokenSystems(t *testing.T) {
	broken := func(mutate func(*System)) *System {
		s := Default()
		mutate(s)
		return s
	}
	cases := map[string]*System{
		"zero gpus":     broken(func(s *System) { s.GPUsPerNode = 0 }),
		"no peak flops": broken(func(s *System) { s.GPU.PeakFLOPS = 0 }),
		"missing nccl":  broken(func(s *System) { delete(s.NCCL, InterRack) }),
		"missing mpi":   broken(func(s *System) { delete(s.MPI, IntraNode) }),
		"oversub < 1":   broken(func(s *System) { s.Oversubscription = 0.5 }),
		"no uplinks":    broken(func(s *System) { s.UplinksPerNode = 0 }),
		"zero delta":    broken(func(s *System) { s.BytesPerItem = 0 }),
		"gamma > 1":     broken(func(s *System) { s.MemReuseFactor = 1.5 }),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

// Property: GroupLevel is monotone — growing a group never lowers its
// link level.
func TestGroupLevelMonotoneProperty(t *testing.T) {
	s := Default()
	f := func(pRaw uint16) bool {
		p := int(pRaw)%(s.TotalGPUs()-1) + 1
		return s.GroupLevel(0, p) <= s.GroupLevel(0, p+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
