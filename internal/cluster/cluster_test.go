package cluster

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	s := Default()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.TotalGPUs() < 1024 {
		t.Fatalf("default system must host ≥1024 GPUs, has %d", s.TotalGPUs())
	}
}

func TestPlacementArithmetic(t *testing.T) {
	s := Default()
	if s.Node(0) != 0 || s.Node(3) != 0 || s.Node(4) != 1 {
		t.Fatal("node placement wrong")
	}
	perRack := s.GPUsPerNode * s.NodesPerRack
	if s.Rack(perRack-1) != 0 || s.Rack(perRack) != 1 {
		t.Fatal("rack placement wrong")
	}
}

func TestLevelClassification(t *testing.T) {
	s := Default()
	if s.Level(0, 1) != IntraNode {
		t.Fatal("same node")
	}
	if s.Level(0, 4) != IntraRack {
		t.Fatal("same rack")
	}
	if s.Level(0, s.GPUsPerNode*s.NodesPerRack) != InterRack {
		t.Fatal("different racks")
	}
}

func TestLevelStrings(t *testing.T) {
	for lvl, want := range map[LinkLevel]string{
		IntraNode: "intra-node", IntraRack: "intra-rack", InterRack: "inter-rack",
	} {
		if lvl.String() != want {
			t.Fatalf("String(%d) = %q", int(lvl), lvl.String())
		}
	}
}

func TestCollectiveABSelectsLevel(t *testing.T) {
	s := Default()
	intra := s.CollectiveAB(0, s.GPUsPerNode)
	inter := s.CollectiveAB(0, s.TotalGPUs())
	if intra.Alpha >= inter.Alpha {
		t.Fatal("wider spans pay higher startup")
	}
	if intra.Beta > inter.Beta {
		t.Fatal("NVLink bandwidth must be ≥ IB")
	}
	mpi := s.MPIAB(0, s.GPUsPerNode)
	if mpi.Alpha <= intra.Alpha {
		t.Fatal("host-staged path has higher α")
	}
}

func TestP2PTimeLinear(t *testing.T) {
	ab := AlphaBeta{Alpha: 1e-6, Beta: 1e-9}
	want := 1e-6 + 1000*1e-9
	if got := ab.P2PTime(1000); got < want*(1-1e-12) || got > want*(1+1e-12) {
		t.Fatalf("p2p time %g, want %g", got, want)
	}
}

func TestValidateRejectsBrokenSystems(t *testing.T) {
	broken := func(mutate func(*System)) *System {
		s := Default()
		mutate(s)
		return s
	}
	cases := map[string]*System{
		"zero gpus":     broken(func(s *System) { s.GPUsPerNode = 0 }),
		"no peak flops": broken(func(s *System) { s.GPU.PeakFLOPS = 0 }),
		"missing nccl":  broken(func(s *System) { delete(s.NCCL, InterRack) }),
		"missing mpi":   broken(func(s *System) { delete(s.MPI, IntraNode) }),
		"oversub < 1":   broken(func(s *System) { s.Oversubscription = 0.5 }),
		"no uplinks":    broken(func(s *System) { s.UplinksPerNode = 0 }),
		"zero delta":    broken(func(s *System) { s.BytesPerItem = 0 }),
		"gamma > 1":     broken(func(s *System) { s.MemReuseFactor = 1.5 }),
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

// Property: GroupLevel is monotone — growing a group never lowers its
// link level.
func TestGroupLevelMonotoneProperty(t *testing.T) {
	s := Default()
	f := func(pRaw uint16) bool {
		p := int(pRaw)%(s.TotalGPUs()-1) + 1
		return s.GroupLevel(0, p) <= s.GroupLevel(0, p+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Every named geometry must resolve, validate, carry its own canonical
// name, and still provision ≥ 1024 GPUs (the paper's largest scale).
func TestNamedGeometries(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("ByName(%q) resolved to %q", name, s.Name)
		}
		if s.TotalGPUs() < 1024 {
			t.Errorf("%s: only %d GPUs, want ≥ 1024", name, s.TotalGPUs())
		}
		key := fmt.Sprintf("%d/%d/%d", s.GPUsPerNode, s.NodesPerRack, s.Racks)
		if seen[key] {
			t.Errorf("%s: duplicate geometry %s", name, key)
		}
		seen[key] = true
	}
	if _, err := ByName("no-such-machine"); err == nil {
		t.Error("unknown geometry accepted")
	}
}

// The geometry variants must actually change collective routing: at a
// fixed 8-PE group the dense node stays on NVLink, the paper machine
// crosses the rack, and the dual-GPU packing does too.
func TestGeometriesShiftGroupLevels(t *testing.T) {
	if lvl := DenseNode().GroupLevel(0, 8); lvl != IntraNode {
		t.Errorf("dense-node 8-PE group level = %v, want intra-node", lvl)
	}
	if lvl := Default().GroupLevel(0, 8); lvl != IntraRack {
		t.Errorf("abci-like 8-PE group level = %v, want intra-rack", lvl)
	}
	if lvl := DualGPU().GroupLevel(0, 8); lvl != IntraRack {
		t.Errorf("dual-gpu 8-PE group level = %v, want intra-rack", lvl)
	}
	// flat-rack defers the inter-rack spine: a group spilling past 17
	// paper nodes crosses racks on abci-like but not in the flat pod.
	p := 17*4 + 1
	if lvl := Default().GroupLevel(0, p); lvl != InterRack {
		t.Errorf("abci-like %d-PE group level = %v, want inter-rack", p, lvl)
	}
	if lvl := FlatRack().GroupLevel(0, p); lvl != IntraRack {
		t.Errorf("flat-rack %d-PE group level = %v, want intra-rack", p, lvl)
	}
}
