// Package paradl is the public API of the ParaDL reproduction: an
// oracle that projects computation time, communication time, and
// per-PE memory for distributed CNN training under the six
// parallelization strategies of Kahira et al., "An Oracle for Guiding
// Large-Scale Model/Hybrid Parallel Training of Convolutional Neural
// Networks" (HPDC 2021).
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core      — the analytical model (Table 3) and advisor
//   - internal/model     — the model zoo (ResNet-50/152, VGG16, CosmoFlow)
//   - internal/cluster   — the machine model (GPUs, fat tree, α/β)
//   - internal/profile   — empirical parametrization (FW/BW/WU, α–β fits)
//   - internal/measure   — simulated "measured" runs for validation
//   - internal/dist      — real partitioned execution of every strategy
//   - internal/report    — regeneration of the paper's tables & figures
//
// Quick start:
//
//	m, _ := paradl.Model("resnet50")
//	cfg := paradl.WeakScalingConfig(m, 64, 32) // 64 GPUs, 32 samples/GPU
//	pr, _ := paradl.Project(cfg, paradl.Data)
//	fmt.Printf("iteration: %.1f ms\n", pr.Iter().Total()*1e3)
package paradl

import (
	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/measure"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// Strategy re-exports the parallelization strategies of §3.
type Strategy = core.Strategy

// The six strategies plus the serial baseline.
const (
	Serial      = core.Serial
	Data        = core.Data
	Spatial     = core.Spatial
	Pipeline    = core.Pipeline
	Filter      = core.Filter
	Channel     = core.Channel
	DataFilter  = core.DataFilter
	DataSpatial = core.DataSpatial
)

// Config re-exports the oracle's input description.
type Config = core.Config

// Projection re-exports the oracle's output.
type Projection = core.Projection

// Breakdown re-exports the per-phase time split.
type Breakdown = core.Breakdown

// System re-exports the machine model.
type System = cluster.System

// NetModel re-exports the CNN description consumed by the oracle.
type NetModel = nn.Model

// Model returns a model from the paper's zoo by name
// (resnet50|resnet152|vgg16|cosmoflow).
func Model(name string) (*NetModel, error) { return model.ByName(name) }

// Models lists the zoo in Table 5 order.
func Models() []string { return model.Names() }

// DefaultSystem returns the paper's evaluation machine (§5.1).
func DefaultSystem() *System { return cluster.Default() }

// WeakScalingConfig assembles a ready-to-project configuration with the
// de facto DL scaling mode (§4.2): global batch = perGPU·gpus on the
// default system, with per-layer times profiled on the default device
// model.
func WeakScalingConfig(m *NetModel, gpus, perGPU int) Config {
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	d := int64(1 << 20)
	if ds, err := data.ForModel(m.Name); err == nil {
		d = ds.Samples
	}
	return Config{
		Model: m,
		Sys:   sys,
		Times: profile.ProfileModel(dev, m, perGPU),
		D:     d,
		B:     perGPU * gpus,
		P:     gpus,
	}
}

// StrongScalingConfig assembles a fixed-global-batch configuration (the
// paper's filter/channel mode).
func StrongScalingConfig(m *NetModel, gpus, globalBatch int) Config {
	perGPU := globalBatch / gpus
	if perGPU < 1 {
		perGPU = 1
	}
	cfg := WeakScalingConfig(m, gpus, perGPU)
	cfg.B = globalBatch
	return cfg
}

// Project evaluates the analytical model for one strategy.
func Project(cfg Config, s Strategy) (*Projection, error) { return core.Project(cfg, s) }

// Advise ranks all strategies for a configuration, feasible first.
func Advise(cfg Config) ([]core.Advice, error) { return core.Advise(cfg) }

// Best returns the fastest feasible strategy.
func Best(cfg Config) (*Projection, error) { return core.Best(cfg) }

// Measure runs the simulated "measured" side for validation studies.
func Measure(cfg Config, s Strategy) (*measure.Result, error) {
	return measure.Measure(measure.NewEngine(cfg.Sys), cfg, s)
}

// TrainBatch re-exports one real-execution training step's input.
type TrainBatch = dist.Batch

// TrainResult re-exports a real-execution run: strategy, width, and
// per-iteration losses.
type TrainResult = dist.Result

// TrainSequential runs real single-PE SGD — the value-parity baseline.
func TrainSequential(m *NetModel, seed int64, batches []TrainBatch, lr float64) *TrainResult {
	return dist.RunSequential(m, seed, batches, lr)
}

// TrainData runs real data-parallel training over p replicas.
func TrainData(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunData(m, seed, batches, lr, p)
}

// TrainSpatial runs real spatially-partitioned training over p PEs.
func TrainSpatial(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunSpatial(m, seed, batches, lr, p)
}

// TrainFilter runs real filter-parallel training over p PEs.
func TrainFilter(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunFilter(m, seed, batches, lr, p)
}

// TrainChannel runs real channel-parallel training over p PEs.
func TrainChannel(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunChannel(m, seed, batches, lr, p)
}

// TrainDataFilter runs real df-hybrid training (§3.6): p1 data-parallel
// groups, each applying filter parallelism over p2 PEs to its batch
// shard, with segmented cross-group gradient exchange.
func TrainDataFilter(m *NetModel, seed int64, batches []TrainBatch, lr float64, p1, p2 int) (*TrainResult, error) {
	return dist.RunDataFilter(m, seed, batches, lr, p1, p2)
}

// TrainDataSpatial runs real ds-hybrid training (§3.6): p1 data-parallel
// groups, each spatially decomposing its batch shard over p2 PEs — the
// paper's CosmoFlow configuration (Fig. 5).
func TrainDataSpatial(m *NetModel, seed int64, batches []TrainBatch, lr float64, p1, p2 int) (*TrainResult, error) {
	return dist.RunDataSpatial(m, seed, batches, lr, p1, p2)
}

// TrainPipeline runs real pipeline-parallel training over p stages.
func TrainPipeline(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunPipeline(m, seed, batches, lr, p)
}

// Strategies lists all projectable strategies.
func Strategies() []Strategy { return core.Strategies() }

// ParseStrategy converts a name ("data", "df", …) into a Strategy.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }
