// Package paradl is the public API of the ParaDL reproduction: an
// oracle that projects computation time, communication time, and
// per-PE memory for distributed CNN training under the six
// parallelization strategies of Kahira et al., "An Oracle for Guiding
// Large-Scale Model/Hybrid Parallel Training of Convolutional Neural
// Networks" (HPDC 2021).
//
// The package is a thin facade over the implementation packages:
//
//   - internal/core      — the analytical model (Table 3) and advisor
//   - internal/model     — the model zoo (ResNet-50/152, VGG16, CosmoFlow)
//   - internal/cluster   — the machine model (GPUs, fat tree, α/β)
//   - internal/profile   — empirical parametrization (FW/BW/WU, α–β fits)
//   - internal/measure   — simulated "measured" runs for validation
//   - internal/dist      — real partitioned execution of every strategy
//   - internal/report    — regeneration of the paper's tables & figures
//
// Quick start:
//
//	m, _ := paradl.Model("resnet50")
//	cfg := paradl.WeakScalingConfig(m, 64, 32) // 64 GPUs, 32 samples/GPU
//	pr, _ := paradl.Project(cfg, paradl.Data)
//	fmt.Printf("iteration: %.1f ms\n", pr.Iter().Total()*1e3)
//
// Real (toy-scale) execution of any strategy goes through one
// plan-driven entry point:
//
//	pl, _ := paradl.ParsePlan("df:4x2") // 4 data-parallel groups × filter width 2
//	res, _ := paradl.Train(m, batches, pl, paradl.WithSeed(7), paradl.WithLR(0.05))
package paradl

import (
	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/measure"
	"paradl/internal/model"
	"paradl/internal/nn"
	"paradl/internal/profile"
)

// Strategy re-exports the parallelization strategies of §3.
type Strategy = core.Strategy

// The strategies of §3 plus the serial baseline and the executable-only
// data×pipeline hybrid.
const (
	Serial       = core.Serial
	Data         = core.Data
	Spatial      = core.Spatial
	Pipeline     = core.Pipeline
	Filter       = core.Filter
	Channel      = core.Channel
	DataFilter   = core.DataFilter
	DataSpatial  = core.DataSpatial
	DataPipeline = core.DataPipeline
)

// Config re-exports the oracle's input description.
type Config = core.Config

// Projection re-exports the oracle's output.
type Projection = core.Projection

// Breakdown re-exports the per-phase time split.
type Breakdown = core.Breakdown

// System re-exports the machine model.
type System = cluster.System

// NetModel re-exports the CNN description consumed by the oracle.
type NetModel = nn.Model

// Model returns a model from the paper's zoo by name
// (resnet50|resnet152|vgg16|cosmoflow).
func Model(name string) (*NetModel, error) { return model.ByName(name) }

// Models lists the zoo in Table 5 order.
func Models() []string { return model.Names() }

// DefaultSystem returns the paper's evaluation machine (§5.1).
func DefaultSystem() *System { return cluster.Default() }

// WeakScalingConfig assembles a ready-to-project configuration with the
// de facto DL scaling mode (§4.2): global batch = perGPU·gpus on the
// default system, with per-layer times profiled on the default device
// model.
func WeakScalingConfig(m *NetModel, gpus, perGPU int) Config {
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	d := int64(1 << 20)
	if ds, err := data.ForModel(m.Name); err == nil {
		d = ds.Samples
	}
	return Config{
		Model: m,
		Sys:   sys,
		Times: profile.ProfileModel(dev, m, perGPU),
		D:     d,
		B:     perGPU * gpus,
		P:     gpus,
	}
}

// StrongScalingConfig assembles a fixed-global-batch configuration (the
// paper's filter/channel mode).
func StrongScalingConfig(m *NetModel, gpus, globalBatch int) Config {
	perGPU := globalBatch / gpus
	if perGPU < 1 {
		perGPU = 1
	}
	cfg := WeakScalingConfig(m, gpus, perGPU)
	cfg.B = globalBatch
	return cfg
}

// Project evaluates the analytical model for one strategy.
func Project(cfg Config, s Strategy) (*Projection, error) { return core.Project(cfg, s) }

// Advise ranks all strategies for a configuration, feasible first.
func Advise(cfg Config) ([]core.Advice, error) { return core.Advise(cfg) }

// Best returns the fastest feasible strategy.
func Best(cfg Config) (*Projection, error) { return core.Best(cfg) }

// Measure runs the simulated "measured" side for validation studies.
func Measure(cfg Config, s Strategy) (*measure.Result, error) {
	return measure.Measure(measure.NewEngine(cfg.Sys), cfg, s)
}

// TrainBatch re-exports one real-execution training step's input.
type TrainBatch = dist.Batch

// TrainResult re-exports a real-execution run: strategy, grid shape,
// and per-iteration losses.
type TrainResult = dist.Result

// Plan re-exports the real runtime's execution plan: a Strategy plus
// the P1×P2 grid shape to run it on. Plans round-trip through strings
// ("data:4", "ds:4x2") via ParsePlan and Plan.String.
type Plan = dist.Plan

// TrainOption re-exports the functional options of Train.
type TrainOption = dist.Option

// ParsePlan parses an execution plan string — a strategy name
// optionally followed by a width ("data:4", "pipeline:3") or an
// explicit grid ("df:4x2").
func ParsePlan(s string) (Plan, error) { return dist.ParsePlan(s) }

// WithSeed sets the parameter-initialization seed of a Train run
// (default 1).
func WithSeed(seed int64) TrainOption { return dist.WithSeed(seed) }

// WithLR sets the SGD learning rate of a Train run (default 0.01).
func WithLR(lr float64) TrainOption { return dist.WithLR(lr) }

// WithMomentum enables heavy-ball SGD (v ← µ·v + g, w ← w − lr·v);
// momentum runs keep value parity with the sequential baseline under
// every strategy.
func WithMomentum(mu float64) TrainOption { return dist.WithMomentum(mu) }

// WithIterHook registers a per-iteration callback receiving each
// iteration's index and global loss as training progresses.
func WithIterHook(hook func(iter int, loss float64)) TrainOption { return dist.WithIterHook(hook) }

// WithInputGradAllReduce restores the pre-footnote-2 filter-parallel
// backward (full-width input-gradient Allreduce instead of the default
// reduce-scatter); it exists for A/B parity and overhead comparisons.
func WithInputGradAllReduce() TrainOption { return dist.WithInputGradAllReduce() }

// WithOverlap toggles backward/communication overlap (default on):
// gradient buckets launch nonblocking allreduces as the backward pass
// produces them, hiding the exchange behind the remaining backward
// compute. Losses are bit-identical with overlap on or off; the knob
// exists for A/B timing comparisons.
func WithOverlap(on bool) TrainOption { return dist.WithOverlap(on) }

// WithBucketBytes sets the gradient-bucket size bound in bytes (default
// 256 KiB) at which an overlapped exchange launches.
func WithBucketBytes(n int) TrainOption { return dist.WithBucketBytes(n) }

// Train executes a real training run (actual forward/backward/SGD
// arithmetic on in-process PEs) under the given execution plan — the
// single entry point of the measured runtime. The strategy is a
// runtime value, so the advisor's pick can be executed directly:
//
//	pl, _ := paradl.ParsePlan("df:4x2")
//	res, err := paradl.Train(m, batches, pl, paradl.WithSeed(7), paradl.WithLR(0.05))
//
// Every plan reproduces the per-iteration losses of the serial plan
// within 1e-6 on the same batches (the §4.5.2 value-parity
// methodology), except that pipeline-family plans use per-microbatch
// batch-norm statistics (the GPipe semantics).
func Train(m *NetModel, batches []TrainBatch, pl Plan, opts ...TrainOption) (*TrainResult, error) {
	return dist.Run(m, batches, pl, opts...)
}

// TrainSequential runs real single-PE SGD — the value-parity baseline.
//
// Deprecated: use Train with Plan{Strategy: Serial}.
func TrainSequential(m *NetModel, seed int64, batches []TrainBatch, lr float64) *TrainResult {
	return dist.RunSequential(m, seed, batches, lr)
}

// TrainData runs real data-parallel training over p replicas.
//
// Deprecated: use Train with Plan{Strategy: Data, P1: p}.
func TrainData(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunData(m, seed, batches, lr, p)
}

// TrainSpatial runs real spatially-partitioned training over p PEs.
//
// Deprecated: use Train with Plan{Strategy: Spatial, P2: p}.
func TrainSpatial(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunSpatial(m, seed, batches, lr, p)
}

// TrainFilter runs real filter-parallel training over p PEs.
//
// Deprecated: use Train with Plan{Strategy: Filter, P2: p}.
func TrainFilter(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunFilter(m, seed, batches, lr, p)
}

// TrainChannel runs real channel-parallel training over p PEs.
//
// Deprecated: use Train with Plan{Strategy: Channel, P2: p}.
func TrainChannel(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunChannel(m, seed, batches, lr, p)
}

// TrainDataFilter runs real df-hybrid training (§3.6): p1 data-parallel
// groups, each applying filter parallelism over p2 PEs to its batch
// shard, with segmented cross-group gradient exchange.
//
// Deprecated: use Train with Plan{Strategy: DataFilter, P1: p1, P2: p2}.
func TrainDataFilter(m *NetModel, seed int64, batches []TrainBatch, lr float64, p1, p2 int) (*TrainResult, error) {
	return dist.RunDataFilter(m, seed, batches, lr, p1, p2)
}

// TrainDataSpatial runs real ds-hybrid training (§3.6): p1 data-parallel
// groups, each spatially decomposing its batch shard over p2 PEs — the
// paper's CosmoFlow configuration (Fig. 5).
//
// Deprecated: use Train with Plan{Strategy: DataSpatial, P1: p1, P2: p2}.
func TrainDataSpatial(m *NetModel, seed int64, batches []TrainBatch, lr float64, p1, p2 int) (*TrainResult, error) {
	return dist.RunDataSpatial(m, seed, batches, lr, p1, p2)
}

// TrainPipeline runs real pipeline-parallel training over p stages.
//
// Deprecated: use Train with Plan{Strategy: Pipeline, P2: p}.
func TrainPipeline(m *NetModel, seed int64, batches []TrainBatch, lr float64, p int) (*TrainResult, error) {
	return dist.RunPipeline(m, seed, batches, lr, p)
}

// Strategies lists all projectable strategies.
func Strategies() []Strategy { return core.Strategies() }

// TrainableStrategies lists every strategy the real runtime can
// execute — the projectable set plus the serial baseline and the
// executable-only data×pipeline hybrid.
func TrainableStrategies() []Strategy { return dist.Strategies() }

// ParseStrategy converts a name ("data", "df", …) into a Strategy.
func ParseStrategy(name string) (Strategy, error) { return core.ParseStrategy(name) }
