// Advisor: use the oracle to pick a parallelization strategy for VGG16
// under different GPU budgets and memory regimes — the "suggesting the
// best strategy for a given CNN, dataset, and resource budget" use case
// of §4.1, including the cases where data parallelism stops being the
// answer.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"paradl"
	"paradl/internal/core"
)

func main() {
	m, err := paradl.Model("vgg16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy advisor — %s (%.0fM parameters: the gradient-exchange heavyweight)\n\n",
		m.Name, float64(m.Params())/1e6)

	// Scan GPU budgets at two per-GPU batch sizes. Large batches favor
	// data parallelism (compute hides the Allreduce); small batches at
	// scale expose it.
	for _, perGPU := range []int{32, 4} {
		fmt.Printf("== %d samples/GPU ==\n", perGPU)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "GPUs\tbest strategy\titer total\trunner-up\tgap")
		for _, gpus := range []int{16, 64, 256, 1024} {
			cfg := paradl.WeakScalingConfig(m, gpus, perGPU)
			advs, err := paradl.Advise(cfg)
			if err != nil {
				log.Fatal(err)
			}
			best, second := advs[0].Projection, advs[1].Projection
			gap := second.Iter().Total()/best.Iter().Total() - 1
			fmt.Fprintf(tw, "%d\t%v\t%.1f ms\t%v\t+%.0f%%\n",
				gpus, best.Strategy, best.Iter().Total()*1e3, second.Strategy, 100*gap)
		}
		tw.Flush()
		fmt.Println()
	}

	// Show the oracle's limitation/bottleneck detector (Table 6) on an
	// aggressive configuration.
	cfg := paradl.WeakScalingConfig(m, 1024, 4)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("findings for data parallelism @ 1024 GPUs, b=4:\n")
	for _, f := range core.DetectFindings(pr) {
		fmt.Printf("  [%s] %s — %s: %s\n", f.Kind, f.Category, f.Remark, f.Detail)
	}
}
