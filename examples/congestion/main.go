// Congestion: reproduce the Fig. 6 network-congestion study on the
// flow-level fabric simulator — most collective measurements track the
// α–β theory line, while trials sharing links with external jobs spike
// to multiples of it. This is the "comparison of projections with
// measured results to detect abnormal behavior" use of ParaDL (§4.1).
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"paradl/internal/report"
)

func main() {
	e := report.NewEnv()
	series := e.Fig6(16, 0.3, 2026)

	for _, s := range series {
		fmt.Printf("\n%s\n", s.Name)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "message\tα–β theory\tmeasured\tinflation\tverdict")
		for _, p := range s.Samples {
			verdict := "nominal"
			if p.Inflation > 1.5 {
				verdict = "CONGESTION SUSPECTED"
			}
			fmt.Fprintf(tw, "%.0f MB\t%.2f ms\t%.2f ms\t%.2fx\t%s\n",
				p.Bytes/1e6, p.Theory*1e3, p.Measured*1e3, p.Inflation, verdict)
		}
		tw.Flush()
	}
	fmt.Println("\nthe oracle's theory line is the anomaly detector: points far above it indicate")
	fmt.Println("external traffic on shared links (the paper saw up to 4× at 512-1024 GPUs)")
}
