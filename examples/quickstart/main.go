// Quickstart: project distributed-training performance for ResNet-50
// with the ParaDL oracle, scan the weak-scaling curve, and compare the
// projection against the simulated measured run — the 60-second tour of
// the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"paradl"
)

func main() {
	m, err := paradl.Model("resnet50")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ParaDL quickstart — %s (%d layers, %.1fM parameters)\n\n",
		m.Name, m.G(), float64(m.Params())/1e6)

	// 1. One projection: data parallelism on 64 GPUs, 32 samples/GPU.
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		log.Fatal(err)
	}
	it := pr.Iter()
	fmt.Printf("data parallelism @ 64 GPUs: %.1f ms/iteration (compute %.1f ms, comm %.1f ms)\n",
		it.Total()*1e3, it.Comp()*1e3, it.Comm()*1e3)
	fmt.Printf("projected memory: %.1f GB/GPU, scaling limit: %d GPUs\n\n", pr.MemoryPerPE/1e9, pr.MaxPE)

	// 2. The weak-scaling curve: how the gradient exchange grows.
	fmt.Println("weak scaling (32 samples/GPU):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GPUs\titer total\tGE allreduce\tGE share")
	for _, p := range []int{16, 64, 256, 1024} {
		c := paradl.WeakScalingConfig(m, p, 32)
		pp, err := paradl.Project(c, paradl.Data)
		if err != nil {
			log.Fatal(err)
		}
		i := pp.Iter()
		fmt.Fprintf(tw, "%d\t%.1f ms\t%.1f ms\t%.1f%%\n",
			p, i.Total()*1e3, i.GE*1e3, 100*i.GE/i.Total())
	}
	tw.Flush()

	// 3. Validate the projection against a simulated measured run (the
	// paper's §5.2 accuracy metric).
	res, err := paradl.Measure(cfg, paradl.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasured: %.1f ms/iteration → oracle accuracy %.2f%% (paper: up to 97.57%% for data)\n",
		res.Iter.Total()*1e3, 100*res.Accuracy(pr))
}
