// CosmoFlow 3-D: the workload where data parallelism is simply not an
// option (§5.1) — one 4×256³ sample exceeds what a 16-GB GPU can hold
// once activations are accounted. This example (1) shows the oracle
// rejecting data parallelism on memory grounds, (2) reproduces the
// Data+Spatial scaling of Fig. 5, and (3) actually TRAINS a miniature
// 3-D CNN with spatial decomposition on real numbers, verifying
// value-parity against sequential SGD.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"paradl"
	"paradl/internal/data"
	"paradl/internal/model"
)

func main() {
	oracleStudy()
	realTraining()
}

func oracleStudy() {
	m, err := paradl.Model("cosmoflow")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CosmoFlow (4×256³ input, %.1fM parameters)\n\n", float64(m.Params())/1e6)

	// Data parallelism: one sample per GPU.
	cfg := paradl.WeakScalingConfig(m, 4, 1)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data parallelism, 1 sample/GPU: projected %.1f GB/GPU (device: 16 GB) → feasible: %v\n",
		pr.MemoryPerPE/1e9, pr.Feasible)

	// Data+Spatial: one sample per NODE, spatially split over 4 GPUs
	// (the paper's 0.25 samples/GPU configuration).
	fmt.Println("\nData+Spatial (1 sample per node, spatial within the node):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GPUs\tnodes\tmem/GPU\titer total\tepoch time")
	for _, gpus := range []int{4, 16, 64, 256} {
		nodes := gpus / 4
		c := cfg
		c.P, c.P1, c.P2 = gpus, nodes, 4
		c.B = nodes
		p, err := paradl.Project(c, paradl.DataSpatial)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f GB\t%.1f ms\t%.1f s\n",
			gpus, nodes, p.MemoryPerPE/1e9, p.Iter().Total()*1e3, p.Epoch.Total())
	}
	tw.Flush()
}

func realTraining() {
	fmt.Println("\nreal 3-D training (toy scale, value-parity check):")
	m := model.Tiny3D()
	ds := data.Toy(m, 64)
	batches := ds.Batches(4, 4)
	opts := []paradl.TrainOption{paradl.WithSeed(42), paradl.WithLR(0.05)}

	// Every run goes through the one plan-driven entry point; the
	// strategy is a runtime value, so the oracle's pick could be
	// executed directly.
	train := func(plan string) *paradl.TrainResult {
		pl, err := paradl.ParsePlan(plan)
		if err != nil {
			log.Fatal(err)
		}
		res, err := paradl.Train(m, batches, pl, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Sequential baseline, spatial over 2 PEs on the same batches, and
	// the paper's actual CosmoFlow configuration — Data+Spatial (§3.6) —
	// on a 2×2 grid: 2 data-parallel groups, each spatially split over
	// 2 PEs.
	seq := train("serial")
	spatial := train("spatial:2")
	hybrid := train("ds:2x2")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  iter\tsequential\tspatial p=2\tΔ\tdata+spatial 2×2\tΔ")
	for i := range batches {
		fmt.Fprintf(tw, "  %d\t%.6f\t%.6f\t%.1e\t%.6f\t%.1e\n",
			i, seq.Losses[i],
			spatial.Losses[i], spatial.Losses[i]-seq.Losses[i],
			hybrid.Losses[i], hybrid.Losses[i]-seq.Losses[i])
	}
	tw.Flush()
	fmt.Println("  spatial and data+spatial runs reproduce sequential SGD value-by-value (§4.5.2)")
}
