// Extensions: the remedies the paper proposes for its §5.3 limitations,
// projected side by side against the base strategies — ZeRO weight
// partitioning, cross-replica weight-update sharding, the
// reduce-scatter filter backward, gradient-checkpointed pipelines,
// the pipeline+data hybrid, ADAM's weight-update inflation, and the
// congestion impact factor. Each row answers "is the cure worth it?"
// for a concrete configuration.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"paradl"
	"paradl/internal/cluster"
	"paradl/internal/core"
	"paradl/internal/measure"
	"paradl/internal/profile"
)

func main() {
	zeroStudy()
	filterRSStudy()
	pipelineStudy()
	adamStudy()
	congestionStudy()
}

func zeroStudy() {
	m, err := paradl.Model("vgg16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== ZeRO & weight-update sharding (VGG16, 64 GPUs, b=4, ADAM) ==")
	cfg := paradl.WeakScalingConfig(m, 64, 4)
	cfg.OptimizerExtraState = 2
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	cfg.Times = profile.ProfileModelOpt(dev, m, 4, profile.AdamSpec())

	base, _ := paradl.Project(cfg, paradl.Data)
	zero, _ := core.ProjectZeRO(cfg)
	wus, _ := core.ProjectWUSharded(cfg)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\titer total\tWU\tGE\tmem/GPU")
	row := func(name string, pr *core.Projection) {
		it := pr.Iter()
		fmt.Fprintf(tw, "%s\t%.1f ms\t%.1f ms\t%.1f ms\t%.1f GB\n",
			name, it.Total()*1e3, it.WU*1e3, it.GE*1e3, pr.MemoryPerPE/1e9)
	}
	row("data (baseline)", base)
	row("data + ZeRO", zero)
	row("data + WU sharding", wus)
	tw.Flush()
	fmt.Println()
}

func filterRSStudy() {
	m, err := paradl.Model("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== reduce-scatter filter backward (ResNet-50, B=32) ==")
	cfg := paradl.StrongScalingConfig(m, 16, 32)
	base, _ := paradl.Project(cfg, paradl.Filter)
	rs, _ := core.ProjectFilterRS(cfg)
	fmt.Printf("  allreduce backward: %.0f ms/iter comm\n", base.Iter().Comm()*1e3)
	fmt.Printf("  reduce-scatter:     %.0f ms/iter comm (×%.2f)\n\n",
		rs.Iter().Comm()*1e3, rs.Iter().Comm()/base.Iter().Comm())
}

func pipelineStudy() {
	m, err := paradl.Model("vgg16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== pipeline variants (VGG16, B=32, S=4) ==")
	cfg := paradl.StrongScalingConfig(m, 4, 32)
	base, _ := paradl.Project(cfg, paradl.Pipeline)
	ck, _ := core.ProjectPipelineCheckpointed(cfg)
	hd := cfg
	hd.P, hd.P1, hd.P2 = 8, 4, 2
	hd.B = 64
	pd, err := core.ProjectPipelineData(hd)
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\titer total\tmem/GPU")
	fmt.Fprintf(tw, "pipeline p=4\t%.1f ms\t%.1f GB\n", base.Iter().Total()*1e3, base.MemoryPerPE/1e9)
	fmt.Fprintf(tw, "+ checkpointing\t%.1f ms\t%.1f GB\n", ck.Iter().Total()*1e3, ck.MemoryPerPE/1e9)
	fmt.Fprintf(tw, "pipeline 4×2 data\t%.1f ms\t%.1f GB\n", pd.Iter().Total()*1e3, pd.MemoryPerPE/1e9)
	tw.Flush()
	fmt.Println()
}

func adamStudy() {
	m, err := paradl.Model("vgg16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== ADAM vs SGD weight-update share (VGG16, b=32) ==")
	sys := cluster.Default()
	dev := profile.NewDevice(sys.GPU)
	for _, opt := range []profile.OptimizerSpec{profile.SGDSpec(), profile.AdamSpec()} {
		times := profile.ProfileModelOpt(dev, m, 32, opt)
		cfg := paradl.WeakScalingConfig(m, 16, 32)
		cfg.Times = times
		cfg.OptimizerExtraState = opt.ExtraState
		pr, _ := paradl.Project(cfg, paradl.Data)
		fmt.Printf("  %-5s: WU %.1f ms (%.0f%% of compute), memory %.1f GB\n",
			opt.Name, pr.Iter().WU*1e3, 100*pr.Iter().WU/pr.Iter().Comp(), pr.MemoryPerPE/1e9)
	}
	fmt.Println()
}

func congestionStudy() {
	fmt.Println("== congestion impact factor (§4.3) ==")
	sys := cluster.Default()
	eng := measure.NewEngine(sys)
	m, err := paradl.Model("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	pr, _ := paradl.Project(cfg, paradl.Data)
	for _, load := range []float64{0, 0.5, 1.5} {
		f, err := measure.EstimateImpactFactor(eng, 64, 100e6, load, 10, 7)
		if err != nil {
			log.Fatal(err)
		}
		adj := pr.WithCongestionFactor(f.Mean)
		fmt.Printf("  load %.1f: impact factor %.2f (p99 %.2f) → projected iter %.1f ms\n",
			load, f.Mean, f.P99, adj.Iter().Total()*1e3)
	}
}
