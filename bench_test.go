// Benchmark harness: one testing.B per paper table/figure (DESIGN.md
// per-experiment index), plus ablation benchmarks for the design
// choices the oracle makes (ring vs tree collectives, contention φ,
// memory reuse γ, pipeline segment count, flow-level vs closed-form
// communication). Run with:
//
//	go test -bench=. -benchmem
package paradl_test

import (
	"fmt"
	"io"
	"testing"

	"paradl"
	"paradl/internal/cluster"
	"paradl/internal/collective"
	"paradl/internal/core"
	"paradl/internal/measure"
	"paradl/internal/profile"
	"paradl/internal/report"
	"paradl/internal/simnet"
	"paradl/internal/strategy"
)

// ---- One benchmark per paper artefact ----

func BenchmarkTable3Oracle(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table3("resnet50", 64, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Models(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := e.Table5(); len(rows) != 4 {
			b.Fatal("bad table 5")
		}
	}
}

func BenchmarkTable6Bottlenecks(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Table6("vgg16", 64, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := report.NewEnv() // fresh env: the grid is cached per env
		if _, err := e.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4CosmoFlow(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fig4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5DsScaling(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Congestion(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := e.Fig6(6, 0.3, int64(i)); len(s) != 2 {
			b.Fatal("bad fig 6")
		}
	}
}

func BenchmarkFig7WeightUpdate(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := e.Fig7(); len(rows) != 4 {
			b.Fatal("bad fig 7")
		}
	}
}

func BenchmarkFig8FilterBreakdown(b *testing.B) {
	e := report.NewEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Fig8(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccuracySummary(b *testing.B) {
	e := report.NewEnv()
	if _, err := e.Fig3(); err != nil { // prime the cache once
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Accuracy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteAllReports(b *testing.B) {
	e := report.NewEnv()
	if _, err := e.Fig3(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.WriteFig3(io.Discard); err != nil {
			b.Fatal(err)
		}
		if err := e.WriteTable5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Oracle micro-benchmarks ----

func BenchmarkProjectPerStrategy(b *testing.B) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	for _, s := range paradl.Strategies() {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := paradl.Project(cfg, s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAdvise1024(b *testing.B) {
	m, err := paradl.Model("resnet152")
	if err != nil {
		b.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 1024, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := paradl.Advise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureData64(b *testing.B) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	sys := cluster.Default()
	eng := measure.NewEngine(sys)
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Measure(eng, cfg, core.Data); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation benchmarks (DESIGN.md §5) ----

// AblationRingVsTree compares the two Allreduce algorithms the oracle
// chooses between, across message sizes.
func BenchmarkAblationRingVsTree(b *testing.B) {
	ab := collective.AB{Alpha: 15e-6, Beta: 1.0 / 12.5e9}
	for _, tc := range []struct {
		name string
		m    float64
	}{{"small-64KB", 64e3}, {"large-256MB", 256e6}} {
		b.Run(tc.name, func(b *testing.B) {
			ringWins := 0
			for i := 0; i < b.N; i++ {
				ring := collective.RingAllreduce(ab, 512, tc.m)
				tree := collective.TwoTreeAllreduce(ab, 512, tc.m, 4)
				if ring < tree {
					ringWins++
				}
			}
			// Shape check folded into the bench: rings win large, trees
			// win small.
			if tc.m > 1e6 && ringWins == 0 {
				b.Fatal("ring must win large messages")
			}
			if tc.m < 1e6 && ringWins == b.N {
				b.Fatal("tree must win small messages")
			}
		})
	}
}

// AblationPhi sweeps the contention coefficient of the df projection.
func BenchmarkAblationPhi(b *testing.B) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		b.Fatal(err)
	}
	for _, phi := range []float64{1, 2, 4} {
		b.Run(pf("phi=%g", phi), func(b *testing.B) {
			cfg := paradl.WeakScalingConfig(m, 64, 8)
			cfg.Phi = phi
			var last float64
			for i := 0; i < b.N; i++ {
				pr, err := paradl.Project(cfg, paradl.DataFilter)
				if err != nil {
					b.Fatal(err)
				}
				last = pr.Iter().GE
			}
			b.ReportMetric(last*1e3, "GE-ms")
		})
	}
}

// AblationGamma sweeps the memory reuse factor.
func BenchmarkAblationGamma(b *testing.B) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		b.Fatal(err)
	}
	for _, gamma := range []float64{0.5, 0.7, 1.0} {
		b.Run(pf("gamma=%g", gamma), func(b *testing.B) {
			cfg := paradl.WeakScalingConfig(m, 64, 32)
			sys := *cfg.Sys
			sys.MemReuseFactor = gamma
			cfg.Sys = &sys
			var mem float64
			for i := 0; i < b.N; i++ {
				pr, err := paradl.Project(cfg, paradl.Data)
				if err != nil {
					b.Fatal(err)
				}
				mem = pr.MemoryPerPE
			}
			b.ReportMetric(mem/1e9, "GB-per-PE")
		})
	}
}

// AblationSegments sweeps the pipeline micro-batch count S.
func BenchmarkAblationSegments(b *testing.B) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range []int{1, 2, 4, 8, 16} {
		b.Run(pf("S=%d", s), func(b *testing.B) {
			cfg := paradl.StrongScalingConfig(m, 4, 32)
			cfg.Segments = s
			var total float64
			for i := 0; i < b.N; i++ {
				pr, err := paradl.Project(cfg, paradl.Pipeline)
				if err != nil {
					b.Fatal(err)
				}
				total = pr.Iter().Total()
			}
			b.ReportMetric(total*1e3, "iter-ms")
		})
	}
}

// AblationFlowVsClosedForm compares the flow-level simulated Allreduce
// against the α–β closed form at several scales.
func BenchmarkAblationFlowVsClosedForm(b *testing.B) {
	sys := cluster.Default()
	topo := simnet.NewTopology(sys)
	const bytes = 100e6
	for _, p := range []int{4, 16, 64} {
		b.Run(pf("p=%d", p), func(b *testing.B) {
			pes := strategy.AllPEs(p)
			var flow float64
			for i := 0; i < b.N; i++ {
				sim := simnet.NewSim(topo.Net)
				op, steps := collective.RingRound("allreduce", pes, bytes/float64(p), false)
				els := collective.RunConcurrent(sim, topo, []*collective.Op{op})
				flow = els[0] * float64(steps)
			}
			ab := sys.CollectiveAB(0, p)
			closed := collective.RingAllreduce(collective.AB{Alpha: ab.Alpha, Beta: ab.Beta}, p, bytes)
			b.ReportMetric(flow/closed, "flow-vs-closed")
		})
	}
}

// AblationCalibration measures the full α–β re-derivation loop.
func BenchmarkAblationCalibration(b *testing.B) {
	sys := cluster.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := profile.CalibrateSystem(sys); err != nil {
			b.Fatal(err)
		}
	}
}

func pf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
