package paradl_test

import (
	"math"
	"testing"

	"paradl"
	"paradl/internal/data"
	"paradl/internal/model"
)

func TestFacadeQuickstart(t *testing.T) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Iter().Total() <= 0 {
		t.Fatal("non-positive projection")
	}
	if !pr.Feasible {
		t.Fatalf("ResNet-50 data@64 should be feasible: %v", pr.Notes)
	}
}

func TestFacadeAdviseAndBest(t *testing.T) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 8)
	advs, err := paradl.Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != len(paradl.Strategies()) {
		t.Fatalf("advice count %d", len(advs))
	}
	best, err := paradl.Best(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != advs[0].Projection.Strategy {
		t.Fatal("Best must match top advice")
	}
}

func TestFacadeMeasureAgreement(t *testing.T) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 16, 32)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paradl.Measure(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(pr); acc < 0.9 {
		t.Fatalf("facade-level data accuracy %.3f < 0.9", acc)
	}
}

func TestFacadeStrongScaling(t *testing.T) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.StrongScalingConfig(m, 64, 32)
	if cfg.B != 32 {
		t.Fatalf("global batch %d, want 32", cfg.B)
	}
	if _, err := paradl.Project(cfg, paradl.Filter); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParse(t *testing.T) {
	s, err := paradl.ParseStrategy("df")
	if err != nil || s != paradl.DataFilter {
		t.Fatalf("ParseStrategy(df) = %v, %v", s, err)
	}
}

func TestFacadeRealTraining(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	seq := paradl.TrainSequential(m, 7, batches, 0.05)
	par, err := paradl.TrainData(m, 7, batches, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(par.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade data-parallel loss off by %.3e", i, d)
		}
	}
}

// TestFacadePlanTraining: the plan-driven entry point executes every
// trainable strategy — including the plan-only data×pipeline hybrid —
// in value parity with the serial plan, and the deprecated Train*
// wrappers match Train(plan) bit-for-bit.
func TestFacadePlanTraining(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	opts := []paradl.TrainOption{paradl.WithSeed(7), paradl.WithLR(0.05)}
	seq, err := paradl.Train(m, batches, paradl.Plan{Strategy: paradl.Serial}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"data:2", "spatial:2", "filter:2", "channel:2", "pipeline:2", "df:2x2", "ds:2x2", "dp:2x2"} {
		pl, err := paradl.ParsePlan(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := paradl.Train(m, batches, pl, opts...)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for i := range seq.Losses {
			if d := math.Abs(res.Losses[i] - seq.Losses[i]); d > 1e-6 {
				t.Fatalf("%s iter %d: loss off by %.3e", s, i, d)
			}
		}
	}
	// Deprecated wrappers delegate to the same registry path: bit-for-bit.
	viaPlan, err := paradl.Train(m, batches, paradl.Plan{Strategy: paradl.DataFilter, P1: 2, P2: 2}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	viaShim, err := paradl.TrainDataFilter(m, 7, batches, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range viaPlan.Losses {
		if viaPlan.Losses[i] != viaShim.Losses[i] {
			t.Fatalf("iter %d: TrainDataFilter %.17g != Train(plan) %.17g", i, viaShim.Losses[i], viaPlan.Losses[i])
		}
	}
}

// TestFacadeTrainOptions: momentum changes the trajectory but keeps
// cross-strategy parity; the iteration hook streams the loss series.
func TestFacadeTrainOptions(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	var hooked []float64
	opts := []paradl.TrainOption{
		paradl.WithSeed(7), paradl.WithLR(0.05), paradl.WithMomentum(0.9),
		paradl.WithIterHook(func(_ int, loss float64) { hooked = append(hooked, loss) }),
	}
	seq, err := paradl.Train(m, batches, paradl.Plan{Strategy: paradl.Serial}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked) != len(seq.Losses) || hooked[1] != seq.Losses[1] {
		t.Fatalf("hook streamed %v, result %v", hooked, seq.Losses)
	}
	dp, err := paradl.Train(m, batches, paradl.Plan{Strategy: paradl.DataPipeline, P1: 2, P2: 2},
		paradl.WithSeed(7), paradl.WithLR(0.05), paradl.WithMomentum(0.9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(dp.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("momentum dp iter %d: loss off by %.3e", i, d)
		}
	}
	ar, err := paradl.Train(m, batches, paradl.Plan{Strategy: paradl.Filter, P2: 2},
		paradl.WithSeed(7), paradl.WithLR(0.05), paradl.WithInputGradAllReduce())
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(ar.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("allreduce filter iter %d: loss off by %.3e", i, d)
		}
	}
}

func TestFacadePlanParse(t *testing.T) {
	pl, err := paradl.ParsePlan("ds:4x2")
	if err != nil || pl.Strategy != paradl.DataSpatial || pl.P1 != 4 || pl.P2 != 2 {
		t.Fatalf("ParsePlan(ds:4x2) = %+v, %v", pl, err)
	}
	if pl.String() != "ds:4x2" {
		t.Fatalf("String() = %q", pl.String())
	}
	if _, err := paradl.ParsePlan("df:3x0"); err == nil {
		t.Fatal("df:3x0 must be rejected")
	}
	// Every projectable strategy (incl. the dp composition) is trainable;
	// the runtime additionally executes the serial baseline.
	if n := len(paradl.TrainableStrategies()); n != len(paradl.Strategies())+1 {
		t.Fatalf("trainable strategies: %d", n)
	}
}

func TestFacadeHybridTraining(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	seq := paradl.TrainSequential(m, 7, batches, 0.05)
	df, err := paradl.TrainDataFilter(m, 7, batches, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := paradl.TrainDataSpatial(m, 7, batches, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(df.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade df-hybrid loss off by %.3e", i, d)
		}
		if d := math.Abs(ds.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade ds-hybrid loss off by %.3e", i, d)
		}
	}
}
