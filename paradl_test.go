package paradl_test

import (
	"math"
	"testing"

	"paradl"
	"paradl/internal/data"
	"paradl/internal/model"
)

func TestFacadeQuickstart(t *testing.T) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 32)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Iter().Total() <= 0 {
		t.Fatal("non-positive projection")
	}
	if !pr.Feasible {
		t.Fatalf("ResNet-50 data@64 should be feasible: %v", pr.Notes)
	}
}

func TestFacadeAdviseAndBest(t *testing.T) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 64, 8)
	advs, err := paradl.Advise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(advs) != len(paradl.Strategies()) {
		t.Fatalf("advice count %d", len(advs))
	}
	best, err := paradl.Best(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != advs[0].Projection.Strategy {
		t.Fatal("Best must match top advice")
	}
}

func TestFacadeMeasureAgreement(t *testing.T) {
	m, err := paradl.Model("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.WeakScalingConfig(m, 16, 32)
	pr, err := paradl.Project(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := paradl.Measure(cfg, paradl.Data)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(pr); acc < 0.9 {
		t.Fatalf("facade-level data accuracy %.3f < 0.9", acc)
	}
}

func TestFacadeStrongScaling(t *testing.T) {
	m, err := paradl.Model("vgg16")
	if err != nil {
		t.Fatal(err)
	}
	cfg := paradl.StrongScalingConfig(m, 64, 32)
	if cfg.B != 32 {
		t.Fatalf("global batch %d, want 32", cfg.B)
	}
	if _, err := paradl.Project(cfg, paradl.Filter); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeParse(t *testing.T) {
	s, err := paradl.ParseStrategy("df")
	if err != nil || s != paradl.DataFilter {
		t.Fatalf("ParseStrategy(df) = %v, %v", s, err)
	}
}

func TestFacadeRealTraining(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	seq := paradl.TrainSequential(m, 7, batches, 0.05)
	par, err := paradl.TrainData(m, 7, batches, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(par.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade data-parallel loss off by %.3e", i, d)
		}
	}
}

func TestFacadeHybridTraining(t *testing.T) {
	m := model.Tiny3D()
	batches := data.Toy(m, 32).Batches(2, 4)
	seq := paradl.TrainSequential(m, 7, batches, 0.05)
	df, err := paradl.TrainDataFilter(m, 7, batches, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := paradl.TrainDataSpatial(m, 7, batches, 0.05, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Losses {
		if d := math.Abs(df.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade df-hybrid loss off by %.3e", i, d)
		}
		if d := math.Abs(ds.Losses[i] - seq.Losses[i]); d > 1e-6 {
			t.Fatalf("iter %d: facade ds-hybrid loss off by %.3e", i, d)
		}
	}
}
