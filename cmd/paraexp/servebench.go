package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"

	"paradl/internal/artifact"
	"paradl/internal/serve"
)

// The servebench experiment measures the planner service under load
// over real HTTP on the loopback: an in-process paraserve instance is
// hit first with all-distinct advise requests (every request a new
// content address — the cold path pays model resolution, profiling, and
// eight strategy projections) and then with identical requests (the
// cached path returns stored bytes). The committed snapshot
// (BENCH_serve.json at the repo root) tracks cached throughput and the
// cold→cached speedup across PRs:
//
//	paraexp -exp servebench -serve-requests 50000 > BENCH_serve.json

// Snapshot identity for the committed BENCH_serve.json.
const (
	BenchServeSchema  = "paradl/bench-serve"
	BenchServeVersion = 1
)

// ServeBenchSnapshot is the servebench output: the shared artefact
// header plus the two load phases.
type ServeBenchSnapshot struct {
	artifact.Header
	Model       string           `json:"model"`
	Endpoint    string           `json:"endpoint"`
	Concurrency int              `json:"concurrency"`
	Cold        serve.LoadResult `json:"cold"`
	Cached      serve.LoadResult `json:"cached"`
	// Speedup is cached QPS over cold QPS.
	Speedup float64 `json:"speedup"`
	// CacheHitRate is hits/(hits+misses) across the whole run.
	CacheHitRate float64 `json:"cache_hit_rate"`
	Computations int64   `json:"computations"`
}

// writeServeBench runs the load harness against an in-process planner
// and writes the JSON snapshot.
func writeServeBench(w io.Writer, requests, concurrency, cold int) error {
	if requests < 1 || cold < 1 {
		return fmt.Errorf("servebench needs positive request counts (requests=%d cold=%d)", requests, cold)
	}
	if concurrency < 1 {
		concurrency = 4 * runtime.GOMAXPROCS(0)
	}

	s := serve.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	url := fmt.Sprintf("http://%s/advise", ln.Addr())

	const model = "resnet152"
	// Cold: every body is a distinct dataset size, hence a distinct
	// content address — nothing is served from cache. The +1 offset
	// keeps every cold key distinct from the cached body's default d.
	coldBodies := make([][]byte, cold)
	for i := range coldBodies {
		coldBodies[i] = []byte(fmt.Sprintf(`{"model":%q,"gpus":512,"batch":32,"d":%d}`, model, 1_281_167+1+i))
	}
	coldRes, err := serve.RunLoad(serve.LoadSpec{
		URL: url, Bodies: coldBodies, Concurrency: concurrency, Requests: cold,
	})
	if err != nil {
		return fmt.Errorf("cold load: %w", err)
	}

	// Cached: one body (a key untouched by the cold phase), warmed once
	// so the measured run is pure cache hits.
	cachedBody := [][]byte{[]byte(fmt.Sprintf(`{"model":%q,"gpus":512,"batch":32}`, model))}
	if _, err := serve.RunLoad(serve.LoadSpec{URL: url, Bodies: cachedBody, Concurrency: 1, Requests: 1}); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}
	cachedRes, err := serve.RunLoad(serve.LoadSpec{
		URL: url, Bodies: cachedBody, Concurrency: concurrency, Requests: requests,
	})
	if err != nil {
		return fmt.Errorf("cached load: %w", err)
	}

	st := s.Stats()
	snap := &ServeBenchSnapshot{
		Header:       artifact.NewHeader(BenchServeSchema, BenchServeVersion),
		Model:        model,
		Endpoint:     "/advise",
		Concurrency:  concurrency,
		Cold:         coldRes,
		Cached:       cachedRes,
		Computations: st.Computations,
	}
	if coldRes.QPS > 0 {
		snap.Speedup = cachedRes.QPS / coldRes.QPS
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		snap.CacheHitRate = float64(st.CacheHits) / float64(total)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
