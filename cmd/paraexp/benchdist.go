package main

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"paradl/internal/artifact"
	"paradl/internal/data"
	"paradl/internal/dist"
	"paradl/internal/model"
	"paradl/internal/nn"
)

// The benchdist experiment measures the REAL partitioned-execution
// runtime (internal/dist) — wall time and allocation cost per training
// run for every case of dist.BenchMatrix, the same strategy×width
// matrix `go test ./internal/dist -bench .` sweeps — and emits a
// machine-readable snapshot. Committing snapshots (BENCH_dist.json at
// the repo root) gives the collective/runtime work a perf trajectory
// across PRs instead of anecdotal before/after numbers:
//
//	paraexp -exp benchdist -bench-iters 10 > BENCH_dist.json

// BenchCase is one runner×width measurement. P1/P2 are zero except for
// grid (hybrid) runs. The primary columns measure the default
// configuration (the number tracked across PRs). The *_overlap and
// *_blocking columns are the backward/comm-overlap A/B: both pin the
// dist.BenchOverlapBucketBytes bucket size — at which buckets fill
// mid-backward even on the toy zoo — and differ only in whether the
// bucket exchanges launch nonblocking, so their delta isolates exactly
// the async launches. (At the 256 KiB default the toy gradient set fits
// one drain-time bucket and on/off would compare identical executions.)
type BenchCase struct {
	Name string `json:"name"`
	// Model is set when the case overrides the snapshot's default
	// workload (e.g. the tinyresnet DAG-executor grid points).
	Model               string `json:"model,omitempty"`
	P                   int    `json:"p"`
	P1                  int    `json:"p1,omitempty"`
	P2                  int    `json:"p2,omitempty"`
	Iterations          int    `json:"iterations"`
	NsPerOp             int64  `json:"ns_per_op"`
	AllocsPerOp         int64  `json:"allocs_per_op"`
	BytesPerOp          int64  `json:"bytes_per_op"`
	NsPerOpOverlap      int64  `json:"ns_per_op_overlap,omitempty"`
	AllocsPerOpOverlap  int64  `json:"allocs_per_op_overlap,omitempty"`
	BytesPerOpOverlap   int64  `json:"bytes_per_op_overlap,omitempty"`
	NsPerOpBlocking     int64  `json:"ns_per_op_blocking,omitempty"`
	AllocsPerOpBlocking int64  `json:"allocs_per_op_blocking,omitempty"`
	BytesPerOpBlocking  int64  `json:"bytes_per_op_blocking,omitempty"`
}

// Snapshot identity: bump BenchDistVersion when BenchCase columns or
// their meaning change, so consumers of committed snapshots can check
// before comparing across PRs.
const (
	BenchDistSchema  = "paradl/bench-dist"
	BenchDistVersion = 1
)

// BenchSnapshot is the benchdist output: the shared artefact header
// (schema identity + environment provenance) plus every measured case.
// One "op" is a full training run of `Batches` iterations on `Model` at
// batch size `BatchSize` — the workload pinned by
// dist.BenchBatchSize/BenchBatches.
type BenchSnapshot struct {
	artifact.Header
	Model     string      `json:"model"`
	BatchSize int         `json:"batch_size"`
	Batches   int         `json:"batches"`
	Cases     []BenchCase `json:"cases"`
}

// measure times fn over iters runs after one warm-up, reading allocator
// deltas the same way testing.Benchmark does.
func measure(iters int, fn func() error) (BenchCase, error) {
	if err := fn(); err != nil { // warm-up, and surfaces infeasible widths
		return BenchCase{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		if err := fn(); err != nil {
			return BenchCase{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	n := int64(iters)
	return BenchCase{
		Iterations:  iters,
		NsPerOp:     elapsed.Nanoseconds() / n,
		AllocsPerOp: int64(m1.Mallocs-m0.Mallocs) / n,
		BytesPerOp:  int64(m1.TotalAlloc-m0.TotalAlloc) / n,
	}, nil
}

// writeBenchDist runs the shared dist benchmark matrix and writes the
// JSON snapshot.
func writeBenchDist(w io.Writer, iters int) error {
	if iters < 1 {
		return fmt.Errorf("benchdist needs at least one iteration, got %d", iters)
	}
	const seed, lr = 42, 0.05
	def := model.TinyCNNNoBN()
	mkBatches := func(m *nn.Model) []dist.Batch {
		return data.Toy(m, int64(dist.BenchBatches*dist.BenchBatchSize)).Batches(dist.BenchBatches, dist.BenchBatchSize)
	}
	defBatches := mkBatches(def)

	snap := &BenchSnapshot{
		Header:    artifact.NewHeader(BenchDistSchema, BenchDistVersion),
		Model:     def.Name,
		BatchSize: dist.BenchBatchSize,
		Batches:   dist.BenchBatches,
	}
	for _, spec := range dist.BenchMatrix() {
		spec := spec
		m, batches := def, defBatches
		if spec.Model != "" {
			var err error
			if m, err = model.ByName(spec.Model); err != nil {
				return err
			}
			batches = mkBatches(m)
		}
		bc, err := measure(iters, func() error {
			_, err := spec.Run(m, seed, batches, lr)
			return err
		})
		if err != nil {
			return fmt.Errorf("%s p=%d: %w", spec.Name, spec.P, err)
		}
		bc.Name, bc.Model, bc.P, bc.P1, bc.P2 = spec.Name, spec.Model, spec.P, spec.P1, spec.P2
		if spec.P > 1 {
			// The overlap A/B columns; serial has no exchange to toggle.
			for _, on := range []bool{true, false} {
				on := on
				ab, err := measure(iters, func() error {
					_, err := spec.Run(m, seed, batches, lr, dist.WithOverlap(on),
						dist.WithBucketBytes(dist.BenchOverlapBucketBytes))
					return err
				})
				if err != nil {
					return fmt.Errorf("%s p=%d overlap=%v: %w", spec.Name, spec.P, on, err)
				}
				if on {
					bc.NsPerOpOverlap, bc.AllocsPerOpOverlap, bc.BytesPerOpOverlap =
						ab.NsPerOp, ab.AllocsPerOp, ab.BytesPerOp
				} else {
					bc.NsPerOpBlocking, bc.AllocsPerOpBlocking, bc.BytesPerOpBlocking =
						ab.NsPerOp, ab.AllocsPerOp, ab.BytesPerOp
				}
			}
		}
		snap.Cases = append(snap.Cases, bc)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
