package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table5", "fig7", "fig8"} {
		var buf bytes.Buffer
		if err := run(&buf, exp, 2, 0.5, 1, false); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", exp)
		}
	}
}

func TestRunRejectsUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig99", 2, 0.5, 1, false); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunCSVMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "fig6", 2, 0.5, 1, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "series,bytes,") {
		t.Fatalf("csv output missing header: %q", out[:40])
	}
}
